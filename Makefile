# Developer entry points.  Everything shells out to the standard Go
# toolchain; the targets only pin the flags so results are comparable.

GO ?= go

.PHONY: build test race bench bench-json vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Quick human-readable benchmark pass at the CI scale.
bench:
	SWITCHPROBE_BENCH_PRESET=ci $(GO) test -run '^$$' -bench 'Fig3PacketLatencies|Table1PairSlowdowns|Table1StrictOrder|Table1GoroutineRanks|Table1TrainFused|Table1NoTrainFuse|Table1Traced|SchedCampaign|BulkTraffic|FaultTraffic' -benchtime 1x ./...

# Machine-readable benchmark record: runs the headline cold-path benchmarks
# (including the relaxed-vs-strict, fused-vs-unfused and traced-vs-untraced
# Table 1 A/B pairs)
# and writes BENCH_PR10.json (name -> ns/op, events fired/elided, train
# fusion counters, events/s).
bench-json:
	$(GO) run ./cmd/benchjson -preset ci -benchtime 1x -count 3 -out BENCH_PR10.json
