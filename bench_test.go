package switchprobe

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=.).  Benchmarks share one lazily-built
// experiment suite so the expensive measurement campaigns (calibration,
// impact signatures, compression profiles, pairwise co-runs) are executed
// once and reused; the first benchmark touching a set of artifacts pays for
// building it.
//
// The BenchmarkAblation* functions quantify the design choices called out in
// DESIGN.md: finite egress buffers, the eager/rendezvous threshold and the
// size of the look-up-table grid.

import (
	"io"
	"os"
	"sync"
	"testing"

	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/telemetry"
	"github.com/hpcperf/switchprobe/internal/workload"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

// benchPreset selects the harness scale: the 18-node default preset, or the
// small CI preset when SWITCHPROBE_BENCH_PRESET=ci is set (or -short is
// passed), so the full harness stays usable on small machines.
func benchPreset() experiments.Preset {
	if os.Getenv("SWITCHPROBE_BENCH_PRESET") == string(experiments.PresetCI) || testing.Short() {
		return experiments.PresetCI
	}
	if os.Getenv("SWITCHPROBE_BENCH_PRESET") == string(experiments.PresetPaper) {
		return experiments.PresetPaper
	}
	return experiments.PresetDefault
}

// sharedSuite returns the lazily-built shared experiment suite.
func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.MustNewConfig(benchPreset(), 1)
		benchSuite = experiments.NewSuite(cfg)
	})
	return benchSuite
}

// BenchmarkFig3PacketLatencies regenerates the probe-latency distributions of
// the paper's Fig. 3 (idle switch plus each application).  Unlike the other
// figure benchmarks it builds a fresh suite every iteration so ns/op measures
// the full measurement campaign (calibration plus one impact run per
// application) rather than a cached-artifact lookup; it is the headline
// simulator-throughput benchmark.
func BenchmarkFig3PacketLatencies(b *testing.B) {
	experiments.ResetSimUsage()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.MustNewConfig(benchPreset(), 1))
		r, err := s.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MeanMicros[experiments.IdleLabel], "idle_mean_us")
			b.ReportMetric(r.MeanMicros["FFTW"], "fftw_mean_us")
		}
	}
	reportSimMetrics(b)
}

// reportSimMetrics attaches the aggregated simulator activity of the
// benchmark's runs: kernel events fired, events the cut-through fast path
// elided, rank goroutine switches and non-parking fast resumes, train-fusion
// activity, and per-run event throughput.  cmd/benchjson records these into
// BENCH_PR10.json so the perf trajectory is tracked in-repo.
func reportSimMetrics(b *testing.B) {
	u := experiments.SimUsage()
	if u.Runs == 0 {
		return
	}
	b.ReportMetric(float64(u.EventsFired)/float64(b.N), "events_fired/op")
	b.ReportMetric(float64(u.EventsElided)/float64(b.N), "events_elided/op")
	b.ReportMetric(float64(u.ProcSwitches)/float64(b.N), "rank_switches/op")
	b.ReportMetric(float64(u.ProcFastResumes)/float64(b.N), "fast_resumes/op")
	b.ReportMetric(float64(u.TrainsWalked)/float64(b.N), "trains_walked/op")
	if u.TrainsWalked > 0 {
		b.ReportMetric(float64(u.TrainPackets)/float64(u.TrainsWalked), "pkts_per_train")
	}
	b.ReportMetric(float64(u.TrainAborts)/float64(b.N), "train_aborts/op")
	b.ReportMetric(float64(u.LedgerClamps)/float64(b.N), "ledger_clamps/op")
	b.ReportMetric(u.EventsPerSecond(), "events/s")
}

// BenchmarkFig6CompressionUtilization regenerates the switch-utilization
// sweep of the CompressionB configuration grid (paper Fig. 6).
func BenchmarkFig6CompressionUtilization(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			lo, hi := r.Range()
			b.ReportMetric(lo, "util_min_pct")
			b.ReportMetric(hi, "util_max_pct")
		}
	}
}

// BenchmarkFig7DegradationCurves regenerates the degradation-vs-utilization
// curves of the paper's Fig. 7.
func BenchmarkFig7DegradationCurves(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxOf := func(app string) float64 {
				m := 0.0
				for _, p := range r.Curves[app] {
					if p.DegradationPct > m {
						m = p.DegradationPct
					}
				}
				return m
			}
			b.ReportMetric(maxOf("FFTW"), "fftw_max_deg_pct")
			b.ReportMetric(maxOf("MCB"), "mcb_max_deg_pct")
		}
	}
}

// BenchmarkTable1PairSlowdowns regenerates the measured co-run slowdown
// matrix of the paper's Table I.  Like BenchmarkFig3PacketLatencies it builds
// a fresh suite per iteration so ns/op measures the real co-run campaign
// (baselines plus every unordered application pair) end to end.
func BenchmarkTable1PairSlowdowns(b *testing.B) {
	experiments.ResetSimUsage()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.MustNewConfig(benchPreset(), 1))
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.SlowdownPct[0][0], "fftw_self_pct")
		}
	}
	reportSimMetrics(b)
}

// BenchmarkTable1StrictOrder runs the identical cold Table 1 campaign under
// the strict golden-oracle event ordering (Config.StrictOrder).  Paired with
// BenchmarkTable1PairSlowdowns — which runs the relaxed engine, the default
// since ModelVersion 3 — it records the relaxed mode's speedup in the
// BENCH_PR6.json record, and CI's bench-smoke job gates on relaxed staying
// faster than strict.
func BenchmarkTable1StrictOrder(b *testing.B) {
	experiments.ResetSimUsage()
	for i := 0; i < b.N; i++ {
		cfg := experiments.MustNewConfig(benchPreset(), 1)
		cfg.Options.Machine.Net.StrictOrder = true
		s := experiments.NewSuite(cfg)
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.SlowdownPct[0][0], "fftw_self_pct")
		}
	}
	reportSimMetrics(b)
}

// BenchmarkTable1GoroutineRanks runs the identical cold Table 1 campaign with
// simulated ranks on parked goroutines (Config.Runtime = goroutine), the
// pre-continuation runtime.  Paired with BenchmarkTable1PairSlowdowns — which
// runs the continuation runtime, the default — it records the goroutine-free
// rank runtime's speedup in the BENCH_PR7.json record, and CI's bench-smoke
// job gates on the continuation runtime staying faster and on its
// rank_switches/op staying at least 10x below this benchmark's.
func BenchmarkTable1GoroutineRanks(b *testing.B) {
	experiments.ResetSimUsage()
	for i := 0; i < b.N; i++ {
		cfg := experiments.MustNewConfig(benchPreset(), 1)
		cfg.Options.MPI.Runtime = mpisim.RuntimeGoroutine
		s := experiments.NewSuite(cfg)
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.SlowdownPct[0][0], "fftw_self_pct")
		}
	}
	reportSimMetrics(b)
}

// benchTable1Fusion runs the cold Table 1 campaign with train fusion set by
// the noFuse flag; BenchmarkTable1TrainFused / BenchmarkTable1NoTrainFuse
// share it so the A/B pair differs only in the knob.
func benchTable1Fusion(b *testing.B, noFuse bool) {
	experiments.ResetSimUsage()
	for i := 0; i < b.N; i++ {
		cfg := experiments.MustNewConfig(benchPreset(), 1)
		cfg.Options.Machine.Net.NoTrainFuse = noFuse
		s := experiments.NewSuite(cfg)
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.SlowdownPct[0][0], "fftw_self_pct")
		}
	}
	reportSimMetrics(b)
}

// BenchmarkTable1TrainFused runs the cold Table 1 campaign with the relaxed
// engine's train-fused NIC drains explicitly enabled (the default).  Paired
// with BenchmarkTable1NoTrainFuse it records the fusion speedup in the
// BENCH_PR9.json record; fusion is byte-identical to the per-packet walk, so
// the pair differs only in wall clock.  CI's bench-smoke job gates on fused
// staying faster than unfused and on trains_walked/op staying positive.
func BenchmarkTable1TrainFused(b *testing.B) { benchTable1Fusion(b, false) }

// BenchmarkTable1NoTrainFuse is the unfused oracle side of the A/B pair: the
// identical campaign with Config.NoTrainFuse set, every pick walked by the
// per-packet walkPacket path.
func BenchmarkTable1NoTrainFuse(b *testing.B) { benchTable1Fusion(b, true) }

// BenchmarkTable1Traced runs the cold Table 1 campaign with the structured
// trace exporter armed at the default sampling rate, discarding the output.
// Paired with BenchmarkTable1PairSlowdowns it measures the telemetry layer's
// observation overhead; CI's bench-smoke job gates traced/untraced at 1.05x,
// holding the tentpole contract that watching a campaign is nearly free.
func BenchmarkTable1Traced(b *testing.B) {
	experiments.ResetSimUsage()
	telemetry.StartTrace(io.Discard, 1024)
	defer func() {
		if err := telemetry.StopTrace(); err != nil {
			b.Fatal(err)
		}
	}()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.MustNewConfig(benchPreset(), 1))
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.SlowdownPct[0][0], "fftw_self_pct")
		}
	}
	reportSimMetrics(b)
}

// BenchmarkSchedCampaign runs the contention-aware scheduler campaign on the
// headline oversubscribed fat-tree scenario: measuring the coefficient
// library (solo baselines, placed co-run pairs, signatures, predictor
// profiles) plus scheduling every policy's arrival streams.  Like the other
// headline benchmarks it builds a fresh suite per iteration, so ns/op
// measures the cold campaign end to end.
func BenchmarkSchedCampaign(b *testing.B) {
	experiments.ResetSimUsage()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.MustNewConfig(benchPreset(), 1))
		nodes := s.Config().Options.Machine.Nodes()
		scenarios := experiments.DefaultSchedScenarios(nodes)
		r, err := s.Sched(experiments.SchedSpec{
			Scenarios: scenarios[len(scenarios)-1:], // the contended fabric
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			scen := r.Scenarios[0]
			if pg, ok := r.MeanStretch(scen, "predictor"); ok {
				b.ReportMetric(pg, "predictor_stretch")
			}
			if pack, ok := r.MeanStretch(scen, "pack"); ok {
				b.ReportMetric(pack, "pack_stretch")
			}
		}
	}
	reportSimMetrics(b)
}

// BenchmarkFig8PredictionErrors regenerates the per-pair prediction errors of
// the paper's Fig. 8.
func BenchmarkFig8PredictionErrors(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(r.Study.Pairs)), "pairs")
		}
	}
}

// BenchmarkFig9ErrorSummary regenerates the per-model error summary of the
// paper's Fig. 9 and reports the headline accuracy metrics.
func BenchmarkFig9ErrorSummary(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MeanAbsErr["Queue"], "queue_mae_pts")
			b.ReportMetric(100*r.FractionWithin10["Queue"], "queue_within10_pct")
			b.ReportMetric(r.MeanAbsErr["AverageLT"], "averagelt_mae_pts")
		}
	}
}

// BenchmarkCalibration measures one idle-switch calibration run.
func BenchmarkCalibration(b *testing.B) {
	opts := ReducedOptions()
	for i := 0; i < b.N; i++ {
		if _, err := Calibrate(opts.WithSeed(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInfiniteBuffers compares probe latency under a heavy
// injector with the default finite egress buffers against unlimited buffers
// (no back-pressure).  Unlimited buffers let latency grow far beyond the
// bounded band the paper's Fig. 3 shows.
func BenchmarkAblationInfiniteBuffers(b *testing.B) {
	heavy := NewInjectorConfig(7, 10, 2.5e4)
	for i := 0; i < b.N; i++ {
		finiteOpts := ReducedOptions().WithSeed(int64(i + 1))
		cal, err := Calibrate(finiteOpts)
		if err != nil {
			b.Fatal(err)
		}
		finite, err := MeasureInjectorImpact(finiteOpts, cal, heavy)
		if err != nil {
			b.Fatal(err)
		}
		infOpts := finiteOpts
		infOpts.Machine.Net.EgressBufferBytes = 0
		infCal, err := Calibrate(infOpts)
		if err != nil {
			b.Fatal(err)
		}
		infinite, err := MeasureInjectorImpact(infOpts, infCal, heavy)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(finite.Mean*1e6, "finite_mean_us")
			b.ReportMetric(infinite.Mean*1e6, "infinite_mean_us")
		}
	}
}

// BenchmarkAblationEagerOnly compares FFTW's degradation under heavy
// injection with the default eager/rendezvous threshold against an
// eager-only protocol (the injector's 40 KB messages flood the switch
// without a handshake).
func BenchmarkAblationEagerOnly(b *testing.B) {
	heavy := NewInjectorConfig(7, 10, 2.5e4)
	for i := 0; i < b.N; i++ {
		opts := ReducedOptions().WithSeed(int64(i + 1))
		app, err := ApplicationByName("FFTW", opts.Scale)
		if err != nil {
			b.Fatal(err)
		}
		base, err := MeasureAppBaseline(opts, app)
		if err != nil {
			b.Fatal(err)
		}
		rendezvous, err := MeasureAppUnderInjector(opts, app, heavy)
		if err != nil {
			b.Fatal(err)
		}
		eagerOpts := opts
		eagerOpts.MPI.EagerThreshold = 1 << 30
		eagerBase, err := MeasureAppBaseline(eagerOpts, app)
		if err != nil {
			b.Fatal(err)
		}
		eager, err := MeasureAppUnderInjector(eagerOpts, app, heavy)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(DegradationPercent(base, rendezvous), "rendezvous_deg_pct")
			b.ReportMetric(DegradationPercent(eagerBase, eager), "eager_deg_pct")
		}
	}
}

// BenchmarkAblationReducedGrid compares look-up-table accuracy when the
// profile grid shrinks from the CI grid to just its two extreme
// configurations, the effect the paper attributes the LT models' errors to.
func BenchmarkAblationReducedGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := ReducedOptions().WithSeed(int64(i + 1))
		cal, err := Calibrate(opts)
		if err != nil {
			b.Fatal(err)
		}
		app, err := ApplicationByName("MILC", opts.Scale)
		if err != nil {
			b.Fatal(err)
		}
		coRunner, err := ApplicationByName("FFTW", opts.Scale)
		if err != nil {
			b.Fatal(err)
		}
		coSig, err := MeasureAppImpact(opts, cal, coRunner)
		if err != nil {
			b.Fatal(err)
		}
		fullGrid := inject.ReducedGrid()
		coarseGrid := []inject.Config{fullGrid[0], fullGrid[len(fullGrid)-1]}
		predictWith := func(grid []inject.Config) float64 {
			prof, err := BuildProfile(opts, cal, app, grid, nil)
			if err != nil {
				b.Fatal(err)
			}
			pred, err := (model.AverageLT{}).Predict(prof, coSig)
			if err != nil {
				b.Fatal(err)
			}
			return pred
		}
		fine := predictWith(fullGrid)
		coarse := predictWith(coarseGrid)
		if i == 0 {
			b.ReportMetric(fine, "fine_grid_pred_pct")
			b.ReportMetric(coarse, "coarse_grid_pred_pct")
		}
	}
}

// BenchmarkAblationPhaseAwareQueue compares the paper's constant-utilization
// queue model with this library's phase-aware extension on the pairing the
// paper identifies as its hardest case: a network-sensitive target (FFTW)
// co-running with a phase-varying co-runner (AMG).
func BenchmarkAblationPhaseAwareQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := ReducedOptions().WithSeed(int64(i + 1))
		cal, err := Calibrate(opts)
		if err != nil {
			b.Fatal(err)
		}
		target, err := ApplicationByName("FFTW", opts.Scale)
		if err != nil {
			b.Fatal(err)
		}
		coRunner, err := ApplicationByName("AMG", opts.Scale)
		if err != nil {
			b.Fatal(err)
		}
		coSig, err := MeasureAppImpact(opts, cal, coRunner)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := BuildProfile(opts, cal, target, ReducedInjectorGrid(), nil)
		if err != nil {
			b.Fatal(err)
		}
		queue, err := (model.Queue{}).Predict(prof, coSig)
		if err != nil {
			b.Fatal(err)
		}
		phased, err := (model.QueuePhase{}).Predict(prof, coSig)
		if err != nil {
			b.Fatal(err)
		}
		ra, _, err := MeasureAppPair(opts, target, coRunner)
		if err != nil {
			b.Fatal(err)
		}
		measured := DegradationPercent(prof.Baseline, ra)
		if i == 0 {
			b.ReportMetric(measured, "measured_pct")
			b.ReportMetric(queue, "queue_pred_pct")
			b.ReportMetric(phased, "queuephase_pred_pct")
		}
	}
}

// BenchmarkWorkloadBaselines measures the baseline iteration rate of every
// application model at reduced scale (one run each per iteration).
func BenchmarkWorkloadBaselines(b *testing.B) {
	opts := ReducedOptions()
	for _, app := range workload.Registry(opts.Scale) {
		app := app
		b.Run(app.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt, err := MeasureAppBaseline(opts.WithSeed(int64(i+1)), app)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rt.TimePerIteration.Micros(), "virtual_us_per_iter")
				}
			}
		})
	}
}
