// Command benchjson runs the repository's Go benchmarks and writes the
// results as machine-readable JSON, so the performance trajectory of the
// simulator is tracked in-repo (BENCH_PR10.json, and its predecessors per
// PR) instead of in commit messages.
//
// Usage:
//
//	benchjson [-bench REGEX] [-preset ci|default|paper] [-benchtime 1x]
//	          [-count N] [-out FILE]
//
// It shells out to `go test -bench ./...` in the repository (so the numbers
// are exactly what a developer reproduces by hand), parses the standard
// benchmark output format including custom b.ReportMetric columns (the
// headline benchmarks report events_fired/op, events_elided/op,
// rank_switches/op, fast_resumes/op, trains_walked/op, pkts_per_train and
// events/s), and writes:
//
//	{
//	  "preset": "ci",
//	  "go": "go1.xx",
//	  "benchmarks": {
//	    "BenchmarkFig3PacketLatencies": {
//	      "iterations": 3,
//	      "ns_per_op": 7.2e8,
//	      "metrics": {"events_fired/op": ..., "rank_switches/op": ..., "events/s": ...}
//	    }, ...
//	  }
//	}
//
// With -count > 1 the minimum ns/op across repetitions is kept (the least
// noisy estimator on a shared machine); custom metrics come from the same
// repetition.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's parsed outcome.
type BenchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout of BENCH_PR10.json.
type Report struct {
	Preset     string                 `json:"preset"`
	Go         string                 `json:"go"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "Fig3PacketLatencies|Table1PairSlowdowns|Table1StrictOrder|Table1GoroutineRanks|Table1TrainFused|Table1NoTrainFuse|Table1Traced|SchedCampaign|BulkTraffic|FaultTraffic", "benchmark regexp passed to go test -bench")
	preset := flag.String("preset", "ci", "SWITCHPROBE_BENCH_PRESET for the run (ci, default or paper)")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value; the minimum ns/op across repetitions is reported")
	out := flag.String("out", "BENCH_PR10.json", "output JSON file")
	flag.Parse()

	report, err := run(*bench, *preset, *benchtime, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
}

func run(bench, preset, benchtime string, count int) (*Report, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchtime", benchtime,
		"-count", strconv.Itoa(count), "-timeout", "60m", "./..."}
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "SWITCHPROBE_BENCH_PRESET="+preset)
	outb, err := cmd.CombinedOutput()
	output := string(outb)
	fmt.Print(output)
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	report := &Report{
		Preset:     preset,
		Go:         runtime.Version(),
		Benchmarks: make(map[string]BenchResult),
	}
	for _, line := range strings.Split(output, "\n") {
		name, res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, seen := report.Benchmarks[name]; !seen || res.NsPerOp < prev.NsPerOp {
			report.Benchmarks[name] = res
		}
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results matched %q", bench)
	}
	return report, nil
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   3   721994000 ns/op   12.5 extra_metric   ...
//
// The -N GOMAXPROCS suffix is stripped from the name.
func parseBenchLine(line string) (string, BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", BenchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", BenchResult{}, false
	}
	res := BenchResult{Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", BenchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		default:
			res.Metrics[unit] = v
		}
	}
	if res.NsPerOp == 0 {
		return "", BenchResult{}, false
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return name, res, true
}
