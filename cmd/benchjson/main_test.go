package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine(
		"BenchmarkFig3PacketLatencies-8 \t 3\t 721994000 ns/op\t 1.133 idle_mean_us\t 12345 events_fired/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkFig3PacketLatencies" {
		t.Fatalf("name = %q", name)
	}
	if res.Iterations != 3 || res.NsPerOp != 721994000 {
		t.Fatalf("result = %+v", res)
	}
	if res.Metrics["idle_mean_us"] != 1.133 || res.Metrics["events_fired/op"] != 12345 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	// Without a GOMAXPROCS suffix.
	name, _, ok = parseBenchLine("BenchmarkX 1 100 ns/op")
	if !ok || name != "BenchmarkX" {
		t.Fatalf("plain name parse: %q %v", name, ok)
	}
	for _, bad := range []string{
		"", "ok  \tpkg\t1.2s", "PASS", "goos: linux",
		"BenchmarkBroken x 100 ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q should not parse", bad)
		}
	}
}
