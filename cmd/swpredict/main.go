// Command swpredict predicts how much a target application will slow down
// when it shares a network switch with a co-runner, using the paper's four
// models, and optionally validates the prediction against an actual co-run.
//
// Usage:
//
//	swpredict -target FFTW -corunner Lulesh [-preset ci|default|paper]
//	          [-seed N] [-validate] [-topology star|fattree] [-leaves N]
//	          [-uplinks N] [-placement pack|spread|random]
//	          [-workers N] [-strict-order]
//	          [-rank-runtime continuation|goroutine]
//	          [-cache-dir DIR] [-no-cache]
//	          [-fault-plan EVENTS] [-mtbf DUR -mttr DUR]
//
// With -cache-dir, measurement artifacts are served from (and persisted to)
// the same content-addressed store swprobe uses, so a prediction on an
// already-measured fabric runs without re-simulating anything.
//
// -fault-plan injects an explicit schedule of trunk faults
// (kind:trunk@offset[:factor] events, comma-separated) into every
// measurement run; -mtbf/-mttr (set together) instead draw failures from a
// dedicated random substream.  Both need a topology with trunks (-topology
// fattree) and join run fingerprints, so faulted measurements never share
// cache entries with clean ones.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcperf/switchprobe/internal/cliflags"
	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/engine"
	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/report"
	"github.com/hpcperf/switchprobe/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "swpredict:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("swpredict", flag.ContinueOnError)
	targetName := fs.String("target", "FFTW", "application whose slowdown is predicted")
	coName := fs.String("corunner", "Lulesh", "application sharing the switch")
	preset := fs.String("preset", string(experiments.PresetCI), "scale preset: paper, default or ci")
	seed := fs.Int64("seed", 1, "base random seed")
	validate := fs.Bool("validate", false, "also measure the real co-run slowdown for comparison")
	topology := fs.String("topology", "star", "network topology: star or fattree")
	leaves := fs.Int("leaves", 0, "fattree: number of leaf switches (0 = 2)")
	uplinks := fs.Int("uplinks", 0, "fattree: uplinks per leaf to the spine (0 = one per node)")
	placement := fs.String("placement", "pack", "application placement across leaves: pack, spread or random")
	cacheDir := fs.String("cache-dir", "", "directory of the persistent artifact cache (empty = in-memory only)")
	noCache := fs.Bool("no-cache", false, "disable the persistent artifact cache even when -cache-dir is set")
	workers := fs.Int("workers", 0, "relaxed mode: worker goroutines for leaf-parallel advance windows (0/1 = sequential; the schedule is identical for every value)")
	strictOrder := fs.Bool("strict-order", false, "run the strict golden-oracle event ordering instead of the relaxed engine (same as "+core.StrictOrderEnv+"=1)")
	rankRuntime := fs.String("rank-runtime", "", "rank execution runtime: continuation (default) or goroutine; the schedule is byte-identical for both")
	faultPlanStr := fs.String("fault-plan", "", "inject an explicit fault schedule into every run: comma-separated kind:trunk@offset[:factor] events (e.g. down:leaf0.up0@2ms,up:leaf0.up0@7ms)")
	mtbf := fs.Duration("mtbf", 0, "mean virtual time between generated trunk failures (set together with -mttr)")
	mttr := fs.Duration("mttr", 0, "mean virtual trunk repair time (set together with -mtbf)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliflags.ValidateExec(*workers, *strictOrder); err != nil {
		return err
	}
	faultPlan, _, err := cliflags.ParseFaultFlags(*faultPlanStr, *mtbf, *mttr)
	if err != nil {
		return err
	}
	faultPlan = cliflags.WithGenerated(faultPlan, *mtbf, *mttr)
	runtimeMode, err := mpisim.ParseRankRuntime(*rankRuntime)
	if err != nil {
		return err
	}

	cfg, err := experiments.NewConfig(experiments.Preset(*preset), *seed)
	if err != nil {
		return err
	}
	if *strictOrder {
		cfg.Options.Machine.Net.StrictOrder = true
	}
	cfg.Options.Machine.Net.Workers = *workers
	cfg.Options.MPI.Runtime = runtimeMode
	topo, err := netsim.ParseTopology(*topology, *leaves, *uplinks)
	if err != nil {
		return err
	}
	cfg.Options.Machine.Net.Topology = topo
	if faultPlan.Active() {
		// Validate the plan upfront against the selected fabric so a star
		// (no trunks) or an unknown trunk label fails with flag guidance
		// instead of deep inside the first measurement.
		if err := cliflags.ValidatePlanAgainst(faultPlan, topo, cfg.Options.Machine.Nodes()); err != nil {
			return err
		}
		cfg.Options.Machine.Net.Faults = faultPlan
	}
	policy, err := cluster.ParsePlacement(*placement)
	if err != nil {
		return err
	}
	cfg.Options.Placement = policy
	target, err := workload.ByName(*targetName, cfg.Scale)
	if err != nil {
		return err
	}
	coRunner, err := workload.ByName(*coName, cfg.Scale)
	if err != nil {
		return err
	}

	eng, err := engine.Open(*cacheDir, *noCache)
	if err != nil {
		return err
	}

	fmt.Printf("Calibrating the idle %s fabric (preset %s)...\n", topo.Name(), *preset)
	cal, err := eng.Calibration(cfg.Options)
	if err != nil {
		return err
	}
	fmt.Printf("  idle mean probe latency %.2f µs, service rate %.2e pkts/s\n",
		cal.Idle.Mean*1e6, cal.Service.Mu)

	fmt.Printf("Measuring %s's impact signature...\n", coRunner.Name())
	coSig, err := eng.AppImpact(cfg.Options, coRunner, core.SlotAll)
	if err != nil {
		return err
	}
	fmt.Printf("  mean probe latency %.2f µs -> switch utilization %.1f%%\n",
		coSig.Mean*1e6, coSig.UtilizationPct)

	fmt.Printf("Building %s's compression profile (%d injector configurations)...\n",
		target.Name(), len(cfg.ProfileGrid))
	prof, err := eng.BuildProfile(cfg.Options, target, cfg.ProfileGrid, core.SlotAll)
	if err != nil {
		return err
	}

	tbl := report.Table{
		Title:   fmt.Sprintf("Predicted slowdown of %s when co-running with %s", target.Name(), coRunner.Name()),
		Headers: []string{"model", "predicted_slowdown_pct"},
	}
	for _, m := range model.All() {
		pred, err := m.Predict(prof, coSig)
		if err != nil {
			return err
		}
		tbl.Rows = append(tbl.Rows, []string{m.Name(), fmt.Sprintf("%.1f", pred)})
	}
	fmt.Println(tbl.Render())

	if *validate {
		fmt.Println("Validating with a real co-run...")
		ra, _, err := eng.Pair(cfg.Options, target, coRunner, false)
		if err != nil {
			return err
		}
		measured := core.DegradationPercent(prof.Baseline, ra)
		fmt.Printf("Measured slowdown of %s with %s: %.1f%%\n", target.Name(), coRunner.Name(), measured)
	}
	if eng.Stats().Lookups() > 0 {
		fmt.Printf("Cache: %s\n", eng.Summary())
	}
	return nil
}
