package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "bogus"}); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestRunRejectsUnknownApplications(t *testing.T) {
	if err := run([]string{"-preset", "ci", "-target", "NotAnApp"}); err == nil {
		t.Fatal("expected error for unknown target")
	}
	if err := run([]string{"-preset", "ci", "-corunner", "NotAnApp"}); err == nil {
		t.Fatal("expected error for unknown co-runner")
	}
}

func TestRunValidatesExecutionFlags(t *testing.T) {
	if err := run([]string{"-preset", "ci", "-workers", "-2"}); err == nil {
		t.Fatal("expected error for negative -workers")
	}
	if err := run([]string{"-preset", "ci", "-workers", "2", "-strict-order"}); err == nil {
		t.Fatal("expected error for -workers combined with -strict-order")
	}
}
