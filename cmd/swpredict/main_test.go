package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "bogus"}); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestRunRejectsUnknownApplications(t *testing.T) {
	if err := run([]string{"-preset", "ci", "-target", "NotAnApp"}); err == nil {
		t.Fatal("expected error for unknown target")
	}
	if err := run([]string{"-preset", "ci", "-corunner", "NotAnApp"}); err == nil {
		t.Fatal("expected error for unknown co-runner")
	}
}

func TestRunValidatesExecutionFlags(t *testing.T) {
	if err := run([]string{"-preset", "ci", "-workers", "-2"}); err == nil {
		t.Fatal("expected error for negative -workers")
	}
	if err := run([]string{"-preset", "ci", "-workers", "2", "-strict-order"}); err == nil {
		t.Fatal("expected error for -workers combined with -strict-order")
	}
}

func TestRunValidatesFaultFlags(t *testing.T) {
	if err := run([]string{"-preset", "ci", "-mtbf", "50ms"}); err == nil {
		t.Fatal("expected error for -mtbf without -mttr")
	}
	if err := run([]string{"-preset", "ci", "-mttr", "5ms"}); err == nil {
		t.Fatal("expected error for -mttr without -mtbf")
	}
	if err := run([]string{"-preset", "ci", "-fault-plan", "meteor"}); err == nil {
		t.Fatal("expected error for malformed -fault-plan")
	}
	// The default star fabric has no trunks: an explicit plan must be
	// rejected upfront, before any measurement starts.
	if err := run([]string{"-preset", "ci", "-fault-plan", "down:leaf0.up0@1ms"}); err == nil {
		t.Fatal("expected error for a fault plan on the trunkless star")
	}
	// An unknown trunk label on a real fat-tree is caught upfront too.
	if err := run([]string{"-preset", "ci", "-topology", "fattree", "-leaves", "2",
		"-fault-plan", "down:leaf9.up9@1ms"}); err == nil {
		t.Fatal("expected error for an unknown trunk label")
	}
}
