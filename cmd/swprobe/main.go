// Command swprobe reproduces the paper's experiments on the simulated
// cluster and prints each requested table or figure as text (and optionally
// CSV).
//
// Usage:
//
//	swprobe -exp fig3|fig6|fig7|table1|fig8|fig9|all|xswitch|sched|faults [-preset paper|default|ci]
//	        [-seed N] [-parallel N] [-csv DIR]
//	        [-workers N] [-strict-order] [-no-train-fuse]
//	        [-rank-runtime continuation|goroutine]
//	        [-cache-dir DIR] [-no-cache]
//	        [-cpuprofile FILE] [-memprofile FILE]
//	        [-blockprofile FILE] [-mutexprofile FILE]
//	        [-topology star|fattree] [-leaves N] [-uplinks N]
//	        [-placement pack|spread|random] [-target APP] [-corunner APP]
//	        [-policy LIST|all] [-jobs N] [-arrivals MS]
//	        [-fault-plan EVENTS] [-mtbf DUR -mttr DUR]
//	        [-listen ADDR] [-trace FILE] [-trace-sample N]
//
// -listen serves live campaign telemetry over HTTP for the run's duration:
// /metrics is the Prometheus text exposition of every simulator counter,
// /progress reports the campaign phase, tasks done/planned and events per
// second as JSON, and /debug/pprof exposes the standard Go profiling
// endpoints.  -trace writes a Chrome trace-event JSON file (viewable in
// Perfetto) of sampled kernel and network events, every scheduler placement
// decision and job lifetime, and every fault window; -trace-sample keeps one
// in N high-rate events (default 1024).  Both are pure observation — they
// never touch fingerprints, random streams or campaign output, which stays
// byte-identical with them on or off (see docs/observability.md).
//
// -cpuprofile/-memprofile write pprof profiles of the whole campaign, so a
// hot-path regression can be diagnosed on any experiment without editing
// code (go tool pprof <file>).  -blockprofile/-mutexprofile additionally
// capture blocking and mutex-contention profiles, which is how goroutine
// handoff and lock costs inside the simulator were measured.
//
// -rank-runtime selects how simulated MPI ranks execute: "continuation" (the
// default) runs rank programs inline on the kernel goroutine with zero
// goroutine switches, "goroutine" runs each rank on its own parked
// goroutine.  Both produce byte-identical schedules, so the flag is pure
// wall-clock (like -workers) and does not change run fingerprints or cache
// keys.
//
// The topology flags select the simulated fabric for every experiment; the
// xswitch campaign additionally sweeps the fat-tree's oversubscription and
// compares packed vs. spread placement.
//
// -workers lets the relaxed engine execute independent leaf domains on that
// many goroutines; the simulated schedule is byte-identical for every value,
// so the flag is pure wall-clock. -no-train-fuse disables the relaxed
// engine's train-fused NIC drains (same as SWITCHPROBE_NO_TRAIN_FUSE=1);
// fusion is byte-identical to the per-packet walk, so this too is pure
// wall-clock and keeps fingerprints unchanged. -strict-order instead selects
// the strict golden-oracle event ordering (slower, byte-identical to
// pre-relaxed releases); it changes run fingerprints and therefore cache
// keys.
//
// The sched campaign streams a job arrival process through the
// contention-aware scheduler simulator on star + fat-tree fabrics and
// compares placement policies (-policy), including the predictor-guided one;
// -jobs and -arrivals size the stream.
//
// The faults campaign injects deterministic trunk failures, degraded
// uplinks and leaf partitions into every trunked fabric and reports
// packet-level slowdown plus retransmit/reroute telemetry next to each
// policy's job stretch and requeue counts.  -mtbf/-mttr (set together) add
// a generated-failure case drawn from a dedicated random substream;
// -fault-plan adds an explicit schedule of events
// (kind:trunk@offset[:factor], comma-separated, e.g.
// "down:leaf0.up0@2ms,up:leaf0.up0@7ms").  Fault plans join run
// fingerprints, so faulted and clean runs never share cache entries.
//
// With -cache-dir, every simulation run's artifact is persisted to a
// content-addressed store keyed by its RunSpec hash; a warm re-run of the
// same campaign executes zero simulations and reproduces byte-identical
// output.  -no-cache disables the persistent store (runs are still memoized
// in-process).
//
// Example:
//
//	swprobe -exp fig9 -preset default
//	swprobe -exp all -preset ci -csv ./results -cache-dir ~/.cache/swprobe
//	swprobe -exp xswitch -preset ci -topology fattree -uplinks 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/hpcperf/switchprobe/internal/cliflags"
	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/engine"
	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/report"
	"github.com/hpcperf/switchprobe/internal/sched"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/stats"
	"github.com/hpcperf/switchprobe/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swprobe:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("swprobe", flag.ContinueOnError)
	exp := fs.String("exp", "fig9", "experiment to run: fig3, fig6, fig7, table1, fig8, fig9, xswitch, sched, faults or all")
	preset := fs.String("preset", string(experiments.PresetDefault), "scale preset: paper, default or ci")
	seed := fs.Int64("seed", 1, "base random seed")
	parallel := fs.Int("parallel", 0, "max concurrent simulation runs (0 = all CPUs)")
	csvDir := fs.String("csv", "", "directory to write CSV files into (optional)")
	cacheDir := fs.String("cache-dir", "", "directory of the persistent artifact cache (empty = in-memory only)")
	noCache := fs.Bool("no-cache", false, "disable the persistent artifact cache even when -cache-dir is set")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after the campaign) to this file")
	blockProfile := fs.String("blockprofile", "", "write a goroutine blocking profile (after the campaign) to this file")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex contention profile (after the campaign) to this file")
	topology := fs.String("topology", "star", "network topology: star or fattree")
	leaves := fs.Int("leaves", 0, "fattree: number of leaf switches (0 = 2)")
	uplinks := fs.Int("uplinks", 0, "fattree: uplinks per leaf to the spine (0 = one per node, no oversubscription)")
	placement := fs.String("placement", "pack", "application placement across leaves: pack, spread or random")
	targetName := fs.String("target", "FFTW", "xswitch: application whose slowdown is measured")
	coName := fs.String("corunner", "VPFFT", "xswitch: application sharing the fabric")
	policies := fs.String("policy", "all", "sched: comma-separated placement policies or all ("+strings.Join(sched.PolicyNames(), ", ")+")")
	jobs := fs.Int("jobs", 0, "sched: arrival-stream length (0 = campaign default)")
	arrivals := fs.Float64("arrivals", 0, "sched: mean job inter-arrival gap in virtual ms (0 = derive from load)")
	workers := fs.Int("workers", 0, "relaxed mode: worker goroutines for leaf-parallel advance windows (0/1 = sequential; the schedule is identical for every value)")
	strictOrder := fs.Bool("strict-order", false, "run the strict golden-oracle event ordering instead of the relaxed engine (same as "+core.StrictOrderEnv+"=1)")
	noTrainFuse := fs.Bool("no-train-fuse", false, "relaxed mode: disable train-fused NIC drains (same as "+netsim.NoTrainFuseEnv+"=1; the schedule is byte-identical either way)")
	rankRuntime := fs.String("rank-runtime", "", "rank execution runtime: continuation (default) or goroutine; the schedule is byte-identical for both")
	faultPlanStr := fs.String("fault-plan", "", "faults: explicit fault schedule, comma-separated kind:trunk@offset[:factor] events (e.g. down:leaf0.up0@2ms,up:leaf0.up0@7ms,degrade:leaf1.up0@1ms:2)")
	mtbf := fs.Duration("mtbf", 0, "faults: mean virtual time between generated trunk failures (set together with -mttr)")
	mttr := fs.Duration("mttr", 0, "faults: mean virtual trunk repair time (set together with -mtbf)")
	listen := fs.String("listen", "", "serve /metrics (Prometheus), /progress (JSON) and /debug/pprof on this address for the campaign's duration (e.g. :9090; empty = off)")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of the campaign to this file (Perfetto-viewable: per-leaf lanes, scheduler placements, job lifetimes, fault windows)")
	traceSample := fs.Int64("trace-sample", 1024, "with -trace: keep every Nth high-rate kernel/network event (1 = keep all); placements and fault windows are always kept")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliflags.ValidateExec(*workers, *strictOrder); err != nil {
		return err
	}
	faultPlan, faultFlagsSet, err := cliflags.ParseFaultFlags(*faultPlanStr, *mtbf, *mttr)
	if err != nil {
		return err
	}
	topologySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "topology" {
			topologySet = true
		}
	})
	if err := cliflags.CheckFaultTopology(faultFlagsSet, topologySet, *topology); err != nil {
		return err
	}
	if *traceSample < 1 {
		return fmt.Errorf("-trace-sample must be >= 1, got %d", *traceSample)
	}
	runtimeMode, err := mpisim.ParseRankRuntime(*rankRuntime)
	if err != nil {
		return err
	}

	cfg, err := experiments.NewConfig(experiments.Preset(*preset), *seed)
	if err != nil {
		return err
	}
	cfg.Parallelism = *parallel
	if *strictOrder {
		cfg.Options.Machine.Net.StrictOrder = true
	}
	cfg.Options.Machine.Net.Workers = *workers
	cfg.Options.Machine.Net.NoTrainFuse = *noTrainFuse
	cfg.Options.MPI.Runtime = runtimeMode
	topo, err := netsim.ParseTopology(*topology, *leaves, *uplinks)
	if err != nil {
		return err
	}
	cfg.Options.Machine.Net.Topology = topo
	policy, err := cluster.ParsePlacement(*placement)
	if err != nil {
		return err
	}
	cfg.Options.Placement = policy

	// Telemetry is pure observation: the listener and the trace writer print
	// to stderr only, never join fingerprints, and the campaign's stdout/CSV
	// output is byte-identical with them on or off (enforced by tests).
	if *listen != "" {
		srv, err := telemetry.NewServer(*listen, telemetry.Default(), telemetry.DefaultProgress())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "swprobe: telemetry on http://%s (/metrics /progress /debug/pprof)\n", srv.Addr())
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		telemetry.StartTrace(f, *traceSample)
		defer func() {
			if err := telemetry.StopTrace(); err != nil {
				fmt.Fprintln(os.Stderr, "swprobe: trace:", err)
			}
			f.Close()
		}()
	}

	eng, err := engine.Open(*cacheDir, *noCache)
	if err != nil {
		return err
	}
	suite := experiments.NewSuiteWithEngine(cfg, eng)

	valid := make(map[string]bool, len(experiments.Names)+3)
	for _, name := range experiments.Names {
		valid[name] = true
	}
	valid["xswitch"] = true
	valid["sched"] = true
	valid["faults"] = true
	var wanted []string
	if *exp == "all" {
		wanted = experiments.Names
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if !valid[name] {
				return fmt.Errorf("unknown experiment %q (valid: %s, xswitch, sched, faults, all)",
					name, strings.Join(experiments.Names, ", "))
			}
			wanted = append(wanted, name)
		}
	}
	if faultFlagsSet {
		runsFaults := false
		for _, name := range wanted {
			if name == "faults" {
				runsFaults = true
			}
		}
		if !runsFaults {
			return fmt.Errorf("-fault-plan/-mtbf/-mttr configure the faults campaign; "+
				"valid combinations: -exp faults [-fault-plan EVENTS] [-mtbf DUR -mttr DUR] (got -exp %s)", *exp)
		}
	}

	schedSpec := experiments.SchedSpec{
		Jobs:               *jobs,
		Seed:               *seed,
		MeanInterarrivalMs: *arrivals,
	}
	if *policies != "" && *policies != "all" {
		known := make(map[string]bool, len(sched.PolicyNames()))
		for _, p := range sched.PolicyNames() {
			known[p] = true
		}
		for _, p := range strings.Split(*policies, ",") {
			p = strings.TrimSpace(p)
			if !known[p] {
				return fmt.Errorf("unknown policy %q (valid: %s, all)", p, strings.Join(sched.PolicyNames(), ", "))
			}
			schedSpec.Policies = append(schedSpec.Policies, p)
		}
	}
	faultsSpec := experiments.FaultsSpec{
		Sched: schedSpec,
		MTBF:  sim.Duration(*mtbf),
		MTTR:  sim.Duration(*mttr),
		Plan:  faultPlan,
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "swprobe: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *blockProfile != "" {
		f, err := os.Create(*blockProfile)
		if err != nil {
			return fmt.Errorf("blockprofile: %w", err)
		}
		runtime.SetBlockProfileRate(1)
		defer func() {
			if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "swprobe: blockprofile:", err)
			}
			f.Close()
			runtime.SetBlockProfileRate(0)
		}()
	}
	if *mutexProfile != "" {
		f, err := os.Create(*mutexProfile)
		if err != nil {
			return fmt.Errorf("mutexprofile: %w", err)
		}
		runtime.SetMutexProfileFraction(1)
		defer func() {
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "swprobe: mutexprofile:", err)
			}
			f.Close()
			runtime.SetMutexProfileFraction(0)
		}()
	}

	experiments.ResetSimUsage()
	prog := telemetry.DefaultProgress()
	prog.Start()
	var schedCacheLines []string
	for _, name := range wanted {
		prog.SetPhase(name)
		start := time.Now()
		var (
			tbl   report.Table
			extra string
			err   error
		)
		if name == "sched" {
			var r experiments.SchedResult
			r, err = suite.Sched(schedSpec)
			if err == nil {
				tbl, extra = report.SchedTable(r), experiments.SchedSummary(r)
				schedCacheLines = schedCacheStats(r)
			}
		} else if name == "faults" {
			var r experiments.FaultsResult
			r, err = suite.Faults(faultsSpec)
			if err == nil {
				tbl, extra = report.FaultTable(r), experiments.FaultsSummary(r)
			}
		} else {
			tbl, extra, err = runOne(suite, name, *targetName, *coName)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "== %s (preset %s, seed %d, %.1fs) ==\n", name, *preset, *seed, time.Since(start).Seconds())
		fmt.Fprintln(out, tbl.Render())
		if extra != "" {
			fmt.Fprintln(out, extra)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, tbl); err != nil {
				return err
			}
		}
	}
	prog.SetPhase("done")
	if u := experiments.SimUsage(); u.Runs > 0 {
		fmt.Fprintf(out, "Simulator: %s\n", u)
	}
	if eng.Stats().Lookups() > 0 {
		fmt.Fprintf(out, "Cache: %s\n", eng.Summary())
		for _, line := range schedCacheLines {
			fmt.Fprintln(out, line)
		}
	}
	return nil
}

// schedCacheStats summarizes, per policy, how the scheduler's coefficient
// lookups were served, aggregated across the campaign's scenarios.  On a
// prefetched campaign every query is an oracle-memo hit and the engine
// portion is silent; any engine traffic (and in particular simulations)
// means the prefetch missed a coefficient.
func schedCacheStats(r experiments.SchedResult) []string {
	var lines []string
	for _, policy := range r.Policies {
		var (
			total           engine.Stats
			lookups, misses int64
		)
		for _, row := range r.Rows {
			if row.Policy == policy {
				total = total.Add(row.Cache)
				lookups += row.OracleLookups
				misses += row.OracleMisses
			}
		}
		line := fmt.Sprintf("Sched cache [%s]: %d coefficient lookups, %d memoized", policy, lookups, lookups-misses)
		if misses > 0 {
			line += fmt.Sprintf("; engine: %s", total)
		}
		lines = append(lines, line)
	}
	return lines
}

// runOne produces the table (and optional trailing text) of one experiment.
func runOne(suite *experiments.Suite, name, target, corunner string) (report.Table, string, error) {
	switch name {
	case "fig3":
		r, err := suite.Fig3()
		if err != nil {
			return report.Table{}, "", err
		}
		return report.Fig3Table(r), "", nil
	case "fig6":
		r, err := suite.Fig6()
		if err != nil {
			return report.Table{}, "", err
		}
		lo, hi := r.Range()
		return report.Fig6Table(r), fmt.Sprintf("Utilization range: %.1f%% .. %.1f%%\n", lo, hi), nil
	case "fig7":
		r, err := suite.Fig7()
		if err != nil {
			return report.Table{}, "", err
		}
		labels := r.Apps
		slopes := make([]float64, len(labels))
		for i, app := range labels {
			slopes[i] = r.Fits[app].Slope
		}
		chart := report.BarChart("Sensitivity (degradation points per utilization point)", labels, slopes, 40)
		return report.Fig7Table(r), chart, nil
	case "table1":
		r, err := suite.Table1()
		if err != nil {
			return report.Table{}, "", err
		}
		return report.Table1Table(r), "", nil
	case "fig8":
		r, err := suite.Fig8()
		if err != nil {
			return report.Table{}, "", err
		}
		return report.Fig8Table(r), "", nil
	case "fig9":
		r, err := suite.Fig9()
		if err != nil {
			return report.Table{}, "", err
		}
		boxes := make([]stats.BoxPlot, len(r.Models))
		for i, m := range r.Models {
			boxes[i] = r.Boxes[m]
		}
		chart := report.BoxChart("Prediction error quartiles", r.Models, boxes, 50)
		return report.Fig9Table(r), chart + "\n" + report.Summary(r), nil
	case "xswitch":
		r, err := suite.XSwitch(target, corunner)
		if err != nil {
			return report.Table{}, "", err
		}
		return report.XSwitchTable(r), xswitchSummary(r), nil
	default:
		return report.Table{}, "", fmt.Errorf("unknown experiment %q (valid: %s, xswitch, sched, faults, all)",
			name, strings.Join(experiments.Names, ", "))
	}
}

// xswitchSummary highlights the campaign's headline contrast: packed vs
// spread placement at the strongest oversubscription measured.
func xswitchSummary(r experiments.XSwitchResult) string {
	worst := -1
	var oversub float64
	for _, p := range r.Points {
		if p.Oversubscription > oversub {
			oversub, worst = p.Oversubscription, p.Uplinks
		}
	}
	if worst < 0 {
		return ""
	}
	pack, _ := r.DegradationBy(worst, cluster.PlacePack)
	spread, _ := r.DegradationBy(worst, cluster.PlaceSpread)
	return fmt.Sprintf("At %.1f:1 oversubscription, %s degrades %.1f%% when both jobs are packed on their own leaves\nand %.1f%% when both are spread across every leaf.\n", oversub, r.Target, pack, spread)
}

// writeCSV writes one experiment's table into dir/<name>.csv.
func writeCSV(dir, name string, tbl report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
