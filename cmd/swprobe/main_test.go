package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/report"
)

func TestRunRejectsUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "bogus", "-exp", "fig6"}, os.Stdout); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"-preset", "ci", "-exp", "fig99"}, os.Stdout)
	if err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("error should list the valid experiments: %v", err)
	}
	// Unknown names anywhere in a comma list are rejected before any
	// experiment runs.
	if err := run([]string{"-preset", "ci", "-exp", "fig3,bogus"}, os.Stdout); err == nil {
		t.Fatal("expected error for unknown experiment in list")
	}
}

func TestRunRejectsUnknownTopologyAndPlacement(t *testing.T) {
	err := run([]string{"-preset", "ci", "-exp", "fig3", "-topology", "torus"}, os.Stdout)
	if err == nil {
		t.Fatal("expected error for unknown topology")
	}
	if !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("error should list the valid topologies: %v", err)
	}
	err = run([]string{"-preset", "ci", "-exp", "fig3", "-placement", "diagonal"}, os.Stdout)
	if err == nil {
		t.Fatal("expected error for unknown placement")
	}
	if !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("error should list the valid placements: %v", err)
	}
}

func TestPresetErrorListsChoices(t *testing.T) {
	err := run([]string{"-preset", "bogus", "-exp", "fig3"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("error should list the valid presets: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nosuchflag"}, os.Stdout); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunOneUnknownName(t *testing.T) {
	suite := experiments.NewSuite(experiments.MustNewConfig(experiments.PresetCI, 1))
	if _, _, err := runOne(suite, "bogus", "FFTW", "VPFFT"); err == nil {
		t.Fatal("expected error for unknown experiment name")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := report.Table{Headers: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if err := writeCSV(dir, "demo", tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a,b\n1,2") {
		t.Fatalf("csv content = %q", data)
	}
	// Nested directory creation.
	if err := writeCSV(filepath.Join(dir, "x", "y"), "demo", tbl); err != nil {
		t.Fatal(err)
	}
}

// TestWarmCacheByteIdentity is the acceptance test of the artifact store: a
// second swprobe run against a warm -cache-dir must execute zero simulation
// runs and emit byte-identical CSVs to the cold run.
func TestWarmCacheByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs are slow; skipped in -short mode")
	}
	cache := t.TempDir()
	coldDir, warmDir := t.TempDir(), t.TempDir()
	runInto := func(csvDir string) string {
		t.Helper()
		out, err := os.CreateTemp(t.TempDir(), "out")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		args := []string{"-preset", "ci", "-exp", "fig3,table1", "-csv", csvDir, "-cache-dir", cache}
		if err := run(args, out); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	coldOut := runInto(coldDir)
	if !strings.Contains(coldOut, "Simulator:") {
		t.Fatalf("cold run reported no simulations:\n%s", coldOut)
	}
	warmOut := runInto(warmDir)
	if strings.Contains(warmOut, "Simulator:") {
		t.Fatalf("warm run still executed simulations:\n%s", warmOut)
	}
	if !strings.Contains(warmOut, " 0 simulated") {
		t.Fatalf("warm run cache line missing zero-simulations signal:\n%s", warmOut)
	}
	for _, name := range []string{"fig3.csv", "table1.csv"} {
		cold, err := os.ReadFile(filepath.Join(coldDir, name))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(warmDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(cold) != string(warm) {
			t.Fatalf("%s differs between cold and warm runs", name)
		}
	}
}

// TestNoCacheMatchesCachedRun: disabling the store must not change results —
// the live path and the cached path stay byte-identical.
func TestNoCacheMatchesCachedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs are slow; skipped in -short mode")
	}
	cache := t.TempDir()
	cachedDir, liveDir := t.TempDir(), t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run([]string{"-preset", "ci", "-exp", "fig3", "-csv", cachedDir, "-cache-dir", cache}, devnull); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-preset", "ci", "-exp", "fig3", "-csv", liveDir, "-cache-dir", cache, "-no-cache"}, devnull); err != nil {
		t.Fatal(err)
	}
	cached, err := os.ReadFile(filepath.Join(cachedDir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	live, err := os.ReadFile(filepath.Join(liveDir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(cached) != string(live) {
		t.Fatal("fig3.csv differs between cached and -no-cache runs")
	}
}

func TestRunFig6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run is slow; skipped in -short mode")
	}
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	csvDir := t.TempDir()
	if err := run([]string{"-preset", "ci", "-exp", "fig6", "-seed", "3", "-csv", csvDir}, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "utilization_pct") {
		t.Fatalf("unexpected CLI output:\n%s", data)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig6.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestRunValidatesSchedFlags(t *testing.T) {
	err := run([]string{"-preset", "ci", "-exp", "sched", "-policy", "greedy"}, os.Stdout)
	if err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if !strings.Contains(err.Error(), "valid:") || !strings.Contains(err.Error(), "predictor") {
		t.Fatalf("error should list the valid policies: %v", err)
	}
	// "sched" is accepted by the upfront experiment validation (the run
	// itself is exercised by the slow end-to-end test below).
	err = run([]string{"-preset", "ci", "-exp", "sched,bogus"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "sched") {
		t.Fatalf("experiment validation should mention sched: %v", err)
	}
}

// TestRunSchedEndToEnd runs the scheduler campaign through the CLI on the
// contended CI fabric with a trimmed spec, checking the rendered table, the
// summary contrast and the per-policy cache lines.
func TestRunSchedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping sched campaign in -short mode")
	}
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	csvDir := t.TempDir()
	if err := run([]string{
		"-preset", "ci", "-exp", "sched", "-policy", "pack,predictor",
		"-jobs", "8", "-csv", csvDir,
	}, out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	for _, want := range []string{"Scheduler campaign", "fattree-", "mean_stretch", "Sched cache [pack]", "Sched cache [predictor]"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	if _, err := os.Stat(filepath.Join(csvDir, "sched.csv")); err != nil {
		t.Fatalf("sched CSV not written: %v", err)
	}
}

func TestRunValidatesExecutionFlags(t *testing.T) {
	err := run([]string{"-preset", "ci", "-exp", "fig3", "-workers", "-1"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("negative -workers should be rejected upfront: %v", err)
	}
	err = run([]string{"-preset", "ci", "-exp", "fig3", "-workers", "4", "-strict-order"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "strict-order") {
		t.Fatalf("-workers with -strict-order should be rejected upfront: %v", err)
	}
}

// TestRunWorkersByteIdenticalCLI runs the same campaign sequentially and with
// leaf-parallel workers and requires byte-identical CSV output: Workers is
// pure wall-clock, never a model input.
func TestRunWorkersByteIdenticalCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs are slow; skipped in -short mode")
	}
	runCSV := func(extra ...string) string {
		t.Helper()
		out, err := os.CreateTemp(t.TempDir(), "out")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		csvDir := t.TempDir()
		args := append([]string{
			"-preset", "ci", "-exp", "fig6", "-seed", "7",
			"-topology", "fattree", "-leaves", "3", "-csv", csvDir,
		}, extra...)
		if err := run(args, out); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(filepath.Join(csvDir, "fig6.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	seq := runCSV("-workers", "0")
	par := runCSV("-workers", "4")
	if seq != par {
		t.Fatalf("-workers changed the simulated output:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestObservationByteIdentity is the acceptance test of the telemetry
// contract: running the full campaign set with the metrics server listening
// and trace export enabled must emit CSVs byte-identical to an unobserved
// run, for sequential and leaf-parallel execution alike.  Telemetry draws no
// randomness and never joins fingerprints, so watching a campaign can never
// change its results.
func TestObservationByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI runs are slow; skipped in -short mode")
	}
	expList := "fig3,table1,sched,faults"
	csvNames := []string{"fig3.csv", "table1.csv", "sched.csv", "faults.csv"}
	runCampaign := func(workers int, observe bool) string {
		t.Helper()
		out, err := os.CreateTemp(t.TempDir(), "out")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		csvDir := t.TempDir()
		args := []string{
			"-preset", "ci", "-exp", expList, "-policy", "pack,predictor",
			"-jobs", "6", "-csv", csvDir, "-workers", strconv.Itoa(workers),
		}
		var traceFile string
		if observe {
			traceFile = filepath.Join(t.TempDir(), "trace.json")
			args = append(args,
				"-listen", "127.0.0.1:0",
				"-trace", traceFile,
				"-trace-sample", "64",
			)
		}
		if err := run(args, out); err != nil {
			t.Fatal(err)
		}
		if observe {
			// The exported trace must be well-formed Chrome trace-event JSON
			// with at least one event: the campaign fires kernel, sched and
			// fault emitters.
			blob, err := os.ReadFile(traceFile)
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(blob, &doc); err != nil {
				t.Fatalf("trace file is not valid JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("trace file holds zero events for a full campaign")
			}
		}
		return csvDir
	}
	for _, workers := range []int{0, 2} {
		plain := runCampaign(workers, false)
		observed := runCampaign(workers, true)
		for _, name := range csvNames {
			want, err := os.ReadFile(filepath.Join(plain, name))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(observed, name))
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(got) {
				t.Errorf("workers=%d: %s differs between observed and unobserved runs", workers, name)
			}
		}
	}
}

func TestRunValidatesFaultFlags(t *testing.T) {
	// MTBF and MTTR are a pair: either alone is rejected with an example of
	// the valid combination.
	err := run([]string{"-preset", "ci", "-exp", "faults", "-mtbf", "50ms"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-mttr") {
		t.Fatalf("-mtbf without -mttr should be rejected upfront: %v", err)
	}
	err = run([]string{"-preset", "ci", "-exp", "faults", "-mttr", "5ms"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-mtbf") {
		t.Fatalf("-mttr without -mtbf should be rejected upfront: %v", err)
	}
	// A fault plan on an explicit star is a contradiction: stars have no
	// trunks to fail, and the message must point at the trunked alternative.
	err = run([]string{"-preset", "ci", "-exp", "faults", "-topology", "star",
		"-fault-plan", "down:leaf0.up0@1ms"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "fattree") {
		t.Fatalf("fault plan on -topology star should be rejected naming fattree: %v", err)
	}
	// Fault flags without the faults campaign do nothing; reject them with
	// the valid combination instead of ignoring them silently.
	err = run([]string{"-preset", "ci", "-exp", "fig3", "-fault-plan", "down:leaf0.up0@1ms"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-exp faults") {
		t.Fatalf("fault flags without -exp faults should be rejected upfront: %v", err)
	}
	// Plan syntax errors surface before anything runs.
	err = run([]string{"-preset", "ci", "-exp", "faults", "-fault-plan", "meteor"}, os.Stdout)
	if err == nil {
		t.Fatal("expected error for malformed -fault-plan")
	}
}

// TestRunFaultsEndToEnd runs the resilience campaign through the CLI twice
// and requires nonzero fault telemetry plus byte-identical CSV output: the
// whole campaign, faults included, is a pure function of the seed.
func TestRunFaultsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping faults campaign in -short mode")
	}
	runCSV := func() (string, string) {
		t.Helper()
		out, err := os.CreateTemp(t.TempDir(), "out")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		csvDir := t.TempDir()
		if err := run([]string{
			"-preset", "ci", "-exp", "faults", "-policy", "pack,predictor",
			"-jobs", "6", "-csv", csvDir,
		}, out); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(filepath.Join(csvDir, "faults.csv"))
		if err != nil {
			t.Fatal(err)
		}
		text, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(blob), string(text)
	}
	csv1, text := runCSV()
	for _, want := range []string{"Resilience campaign", "downup", "degrade", "partition", "trunks_failed", "faults:", "retransmits"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	csv2, _ := runCSV()
	if csv1 != csv2 {
		t.Fatalf("faults campaign CSV differs across runs:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
}
