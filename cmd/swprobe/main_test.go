package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/report"
)

func TestRunRejectsUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "bogus", "-exp", "fig6"}, os.Stdout); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-preset", "ci", "-exp", "fig99"}, os.Stdout); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nosuchflag"}, os.Stdout); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunOneUnknownName(t *testing.T) {
	suite := experiments.NewSuite(experiments.MustNewConfig(experiments.PresetCI, 1))
	if _, _, err := runOne(suite, "bogus", "FFTW", "VPFFT"); err == nil {
		t.Fatal("expected error for unknown experiment name")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := report.Table{Headers: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if err := writeCSV(dir, "demo", tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a,b\n1,2") {
		t.Fatalf("csv content = %q", data)
	}
	// Nested directory creation.
	if err := writeCSV(filepath.Join(dir, "x", "y"), "demo", tbl); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run is slow; skipped in -short mode")
	}
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	csvDir := t.TempDir()
	if err := run([]string{"-preset", "ci", "-exp", "fig6", "-seed", "3", "-csv", csvDir}, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "utilization_pct") {
		t.Fatalf("unexpected CLI output:\n%s", data)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig6.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}
