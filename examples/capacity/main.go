// Capacity planning: estimate how an application would perform on a less
// capable switch (or one shared with more work) by running it against
// increasingly aggressive CompressionB configurations — the paper's
// compression experiment (Fig. 7) for a single application.
//
// Run with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"sort"

	switchprobe "github.com/hpcperf/switchprobe"
)

func main() {
	opts := switchprobe.ReducedOptions()

	cal, err := switchprobe.Calibrate(opts)
	if err != nil {
		log.Fatal(err)
	}

	app, err := switchprobe.ApplicationByName("MILC", opts.Scale)
	if err != nil {
		log.Fatal(err)
	}

	// A small injector grid spanning light to heavy switch pressure.
	grid := []switchprobe.InjectorConfig{
		switchprobe.NewInjectorConfig(1, 1, 2.5e7),
		switchprobe.NewInjectorConfig(4, 1, 2.5e6),
		switchprobe.NewInjectorConfig(7, 1, 2.5e5),
		switchprobe.NewInjectorConfig(7, 10, 2.5e4),
	}

	prof, err := switchprobe.BuildProfile(opts, cal, app, grid, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Compression profile of %s (baseline %v per iteration):\n\n", app.Name(), prof.Baseline.TimePerIteration)
	fmt.Printf("%-22s  %-18s  %s\n", "injector config", "switch util (%)", "slowdown (%)")
	points := append([]switchprobe.ProfilePoint(nil), prof.Points...)
	sort.Slice(points, func(i, j int) bool { return points[i].UtilizationPct < points[j].UtilizationPct })
	for _, p := range points {
		fmt.Printf("%-22s  %-18.1f  %.1f\n", p.Injector.Label(), p.UtilizationPct, p.DegradationPct)
	}

	// Interpolate the curve at a planning target: "what if 60% of the switch
	// is taken by other tenants?"
	const planned = 60.0
	deg, err := prof.DegradationAt(planned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt %.0f%% switch utilization, expect %s to run about %.0f%% slower.\n",
		planned, app.Name(), deg)
}
