// Contention analysis: compare how strongly two applications load the shared
// switch by looking at their probe-latency distributions (the paper's
// Fig. 3 style analysis).  A distribution shifted to the right means the
// application leaves less switch capability to others.
//
// Run with:
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	switchprobe "github.com/hpcperf/switchprobe"
)

func main() {
	opts := switchprobe.ReducedOptions()

	cal, err := switchprobe.Calibrate(opts)
	if err != nil {
		log.Fatal(err)
	}

	// MILC is a latency-sensitive, communication-frequent CG solver; MCB is
	// a compute-dominated Monte Carlo code.  Measure both signatures.
	var sigs []switchprobe.Signature
	for _, name := range []string{"MILC", "MCB"} {
		app, err := switchprobe.ApplicationByName(name, opts.Scale)
		if err != nil {
			log.Fatal(err)
		}
		sig, err := switchprobe.MeasureAppImpact(opts, cal, app)
		if err != nil {
			log.Fatal(err)
		}
		sigs = append(sigs, sig)
	}

	// Print the three distributions side by side (percent of probe packets
	// per latency bin), exactly the comparison of the paper's Fig. 3.
	fmt.Printf("%-12s  %-10s", "latency(us)", "idle")
	for _, s := range sigs {
		fmt.Printf("  %-10s", s.Component)
	}
	fmt.Println()
	idleFreqs := cal.Idle.Hist.Frequencies()
	for bin := 0; bin < cal.Idle.Hist.Bins(); bin++ {
		// Skip empty tail bins to keep the output compact.
		interesting := idleFreqs[bin] > 0
		for _, s := range sigs {
			if s.Hist.Frequencies()[bin] > 0 {
				interesting = true
			}
		}
		if !interesting {
			continue
		}
		fmt.Printf("%-12.2f  %-10.1f", cal.Idle.Hist.BinCenter(bin), 100*idleFreqs[bin])
		for _, s := range sigs {
			fmt.Printf("  %-10.1f", 100*s.Hist.Frequencies()[bin])
		}
		fmt.Println()
	}

	fmt.Println()
	for _, s := range sigs {
		fmt.Printf("%s: mean %.2f µs, stddev %.2f µs, switch utilization %.1f%%\n",
			s.Component, s.Mean*1e6, s.StdDev*1e6, s.UtilizationPct)
	}
	fmt.Println("\nInterpretation: the further a distribution shifts right of the idle one, the")
	fmt.Println("more switch capability that application consumes and the more it will degrade")
	fmt.Println("network-sensitive co-runners.")
}
