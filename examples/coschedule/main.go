// Co-schedule prediction: decide whether two applications can share a switch
// by predicting how much each will slow the other down, then validate the
// prediction with a real co-run (the paper's Section V workflow for one
// application pair).
//
// Run with:
//
//	go run ./examples/coschedule
package main

import (
	"fmt"
	"log"

	switchprobe "github.com/hpcperf/switchprobe"
)

func main() {
	opts := switchprobe.ReducedOptions()

	targetName, coName := "FFTW", "MCB"
	target, err := switchprobe.ApplicationByName(targetName, opts.Scale)
	if err != nil {
		log.Fatal(err)
	}
	coRunner, err := switchprobe.ApplicationByName(coName, opts.Scale)
	if err != nil {
		log.Fatal(err)
	}

	cal, err := switchprobe.Calibrate(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Impact experiment on the co-runner: how much switch does it use?
	coSig, err := switchprobe.MeasureAppImpact(opts, cal, coRunner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s utilizes %.1f%% of the switch queue.\n\n", coName, coSig.UtilizationPct)

	// Compression experiments on the target: how does it react to reduced
	// switch capability?
	prof, err := switchprobe.BuildProfile(opts, cal, target, switchprobe.ReducedInjectorGrid(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Predict with all four models.
	fmt.Printf("Predicted slowdown of %s when co-scheduled with %s:\n", targetName, coName)
	for _, m := range switchprobe.Predictors() {
		pred, err := m.Predict(prof, coSig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %6.1f%%\n", m.Name(), pred)
	}

	// Ground truth: actually co-run the two applications.
	ra, rb, err := switchprobe.MeasureAppPair(opts, target, coRunner)
	if err != nil {
		log.Fatal(err)
	}
	coBase, err := switchprobe.MeasureAppBaseline(opts, coRunner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMeasured slowdowns from a real co-run:\n")
	fmt.Printf("  %-16s %6.1f%%\n", targetName, switchprobe.DegradationPercent(prof.Baseline, ra))
	fmt.Printf("  %-16s %6.1f%%\n", coName, switchprobe.DegradationPercent(coBase, rb))
}
