// Cross-switch co-scheduling: measure how much two alltoall-heavy
// applications slow each other down on a two-leaf fat-tree, comparing a
// packed placement (each job on its own leaf switch, traffic stays local)
// against a spread placement (both jobs interleaved across the leaves, so
// their transposes contend on the oversubscribed leaf↔spine trunks).
//
// Run with:
//
//	go run ./examples/fattree
package main

import (
	"fmt"
	"log"

	switchprobe "github.com/hpcperf/switchprobe"
)

func main() {
	opts := switchprobe.ReducedOptions()
	// A 3:1 oversubscribed fat-tree: two leaves, three nodes per leaf, one
	// uplink each to the spine.
	topo := switchprobe.FatTree{Leaves: 2, UplinksPerLeaf: 1}
	opts.Machine.Net.Topology = topo

	target, err := switchprobe.ApplicationByName("FFTW", opts.Scale)
	if err != nil {
		log.Fatal(err)
	}
	coRunner, err := switchprobe.ApplicationByName("VPFFT", opts.Scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fat-tree with %d leaves, %.0f:1 oversubscription; %s sharing the fabric with %s.\n\n",
		topo.Leaves, topo.Oversubscription(opts.Machine.Net.Nodes), target.Name(), coRunner.Name())

	for _, policy := range []switchprobe.PlacementPolicy{switchprobe.PlacePack, switchprobe.PlaceSpread} {
		o := opts
		o.Placement = policy
		baseline, err := switchprobe.MeasureAppBaselineSlot(o, target, switchprobe.SlotA)
		if err != nil {
			log.Fatal(err)
		}
		corun, _, err := switchprobe.MeasureAppPairPlaced(o, target, coRunner)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s placement: baseline %.3f ms/iter, co-run %.3f ms/iter -> %.1f%% slowdown\n",
			policy, baseline.TimePerIteration.Seconds()*1e3, corun.TimePerIteration.Seconds()*1e3,
			switchprobe.DegradationPercent(baseline, corun))
	}

	fmt.Println("\nPacked jobs never leave their leaf; spread jobs cross the spine and contend.")
}
