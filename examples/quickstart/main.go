// Quickstart: calibrate the switch, measure one application's switch
// utilization and its baseline iteration rate.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	switchprobe "github.com/hpcperf/switchprobe"
)

func main() {
	// ReducedOptions uses a small 6-node switch and scaled-down problem
	// sizes so the example finishes in a few seconds; swap in
	// DefaultOptions() for the paper-scale 18-node machine.
	opts := switchprobe.ReducedOptions()

	// Step 1: calibrate the idle switch.  This derives the M/G/1 service
	// model (µ and Var(S)) that converts probe latencies into utilization.
	cal, err := switchprobe.Calibrate(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Idle switch: mean probe latency %.2f µs (utilization %.1f%%)\n",
		cal.Idle.Mean*1e6, cal.Idle.UtilizationPct)

	// Step 2: pick an application and measure its impact signature — what
	// ImpactB sees while the application runs.
	app, err := switchprobe.ApplicationByName("FFTW", opts.Scale)
	if err != nil {
		log.Fatal(err)
	}
	sig, err := switchprobe.MeasureAppImpact(opts, cal, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s running: mean probe latency %.2f µs -> switch utilization %.1f%%\n",
		app.Name(), sig.Mean*1e6, sig.UtilizationPct)

	// Step 3: measure the application's own baseline performance.
	base, err := switchprobe.MeasureAppBaseline(opts, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline: %v per iteration (%d iterations measured)\n",
		app.Name(), base.TimePerIteration, base.Iterations)

	fmt.Println()
	fmt.Println("Next steps: see examples/contention, examples/capacity and examples/coschedule.")
}
