// Closing the loop: a job stream arrives at a 2:1-oversubscribed fat-tree
// cluster, and three placement policies schedule it — blind consolidation
// (pack), blind balancing (spread) and the predictor-guided policy that
// scores every candidate leaf by the predicted co-run slowdown from the
// paper's impact signatures before committing a placement.
//
// Every slowdown coefficient the simulation charges is a measured,
// engine-cached co-run artifact, and every prediction uses only the cheap
// per-application signatures — so the demo shows the paper's predictors
// working as a decision engine, not just a reporting tool.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	switchprobe "github.com/hpcperf/switchprobe"
)

func main() {
	cfg, err := switchprobe.NewExperimentConfig(switchprobe.PresetCI, 1)
	if err != nil {
		log.Fatal(err)
	}
	suite := switchprobe.NewSuite(cfg)

	nodes := cfg.Options.Machine.Nodes()
	scenarios := switchprobe.DefaultSchedScenarios(nodes)
	contended := scenarios[len(scenarios)-1] // the oversubscribed fabric
	fmt.Printf("Scheduling on %s: %d nodes, predictor-guided vs blind placement.\n\n", contended.Label, nodes)

	r, err := suite.Sched(switchprobe.SchedSpec{
		Policies:  []string{"pack", "spread", "predictor"},
		Scenarios: []switchprobe.SchedScenario{contended},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(switchprobe.RenderSched(r).Render())

	// Show the predictor's reasoning on its most consequential placements:
	// scored decisions and deferred catastrophes.
	row, _ := r.Row(contended.Label, "predictor")
	fmt.Println("Predictor decisions with co-residents (first stream):")
	for _, d := range row.Streams[0].Decisions {
		if len(d.Residents) == 0 {
			continue
		}
		fmt.Printf("  t=%6.1fms  %-6s -> leaf %d next to %v (predicted +%.0f pts)\n",
			d.Time*1e3, d.Workload, d.Leaf, d.Residents, d.Score)
	}
	if row.Deferrals > 0 {
		fmt.Printf("  plus %d deferrals where every feasible leaf predicted heavy contention\n", row.Deferrals)
	}

	pg := row.MeanStretch
	pack, _ := r.MeanStretch(contended.Label, "pack")
	spread, _ := r.MeanStretch(contended.Label, "spread")
	fmt.Printf("\nMean job stretch: predictor %.3f vs pack %.3f and spread %.3f — predictions placed the stream %.0f%% closer to solo speed.\n",
		pg, pack, spread, 100*(pack-pg)/(pack-1))
}
