module github.com/hpcperf/switchprobe

go 1.24
