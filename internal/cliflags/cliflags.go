// Package cliflags holds the flag cross-validation logic shared by the
// swprobe and swpredict commands, so the two CLIs cannot drift apart on what
// combinations of execution-mode and fault-injection flags are legal.  Each
// helper validates one concern and returns the same error text both commands
// used to produce inline.
package cliflags

import (
	"fmt"
	"time"

	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// ValidateExec checks the execution-mode flags: -workers must be
// non-negative, and leaf-parallel workers require the relaxed engine.
func ValidateExec(workers int, strictOrder bool) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if strictOrder && workers > 1 {
		return fmt.Errorf("-workers %d needs the relaxed engine; it cannot be combined with -strict-order", workers)
	}
	return nil
}

// ParseFaultFlags cross-validates the fault-injection flags and parses the
// -fault-plan grammar.  It returns the parsed plan (nil-safe: an empty flag
// yields an inactive plan) and whether any fault flag was actually set.
func ParseFaultFlags(planStr string, mtbf, mttr time.Duration) (plan *netsim.FaultPlan, active bool, err error) {
	if (mtbf > 0) != (mttr > 0) {
		return nil, false, fmt.Errorf("-mtbf and -mttr must be set together (e.g. -mtbf 50ms -mttr 5ms), got -mtbf %v -mttr %v", mtbf, mttr)
	}
	if mtbf < 0 || mttr < 0 {
		return nil, false, fmt.Errorf("-mtbf and -mttr must be positive virtual durations, got -mtbf %v -mttr %v", mtbf, mttr)
	}
	plan, err = netsim.ParseFaultPlan(planStr)
	if err != nil {
		return nil, false, err
	}
	return plan, mtbf > 0 || plan.Active(), nil
}

// WithGenerated folds the -mtbf/-mttr renewal generator into the plan,
// allocating one when only the generator flags were given.  A zero mtbf
// returns the plan unchanged.
func WithGenerated(plan *netsim.FaultPlan, mtbf, mttr time.Duration) *netsim.FaultPlan {
	if mtbf <= 0 {
		return plan
	}
	if plan == nil {
		plan = &netsim.FaultPlan{}
	}
	plan.MTBF = sim.Duration(mtbf)
	plan.MTTR = sim.Duration(mttr)
	return plan
}

// CheckFaultTopology rejects the explicit combination of fault flags with a
// trunkless -topology star: there is no trunk to fail and no alternate route
// to fail over to.  topologySet distinguishes an explicit -topology star
// (rejected with guidance) from the default value (left for the campaign or
// the plan's layout validation to resolve).
func CheckFaultTopology(faultsSet, topologySet bool, topology string) error {
	if faultsSet && topologySet && topology == "star" {
		return fmt.Errorf("fault injection needs a topology with trunks and -topology star has none; " +
			"valid combinations: -exp faults with -topology fattree, or without -topology (the campaign sweeps every trunked fabric)")
	}
	return nil
}

// ValidatePlanAgainst builds the topology's layout for nodes and validates
// the plan's trunk references against it, wrapping failures with the flag
// guidance both CLIs print.  An inactive plan passes trivially.
func ValidatePlanAgainst(plan *netsim.FaultPlan, topo netsim.Topology, nodes int) error {
	if !plan.Active() {
		return nil
	}
	lay, err := topo.Build(nodes)
	if err != nil {
		return err
	}
	if err := plan.Validate(lay); err != nil {
		return fmt.Errorf("%w; valid combinations: -topology fattree [-leaves N -uplinks N] with trunk labels leafL.upU or leafL.downU", err)
	}
	return nil
}
