package cliflags

import (
	"strings"
	"testing"
	"time"

	"github.com/hpcperf/switchprobe/internal/netsim"
)

func TestValidateExec(t *testing.T) {
	if err := ValidateExec(0, false); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if err := ValidateExec(4, false); err != nil {
		t.Fatalf("-workers 4 rejected: %v", err)
	}
	if err := ValidateExec(1, true); err != nil {
		t.Fatalf("-workers 1 with -strict-order rejected: %v", err)
	}
	if err := ValidateExec(-1, false); err == nil {
		t.Fatal("negative -workers accepted")
	}
	err := ValidateExec(4, true)
	if err == nil || !strings.Contains(err.Error(), "strict-order") {
		t.Fatalf("-workers with -strict-order should be rejected naming the flag: %v", err)
	}
}

func TestParseFaultFlags(t *testing.T) {
	plan, active, err := ParseFaultFlags("", 0, 0)
	if err != nil || active {
		t.Fatalf("no fault flags: active=%v err=%v", active, err)
	}
	if plan.Active() {
		t.Fatal("empty plan reported active")
	}

	if _, _, err := ParseFaultFlags("", 50*time.Millisecond, 0); err == nil || !strings.Contains(err.Error(), "-mtbf") {
		t.Fatalf("-mtbf without -mttr should be rejected naming the flag: %v", err)
	}
	if _, _, err := ParseFaultFlags("", 0, 5*time.Millisecond); err == nil {
		t.Fatal("-mttr without -mtbf accepted")
	}
	if _, _, err := ParseFaultFlags("gibberish", 0, 0); err == nil {
		t.Fatal("unparseable -fault-plan accepted")
	}

	plan, active, err = ParseFaultFlags("down:leaf0.up0@2ms,up:leaf0.up0@7ms", 0, 0)
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if !active || !plan.Active() || len(plan.Events) != 2 {
		t.Fatalf("plan not parsed: active=%v events=%d", active, len(plan.Events))
	}

	if _, active, err = ParseFaultFlags("", 50*time.Millisecond, 5*time.Millisecond); err != nil || !active {
		t.Fatalf("generator-only flags: active=%v err=%v", active, err)
	}
}

func TestWithGenerated(t *testing.T) {
	if got := WithGenerated(nil, 0, 0); got != nil {
		t.Fatalf("zero mtbf must not allocate a plan, got %+v", got)
	}
	p := WithGenerated(nil, 50*time.Millisecond, 5*time.Millisecond)
	if p == nil || p.MTBF == 0 || p.MTTR == 0 {
		t.Fatalf("generator not folded into fresh plan: %+v", p)
	}
	base := &netsim.FaultPlan{Events: []netsim.FaultEvent{{Trunk: "leaf0.up0", Kind: netsim.FaultTrunkDown}}}
	p = WithGenerated(base, 50*time.Millisecond, 5*time.Millisecond)
	if p != base || len(p.Events) != 1 || p.MTBF == 0 {
		t.Fatalf("generator not folded into existing plan: %+v", p)
	}
}

func TestCheckFaultTopology(t *testing.T) {
	if err := CheckFaultTopology(true, true, "star"); err == nil {
		t.Fatal("fault flags with explicit -topology star accepted")
	}
	for _, c := range []struct {
		faults, topoSet bool
		topo            string
	}{
		{false, true, "star"},   // no fault flags
		{true, false, "star"},   // default topology: campaign resolves it
		{true, true, "fattree"}, // trunked topology is fine
	} {
		if err := CheckFaultTopology(c.faults, c.topoSet, c.topo); err != nil {
			t.Fatalf("CheckFaultTopology(%+v) = %v", c, err)
		}
	}
}

func TestValidatePlanAgainst(t *testing.T) {
	fattree, err := netsim.ParseTopology("fattree", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	star, err := netsim.ParseTopology("star", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := ParseFaultFlags("down:leaf0.up0@2ms", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlanAgainst(plan, fattree, 8); err != nil {
		t.Fatalf("valid plan on fattree rejected: %v", err)
	}
	if err := ValidatePlanAgainst(plan, star, 8); err == nil {
		t.Fatal("plan on trunkless star accepted")
	}
	bad, _, err := ParseFaultFlags("down:leaf9.up9@2ms", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = ValidatePlanAgainst(bad, fattree, 8)
	if err == nil || !strings.Contains(err.Error(), "leafL.upU") {
		t.Fatalf("unknown trunk should fail with flag guidance: %v", err)
	}
	var nilPlan *netsim.FaultPlan
	if err := ValidatePlanAgainst(nilPlan, star, 8); err != nil {
		t.Fatalf("inactive plan must pass on any topology: %v", err)
	}
}
