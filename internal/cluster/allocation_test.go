package cluster

import (
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// The scheduler subsystem drives both allocation paths (AllocatePlaced for
// fabric-spanning measurement jobs, AllocateOnNodes for leaf-targeted
// placements) through repeated allocate/release cycles, so the free-slot
// accounting edge cases are pinned here: capacity exhaustion, partially
// used sockets, uneven leaves and rollback-free failure.

// TestAllocateExhaustsCapacityCleanly fills every core of the machine and
// checks the next request fails without corrupting the accounting.
func TestAllocateExhaustsCapacityCleanly(t *testing.T) {
	m := fatTreeMachine(t, 1)
	full := m.Config().CoresPerSocket
	a, err := m.AllocatePlaced("a", full, m.Config().Nodes(), PlacePack)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.AllocatedCores(), m.Config().TotalCores(); got != want {
		t.Fatalf("allocated %d cores, want the whole machine %d", got, want)
	}
	for node := 0; node < m.Config().Nodes(); node++ {
		if free := m.FreeCores(node); free != 0 {
			t.Fatalf("node %d reports %d free cores on a full machine", node, free)
		}
	}
	if _, err := m.AllocatePlaced("b", 1, 1, PlacePack); err == nil {
		t.Fatal("expected failure on a full machine")
	}
	if _, err := m.AllocateOnNodes("c", 1, []int{0}); err == nil {
		t.Fatal("expected failure on a full node")
	}
	m.Release(a)
	if m.AllocatedCores() != 0 {
		t.Fatalf("release left %d cores allocated", m.AllocatedCores())
	}
	if _, err := m.AllocatePlaced("b", 1, 1, PlacePack); err != nil {
		t.Fatalf("machine not reusable after release: %v", err)
	}
}

// TestAllocateSocketGranularity packs two half-socket jobs onto the same
// nodes and checks the third fails exactly when the sockets run out.
func TestAllocateSocketGranularity(t *testing.T) {
	m := fatTreeMachine(t, 1)
	half := m.Config().CoresPerSocket / 2
	if _, err := m.AllocateOnNodes("a", half, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocateOnNodes("b", half, []int{0}); err != nil {
		t.Fatal(err)
	}
	if free := m.FreeCores(0); free != 0 {
		t.Fatalf("node 0 has %d free cores, want 0 after two half-socket jobs", free)
	}
	if _, err := m.AllocateOnNodes("c", 1, []int{0}); err == nil {
		t.Fatal("expected failure once both sockets are full")
	}
	// The failed allocation must not leak partial bookkeeping.
	if got, want := m.AllocatedCores(), m.Config().CoresPerNode(); got != want {
		t.Fatalf("allocated %d cores after failed request, want %d", got, want)
	}
}

// TestAllocateFailureRollsBackAcrossNodes requests more nodes than are
// fully free; the allocation must fail without committing the nodes that
// did fit.
func TestAllocateFailureRollsBackAcrossNodes(t *testing.T) {
	m := fatTreeMachine(t, 1)
	full := m.Config().CoresPerSocket
	if _, err := m.AllocateOnNodes("blocker", full, []int{2}); err != nil {
		t.Fatal(err)
	}
	before := m.AllocatedCores()
	if _, err := m.AllocateOnNodes("big", full, []int{0, 1, 2}); err == nil {
		t.Fatal("expected failure when node 2 is occupied")
	}
	if m.AllocatedCores() != before {
		t.Fatalf("failed allocation committed cores: %d -> %d", before, m.AllocatedCores())
	}
	if free := m.FreeCores(0); free != m.Config().CoresPerNode() {
		t.Fatalf("node 0 lost %d cores to a failed allocation", m.Config().CoresPerNode()-free)
	}
}

// TestAllocatePlacedDoesNotSkipBusyNodes pins the documented contract: the
// placed order is a fill order, not a free-node filter, so a busy node in
// the prefix fails the request instead of being skipped.
func TestAllocatePlacedDoesNotSkipBusyNodes(t *testing.T) {
	m := fatTreeMachine(t, 1)
	full := m.Config().CoresPerSocket
	if _, err := m.AllocateOnNodes("blocker", full, []int{0}); err != nil {
		t.Fatal(err)
	}
	_, err := m.AllocatePlaced("a", full, 2, PlacePack)
	if err == nil {
		t.Fatal("expected failure: pack order starts at the busy node 0")
	}
	if !strings.Contains(err.Error(), "not enough free cores") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// unevenMachine returns a 5-node, 2-leaf machine: leaf 0 holds nodes
// {0,1,2}, leaf 1 only {3,4}.
func unevenMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := CabConfig()
	cfg.Net.Nodes = 5
	cfg.Net.Topology = netsim.FatTree{Leaves: 2, UplinksPerLeaf: 1}
	return MustNew(sim.NewKernel(1), cfg)
}

// TestAllocateOnUnevenLeaves exercises the short last leaf: its two nodes
// allocate and exhaust independently of the full leaf.
func TestAllocateOnUnevenLeaves(t *testing.T) {
	m := unevenMachine(t)
	if m.LeafOf(2) != 0 || m.LeafOf(3) != 1 {
		t.Fatalf("unexpected leaf layout: LeafOf = %d,%d", m.LeafOf(2), m.LeafOf(3))
	}
	full := m.Config().CoresPerSocket
	short, err := m.AllocateOnNodes("short", full, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if nodes := short.Nodes(); len(nodes) != 2 {
		t.Fatalf("short-leaf job spans %v", nodes)
	}
	if _, err := m.AllocateOnNodes("over", 1, []int{4}); err == nil {
		t.Fatal("expected failure on the exhausted short leaf")
	}
	// The full leaf is untouched and still allocates placed jobs.
	if _, err := m.AllocatePlaced("rest", full, 3, PlacePack); err != nil {
		t.Fatalf("full leaf should still fit a 3-node job: %v", err)
	}
	if _, err := m.AllocatePlaced("none", 1, 1, PlacePack); err == nil {
		t.Fatal("expected failure with every node allocated")
	}
}

// TestNodeOrderOnUnevenLeaves checks the spread order interleaves the
// uneven leaves without dropping or duplicating nodes.
func TestNodeOrderOnUnevenLeaves(t *testing.T) {
	m := unevenMachine(t)
	spread, err := m.NodeOrder(PlaceSpread)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 3, 1, 4, 2}; !equalInts(spread, want) {
		t.Fatalf("spread order = %v, want %v", spread, want)
	}
}

// TestAllocateRejectsBadRequests pins the validation boundaries.
func TestAllocateRejectsBadRequests(t *testing.T) {
	m := fatTreeMachine(t, 1)
	if _, err := m.AllocateOnNodes("empty", 1, nil); err == nil {
		t.Fatal("expected failure for an empty node list")
	}
	if _, err := m.AllocateOnNodes("", 1, []int{0}); err == nil {
		t.Fatal("expected failure for a nameless job")
	}
	if _, err := m.AllocatePlaced("rps", m.Config().CoresPerSocket+1, 1, PlacePack); err == nil {
		t.Fatal("expected failure for ranks-per-socket over capacity")
	}
	if _, err := m.AllocatePlaced("many", 1, m.Config().Nodes()+1, PlacePack); err == nil {
		t.Fatal("expected failure for more nodes than the machine has")
	}
	if _, err := m.AllocatePlaced("policy", 1, 1, "bogus"); err == nil {
		t.Fatal("expected failure for an unknown policy")
	}
}
