// Package cluster models the machine the experiments run on: a set of
// multi-socket compute nodes attached to a network fabric (a single switch
// or a multi-switch fat-tree, selected by the netsim topology), and the
// placement of software components (jobs) onto cores — including how a job's
// nodes are picked across the fabric's leaf switches.
//
// The defaults mirror one bottom-level switch of LLNL's Cab cluster as
// described in the paper's experimental setup: 18 nodes, two 8-core Intel
// Xeon E5-2670 sockets per node at 2.6 GHz, QLogic QDR switch with ~5 GB/s
// links.
package cluster

import (
	"fmt"
	"strconv"

	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// PlacementPolicy selects how a job's nodes are picked across the topology's
// leaf switches.
type PlacementPolicy string

const (
	// PlacePack fills leaves one at a time (plain node order), keeping a job
	// on as few leaves as possible.  It is the default and matches the
	// paper's single-switch process mapping exactly.
	PlacePack PlacementPolicy = "pack"
	// PlaceSpread round-robins nodes across leaves, giving the job a
	// footprint on every leaf so its traffic crosses the spine.
	PlaceSpread PlacementPolicy = "spread"
	// PlaceRandom shuffles the node order deterministically from the
	// machine's seed.
	PlaceRandom PlacementPolicy = "random"
)

// ParsePlacement parses a textual policy name; the empty string means
// PlacePack.
func ParsePlacement(s string) (PlacementPolicy, error) {
	switch PlacementPolicy(s) {
	case "", PlacePack:
		return PlacePack, nil
	case PlaceSpread:
		return PlaceSpread, nil
	case PlaceRandom:
		return PlaceRandom, nil
	default:
		return "", fmt.Errorf("cluster: unknown placement policy %q (valid: pack, spread, random)", s)
	}
}

// Config describes the machine.
type Config struct {
	// Net is the switch/link configuration.
	Net netsim.Config
	// SocketsPerNode is the number of CPU sockets per node.
	SocketsPerNode int
	// CoresPerSocket is the number of cores per socket.
	CoresPerSocket int
	// ClockHz is the core clock frequency, used to convert the cycle counts
	// of the paper's benchmark parameters (e.g. CompressionB's sleep of B
	// cycles) into time.
	ClockHz float64
	// IntraNodeLatency is the latency of a message between two ranks on the
	// same node (shared memory path).
	IntraNodeLatency sim.Duration
	// IntraNodeBandwidth is the shared-memory copy bandwidth in bytes/second.
	IntraNodeBandwidth float64
}

// CabConfig returns the Cab-like default machine.
func CabConfig() Config {
	return Config{
		Net:                netsim.CabConfig(),
		SocketsPerNode:     2,
		CoresPerSocket:     8,
		ClockHz:            2.6e9,
		IntraNodeLatency:   600 * sim.Nanosecond,
		IntraNodeBandwidth: 8e9,
	}
}

// Fingerprint returns a canonical, deterministic encoding of every field
// that influences simulated behaviour, delegating the network part to
// netsim.Config.Fingerprint.  It is the machine layer's contribution to
// content-addressed run hashing.  New Config fields MUST be added here.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("net{%s};sockets=%d;cores=%d;clock=%s;ilat=%d;ibw=%s",
		c.Net.Fingerprint(),
		c.SocketsPerNode,
		c.CoresPerSocket,
		strconv.FormatFloat(c.ClockHz, 'g', -1, 64),
		int64(c.IntraNodeLatency),
		strconv.FormatFloat(c.IntraNodeBandwidth, 'g', -1, 64))
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Net.Validate(); err != nil {
		return err
	}
	return c.validateHost()
}

// validateHost checks the non-network fields, so machine construction can
// leave the network validation (including the topology layout build) to
// netsim.New instead of running it twice.
func (c Config) validateHost() error {
	if c.SocketsPerNode <= 0 {
		return fmt.Errorf("cluster: non-positive sockets per node %d", c.SocketsPerNode)
	}
	if c.CoresPerSocket <= 0 {
		return fmt.Errorf("cluster: non-positive cores per socket %d", c.CoresPerSocket)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("cluster: non-positive clock %v", c.ClockHz)
	}
	if c.IntraNodeLatency < 0 {
		return fmt.Errorf("cluster: negative intra-node latency %v", c.IntraNodeLatency)
	}
	if c.IntraNodeBandwidth <= 0 {
		return fmt.Errorf("cluster: non-positive intra-node bandwidth %v", c.IntraNodeBandwidth)
	}
	return nil
}

// Nodes returns the number of nodes attached to the switch.
func (c Config) Nodes() int { return c.Net.Nodes }

// CoresPerNode returns the number of cores per node.
func (c Config) CoresPerNode() int { return c.SocketsPerNode * c.CoresPerSocket }

// TotalCores returns the number of cores in the whole machine.
func (c Config) TotalCores() int { return c.Nodes() * c.CoresPerNode() }

// CoreID identifies one core in the machine.
type CoreID struct {
	Node   int
	Socket int
	Core   int // core index within the socket
}

// String renders the core id as node/socket/core.
func (c CoreID) String() string { return fmt.Sprintf("n%d.s%d.c%d", c.Node, c.Socket, c.Core) }

// Placement assigns one rank of a job to a core.
type Placement struct {
	Rank int
	Core CoreID
}

// Job is a software component (a whole application or a micro-benchmark)
// placed on the machine.
type Job struct {
	Name       string
	Placements []Placement
}

// Size returns the number of ranks in the job.
func (j *Job) Size() int { return len(j.Placements) }

// NodeOf returns, for every rank, the node it is placed on (the mapping the
// MPI layer needs).
func (j *Job) NodeOf() []int {
	out := make([]int, len(j.Placements))
	for _, p := range j.Placements {
		out[p.Rank] = p.Core.Node
	}
	return out
}

// Nodes returns the sorted set of distinct nodes the job uses.
func (j *Job) Nodes() []int {
	seen := make(map[int]bool)
	var out []int
	for _, p := range j.Placements {
		if !seen[p.Core.Node] {
			seen[p.Core.Node] = true
			out = append(out, p.Core.Node)
		}
	}
	return out
}

// Machine is the simulated machine: kernel, network and core allocation
// state.
type Machine struct {
	cfg  Config
	k    *sim.Kernel
	net  *netsim.Network
	used map[CoreID]string
}

// New builds a machine on the given kernel.
func New(k *sim.Kernel, cfg Config) (*Machine, error) {
	if err := cfg.validateHost(); err != nil {
		return nil, err
	}
	net, err := netsim.New(k, cfg.Net)
	if err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg, k: k, net: net, used: make(map[CoreID]string)}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(k *sim.Kernel, cfg Config) *Machine {
	m, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Kernel returns the simulation kernel driving the machine.
func (m *Machine) Kernel() *sim.Kernel { return m.k }

// Network returns the simulated switch network.
func (m *Machine) Network() *netsim.Network { return m.net }

// Leaves returns the number of leaf switches in the machine's fabric.
func (m *Machine) Leaves() int { return m.net.Leaves() }

// LeafOf returns the leaf switch the node attaches to.
func (m *Machine) LeafOf(node int) int { return m.net.LeafOf(node) }

// NodeOrder returns the order in which nodes are filled under a placement
// policy.  Pack is plain node order (leaf-major, since the topologies assign
// nodes to leaves contiguously); spread round-robins across leaves; random
// is a deterministic shuffle derived from the machine's seed.
func (m *Machine) NodeOrder(policy PlacementPolicy) ([]int, error) {
	n := m.cfg.Nodes()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	switch policy {
	case "", PlacePack:
	case PlaceSpread:
		byLeaf := make([][]int, m.net.Leaves())
		for i := 0; i < n; i++ {
			leaf := m.net.LeafOf(i)
			byLeaf[leaf] = append(byLeaf[leaf], i)
		}
		order = order[:0]
		for round := 0; len(order) < n; round++ {
			for _, nodes := range byLeaf {
				if round < len(nodes) {
					order = append(order, nodes[round])
				}
			}
		}
	case PlaceRandom:
		rng := m.k.NewRand("placement")
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q", policy)
	}
	return order, nil
}

// CyclesToDuration converts a cycle count at the machine's clock rate into
// virtual time.  CompressionB's "bubble" parameter B is expressed in cycles.
func (m *Machine) CyclesToDuration(cycles float64) sim.Duration {
	return sim.Duration(cycles / m.cfg.ClockHz * float64(sim.Second))
}

// FreeCores returns the number of unallocated cores on the given node.
func (m *Machine) FreeCores(node int) int {
	free := 0
	for s := 0; s < m.cfg.SocketsPerNode; s++ {
		for c := 0; c < m.cfg.CoresPerSocket; c++ {
			if _, ok := m.used[CoreID{Node: node, Socket: s, Core: c}]; !ok {
				free++
			}
		}
	}
	return free
}

// AllocatedJobOn returns the job name occupying a core, if any.
func (m *Machine) AllocatedJobOn(core CoreID) (string, bool) {
	name, ok := m.used[core]
	return name, ok
}

// AllocateSpread places ranksPerSocket ranks of a new job on every socket of
// the first nodes nodes, assigning ranks in node-major, socket-minor, core
// order (the paper's process mapping: e.g. 4 processes per socket on all 18
// nodes gives 144 ranks).  It fails if any required core is already used.
func (m *Machine) AllocateSpread(name string, ranksPerSocket, nodes int) (*Job, error) {
	return m.allocate(name, ranksPerSocket, nodes, nil)
}

// AllocatePlaced is AllocateSpread with the node fill order chosen by a
// placement policy over the topology's leaves.
func (m *Machine) AllocatePlaced(name string, ranksPerSocket, nodes int, policy PlacementPolicy) (*Job, error) {
	order, err := m.NodeOrder(policy)
	if err != nil {
		return nil, err
	}
	return m.allocate(name, ranksPerSocket, nodes, order)
}

// AllocateOnNodes places ranksPerSocket ranks per socket on exactly the given
// nodes, in the given order.
func (m *Machine) AllocateOnNodes(name string, ranksPerSocket int, nodes []int) (*Job, error) {
	seen := make(map[int]bool, len(nodes))
	for _, node := range nodes {
		if node < 0 || node >= m.cfg.Nodes() {
			return nil, fmt.Errorf("cluster: node %d outside [0, %d)", node, m.cfg.Nodes())
		}
		if seen[node] {
			return nil, fmt.Errorf("cluster: duplicate node %d in allocation for %q", node, name)
		}
		seen[node] = true
	}
	return m.allocate(name, ranksPerSocket, len(nodes), nodes)
}

// allocate is the shared allocation loop; order is the node fill order (nil
// means plain 0..n-1).
func (m *Machine) allocate(name string, ranksPerSocket, nodes int, order []int) (*Job, error) {
	if name == "" {
		return nil, fmt.Errorf("cluster: job needs a name")
	}
	if ranksPerSocket <= 0 || ranksPerSocket > m.cfg.CoresPerSocket {
		return nil, fmt.Errorf("cluster: ranks per socket %d outside [1, %d]", ranksPerSocket, m.cfg.CoresPerSocket)
	}
	if nodes <= 0 || nodes > m.cfg.Nodes() {
		return nil, fmt.Errorf("cluster: node count %d outside [1, %d]", nodes, m.cfg.Nodes())
	}
	var placements []Placement
	rank := 0
	for n := 0; n < nodes; n++ {
		node := n
		if order != nil {
			node = order[n]
		}
		for s := 0; s < m.cfg.SocketsPerNode; s++ {
			allocated := 0
			for c := 0; c < m.cfg.CoresPerSocket && allocated < ranksPerSocket; c++ {
				core := CoreID{Node: node, Socket: s, Core: c}
				if _, taken := m.used[core]; taken {
					continue
				}
				placements = append(placements, Placement{Rank: rank, Core: core})
				rank++
				allocated++
			}
			if allocated < ranksPerSocket {
				// Roll back the partial allocation bookkeeping below never
				// happened (we only commit at the end), so just fail.
				return nil, fmt.Errorf("cluster: not enough free cores on node %d socket %d for job %q", node, s, name)
			}
		}
	}
	job := &Job{Name: name, Placements: placements}
	for _, p := range placements {
		m.used[p.Core] = name
	}
	return job, nil
}

// Release frees every core held by the job.
func (m *Machine) Release(job *Job) {
	if job == nil {
		return
	}
	for _, p := range job.Placements {
		if m.used[p.Core] == job.Name {
			delete(m.used, p.Core)
		}
	}
}

// AllocatedCores returns the number of cores currently allocated to any job.
func (m *Machine) AllocatedCores() int { return len(m.used) }
