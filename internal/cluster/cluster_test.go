package cluster

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

func smallConfig() Config {
	cfg := CabConfig()
	cfg.Net.Nodes = 4
	return cfg
}

func TestCabConfigShape(t *testing.T) {
	cfg := CabConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes() != 18 {
		t.Fatalf("nodes = %d, want 18", cfg.Nodes())
	}
	if cfg.CoresPerNode() != 16 {
		t.Fatalf("cores per node = %d, want 16", cfg.CoresPerNode())
	}
	if cfg.TotalCores() != 288 {
		t.Fatalf("total cores = %d, want 288", cfg.TotalCores())
	}
	if cfg.ClockHz != 2.6e9 {
		t.Fatalf("clock = %v, want 2.6 GHz", cfg.ClockHz)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Net = netsim.Config{} },
		func(c *Config) { c.SocketsPerNode = 0 },
		func(c *Config) { c.CoresPerSocket = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.IntraNodeLatency = -1 },
		func(c *Config) { c.IntraNodeBandwidth = 0 },
	}
	for i, mutate := range mutations {
		cfg := CabConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewAndMustNew(t *testing.T) {
	k := sim.NewKernel(1)
	m, err := New(k, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel() != k {
		t.Fatal("kernel not wired through")
	}
	if m.Network() == nil || m.Network().Nodes() != 4 {
		t.Fatal("network not built from config")
	}
	if _, err := New(k, Config{}); err == nil {
		t.Fatal("expected error for invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid config")
		}
	}()
	MustNew(k, Config{})
}

func TestCyclesToDuration(t *testing.T) {
	k := sim.NewKernel(1)
	m := MustNew(k, smallConfig())
	// 2.6e9 cycles at 2.6 GHz is exactly one second.
	if got := m.CyclesToDuration(2.6e9); got != sim.Second {
		t.Fatalf("CyclesToDuration(2.6e9) = %v, want 1s", got)
	}
	// The paper's smallest bubble, 2.5e4 cycles, is ~9.6 µs.
	got := m.CyclesToDuration(2.5e4)
	if got < 9*sim.Microsecond || got > 10*sim.Microsecond {
		t.Fatalf("2.5e4 cycles = %v, want ~9.6 µs", got)
	}
}

func TestCoreIDString(t *testing.T) {
	if s := (CoreID{Node: 3, Socket: 1, Core: 5}).String(); s != "n3.s1.c5" {
		t.Fatalf("String() = %q", s)
	}
}

func TestAllocateSpreadPaperLayout(t *testing.T) {
	// The paper's app layout: 4 ranks per socket on 18 nodes -> 144 ranks.
	k := sim.NewKernel(1)
	m := MustNew(k, CabConfig())
	app, err := m.AllocateSpread("FFTW", 4, 18)
	if err != nil {
		t.Fatal(err)
	}
	if app.Size() != 144 {
		t.Fatalf("ranks = %d, want 144", app.Size())
	}
	nodeOf := app.NodeOf()
	if len(nodeOf) != 144 {
		t.Fatalf("NodeOf length = %d", len(nodeOf))
	}
	// Ranks are node-major: ranks 0..7 on node 0, 8..15 on node 1, ...
	if nodeOf[0] != 0 || nodeOf[7] != 0 || nodeOf[8] != 1 || nodeOf[143] != 17 {
		t.Fatalf("unexpected rank->node mapping: %v...", nodeOf[:10])
	}
	if got := len(app.Nodes()); got != 18 {
		t.Fatalf("distinct nodes = %d, want 18", got)
	}
	if m.AllocatedCores() != 144 {
		t.Fatalf("allocated = %d, want 144", m.AllocatedCores())
	}
}

func TestAllocateMultipleJobsDisjoint(t *testing.T) {
	// ImpactB (1/socket) + app (4/socket) + second app (4/socket) must fit
	// without sharing cores (paper's co-run layout uses at most half the
	// cores per app plus the probe cores).
	k := sim.NewKernel(1)
	m := MustNew(k, CabConfig())
	impact, err := m.AllocateSpread("impact", 1, 18)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.AllocateSpread("appA", 4, 18)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AllocateSpread("appB", 3, 18)
	if err != nil {
		t.Fatal(err)
	}
	if impact.Size() != 36 || a.Size() != 144 || b.Size() != 108 {
		t.Fatalf("sizes = %d/%d/%d", impact.Size(), a.Size(), b.Size())
	}
	seen := make(map[CoreID]bool)
	for _, job := range []*Job{impact, a, b} {
		for _, p := range job.Placements {
			if seen[p.Core] {
				t.Fatalf("core %v allocated twice", p.Core)
			}
			seen[p.Core] = true
		}
	}
	// 1+4+3 = 8 ranks per socket = full socket; allocating one more rank per
	// socket must fail.
	if _, err := m.AllocateSpread("overflow", 1, 18); err == nil {
		t.Fatal("expected allocation failure when sockets are full")
	}
}

func TestAllocateErrors(t *testing.T) {
	k := sim.NewKernel(1)
	m := MustNew(k, smallConfig())
	if _, err := m.AllocateSpread("", 1, 2); err == nil {
		t.Fatal("expected error for empty name")
	}
	if _, err := m.AllocateSpread("x", 0, 2); err == nil {
		t.Fatal("expected error for zero ranks per socket")
	}
	if _, err := m.AllocateSpread("x", 99, 2); err == nil {
		t.Fatal("expected error for too many ranks per socket")
	}
	if _, err := m.AllocateSpread("x", 1, 0); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := m.AllocateSpread("x", 1, 99); err == nil {
		t.Fatal("expected error for too many nodes")
	}
}

func TestReleaseFreesCores(t *testing.T) {
	k := sim.NewKernel(1)
	m := MustNew(k, smallConfig())
	job, err := m.AllocateSpread("a", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := m.FreeCores(0)
	m.Release(job)
	after := m.FreeCores(0)
	if after != before+8 {
		t.Fatalf("free cores on node 0: before=%d after=%d", before, after)
	}
	if m.AllocatedCores() != 0 {
		t.Fatalf("allocated = %d after release", m.AllocatedCores())
	}
	// Releasing nil or an already-released job is harmless.
	m.Release(nil)
	m.Release(job)
	// The cores can be reused.
	if _, err := m.AllocateSpread("b", 8, 4); err != nil {
		t.Fatalf("reallocation failed: %v", err)
	}
}

func TestAllocatedJobOn(t *testing.T) {
	k := sim.NewKernel(1)
	m := MustNew(k, smallConfig())
	job, err := m.AllocateSpread("probe", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	core := job.Placements[0].Core
	name, ok := m.AllocatedJobOn(core)
	if !ok || name != "probe" {
		t.Fatalf("AllocatedJobOn = %q,%v", name, ok)
	}
	if _, ok := m.AllocatedJobOn(CoreID{Node: 3, Socket: 1, Core: 7}); ok {
		t.Fatal("unallocated core reported as used")
	}
}

func TestLuleshStyleCubicAllocation(t *testing.T) {
	// Lulesh runs 64 ranks: 2 per socket on 16 nodes.
	k := sim.NewKernel(1)
	m := MustNew(k, CabConfig())
	job, err := m.AllocateSpread("lulesh", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if job.Size() != 64 {
		t.Fatalf("ranks = %d, want 64", job.Size())
	}
	if len(job.Nodes()) != 16 {
		t.Fatalf("nodes used = %d, want 16", len(job.Nodes()))
	}
}
