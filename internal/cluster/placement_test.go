package cluster

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// fatTreeMachine builds a 6-node, two-leaf machine for placement tests.
func fatTreeMachine(t *testing.T, seed int64) *Machine {
	t.Helper()
	cfg := CabConfig()
	cfg.Net.Nodes = 6
	cfg.Net.Topology = netsim.FatTree{Leaves: 2, UplinksPerLeaf: 1}
	return MustNew(sim.NewKernel(seed), cfg)
}

func TestParsePlacement(t *testing.T) {
	for _, s := range []string{"", "pack", "spread", "random"} {
		if _, err := ParsePlacement(s); err != nil {
			t.Errorf("ParsePlacement(%q): %v", s, err)
		}
	}
	if _, err := ParsePlacement("diagonal"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestNodeOrderPolicies(t *testing.T) {
	m := fatTreeMachine(t, 1)
	if m.Leaves() != 2 || m.LeafOf(0) != 0 || m.LeafOf(5) != 1 {
		t.Fatalf("unexpected leaf layout: leaves=%d", m.Leaves())
	}

	pack, err := m.NodeOrder(PlacePack)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4, 5}; !equalInts(pack, want) {
		t.Fatalf("pack order = %v, want %v", pack, want)
	}

	spread, err := m.NodeOrder(PlaceSpread)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 3, 1, 4, 2, 5}; !equalInts(spread, want) {
		t.Fatalf("spread order = %v, want %v", spread, want)
	}

	// Random is a permutation, deterministic per seed, and repeatable within
	// a machine.
	r1, err := m.NodeOrder(PlaceRandom)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := m.NodeOrder(PlaceRandom)
	if !equalInts(r1, r2) {
		t.Fatalf("random order not repeatable: %v vs %v", r1, r2)
	}
	other, _ := fatTreeMachine(t, 2).NodeOrder(PlaceRandom)
	if equalInts(r1, other) {
		t.Fatalf("random order identical across seeds: %v", r1)
	}
	seen := make(map[int]bool)
	for _, n := range r1 {
		seen[n] = true
	}
	if len(seen) != 6 {
		t.Fatalf("random order is not a permutation: %v", r1)
	}

	if _, err := m.NodeOrder("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestAllocatePlacedSpreadCrossesLeaves(t *testing.T) {
	m := fatTreeMachine(t, 1)
	packed, err := m.AllocatePlaced("packed", 1, 3, PlacePack)
	if err != nil {
		t.Fatal(err)
	}
	if leaves := jobLeaves(m, packed); len(leaves) != 1 {
		t.Fatalf("packed 3-node job spans leaves %v, want one leaf", leaves)
	}
	spread, err := m.AllocatePlaced("spread", 1, 3, PlaceSpread)
	if err != nil {
		t.Fatal(err)
	}
	if leaves := jobLeaves(m, spread); len(leaves) != 2 {
		t.Fatalf("spread 3-node job spans leaves %v, want both leaves", leaves)
	}
}

func TestAllocateOnNodes(t *testing.T) {
	m := fatTreeMachine(t, 1)
	job, err := m.AllocateOnNodes("half", 2, []int{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	nodeOf := job.NodeOf()
	// Ranks fill the given nodes in order: 4 ranks per node (2 per socket).
	if nodeOf[0] != 5 || nodeOf[4] != 1 || nodeOf[8] != 3 {
		t.Fatalf("rank->node mapping %v does not follow the node list", nodeOf)
	}
	if _, err := m.AllocateOnNodes("dup", 1, []int{1, 1}); err == nil {
		t.Fatal("expected error for duplicate node")
	}
	if _, err := m.AllocateOnNodes("range", 1, []int{9}); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
}

func jobLeaves(m *Machine, j *Job) map[int]bool {
	leaves := make(map[int]bool)
	for _, node := range j.Nodes() {
		leaves[m.LeafOf(node)] = true
	}
	return leaves
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
