// Package core implements the paper's active-measurement methodology: it
// co-schedules the ImpactB probe, the CompressionB injector and application
// workloads on a simulated single-switch machine and extracts the
// measurements every model in the paper is built from:
//
//   - impact signatures — the distribution of probe-packet latencies observed
//     while a software component runs, summarized as mean, standard
//     deviation, histogram and (via the M/G/1 inversion) switch-queue
//     utilization;
//   - compression profiles — how an application's iteration time degrades as
//     CompressionB removes increasing fractions of switch capability;
//   - co-run measurements — the ground-truth slowdown of two applications
//     sharing the switch, used to validate the predictors.
//
// Every measurement runs on a fresh simulation kernel with a seed derived
// from the experiment options and a run label, so results are deterministic
// and runs can execute in parallel.
package core

import (
	"fmt"
	"hash/fnv"
	"os"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/probe"
	"github.com/hpcperf/switchprobe/internal/queuing"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/stats"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// Options collects everything a measurement run needs.
type Options struct {
	// Seed is the base seed; every run derives its own stream from it.
	Seed int64
	// Machine is the simulated machine configuration.
	Machine cluster.Config
	// MPI is the message-passing runtime configuration.
	MPI mpisim.Config
	// Probe is the ImpactB configuration.
	Probe probe.Config
	// Placement selects how application nodes are picked across the
	// topology's leaf switches (pack, spread or random; empty means pack,
	// the paper's single-switch mapping).  The probe and the injector always
	// span every node regardless, so the methodology stays topology-agnostic.
	Placement cluster.PlacementPolicy
	// Scale is the application problem scale.
	Scale workload.Scale
	// Window is the virtual-time measurement window of each run.
	Window sim.Duration
	// WarmupIterations is how many leading application iterations are
	// excluded from timing.
	WarmupIterations int
	// MinIterations is the minimum number of timed iterations required for a
	// valid runtime measurement.
	MinIterations int
	// MinProbeSamples is the minimum number of probe samples required for a
	// valid signature.
	MinProbeSamples int
	// Histogram binning (microseconds) used for impact signatures, matching
	// the range of the paper's Fig. 3.
	HistLoMicros float64
	HistHiMicros float64
	HistBins     int
	// PhaseWindows is the number of equal time windows the measurement
	// window is split into for phase-resolved signatures (the extension that
	// addresses the paper's constant-utilization assumption).  Values below 1
	// disable phase resolution.
	PhaseWindows int
}

// StrictOrderEnv is the environment switch for the golden-oracle strict
// event ordering (netsim.Config.StrictOrder): any value other than "",
// "0" or "false" pins every default-constructed machine to the strict
// pipeline.  It is resolved here, when options are constructed — never
// inside netsim.New — so the run hashes and the artifact store always key
// on the mode the simulation actually executes.
const StrictOrderEnv = "SWITCHPROBE_STRICT_ORDER"

func envStrictOrder() bool {
	switch os.Getenv(StrictOrderEnv) {
	case "", "0", "false":
		return false
	}
	return true
}

// DefaultOptions returns paper-scale options: the Cab-like 18-node machine,
// full problem sizes and an 80 ms measurement window.
func DefaultOptions() Options {
	machine := cluster.CabConfig()
	machine.Net.StrictOrder = envStrictOrder()
	return Options{
		Seed:             1,
		Machine:          machine,
		MPI:              mpisim.DefaultConfig(),
		Probe:            probe.DefaultConfig(),
		Scale:            workload.FullScale,
		Window:           80 * sim.Millisecond,
		WarmupIterations: 1,
		MinIterations:    3,
		MinProbeSamples:  30,
		HistLoMicros:     0,
		HistHiMicros:     20,
		HistBins:         40,
		PhaseWindows:     6,
	}
}

// TestOptions returns reduced options for fast unit tests and CI: a 6-node
// machine, strongly reduced problem sizes and a short window.
func TestOptions() Options {
	o := DefaultOptions()
	o.Machine.Net.Nodes = 6
	o.Scale = workload.Reduced(0.08)
	o.Window = 25 * sim.Millisecond
	o.Probe.Pause = 100 * sim.Microsecond
	o.MinProbeSamples = 20
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if err := o.Machine.Validate(); err != nil {
		return err
	}
	return o.validateRest()
}

// validateRest checks the non-machine options.  newMachine uses it directly
// and leaves machine validation to cluster/netsim construction, so each
// measurement run builds the O(nodes²) topology route table exactly once.
func (o Options) validateRest() error {
	if err := o.MPI.Validate(); err != nil {
		return err
	}
	if err := o.Probe.Validate(); err != nil {
		return err
	}
	if o.Window <= 0 {
		return fmt.Errorf("core: non-positive measurement window %v", o.Window)
	}
	if o.WarmupIterations < 0 {
		return fmt.Errorf("core: negative warmup iterations %d", o.WarmupIterations)
	}
	if o.MinIterations < 1 {
		return fmt.Errorf("core: minimum iterations must be at least 1, have %d", o.MinIterations)
	}
	if o.MinProbeSamples < 2 {
		return fmt.Errorf("core: minimum probe samples must be at least 2, have %d", o.MinProbeSamples)
	}
	if o.HistBins <= 0 || o.HistHiMicros <= o.HistLoMicros {
		return fmt.Errorf("core: invalid histogram binning [%v, %v) x %d", o.HistLoMicros, o.HistHiMicros, o.HistBins)
	}
	if o.PhaseWindows < 0 {
		return fmt.Errorf("core: negative phase window count %d", o.PhaseWindows)
	}
	if _, err := cluster.ParsePlacement(string(o.Placement)); err != nil {
		return err
	}
	return nil
}

// WithSeed returns a copy of the options with a different base seed.
func (o Options) WithSeed(seed int64) Options {
	o.Seed = seed
	return o
}

// runSeed derives a per-run seed from the base seed and a run label.
func (o Options) runSeed(label string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", o.Seed, label)
	return int64(h.Sum64())
}

// newMachine builds a fresh kernel and machine for one measurement run.
func (o Options) newMachine(label string) (*sim.Kernel, *cluster.Machine, error) {
	if err := o.validateRest(); err != nil {
		return nil, nil, err
	}
	k := sim.NewKernel(o.runSeed(label))
	m, err := cluster.New(k, o.Machine)
	if err != nil {
		return nil, nil, err
	}
	return k, m, nil
}

// Signature is what ImpactB observes while a software component runs: the
// paper's per-component description of switch usage.
type Signature struct {
	// Component is the measured component's name ("idle", an application
	// name, or a CompressionB configuration label).
	Component string
	// Samples are the probe one-way latencies in seconds.
	Samples []float64
	// Mean and StdDev summarize the samples (seconds).
	Mean   float64
	StdDev float64
	// Hist is the latency histogram in microseconds (the paper's Fig. 3
	// representation).
	Hist *stats.Histogram
	// UtilizationPct is the switch-queue utilization inferred by the M/G/1
	// model (0 when no calibration was available).
	UtilizationPct float64
	// Phases are time-resolved utilization measurements over equal
	// sub-windows of the measurement window.  They capture applications whose
	// network usage varies over time (e.g. AMG's dense phases), which the
	// constant-utilization queue model cannot represent.  Empty when phase
	// resolution is disabled or no calibration was available.
	Phases []PhaseUtilization
}

// PhaseUtilization is the switch usage observed during one sub-window of a
// component's measurement.
type PhaseUtilization struct {
	// Start and End delimit the sub-window in virtual time.
	Start, End sim.Time
	// Samples is the number of probe samples that fell into the window.
	Samples int
	// MeanLatency is the mean probe latency (seconds) within the window.
	MeanLatency float64
	// UtilizationPct is the M/G/1 utilization inferred from MeanLatency.
	UtilizationPct float64
}

// MeanStdInterval returns the [µ−σ, µ+σ] interval used by the
// AverageStDevLT model.
func (s Signature) MeanStdInterval() stats.Interval {
	return stats.MeanStdInterval(s.Mean, s.StdDev)
}

// Calibration holds the idle-switch measurements every queue-model
// computation needs.
type Calibration struct {
	// Service is the switch's M/G/1 service model (µ, Var(S)).
	Service queuing.ServiceModel
	// Idle is the probe signature of the idle switch.
	Idle Signature
}

// Runtime is an application's measured iteration rate.
type Runtime struct {
	// App is the application name.
	App string
	// Iterations is the number of timed iterations.
	Iterations int
	// TimePerIteration is the mean time per iteration.
	TimePerIteration sim.Duration
}

// DegradationPercent returns the percentage slowdown of observed relative to
// baseline: (T_obs - T_base) / T_base * 100, the paper's degradation metric.
func DegradationPercent(baseline, observed Runtime) float64 {
	if baseline.TimePerIteration <= 0 {
		return 0
	}
	return (float64(observed.TimePerIteration) - float64(baseline.TimePerIteration)) /
		float64(baseline.TimePerIteration) * 100
}

// ProfilePoint is one compression measurement of an application: the injector
// configuration, the switch utilization it causes, its impact signature and
// the application slowdown it inflicts.
type ProfilePoint struct {
	Injector       inject.Config
	UtilizationPct float64
	ImpactMean     float64
	ImpactStd      float64
	ImpactHist     *stats.Histogram
	DegradationPct float64
}

// Profile is an application's compression profile: its baseline iteration
// rate plus one point per injector configuration.  It realizes the mapping
// p_A(utilization) → degradation of the paper's Section V-B.
type Profile struct {
	App      string
	Baseline Runtime
	Points   []ProfilePoint
}

// DegradationAt interpolates the profile's utilization→degradation mapping at
// the given switch utilization percentage.
func (p Profile) DegradationAt(utilizationPct float64) (float64, error) {
	if len(p.Points) == 0 {
		return 0, fmt.Errorf("core: profile for %s has no points", p.App)
	}
	xs := make([]float64, len(p.Points))
	ys := make([]float64, len(p.Points))
	for i, pt := range p.Points {
		xs[i] = pt.UtilizationPct
		ys[i] = pt.DegradationPct
	}
	ip, err := stats.NewInterpolator(xs, ys)
	if err != nil {
		return 0, err
	}
	return ip.Eval(utilizationPct), nil
}

// --- measurement runs -------------------------------------------------------

// signatureFrom converts a probe collector into a Signature.
func (o Options) signatureFrom(component string, c *probe.Collector, cal *Calibration) (Signature, error) {
	if c.Count() < o.MinProbeSamples {
		return Signature{}, fmt.Errorf("core: only %d probe samples for %q (need %d); increase the window",
			c.Count(), component, o.MinProbeSamples)
	}
	summary := c.Summary()
	hist, err := c.Histogram(o.HistLoMicros, o.HistHiMicros, o.HistBins)
	if err != nil {
		return Signature{}, err
	}
	sig := Signature{
		Component: component,
		Samples:   c.Latencies(),
		Mean:      summary.Mean,
		StdDev:    summary.StdDev,
		Hist:      hist,
	}
	if cal != nil {
		util, err := queuing.UtilizationPercent(cal.Service, summary.Mean)
		if err != nil {
			return Signature{}, err
		}
		sig.UtilizationPct = util
		phases, err := o.phaseUtilizations(c, *cal)
		if err != nil {
			return Signature{}, err
		}
		sig.Phases = phases
	}
	return sig, nil
}

// phaseUtilizations splits the measurement window into PhaseWindows equal
// sub-windows and infers the switch utilization within each one from the
// probe samples that fall into it.  Windows without samples are skipped.
func (o Options) phaseUtilizations(c *probe.Collector, cal Calibration) ([]PhaseUtilization, error) {
	if o.PhaseWindows < 1 {
		return nil, nil
	}
	times := c.Times()
	lats := c.Latencies()
	width := sim.Duration(int64(o.Window) / int64(o.PhaseWindows))
	if width <= 0 {
		return nil, nil
	}
	type acc struct {
		sum float64
		n   int
	}
	accs := make([]acc, o.PhaseWindows)
	for i, at := range times {
		w := int(int64(at) / int64(width))
		if w < 0 {
			w = 0
		}
		if w >= o.PhaseWindows {
			w = o.PhaseWindows - 1
		}
		accs[w].sum += lats[i]
		accs[w].n++
	}
	var out []PhaseUtilization
	for w, a := range accs {
		if a.n == 0 {
			continue
		}
		mean := a.sum / float64(a.n)
		util, err := queuing.UtilizationPercent(cal.Service, mean)
		if err != nil {
			return nil, err
		}
		out = append(out, PhaseUtilization{
			Start:          sim.Time(int64(width) * int64(w)),
			End:            sim.Time(int64(width) * int64(w+1)),
			Samples:        a.n,
			MeanLatency:    mean,
			UtilizationPct: util,
		})
	}
	return out, nil
}

// Calibrate measures the idle switch with ImpactB alone and derives the
// M/G/1 service model (µ from the mean idle latency, Var(S) from its
// variance), mirroring the paper's idle-switch calibration.
func Calibrate(o Options) (Calibration, error) {
	art, err := ExecuteSpec(CalibrateSpec(o), nil)
	if err != nil {
		return Calibration{}, err
	}
	return *art.Calibration, nil
}

// runCalibrate is the live calibration run behind RunCalibrate specs.
func runCalibrate(o Options) (Calibration, error) {
	k, m, err := o.newMachine("calibrate")
	if err != nil {
		return Calibration{}, err
	}
	pr, err := probe.Launch(m, o.MPI, o.Probe)
	if err != nil {
		return Calibration{}, err
	}
	runWindow(k, m.Network(), o.Window)
	svc, err := queuing.CalibrateFromIdle(pr.Collector().Latencies())
	if err != nil {
		return Calibration{}, err
	}
	cal := Calibration{Service: svc}
	idle, err := o.signatureFrom("idle", pr.Collector(), &cal)
	if err != nil {
		return Calibration{}, err
	}
	cal.Idle = idle
	return cal, nil
}

// Slot restricts an application to part of the machine for placed co-run
// experiments: the machine's node order under the options' placement policy
// is split in half, with SlotA taking the first half and SlotB the second.
// On a two-leaf fat-tree, pack puts the two slots on different leaves while
// spread gives both slots a footprint on both leaves.
type Slot int

const (
	// SlotAll is the whole machine (the paper's setting).
	SlotAll Slot = iota
	// SlotA is the first half of the placement-policy node order.
	SlotA
	// SlotB is the second half of the placement-policy node order.
	SlotB
)

// String names the slot for run-seed labels.
func (s Slot) String() string {
	switch s {
	case SlotA:
		return "halfA"
	case SlotB:
		return "halfB"
	default:
		return "all"
	}
}

// slotNodes resolves the node list a slot may use (nil for SlotAll).  Under
// the pack policy the split lands on the leaf boundary nearest the middle,
// so the two slots occupy disjoint leaf sets whenever the topology allows it
// — the property the cross-switch campaign's "same-leaf" cases rely on —
// even when half the nodes is not a whole number of leaves.
func slotNodes(m *cluster.Machine, policy cluster.PlacementPolicy, slot Slot) ([]int, error) {
	if slot == SlotAll {
		return nil, nil
	}
	order, err := m.NodeOrder(policy)
	if err != nil {
		return nil, err
	}
	split := len(order) / 2
	if split < 1 {
		return nil, fmt.Errorf("core: machine too small to split into co-run slots (%d nodes)", len(order))
	}
	if p, _ := cluster.ParsePlacement(string(policy)); p == cluster.PlacePack {
		best := -1
		for i := 1; i < len(order); i++ {
			if m.LeafOf(order[i]) == m.LeafOf(order[i-1]) {
				continue
			}
			if best < 0 || abs(i-len(order)/2) < abs(best-len(order)/2) {
				best = i
			}
		}
		if best > 0 {
			split = best
		}
	}
	if slot == SlotA {
		return order[:split], nil
	}
	return order[split:], nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// slotLabel derives the run-seed label of a slotted measurement.  SlotAll
// keeps the historical label so default-topology results are reproducible
// across versions.
func (o Options) slotLabel(prefix string, slot Slot, rest string) string {
	if slot == SlotAll {
		return prefix + "/" + rest
	}
	policy, _ := cluster.ParsePlacement(string(o.Placement))
	return fmt.Sprintf("%s@%s+%s/%s", prefix, slot, policy, rest)
}

// appRun is a launched, continuously-looping application instance.
type appRun struct {
	app      workload.App
	class    string
	job      *cluster.Job
	world    *mpisim.World
	iterEnds []sim.Time
}

// launchAppLoop allocates the application's cores (under the options'
// placement policy, restricted to the slot's nodes) and starts every rank in
// an endless iteration loop; rank 0 records the completion time of each
// iteration.
func launchAppLoop(m *cluster.Machine, o Options, app workload.App, class string, slot Slot) (*appRun, error) {
	nodes, err := slotNodes(m, o.Placement, slot)
	if err != nil {
		return nil, err
	}
	var job *cluster.Job
	if nodes == nil {
		rps, useNodes := app.Placement(m.Config().Nodes())
		job, err = m.AllocatePlaced(class, rps, useNodes, o.Placement)
	} else {
		rps, useNodes := app.Placement(len(nodes))
		job, err = m.AllocateOnNodes(class, rps, nodes[:useNodes])
	}
	if err != nil {
		return nil, fmt.Errorf("core: allocating cores for %s: %w", class, err)
	}
	world, err := mpisim.NewWorld(m, job, o.MPI)
	if err != nil {
		m.Release(job)
		return nil, err
	}
	ar := &appRun{app: app, class: class, job: job, world: world}
	world.LaunchProgram(func(r *mpisim.Rank, _ mpisim.Cont) {
		// An endless iteration loop in continuation-passing style: it runs on
		// either rank runtime and never invokes the done continuation (the
		// measurement window ends it via Kernel.Shutdown).
		iter := 0
		var loop, after mpisim.Cont
		loop = func() { app.IterateThen(r, iter, after) }
		after = func() {
			if r.Rank() == 0 {
				ar.iterEnds = append(ar.iterEnds, r.Now())
			}
			iter++
			loop()
		}
		loop()
	})
	return ar, nil
}

// runtime converts the recorded iteration end times into a Runtime.
func (ar *appRun) runtime(o Options) (Runtime, error) {
	warm := o.WarmupIterations
	timed := len(ar.iterEnds) - 1 - warm
	if timed < o.MinIterations {
		return Runtime{}, fmt.Errorf(
			"core: %s completed only %d iterations (need %d timed after %d warmup); increase the window",
			ar.app.Name(), len(ar.iterEnds), o.MinIterations, warm)
	}
	span := ar.iterEnds[len(ar.iterEnds)-1].Sub(ar.iterEnds[warm])
	return Runtime{
		App:              ar.app.Name(),
		Iterations:       timed,
		TimePerIteration: span / sim.Duration(timed),
	}, nil
}

// MeasureAppImpact runs ImpactB while the application runs and returns the
// application's impact signature (the paper's Fig. 3 measurement).
func MeasureAppImpact(o Options, cal Calibration, app workload.App) (Signature, error) {
	return MeasureAppImpactSlot(o, cal, app, SlotAll)
}

// MeasureAppImpactSlot is MeasureAppImpact with the application restricted
// to one half of the machine (the probe still spans every node).
func MeasureAppImpactSlot(o Options, cal Calibration, app workload.App, slot Slot) (Signature, error) {
	art, err := ExecuteSpec(AppImpactSpec(o, app, slot), &cal)
	if err != nil {
		return Signature{}, err
	}
	return *art.Signature, nil
}

// runAppImpact is the live measurement run behind RunAppImpact specs.
func runAppImpact(o Options, cal Calibration, app workload.App, slot Slot) (Signature, error) {
	k, m, err := o.newMachine(o.slotLabel("impact", slot, app.Name()))
	if err != nil {
		return Signature{}, err
	}
	pr, err := probe.Launch(m, o.MPI, o.Probe)
	if err != nil {
		return Signature{}, err
	}
	if _, err := launchAppLoop(m, o, app, app.Name(), slot); err != nil {
		return Signature{}, err
	}
	runWindow(k, m.Network(), o.Window)
	return o.signatureFrom(app.Name(), pr.Collector(), &cal)
}

// MeasureInjectorImpact runs ImpactB while a CompressionB configuration runs
// and returns the configuration's impact signature (the measurement behind
// the paper's Fig. 6).
func MeasureInjectorImpact(o Options, cal Calibration, cfg inject.Config) (Signature, error) {
	art, err := ExecuteSpec(InjectorImpactSpec(o, cfg), &cal)
	if err != nil {
		return Signature{}, err
	}
	return *art.Signature, nil
}

// runInjectorImpact is the live measurement run behind RunInjectorImpact
// specs.
func runInjectorImpact(o Options, cal Calibration, cfg inject.Config) (Signature, error) {
	k, m, err := o.newMachine("impact/" + cfg.Label())
	if err != nil {
		return Signature{}, err
	}
	pr, err := probe.Launch(m, o.MPI, o.Probe)
	if err != nil {
		return Signature{}, err
	}
	if _, err := inject.Launch(m, o.MPI, cfg); err != nil {
		return Signature{}, err
	}
	runWindow(k, m.Network(), o.Window)
	return o.signatureFrom(cfg.Label(), pr.Collector(), &cal)
}

// MeasureAppBaseline measures an application's iteration rate with the switch
// to itself.
func MeasureAppBaseline(o Options, app workload.App) (Runtime, error) {
	return MeasureAppBaselineSlot(o, app, SlotAll)
}

// MeasureAppBaselineSlot is MeasureAppBaseline with the application
// restricted to one half of the machine, the baseline every placed co-run
// measurement is judged against.
func MeasureAppBaselineSlot(o Options, app workload.App, slot Slot) (Runtime, error) {
	art, err := ExecuteSpec(BaselineSpec(o, app, slot), nil)
	if err != nil {
		return Runtime{}, err
	}
	return *art.Runtime, nil
}

// runBaseline is the live measurement run behind RunBaseline specs.
func runBaseline(o Options, app workload.App, slot Slot) (Runtime, error) {
	k, m, err := o.newMachine(o.slotLabel("baseline", slot, app.Name()))
	if err != nil {
		return Runtime{}, err
	}
	ar, err := launchAppLoop(m, o, app, app.Name(), slot)
	if err != nil {
		return Runtime{}, err
	}
	runWindow(k, m.Network(), o.Window)
	return ar.runtime(o)
}

// MeasureAppUnderInjector measures an application's iteration rate while a
// CompressionB configuration removes part of the switch capability (the
// paper's compression experiment, Fig. 7).
func MeasureAppUnderInjector(o Options, app workload.App, cfg inject.Config) (Runtime, error) {
	return MeasureAppUnderInjectorSlot(o, app, cfg, SlotAll)
}

// MeasureAppUnderInjectorSlot is MeasureAppUnderInjector with the
// application restricted to one half of the machine (the injector still
// spans every node, removing capability fabric-wide).
func MeasureAppUnderInjectorSlot(o Options, app workload.App, cfg inject.Config, slot Slot) (Runtime, error) {
	art, err := ExecuteSpec(CompressSpec(o, app, cfg, slot), nil)
	if err != nil {
		return Runtime{}, err
	}
	return *art.Runtime, nil
}

// runCompress is the live measurement run behind RunCompress specs.
func runCompress(o Options, app workload.App, cfg inject.Config, slot Slot) (Runtime, error) {
	k, m, err := o.newMachine(o.slotLabel("compress", slot, app.Name()+"/"+cfg.Label()))
	if err != nil {
		return Runtime{}, err
	}
	if _, err := inject.Launch(m, o.MPI, cfg); err != nil {
		return Runtime{}, err
	}
	ar, err := launchAppLoop(m, o, app, app.Name(), slot)
	if err != nil {
		return Runtime{}, err
	}
	runWindow(k, m.Network(), o.Window)
	return ar.runtime(o)
}

// MeasureAppPair measures the iteration rates of two applications sharing the
// switch (the ground truth of the paper's Table I).  Both run in continuous
// loops for the whole window.
func MeasureAppPair(o Options, appA, appB workload.App) (Runtime, Runtime, error) {
	return executePair(PairSpec(o, appA, appB, false))
}

// MeasureAppPairPlaced measures a co-run with each application restricted to
// one half of the machine's placement-policy node order: appA in SlotA, appB
// in SlotB.  On a multi-leaf topology this is the cross-switch ground truth —
// pack keeps the two jobs on disjoint leaves, spread interleaves both across
// every leaf so they contend on the spine trunks.
func MeasureAppPairPlaced(o Options, appA, appB workload.App) (Runtime, Runtime, error) {
	return executePair(PairSpec(o, appA, appB, true))
}

// executePair unpacks a pair spec's two runtimes.
func executePair(spec RunSpec) (Runtime, Runtime, error) {
	art, err := ExecuteSpec(spec, nil)
	if err != nil {
		return Runtime{}, Runtime{}, err
	}
	return *art.Runtime, *art.RuntimeB, nil
}

// runPair is the live measurement run behind unplaced RunPair specs.
func runPair(o Options, appA, appB workload.App) (Runtime, Runtime, error) {
	return measureAppPair(o, "pair/"+appA.Name()+"+"+appB.Name(), appA, appB, SlotAll, SlotAll)
}

// runPairPlaced is the live measurement run behind placed RunPair specs.
func runPairPlaced(o Options, appA, appB workload.App) (Runtime, Runtime, error) {
	policy, _ := cluster.ParsePlacement(string(o.Placement))
	label := fmt.Sprintf("pairx/%s/%s+%s", policy, appA.Name(), appB.Name())
	return measureAppPair(o, label, appA, appB, SlotA, SlotB)
}

func measureAppPair(o Options, label string, appA, appB workload.App, slotA, slotB Slot) (Runtime, Runtime, error) {
	k, m, err := o.newMachine(label)
	if err != nil {
		return Runtime{}, Runtime{}, err
	}
	classA, classB := appA.Name(), appB.Name()
	if classA == classB {
		classB = classB + "#2"
	}
	runA, err := launchAppLoop(m, o, appA, classA, slotA)
	if err != nil {
		return Runtime{}, Runtime{}, err
	}
	runB, err := launchAppLoop(m, o, appB, classB, slotB)
	if err != nil {
		return Runtime{}, Runtime{}, err
	}
	runWindow(k, m.Network(), o.Window)
	ra, err := runA.runtime(o)
	if err != nil {
		return Runtime{}, Runtime{}, err
	}
	rb, err := runB.runtime(o)
	if err != nil {
		return Runtime{}, Runtime{}, err
	}
	return ra, rb, nil
}

// BuildProfile measures an application's compression profile over the given
// injector configurations.  Injector signatures (for utilization and the
// look-up-table keys) are measured once per configuration; pass them in via
// injSignatures when already available (keyed by Config.Label()), otherwise
// they are measured here.
func BuildProfile(o Options, cal Calibration, app workload.App, grid []inject.Config,
	injSignatures map[string]Signature) (Profile, error) {
	return BuildProfileSlot(o, cal, app, grid, injSignatures, SlotAll)
}

// BuildProfileSlot is BuildProfile with the application restricted to one
// half of the machine; injector signatures are slot-independent (the
// injector spans every node) and can be shared across slots and placements.
func BuildProfileSlot(o Options, cal Calibration, app workload.App, grid []inject.Config,
	injSignatures map[string]Signature, slot Slot) (Profile, error) {
	return AssembleProfile(func(spec RunSpec) (Artifact, error) {
		if spec.Kind == RunInjectorImpact {
			if sig, ok := injSignatures[spec.Injector.Label()]; ok {
				return Artifact{Signature: &sig}, nil
			}
			return ExecuteSpec(spec, &cal)
		}
		return ExecuteSpec(spec, nil)
	}, o, app, grid, slot)
}

// AssembleProfile builds an application's compression profile by requesting
// every needed run — the slot baseline, each grid configuration's injector
// signature and the application's compressed runtime — through the given
// executor.  It is the single assembly implementation shared by the direct
// (live) path above and the engine's cached path.
func AssembleProfile(run func(RunSpec) (Artifact, error), o Options, app workload.App,
	grid []inject.Config, slot Slot) (Profile, error) {
	art, err := run(BaselineSpec(o, app, slot))
	if err != nil {
		return Profile{}, err
	}
	baseline := *art.Runtime
	prof := Profile{App: app.Name(), Baseline: baseline}
	for _, cfg := range grid {
		sart, err := run(InjectorImpactSpec(o, cfg))
		if err != nil {
			return Profile{}, err
		}
		sig := *sart.Signature
		rart, err := run(CompressSpec(o, app, cfg, slot))
		if err != nil {
			return Profile{}, err
		}
		prof.Points = append(prof.Points, ProfilePoint{
			Injector:       cfg,
			UtilizationPct: sig.UtilizationPct,
			ImpactMean:     sig.Mean,
			ImpactStd:      sig.StdDev,
			ImpactHist:     sig.Hist,
			DegradationPct: DegradationPercent(baseline, *rart.Runtime),
		})
	}
	return prof, nil
}
