package core

import (
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/workload"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TestOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Options){
		func(o *Options) { o.Window = 0 },
		func(o *Options) { o.WarmupIterations = -1 },
		func(o *Options) { o.MinIterations = 0 },
		func(o *Options) { o.MinProbeSamples = 1 },
		func(o *Options) { o.HistBins = 0 },
		func(o *Options) { o.HistHiMicros = 0 },
		func(o *Options) { o.Machine.ClockHz = 0 },
		func(o *Options) { o.MPI.ControlBytes = 0 },
		func(o *Options) { o.Probe.MessageBytes = 0 },
	}
	for i, mutate := range mutations {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestWithSeedAndRunSeeds(t *testing.T) {
	o := DefaultOptions()
	o2 := o.WithSeed(99)
	if o2.Seed != 99 || o.Seed == 99 {
		t.Fatal("WithSeed should not mutate the receiver")
	}
	if o.runSeed("a") == o.runSeed("b") {
		t.Fatal("different labels must give different run seeds")
	}
	if o.runSeed("a") != o.runSeed("a") {
		t.Fatal("same label must give the same run seed")
	}
	if o.runSeed("a") == o2.runSeed("a") {
		t.Fatal("different base seeds must give different run seeds")
	}
}

func TestDegradationPercent(t *testing.T) {
	base := Runtime{TimePerIteration: 1000}
	obs := Runtime{TimePerIteration: 1500}
	if got := DegradationPercent(base, obs); got != 50 {
		t.Fatalf("degradation = %v, want 50", got)
	}
	if got := DegradationPercent(Runtime{}, obs); got != 0 {
		t.Fatalf("degenerate baseline should give 0, got %v", got)
	}
	faster := Runtime{TimePerIteration: 900}
	if got := DegradationPercent(base, faster); got != -10 {
		t.Fatalf("speedup should be negative degradation, got %v", got)
	}
}

func TestProfileDegradationAt(t *testing.T) {
	p := Profile{
		App: "X",
		Points: []ProfilePoint{
			{UtilizationPct: 80, DegradationPct: 100},
			{UtilizationPct: 20, DegradationPct: 10},
			{UtilizationPct: 50, DegradationPct: 40},
		},
	}
	cases := []struct{ u, want float64 }{
		{20, 10}, {50, 40}, {80, 100}, {35, 25}, {0, 10}, {95, 100},
	}
	for _, c := range cases {
		got, err := p.DegradationAt(c.u)
		if err != nil {
			t.Fatal(err)
		}
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("DegradationAt(%v) = %v, want %v", c.u, got, c.want)
		}
	}
	if _, err := (Profile{App: "empty"}).DegradationAt(50); err == nil {
		t.Fatal("expected error for empty profile")
	}
}

func TestCalibrate(t *testing.T) {
	cal, err := Calibrate(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	meanMicros := cal.Idle.Mean * 1e6
	if meanMicros < 0.9 || meanMicros > 2.5 {
		t.Fatalf("idle mean %.3f µs outside the expected Cab-like band", meanMicros)
	}
	if cal.Service.Mu <= 0 || cal.Service.VarS < 0 {
		t.Fatalf("invalid service model %+v", cal.Service)
	}
	if cal.Idle.Hist == nil || cal.Idle.Hist.Total() == 0 {
		t.Fatal("idle histogram empty")
	}
	if len(cal.Idle.Samples) < TestOptions().MinProbeSamples {
		t.Fatalf("too few idle samples: %d", len(cal.Idle.Samples))
	}
	// The idle switch should be reported as lightly utilized.
	if cal.Idle.UtilizationPct > 35 {
		t.Fatalf("idle utilization %.1f%% unreasonably high", cal.Idle.UtilizationPct)
	}
}

func TestSignatureTooFewSamples(t *testing.T) {
	o := TestOptions()
	o.Window = 300 * sim.Microsecond // far too short for MinProbeSamples
	_, err := Calibrate(o)
	if err == nil || !strings.Contains(err.Error(), "probe samples") {
		t.Fatalf("expected too-few-samples error, got %v", err)
	}
}

func TestInjectorUtilizationOrdering(t *testing.T) {
	o := TestOptions()
	cal, err := Calibrate(o)
	if err != nil {
		t.Fatal(err)
	}
	light, err := MeasureInjectorImpact(o, cal, inject.NewConfig(1, 1, 2.5e7))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := MeasureInjectorImpact(o, cal, inject.NewConfig(7, 10, 2.5e4))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.UtilizationPct <= light.UtilizationPct {
		t.Fatalf("heavy injector utilization (%.1f%%) not above light (%.1f%%)",
			heavy.UtilizationPct, light.UtilizationPct)
	}
	if heavy.Mean <= light.Mean {
		t.Fatalf("heavy injector mean latency (%.3g) not above light (%.3g)", heavy.Mean, light.Mean)
	}
	if heavy.UtilizationPct < 30 {
		t.Fatalf("heavy injector utilization only %.1f%%; expected substantial switch usage", heavy.UtilizationPct)
	}
	if light.UtilizationPct > 50 {
		t.Fatalf("light injector utilization %.1f%%; expected a lightly used switch", light.UtilizationPct)
	}
}

func TestAppBaselineAndSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("full baseline+signature campaign is slow; skipped in -short mode")
	}
	o := TestOptions()
	cal, err := Calibrate(o)
	if err != nil {
		t.Fatal(err)
	}
	fftw := workload.NewFFTW(o.Scale)
	base, err := MeasureAppBaseline(o, fftw)
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations < o.MinIterations || base.TimePerIteration <= 0 {
		t.Fatalf("bad baseline %+v", base)
	}
	sig, err := MeasureAppImpact(o, cal, fftw)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Component != "FFTW" {
		t.Fatalf("component = %q", sig.Component)
	}
	// A communication-heavy application must raise probe latency above idle.
	if sig.Mean <= cal.Idle.Mean {
		t.Fatalf("FFTW impact mean (%.3g) not above idle (%.3g)", sig.Mean, cal.Idle.Mean)
	}
	if sig.UtilizationPct <= cal.Idle.UtilizationPct {
		t.Fatalf("FFTW utilization (%.1f%%) not above idle (%.1f%%)",
			sig.UtilizationPct, cal.Idle.UtilizationPct)
	}
}

func TestCompressionDegradationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("compression campaign is slow; skipped in -short mode")
	}
	o := TestOptions()
	fftw := workload.NewFFTW(o.Scale)
	mcb := workload.NewMCB(o.Scale)
	heavy := inject.NewConfig(7, 10, 2.5e4)

	baseFFTW, err := MeasureAppBaseline(o, fftw)
	if err != nil {
		t.Fatal(err)
	}
	degFFTW, err := MeasureAppUnderInjector(o, fftw, heavy)
	if err != nil {
		t.Fatal(err)
	}
	baseMCB, err := MeasureAppBaseline(o, mcb)
	if err != nil {
		t.Fatal(err)
	}
	degMCB, err := MeasureAppUnderInjector(o, mcb, heavy)
	if err != nil {
		t.Fatal(err)
	}
	dFFTW := DegradationPercent(baseFFTW, degFFTW)
	dMCB := DegradationPercent(baseMCB, degMCB)
	if dFFTW < 20 {
		t.Fatalf("FFTW degradation under heavy injection only %.1f%%; expected substantial slowdown", dFFTW)
	}
	if dMCB > dFFTW/2 {
		t.Fatalf("MCB degradation (%.1f%%) should be far below FFTW's (%.1f%%)", dMCB, dFFTW)
	}
}

func TestMeasureAppPairSelfCoRun(t *testing.T) {
	if testing.Short() {
		t.Skip("co-run campaign is slow; skipped in -short mode")
	}
	o := TestOptions()
	fftw := workload.NewFFTW(o.Scale)
	base, err := MeasureAppBaseline(o, fftw)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb, err := MeasureAppPair(o, fftw, fftw)
	if err != nil {
		t.Fatal(err)
	}
	if ra.App != "FFTW" || rb.App != "FFTW" {
		t.Fatalf("apps = %q/%q", ra.App, rb.App)
	}
	da := DegradationPercent(base, ra)
	db := DegradationPercent(base, rb)
	// Two copies of the most network-hungry application must slow each other
	// down measurably (Table I reports 45% on Cab).
	if da < 5 || db < 5 {
		t.Fatalf("self co-run degradations too small: %.1f%% / %.1f%%", da, db)
	}
}

func TestBuildProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profile campaign is slow; skipped in -short mode")
	}
	o := TestOptions()
	cal, err := Calibrate(o)
	if err != nil {
		t.Fatal(err)
	}
	grid := []inject.Config{
		inject.NewConfig(1, 1, 2.5e7),
		inject.NewConfig(7, 10, 2.5e4),
	}
	prof, err := BuildProfile(o, cal, workload.NewMILC(o.Scale), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prof.App != "MILC" || len(prof.Points) != 2 {
		t.Fatalf("profile = %+v", prof)
	}
	light, heavy := prof.Points[0], prof.Points[1]
	if heavy.UtilizationPct <= light.UtilizationPct {
		t.Fatalf("utilization not ordered: %.1f vs %.1f", light.UtilizationPct, heavy.UtilizationPct)
	}
	if heavy.DegradationPct <= light.DegradationPct {
		t.Fatalf("degradation not ordered: %.1f vs %.1f", light.DegradationPct, heavy.DegradationPct)
	}
	if _, err := prof.DegradationAt(50); err != nil {
		t.Fatal(err)
	}
}

func TestBuildProfileReusesSignatures(t *testing.T) {
	o := TestOptions()
	cal, err := Calibrate(o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := inject.NewConfig(1, 1, 2.5e6)
	sig, err := MeasureInjectorImpact(o, cal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(o, cal, workload.NewMCB(o.Scale), []inject.Config{cfg},
		map[string]Signature{cfg.Label(): sig})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Points[0].UtilizationPct != sig.UtilizationPct {
		t.Fatal("precomputed signature not reused")
	}
}

func TestMeanStdInterval(t *testing.T) {
	s := Signature{Mean: 10, StdDev: 2}
	iv := s.MeanStdInterval()
	if iv.Lo != 8 || iv.Hi != 12 {
		t.Fatalf("interval = %+v", iv)
	}
}

func TestDeterministicMeasurements(t *testing.T) {
	o := TestOptions()
	a, err := MeasureAppBaseline(o, workload.NewAMG(o.Scale))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureAppBaseline(o, workload.NewAMG(o.Scale))
	if err != nil {
		t.Fatal(err)
	}
	if a.TimePerIteration != b.TimePerIteration || a.Iterations != b.Iterations {
		t.Fatalf("non-deterministic baseline: %+v vs %+v", a, b)
	}
}
