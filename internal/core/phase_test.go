package core

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/workload"
)

func TestPhaseUtilizationsInSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("phase-resolved campaign is slow; skipped in -short mode")
	}
	o := TestOptions()
	cal, err := Calibrate(o)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := MeasureAppImpact(o, cal, workload.NewMILC(o.Scale))
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Phases) == 0 {
		t.Fatal("expected phase-resolved utilization data")
	}
	if len(sig.Phases) > o.PhaseWindows {
		t.Fatalf("phases = %d, want at most %d", len(sig.Phases), o.PhaseWindows)
	}
	totalSamples := 0
	for i, ph := range sig.Phases {
		if ph.UtilizationPct < 0 || ph.UtilizationPct > 100 {
			t.Fatalf("phase %d utilization %v outside [0,100]", i, ph.UtilizationPct)
		}
		if ph.Samples <= 0 {
			t.Fatalf("phase %d has no samples", i)
		}
		if ph.End <= ph.Start {
			t.Fatalf("phase %d has invalid window [%v, %v]", i, ph.Start, ph.End)
		}
		if ph.MeanLatency <= 0 {
			t.Fatalf("phase %d mean latency %v", i, ph.MeanLatency)
		}
		totalSamples += ph.Samples
	}
	if totalSamples != len(sig.Samples) {
		t.Fatalf("phase samples (%d) do not add up to the signature samples (%d)",
			totalSamples, len(sig.Samples))
	}
}

func TestPhaseResolutionDisabled(t *testing.T) {
	o := TestOptions()
	o.PhaseWindows = 0
	cal, err := Calibrate(o)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := MeasureAppImpact(o, cal, workload.NewMCB(o.Scale))
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Phases) != 0 {
		t.Fatalf("phases should be absent when disabled, got %d", len(sig.Phases))
	}
}

func TestPhaseWindowsValidation(t *testing.T) {
	o := DefaultOptions()
	o.PhaseWindows = -1
	if err := o.Validate(); err == nil {
		t.Fatal("expected validation error for negative phase windows")
	}
	o.PhaseWindows = 0
	if err := o.Validate(); err != nil {
		t.Fatalf("zero phase windows should be allowed (disabled): %v", err)
	}
}

func TestPhasedAppShowsUtilizationVariation(t *testing.T) {
	// AMG alternates communication-heavy V-cycles with long dense phases, so
	// its per-window utilization should vary more than the idle switch's.
	o := TestOptions()
	cal, err := Calibrate(o)
	if err != nil {
		t.Fatal(err)
	}
	amg := workload.NewAMG(o.Scale)
	// Make the dense phase long and frequent so phases clearly alternate
	// within the short CI window.
	amg.DensePhaseInterval = 2
	sig, err := MeasureAppImpact(o, cal, amg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Phases) < 2 {
		t.Skipf("not enough phases to compare (%d)", len(sig.Phases))
	}
	lo, hi := 200.0, -1.0
	for _, ph := range sig.Phases {
		if ph.UtilizationPct < lo {
			lo = ph.UtilizationPct
		}
		if ph.UtilizationPct > hi {
			hi = ph.UtilizationPct
		}
	}
	if hi < lo {
		t.Fatalf("no phase data: lo=%v hi=%v", lo, hi)
	}
	// The variation does not need to be large in absolute terms, but the
	// phase machinery must produce distinct values rather than copies of the
	// mean.
	if hi == lo && sig.UtilizationPct > 1 {
		t.Fatalf("all phases identical (%.2f%%) despite non-trivial mean utilization", hi)
	}
}
