package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// SimUsage aggregates the kernel activity counters (sim.Kernel.Stats) of
// every measurement run executed by this package since the last Reset, plus
// the virtual and wall time those runs covered.  Runs execute in parallel
// across workers, so WallNS is the summed per-run wall time, not elapsed
// time; EventsPerSecond is therefore the mean single-run simulator
// throughput.
type SimUsage struct {
	Runs            int64
	EventsScheduled int64
	EventsFired     int64
	EventsCancelled int64
	PoolReuses      int64
	FastPathEvents  int64
	EventsElided    int64
	ProcSwitches    int64
	ProcFastResumes int64
	// Relaxed-engine train fusion telemetry (netsim.Stats): fused trains,
	// the packets they carried, fusion attempts cut short, and credit
	// releases clamped to keep port ledgers sorted.
	TrainsWalked int64
	TrainPackets int64
	TrainAborts  int64
	LedgerClamps int64
	// Fault-injection telemetry (netsim.Stats): trunk failures applied,
	// packets lost to down trunks and re-injected, failover route
	// recomputations, and the summed retransmit backoff.  All zero unless a
	// run carried an active netsim.FaultPlan.
	TrunksFailed         int64
	PacketsRetransmitted int64
	RoutesRecomputed     int64
	RetryBackoffNs       int64
	VirtualNS            int64
	WallNS               int64
}

// EventsPerSecond returns the mean events-per-wall-second throughput of one
// simulation run, counting both fired kernel events and events the network
// layer's cut-through fast path executed on its deferred lane.
func (u SimUsage) EventsPerSecond() float64 {
	if u.WallNS <= 0 {
		return 0
	}
	return float64(u.EventsFired+u.EventsElided) / (float64(u.WallNS) / 1e9)
}

// RealTimeFactor returns how much faster than real time the simulated clock
// advanced (virtual seconds per wall second of simulation).
func (u SimUsage) RealTimeFactor() float64 {
	if u.WallNS <= 0 {
		return 0
	}
	return float64(u.VirtualNS) / float64(u.WallNS)
}

// String renders the usage as a one-line summary suitable for CLI output.
func (u SimUsage) String() string {
	pooledPct, fastPct := 0.0, 0.0
	if u.EventsScheduled > 0 {
		pooledPct = 100 * float64(u.PoolReuses) / float64(u.EventsScheduled)
		fastPct = 100 * float64(u.FastPathEvents) / float64(u.EventsScheduled)
	}
	elidedPct := 0.0
	if u.EventsFired+u.EventsElided > 0 {
		elidedPct = 100 * float64(u.EventsElided) / float64(u.EventsFired+u.EventsElided)
	}
	pktsPerTrain := 0.0
	if u.TrainsWalked > 0 {
		pktsPerTrain = float64(u.TrainPackets) / float64(u.TrainsWalked)
	}
	faults := ""
	if u.TrunksFailed > 0 || u.PacketsRetransmitted > 0 || u.RoutesRecomputed > 0 {
		// Rendered only when fault injection was active, so fault-free
		// output stays byte-identical to earlier versions and the section
		// is grep-able in campaign logs.
		faults = fmt.Sprintf(", faults: %d trunk failures, %d retransmits (%.2fms backoff), %d reroutes",
			u.TrunksFailed, u.PacketsRetransmitted, float64(u.RetryBackoffNs)/1e6, u.RoutesRecomputed)
	}
	return fmt.Sprintf(
		"%d runs, %.2fM events fired + %.2fM cut-through (%.1f%% saved, %.1f%% pooled, %.1f%% fast-path), %.2fM proc switches, %.2fM fast resumes, %.2fM trains (%.1f pkts/train, %.2fM aborts, %d clamps)%s, %.2fM events/s/run, %.1fx real time",
		u.Runs, float64(u.EventsFired)/1e6, float64(u.EventsElided)/1e6, elidedPct, pooledPct, fastPct,
		float64(u.ProcSwitches)/1e6, float64(u.ProcFastResumes)/1e6,
		float64(u.TrainsWalked)/1e6, pktsPerTrain, float64(u.TrainAborts)/1e6, u.LedgerClamps, faults,
		u.EventsPerSecond()/1e6, u.RealTimeFactor())
}

// simUsage is the process-wide accumulator.  Measurement runs execute
// concurrently (experiments fan out over a worker pool), so it is updated
// with atomics.
var simUsage struct {
	runs            atomic.Int64
	eventsScheduled atomic.Int64
	eventsFired     atomic.Int64
	eventsCancelled atomic.Int64
	poolReuses      atomic.Int64
	fastPathEvents  atomic.Int64
	eventsElided    atomic.Int64
	procSwitches    atomic.Int64
	procFastResumes atomic.Int64
	trainsWalked    atomic.Int64
	trainPackets    atomic.Int64
	trainAborts     atomic.Int64
	ledgerClamps    atomic.Int64
	trunksFailed    atomic.Int64
	retransmits     atomic.Int64
	reroutes        atomic.Int64
	retryBackoffNS  atomic.Int64
	virtualNS       atomic.Int64
	wallNS          atomic.Int64
}

// recordRun folds one finished kernel's counters into the accumulator, plus
// the run's network-layer execution telemetry when a network is attached.
func recordRun(k *sim.Kernel, net *netsim.Network, wall time.Duration) {
	st := k.Stats()
	simUsage.runs.Add(1)
	simUsage.eventsScheduled.Add(int64(st.EventsScheduled))
	simUsage.eventsFired.Add(int64(st.EventsFired))
	simUsage.eventsElided.Add(int64(st.EventsElided))
	simUsage.eventsCancelled.Add(int64(st.EventsCancelled))
	simUsage.poolReuses.Add(int64(st.PoolReuses))
	simUsage.fastPathEvents.Add(int64(st.FastPathEvents))
	simUsage.procSwitches.Add(int64(st.ProcSwitches))
	simUsage.procFastResumes.Add(int64(st.ProcFastResumes))
	if net != nil {
		ns := net.Stats()
		simUsage.trainsWalked.Add(ns.TrainsWalked)
		simUsage.trainPackets.Add(ns.TrainPackets)
		var aborts int64
		for _, v := range ns.TrainAborts {
			aborts += v
		}
		simUsage.trainAborts.Add(aborts)
		simUsage.ledgerClamps.Add(ns.LedgerClamps)
		simUsage.trunksFailed.Add(ns.TrunksFailed)
		simUsage.retransmits.Add(ns.PacketsRetransmitted)
		simUsage.reroutes.Add(ns.RoutesRecomputed)
		simUsage.retryBackoffNS.Add(ns.RetryBackoffNs)
	}
	simUsage.virtualNS.Add(int64(k.Now()))
	simUsage.wallNS.Add(wall.Nanoseconds())
}

// RecordSimRun folds a finished kernel's activity counters — and, when a
// network is attached, its execution and fault telemetry — into the
// process-wide accumulator.  It is the exported entry point for campaigns
// that drive netsim directly (the fault-injection probes in
// internal/experiments) rather than through this package's measurement
// runners, so their runs still show up in the CLI's Simulator line.
func RecordSimRun(k *sim.Kernel, net *netsim.Network, wall time.Duration) {
	recordRun(k, net, wall)
}

// SimUsageSnapshot returns the accumulated kernel activity of all measurement
// runs so far.
func SimUsageSnapshot() SimUsage {
	return SimUsage{
		Runs:            simUsage.runs.Load(),
		EventsScheduled: simUsage.eventsScheduled.Load(),
		EventsFired:     simUsage.eventsFired.Load(),
		EventsCancelled: simUsage.eventsCancelled.Load(),
		PoolReuses:      simUsage.poolReuses.Load(),
		FastPathEvents:  simUsage.fastPathEvents.Load(),
		EventsElided:    simUsage.eventsElided.Load(),
		ProcSwitches:    simUsage.procSwitches.Load(),
		ProcFastResumes: simUsage.procFastResumes.Load(),
		TrainsWalked:    simUsage.trainsWalked.Load(),
		TrainPackets:    simUsage.trainPackets.Load(),
		TrainAborts:     simUsage.trainAborts.Load(),
		LedgerClamps:    simUsage.ledgerClamps.Load(),

		TrunksFailed:         simUsage.trunksFailed.Load(),
		PacketsRetransmitted: simUsage.retransmits.Load(),
		RoutesRecomputed:     simUsage.reroutes.Load(),
		RetryBackoffNs:       simUsage.retryBackoffNS.Load(),

		VirtualNS: simUsage.virtualNS.Load(),
		WallNS:    simUsage.wallNS.Load(),
	}
}

// ResetSimUsage clears the accumulator (used by tests and by CLI runs that
// want per-campaign numbers).
func ResetSimUsage() {
	simUsage.runs.Store(0)
	simUsage.eventsScheduled.Store(0)
	simUsage.eventsFired.Store(0)
	simUsage.eventsCancelled.Store(0)
	simUsage.poolReuses.Store(0)
	simUsage.fastPathEvents.Store(0)
	simUsage.eventsElided.Store(0)
	simUsage.procSwitches.Store(0)
	simUsage.procFastResumes.Store(0)
	simUsage.trainsWalked.Store(0)
	simUsage.trainPackets.Store(0)
	simUsage.trainAborts.Store(0)
	simUsage.ledgerClamps.Store(0)
	simUsage.trunksFailed.Store(0)
	simUsage.retransmits.Store(0)
	simUsage.reroutes.Store(0)
	simUsage.retryBackoffNS.Store(0)
	simUsage.virtualNS.Store(0)
	simUsage.wallNS.Store(0)
}

// runWindow drives one measurement kernel to the end of its window, shuts it
// down and records its activity counters along with the machine network's
// execution telemetry.
func runWindow(k *sim.Kernel, net *netsim.Network, window sim.Duration) {
	start := time.Now()
	k.RunUntil(sim.Time(window))
	k.Shutdown()
	recordRun(k, net, time.Since(start))
}
