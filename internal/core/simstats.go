package core

import (
	"fmt"
	"time"

	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/telemetry"
)

// SimUsage aggregates the kernel activity counters (sim.Kernel.Stats) of
// every measurement run executed by this package since the last Reset, plus
// the virtual and wall time those runs covered.  Runs execute in parallel
// across workers, so WallNS is the summed per-run wall time, not elapsed
// time; EventsPerSecond is therefore the mean single-run simulator
// throughput.
type SimUsage struct {
	Runs            int64
	EventsScheduled int64
	EventsFired     int64
	EventsCancelled int64
	PoolReuses      int64
	FastPathEvents  int64
	EventsElided    int64
	ProcSwitches    int64
	ProcFastResumes int64
	// Relaxed-engine train fusion telemetry (netsim.Stats): fused trains,
	// the packets they carried, fusion attempts cut short, and credit
	// releases clamped to keep port ledgers sorted.
	TrainsWalked int64
	TrainPackets int64
	TrainAborts  int64
	LedgerClamps int64
	// Fault-injection telemetry (netsim.Stats): trunk failures applied,
	// packets lost to down trunks and re-injected, failover route
	// recomputations, and the summed retransmit backoff.  All zero unless a
	// run carried an active netsim.FaultPlan.
	TrunksFailed         int64
	PacketsRetransmitted int64
	RoutesRecomputed     int64
	RetryBackoffNs       int64
	VirtualNS            int64
	WallNS               int64
}

// EventsPerSecond returns the mean events-per-wall-second throughput of one
// simulation run, counting both fired kernel events and events the network
// layer's cut-through fast path executed on its deferred lane.
func (u SimUsage) EventsPerSecond() float64 {
	if u.WallNS <= 0 {
		return 0
	}
	return float64(u.EventsFired+u.EventsElided) / (float64(u.WallNS) / 1e9)
}

// RealTimeFactor returns how much faster than real time the simulated clock
// advanced (virtual seconds per wall second of simulation).
func (u SimUsage) RealTimeFactor() float64 {
	if u.WallNS <= 0 {
		return 0
	}
	return float64(u.VirtualNS) / float64(u.WallNS)
}

// String renders the usage as a one-line summary suitable for CLI output.
func (u SimUsage) String() string {
	pooledPct, fastPct := 0.0, 0.0
	if u.EventsScheduled > 0 {
		pooledPct = 100 * float64(u.PoolReuses) / float64(u.EventsScheduled)
		fastPct = 100 * float64(u.FastPathEvents) / float64(u.EventsScheduled)
	}
	elidedPct := 0.0
	if u.EventsFired+u.EventsElided > 0 {
		elidedPct = 100 * float64(u.EventsElided) / float64(u.EventsFired+u.EventsElided)
	}
	pktsPerTrain := 0.0
	if u.TrainsWalked > 0 {
		pktsPerTrain = float64(u.TrainPackets) / float64(u.TrainsWalked)
	}
	faults := ""
	if u.TrunksFailed > 0 || u.PacketsRetransmitted > 0 || u.RoutesRecomputed > 0 {
		// Rendered only when fault injection was active, so fault-free
		// output stays byte-identical to earlier versions and the section
		// is grep-able in campaign logs.
		faults = fmt.Sprintf(", faults: %d trunk failures, %d retransmits (%.2fms backoff), %d reroutes",
			u.TrunksFailed, u.PacketsRetransmitted, float64(u.RetryBackoffNs)/1e6, u.RoutesRecomputed)
	}
	return fmt.Sprintf(
		"%d runs, %.2fM events fired + %.2fM cut-through (%.1f%% saved, %.1f%% pooled, %.1f%% fast-path), %.2fM proc switches, %.2fM fast resumes, %.2fM trains (%.1f pkts/train, %.2fM aborts, %d clamps)%s, %.2fM events/s/run, %.1fx real time",
		u.Runs, float64(u.EventsFired)/1e6, float64(u.EventsElided)/1e6, elidedPct, pooledPct, fastPct,
		float64(u.ProcSwitches)/1e6, float64(u.ProcFastResumes)/1e6,
		float64(u.TrainsWalked)/1e6, pktsPerTrain, float64(u.TrainAborts)/1e6, u.LedgerClamps, faults,
		u.EventsPerSecond()/1e6, u.RealTimeFactor())
}

// simUsage holds this package's handles into the process-wide telemetry
// registry.  The registry series are the accumulator — the "Simulator:" line
// and the /metrics endpoint render the same counters.  Handles are resolved
// once at init so the per-run fold is a sequence of atomic adds.
// Measurement runs execute concurrently (experiments fan out over a worker
// pool); counter adds are wait-free so no extra locking is needed.
var simUsage = struct {
	runs            *telemetry.Counter
	eventsScheduled *telemetry.Counter
	eventsFired     *telemetry.Counter
	eventsCancelled *telemetry.Counter
	poolReuses      *telemetry.Counter
	fastPathEvents  *telemetry.Counter
	eventsElided    *telemetry.Counter
	procSwitches    *telemetry.Counter
	procFastResumes *telemetry.Counter
	trainsWalked    *telemetry.Counter
	trainPackets    *telemetry.Counter
	trainAborts     *telemetry.Counter
	ledgerClamps    *telemetry.Counter
	trunksFailed    *telemetry.Counter
	retransmits     *telemetry.Counter
	reroutes        *telemetry.Counter
	retryBackoffNS  *telemetry.Counter
	virtualNS       *telemetry.Counter
	wallNS          *telemetry.Counter
}{
	runs:            telemetry.Default().Counter("swprobe_sim_runs_total", "Measurement simulation runs recorded"),
	eventsScheduled: telemetry.Default().Counter("swprobe_kernel_events_scheduled_total", "Kernel events scheduled across all runs"),
	eventsFired:     telemetry.Default().Counter("swprobe_kernel_events_fired_total", "Kernel events fired across all runs"),
	eventsCancelled: telemetry.Default().Counter("swprobe_kernel_events_cancelled_total", "Kernel events cancelled before firing"),
	poolReuses:      telemetry.Default().Counter("swprobe_kernel_pool_reuses_total", "Kernel event allocations served from the pool"),
	fastPathEvents:  telemetry.Default().Counter("swprobe_kernel_fastpath_events_total", "Kernel events scheduled on the same-instant fast path"),
	eventsElided:    telemetry.Default().Counter("swprobe_kernel_events_elided_total", "Heap events elided by the cut-through deferred lane"),
	procSwitches:    telemetry.Default().Counter("swprobe_kernel_proc_switches_total", "Process context switches in the rank runtime"),
	procFastResumes: telemetry.Default().Counter("swprobe_kernel_proc_fast_resumes_total", "Process resumes served without a context switch"),
	trainsWalked:    telemetry.Default().Counter("swprobe_net_trains_walked_total", "Packet trains walked by the relaxed engine's fused drains"),
	trainPackets:    telemetry.Default().Counter("swprobe_net_train_packets_total", "Packets carried by fused train walks"),
	trainAborts:     telemetry.Default().Counter("swprobe_net_train_aborts_total", "Train fusion attempts cut short"),
	ledgerClamps:    telemetry.Default().Counter("swprobe_net_ledger_clamps_total", "Credit releases clamped to keep port ledgers sorted"),
	trunksFailed:    telemetry.Default().Counter("swprobe_fault_trunks_failed_total", "Trunk failures applied by fault plans"),
	retransmits:     telemetry.Default().Counter("swprobe_fault_retransmits_total", "Packets lost to down trunks and re-injected"),
	reroutes:        telemetry.Default().Counter("swprobe_fault_reroutes_total", "Failover route recomputations"),
	retryBackoffNS:  telemetry.Default().Counter("swprobe_fault_retry_backoff_ns_total", "Summed retransmit backoff (virtual nanoseconds)"),
	virtualNS:       telemetry.Default().Counter("swprobe_sim_virtual_ns_total", "Virtual nanoseconds simulated across all runs"),
	wallNS:          telemetry.Default().Counter("swprobe_sim_wall_ns_total", "Wall-clock nanoseconds spent simulating (summed per run)"),
}

// recordRun folds one finished kernel's counters into the accumulator, plus
// the run's network-layer execution telemetry when a network is attached.
func recordRun(k *sim.Kernel, net *netsim.Network, wall time.Duration) {
	st := k.Stats()
	simUsage.runs.Add(1)
	simUsage.eventsScheduled.Add(int64(st.EventsScheduled))
	simUsage.eventsFired.Add(int64(st.EventsFired))
	simUsage.eventsElided.Add(int64(st.EventsElided))
	simUsage.eventsCancelled.Add(int64(st.EventsCancelled))
	simUsage.poolReuses.Add(int64(st.PoolReuses))
	simUsage.fastPathEvents.Add(int64(st.FastPathEvents))
	simUsage.procSwitches.Add(int64(st.ProcSwitches))
	simUsage.procFastResumes.Add(int64(st.ProcFastResumes))
	if net != nil {
		ns := net.Stats()
		simUsage.trainsWalked.Add(ns.TrainsWalked)
		simUsage.trainPackets.Add(ns.TrainPackets)
		var aborts int64
		for _, v := range ns.TrainAborts {
			aborts += v
		}
		simUsage.trainAborts.Add(aborts)
		simUsage.ledgerClamps.Add(ns.LedgerClamps)
		simUsage.trunksFailed.Add(ns.TrunksFailed)
		simUsage.retransmits.Add(ns.PacketsRetransmitted)
		simUsage.reroutes.Add(ns.RoutesRecomputed)
		simUsage.retryBackoffNS.Add(ns.RetryBackoffNs)
	}
	simUsage.virtualNS.Add(int64(k.Now()))
	simUsage.wallNS.Add(wall.Nanoseconds())
}

// RecordSimRun folds a finished kernel's activity counters — and, when a
// network is attached, its execution and fault telemetry — into the
// process-wide accumulator.  It is the exported entry point for campaigns
// that drive netsim directly (the fault-injection probes in
// internal/experiments) rather than through this package's measurement
// runners, so their runs still show up in the CLI's Simulator line.
func RecordSimRun(k *sim.Kernel, net *netsim.Network, wall time.Duration) {
	recordRun(k, net, wall)
}

// SimUsageSnapshot returns the accumulated kernel activity of all measurement
// runs so far, read back from the telemetry registry (the same series
// /metrics exposes — the CLI summary and a scrape can never disagree).
func SimUsageSnapshot() SimUsage {
	return SimUsage{
		Runs:            simUsage.runs.Value(),
		EventsScheduled: simUsage.eventsScheduled.Value(),
		EventsFired:     simUsage.eventsFired.Value(),
		EventsCancelled: simUsage.eventsCancelled.Value(),
		PoolReuses:      simUsage.poolReuses.Value(),
		FastPathEvents:  simUsage.fastPathEvents.Value(),
		EventsElided:    simUsage.eventsElided.Value(),
		ProcSwitches:    simUsage.procSwitches.Value(),
		ProcFastResumes: simUsage.procFastResumes.Value(),
		TrainsWalked:    simUsage.trainsWalked.Value(),
		TrainPackets:    simUsage.trainPackets.Value(),
		TrainAborts:     simUsage.trainAborts.Value(),
		LedgerClamps:    simUsage.ledgerClamps.Value(),

		TrunksFailed:         simUsage.trunksFailed.Value(),
		PacketsRetransmitted: simUsage.retransmits.Value(),
		RoutesRecomputed:     simUsage.reroutes.Value(),
		RetryBackoffNs:       simUsage.retryBackoffNS.Value(),

		VirtualNS: simUsage.virtualNS.Value(),
		WallNS:    simUsage.wallNS.Value(),
	}
}

// ResetSimUsage clears the accumulator (used by tests and by CLI runs that
// want per-campaign numbers).  Counters are rewound rather than detached so
// the registry handles stay valid; callers never reset concurrently with
// recording runs.
func ResetSimUsage() {
	for _, c := range []*telemetry.Counter{
		simUsage.runs, simUsage.eventsScheduled, simUsage.eventsFired,
		simUsage.eventsCancelled, simUsage.poolReuses, simUsage.fastPathEvents,
		simUsage.eventsElided, simUsage.procSwitches, simUsage.procFastResumes,
		simUsage.trainsWalked, simUsage.trainPackets, simUsage.trainAborts,
		simUsage.ledgerClamps, simUsage.trunksFailed, simUsage.retransmits,
		simUsage.reroutes, simUsage.retryBackoffNS, simUsage.virtualNS,
		simUsage.wallNS,
	} {
		c.Add(-c.Value())
	}
}

// runWindow drives one measurement kernel to the end of its window, shuts it
// down and records its activity counters along with the machine network's
// execution telemetry.
func runWindow(k *sim.Kernel, net *netsim.Network, window sim.Duration) {
	start := time.Now()
	k.RunUntil(sim.Time(window))
	k.Shutdown()
	recordRun(k, net, time.Since(start))
}
