package core

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// slotMachine builds a 6-node machine with the given number of fat-tree
// leaves.
func slotMachine(t *testing.T, leaves int) *cluster.Machine {
	t.Helper()
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 6
	cfg.Net.Topology = netsim.FatTree{Leaves: leaves, UplinksPerLeaf: 1}
	return cluster.MustNew(sim.NewKernel(1), cfg)
}

// leafSet returns the distinct leaves the nodes touch.
func leafSet(m *cluster.Machine, nodes []int) map[int]bool {
	leaves := make(map[int]bool)
	for _, n := range nodes {
		leaves[m.LeafOf(n)] = true
	}
	return leaves
}

// TestSlotNodesPackDisjointLeaves verifies the property the cross-switch
// campaign's "same-leaf" cases rest on: under the pack policy the two slots
// occupy disjoint leaf sets, including leaf counts where half the nodes is
// not a whole number of leaves.
func TestSlotNodesPackDisjointLeaves(t *testing.T) {
	for _, leaves := range []int{2, 3} {
		m := slotMachine(t, leaves)
		a, err := slotNodes(m, cluster.PlacePack, SlotA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := slotNodes(m, cluster.PlacePack, SlotB)
		if err != nil {
			t.Fatal(err)
		}
		if len(a)+len(b) != 6 || len(a) == 0 || len(b) == 0 {
			t.Fatalf("leaves=%d: slots %v + %v do not partition the machine", leaves, a, b)
		}
		la, lb := leafSet(m, a), leafSet(m, b)
		for leaf := range la {
			if lb[leaf] {
				t.Fatalf("leaves=%d: packed slots %v and %v share leaf %d", leaves, a, b, leaf)
			}
		}
	}
}

// TestSlotNodesSpreadStraddlesLeaves verifies the opposite property for the
// spread policy: both slots have a footprint on every leaf.
func TestSlotNodesSpreadStraddlesLeaves(t *testing.T) {
	m := slotMachine(t, 2)
	for _, slot := range []Slot{SlotA, SlotB} {
		nodes, err := slotNodes(m, cluster.PlaceSpread, slot)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(leafSet(m, nodes)); got != 2 {
			t.Fatalf("spread slot %v touches %d leaves, want 2 (nodes %v)", slot, got, nodes)
		}
	}
}

// TestSlotNodesAll keeps SlotAll meaning "no restriction".
func TestSlotNodesAll(t *testing.T) {
	m := slotMachine(t, 2)
	nodes, err := slotNodes(m, cluster.PlacePack, SlotAll)
	if err != nil || nodes != nil {
		t.Fatalf("SlotAll = %v, %v; want nil, nil", nodes, err)
	}
}
