package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// This file defines the declarative run layer: a RunSpec fully describes one
// simulation run as a value — options and seed, machine and topology, slot,
// workload or injector configuration, and the measurement kind — with a
// canonical encoding and a stable content hash.  ExecuteSpec is the single
// choke point through which every live simulation run in this package
// executes; the engine package adds content-addressed caching, deduplication
// and campaign fan-out on top of it.

// RunKind identifies which primitive measurement a RunSpec describes.
type RunKind string

const (
	// RunCalibrate measures the idle fabric and derives the M/G/1 service
	// model (Artifact.Calibration).
	RunCalibrate RunKind = "calibrate"
	// RunAppImpact measures an application's impact signature
	// (Artifact.Signature).
	RunAppImpact RunKind = "app-impact"
	// RunInjectorImpact measures a CompressionB configuration's impact
	// signature (Artifact.Signature).
	RunInjectorImpact RunKind = "injector-impact"
	// RunBaseline measures an application's baseline iteration rate
	// (Artifact.Runtime).
	RunBaseline RunKind = "baseline"
	// RunCompress measures an application's iteration rate under a
	// CompressionB configuration (Artifact.Runtime).
	RunCompress RunKind = "compress"
	// RunPair measures two applications sharing the fabric
	// (Artifact.Runtime for the first, Artifact.RuntimeB for the second).
	RunPair RunKind = "pair"
)

// SpecVersion identifies the canonical RunSpec encoding together with the
// behavioural generations of the simulation layers beneath it.  Persisted
// artifacts are keyed on it, so a kernel or network-model change (which would
// alter every measurement) cleanly invalidates old caches.
func SpecVersion() string {
	return fmt.Sprintf("spec1-sim%d-net%d", sim.KernelVersion, netsim.ModelVersion)
}

// RunSpec is the declarative description of one simulation run.  Two specs
// with equal content hashes describe runs that produce identical artifacts;
// the hash covers every input that influences the run (the full Options
// including seed, machine and topology, the slot, the workload or injector
// configuration, and the kind).
//
// Application identity is the pair (name, Options.Scale): the engine assumes
// a workload's behaviour is fully determined by its name and scale, which
// holds for every registry application.  A custom workload.App must use a
// unique name per behaviour to be cached correctly.
type RunSpec struct {
	// Kind selects the measurement primitive.
	Kind RunKind
	// Options are the full measurement options, including the seed the
	// per-run random stream is derived from.
	Options Options
	// Slot restricts the (single) application to part of the machine; it is
	// SlotAll for kinds without a slotted application.
	Slot Slot
	// App is the measured application's name (empty for calibrate and
	// injector-impact runs).
	App string
	// CoApp is the co-runner's name for pair runs.
	CoApp string
	// Injector is the CompressionB configuration for injector-impact and
	// compress runs (zero otherwise).
	Injector inject.Config
	// Placed marks a pair run measured with each application in its own
	// half of the placement-policy node order (SlotA/SlotB) instead of both
	// spanning the whole machine.
	Placed bool

	// app and coApp carry the resolved workload instances when the spec was
	// built from live values; the executor falls back to the registry when
	// they are nil, so specs remain pure values.
	app, coApp workload.App
}

// CalibrateSpec describes the idle-fabric calibration run.  The placement
// policy is canonicalized away: no application runs, so placement cannot
// influence the measurement and all placements share one artifact.
func CalibrateSpec(o Options) RunSpec {
	o.Placement = ""
	return RunSpec{Kind: RunCalibrate, Options: o}
}

// AppImpactSpec describes measuring an application's impact signature with
// the application restricted to the given slot.
func AppImpactSpec(o Options, app workload.App, slot Slot) RunSpec {
	return RunSpec{Kind: RunAppImpact, Options: o, Slot: slot, App: app.Name(), app: app}
}

// InjectorImpactSpec describes measuring a CompressionB configuration's
// impact signature.  Like calibration, the placement policy is canonicalized
// away: the injector spans every node regardless of placement.
func InjectorImpactSpec(o Options, cfg inject.Config) RunSpec {
	o.Placement = ""
	return RunSpec{Kind: RunInjectorImpact, Options: o, Injector: cfg}
}

// BaselineSpec describes measuring an application's baseline iteration rate
// in the given slot.
func BaselineSpec(o Options, app workload.App, slot Slot) RunSpec {
	return RunSpec{Kind: RunBaseline, Options: o, Slot: slot, App: app.Name(), app: app}
}

// CompressSpec describes measuring an application's iteration rate while a
// CompressionB configuration removes part of the fabric capability.
func CompressSpec(o Options, app workload.App, cfg inject.Config, slot Slot) RunSpec {
	return RunSpec{Kind: RunCompress, Options: o, Slot: slot, App: app.Name(), app: app, Injector: cfg}
}

// PairSpec describes a co-run of two applications.  With placed unset both
// span the whole machine (the paper's Table I setting); with placed set the
// first application takes SlotA and the second SlotB of the placement-policy
// node order.
func PairSpec(o Options, appA, appB workload.App, placed bool) RunSpec {
	return RunSpec{
		Kind: RunPair, Options: o, Placed: placed,
		App: appA.Name(), CoApp: appB.Name(),
		app: appA, coApp: appB,
	}
}

// NeedsCalibration reports whether executing the spec requires an
// idle-fabric calibration artifact (to invert probe latencies into
// utilizations).
func (s RunSpec) NeedsCalibration() bool {
	return s.Kind == RunAppImpact || s.Kind == RunInjectorImpact
}

// CalibrationSpec returns the calibration run this spec depends on: the
// calibrate spec for the same options.
func (s RunSpec) CalibrationSpec() RunSpec { return CalibrateSpec(s.Options) }

// Label returns a short human-readable description of the run, used in error
// messages and campaign reports.
func (s RunSpec) Label() string {
	switch s.Kind {
	case RunCalibrate:
		return "calibrate"
	case RunAppImpact:
		return fmt.Sprintf("impact %s@%s", s.App, s.Slot)
	case RunInjectorImpact:
		return "impact " + s.Injector.Label()
	case RunBaseline:
		return fmt.Sprintf("baseline %s@%s", s.App, s.Slot)
	case RunCompress:
		return fmt.Sprintf("compress %s under %s@%s", s.App, s.Injector.Label(), s.Slot)
	case RunPair:
		if s.Placed {
			return fmt.Sprintf("pair %s+%s placed", s.App, s.CoApp)
		}
		return fmt.Sprintf("pair %s+%s", s.App, s.CoApp)
	default:
		return string(s.Kind)
	}
}

// fp formats a float canonically (shortest round-trippable decimal), so the
// encoding is identical across processes and platforms.
func fp(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Canonical returns the spec's canonical encoding: a deterministic,
// human-readable rendering of every hashed input, one field per line.  Equal
// encodings mean interchangeable runs; any field change yields a different
// encoding.  New Options or RunSpec fields MUST be added here.
func (s RunSpec) Canonical() string {
	o := s.Options
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%s\n", s.Kind)
	fmt.Fprintf(&b, "seed=%d\n", o.Seed)
	fmt.Fprintf(&b, "machine=%s\n", o.Machine.Fingerprint())
	fmt.Fprintf(&b, "mpi=eager:%d,control:%d\n", o.MPI.EagerThreshold, o.MPI.ControlBytes)
	fmt.Fprintf(&b, "probe=bytes:%d,pause:%d,rps:%d,tag:%d\n",
		o.Probe.MessageBytes, int64(o.Probe.Pause), o.Probe.RanksPerSocket, o.Probe.Tag)
	policy, _ := cluster.ParsePlacement(string(o.Placement))
	fmt.Fprintf(&b, "placement=%s\n", policy)
	fmt.Fprintf(&b, "scale=volume:%s,compute:%s\n", fp(o.Scale.Volume), fp(o.Scale.Compute))
	fmt.Fprintf(&b, "window=%d\n", int64(o.Window))
	fmt.Fprintf(&b, "iters=warmup:%d,min:%d\n", o.WarmupIterations, o.MinIterations)
	fmt.Fprintf(&b, "probes=min:%d\n", o.MinProbeSamples)
	fmt.Fprintf(&b, "hist=lo:%s,hi:%s,bins:%d\n", fp(o.HistLoMicros), fp(o.HistHiMicros), o.HistBins)
	fmt.Fprintf(&b, "phases=%d\n", o.PhaseWindows)
	fmt.Fprintf(&b, "slot=%s\n", s.Slot)
	fmt.Fprintf(&b, "app=%s\n", s.App)
	fmt.Fprintf(&b, "coapp=%s\n", s.CoApp)
	fmt.Fprintf(&b, "injector=P:%d,M:%d,B:%s,bytes:%d,rps:%d\n",
		s.Injector.Partners, s.Injector.Messages, fp(s.Injector.SleepCycles),
		s.Injector.MessageBytes, s.Injector.RanksPerSocket)
	fmt.Fprintf(&b, "placed=%t\n", s.Placed)
	return b.String()
}

// Hash returns the spec's content hash: a hex SHA-256 over the spec version
// and the canonical encoding.  It is the artifact store's key.
func (s RunSpec) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s", SpecVersion(), s.Canonical())
	return hex.EncodeToString(h.Sum(nil))
}

// Artifact is the result of executing one RunSpec.  Exactly the fields of
// the spec's kind are populated (see the RunKind constants); the rest are
// nil, keeping the JSON wire form small.
type Artifact struct {
	Calibration *Calibration `json:"calibration,omitempty"`
	Signature   *Signature   `json:"signature,omitempty"`
	Runtime     *Runtime     `json:"runtime,omitempty"`
	RuntimeB    *Runtime     `json:"runtimeB,omitempty"`
}

// Complete reports whether the artifact carries every field the kind
// requires — the integrity check applied to artifacts loaded from disk.
func (a Artifact) Complete(kind RunKind) bool {
	switch kind {
	case RunCalibrate:
		return a.Calibration != nil && a.Calibration.Idle.Hist != nil
	case RunAppImpact, RunInjectorImpact:
		return a.Signature != nil && a.Signature.Hist != nil
	case RunBaseline, RunCompress:
		return a.Runtime != nil
	case RunPair:
		return a.Runtime != nil && a.RuntimeB != nil
	default:
		return false
	}
}

// resolveApp returns the carried workload instance or resolves the name from
// the registry at the spec's scale.
func resolveApp(name string, carried workload.App, scale workload.Scale) (workload.App, error) {
	if carried != nil {
		return carried, nil
	}
	return workload.ByName(name, scale)
}

// ExecuteSpec runs the simulation a spec describes and returns its artifact.
// It is the single live-simulation choke point: every measurement in this
// package and every cache miss in the engine goes through it.  cal supplies
// the idle-fabric calibration for kinds that need one (NeedsCalibration) and
// is ignored otherwise.
func ExecuteSpec(spec RunSpec, cal *Calibration) (Artifact, error) {
	if spec.NeedsCalibration() && cal == nil {
		return Artifact{}, fmt.Errorf("core: %s run requires a calibration", spec.Kind)
	}
	switch spec.Kind {
	case RunCalibrate:
		c, err := runCalibrate(spec.Options)
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{Calibration: &c}, nil
	case RunAppImpact:
		app, err := resolveApp(spec.App, spec.app, spec.Options.Scale)
		if err != nil {
			return Artifact{}, err
		}
		sig, err := runAppImpact(spec.Options, *cal, app, spec.Slot)
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{Signature: &sig}, nil
	case RunInjectorImpact:
		sig, err := runInjectorImpact(spec.Options, *cal, spec.Injector)
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{Signature: &sig}, nil
	case RunBaseline:
		app, err := resolveApp(spec.App, spec.app, spec.Options.Scale)
		if err != nil {
			return Artifact{}, err
		}
		rt, err := runBaseline(spec.Options, app, spec.Slot)
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{Runtime: &rt}, nil
	case RunCompress:
		app, err := resolveApp(spec.App, spec.app, spec.Options.Scale)
		if err != nil {
			return Artifact{}, err
		}
		rt, err := runCompress(spec.Options, app, spec.Injector, spec.Slot)
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{Runtime: &rt}, nil
	case RunPair:
		appA, err := resolveApp(spec.App, spec.app, spec.Options.Scale)
		if err != nil {
			return Artifact{}, err
		}
		appB, err := resolveApp(spec.CoApp, spec.coApp, spec.Options.Scale)
		if err != nil {
			return Artifact{}, err
		}
		var ra, rb Runtime
		if spec.Placed {
			ra, rb, err = runPairPlaced(spec.Options, appA, appB)
		} else {
			ra, rb, err = runPair(spec.Options, appA, appB)
		}
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{Runtime: &ra, RuntimeB: &rb}, nil
	default:
		return Artifact{}, fmt.Errorf("core: unknown run kind %q", spec.Kind)
	}
}
