package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/probe"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// sampleOptions is a fully explicit option set (no Default/Test helpers), so
// the canonical-encoding golden below does not move when defaults are tuned.
func sampleOptions() Options {
	return Options{
		Seed: 42,
		Machine: cluster.Config{
			Net: netsim.Config{
				Nodes:             4,
				LinkBandwidth:     5e9,
				MTU:               4096,
				WireDelay:         250 * sim.Nanosecond,
				FabricDelay:       200 * sim.Nanosecond,
				FabricJitter:      120 * sim.Nanosecond,
				TailProb:          0.02,
				TailDelay:         2 * sim.Microsecond,
				EgressBufferBytes: 16384,
			},
			SocketsPerNode:     2,
			CoresPerSocket:     8,
			ClockHz:            2.6e9,
			IntraNodeLatency:   600 * sim.Nanosecond,
			IntraNodeBandwidth: 8e9,
		},
		MPI:              mpisim.Config{EagerThreshold: 16384, ControlBytes: 64},
		Probe:            probe.Config{MessageBytes: 1024, Pause: 200 * sim.Microsecond, RanksPerSocket: 1, Tag: 1},
		Scale:            workload.Scale{Volume: 1, Compute: 1},
		Window:           80 * sim.Millisecond,
		WarmupIterations: 1,
		MinIterations:    3,
		MinProbeSamples:  30,
		HistLoMicros:     0,
		HistHiMicros:     20,
		HistBins:         40,
		PhaseWindows:     6,
	}
}

// TestSpecCanonicalGolden pins the canonical encoding to a literal.  Because
// the hash is a pure function of SpecVersion() and this string, a passing
// golden guarantees the hash is identical across processes and platforms —
// no map iteration order, pointer value or locale can leak in.  If this test
// breaks, cache compatibility broke: either fix the regression or bump the
// spec/kernel/model version deliberately.
func TestSpecCanonicalGolden(t *testing.T) {
	golden := strings.Join([]string{
		"kind=calibrate",
		"seed=42",
		"machine=net{nodes=4;bw=5e+09;mtu=4096;wire=250;fabric=200;jitter=120;tailp=0.02;taild=2000;ebuf=16384;topo=star;order=relaxed};sockets=2;cores=8;clock=2.6e+09;ilat=600;ibw=8e+09",
		"mpi=eager:16384,control:64",
		"probe=bytes:1024,pause:200000,rps:1,tag:1",
		"placement=pack",
		"scale=volume:1,compute:1",
		"window=80000000",
		"iters=warmup:1,min:3",
		"probes=min:30",
		"hist=lo:0,hi:20,bins:40",
		"phases=6",
		"slot=all",
		"app=",
		"coapp=",
		"injector=P:0,M:0,B:0,bytes:0,rps:0",
		"placed=false",
		"",
	}, "\n")
	got := CalibrateSpec(sampleOptions()).Canonical()
	if got != golden {
		t.Fatalf("canonical encoding drifted:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
	// The hash is exactly SHA-256 over version + canonical.
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s", SpecVersion(), golden)
	if want := hex.EncodeToString(h.Sum(nil)); CalibrateSpec(sampleOptions()).Hash() != want {
		t.Fatalf("hash not derived from version+canonical")
	}
}

// TestSpecHashDeterminism: building the same spec twice (even via different
// constructors paths) yields the same hash.
func TestSpecHashDeterminism(t *testing.T) {
	o := sampleOptions()
	app, err := workload.ByName("FFTW", o.Scale)
	if err != nil {
		t.Fatal(err)
	}
	a := AppImpactSpec(o, app, SlotA).Hash()
	b := AppImpactSpec(o, app, SlotA).Hash()
	if a != b {
		t.Fatalf("same spec hashed differently: %s vs %s", a, b)
	}
	// A spec value without carried instances (as after decoding) hashes the
	// same as one built from live values.
	c := RunSpec{Kind: RunAppImpact, Options: o, Slot: SlotA, App: "FFTW"}.Hash()
	if a != c {
		t.Fatalf("carried workload instance leaked into the hash")
	}
}

// TestSpecHashSensitivity: changing any single field produces a new hash.
func TestSpecHashSensitivity(t *testing.T) {
	base := RunSpec{Kind: RunAppImpact, Options: sampleOptions(), Slot: SlotA, App: "FFTW"}
	muts := map[string]func(*RunSpec){
		"kind":            func(s *RunSpec) { s.Kind = RunBaseline },
		"seed":            func(s *RunSpec) { s.Options.Seed = 43 },
		"nodes":           func(s *RunSpec) { s.Options.Machine.Net.Nodes = 5 },
		"bandwidth":       func(s *RunSpec) { s.Options.Machine.Net.LinkBandwidth *= 2 },
		"mtu":             func(s *RunSpec) { s.Options.Machine.Net.MTU = 2048 },
		"wire":            func(s *RunSpec) { s.Options.Machine.Net.WireDelay += sim.Nanosecond },
		"fabric":          func(s *RunSpec) { s.Options.Machine.Net.FabricDelay += sim.Nanosecond },
		"jitter":          func(s *RunSpec) { s.Options.Machine.Net.FabricJitter += sim.Nanosecond },
		"tailprob":        func(s *RunSpec) { s.Options.Machine.Net.TailProb = 0.03 },
		"taildelay":       func(s *RunSpec) { s.Options.Machine.Net.TailDelay += sim.Microsecond },
		"egress":          func(s *RunSpec) { s.Options.Machine.Net.EgressBufferBytes = 32768 },
		"topology":        func(s *RunSpec) { s.Options.Machine.Net.Topology = netsim.FatTree{Leaves: 2} },
		"topology-params": func(s *RunSpec) { s.Options.Machine.Net.Topology = netsim.FatTree{Leaves: 2, UplinksPerLeaf: 1} },
		"sockets":         func(s *RunSpec) { s.Options.Machine.SocketsPerNode = 1 },
		"cores":           func(s *RunSpec) { s.Options.Machine.CoresPerSocket = 4 },
		"clock":           func(s *RunSpec) { s.Options.Machine.ClockHz = 2e9 },
		"intralat":        func(s *RunSpec) { s.Options.Machine.IntraNodeLatency += sim.Nanosecond },
		"intrabw":         func(s *RunSpec) { s.Options.Machine.IntraNodeBandwidth *= 2 },
		"eager":           func(s *RunSpec) { s.Options.MPI.EagerThreshold = 8192 },
		"control":         func(s *RunSpec) { s.Options.MPI.ControlBytes = 128 },
		"probebytes":      func(s *RunSpec) { s.Options.Probe.MessageBytes = 512 },
		"probepause":      func(s *RunSpec) { s.Options.Probe.Pause += sim.Microsecond },
		"proberps":        func(s *RunSpec) { s.Options.Probe.RanksPerSocket = 2 },
		"probetag":        func(s *RunSpec) { s.Options.Probe.Tag = 2 },
		"placement":       func(s *RunSpec) { s.Options.Placement = cluster.PlaceSpread },
		"volume":          func(s *RunSpec) { s.Options.Scale.Volume = 0.5 },
		"compute":         func(s *RunSpec) { s.Options.Scale.Compute = 0.5 },
		"window":          func(s *RunSpec) { s.Options.Window *= 2 },
		"warmup":          func(s *RunSpec) { s.Options.WarmupIterations = 2 },
		"miniter":         func(s *RunSpec) { s.Options.MinIterations = 4 },
		"minprobe":        func(s *RunSpec) { s.Options.MinProbeSamples = 10 },
		"histlo":          func(s *RunSpec) { s.Options.HistLoMicros = 1 },
		"histhi":          func(s *RunSpec) { s.Options.HistHiMicros = 30 },
		"histbins":        func(s *RunSpec) { s.Options.HistBins = 20 },
		"phases":          func(s *RunSpec) { s.Options.PhaseWindows = 3 },
		"slot":            func(s *RunSpec) { s.Slot = SlotB },
		"app":             func(s *RunSpec) { s.App = "MILC" },
		"coapp":           func(s *RunSpec) { s.CoApp = "AMG" },
		"inj-partners":    func(s *RunSpec) { s.Injector.Partners = 1 },
		"inj-messages":    func(s *RunSpec) { s.Injector.Messages = 1 },
		"inj-sleep":       func(s *RunSpec) { s.Injector.SleepCycles = 100 },
		"inj-bytes":       func(s *RunSpec) { s.Injector.MessageBytes = 100 },
		"inj-rps":         func(s *RunSpec) { s.Injector.RanksPerSocket = 2 },
		"placed":          func(s *RunSpec) { s.Placed = true },
	}
	seen := map[string]string{base.Hash(): "base"}
	for name, mut := range muts {
		spec := base
		mut(&spec)
		h := spec.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// TestSpecPlacementNormalization: calibration and injector-impact runs have
// no placed application, so every placement policy must share one artifact;
// application runs must not.
func TestSpecPlacementNormalization(t *testing.T) {
	pack := sampleOptions()
	spread := sampleOptions()
	spread.Placement = cluster.PlaceSpread
	if CalibrateSpec(pack).Hash() != CalibrateSpec(spread).Hash() {
		t.Fatal("calibrate spec should be placement-independent")
	}
	cfg := inject.NewConfig(1, 1, 2.5e4)
	if InjectorImpactSpec(pack, cfg).Hash() != InjectorImpactSpec(spread, cfg).Hash() {
		t.Fatal("injector-impact spec should be placement-independent")
	}
	app, err := workload.ByName("FFTW", pack.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if BaselineSpec(pack, app, SlotA).Hash() == BaselineSpec(spread, app, SlotA).Hash() {
		t.Fatal("slotted baseline spec must depend on placement")
	}
}

func TestArtifactComplete(t *testing.T) {
	var sig Signature
	rt := Runtime{App: "x"}
	cal := Calibration{}
	cases := []struct {
		kind RunKind
		art  Artifact
		want bool
	}{
		{RunCalibrate, Artifact{Calibration: &cal}, false}, // no idle histogram
		{RunAppImpact, Artifact{Signature: &sig}, false},   // no histogram
		{RunBaseline, Artifact{Runtime: &rt}, true},
		{RunBaseline, Artifact{}, false},
		{RunPair, Artifact{Runtime: &rt}, false},
		{RunPair, Artifact{Runtime: &rt, RuntimeB: &rt}, true},
		{RunKind("bogus"), Artifact{Runtime: &rt}, false},
	}
	for _, c := range cases {
		if got := c.art.Complete(c.kind); got != c.want {
			t.Errorf("Complete(%s) = %v, want %v", c.kind, got, c.want)
		}
	}
}

func TestExecuteSpecRequiresCalibration(t *testing.T) {
	o := TestOptions()
	app, err := workload.ByName("FFTW", o.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteSpec(AppImpactSpec(o, app, SlotAll), nil); err == nil {
		t.Fatal("app-impact without calibration should fail")
	}
	if _, err := ExecuteSpec(RunSpec{Kind: RunKind("bogus")}, nil); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

// TestExecuteSpecResolvesAppsByName: a pure-value spec (no carried workload
// instances, as reconstructed from a store) must execute identically.
func TestExecuteSpecResolvesAppsByName(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real measurement; skipped in -short mode")
	}
	o := TestOptions()
	app, err := workload.ByName("FFTW", o.Scale)
	if err != nil {
		t.Fatal(err)
	}
	live, err := ExecuteSpec(BaselineSpec(o, app, SlotAll), nil)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := ExecuteSpec(RunSpec{Kind: RunBaseline, Options: o, App: "FFTW"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *live.Runtime != *pure.Runtime {
		t.Fatalf("by-name execution diverged: %+v vs %+v", *live.Runtime, *pure.Runtime)
	}
	if _, err := ExecuteSpec(RunSpec{Kind: RunBaseline, Options: o, App: "NoSuchApp"}, nil); err == nil {
		t.Fatal("unknown app name should fail")
	}
}
