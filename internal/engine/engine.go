// Package engine executes declarative simulation runs (core.RunSpec) through
// a single choke point with content-addressed caching:
//
//	RunSpec ──hash──▶ in-memory map ──▶ on-disk store ──▶ live simulation
//
// Every artifact an experiment needs — calibrations, impact signatures,
// baselines, compressed runtimes, co-run pairs — is requested by spec.  The
// engine deduplicates concurrent identical specs (singleflight), memoizes
// results in-process, and optionally persists them as JSON blobs keyed by
// spec hash so a warm re-run of an entire campaign executes zero
// simulations.  Artifacts are versioned by core.SpecVersion(): any kernel or
// network-model generation bump invalidates old caches cleanly.
package engine

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/telemetry"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// cacheTel are the process-wide telemetry series for cache accounting.  Each
// engine instance additionally keeps private atomics (Stats) so campaign code
// can take per-phase and per-policy deltas of a single engine while several
// engines run concurrently; the registry series are the cross-engine totals
// /metrics exposes.  In the CLIs exactly one engine serves a campaign, so the
// "Cache:" summary line and the registry agree number for number.
var cacheTel = struct {
	memHits   *telemetry.Counter
	diskHits  *telemetry.Counter
	deduped   *telemetry.Counter
	simulated *telemetry.Counter
	stored    *telemetry.Counter
	loadErrs  *telemetry.Counter
	storeErrs *telemetry.Counter
}{
	memHits:   telemetry.Default().Counter("swprobe_cache_memory_hits_total", "Artifact requests served from the in-process memo"),
	diskHits:  telemetry.Default().Counter("swprobe_cache_disk_hits_total", "Artifact requests served from the on-disk store"),
	deduped:   telemetry.Default().Counter("swprobe_cache_deduped_total", "Concurrent identical specs coalesced by singleflight"),
	simulated: telemetry.Default().Counter("swprobe_cache_simulated_total", "Artifact requests resolved by a live simulation"),
	stored:    telemetry.Default().Counter("swprobe_cache_stored_total", "Artifacts persisted to the on-disk store"),
	loadErrs:  telemetry.Default().Counter("swprobe_cache_load_errors_total", "Corrupt or unreadable store blobs (fell back to live simulation)"),
	storeErrs: telemetry.Default().Counter("swprobe_cache_store_errors_total", "Failed artifact persists (results stayed in-process)"),
}

// Engine runs RunSpecs through the artifact cache.  The zero value is not
// usable; create engines with New.  All methods are safe for concurrent use.
type Engine struct {
	store *Store // nil = memory-only

	mu      sync.Mutex
	mem     map[string]core.Artifact
	flights map[string]*flight

	memHits   atomic.Int64
	diskHits  atomic.Int64
	deduped   atomic.Int64
	simulated atomic.Int64
	stored    atomic.Int64
	loadErrs  atomic.Int64
	storeErrs atomic.Int64

	// warnOnce gates the store-not-writable log line: the first failed
	// persist logs, the rest only count.
	warnOnce sync.Once
}

// flight is one in-progress execution of a spec; concurrent requests for the
// same hash wait on done instead of simulating the run again.
type flight struct {
	done chan struct{}
	art  core.Artifact
	err  error
}

// New creates an engine.  With a non-empty cacheDir artifacts are also
// persisted to (and served from) the content-addressed store under that
// directory; with an empty cacheDir the engine memoizes in-process only,
// which preserves the historical Suite semantics of "measure once per
// process".
//
// An unusable cache directory never takes the campaign down: the failure is
// logged once and the engine degrades to in-process memoization — every run
// is still measured live, just not persisted.
func New(cacheDir string) (*Engine, error) {
	e := &Engine{
		mem:     make(map[string]core.Artifact),
		flights: make(map[string]*flight),
	}
	if cacheDir != "" {
		store, err := OpenStore(cacheDir)
		if err != nil {
			log.Printf("engine: persistent cache disabled, running memory-only: %v", err)
		} else {
			e.store = store
		}
	}
	return e, nil
}

// Open resolves the CLI cache flags: it returns a persistent engine for
// cacheDir unless disabled (-no-cache) or cacheDir is empty, in which case
// the engine is memory-only.
func Open(cacheDir string, disabled bool) (*Engine, error) {
	if disabled {
		cacheDir = ""
	}
	return New(cacheDir)
}

// MustNew is New that panics on error; intended for tests and memory-only
// engines (which cannot fail).
func MustNew(cacheDir string) *Engine {
	e, err := New(cacheDir)
	if err != nil {
		panic(err)
	}
	return e
}

// Persistent reports whether the engine is backed by an on-disk store.
func (e *Engine) Persistent() bool { return e.store != nil }

// StoreDir returns the schema-versioned store directory ("" when
// memory-only).
func (e *Engine) StoreDir() string {
	if e.store == nil {
		return ""
	}
	return e.store.Dir()
}

// Run executes a spec through the cache and returns its artifact.
func (e *Engine) Run(spec core.RunSpec) (core.Artifact, error) {
	hash := spec.Hash()
	e.mu.Lock()
	if art, ok := e.mem[hash]; ok {
		e.mu.Unlock()
		e.memHits.Add(1)
		cacheTel.memHits.Inc()
		return art, nil
	}
	if f, ok := e.flights[hash]; ok {
		e.mu.Unlock()
		<-f.done
		if f.err == nil {
			e.deduped.Add(1)
			cacheTel.deduped.Inc()
		}
		return f.art, f.err
	}
	f := &flight{done: make(chan struct{})}
	e.flights[hash] = f
	e.mu.Unlock()

	f.art, f.err = e.execute(spec, hash)
	close(f.done)

	e.mu.Lock()
	delete(e.flights, hash)
	if f.err == nil {
		e.mem[hash] = f.art
	}
	e.mu.Unlock()
	return f.art, f.err
}

// execute resolves a cache miss: disk first, then a live simulation (whose
// calibration dependency is itself resolved through the cache).
func (e *Engine) execute(spec core.RunSpec, hash string) (core.Artifact, error) {
	if e.store != nil {
		art, ok, err := e.store.Load(hash, spec.Kind)
		if err != nil {
			// A corrupt blob falls back to a live simulation; the rewrite
			// below repairs the store.
			e.loadErrs.Add(1)
			cacheTel.loadErrs.Inc()
		}
		if ok {
			e.diskHits.Add(1)
			cacheTel.diskHits.Inc()
			return art, nil
		}
	}
	var cal *core.Calibration
	if spec.NeedsCalibration() {
		c, err := e.Calibration(spec.Options)
		if err != nil {
			return core.Artifact{}, fmt.Errorf("%s: resolving calibration: %w", spec.Label(), err)
		}
		cal = &c
	}
	art, err := core.ExecuteSpec(spec, cal)
	if err != nil {
		return core.Artifact{}, err
	}
	e.simulated.Add(1)
	cacheTel.simulated.Inc()
	if e.store != nil {
		if err := e.store.Save(spec, hash, art); err != nil {
			// A read-only or full cache directory must not fail the science;
			// the failure is counted in Stats and logged on first occurrence
			// (every subsequent miss would repeat the same complaint).
			e.storeErrs.Add(1)
			cacheTel.storeErrs.Inc()
			e.warnOnce.Do(func() {
				log.Printf("engine: artifact store is not writable, results stay in-process: %v", err)
			})
		} else {
			e.stored.Add(1)
			cacheTel.stored.Inc()
		}
	}
	return art, nil
}

// --- typed accessors ---------------------------------------------------------

// Calibration returns the idle-fabric calibration for the options.
func (e *Engine) Calibration(o core.Options) (core.Calibration, error) {
	art, err := e.Run(core.CalibrateSpec(o))
	if err != nil {
		return core.Calibration{}, err
	}
	return *art.Calibration, nil
}

// AppImpact returns an application's impact signature in the given slot.
func (e *Engine) AppImpact(o core.Options, app workload.App, slot core.Slot) (core.Signature, error) {
	art, err := e.Run(core.AppImpactSpec(o, app, slot))
	if err != nil {
		return core.Signature{}, err
	}
	return *art.Signature, nil
}

// InjectorImpact returns a CompressionB configuration's impact signature.
func (e *Engine) InjectorImpact(o core.Options, cfg inject.Config) (core.Signature, error) {
	art, err := e.Run(core.InjectorImpactSpec(o, cfg))
	if err != nil {
		return core.Signature{}, err
	}
	return *art.Signature, nil
}

// Baseline returns an application's baseline iteration rate in the given
// slot.
func (e *Engine) Baseline(o core.Options, app workload.App, slot core.Slot) (core.Runtime, error) {
	art, err := e.Run(core.BaselineSpec(o, app, slot))
	if err != nil {
		return core.Runtime{}, err
	}
	return *art.Runtime, nil
}

// Compress returns an application's iteration rate under a CompressionB
// configuration in the given slot.
func (e *Engine) Compress(o core.Options, app workload.App, cfg inject.Config, slot core.Slot) (core.Runtime, error) {
	art, err := e.Run(core.CompressSpec(o, app, cfg, slot))
	if err != nil {
		return core.Runtime{}, err
	}
	return *art.Runtime, nil
}

// Pair returns the runtimes of two co-running applications (placed puts the
// first in SlotA and the second in SlotB of the placement-policy node
// order).
func (e *Engine) Pair(o core.Options, appA, appB workload.App, placed bool) (core.Runtime, core.Runtime, error) {
	art, err := e.Run(core.PairSpec(o, appA, appB, placed))
	if err != nil {
		return core.Runtime{}, core.Runtime{}, err
	}
	return *art.Runtime, *art.RuntimeB, nil
}

// BuildProfile assembles an application's compression profile — the slot
// baseline plus, per grid configuration, the injector's utilization and the
// application's degraded runtime — entirely from cached runs (the assembly
// itself is core.AssembleProfile, shared with the uncached path).
func (e *Engine) BuildProfile(o core.Options, app workload.App, grid []inject.Config, slot core.Slot) (core.Profile, error) {
	return core.AssembleProfile(e.Run, o, app, grid, slot)
}

// --- statistics --------------------------------------------------------------

// Stats counts how the engine satisfied artifact requests.
type Stats struct {
	// MemoryHits were served from the in-process map.
	MemoryHits int64
	// DiskHits were loaded from the persistent store.
	DiskHits int64
	// Deduped requests waited on an identical concurrent run.
	Deduped int64
	// Simulated runs executed live.
	Simulated int64
	// Stored artifacts were written to the persistent store.
	Stored int64
	// LoadErrors counts corrupt or mismatched blobs that fell back to a
	// live simulation; StoreErrors counts failed persist attempts.
	LoadErrors  int64
	StoreErrors int64
}

// Lookups returns the total number of artifact requests served.
func (s Stats) Lookups() int64 {
	return s.MemoryHits + s.DiskHits + s.Deduped + s.Simulated
}

// Minus returns the counter deltas accumulated since an earlier snapshot,
// letting callers attribute cache activity to one phase of a campaign.
func (s Stats) Minus(prev Stats) Stats {
	return Stats{
		MemoryHits:  s.MemoryHits - prev.MemoryHits,
		DiskHits:    s.DiskHits - prev.DiskHits,
		Deduped:     s.Deduped - prev.Deduped,
		Simulated:   s.Simulated - prev.Simulated,
		Stored:      s.Stored - prev.Stored,
		LoadErrors:  s.LoadErrors - prev.LoadErrors,
		StoreErrors: s.StoreErrors - prev.StoreErrors,
	}
}

// Add returns the field-wise sum of two snapshots (the inverse of Minus),
// for aggregating phase deltas.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MemoryHits:  s.MemoryHits + o.MemoryHits,
		DiskHits:    s.DiskHits + o.DiskHits,
		Deduped:     s.Deduped + o.Deduped,
		Simulated:   s.Simulated + o.Simulated,
		Stored:      s.Stored + o.Stored,
		LoadErrors:  s.LoadErrors + o.LoadErrors,
		StoreErrors: s.StoreErrors + o.StoreErrors,
	}
}

// String renders the stats as a one-line summary for CLI output.  The
// "N simulated" clause is the warm-cache acceptance signal: a fully warm
// campaign reports "0 simulated".
func (s Stats) String() string {
	out := fmt.Sprintf("%d artifacts: %d memory hits, %d disk hits, %d simulated",
		s.Lookups(), s.MemoryHits, s.DiskHits, s.Simulated)
	if s.Deduped > 0 {
		out += fmt.Sprintf(", %d deduplicated", s.Deduped)
	}
	if s.LoadErrors > 0 || s.StoreErrors > 0 {
		out += fmt.Sprintf(", %d load errors, %d store errors", s.LoadErrors, s.StoreErrors)
	}
	return out
}

// Summary renders the engine's statistics as the CLIs' trailing "Cache:"
// line, appending the store directory when the engine is persistent.
func (e *Engine) Summary() string {
	line := e.Stats().String()
	if e.Persistent() {
		line += ", dir " + e.StoreDir()
	}
	return line
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		MemoryHits:  e.memHits.Load(),
		DiskHits:    e.diskHits.Load(),
		Deduped:     e.deduped.Load(),
		Simulated:   e.simulated.Load(),
		Stored:      e.stored.Load(),
		LoadErrors:  e.loadErrs.Load(),
		StoreErrors: e.storeErrs.Load(),
	}
}
