package engine

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// testOptions returns the small 6-node CI options every engine test runs
// with, so live simulations stay fast.
func testOptions() core.Options { return core.TestOptions() }

// jsonBlobs lists every artifact blob under a cache directory.
func jsonBlobs(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestStoreRoundTrip is the persistence fidelity test: an artifact loaded by
// a fresh engine (fresh process, as far as the store can tell) must be
// deeply identical to the one the simulation produced, including histogram
// bins, per-sample latencies and phase windows.
func TestStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	dir := t.TempDir()
	o := testOptions()
	e1 := MustNew(dir)
	cal1, err := e1.Calibration(o)
	if err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats(); st.Simulated != 1 || st.Stored != 1 {
		t.Fatalf("cold stats = %+v", st)
	}
	if n := len(jsonBlobs(t, dir)); n != 1 {
		t.Fatalf("store holds %d blobs, want 1", n)
	}

	e2 := MustNew(dir)
	cal2, err := e2.Calibration(o)
	if err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.DiskHits != 1 || st.Simulated != 0 {
		t.Fatalf("warm stats = %+v", st)
	}
	if !reflect.DeepEqual(cal1, cal2) {
		t.Fatal("calibration artifact not identical after disk round-trip")
	}

	// The same engine serves repeats from memory.
	if _, err := e2.Calibration(o); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.MemoryHits != 1 {
		t.Fatalf("repeat not served from memory: %+v", st)
	}
}

// TestCorruptArtifactFallsBack: a truncated/garbage blob must be counted,
// fall back to a live simulation and be repaired in place.
func TestCorruptArtifactFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	dir := t.TempDir()
	o := testOptions()
	e1 := MustNew(dir)
	cal1, err := e1.Calibration(o)
	if err != nil {
		t.Fatal(err)
	}
	blobs := jsonBlobs(t, dir)
	if len(blobs) != 1 {
		t.Fatalf("store holds %d blobs, want 1", len(blobs))
	}
	if err := os.WriteFile(blobs[0], []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := MustNew(dir)
	cal2, err := e2.Calibration(o)
	if err != nil {
		t.Fatalf("corrupt blob should fall back to simulation, got %v", err)
	}
	st := e2.Stats()
	if st.LoadErrors != 1 || st.Simulated != 1 || st.DiskHits != 0 {
		t.Fatalf("fallback stats = %+v", st)
	}
	if !reflect.DeepEqual(cal1, cal2) {
		t.Fatal("re-simulated artifact differs from the original")
	}

	// The rewrite repaired the store: a third engine hits disk again.
	e3 := MustNew(dir)
	if _, err := e3.Calibration(o); err != nil {
		t.Fatal(err)
	}
	if st := e3.Stats(); st.DiskHits != 1 {
		t.Fatalf("store not repaired: %+v", st)
	}
}

// TestMemoryOnlyEngine: with caching disabled the engine simulates live,
// writes nothing, and still memoizes in-process.
func TestMemoryOnlyEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	e := MustNew("")
	if e.Persistent() {
		t.Fatal("memory-only engine claims persistence")
	}
	if e.StoreDir() != "" {
		t.Fatalf("memory-only engine has store dir %q", e.StoreDir())
	}
	o := testOptions()
	if _, err := e.Calibration(o); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Calibration(o); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Simulated != 1 || st.MemoryHits != 1 || st.Stored != 0 || st.DiskHits != 0 {
		t.Fatalf("memory-only stats = %+v", st)
	}
}

// TestSingleflightDeduplication: concurrent identical specs run one
// simulation; everyone gets the same artifact.
func TestSingleflightDeduplication(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	e := MustNew("")
	o := testOptions()
	const n = 8
	cals := make([]core.Calibration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cals[i], errs[i] = e.Calibration(o)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(cals[0], cals[i]) {
			t.Fatalf("goroutine %d got a different artifact", i)
		}
	}
	if st := e.Stats(); st.Simulated != 1 {
		t.Fatalf("%d simulations for one spec: %+v", st.Simulated, st)
	}
}

// TestEngineResolvesCalibrationDependency: an impact request on a cold
// engine runs (and caches) the calibration it depends on.
func TestEngineResolvesCalibrationDependency(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	e := MustNew("")
	o := testOptions()
	sig, err := e.InjectorImpact(o, inject.NewConfig(1, 1, 2.5e4))
	if err != nil {
		t.Fatal(err)
	}
	if sig.UtilizationPct <= 0 {
		t.Fatalf("injector utilization = %v, want > 0", sig.UtilizationPct)
	}
	// calibrate + injector impact.
	if st := e.Stats(); st.Simulated != 2 {
		t.Fatalf("stats = %+v, want 2 simulated", st)
	}
	// A direct calibration request now hits memory.
	if _, err := e.Calibration(o); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.MemoryHits != 1 {
		t.Fatalf("calibration dependency not cached: %+v", st)
	}
}

// TestBuildProfileFromCache: BuildProfile on a warm engine performs no new
// simulations and produces one point per grid configuration.
func TestBuildProfileFromCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	e := MustNew("")
	o := testOptions()
	grid := inject.ReducedGrid()[:2]
	app, err := workload.ByName("FFTW", o.Scale)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := e.BuildProfile(o, app, grid, core.SlotAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Points) != len(grid) {
		t.Fatalf("profile has %d points, want %d", len(prof.Points), len(grid))
	}
	cold := e.Stats()
	prof2, err := e.BuildProfile(o, app, grid, core.SlotAll)
	if err != nil {
		t.Fatal(err)
	}
	warm := e.Stats()
	if warm.Simulated != cold.Simulated {
		t.Fatalf("warm BuildProfile simulated %d new runs", warm.Simulated-cold.Simulated)
	}
	if !reflect.DeepEqual(prof, prof2) {
		t.Fatal("warm profile differs from cold profile")
	}
}

func TestParallelBoundsWorkersAndJoinsErrors(t *testing.T) {
	var cur, peak atomic.Int64
	boom := errors.New("boom")
	err := Parallel(32, 4,
		func(i int) string { return "job" },
		func(i int) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer cur.Add(-1)
			if i%8 == 0 {
				return boom
			}
			return nil
		})
	if peak.Load() > 4 {
		t.Fatalf("worker pool peaked at %d concurrent tasks, want <= 4", peak.Load())
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if got := strings.Count(err.Error(), "boom"); got != 4 {
		t.Fatalf("joined error reports %d failures, want 4:\n%v", got, err)
	}
	if err := Parallel(0, 4, nil, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("zero tasks should succeed: %v", err)
	}
}

// TestStatsString: the one-line summary carries the warm-campaign signal.
func TestStatsString(t *testing.T) {
	s := Stats{MemoryHits: 2, DiskHits: 3, Simulated: 0}
	if got := s.String(); !strings.Contains(got, "0 simulated") {
		t.Fatalf("warm stats line missing zero-simulations signal: %q", got)
	}
	s = Stats{Simulated: 5, Deduped: 1, LoadErrors: 2}
	line := s.String()
	for _, want := range []string{"5 simulated", "1 deduplicated", "2 load errors"} {
		if !strings.Contains(line, want) {
			t.Fatalf("stats line %q missing %q", line, want)
		}
	}
}

// TestUnusableCacheDirDegradesToMemory pins the open-path fallback: a cache
// directory that cannot be created (here: a path through a regular file,
// which fails even for root) must not fail the campaign — the engine comes
// up memory-only and measures live.
func TestUnusableCacheDirDegradesToMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := New(filepath.Join(blocker, "cache"))
	if err != nil {
		t.Fatalf("an unusable cache dir must degrade, not fail: %v", err)
	}
	if e.Persistent() {
		t.Fatal("engine claims persistence behind an unusable directory")
	}
	if _, err := e.Calibration(testOptions()); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Simulated != 1 || st.Stored != 0 {
		t.Fatalf("memory-only fallback stats = %+v", st)
	}
}

// TestUnwritableStoreFallsBackToLiveResults pins the write-path fallback: a
// store that opens fine but cannot persist (the blob's fan-out directory is
// blocked by a regular file) still returns every artifact, counting the
// failed persist instead of surfacing it.
func TestUnwritableStoreFallsBackToLiveResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements; skipped in -short mode")
	}
	dir := t.TempDir()
	e := MustNew(dir)
	o := testOptions()
	hash := core.CalibrateSpec(o).Hash()
	// Block the fan-out subdirectory with a file; MkdirAll then fails with
	// ENOTDIR regardless of privileges (chmod-based read-only dirs are
	// bypassed by root, which CI containers run as).
	if err := os.WriteFile(filepath.Join(e.StoreDir(), hash[:2]), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cal, err := e.Calibration(o)
	if err != nil {
		t.Fatalf("a read-only store must not fail the run: %v", err)
	}
	if cal.Idle.Mean <= 0 {
		t.Fatalf("live result incomplete: %+v", cal.Idle)
	}
	st := e.Stats()
	if st.Simulated != 1 || st.Stored != 0 || st.StoreErrors != 1 {
		t.Fatalf("write-path fallback stats = %+v", st)
	}
	// The result is still memoized in-process: a second request costs
	// nothing and never touches the broken store again.
	if _, err := e.Calibration(o); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.MemoryHits != 1 || st.StoreErrors != 1 {
		t.Fatalf("post-fallback memoization stats = %+v", st)
	}
}
