package engine

import (
	"errors"
	"fmt"
	"sync"

	"github.com/hpcperf/switchprobe/internal/telemetry"
)

// Parallel is the campaign runner: it executes n independent tasks on at
// most workers goroutines.  Every task runs to completion regardless of
// failures, and every failure is kept — the returned error joins each task's
// error (errors.Join), wrapped with the task's label, so a campaign surfaces
// every failed run instead of an arbitrary first one.
func Parallel(n, workers int, label func(i int) string, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// The fan-out feeds the live /progress endpoint: each batch registers its
	// task count up front and marks tasks off as they finish.  Pure
	// observation — task scheduling and results are unaffected.
	prog := telemetry.DefaultProgress()
	prog.AddPlanned(int64(n))
	var wg sync.WaitGroup
	jobs := make(chan int)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := task(i); err != nil {
					if label != nil {
						err = fmt.Errorf("%s: %w", label(i), err)
					}
					errs[i] = err
				}
				prog.MarkDone()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}
