package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"github.com/hpcperf/switchprobe/internal/core"
)

// envelope is the on-disk wire form of one artifact.  The canonical spec
// encoding rides along purely for humans debugging a cache directory; lookup
// is by content hash alone.
type envelope struct {
	Schema   string        `json:"schema"`
	Kind     string        `json:"kind"`
	Spec     string        `json:"spec"`
	Artifact core.Artifact `json:"artifact"`
}

// Store is the persistent half of the artifact cache: JSON blobs keyed by
// RunSpec content hash under <dir>/<schema>/<hh>/<hash>.json, where <schema>
// is core.SpecVersion().  A kernel or network-model version bump changes the
// schema directory, so stale artifacts from an older simulator generation
// are never read again.  Writes are atomic (temp file + rename), making a
// store safe to share between concurrent processes.
type Store struct {
	dir    string
	schema string
}

// OpenStore opens (creating if needed) the artifact store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	schema := core.SpecVersion()
	full := filepath.Join(dir, schema)
	if err := os.MkdirAll(full, 0o755); err != nil {
		return nil, fmt.Errorf("engine: opening artifact store: %w", err)
	}
	return &Store{dir: full, schema: schema}, nil
}

// Dir returns the store's schema-versioned root directory.
func (s *Store) Dir() string { return s.dir }

// path places blobs in 256 fan-out subdirectories so huge campaigns don't
// degenerate into one giant directory.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".json")
}

// Load returns the artifact stored under hash.  A missing blob is (zero,
// false, nil); a blob that exists but cannot be decoded, carries the wrong
// kind, or is incomplete for its kind is reported as (zero, false, err) so
// the caller can count the corruption and fall back to a live simulation.
func (s *Store) Load(hash string, kind core.RunKind) (core.Artifact, bool, error) {
	data, err := os.ReadFile(s.path(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return core.Artifact{}, false, nil
	}
	if err != nil {
		return core.Artifact{}, false, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return core.Artifact{}, false, fmt.Errorf("engine: corrupt artifact %s: %w", hash[:12], err)
	}
	if env.Schema != s.schema {
		return core.Artifact{}, false, fmt.Errorf("engine: artifact %s has schema %q, want %q", hash[:12], env.Schema, s.schema)
	}
	if env.Kind != string(kind) {
		return core.Artifact{}, false, fmt.Errorf("engine: artifact %s is a %s run, want %s", hash[:12], env.Kind, kind)
	}
	if !env.Artifact.Complete(kind) {
		return core.Artifact{}, false, fmt.Errorf("engine: artifact %s is incomplete for kind %s", hash[:12], kind)
	}
	return env.Artifact, true, nil
}

// Save persists an artifact under its spec's hash.  The write is atomic: a
// reader never observes a half-written blob, and concurrent writers of the
// same hash (which by construction hold identical content) last-write-wins
// harmlessly.
func (s *Store) Save(spec core.RunSpec, hash string, art core.Artifact) error {
	dir := filepath.Dir(s.path(hash))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(envelope{
		Schema:   s.schema,
		Kind:     string(spec.Kind),
		Spec:     spec.Canonical(),
		Artifact: art,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-"+hash[:12]+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
