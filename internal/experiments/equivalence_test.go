package experiments

import (
	"math"
	"testing"

	"github.com/hpcperf/switchprobe/internal/sched"
)

// Statistical-equivalence gates: the schedule-relaxed execution mode
// (netsim relaxed, the default since ModelVersion 3) is deterministic per
// seed but intentionally NOT byte-identical to the strict golden oracle.
// Its contract is distributional, and these tests are that contract: each
// paper experiment is run once relaxed and once strict at CI scale, and the
// results must agree within declared tolerances.
//
// Tolerance rationale: at CI scale a single seed's strict-vs-strict
// seed-to-seed spread on Table 1 entries is already several percentage
// points (the measurement windows hold few iterations), so the gates bound
// gross model drift — an ordering bug, a lost stall, a broken credit ledger
// — not sampling noise.  Sub-point agreement would require averaging many
// seeds, which CI cannot afford; the declared bands below were set at
// roughly twice the observed relaxed-vs-strict gap so noise does not flake
// the suite while a real model regression (typically tens of points or an
// inverted ordering) still fails it.

// equivTable1Tol returns the allowed gap for one Table 1 slowdown entry
// (percent): 4 points absolute or 40% of the oracle value, whichever is
// larger.  The relative band is wide because the heavy-contention pairs
// (both apps communication-bound, slowdowns of 35–70 points) are the
// entries most sensitive to arbitration microstructure: at CI scale a
// single seed's relaxed-vs-strict gap on them measures 13–35% relative.
// The paper-meaningful invariant — which pairs interfere at all — is
// gated separately and much more tightly by the classification check.
func equivTable1Tol(strict float64) float64 {
	return math.Max(4.0, 0.40*math.Abs(strict))
}

// table1Class buckets a slowdown entry into the paper's qualitative
// classes: negligible (<10 points), moderate, heavy (>25 points).
func table1Class(pct float64) int {
	switch {
	case pct < 10:
		return 0
	case pct < 25:
		return 1
	default:
		return 2
	}
}

// cdfGapPct returns the maximum CDF gap (0..1) between two binned
// distributions given as per-bin percentages on a shared binning.
func cdfGapPct(a, b []float64) float64 {
	var ca, cb, gap float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ca += a[i] / 100
		cb += b[i] / 100
		if g := math.Abs(ca - cb); g > gap {
			gap = g
		}
	}
	return gap
}

func equivalenceSuites(t *testing.T) (relaxed, strict *Suite) {
	t.Helper()
	r := MustNewConfig(PresetCI, 1)
	r.Options.Machine.Net.StrictOrder = false
	s := MustNewConfig(PresetCI, 1)
	s.Options.Machine.Net.StrictOrder = true
	return NewSuite(r), NewSuite(s)
}

func TestRelaxedStrictEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every CI-scale experiment twice; skipped in -short")
	}
	relaxed, strict := equivalenceSuites(t)

	t.Run("fig3", func(t *testing.T) {
		rr, err := relaxed.Fig3()
		if err != nil {
			t.Fatal(err)
		}
		sr, err := strict.Fig3()
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range sr.Columns {
			gap := cdfGapPct(rr.FrequencyPct[col], sr.FrequencyPct[col])
			t.Logf("fig3 %-12s cdf-gap=%.4f mean relaxed=%.3fµs strict=%.3fµs",
				col, gap, rr.MeanMicros[col], sr.MeanMicros[col])
			// The probe latency histogram is the paper's core observable;
			// 0.20 is ~2x the worst measured relaxed-vs-strict gap at CI
			// scale (0.09–0.15 on the loaded columns, single shared seed),
			// and well under the 0.27–0.42 regime that express/shadow
			// regressions produce.
			if gap > 0.20 {
				t.Errorf("fig3 %s: latency CDF gap %.4f exceeds 0.20", col, gap)
			}
			rm, sm := rr.MeanMicros[col], sr.MeanMicros[col]
			if diff := math.Abs(rm - sm); diff > math.Max(0.6, 0.12*sm) {
				t.Errorf("fig3 %s: mean latency %.3fµs vs %.3fµs diverges", col, rm, sm)
			}
		}
	})

	t.Run("table1", func(t *testing.T) {
		rr, err := relaxed.Table1()
		if err != nil {
			t.Fatal(err)
		}
		sr, err := strict.Table1()
		if err != nil {
			t.Fatal(err)
		}
		for i, target := range sr.Apps {
			for j, co := range sr.Apps {
				rv, sv := rr.SlowdownPct[i][j], sr.SlowdownPct[i][j]
				tol := equivTable1Tol(sv)
				t.Logf("table1 %s+%s relaxed=%.2f strict=%.2f tol=%.2f", target, co, rv, sv, tol)
				if math.Abs(rv-sv) > tol {
					t.Errorf("table1 %s+%s: relaxed %.2f vs strict %.2f exceeds ±%.2f",
						target, co, rv, sv, tol)
				}
				// The classification gate is the tight one: relaxed and strict
				// must agree on whether a pairing interferes negligibly,
				// moderately or heavily (adjacent classes allowed only when the
				// strict value sits within 5 points of the boundary).
				if rc, sc := table1Class(rv), table1Class(sv); rc != sc {
					boundary := math.Min(math.Abs(sv-10), math.Abs(sv-25))
					if boundary > 5 || rc-sc > 1 || sc-rc > 1 {
						t.Errorf("table1 %s+%s: contention class %d (relaxed %.2f) vs %d (strict %.2f)",
							target, co, rc, rv, sc, sv)
					}
				}
			}
		}
	})

	t.Run("xswitch", func(t *testing.T) {
		rr, err := relaxed.XSwitch("FFTW", "VPFFT")
		if err != nil {
			t.Fatal(err)
		}
		sr, err := strict.XSwitch("FFTW", "VPFFT")
		if err != nil {
			t.Fatal(err)
		}
		if len(rr.Points) != len(sr.Points) {
			t.Fatalf("point count differs: %d vs %d", len(rr.Points), len(sr.Points))
		}
		for i, sp := range sr.Points {
			rp := rr.Points[i]
			if rp.Uplinks != sp.Uplinks || rp.Placement != sp.Placement {
				t.Fatalf("point %d identity differs: %+v vs %+v", i, rp, sp)
			}
			// 35% relative: the saturated single-uplink spread point is the
			// worst case (relaxed under-reads trunk-induced degradation by
			// ~30% relative at CI scale); the gate still catches inverted
			// placement orderings and lost-contention regressions, and the
			// pack-vs-spread ordering is asserted separately below.
			tol := math.Max(5.0, 0.35*math.Abs(sp.MeasuredPct))
			t.Logf("xswitch u=%d %-7s relaxed=%.2f strict=%.2f tol=%.2f",
				sp.Uplinks, sp.Placement, rp.MeasuredPct, sp.MeasuredPct, tol)
			if math.Abs(rp.MeasuredPct-sp.MeasuredPct) > tol {
				t.Errorf("xswitch uplinks=%d placement=%s: degradation %.2f vs %.2f exceeds ±%.2f",
					sp.Uplinks, sp.Placement, rp.MeasuredPct, sp.MeasuredPct, tol)
			}
		}
		// Ordering invariant: wherever the strict oracle separates the two
		// placements by a clear margin, relaxed must reproduce the direction
		// of the paper's conclusion (spread placements hurt more than packed
		// ones at low uplink counts).
		byKey := func(pts []XSwitchPoint) map[int]map[string]float64 {
			m := map[int]map[string]float64{}
			for _, p := range pts {
				if m[p.Uplinks] == nil {
					m[p.Uplinks] = map[string]float64{}
				}
				m[p.Uplinks][string(p.Placement)] = p.MeasuredPct
			}
			return m
		}
		rm, sm := byKey(rr.Points), byKey(sr.Points)
		for u, sv := range sm {
			if len(sv) != 2 {
				continue
			}
			if math.Abs(sv["spread"]-sv["pack"]) < 10 {
				continue // strict itself sees no clear separation here
			}
			strictSpreadWorse := sv["spread"] > sv["pack"]
			relaxedSpreadWorse := rm[u]["spread"] > rm[u]["pack"]
			if strictSpreadWorse != relaxedSpreadWorse {
				t.Errorf("xswitch uplinks=%d: placement ordering inverted (relaxed spread=%.2f pack=%.2f, strict spread=%.2f pack=%.2f)",
					u, rm[u]["spread"], rm[u]["pack"], sv["spread"], sv["pack"])
			}
		}
	})

	t.Run("faults", func(t *testing.T) {
		spec := FaultsSpec{Sched: SchedSpec{
			Jobs: 8, Streams: 2,
			Policies: []string{sched.PolicyPack, sched.PolicyPredictor},
		}}
		rr, err := relaxed.Faults(spec)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := strict.Faults(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(rr.Rows) != len(sr.Rows) {
			t.Fatalf("row count differs: %d vs %d", len(rr.Rows), len(sr.Rows))
		}
		for i, sv := range sr.Rows {
			rv := rr.Rows[i]
			if rv.Scenario != sv.Scenario || rv.Case != sv.Case || rv.Policy != sv.Policy {
				t.Fatalf("row %d identity differs: %+v vs %+v", i, rv, sv)
			}
			// The fault timeline is traffic-independent (scheduled events, or
			// a dedicated RNG substream), and failover routing depends only on
			// trunk health — so failure and reroute counts must agree EXACTLY
			// between the two engines.
			if rv.TrunksFailed != sv.TrunksFailed {
				t.Errorf("faults %s/%s: trunks failed %d (relaxed) vs %d (strict); the fault timeline must be engine-independent",
					sv.Scenario, sv.Case, rv.TrunksFailed, sv.TrunksFailed)
			}
			if rv.Reroutes != sv.Reroutes {
				t.Errorf("faults %s/%s: reroutes %d (relaxed) vs %d (strict); failover routing must be engine-independent",
					sv.Scenario, sv.Case, rv.Reroutes, sv.Reroutes)
			}
			// Retransmit counts depend on which packets are in flight at the
			// failure instant, which legitimately differs between the strict
			// queue and the relaxed walk: gate agreement loosely, plus the
			// structural invariant that a trunk-down case loses packets in
			// both modes.
			if sv.TrunksFailed > 0 && sv.Case != FaultCaseDegrade {
				if (rv.Retransmits == 0) != (sv.Retransmits == 0) {
					t.Errorf("faults %s/%s: retransmits %d (relaxed) vs %d (strict); one engine lost no packets",
						sv.Scenario, sv.Case, rv.Retransmits, sv.Retransmits)
				}
			}
			rtol := math.Max(16, 0.6*float64(sv.Retransmits))
			if diff := math.Abs(float64(rv.Retransmits - sv.Retransmits)); diff > rtol {
				t.Errorf("faults %s/%s: retransmits %d vs %d exceeds ±%.0f",
					sv.Scenario, sv.Case, rv.Retransmits, sv.Retransmits, rtol)
			}
			// Probe slowdown under faults: same rationale (and band shape) as
			// the xswitch degradation gate, slightly wider because the faulted
			// run adds retransmit-timing microstructure on top of arbitration.
			// The 12-point floor covers the degrade case, where both engines
			// sit near 10% and the gap is ~0.2µs of absolute probe latency;
			// a relaxed engine that dropped the degrade factor entirely would
			// read ~0% against a strict ~14% and still fail the gate.
			stol := math.Max(12.0, 0.45*math.Abs(sv.SlowdownPct))
			t.Logf("faults %-12s %-9s %-9s slowdown relaxed=%.2f strict=%.2f retrans relaxed=%d strict=%d",
				sv.Scenario, sv.Case, sv.Policy, rv.SlowdownPct, sv.SlowdownPct, rv.Retransmits, sv.Retransmits)
			if math.Abs(rv.SlowdownPct-sv.SlowdownPct) > stol {
				t.Errorf("faults %s/%s: slowdown %.2f%% vs %.2f%% exceeds ±%.2f",
					sv.Scenario, sv.Case, rv.SlowdownPct, sv.SlowdownPct, stol)
			}
			// Job-level metrics reuse the sched gate: only the measured
			// coefficients differ between engines.
			jtol := math.Max(0.08, 0.12*sv.MeanStretch)
			if math.Abs(rv.MeanStretch-sv.MeanStretch) > jtol {
				t.Errorf("faults %s/%s/%s: mean stretch %.3f vs %.3f exceeds ±%.3f",
					sv.Scenario, sv.Case, sv.Policy, rv.MeanStretch, sv.MeanStretch, jtol)
			}
			if rv.Requeues != sv.Requeues {
				t.Errorf("faults %s/%s/%s: requeues %d vs %d; the health timeline is engine-independent",
					sv.Scenario, sv.Case, sv.Policy, rv.Requeues, sv.Requeues)
			}
		}
	})

	t.Run("sched", func(t *testing.T) {
		spec := SchedSpec{Jobs: 8, Streams: 2, Policies: sched.PolicyNames()}
		rr, err := relaxed.Sched(spec)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := strict.Sched(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range sr.Rows {
			rv, ok := rr.MeanStretch(row.Scenario, row.Policy)
			if !ok {
				t.Errorf("sched %s/%s missing from relaxed result", row.Scenario, row.Policy)
				continue
			}
			sv, _ := sr.MeanStretch(row.Scenario, row.Policy)
			tol := math.Max(0.08, 0.12*sv)
			t.Logf("sched %-10s %-9s relaxed=%.3f strict=%.3f tol=%.3f",
				row.Scenario, row.Policy, rv, sv, tol)
			if math.Abs(rv-sv) > tol {
				t.Errorf("sched %s/%s: mean stretch %.3f vs %.3f exceeds ±%.3f",
					row.Scenario, row.Policy, rv, sv, tol)
			}
		}
	})
}
