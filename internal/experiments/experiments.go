// Package experiments reproduces every table and figure of the paper's
// evaluation on the simulated cluster:
//
//	Fig. 3  — probe-packet latency distributions (idle switch + each app)
//	Fig. 6  — switch utilization of the 40 CompressionB configurations
//	Fig. 7  — application degradation vs. switch utilization curves
//	Table I — measured slowdowns of all ordered application pairs
//	Fig. 8  — per-pair prediction error of the four models
//	Fig. 9  — per-model error quartile summary
//
// A Suite caches the shared measurement artifacts (calibration, impact
// signatures, compression profiles, co-run measurements) so the figures can
// be produced independently or together without repeating expensive runs.
// Independent simulation runs execute in parallel across CPU cores.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/predict"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// Preset selects the experiment scale.
type Preset string

const (
	// PresetPaper runs the full 18-node, 40-configuration reproduction.
	PresetPaper Preset = "paper"
	// PresetDefault runs the 18-node machine with reduced problem sizes and
	// a pruned configuration grid; it is the bench-harness default.
	PresetDefault Preset = "default"
	// PresetCI runs a small 6-node machine with strongly reduced problem
	// sizes, for unit tests and continuous integration.
	PresetCI Preset = "ci"
)

// Config describes one experiment campaign.
type Config struct {
	// Preset records which preset the configuration was derived from.
	Preset Preset
	// Options are the measurement options passed to the core methodology.
	Options core.Options
	// Grid is the CompressionB configuration grid used for Fig. 6 and the
	// look-up tables.
	Grid []inject.Config
	// ProfileGrid is the (possibly pruned) grid used to build per-application
	// compression profiles (Fig. 7); it must be a subset of Grid.
	ProfileGrid []inject.Config
	// Scale is the application problem scale.
	Scale workload.Scale
	// Parallelism bounds the number of concurrently executing simulation
	// runs; 0 means use all CPUs.
	Parallelism int
}

// NewConfig builds the configuration for a preset with the given base seed.
func NewConfig(preset Preset, seed int64) (Config, error) {
	switch preset {
	case PresetPaper:
		o := core.DefaultOptions()
		o.Seed = seed
		return Config{
			Preset:      preset,
			Options:     o,
			Grid:        inject.Grid(),
			ProfileGrid: inject.Grid(),
			Scale:       workload.FullScale,
		}, nil
	case PresetDefault:
		o := core.DefaultOptions()
		o.Seed = seed
		o.Scale = workload.Reduced(0.35)
		o.Window = 65 * sim.Millisecond
		o.Probe.Pause = 150 * sim.Microsecond
		return Config{
			Preset:      preset,
			Options:     o,
			Grid:        inject.Grid(),
			ProfileGrid: pruneGrid(inject.Grid()),
			Scale:       o.Scale,
		}, nil
	case PresetCI:
		o := core.TestOptions()
		o.Seed = seed
		return Config{
			Preset:      preset,
			Options:     o,
			Grid:        inject.ReducedGrid(),
			ProfileGrid: inject.ReducedGrid(),
			Scale:       o.Scale,
		}, nil
	default:
		return Config{}, fmt.Errorf("experiments: unknown preset %q", preset)
	}
}

// MustNewConfig is NewConfig that panics on an unknown preset.
func MustNewConfig(preset Preset, seed int64) Config {
	cfg, err := NewConfig(preset, seed)
	if err != nil {
		panic(err)
	}
	return cfg
}

// pruneGrid keeps a representative subset of the full CompressionB grid: all
// partner counts at the extreme sleep settings plus the mid-range, single
// message count except for the heaviest configurations.
func pruneGrid(grid []inject.Config) []inject.Config {
	var out []inject.Config
	for _, c := range grid {
		keep := false
		switch c.SleepCycles {
		case 2.5e4:
			keep = c.Messages == 10 && (c.Partners == 1 || c.Partners == 7 || c.Partners == 17)
		case 2.5e5:
			keep = c.Messages == 1 && (c.Partners == 1 || c.Partners == 7 || c.Partners == 17)
		case 2.5e6:
			keep = c.Messages == 1 && (c.Partners == 4 || c.Partners == 14)
		case 2.5e7:
			keep = c.Messages == 1 && (c.Partners == 1 || c.Partners == 17)
		}
		if keep {
			out = append(out, c)
		}
	}
	return out
}

// parallelism resolves the configured worker count.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// apps instantiates the application registry at the configured scale.
func (c Config) apps() []workload.App { return workload.Registry(c.Scale) }

// Suite runs experiments and caches their shared artifacts.
type Suite struct {
	cfg Config

	mu        sync.Mutex
	cal       *core.Calibration
	appSigs   map[string]core.Signature
	injSigs   map[string]core.Signature
	baselines map[string]core.Runtime
	profiles  map[string]core.Profile
	pairs     map[predict.Pairing]float64
}

// NewSuite creates an experiment suite for the configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:       cfg,
		appSigs:   make(map[string]core.Signature),
		injSigs:   make(map[string]core.Signature),
		baselines: make(map[string]core.Runtime),
		profiles:  make(map[string]core.Profile),
		pairs:     make(map[predict.Pairing]float64),
	}
}

// Config returns the suite's configuration.
func (s *Suite) Config() Config { return s.cfg }

// SimUsage returns the aggregated discrete-event kernel activity (events
// fired, pool reuses, fast-path hits, throughput) of every measurement run
// executed in this process, letting callers such as cmd/swprobe report
// simulator throughput alongside the experiment results.
func SimUsage() core.SimUsage { return core.SimUsageSnapshot() }

// ResetSimUsage clears the aggregated kernel counters so the next campaign
// reports its own numbers.
func ResetSimUsage() { core.ResetSimUsage() }

// runParallel executes n independent tasks on a bounded worker pool and
// returns the first error encountered (all tasks still run to completion).
func (s *Suite) runParallel(n int, task func(i int) error) error {
	workers := s.cfg.parallelism()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Calibration returns (measuring once) the idle-switch calibration.
func (s *Suite) Calibration() (core.Calibration, error) {
	s.mu.Lock()
	cached := s.cal
	s.mu.Unlock()
	if cached != nil {
		return *cached, nil
	}
	cal, err := core.Calibrate(s.cfg.Options)
	if err != nil {
		return core.Calibration{}, err
	}
	s.mu.Lock()
	s.cal = &cal
	s.mu.Unlock()
	return cal, nil
}

// AppSignatures returns (measuring once, in parallel) the impact signature of
// every application.
func (s *Suite) AppSignatures() (map[string]core.Signature, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	apps := s.cfg.apps()
	s.mu.Lock()
	missing := make([]workload.App, 0, len(apps))
	for _, a := range apps {
		if _, ok := s.appSigs[a.Name()]; !ok {
			missing = append(missing, a)
		}
	}
	s.mu.Unlock()
	if len(missing) > 0 {
		sigs := make([]core.Signature, len(missing))
		err := s.runParallel(len(missing), func(i int) error {
			sig, err := core.MeasureAppImpact(s.cfg.Options, cal, missing[i])
			if err != nil {
				return err
			}
			sigs[i] = sig
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		for i, a := range missing {
			s.appSigs[a.Name()] = sigs[i]
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]core.Signature, len(s.appSigs))
	for k, v := range s.appSigs {
		out[k] = v
	}
	return out, nil
}

// InjectorSignatures returns (measuring once, in parallel) the impact
// signature — and therefore switch utilization — of every configuration in
// the grid.
func (s *Suite) InjectorSignatures(grid []inject.Config) (map[string]core.Signature, error) {
	cal, err := s.Calibration()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	var missing []inject.Config
	for _, cfg := range grid {
		if _, ok := s.injSigs[cfg.Label()]; !ok {
			missing = append(missing, cfg)
		}
	}
	s.mu.Unlock()
	if len(missing) > 0 {
		sigs := make([]core.Signature, len(missing))
		err := s.runParallel(len(missing), func(i int) error {
			sig, err := core.MeasureInjectorImpact(s.cfg.Options, cal, missing[i])
			if err != nil {
				return err
			}
			sigs[i] = sig
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		for i, cfg := range missing {
			s.injSigs[cfg.Label()] = sigs[i]
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]core.Signature, len(grid))
	for _, cfg := range grid {
		out[cfg.Label()] = s.injSigs[cfg.Label()]
	}
	return out, nil
}

// Baselines returns (measuring once, in parallel) every application's
// baseline iteration rate.
func (s *Suite) Baselines() (map[string]core.Runtime, error) {
	apps := s.cfg.apps()
	s.mu.Lock()
	missing := make([]workload.App, 0, len(apps))
	for _, a := range apps {
		if _, ok := s.baselines[a.Name()]; !ok {
			missing = append(missing, a)
		}
	}
	s.mu.Unlock()
	if len(missing) > 0 {
		rts := make([]core.Runtime, len(missing))
		err := s.runParallel(len(missing), func(i int) error {
			rt, err := core.MeasureAppBaseline(s.cfg.Options, missing[i])
			if err != nil {
				return err
			}
			rts[i] = rt
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		for i, a := range missing {
			s.baselines[a.Name()] = rts[i]
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]core.Runtime, len(s.baselines))
	for k, v := range s.baselines {
		out[k] = v
	}
	return out, nil
}

// Profiles returns (measuring once, in parallel) every application's
// compression profile over the profile grid.
func (s *Suite) Profiles() (map[string]core.Profile, error) {
	injSigs, err := s.InjectorSignatures(s.cfg.ProfileGrid)
	if err != nil {
		return nil, err
	}
	baselines, err := s.Baselines()
	if err != nil {
		return nil, err
	}
	apps := s.cfg.apps()
	s.mu.Lock()
	allCached := true
	for _, a := range apps {
		if _, ok := s.profiles[a.Name()]; !ok {
			allCached = false
		}
	}
	s.mu.Unlock()
	if !allCached {
		type task struct {
			app workload.App
			cfg inject.Config
		}
		var tasks []task
		for _, a := range apps {
			for _, cfg := range s.cfg.ProfileGrid {
				tasks = append(tasks, task{app: a, cfg: cfg})
			}
		}
		degradations := make([]float64, len(tasks))
		err := s.runParallel(len(tasks), func(i int) error {
			rt, err := core.MeasureAppUnderInjector(s.cfg.Options, tasks[i].app, tasks[i].cfg)
			if err != nil {
				return err
			}
			degradations[i] = core.DegradationPercent(baselines[tasks[i].app.Name()], rt)
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		for _, a := range apps {
			prof := core.Profile{App: a.Name(), Baseline: baselines[a.Name()]}
			for i, tk := range tasks {
				if tk.app.Name() != a.Name() {
					continue
				}
				sig := injSigs[tk.cfg.Label()]
				prof.Points = append(prof.Points, core.ProfilePoint{
					Injector:       tk.cfg,
					UtilizationPct: sig.UtilizationPct,
					ImpactMean:     sig.Mean,
					ImpactStd:      sig.StdDev,
					ImpactHist:     sig.Hist,
					DegradationPct: degradations[i],
				})
			}
			s.profiles[a.Name()] = prof
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]core.Profile, len(s.profiles))
	for k, v := range s.profiles {
		out[k] = v
	}
	return out, nil
}

// PairSlowdowns returns (measuring once, in parallel) the measured slowdown
// of every ordered application pair relative to its baseline.
func (s *Suite) PairSlowdowns() (map[predict.Pairing]float64, error) {
	baselines, err := s.Baselines()
	if err != nil {
		return nil, err
	}
	apps := s.cfg.apps()
	s.mu.Lock()
	cached := len(s.pairs) == len(apps)*len(apps)
	s.mu.Unlock()
	if !cached {
		type task struct{ a, b workload.App }
		var tasks []task
		for i, a := range apps {
			for j, b := range apps {
				if j < i {
					continue // unordered co-run measured once, read both ways
				}
				tasks = append(tasks, task{a: a, b: b})
			}
		}
		type result struct {
			ra, rb core.Runtime
		}
		results := make([]result, len(tasks))
		err := s.runParallel(len(tasks), func(i int) error {
			ra, rb, err := core.MeasureAppPair(s.cfg.Options, tasks[i].a, tasks[i].b)
			if err != nil {
				return err
			}
			results[i] = result{ra: ra, rb: rb}
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		for i, tk := range tasks {
			aName, bName := tk.a.Name(), tk.b.Name()
			s.pairs[predict.Pairing{Target: aName, CoRunner: bName}] =
				core.DegradationPercent(baselines[aName], results[i].ra)
			s.pairs[predict.Pairing{Target: bName, CoRunner: aName}] =
				core.DegradationPercent(baselines[bName], results[i].rb)
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[predict.Pairing]float64, len(s.pairs))
	for k, v := range s.pairs {
		out[k] = v
	}
	return out, nil
}
