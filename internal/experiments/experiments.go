// Package experiments reproduces every table and figure of the paper's
// evaluation on the simulated cluster:
//
//	Fig. 3  — probe-packet latency distributions (idle switch + each app)
//	Fig. 6  — switch utilization of the 40 CompressionB configurations
//	Fig. 7  — application degradation vs. switch utilization curves
//	Table I — measured slowdowns of all ordered application pairs
//	Fig. 8  — per-pair prediction error of the four models
//	Fig. 9  — per-model error quartile summary
//
// A Suite requests every measurement it needs as a declarative RunSpec from
// an artifact engine (internal/engine), which deduplicates identical runs,
// memoizes them in-process and — when backed by a cache directory — persists
// them, so the figures can be produced independently or together without
// repeating expensive runs, and a warm re-run of a whole campaign executes
// zero simulations.  Independent simulation runs execute in parallel across
// CPU cores.
package experiments

import (
	"fmt"
	"runtime"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/engine"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/predict"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// Preset selects the experiment scale.
type Preset string

const (
	// PresetPaper runs the full 18-node, 40-configuration reproduction.
	PresetPaper Preset = "paper"
	// PresetDefault runs the 18-node machine with reduced problem sizes and
	// a pruned configuration grid; it is the bench-harness default.
	PresetDefault Preset = "default"
	// PresetCI runs a small 6-node machine with strongly reduced problem
	// sizes, for unit tests and continuous integration.
	PresetCI Preset = "ci"
)

// Config describes one experiment campaign.
type Config struct {
	// Preset records which preset the configuration was derived from.
	Preset Preset
	// Options are the measurement options passed to the core methodology.
	Options core.Options
	// Grid is the CompressionB configuration grid used for Fig. 6 and the
	// look-up tables.
	Grid []inject.Config
	// ProfileGrid is the (possibly pruned) grid used to build per-application
	// compression profiles (Fig. 7); it must be a subset of Grid.
	ProfileGrid []inject.Config
	// Scale is the application problem scale.
	Scale workload.Scale
	// Parallelism bounds the number of concurrently executing simulation
	// runs; 0 means use all CPUs.
	Parallelism int
}

// NewConfig builds the configuration for a preset with the given base seed.
func NewConfig(preset Preset, seed int64) (Config, error) {
	switch preset {
	case PresetPaper:
		o := core.DefaultOptions()
		o.Seed = seed
		return Config{
			Preset:      preset,
			Options:     o,
			Grid:        inject.Grid(),
			ProfileGrid: inject.Grid(),
			Scale:       workload.FullScale,
		}, nil
	case PresetDefault:
		o := core.DefaultOptions()
		o.Seed = seed
		o.Scale = workload.Reduced(0.35)
		o.Window = 65 * sim.Millisecond
		o.Probe.Pause = 150 * sim.Microsecond
		return Config{
			Preset:      preset,
			Options:     o,
			Grid:        inject.Grid(),
			ProfileGrid: pruneGrid(inject.Grid()),
			Scale:       o.Scale,
		}, nil
	case PresetCI:
		o := core.TestOptions()
		o.Seed = seed
		return Config{
			Preset:      preset,
			Options:     o,
			Grid:        inject.ReducedGrid(),
			ProfileGrid: inject.ReducedGrid(),
			Scale:       o.Scale,
		}, nil
	default:
		return Config{}, fmt.Errorf("experiments: unknown preset %q (valid: %s, %s, %s)",
			preset, PresetPaper, PresetDefault, PresetCI)
	}
}

// MustNewConfig is NewConfig that panics on an unknown preset.
func MustNewConfig(preset Preset, seed int64) Config {
	cfg, err := NewConfig(preset, seed)
	if err != nil {
		panic(err)
	}
	return cfg
}

// pruneGrid keeps a representative subset of the full CompressionB grid: all
// partner counts at the extreme sleep settings plus the mid-range, single
// message count except for the heaviest configurations.
func pruneGrid(grid []inject.Config) []inject.Config {
	var out []inject.Config
	for _, c := range grid {
		keep := false
		switch c.SleepCycles {
		case 2.5e4:
			keep = c.Messages == 10 && (c.Partners == 1 || c.Partners == 7 || c.Partners == 17)
		case 2.5e5:
			keep = c.Messages == 1 && (c.Partners == 1 || c.Partners == 7 || c.Partners == 17)
		case 2.5e6:
			keep = c.Messages == 1 && (c.Partners == 4 || c.Partners == 14)
		case 2.5e7:
			keep = c.Messages == 1 && (c.Partners == 1 || c.Partners == 17)
		}
		if keep {
			out = append(out, c)
		}
	}
	return out
}

// parallelism resolves the configured worker count.  It follows
// GOMAXPROCS rather than the raw CPU count, so cgroup-limited environments
// (CI runners, containers) that cap GOMAXPROCS are not oversubscribed.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// apps instantiates the application registry at the configured scale.
func (c Config) apps() []workload.App { return workload.Registry(c.Scale) }

// Suite runs experiments; every measurement flows through its artifact
// engine, which caches and deduplicates the shared runs (calibration, impact
// signatures, baselines, compressions, co-runs).
type Suite struct {
	cfg Config
	eng *engine.Engine
}

// NewSuite creates an experiment suite with an in-process (memory-only)
// artifact engine, preserving the historical "measure once per process"
// semantics.
func NewSuite(cfg Config) *Suite {
	return NewSuiteWithEngine(cfg, engine.MustNew(""))
}

// NewSuiteWithEngine creates a suite on an existing engine — typically one
// backed by a persistent cache directory, or one shared between suites so
// campaigns with overlapping specs reuse each other's runs.
func NewSuiteWithEngine(cfg Config, eng *engine.Engine) *Suite {
	return &Suite{cfg: cfg, eng: eng}
}

// Config returns the suite's configuration.
func (s *Suite) Config() Config { return s.cfg }

// Engine returns the suite's artifact engine (for cache statistics).
func (s *Suite) Engine() *engine.Engine { return s.eng }

// SimUsage returns the aggregated discrete-event kernel activity (events
// fired, pool reuses, fast-path hits, throughput) of every measurement run
// executed in this process, letting callers such as cmd/swprobe report
// simulator throughput alongside the experiment results.
func SimUsage() core.SimUsage { return core.SimUsageSnapshot() }

// ResetSimUsage clears the aggregated kernel counters so the next campaign
// reports its own numbers.
func ResetSimUsage() { core.ResetSimUsage() }

// runParallel executes n independent tasks on a bounded worker pool.  Every
// task runs to completion; every failure is surfaced, wrapped with its run
// label (see engine.Parallel).
func (s *Suite) runParallel(n int, label func(i int) string, task func(i int) error) error {
	return engine.Parallel(n, s.cfg.parallelism(), label, task)
}

// Calibration returns the idle-switch calibration (cached by the engine).
func (s *Suite) Calibration() (core.Calibration, error) {
	return s.eng.Calibration(s.cfg.Options)
}

// AppSignatures returns (in parallel, cached by the engine) the impact
// signature of every application.
func (s *Suite) AppSignatures() (map[string]core.Signature, error) {
	apps := s.cfg.apps()
	sigs := make([]core.Signature, len(apps))
	err := s.runParallel(len(apps),
		func(i int) string { return "impact " + apps[i].Name() },
		func(i int) error {
			sig, err := s.eng.AppImpact(s.cfg.Options, apps[i], core.SlotAll)
			if err != nil {
				return err
			}
			sigs[i] = sig
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[string]core.Signature, len(apps))
	for i, a := range apps {
		out[a.Name()] = sigs[i]
	}
	return out, nil
}

// InjectorSignatures returns (in parallel, cached by the engine) the impact
// signature — and therefore switch utilization — of every configuration in
// the grid.
func (s *Suite) InjectorSignatures(grid []inject.Config) (map[string]core.Signature, error) {
	sigs := make([]core.Signature, len(grid))
	err := s.runParallel(len(grid),
		func(i int) string { return "impact " + grid[i].Label() },
		func(i int) error {
			sig, err := s.eng.InjectorImpact(s.cfg.Options, grid[i])
			if err != nil {
				return err
			}
			sigs[i] = sig
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[string]core.Signature, len(grid))
	for i, cfg := range grid {
		out[cfg.Label()] = sigs[i]
	}
	return out, nil
}

// Baselines returns (in parallel, cached by the engine) every application's
// baseline iteration rate.
func (s *Suite) Baselines() (map[string]core.Runtime, error) {
	apps := s.cfg.apps()
	rts := make([]core.Runtime, len(apps))
	err := s.runParallel(len(apps),
		func(i int) string { return "baseline " + apps[i].Name() },
		func(i int) error {
			rt, err := s.eng.Baseline(s.cfg.Options, apps[i], core.SlotAll)
			if err != nil {
				return err
			}
			rts[i] = rt
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[string]core.Runtime, len(apps))
	for i, a := range apps {
		out[a.Name()] = rts[i]
	}
	return out, nil
}

// Profiles returns (in parallel, cached by the engine) every application's
// compression profile over the profile grid.  The primitive runs — injector
// signatures, baselines and every (application × configuration) compression
// — are fanned out flat across the worker pool first, then the profiles are
// assembled from the engine's (now warm) cache.
func (s *Suite) Profiles() (map[string]core.Profile, error) {
	if _, err := s.InjectorSignatures(s.cfg.ProfileGrid); err != nil {
		return nil, err
	}
	if _, err := s.Baselines(); err != nil {
		return nil, err
	}
	apps := s.cfg.apps()
	type task struct {
		app workload.App
		cfg inject.Config
	}
	var tasks []task
	for _, a := range apps {
		for _, cfg := range s.cfg.ProfileGrid {
			tasks = append(tasks, task{app: a, cfg: cfg})
		}
	}
	err := s.runParallel(len(tasks),
		func(i int) string {
			return fmt.Sprintf("compress %s under %s", tasks[i].app.Name(), tasks[i].cfg.Label())
		},
		func(i int) error {
			_, err := s.eng.Compress(s.cfg.Options, tasks[i].app, tasks[i].cfg, core.SlotAll)
			return err
		})
	if err != nil {
		return nil, err
	}
	out := make(map[string]core.Profile, len(apps))
	for _, a := range apps {
		prof, err := s.eng.BuildProfile(s.cfg.Options, a, s.cfg.ProfileGrid, core.SlotAll)
		if err != nil {
			return nil, err
		}
		out[a.Name()] = prof
	}
	return out, nil
}

// PairSlowdowns returns (in parallel, cached by the engine) the measured
// slowdown of every ordered application pair relative to its baseline.
func (s *Suite) PairSlowdowns() (map[predict.Pairing]float64, error) {
	baselines, err := s.Baselines()
	if err != nil {
		return nil, err
	}
	apps := s.cfg.apps()
	type task struct{ a, b workload.App }
	var tasks []task
	for i, a := range apps {
		for j, b := range apps {
			if j < i {
				continue // unordered co-run measured once, read both ways
			}
			tasks = append(tasks, task{a: a, b: b})
		}
	}
	type result struct {
		ra, rb core.Runtime
	}
	results := make([]result, len(tasks))
	err = s.runParallel(len(tasks),
		func(i int) string { return fmt.Sprintf("pair %s+%s", tasks[i].a.Name(), tasks[i].b.Name()) },
		func(i int) error {
			ra, rb, err := s.eng.Pair(s.cfg.Options, tasks[i].a, tasks[i].b, false)
			if err != nil {
				return err
			}
			results[i] = result{ra: ra, rb: rb}
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[predict.Pairing]float64, len(apps)*len(apps))
	for i, tk := range tasks {
		aName, bName := tk.a.Name(), tk.b.Name()
		out[predict.Pairing{Target: aName, CoRunner: bName}] =
			core.DegradationPercent(baselines[aName], results[i].ra)
		out[predict.Pairing{Target: bName, CoRunner: aName}] =
			core.DegradationPercent(baselines[bName], results[i].rb)
	}
	return out, nil
}
