package experiments

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/workload"
)

func TestNewConfigPresets(t *testing.T) {
	paper := MustNewConfig(PresetPaper, 1)
	if paper.Options.Machine.Nodes() != 18 {
		t.Fatalf("paper nodes = %d", paper.Options.Machine.Nodes())
	}
	if len(paper.Grid) != 40 || len(paper.ProfileGrid) != 40 {
		t.Fatalf("paper grid sizes = %d/%d", len(paper.Grid), len(paper.ProfileGrid))
	}
	if paper.Scale != workload.FullScale {
		t.Fatalf("paper scale = %+v", paper.Scale)
	}

	def := MustNewConfig(PresetDefault, 1)
	if def.Options.Machine.Nodes() != 18 {
		t.Fatalf("default nodes = %d", def.Options.Machine.Nodes())
	}
	if len(def.Grid) != 40 {
		t.Fatalf("default grid = %d", len(def.Grid))
	}
	if len(def.ProfileGrid) >= len(def.Grid) || len(def.ProfileGrid) < 6 {
		t.Fatalf("default profile grid = %d", len(def.ProfileGrid))
	}

	ci := MustNewConfig(PresetCI, 1)
	if ci.Options.Machine.Nodes() != 6 {
		t.Fatalf("ci nodes = %d", ci.Options.Machine.Nodes())
	}
	if len(ci.Grid) == 0 || len(ci.Grid) >= 40 {
		t.Fatalf("ci grid = %d", len(ci.Grid))
	}

	if _, err := NewConfig("bogus", 1); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewConfig should panic on unknown preset")
		}
	}()
	MustNewConfig("bogus", 1)
}

func TestPruneGridIsSubset(t *testing.T) {
	full := inject.Grid()
	pruned := pruneGrid(full)
	if len(pruned) == 0 || len(pruned) >= len(full) {
		t.Fatalf("pruned grid size = %d", len(pruned))
	}
	inFull := map[string]bool{}
	for _, c := range full {
		inFull[c.Label()] = true
	}
	sleeps := map[float64]bool{}
	for _, c := range pruned {
		if !inFull[c.Label()] {
			t.Fatalf("pruned config %s not in the full grid", c.Label())
		}
		sleeps[c.SleepCycles] = true
	}
	// The pruned grid must still span the full sleep range (it drives the
	// utilization spread).
	if !sleeps[2.5e4] || !sleeps[2.5e7] {
		t.Fatalf("pruned grid misses extreme sleep values: %v", sleeps)
	}
}

func TestConfigParallelism(t *testing.T) {
	cfg := MustNewConfig(PresetCI, 1)
	if cfg.parallelism() < 1 {
		t.Fatal("parallelism must be at least 1")
	}
	cfg.Parallelism = 3
	if cfg.parallelism() != 3 {
		t.Fatalf("explicit parallelism not honored: %d", cfg.parallelism())
	}
}

func TestRunParallelPropagatesErrors(t *testing.T) {
	s := NewSuite(MustNewConfig(PresetCI, 1))
	boom := errors.New("boom")
	ran := make([]bool, 10)
	boom2 := errors.New("boom2")
	err := s.runParallel(10,
		func(i int) string { return fmt.Sprintf("task-%d", i) },
		func(i int) error {
			ran[i] = true
			switch i {
			case 4:
				return boom
			case 7:
				return boom2
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if !errors.Is(err, boom2) {
		t.Fatalf("second failure not aggregated: %v", err)
	}
	if !strings.Contains(err.Error(), "task-4") || !strings.Contains(err.Error(), "task-7") {
		t.Fatalf("failed run labels missing from error: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("task %d never ran", i)
		}
	}
	if err := s.runParallel(0, nil, func(int) error { return nil }); err != nil {
		t.Fatalf("zero tasks should succeed: %v", err)
	}
}

func TestExperimentNamesList(t *testing.T) {
	if len(Names) != 6 {
		t.Fatalf("names = %v", Names)
	}
}

// TestSuiteFullPipeline runs the whole reproduction at CI scale and checks
// the qualitative properties the paper reports.  It is the heaviest test in
// the repository.
func TestSuiteFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow; skipped in -short mode")
	}
	cfg := MustNewConfig(PresetCI, 7)
	s := NewSuite(cfg)

	// --- Fig. 3 -------------------------------------------------------------
	f3, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Columns) != 7 || f3.Columns[0] != IdleLabel {
		t.Fatalf("fig3 columns = %v", f3.Columns)
	}
	for _, col := range f3.Columns {
		sum := 0.0
		for _, v := range f3.FrequencyPct[col] {
			sum += v
		}
		if math.Abs(sum-100) > 0.5 {
			t.Fatalf("fig3 column %s frequencies sum to %.2f", col, sum)
		}
	}
	if f3.MeanMicros["FFTW"] <= f3.MeanMicros[IdleLabel] {
		t.Fatalf("fig3: FFTW mean (%.2f) not above idle (%.2f)",
			f3.MeanMicros["FFTW"], f3.MeanMicros[IdleLabel])
	}

	// --- Fig. 6 -------------------------------------------------------------
	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Points) != len(cfg.Grid) {
		t.Fatalf("fig6 points = %d, want %d", len(f6.Points), len(cfg.Grid))
	}
	lo, hi := f6.Range()
	if hi-lo < 15 {
		t.Fatalf("fig6 utilization range [%.1f, %.1f] too narrow", lo, hi)
	}
	// Shorter sleeps must on average utilize the switch more than the longest
	// sleeps (the paper's main determinant of utilization).
	var shortSum, shortN, longSum, longN float64
	for _, p := range f6.Points {
		switch p.Config.SleepCycles {
		case 2.5e4:
			shortSum += p.UtilizationPct
			shortN++
		case 2.5e7:
			longSum += p.UtilizationPct
			longN++
		}
	}
	if shortN > 0 && longN > 0 && shortSum/shortN <= longSum/longN {
		t.Fatalf("fig6: short sleeps (%.1f%%) not above long sleeps (%.1f%%)",
			shortSum/shortN, longSum/longN)
	}

	// --- Fig. 7 -------------------------------------------------------------
	f7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := func(app string) float64 {
		m := 0.0
		for _, p := range f7.Curves[app] {
			if p.DegradationPct > m {
				m = p.DegradationPct
			}
		}
		return m
	}
	if len(f7.Curves) != 6 {
		t.Fatalf("fig7 curves = %d", len(f7.Curves))
	}
	if maxDeg("FFTW") < 20 {
		t.Fatalf("fig7: FFTW max degradation only %.1f%%", maxDeg("FFTW"))
	}
	if maxDeg("MCB") > maxDeg("FFTW")/2 {
		t.Fatalf("fig7: MCB (%.1f%%) should degrade far less than FFTW (%.1f%%)",
			maxDeg("MCB"), maxDeg("FFTW"))
	}
	if fit, ok := f7.Fits["FFTW"]; !ok || fit.Slope <= 0 {
		t.Fatalf("fig7: FFTW linear fit missing or non-increasing: %+v", f7.Fits["FFTW"])
	}

	// --- Table I ------------------------------------------------------------
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Apps) != 6 || len(t1.SlowdownPct) != 6 || len(t1.SlowdownPct[0]) != 6 {
		t.Fatalf("table1 shape wrong: %+v", t1.Apps)
	}
	idx := map[string]int{}
	for i, a := range t1.Apps {
		idx[a] = i
	}
	fftwSelf := t1.SlowdownPct[idx["FFTW"]][idx["FFTW"]]
	mcbSelf := t1.SlowdownPct[idx["MCB"]][idx["MCB"]]
	if fftwSelf <= mcbSelf {
		t.Fatalf("table1: FFTW self co-run (%.1f%%) should exceed MCB self co-run (%.1f%%)",
			fftwSelf, mcbSelf)
	}

	// --- Fig. 8 / Fig. 9 ----------------------------------------------------
	f8, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Study.Pairs) != 36 {
		t.Fatalf("fig8 pairs = %d, want 36", len(f8.Study.Pairs))
	}
	f9, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Models) != 4 {
		t.Fatalf("fig9 models = %v", f9.Models)
	}
	for _, m := range f9.Models {
		mae := f9.MeanAbsErr[m]
		if math.IsNaN(mae) || mae < 0 {
			t.Fatalf("fig9: invalid MAE for %s: %v", m, mae)
		}
		fw := f9.FractionWithin10[m]
		if fw < 0 || fw > 1 {
			t.Fatalf("fig9: invalid fraction for %s: %v", m, fw)
		}
		box := f9.Boxes[m]
		if box.N != 36 || box.Min > box.Median || box.Median > box.Max {
			t.Fatalf("fig9: bad box for %s: %+v", m, box)
		}
	}
	if f9.BestModel == "" {
		t.Fatal("fig9: no best model")
	}
	// The queue model should be a competitive predictor even at CI scale.
	if f9.MeanAbsErr["Queue"] > 45 {
		t.Fatalf("fig9: queue model MAE %.1f is unreasonably large", f9.MeanAbsErr["Queue"])
	}

	// Cached artifacts: a second call must not change the results.
	f9b, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if f9b.MeanAbsErr["Queue"] != f9.MeanAbsErr["Queue"] {
		t.Fatal("fig9 not reproducible from cached artifacts")
	}
}
