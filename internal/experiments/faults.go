package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sched"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// The faults campaign is the resilience counterpart of the sched campaign:
// it sweeps fault cases (a mid-run uplink failure with repair, a degraded
// uplink, a full leaf partition, and optionally an MTBF/MTTR-generated
// failure process or a user-supplied plan) across every trunked fabric
// scenario, measuring two coupled layers:
//
//   - the packet level: deterministic probe + bulk traffic driven directly
//     through netsim twice — once clean, once under the case's FaultPlan —
//     yielding the probe-latency slowdown and the retransmit/reroute/failure
//     counters of the faulted run;
//   - the job level: every placement policy schedules the same arrival
//     streams as the sched campaign while a leaf-health timeline derived
//     from the case degrades or kills the affected leaf, yielding stretch
//     and requeue counts per policy.
//
// Both layers are deterministic: the packet runs are byte-identical across
// repeats and across -workers values (fault transitions bound the relaxed
// engine's lookahead), and the job level is a pure function of the seed.

// Fault case names, in canonical campaign order.
const (
	// FaultCaseDownUp fails one uplink of leaf 0 at 40% of the window and
	// repairs it at 80%.
	FaultCaseDownUp = "downup"
	// FaultCaseDegrade slows every uplink of leaf 0 to half bandwidth
	// (serialization factor 2) from 20% of the window onward.
	FaultCaseDegrade = "degrade"
	// FaultCasePartition fails every uplink of leaf 0 at 40% of the window
	// and repairs them at 70%, fully partitioning the leaf in between.
	FaultCasePartition = "partition"
	// FaultCaseMTBF draws trunk failures from the kernel's dedicated fault
	// substream with the spec's MTBF/MTTR (present only when both are set).
	FaultCaseMTBF = "mtbf"
	// FaultCaseCustom runs the spec's explicit FaultPlan (present only when
	// one is supplied, e.g. via swprobe -fault-plan).
	FaultCaseCustom = "custom"
)

// FaultCaseNames returns the default case set (the cases that need no extra
// spec input), in canonical order.
func FaultCaseNames() []string {
	return []string{FaultCaseDownUp, FaultCaseDegrade, FaultCasePartition}
}

// FaultsSpec parameterizes the resilience campaign.  The embedded SchedSpec
// fields size the job level exactly as in the sched campaign; its Scenarios
// are filtered to trunked fabrics (a star has nothing to fail).
type FaultsSpec struct {
	// Sched sizes the job-level portion (jobs, streams, policies, apps,
	// scenarios...).  Zero-value fields resolve to the sched campaign
	// defaults.
	Sched SchedSpec
	// Cases selects the fault cases to sweep (empty = FaultCaseNames, plus
	// mtbf/custom when the fields below are set).
	Cases []string
	// MTBF and MTTR enable the generated-failure case: mean time between
	// trunk failures and mean repair time.  Both must be set together.
	MTBF, MTTR sim.Duration
	// Plan is an explicit fault plan run as the "custom" case.  Trunk
	// labels must exist on every swept scenario.
	Plan *netsim.FaultPlan
}

// FaultRow is one (scenario, case, policy) cell.  The packet-level fields
// (SlowdownPct and the counters) are per (scenario, case) and repeat across
// that case's policy rows.
type FaultRow struct {
	// Scenario and Oversubscription identify the fabric.
	Scenario         string
	Oversubscription float64
	// Case is the fault case name.
	Case string
	// Policy is the placement policy of the job-level run.
	Policy string
	// SlowdownPct is the mean probe-latency slowdown of the faulted packet
	// run over the clean one, in percent.
	SlowdownPct float64
	// TrunksFailed, Retransmits and Reroutes are the faulted packet run's
	// netsim counters.
	TrunksFailed, Retransmits, Reroutes int64
	// Jobs, MeanStretch, P95Stretch, Requeues and Deferrals summarize the
	// policy's job-level runs under the case's leaf-health timeline.
	Jobs                    int
	MeanStretch, P95Stretch float64
	Requeues                int
	Deferrals               int
}

// FaultsResult is the full resilience campaign.
type FaultsResult struct {
	// Spec is the fully resolved specification the campaign ran with.
	Spec FaultsSpec
	// Scenarios, Cases and Policies give the row order (scenario-major,
	// then case, then policy).
	Scenarios []string
	Cases     []string
	Policies  []string
	// Rows holds one entry per scenario × case × policy.
	Rows []FaultRow
}

// Row returns the (scenario, case, policy) cell.
func (r FaultsResult) Row(scenario, faultCase, policy string) (FaultRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Case == faultCase && row.Policy == policy {
			return row, true
		}
	}
	return FaultRow{}, false
}

// withDefaults resolves the spec against the suite configuration and filters
// the scenarios down to trunked fabrics.
func (spec FaultsSpec) withDefaults(cfg Config) (FaultsSpec, error) {
	if (spec.MTBF > 0) != (spec.MTTR > 0) {
		return spec, fmt.Errorf("faults: MTBF and MTTR must be set together (have MTBF=%v, MTTR=%v)",
			spec.MTBF, spec.MTTR)
	}
	spec.Sched = spec.Sched.withDefaults(cfg)
	nodes := cfg.Options.Machine.Nodes()
	var trunked []SchedScenario
	for _, scen := range spec.Sched.Scenarios {
		topo := scen.Topology
		if topo == nil {
			continue
		}
		lay, err := topo.Build(nodes)
		if err != nil {
			return spec, fmt.Errorf("faults %s: %w", scen.Label, err)
		}
		if len(lay.Trunks) == 0 {
			continue // a star has nothing to fail
		}
		trunked = append(trunked, scen)
	}
	if len(trunked) == 0 {
		return spec, fmt.Errorf("faults: no trunked scenario to fail (star topologies have no trunks)")
	}
	spec.Sched.Scenarios = trunked
	if len(spec.Cases) == 0 {
		spec.Cases = FaultCaseNames()
		if spec.MTBF > 0 {
			spec.Cases = append(spec.Cases, FaultCaseMTBF)
		}
		if spec.Plan.Active() {
			spec.Cases = append(spec.Cases, FaultCaseCustom)
		}
	}
	for _, c := range spec.Cases {
		switch c {
		case FaultCaseDownUp, FaultCaseDegrade, FaultCasePartition:
		case FaultCaseMTBF:
			if spec.MTBF <= 0 {
				return spec, fmt.Errorf("faults: case %q needs MTBF and MTTR", c)
			}
		case FaultCaseCustom:
			if !spec.Plan.Active() {
				return spec, fmt.Errorf("faults: case %q needs an explicit fault plan", c)
			}
		default:
			return spec, fmt.Errorf("faults: unknown case %q (valid: %s, %s, %s)",
				c, strings.Join(FaultCaseNames(), ", "), FaultCaseMTBF, FaultCaseCustom)
		}
	}
	return spec, nil
}

// leafUplinks returns the trunk labels of leaf 0's uplinks, the links every
// built-in case fails.
func leafUplinks(lay netsim.Layout) []string {
	var ups []string
	for _, tr := range lay.Trunks {
		if strings.HasPrefix(tr.Label, "leaf0.up") {
			ups = append(ups, tr.Label)
		}
	}
	sort.Strings(ups)
	return ups
}

// faultPlanFor builds the netsim plan of one case for a concrete layout and
// measurement window.
func (spec FaultsSpec) faultPlanFor(faultCase string, lay netsim.Layout, window sim.Duration) (*netsim.FaultPlan, error) {
	ups := leafUplinks(lay)
	if len(ups) == 0 {
		return nil, fmt.Errorf("faults: layout has no leaf0 uplinks")
	}
	downAt := window * 2 / 5
	switch faultCase {
	case FaultCaseDownUp:
		return &netsim.FaultPlan{Events: []netsim.FaultEvent{
			{At: downAt, Trunk: ups[0], Kind: netsim.FaultTrunkDown},
			{At: window * 4 / 5, Trunk: ups[0], Kind: netsim.FaultTrunkUp},
		}}, nil
	case FaultCaseDegrade:
		var evs []netsim.FaultEvent
		for _, u := range ups {
			evs = append(evs, netsim.FaultEvent{At: window / 5, Trunk: u, Kind: netsim.FaultDegrade, Factor: 2})
		}
		return &netsim.FaultPlan{Events: evs}, nil
	case FaultCasePartition:
		var evs []netsim.FaultEvent
		for _, u := range ups {
			evs = append(evs,
				netsim.FaultEvent{At: downAt, Trunk: u, Kind: netsim.FaultTrunkDown},
				netsim.FaultEvent{At: window * 7 / 10, Trunk: u, Kind: netsim.FaultTrunkUp})
		}
		return &netsim.FaultPlan{Events: evs}, nil
	case FaultCaseMTBF:
		return &netsim.FaultPlan{MTBF: spec.MTBF, MTTR: spec.MTTR}, nil
	case FaultCaseCustom:
		return spec.Plan, nil
	default:
		return nil, fmt.Errorf("faults: unknown case %q", faultCase)
	}
}

// schedHealthFor maps a fault case onto a deterministic leaf-health
// timeline: the job-level proxy of what the packet level simulates.  The
// affected leaf (leaf 0 for the built-in cases, the first failed trunk's
// leaf for custom plans) is degraded — or dead, for the partition case —
// over a fixed fraction of the arrival stream's span.
func schedHealthFor(faultCase string, plan *netsim.FaultPlan) schedHealthTimeline {
	leaf := 0
	startFrac, endFrac := 0.3, 0.6
	state := sched.HealthDegraded
	switch faultCase {
	case FaultCasePartition:
		state = sched.HealthDead
	case FaultCaseDegrade:
		startFrac, endFrac = 0.2, 0 // never lifts
	case FaultCaseCustom:
		if plan != nil && len(plan.Events) > 0 {
			fmt.Sscanf(plan.Events[0].Trunk, "leaf%d.", &leaf)
		}
	}
	return func(span float64) (func(int, float64) sched.LeafHealth, []float64) {
		t1 := startFrac * span
		t2 := endFrac * span
		health := func(l int, now float64) sched.LeafHealth {
			if l != leaf || now < t1 || (endFrac > 0 && now >= t2) {
				return sched.HealthOK
			}
			return state
		}
		events := []float64{t1}
		if endFrac > 0 {
			events = append(events, t2)
		}
		return health, events
	}
}

// faultNetMeasure drives one deterministic packet-level run: cross-leaf bulk
// senders plus a steady probe stream over the measurement window, with a
// saturating burst just ahead of the plan's first trunk failure so packets
// are genuinely in flight when it drops.  It returns the mean probe latency
// and the run's fault counters; plan == nil measures the clean baseline.
func faultNetMeasure(o core.Options, topo netsim.Topology, plan *netsim.FaultPlan, window sim.Duration) (float64, netsim.Stats, error) {
	ncfg := o.Machine.Net
	ncfg.Topology = topo
	ncfg.Faults = plan
	nodes := ncfg.Nodes
	lay, err := topo.Build(nodes)
	if err != nil {
		return 0, netsim.Stats{}, err
	}
	var leaf0, leaf1 []int
	for node, leaf := range lay.LeafOf {
		switch leaf {
		case 0:
			leaf0 = append(leaf0, node)
		case 1:
			leaf1 = append(leaf1, node)
		}
	}
	if len(leaf0) == 0 || len(leaf1) == 0 {
		return 0, netsim.Stats{}, fmt.Errorf("faults: topology %s has fewer than 2 leaves", topo.Name())
	}

	k := sim.NewKernel(o.Seed)
	n, err := netsim.New(k, ncfg)
	if err != nil {
		return 0, netsim.Stats{}, err
	}
	start := time.Now()

	// Bulk senders: every leaf-0 node streams 16KB messages to a leaf-1
	// peer across the window.
	for i, src := range leaf0 {
		src, dst := src, leaf1[i%len(leaf1)]
		for at := window / 100; at < window; at += window / 50 {
			k.CallAt(sim.Time(at), func(any) {
				n.SendMessage(src, dst, 16*1024, netsim.Flow{Class: "bulk", ID: src}, nil)
			}, nil)
		}
	}
	// Saturating burst 20µs ahead of the first scheduled failure, so the
	// trunks have queued and in-flight packets at the transition (otherwise
	// a quiet fabric fails over with nothing to lose).
	if plan != nil {
		firstDown := sim.Duration(-1)
		for _, e := range plan.Events {
			if e.Kind == netsim.FaultTrunkDown && (firstDown < 0 || e.At < firstDown) {
				firstDown = e.At
			}
		}
		if plan.MTBF > 0 {
			firstDown = window * 2 / 5 // generated failures: keep mid-window pressure
		}
		if firstDown > 0 {
			burstAt := firstDown - 20*sim.Microsecond
			if burstAt < 0 {
				burstAt = 0
			}
			for i, src := range leaf0 {
				src, dst := src, leaf1[i%len(leaf1)]
				for j := 0; j < 8; j++ {
					k.CallAt(sim.Time(burstAt), func(any) {
						n.SendMessage(src, dst, 32*1024, netsim.Flow{Class: "bulk", ID: src}, nil)
					}, nil)
				}
			}
		}
	}
	// Probe stream: fixed-size probes cross the faulted trunk region on a
	// steady cadence; their latencies are the slowdown metric.
	var latSum float64
	var latCnt int
	for at := sim.Duration(0); at < window; at += window / 200 {
		k.CallAt(sim.Time(at), func(any) {
			n.SendProbe(leaf0[0], leaf1[0], 512, netsim.Flow{Class: "impact", ID: 0}, func(d netsim.Delivery) {
				latSum += float64(d.Latency())
				latCnt++
			})
		}, nil)
	}

	// Bound the run: an MTBF generator perpetually schedules its next
	// failure, so the queue never drains; 4x the window lets retransmit
	// backoffs and post-repair traffic settle deterministically.
	k.RunUntil(sim.Time(4 * window))
	core.RecordSimRun(k, n, time.Since(start))
	if latCnt == 0 {
		return 0, netsim.Stats{}, fmt.Errorf("faults: no probe delivered within the run bound")
	}
	return latSum / float64(latCnt), n.Stats(), nil
}

// Faults runs the resilience campaign.
func (s *Suite) Faults(spec FaultsSpec) (FaultsResult, error) {
	spec, err := spec.withDefaults(s.cfg)
	if err != nil {
		return FaultsResult{}, err
	}
	pred, err := model.ByName(spec.Sched.Predictor)
	if err != nil {
		return FaultsResult{}, err
	}
	o := s.cfg.Options
	nodes := o.Machine.Nodes()
	res := FaultsResult{Spec: spec, Cases: spec.Cases, Policies: spec.Sched.Policies}
	for _, scen := range spec.Sched.Scenarios {
		res.Scenarios = append(res.Scenarios, scen.Label)
		lay, err := scen.Topology.Build(nodes)
		if err != nil {
			return FaultsResult{}, fmt.Errorf("faults %s: %w", scen.Label, err)
		}
		cleanMean, _, err := faultNetMeasure(o, scen.Topology, nil, o.Window)
		if err != nil {
			return FaultsResult{}, fmt.Errorf("faults %s clean: %w", scen.Label, err)
		}
		oversub := schedOversubscription(scen.Topology, nodes)
		for _, faultCase := range spec.Cases {
			plan, err := spec.faultPlanFor(faultCase, lay, o.Window)
			if err != nil {
				return FaultsResult{}, fmt.Errorf("faults %s/%s: %w", scen.Label, faultCase, err)
			}
			if err := plan.Validate(lay); err != nil {
				return FaultsResult{}, fmt.Errorf("faults %s/%s: %w", scen.Label, faultCase, err)
			}
			faultMean, st, err := faultNetMeasure(o, scen.Topology, plan, o.Window)
			if err != nil {
				return FaultsResult{}, fmt.Errorf("faults %s/%s: %w", scen.Label, faultCase, err)
			}
			slowdown := 0.0
			if cleanMean > 0 {
				slowdown = (faultMean/cleanMean - 1) * 100
			}
			rows, err := s.schedScenarioHealth(spec.Sched, scen, pred, schedHealthFor(faultCase, plan))
			if err != nil {
				return FaultsResult{}, fmt.Errorf("faults %s/%s: %w", scen.Label, faultCase, err)
			}
			for _, prow := range rows {
				res.Rows = append(res.Rows, FaultRow{
					Scenario:         scen.Label,
					Oversubscription: oversub,
					Case:             faultCase,
					Policy:           prow.Policy,
					SlowdownPct:      slowdown,
					TrunksFailed:     st.TrunksFailed,
					Retransmits:      st.PacketsRetransmitted,
					Reroutes:         st.RoutesRecomputed,
					Jobs:             prow.Jobs,
					MeanStretch:      prow.MeanStretch,
					P95Stretch:       prow.P95Stretch,
					Requeues:         prow.Requeues,
					Deferrals:        prow.Deferrals,
				})
			}
		}
	}
	return res, nil
}

// FaultsSummary renders the campaign's headline: per scenario, the heaviest
// packet-level slowdown and the policy spread under failures.
func FaultsSummary(r FaultsResult) string {
	var b strings.Builder
	for _, scen := range r.Scenarios {
		worstCase, worst := "", 0.0
		for _, c := range r.Cases {
			if row, ok := r.Row(scen, c, r.Policies[0]); ok && row.SlowdownPct > worst {
				worstCase, worst = c, row.SlowdownPct
			}
		}
		if worstCase == "" {
			continue
		}
		fmt.Fprintf(&b, "%s: heaviest probe slowdown %.1f%% (%s)", scen, worst, worstCase)
		if pg, ok := r.Row(scen, worstCase, sched.PolicyPredictor); ok {
			if pack, ok := r.Row(scen, worstCase, sched.PolicyPack); ok {
				fmt.Fprintf(&b, "; stretch under %s: predictor %.2f vs pack %.2f",
					worstCase, pg.MeanStretch, pack.MeanStretch)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
