package experiments_test

import (
	"reflect"
	"testing"

	. "github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/report"
	"github.com/hpcperf/switchprobe/internal/sched"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// faultedScenario is the faults campaign's CI fabric: the contended 2:1
// fat-tree, whose single uplink per leaf makes every case bite.
func faultedScenario() SchedScenario {
	return SchedScenario{Label: "fattree-2:1", Topology: netsim.FatTree{Leaves: 3, UplinksPerLeaf: 1}}
}

// redundantScenario has two uplinks per leaf, so a single trunk failure
// genuinely fails over instead of partitioning.
func redundantScenario() SchedScenario {
	return SchedScenario{Label: "fattree-1:1", Topology: netsim.FatTree{Leaves: 3, UplinksPerLeaf: 2}}
}

func quickFaultsSpec() FaultsSpec {
	return FaultsSpec{
		Sched: SchedSpec{
			Jobs: 8, Streams: 2,
			Policies:  []string{sched.PolicyPack, sched.PolicyPredictor},
			Scenarios: []SchedScenario{redundantScenario(), faultedScenario()},
		},
	}
}

func TestFaultsSpecValidation(t *testing.T) {
	s := NewSuite(MustNewConfig(PresetCI, 1))
	if _, err := s.Faults(FaultsSpec{MTBF: sim.Millisecond}); err == nil {
		t.Fatal("expected error for MTBF without MTTR")
	}
	if _, err := s.Faults(FaultsSpec{Sched: SchedSpec{
		Scenarios: []SchedScenario{{Label: "star", Topology: netsim.Star{}}},
	}}); err == nil {
		t.Fatal("expected error for a star-only scenario set (no trunks to fail)")
	}
	if _, err := s.Faults(FaultsSpec{Cases: []string{"meteor"}}); err == nil {
		t.Fatal("expected error for an unknown fault case")
	}
	if _, err := s.Faults(FaultsSpec{Cases: []string{FaultCaseMTBF}}); err == nil {
		t.Fatal("expected error for the mtbf case without MTBF/MTTR")
	}
	if _, err := s.Faults(FaultsSpec{Cases: []string{FaultCaseCustom}}); err == nil {
		t.Fatal("expected error for the custom case without a plan")
	}
}

// TestFaultsCampaign is the resilience subsystem's acceptance test: the
// campaign produces nonzero failure/retransmit/reroute telemetry, a bounded
// probe slowdown under a degraded uplink, a predictor-guided stretch no worse
// than blind pack on the faulted fabric, and byte-identical results across
// repeat runs.
func TestFaultsCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping faults campaign in -short mode")
	}
	s := NewSuite(MustNewConfig(PresetCI, 1))
	spec := quickFaultsSpec()
	r, err := s.Faults(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(r.Scenarios) * len(r.Cases) * len(r.Policies)
	if len(r.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(r.Rows), wantRows)
	}

	down, ok := r.Row("fattree-2:1", FaultCaseDownUp, sched.PolicyPack)
	if !ok {
		t.Fatal("missing downup row")
	}
	if down.TrunksFailed == 0 {
		t.Fatalf("downup failed %d trunks, want > 0", down.TrunksFailed)
	}
	if down.Retransmits == 0 {
		t.Fatal("downup run lost no packets to retransmit; the saturating burst is broken")
	}
	// Failover reroutes need a surviving uplink: the redundant 1:1 fabric
	// must recompute routes, while the single-uplink 2:1 fabric structurally
	// cannot (a down trunk there is a partition, not a detour).
	red, ok := r.Row("fattree-1:1", FaultCaseDownUp, sched.PolicyPack)
	if !ok {
		t.Fatal("missing redundant downup row")
	}
	if red.Reroutes == 0 {
		t.Fatal("downup on the redundant fabric recomputed no routes")
	}
	if down.Reroutes != 0 {
		t.Fatalf("downup on the single-uplink fabric rerouted %d pairs; there is no surviving uplink", down.Reroutes)
	}

	deg, ok := r.Row("fattree-2:1", FaultCaseDegrade, sched.PolicyPack)
	if !ok {
		t.Fatal("missing degrade row")
	}
	if deg.SlowdownPct <= 0 {
		t.Fatalf("degraded uplink slowdown %.2f%%, want positive", deg.SlowdownPct)
	}
	if deg.SlowdownPct > 300 {
		t.Fatalf("degraded uplink slowdown %.2f%% unbounded; factor-2 serialization should stay under 300%%", deg.SlowdownPct)
	}

	part, ok := r.Row("fattree-2:1", FaultCasePartition, sched.PolicyPack)
	if !ok {
		t.Fatal("missing partition row")
	}
	if part.Requeues == 0 {
		t.Fatal("partition case requeued no jobs; the dead-leaf timeline never fired")
	}

	// On the faulted fabric the health-aware predictor must not lose to
	// blind pack.
	for _, c := range r.Cases {
		pg, ok1 := r.Row("fattree-2:1", c, sched.PolicyPredictor)
		pack, ok2 := r.Row("fattree-2:1", c, sched.PolicyPack)
		if !ok1 || !ok2 {
			t.Fatalf("case %s: missing policy rows", c)
		}
		if pg.MeanStretch > pack.MeanStretch*1.0001 {
			t.Fatalf("case %s: predictor mean stretch %.3f above pack %.3f on faulted fabric",
				c, pg.MeanStretch, pack.MeanStretch)
		}
	}

	// Determinism: a second campaign over a fresh suite reproduces every row
	// and renders byte-identical CSV.
	r2, err := NewSuite(MustNewConfig(PresetCI, 1)).Faults(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Rows, r2.Rows) {
		t.Fatal("faults campaign rows differ across runs")
	}
	t1, t2 := report.FaultTable(r), report.FaultTable(r2)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("FaultTable differs across identical campaigns")
	}
	if len(t1.Rows) != wantRows {
		t.Fatalf("FaultTable has %d rows, want %d", len(t1.Rows), wantRows)
	}
}

// TestFaultsMTBFCase exercises the generated-failure case end to end: both
// fields set enable the mtbf case, whose failures come from the kernel's
// dedicated fault substream and are reproducible.
func TestFaultsMTBFCase(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping faults campaign in -short mode")
	}
	s := NewSuite(MustNewConfig(PresetCI, 1))
	spec := quickFaultsSpec()
	spec.Cases = []string{FaultCaseMTBF}
	spec.MTBF = 10 * sim.Millisecond
	spec.MTTR = 2 * sim.Millisecond
	r, err := s.Faults(spec)
	if err != nil {
		t.Fatal(err)
	}
	row, ok := r.Row("fattree-2:1", FaultCaseMTBF, sched.PolicyPack)
	if !ok {
		t.Fatal("missing mtbf row")
	}
	if row.TrunksFailed == 0 {
		t.Fatal("mtbf case generated no trunk failures over the window")
	}
	r2, err := NewSuite(MustNewConfig(PresetCI, 1)).Faults(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Rows, r2.Rows) {
		t.Fatal("mtbf campaign rows differ across runs")
	}
}
