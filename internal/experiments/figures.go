package experiments

import (
	"fmt"
	"sort"

	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/predict"
	"github.com/hpcperf/switchprobe/internal/stats"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// IdleLabel is the column name of the unloaded-switch distribution in Fig. 3.
const IdleLabel = "No App"

// Fig3Result is the data of the paper's Fig. 3: the distribution of probe
// packet latencies on the idle switch and while each application runs.
type Fig3Result struct {
	// BinCentersMicros are the histogram bin centers in microseconds.
	BinCentersMicros []float64
	// Columns lists the distribution names in presentation order (IdleLabel
	// first, then the applications).
	Columns []string
	// FrequencyPct maps a column to the percentage of probe packets per bin.
	FrequencyPct map[string][]float64
	// MeanMicros maps a column to its mean probe latency in microseconds.
	MeanMicros map[string]float64
}

// Fig3 measures the probe latency distributions.
func (s *Suite) Fig3() (Fig3Result, error) {
	cal, err := s.Calibration()
	if err != nil {
		return Fig3Result{}, err
	}
	sigs, err := s.AppSignatures()
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{
		Columns:      append([]string{IdleLabel}, workload.Names()...),
		FrequencyPct: make(map[string][]float64),
		MeanMicros:   make(map[string]float64),
	}
	addColumn := func(name string, hist *stats.Histogram, meanSeconds float64) {
		freqs := hist.Frequencies()
		pct := make([]float64, len(freqs))
		for i, f := range freqs {
			pct[i] = 100 * f
		}
		res.FrequencyPct[name] = pct
		res.MeanMicros[name] = meanSeconds * 1e6
		if res.BinCentersMicros == nil {
			centers := make([]float64, hist.Bins())
			for i := range centers {
				centers[i] = hist.BinCenter(i)
			}
			res.BinCentersMicros = centers
		}
	}
	addColumn(IdleLabel, cal.Idle.Hist, cal.Idle.Mean)
	for _, name := range workload.Names() {
		sig, ok := sigs[name]
		if !ok {
			return Fig3Result{}, fmt.Errorf("experiments: missing signature for %s", name)
		}
		addColumn(name, sig.Hist, sig.Mean)
	}
	return res, nil
}

// Fig6Point is the measured utilization of one CompressionB configuration.
type Fig6Point struct {
	Config            inject.Config
	UtilizationPct    float64
	MeanLatencyMicros float64
}

// Fig6Result is the data of the paper's Fig. 6: switch queue utilization for
// every CompressionB configuration.
type Fig6Result struct {
	Points []Fig6Point
}

// Range returns the smallest and largest measured utilization.
func (r Fig6Result) Range() (lo, hi float64) {
	if len(r.Points) == 0 {
		return 0, 0
	}
	lo, hi = r.Points[0].UtilizationPct, r.Points[0].UtilizationPct
	for _, p := range r.Points {
		if p.UtilizationPct < lo {
			lo = p.UtilizationPct
		}
		if p.UtilizationPct > hi {
			hi = p.UtilizationPct
		}
	}
	return lo, hi
}

// Fig6 measures the switch utilization of every CompressionB configuration in
// the suite's grid (ImpactB co-run with CompressionB, utilization from the
// M/G/1 inversion).
func (s *Suite) Fig6() (Fig6Result, error) {
	sigs, err := s.InjectorSignatures(s.cfg.Grid)
	if err != nil {
		return Fig6Result{}, err
	}
	res := Fig6Result{}
	for _, cfg := range s.cfg.Grid {
		sig := sigs[cfg.Label()]
		res.Points = append(res.Points, Fig6Point{
			Config:            cfg,
			UtilizationPct:    sig.UtilizationPct,
			MeanLatencyMicros: sig.Mean * 1e6,
		})
	}
	// Present in the paper's grouping: message count, then sleep, then
	// partners.
	sort.SliceStable(res.Points, func(i, j int) bool {
		a, b := res.Points[i].Config, res.Points[j].Config
		if a.Messages != b.Messages {
			return a.Messages < b.Messages
		}
		if a.SleepCycles != b.SleepCycles {
			return a.SleepCycles < b.SleepCycles
		}
		return a.Partners < b.Partners
	})
	return res, nil
}

// Fig7Point is one compression measurement of one application.
type Fig7Point struct {
	Config         inject.Config
	UtilizationPct float64
	DegradationPct float64
}

// Fig7Result is the data of the paper's Fig. 7: percentage performance
// degradation versus switch utilization for every application, with the
// linear fits the paper overlays.
type Fig7Result struct {
	Apps   []string
	Curves map[string][]Fig7Point
	Fits   map[string]stats.LinearFit
}

// Fig7 measures the degradation-vs-utilization curves.
func (s *Suite) Fig7() (Fig7Result, error) {
	profiles, err := s.Profiles()
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{
		Apps:   workload.Names(),
		Curves: make(map[string][]Fig7Point),
		Fits:   make(map[string]stats.LinearFit),
	}
	for _, name := range res.Apps {
		prof, ok := profiles[name]
		if !ok {
			return Fig7Result{}, fmt.Errorf("experiments: missing profile for %s", name)
		}
		var pts []Fig7Point
		var xs, ys []float64
		for _, p := range prof.Points {
			pts = append(pts, Fig7Point{
				Config:         p.Injector,
				UtilizationPct: p.UtilizationPct,
				DegradationPct: p.DegradationPct,
			})
			xs = append(xs, p.UtilizationPct)
			ys = append(ys, p.DegradationPct)
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].UtilizationPct < pts[j].UtilizationPct })
		res.Curves[name] = pts
		if fit, err := stats.FitLinear(xs, ys); err == nil {
			res.Fits[name] = fit
		}
	}
	return res, nil
}

// Table1Result is the paper's Table I: the measured percentage slowdown of
// every ordered application pair.
type Table1Result struct {
	// Apps lists the applications in row/column order.
	Apps []string
	// SlowdownPct[i][j] is the slowdown of Apps[i] when co-running with
	// Apps[j].
	SlowdownPct [][]float64
}

// Table1 measures the co-run slowdown matrix.
func (s *Suite) Table1() (Table1Result, error) {
	pairs, err := s.PairSlowdowns()
	if err != nil {
		return Table1Result{}, err
	}
	apps := workload.Names()
	res := Table1Result{Apps: apps, SlowdownPct: make([][]float64, len(apps))}
	for i, target := range apps {
		res.SlowdownPct[i] = make([]float64, len(apps))
		for j, co := range apps {
			v, ok := pairs[predict.Pairing{Target: target, CoRunner: co}]
			if !ok {
				return Table1Result{}, fmt.Errorf("experiments: missing pair %s+%s", target, co)
			}
			res.SlowdownPct[i][j] = v
		}
	}
	return res, nil
}

// Fig8Result is the paper's Fig. 8: for every ordered pair and every model,
// the measured slowdown, the predicted slowdown and their absolute
// difference.
type Fig8Result struct {
	Study predict.Study
}

// Fig8 evaluates all four predictors on every ordered application pair.
func (s *Suite) Fig8() (Fig8Result, error) {
	profiles, err := s.Profiles()
	if err != nil {
		return Fig8Result{}, err
	}
	sigs, err := s.AppSignatures()
	if err != nil {
		return Fig8Result{}, err
	}
	pairs, err := s.PairSlowdowns()
	if err != nil {
		return Fig8Result{}, err
	}
	study, err := predict.NewStudy(model.All(), workload.Names(), profiles, sigs, pairs)
	if err != nil {
		return Fig8Result{}, err
	}
	return Fig8Result{Study: study}, nil
}

// Fig9Result is the paper's Fig. 9: the quartile summary of each model's
// prediction errors, plus the headline accuracy metrics quoted in the text.
type Fig9Result struct {
	Models           []string
	Boxes            map[string]stats.BoxPlot
	MeanAbsErr       map[string]float64
	FractionWithin10 map[string]float64
	BestModel        string
}

// Fig9 summarizes the prediction errors of Fig. 8.
func (s *Suite) Fig9() (Fig9Result, error) {
	f8, err := s.Fig8()
	if err != nil {
		return Fig9Result{}, err
	}
	st := f8.Study
	return Fig9Result{
		Models:           st.Models,
		Boxes:            st.SummaryByModel(),
		MeanAbsErr:       st.MeanAbsErrorByModel(),
		FractionWithin10: st.FractionWithin(10),
		BestModel:        st.BestModel(),
	}, nil
}

// Names of the experiments, in paper order; used by the CLI.
var Names = []string{"fig3", "fig6", "fig7", "table1", "fig8", "fig9"}
