package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpcperf/switchprobe/internal/engine"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sched"
	"github.com/hpcperf/switchprobe/internal/stats"
	"github.com/hpcperf/switchprobe/internal/telemetry"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// The sched campaign closes the paper's loop: it streams a deterministic job
// arrival process through the contention-aware scheduler simulator
// (internal/sched) on a set of fabric scenarios — the paper's single switch
// plus fat-trees at increasing oversubscription — and compares every
// placement policy, including the predictor-in-the-loop PredictorGuided, on
// makespan and job stretch.  Every coefficient the simulator consumes (solo
// baselines, placed co-run slowdowns, signatures, predictor profiles) is an
// engine-cached RunSpec, so a warm campaign executes zero simulations.

// SchedSpec parameterizes the scheduler campaign.  The zero value selects
// campaign defaults for every field.
type SchedSpec struct {
	// Jobs is the length of each arrival stream (0 = 16).
	Jobs int
	// Streams is the number of independent arrival streams (seeded Seed,
	// Seed+1, ...) each policy schedules; metrics pool the streams' jobs
	// so single-stream luck does not decide policy rankings (0 = 3).
	Streams int
	// Seed drives the arrival stream and the random policy (0 = the suite's
	// base seed).
	Seed int64
	// Policies are the policy names to compare (empty = all).
	Policies []string
	// Apps is the workload mix jobs are drawn from (empty = FFTW, MCB,
	// VPFFT, Lulesh — two network-hungry transposes and two compute-heavy
	// codes, so pairing choices matter).
	Apps []string
	// MeanInterarrivalMs fixes the mean arrival gap in virtual milliseconds;
	// 0 derives it from the measured solo durations so the offered load is
	// Load times the cluster's slot capacity.
	MeanInterarrivalMs float64
	// Load is the offered-load multiple used when MeanInterarrivalMs is 0
	// (0 = 1.0: enough pressure that co-location is regularly forced while
	// keeping placement freedom — at much higher loads every slot is
	// contended and all policies degenerate to the single feasible choice).
	Load float64
	// NodesPerSlot is the node count of one job slot (0 = nodes/6, so every
	// scenario offers six slots regardless of topology).
	NodesPerSlot int
	// MinIterations and MaxIterations bound each job's service demand
	// (0 = 40..80 solo iterations).
	MinIterations, MaxIterations int
	// TwoSlotFraction is the probability of a double-width job.  Zero keeps
	// the default of 0.2; set any negative value for a single-width stream.
	TwoSlotFraction float64
	// Predictor names the model the PredictorGuided policy scores with
	// ("" = Queue, the paper's best model).
	Predictor string
	// Scenarios overrides the fabric set (nil = star + fat-tree at 1:1 and
	// ~2:1 oversubscription).
	Scenarios []SchedScenario
}

// SchedScenario is one fabric the campaign schedules on.
type SchedScenario struct {
	// Label names the scenario in tables ("star", "fattree-2:1", ...).
	Label string
	// Topology is the fabric (nil = the paper's single switch).
	Topology netsim.Topology
}

// DefaultSchedScenarios returns the standard fabric set for a node count:
// the paper's single switch, a non-blocking fat-tree and — whenever the
// leaves are deep enough to oversubscribe (more than one node per leaf) —
// an oversubscribed (~2:1) fat-tree over the same leaves, always last.
// Labels are unique by construction.
func DefaultSchedScenarios(nodes int) []SchedScenario {
	leaves := 3
	if nodes%3 != 0 || nodes/3 < 2 {
		leaves = 2
	}
	perLeaf := (nodes + leaves - 1) / leaves
	label := func(uplinks int) string {
		t := netsim.FatTree{Leaves: leaves, UplinksPerLeaf: uplinks}
		return fmt.Sprintf("fattree-%g:1", t.Oversubscription(nodes))
	}
	scens := []SchedScenario{
		{Label: "star", Topology: netsim.Star{}},
		{Label: label(perLeaf), Topology: netsim.FatTree{Leaves: leaves, UplinksPerLeaf: perLeaf}},
	}
	if contended := perLeaf / 2; contended >= 1 && contended < perLeaf {
		scens = append(scens, SchedScenario{
			Label:    label(contended),
			Topology: netsim.FatTree{Leaves: leaves, UplinksPerLeaf: contended},
		})
	}
	return scens
}

// withDefaults resolves every zero field against the suite configuration.
func (spec SchedSpec) withDefaults(cfg Config) SchedSpec {
	if spec.Jobs == 0 {
		spec.Jobs = 16
	}
	if spec.Seed == 0 {
		spec.Seed = cfg.Options.Seed
	}
	if len(spec.Policies) == 0 {
		spec.Policies = sched.PolicyNames()
	}
	if len(spec.Apps) == 0 {
		spec.Apps = []string{"FFTW", "MCB", "VPFFT", "Lulesh"}
	}
	if spec.Streams == 0 {
		spec.Streams = 3
	}
	if spec.Load == 0 {
		spec.Load = 1.0
	}
	if spec.NodesPerSlot == 0 {
		spec.NodesPerSlot = cfg.Options.Machine.Nodes() / 6
		if spec.NodesPerSlot < 1 {
			spec.NodesPerSlot = 1
		}
	}
	// The iteration bounds default as a pair, so setting only one of them
	// still yields a valid range.
	if spec.MinIterations == 0 && spec.MaxIterations == 0 {
		spec.MinIterations, spec.MaxIterations = 40, 80
	} else if spec.MaxIterations == 0 {
		spec.MaxIterations = 2 * spec.MinIterations
	} else if spec.MinIterations == 0 {
		spec.MinIterations = (spec.MaxIterations + 1) / 2
	}
	if spec.TwoSlotFraction == 0 {
		spec.TwoSlotFraction = 0.2
	} else if spec.TwoSlotFraction < 0 {
		spec.TwoSlotFraction = 0
	}
	if spec.Predictor == "" {
		spec.Predictor = model.Queue{}.Name()
	}
	if spec.Scenarios == nil {
		spec.Scenarios = DefaultSchedScenarios(cfg.Options.Machine.Nodes())
	}
	return spec
}

// SchedPolicyRow is one (scenario, policy) cell of the campaign, pooled
// over the spec's arrival streams.
type SchedPolicyRow struct {
	// Scenario and Oversubscription identify the fabric.
	Scenario         string
	Oversubscription float64
	// Policy is the placement policy name.
	Policy string
	// Streams holds the full schedule of every arrival stream.
	Streams []sched.Result
	// Jobs is the total job count across streams.
	Jobs int
	// MeanStretch, P95Stretch and MeanWaitSec pool every stream's jobs.
	MeanStretch, P95Stretch float64
	MeanWaitSec             float64
	// MakespanSec and MeanUtilizationPct average across streams;
	// Colocations, Deferrals and Requeues sum.
	MakespanSec        float64
	MeanUtilizationPct float64
	Colocations        int
	Deferrals          int
	// Requeues counts jobs evicted from dead leaves across all streams
	// (always zero without a health timeline — see the faults campaign).
	Requeues int
	// OracleLookups and OracleMisses count the coefficient queries this
	// policy's runs issued and how many of them had to resolve through the
	// engine (zero on a prefetched campaign — every query is a memo hit).
	OracleLookups, OracleMisses int64
	// Cache is the engine activity attributed to this policy's runs
	// (non-zero only when the oracle memo missed).
	Cache engine.Stats
}

// aggregate pools the per-stream schedules into the row's summary metrics,
// using the same stretch conventions as the per-run sched.Result.
func (row *SchedPolicyRow) aggregate() {
	var stretches, waits []float64
	for _, r := range row.Streams {
		for _, j := range r.Jobs {
			stretches = append(stretches, j.Stretch)
			waits = append(waits, j.WaitSec)
		}
		row.Jobs += len(r.Jobs)
		row.MakespanSec += r.MakespanSec
		row.MeanUtilizationPct += r.MeanUtilizationPct
		row.Colocations += r.Colocations
		row.Deferrals += r.Deferrals
		row.Requeues += r.Requeues
	}
	if len(row.Streams) > 0 {
		row.MakespanSec /= float64(len(row.Streams))
		row.MeanUtilizationPct /= float64(len(row.Streams))
	}
	if len(stretches) == 0 {
		return
	}
	row.MeanStretch, row.P95Stretch, _ = sched.StretchStats(stretches)
	row.MeanWaitSec = stats.Mean(waits)
}

// SchedResult is the full scheduler campaign.
type SchedResult struct {
	// Spec is the fully resolved specification the campaign ran with.
	Spec SchedSpec
	// Scenarios and Policies give the row/column order.
	Scenarios []string
	Policies  []string
	// Rows holds one entry per scenario × policy, scenario-major.
	Rows []SchedPolicyRow
}

// Row returns the (scenario, policy) cell.
func (r SchedResult) Row(scenario, policy string) (SchedPolicyRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Policy == policy {
			return row, true
		}
	}
	return SchedPolicyRow{}, false
}

// MeanStretch returns the (scenario, policy) mean job stretch pooled over
// every arrival stream.
func (r SchedResult) MeanStretch(scenario, policy string) (float64, bool) {
	row, ok := r.Row(scenario, policy)
	if !ok {
		return 0, false
	}
	return row.MeanStretch, true
}

// schedGrid prunes the profile grid to at most three spanning configurations
// — enough for the utilization→degradation interpolation the predictor
// evaluates, at a fraction of the profile-building cost.
func schedGrid(grid []inject.Config) []inject.Config {
	if len(grid) <= 3 {
		return grid
	}
	return []inject.Config{grid[0], grid[len(grid)/2], grid[len(grid)-1]}
}

// schedOversubscription reports the scenario's leaf oversubscription ratio
// (1 for the single switch).
func schedOversubscription(t netsim.Topology, nodes int) float64 {
	if ft, ok := t.(netsim.FatTree); ok {
		return ft.Oversubscription(nodes)
	}
	return 1
}

// Sched runs the scheduler campaign.
func (s *Suite) Sched(spec SchedSpec) (SchedResult, error) {
	spec = spec.withDefaults(s.cfg)
	for _, name := range spec.Apps {
		if _, err := workload.ByName(name, s.cfg.Scale); err != nil {
			return SchedResult{}, err
		}
	}
	pred, err := model.ByName(spec.Predictor)
	if err != nil {
		return SchedResult{}, err
	}
	known := map[string]bool{}
	for _, p := range sched.PolicyNames() {
		known[p] = true
	}
	for _, p := range spec.Policies {
		if !known[p] {
			return SchedResult{}, fmt.Errorf("sched: unknown policy %q (valid: %s)",
				p, strings.Join(sched.PolicyNames(), ", "))
		}
	}
	res := SchedResult{Spec: spec, Policies: spec.Policies}
	for _, scen := range spec.Scenarios {
		res.Scenarios = append(res.Scenarios, scen.Label)
		rows, err := s.schedScenario(spec, scen, pred)
		if err != nil {
			return SchedResult{}, fmt.Errorf("sched %s: %w", scen.Label, err)
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// schedHealthTimeline derives a leaf-health feed for one scenario run from
// the arrival stream's span (interarrival × jobs, in virtual seconds).  The
// faults campaign uses it to inject deterministic leaf failures at fixed
// fractions of the schedule; nil means every leaf stays healthy.
type schedHealthTimeline func(span float64) (health func(leaf int, now float64) sched.LeafHealth, events []float64)

// schedScenario runs every policy on one fabric.
func (s *Suite) schedScenario(spec SchedSpec, scen SchedScenario, pred model.Predictor) ([]SchedPolicyRow, error) {
	return s.schedScenarioHealth(spec, scen, pred, nil)
}

// schedScenarioHealth runs every policy on one fabric under an optional
// leaf-health timeline.
func (s *Suite) schedScenarioHealth(spec SchedSpec, scen SchedScenario, pred model.Predictor, timeline schedHealthTimeline) ([]SchedPolicyRow, error) {
	o := s.cfg.Options
	if scen.Topology != nil {
		o.Machine.Net.Topology = scen.Topology
	}
	grid := schedGrid(s.cfg.ProfileGrid)
	oracle := sched.NewEngineOracle(s.eng, o, grid)

	needPredictor := false
	for _, p := range spec.Policies {
		if p == sched.PolicyPredictor {
			needPredictor = true
		}
	}

	// The solo baselines both size the arrival stream (offered load) and
	// serve as the jobs' service demands; fetch them first, in parallel.
	if err := s.runParallel(len(spec.Apps),
		func(i int) string { return "sched solo " + spec.Apps[i] },
		func(i int) error { _, err := oracle.SoloIterationSec(spec.Apps[i]); return err },
	); err != nil {
		return nil, err
	}
	meanSolo := 0.0
	for _, app := range spec.Apps {
		iter, err := oracle.SoloIterationSec(app)
		if err != nil {
			return nil, err
		}
		meanSolo += iter * float64(spec.MinIterations+spec.MaxIterations) / 2
	}
	meanSolo /= float64(len(spec.Apps))

	// Slot capacity mirrors the simulator's node-derived accounting: leaves
	// are filled contiguously, each contributing leafNodes/NodesPerSlot
	// slots.
	nodes := o.Machine.Nodes()
	totalSlots := nodes / spec.NodesPerSlot
	if ft, ok := o.Machine.Net.Topology.(netsim.FatTree); ok {
		perLeaf := ft.NodesPerLeaf(nodes)
		counts := make(map[int]int)
		for n := 0; n < nodes; n++ {
			counts[n/perLeaf]++
		}
		totalSlots = 0
		for _, c := range counts {
			totalSlots += c / spec.NodesPerSlot
		}
	}
	if totalSlots < 1 {
		return nil, fmt.Errorf("no job slots: %d nodes at %d nodes per slot", nodes, spec.NodesPerSlot)
	}

	interarrival := spec.MeanInterarrivalMs / 1e3
	if interarrival <= 0 {
		meanSlots := 1 + spec.TwoSlotFraction
		interarrival = meanSolo * meanSlots / (spec.Load * float64(totalSlots))
	}
	streams := make([][]sched.JobSpec, spec.Streams)
	var allJobs []sched.JobSpec
	for i := range streams {
		jobs, err := sched.ArrivalSpec{
			Jobs:             spec.Jobs,
			Seed:             spec.Seed + int64(i),
			Mix:              spec.Apps,
			MeanInterarrival: interarrival,
			MinIterations:    spec.MinIterations,
			MaxIterations:    spec.MaxIterations,
			TwoSlotFraction:  spec.TwoSlotFraction,
		}.Generate()
		if err != nil {
			return nil, err
		}
		streams[i] = jobs
		allJobs = append(allJobs, jobs...)
	}

	if err := s.schedPrefetch(spec, allJobs, oracle, needPredictor); err != nil {
		return nil, err
	}

	var (
		health       func(leaf int, now float64) sched.LeafHealth
		healthEvents []float64
	)
	if timeline != nil {
		health, healthEvents = timeline(interarrival * float64(spec.Jobs))
	}

	oversub := schedOversubscription(o.Machine.Net.Topology, nodes)
	var rows []SchedPolicyRow
	for _, name := range spec.Policies {
		row := SchedPolicyRow{
			Scenario:         scen.Label,
			Oversubscription: oversub,
			Policy:           name,
		}
		before := s.eng.Stats()
		lookups0, misses0 := oracle.Stats()
		for i, jobs := range streams {
			policy, err := sched.NewPolicy(name, spec.Seed+int64(i), pred, oracle)
			if err != nil {
				return nil, err
			}
			result, err := sched.Run(sched.Config{
				Machine:      o.Machine,
				Seed:         spec.Seed + int64(i),
				NodesPerSlot: spec.NodesPerSlot,
				Jobs:         jobs,
				Policy:       policy,
				Oracle:       oracle,
				Health:       health,
				HealthEvents: healthEvents,
			})
			if err != nil {
				return nil, fmt.Errorf("policy %s stream %d: %w", name, i, err)
			}
			if telemetry.TraceEnabled() {
				emitSchedTrace(scen.Label, name, i, result)
			}
			row.Streams = append(row.Streams, result)
		}
		row.Cache = s.eng.Stats().Minus(before)
		lookups, misses := oracle.Stats()
		row.OracleLookups, row.OracleMisses = lookups-lookups0, misses-misses0
		recordSchedTelemetry(name, row)
		row.aggregate()
		rows = append(rows, row)
	}
	return rows, nil
}

// recordSchedTelemetry folds one policy row's deltas into policy-labeled
// registry series.  The oracle and engine keep per-instance atomics because
// scenarios schedule in parallel and each row needs its own delta; the
// registry gets the already-attributed per-policy sums, so /metrics can
// answer "how many oracle probes did PredictorGuided cost" across the whole
// campaign.
func recordSchedTelemetry(policy string, row SchedPolicyRow) {
	reg := telemetry.Default()
	jobs := 0
	for _, r := range row.Streams {
		jobs += len(r.Jobs)
	}
	reg.Counter("swprobe_sched_jobs_total", "Jobs scheduled, by placement policy", "policy", policy).Add(int64(jobs))
	reg.Counter("swprobe_sched_oracle_lookups_total", "Contention-oracle probes issued, by placement policy", "policy", policy).Add(row.OracleLookups)
	reg.Counter("swprobe_sched_oracle_misses_total", "Contention-oracle probes that missed the artifact cache, by placement policy", "policy", policy).Add(row.OracleMisses)
}

// emitSchedTrace exports one scheduler run as trace lanes: a trace process
// per scenario×policy×stream, a thread per leaf, a complete span per job
// lifetime (start→end on its leaf) and an instant per placement decision.
// Emission happens post-run from the Result record, so the scheduler's event
// loop is untouched and the trace can never perturb a schedule.
func emitSchedTrace(scenario, policy string, stream int, result sched.Result) {
	pid := telemetry.NextTracePid()
	telemetry.EmitProcessName(pid, fmt.Sprintf("sched %s/%s s%d", scenario, policy, stream))
	leaves := map[int]bool{}
	for _, j := range result.Jobs {
		if !leaves[j.Leaf] {
			leaves[j.Leaf] = true
			telemetry.EmitThreadName(pid, int64(j.Leaf), fmt.Sprintf("leaf %d", j.Leaf))
		}
		startNS := int64(j.Start * 1e9)
		durNS := int64((j.End - j.Start) * 1e9)
		telemetry.EmitSpan("sched.job", fmt.Sprintf("j%d %s", j.ID, j.Workload), pid, int64(j.Leaf), startNS, durNS, map[string]any{
			"slots":     j.Slots,
			"wait_sec":  j.WaitSec,
			"stretch":   j.Stretch,
			"colocated": j.Colocated,
		})
	}
	for _, d := range result.Decisions {
		telemetry.EmitInstant("sched.place", fmt.Sprintf("place j%d %s", d.JobID, d.Workload), pid, int64(d.Leaf), int64(d.Time*1e9), map[string]any{
			"score":    d.Score,
			"queued":   d.Queued,
			"feasible": d.Feasible,
		})
	}
}

// schedPrefetch warms the engine with every coefficient the simulations can
// request, fanned out across the worker pool, so the per-policy runs are
// pure cache reads and the cold campaign parallelizes.
func (s *Suite) schedPrefetch(spec SchedSpec, jobs []sched.JobSpec, oracle *sched.EngineOracle, needPredictor bool) error {
	present := map[string]bool{}
	for _, j := range jobs {
		present[j.Workload] = true
	}
	apps := make([]string, 0, len(present))
	for a := range present {
		apps = append(apps, a)
	}
	sort.Strings(apps)

	type task struct {
		label string
		run   func() error
	}
	var tasks []task
	for _, a := range apps {
		a := a
		tasks = append(tasks, task{"sched signature " + a, func() error {
			_, err := oracle.Signature(a)
			return err
		}})
		if needPredictor {
			tasks = append(tasks, task{"sched profile " + a, func() error {
				_, err := oracle.Profile(a)
				return err
			}})
		}
		for _, b := range apps {
			if b < a {
				continue
			}
			a, b := a, b
			tasks = append(tasks, task{fmt.Sprintf("sched pair %s+%s shared", a, b), func() error {
				_, err := oracle.SharedSlowdownPct(a, b)
				return err
			}})
			tasks = append(tasks, task{fmt.Sprintf("sched pair %s+%s disjoint", a, b), func() error {
				_, err := oracle.DisjointSlowdownPct(a, b)
				return err
			}})
			tasks = append(tasks, task{fmt.Sprintf("sched pair %s+%s reverse", a, b), func() error {
				if _, err := oracle.SharedSlowdownPct(b, a); err != nil {
					return err
				}
				_, err := oracle.DisjointSlowdownPct(b, a)
				return err
			}})
		}
	}
	return s.runParallel(len(tasks),
		func(i int) string { return tasks[i].label },
		func(i int) error { return tasks[i].run() })
}

// SchedSummary renders the campaign's headline comparison: per scenario, the
// best policy by mean stretch and the predictor-guided policy's edge over
// the blind placements.
func SchedSummary(r SchedResult) string {
	var b strings.Builder
	for _, scen := range r.Scenarios {
		best, bestStretch := "", 0.0
		for _, p := range r.Policies {
			if st, ok := r.MeanStretch(scen, p); ok && (best == "" || st < bestStretch) {
				best, bestStretch = p, st
			}
		}
		if best == "" {
			continue
		}
		fmt.Fprintf(&b, "%s: best policy %s (mean stretch %.2f)", scen, best, bestStretch)
		pg, okPG := r.MeanStretch(scen, sched.PolicyPredictor)
		pack, okPack := r.MeanStretch(scen, sched.PolicyPack)
		spread, okSpread := r.MeanStretch(scen, sched.PolicySpread)
		if okPG && okPack && okSpread {
			fmt.Fprintf(&b, "; predictor %.2f vs pack %.2f, spread %.2f", pg, pack, spread)
		}
		b.WriteString("\n")
	}
	return b.String()
}
