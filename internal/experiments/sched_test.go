package experiments_test

import (
	"bytes"
	"testing"

	. "github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/report"
	"github.com/hpcperf/switchprobe/internal/sched"
)

func TestDefaultSchedScenarios(t *testing.T) {
	scens := DefaultSchedScenarios(6)
	if len(scens) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(scens))
	}
	if scens[0].Label != "star" {
		t.Fatalf("first scenario %q, want star", scens[0].Label)
	}
	ft, ok := scens[2].Topology.(netsim.FatTree)
	if !ok || ft.Oversubscription(6) <= 1 {
		t.Fatalf("last scenario %+v, want an oversubscribed fat-tree", scens[2])
	}
	for _, nodes := range []int{6, 18, 8} {
		for _, sc := range DefaultSchedScenarios(nodes) {
			if sc.Topology == nil {
				continue
			}
			if ft, ok := sc.Topology.(netsim.FatTree); ok {
				if _, err := ft.Build(nodes); err != nil {
					t.Fatalf("scenario %s invalid for %d nodes: %v", sc.Label, nodes, err)
				}
			}
		}
	}
	// Tiny machines cannot oversubscribe one-node leaves: the contended
	// scenario is dropped instead of duplicating the 1:1 fabric, and labels
	// stay unique.
	for _, nodes := range []int{2, 3, 4} {
		scens := DefaultSchedScenarios(nodes)
		seen := map[string]bool{}
		for _, sc := range scens {
			if seen[sc.Label] {
				t.Fatalf("duplicate scenario label %q for %d nodes", sc.Label, nodes)
			}
			seen[sc.Label] = true
		}
	}
}

func TestSchedRejectsUnknownInputs(t *testing.T) {
	s := NewSuite(MustNewConfig(PresetCI, 1))
	if _, err := s.Sched(SchedSpec{Apps: []string{"NoSuchApp"}}); err == nil {
		t.Fatal("expected error for unknown app")
	}
	if _, err := s.Sched(SchedSpec{Predictor: "NoSuchModel"}); err == nil {
		t.Fatal("expected error for unknown predictor")
	}
	if _, err := s.Sched(SchedSpec{Policies: []string{"greedy"}, Scenarios: []SchedScenario{{Label: "star"}}}); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

// contendedScenario is the campaign's headline fabric at CI scale: a 3-leaf
// fat-tree with one uplink per leaf, i.e. 2:1 oversubscription on 6 nodes.
func contendedScenario() SchedScenario {
	return SchedScenario{Label: "fattree-2:1", Topology: netsim.FatTree{Leaves: 3, UplinksPerLeaf: 1}}
}

// TestSchedPredictorGuidedWinsOnContendedFabric is the subsystem's
// acceptance property: on the oversubscribed fat-tree, the
// predictor-in-the-loop policy achieves lower mean job stretch than both
// blind placements it is judged against, and its runs resolve every
// coefficient from the engine without extra simulations after the prefetch.
func TestSchedPredictorGuidedWinsOnContendedFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping sched campaign in -short mode")
	}
	s := NewSuite(MustNewConfig(PresetCI, 1))
	r, err := s.Sched(SchedSpec{Scenarios: []SchedScenario{contendedScenario()}})
	if err != nil {
		t.Fatal(err)
	}
	pg, ok1 := r.MeanStretch("fattree-2:1", sched.PolicyPredictor)
	pack, ok2 := r.MeanStretch("fattree-2:1", sched.PolicyPack)
	spread, ok3 := r.MeanStretch("fattree-2:1", sched.PolicySpread)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing policy rows in %+v", r.Scenarios)
	}
	if pg >= pack || pg >= spread {
		t.Fatalf("predictor mean stretch %.3f not below pack %.3f and spread %.3f", pg, pack, spread)
	}
	for _, row := range r.Rows {
		if row.Cache.Simulated > 0 {
			t.Fatalf("policy %s run executed %d simulations; prefetch incomplete", row.Policy, row.Cache.Simulated)
		}
		if row.OracleMisses > 0 {
			t.Fatalf("policy %s run missed the oracle memo %d times; prefetch incomplete", row.Policy, row.OracleMisses)
		}
		if row.OracleLookups == 0 {
			t.Fatalf("policy %s run reported no coefficient lookups", row.Policy)
		}
		if row.Jobs != r.Spec.Streams*r.Spec.Jobs {
			t.Fatalf("row %s/%s pooled %d jobs, want %d", row.Scenario, row.Policy, row.Jobs, r.Spec.Streams*r.Spec.Jobs)
		}
	}
}

// TestSchedDeterministicCSVAcrossRuns extends the determinism regression to
// the scheduler campaign: under a fixed seed, two fresh suites must render
// byte-identical CSVs on the star and on the oversubscribed fat-tree.
func TestSchedDeterministicCSVAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping sched determinism regression in -short mode")
	}
	spec := SchedSpec{
		Apps:      []string{"FFTW", "MCB", "VPFFT"},
		Scenarios: []SchedScenario{{Label: "star"}, contendedScenario()},
	}
	render := func() []byte {
		s := NewSuite(MustNewConfig(PresetCI, 1))
		r, err := s.Sched(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.SchedTable(r).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatal("sched campaign CSV differs between runs with the same seed")
	}
}
