package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/hpcperf/switchprobe/internal/netsim"
)

// The relaxed execution mode gives up byte-identity with the strict oracle,
// but NOT determinism: per-flow RNG substreams and the ordered wake/replay
// machinery make every run a pure function of (config, seed).  This
// regression pins that property end to end — same seed, same topology, two
// cold suites, byte-identical rendered artifacts — on both built-in
// topologies.
func TestRelaxedSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig3 campaign four times; skipped in -short")
	}
	topologies := []struct {
		name string
		topo netsim.Topology
	}{
		{"star", netsim.Star{}},
		{"fattree", netsim.FatTree{Leaves: 3, UplinksPerLeaf: 1}},
	}
	for _, tc := range topologies {
		t.Run(tc.name, func(t *testing.T) {
			render := func() []byte {
				t.Helper()
				cfg := MustNewConfig(PresetCI, 11)
				cfg.Options.Machine.Net.StrictOrder = false
				cfg.Options.Machine.Net.Topology = tc.topo
				r, err := NewSuite(cfg).Fig3()
				if err != nil {
					t.Fatal(err)
				}
				// Full-precision dump in declared column order (the CSV writer
				// lives in report, which imports this package).
				var buf bytes.Buffer
				for _, col := range r.Columns {
					fmt.Fprintf(&buf, "%s mean=%x hist=% x\n",
						col, r.MeanMicros[col], r.FrequencyPct[col])
				}
				return buf.Bytes()
			}
			first, second := render(), render()
			if !bytes.Equal(first, second) {
				t.Fatalf("same seed produced different relaxed results on %s:\nrun 1:\n%s\nrun 2:\n%s",
					tc.name, first, second)
			}
		})
	}
}
