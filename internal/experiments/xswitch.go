package experiments

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// The xswitch campaign takes the paper's methodology beyond its single
// switch: a target and a co-runner each get one half of a fat-tree machine,
// and the campaign measures — for a sweep of leaf oversubscription ratios
// and for packed vs. spread placement — how much the co-runner actually
// slows the target down, and how well the paper's predictors (whose probe
// and injector span the whole fabric) anticipate it.  Pack keeps the two
// jobs on disjoint leaves, so at any oversubscription they barely share
// links; spread interleaves both across every leaf, so their traffic meets
// on the leaf↔spine trunks and the slowdown grows with oversubscription.

// XSwitchPoint is one (oversubscription, placement) case of the campaign.
type XSwitchPoint struct {
	// Uplinks is the number of leaf→spine trunks per leaf.
	Uplinks int
	// Oversubscription is nodes-per-leaf / uplinks (1 = non-blocking).
	Oversubscription float64
	// Placement is the node-order policy both jobs were placed with.
	Placement cluster.PlacementPolicy
	// BaselineIterMs is the target's per-iteration time (ms) alone in its
	// slot.
	BaselineIterMs float64
	// MeasuredPct is the target's measured co-run degradation.
	MeasuredPct float64
	// PredictedPct and AbsErrPct map each model to its prediction and
	// absolute error.
	PredictedPct map[string]float64
	AbsErrPct    map[string]float64
}

// XSwitchResult is the full campaign.
type XSwitchResult struct {
	Target, CoRunner string
	Leaves           int
	Models           []string
	Points           []XSwitchPoint
}

// xswitchTopology resolves the fat-tree the campaign runs on: the suite's
// configured topology if it already is a fat-tree, otherwise a default
// two-leaf fabric.
func (s *Suite) xswitchTopology() netsim.FatTree {
	if ft, ok := s.cfg.Options.Machine.Net.Topology.(netsim.FatTree); ok {
		return ft
	}
	return netsim.FatTree{Leaves: 2}
}

// xswitchSweep returns the uplink counts to measure, from non-blocking (one
// uplink per node) down to a single shared trunk, always including the
// configured value (even an over-provisioned one — the fabric the user asked
// for must appear in the table).
func xswitchSweep(ft netsim.FatTree, nodes int) []int {
	perLeaf := ft.NodesPerLeaf(nodes)
	set := map[int]bool{perLeaf: true, 1: true}
	if ft.UplinksPerLeaf > 0 {
		set[ft.UplinksPerLeaf] = true
	}
	var sweep []int
	for u := range set {
		sweep = append(sweep, u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sweep)))
	return sweep
}

// XSwitch runs the cross-switch campaign for the named target and co-runner.
func (s *Suite) XSwitch(targetName, coName string) (XSwitchResult, error) {
	target, err := workload.ByName(targetName, s.cfg.Scale)
	if err != nil {
		return XSwitchResult{}, err
	}
	coRunner, err := workload.ByName(coName, s.cfg.Scale)
	if err != nil {
		return XSwitchResult{}, err
	}
	ft := s.xswitchTopology()
	nodes := s.cfg.Options.Machine.Net.Nodes
	if _, err := (netsim.FatTree{Leaves: ft.Leaves}).Build(nodes); err != nil {
		return XSwitchResult{}, err
	}
	sweep := xswitchSweep(ft, nodes)
	// The pack/spread contrast is the campaign's point; a different
	// configured policy (random) is measured as a third row per fabric.
	placements := []cluster.PlacementPolicy{cluster.PlacePack, cluster.PlaceSpread}
	if p, err := cluster.ParsePlacement(string(s.cfg.Options.Placement)); err == nil &&
		p != cluster.PlacePack && p != cluster.PlaceSpread {
		placements = append(placements, p)
	}
	models := model.All()
	res := XSwitchResult{Target: target.Name(), CoRunner: coRunner.Name(), Leaves: ft.Leaves}
	for _, m := range models {
		res.Models = append(res.Models, m.Name())
	}

	// One task per uplink count; the per-fabric calibration and injector
	// signatures flow through the engine's cache, so both placements (and
	// any spec the configured fabric shares with other campaigns) reuse
	// them.
	points := make([][]XSwitchPoint, len(sweep))
	err = s.runParallel(len(sweep),
		func(i int) string { return fmt.Sprintf("xswitch uplinks=%d", sweep[i]) },
		func(i int) error {
			u := sweep[i]
			o := s.cfg.Options
			topo := netsim.FatTree{Leaves: ft.Leaves, UplinksPerLeaf: u}
			o.Machine.Net.Topology = topo
			if _, err := s.eng.Calibration(o); err != nil {
				return fmt.Errorf("xswitch uplinks=%d: %w", u, err)
			}
			for _, cfg := range s.cfg.ProfileGrid {
				if _, err := s.eng.InjectorImpact(o, cfg); err != nil {
					return fmt.Errorf("xswitch uplinks=%d: %w", u, err)
				}
			}
			for _, policy := range placements {
				op := o
				op.Placement = policy
				coSig, err := s.eng.AppImpact(op, coRunner, core.SlotB)
				if err != nil {
					return fmt.Errorf("xswitch uplinks=%d %s: %w", u, policy, err)
				}
				prof, err := s.eng.BuildProfile(op, target, s.cfg.ProfileGrid, core.SlotA)
				if err != nil {
					return fmt.Errorf("xswitch uplinks=%d %s: %w", u, policy, err)
				}
				ra, _, err := s.eng.Pair(op, target, coRunner, true)
				if err != nil {
					return fmt.Errorf("xswitch uplinks=%d %s: %w", u, policy, err)
				}
				pt := XSwitchPoint{
					Uplinks:          u,
					Oversubscription: topo.Oversubscription(nodes),
					Placement:        policy,
					BaselineIterMs:   prof.Baseline.TimePerIteration.Seconds() * 1e3,
					MeasuredPct:      core.DegradationPercent(prof.Baseline, ra),
					PredictedPct:     make(map[string]float64, len(models)),
					AbsErrPct:        make(map[string]float64, len(models)),
				}
				for _, m := range models {
					pred, err := m.Predict(prof, coSig)
					if err != nil {
						return fmt.Errorf("xswitch uplinks=%d %s %s: %w", u, policy, m.Name(), err)
					}
					pt.PredictedPct[m.Name()] = pred
					pt.AbsErrPct[m.Name()] = math.Abs(pred - pt.MeasuredPct)
				}
				points[i] = append(points[i], pt)
			}
			return nil
		})
	if err != nil {
		return XSwitchResult{}, err
	}
	for _, pts := range points {
		res.Points = append(res.Points, pts...)
	}
	return res, nil
}

// DegradationBy returns the measured degradation of the first point matching
// the given uplink count and placement, for tests and summaries.
func (r XSwitchResult) DegradationBy(uplinks int, placement cluster.PlacementPolicy) (float64, bool) {
	for _, p := range r.Points {
		if p.Uplinks == uplinks && p.Placement == placement {
			return p.MeasuredPct, true
		}
	}
	return 0, false
}
