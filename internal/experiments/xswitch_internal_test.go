package experiments

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/netsim"
)

func TestXSwitchSweep(t *testing.T) {
	ft := netsim.FatTree{Leaves: 2, UplinksPerLeaf: 2}
	sweep := xswitchSweep(ft, 6)
	if want := []int{3, 2, 1}; len(sweep) != 3 || sweep[0] != want[0] || sweep[1] != want[1] || sweep[2] != want[2] {
		t.Fatalf("sweep = %v, want %v", sweep, want)
	}
	// Without a configured uplink count only the non-blocking and the fully
	// shared fabric are measured.
	sweep = xswitchSweep(netsim.FatTree{Leaves: 2}, 6)
	if len(sweep) != 2 || sweep[0] != 3 || sweep[1] != 1 {
		t.Fatalf("default sweep = %v, want [3 1]", sweep)
	}
}
