package experiments_test

import (
	"bytes"
	"testing"

	"github.com/hpcperf/switchprobe/internal/cluster"
	. "github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/report"
)

// xswitchTestConfig returns a trimmed ci-preset configuration on a two-leaf
// fat-tree so the campaign stays fast enough for unit tests.
func xswitchTestConfig(t *testing.T, uplinks int) Config {
	t.Helper()
	cfg := MustNewConfig(PresetCI, 1)
	cfg.Options.Machine.Net.Topology = netsim.FatTree{Leaves: 2, UplinksPerLeaf: uplinks}
	cfg.ProfileGrid = inject.ReducedGrid()[:2]
	return cfg
}

func TestXSwitchRejectsUnknownApps(t *testing.T) {
	s := NewSuite(xswitchTestConfig(t, 2))
	if _, err := s.XSwitch("NoSuchApp", "VPFFT"); err == nil {
		t.Fatal("expected error for unknown target")
	}
	if _, err := s.XSwitch("FFTW", "NoSuchApp"); err == nil {
		t.Fatal("expected error for unknown co-runner")
	}
}

// TestXSwitchCrossLeafWorseThanSameLeaf is the campaign's headline property:
// on an oversubscribed fabric, spreading both jobs across the leaves (so
// their traffic contends on the spine trunks) must degrade the target
// measurably more than packing each job on its own leaf, while the
// non-blocking (1:1) fabric keeps even the spread placement close to
// baseline.
func TestXSwitchCrossLeafWorseThanSameLeaf(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping xswitch campaign in -short mode")
	}
	s := NewSuite(xswitchTestConfig(t, 1))
	r, err := s.XSwitch("FFTW", "VPFFT")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 { // uplinks {3,1} x placements {pack,spread}
		t.Fatalf("campaign has %d points, want 4", len(r.Points))
	}
	packOver, ok := r.DegradationBy(1, cluster.PlacePack)
	if !ok {
		t.Fatal("missing pack point at 1 uplink")
	}
	spreadOver, ok := r.DegradationBy(1, cluster.PlaceSpread)
	if !ok {
		t.Fatal("missing spread point at 1 uplink")
	}
	if spreadOver < packOver+10 {
		t.Fatalf("oversubscribed spread degradation %.1f%% not measurably worse than pack %.1f%%",
			spreadOver, packOver)
	}
	spreadFlat, ok := r.DegradationBy(3, cluster.PlaceSpread)
	if !ok {
		t.Fatal("missing spread point at 3 uplinks")
	}
	if spreadFlat > spreadOver/2 {
		t.Fatalf("non-blocking fabric degradation %.1f%% not well below oversubscribed %.1f%%",
			spreadFlat, spreadOver)
	}
	for _, m := range r.Models {
		for _, p := range r.Points {
			if _, ok := p.PredictedPct[m]; !ok {
				t.Fatalf("point %+v missing prediction for %s", p, m)
			}
		}
	}
}

// TestDeterministicCSVAcrossRuns is the determinism regression: the same
// seed must produce byte-identical CSV output on the star and on the
// fat-tree, no matter how often the campaign runs (no experiment may touch
// the global math/rand source or leak goroutine scheduling into results).
func TestDeterministicCSVAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping determinism regression in -short mode")
	}
	starCSV := func() []byte {
		s := NewSuite(MustNewConfig(PresetCI, 1))
		r, err := s.Fig3()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.Fig3Table(r).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := starCSV(), starCSV(); !bytes.Equal(a, b) {
		t.Fatal("star fig3 CSV differs between runs with the same seed")
	}

	fattreeCSV := func() []byte {
		s := NewSuite(xswitchTestConfig(t, 1))
		r, err := s.XSwitch("FFTW", "VPFFT")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.XSwitchTable(r).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := fattreeCSV(), fattreeCSV(); !bytes.Equal(a, b) {
		t.Fatal("fat-tree xswitch CSV differs between runs with the same seed")
	}
}
