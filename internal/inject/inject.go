// Package inject implements CompressionB, the paper's traffic-injection
// micro-benchmark (Fig. 5).  Its processes form one communication ring per
// core index across the nodes of the switch; in each round every process
// exchanges M messages of 40 KB with each of its P nearest ring partners,
// then idles for B CPU cycles.  Different (P, M, B) settings remove different
// fractions of the switch's capability from the software that shares it,
// which is how the paper emulates "less capable" switches.
package inject

import (
	"fmt"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/mpisim"
)

// JobName is the job/flow class name under which CompressionB traffic
// appears.
const JobName = "compress"

// Config is one CompressionB input configuration.
type Config struct {
	// Partners is P, the number of ring partners each process exchanges
	// messages with per round.
	Partners int
	// Messages is M, the number of messages sent to each partner per round.
	Messages int
	// SleepCycles is B, the number of CPU cycles the benchmark idles between
	// the per-partner message batches.
	SleepCycles float64
	// MessageBytes is the message size (40 KB in the paper).
	MessageBytes int
	// RanksPerSocket is the number of injector processes per socket (1 in
	// the paper, i.e. 2 per node).
	RanksPerSocket int
}

// DefaultMessageBytes is the paper's CompressionB message size.
const DefaultMessageBytes = 40 * 1024

// NewConfig returns a CompressionB configuration with the paper's fixed
// parameters (40 KB messages, one process per socket) and the given variable
// parameters.
func NewConfig(partners, messages int, sleepCycles float64) Config {
	return Config{
		Partners:       partners,
		Messages:       messages,
		SleepCycles:    sleepCycles,
		MessageBytes:   DefaultMessageBytes,
		RanksPerSocket: 1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Partners <= 0 {
		return fmt.Errorf("inject: non-positive partner count %d", c.Partners)
	}
	if c.Messages <= 0 {
		return fmt.Errorf("inject: non-positive message count %d", c.Messages)
	}
	if c.SleepCycles < 0 {
		return fmt.Errorf("inject: negative sleep cycles %v", c.SleepCycles)
	}
	if c.MessageBytes <= 0 {
		return fmt.Errorf("inject: non-positive message size %d", c.MessageBytes)
	}
	if c.RanksPerSocket <= 0 {
		return fmt.Errorf("inject: non-positive ranks per socket %d", c.RanksPerSocket)
	}
	return nil
}

// Label is a short human-readable identifier, e.g. "P7-M10-B2.5e+06".
func (c Config) Label() string {
	return fmt.Sprintf("P%d-M%d-B%.1e", c.Partners, c.Messages, c.SleepCycles)
}

// Grid returns the 40 CompressionB configurations of the paper's Section
// IV-C: P ∈ {1,4,7,14,17}, B ∈ {2.5e4, 2.5e5, 2.5e6, 2.5e7} cycles and
// M ∈ {1, 10}.
func Grid() []Config {
	partners := []int{1, 4, 7, 14, 17}
	sleeps := []float64{2.5e4, 2.5e5, 2.5e6, 2.5e7}
	messages := []int{1, 10}
	var out []Config
	for _, m := range messages {
		for _, b := range sleeps {
			for _, p := range partners {
				out = append(out, NewConfig(p, m, b))
			}
		}
	}
	return out
}

// ReducedGrid returns a coarser configuration grid (used by fast tests and by
// the look-up-table ablation): every partner count with the extreme sleep
// values and single messages, plus one heavy configuration.
func ReducedGrid() []Config {
	return []Config{
		NewConfig(1, 1, 2.5e7),
		NewConfig(4, 1, 2.5e6),
		NewConfig(7, 1, 2.5e5),
		NewConfig(14, 1, 2.5e5),
		NewConfig(7, 10, 2.5e4),
		NewConfig(17, 10, 2.5e4),
	}
}

// Injector is a running CompressionB instance.
type Injector struct {
	cfg   Config
	job   *cluster.Job
	world *mpisim.World
	// rounds counts completed injection rounds summed over all ranks.
	rounds int64
}

// Job returns the injector's core allocation.
func (in *Injector) Job() *cluster.Job { return in.job }

// World returns the injector's message-passing world.
func (in *Injector) World() *mpisim.World { return in.world }

// Rounds returns the total number of completed injection rounds across all
// ranks.
func (in *Injector) Rounds() int64 { return in.rounds }

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Launch allocates CompressionB's cores (RanksPerSocket per socket on every
// node), builds its world and starts the injection loops.  The loops run
// until the caller ends the measurement window (Kernel.Shutdown).
func Launch(m *cluster.Machine, mpiCfg mpisim.Config, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := m.Config().Nodes()
	job, err := m.AllocateSpread(JobName, cfg.RanksPerSocket, nodes)
	if err != nil {
		return nil, fmt.Errorf("inject: allocating cores: %w", err)
	}
	world, err := mpisim.NewWorld(m, job, mpiCfg)
	if err != nil {
		m.Release(job)
		return nil, err
	}
	in := &Injector{cfg: cfg, job: job, world: world}
	tasksPerNode := cfg.RanksPerSocket * m.Config().SocketsPerNode
	world.LaunchProgram(func(r *mpisim.Rank, _ mpisim.Cont) {
		in.run(r, tasksPerNode)
	})
	return in, nil
}

// run is the per-rank CompressionB loop, a transcription of the paper's
// pseudo-code: for every partner, exchange M messages with the partner-th
// preceding/succeeding process in the ring, idle B cycles, and after all
// partners wait for every outstanding transfer before starting the next
// round.  It is a continuation-passing Program: the loop never terminates
// (the caller ends the window via Kernel.Shutdown), so the program's done
// continuation is never invoked.
func (in *Injector) run(r *mpisim.Rank, tasksPerNode int) {
	size := r.Size()
	// The ring spans distinct nodes: partner offsets are multiples of the
	// tasks-per-node stride.  Clamp P so each partner is a distinct process.
	maxPartners := size/tasksPerNode - 1
	partners := in.cfg.Partners
	if partners > maxPartners {
		partners = maxPartners
	}
	if partners < 1 {
		partners = 1
	}
	reqs := make([]*mpisim.Request, 0, 2*partners*in.cfg.Messages)
	partner := 0
	var startRound, nextPartner, roundDone mpisim.Cont
	startRound = func() {
		reqs = reqs[:0]
		partner = 0
		nextPartner()
	}
	nextPartner = func() {
		for partner < partners {
			for mesg := 0; mesg < in.cfg.Messages; mesg++ {
				tag := partner*in.cfg.Messages + mesg
				from := (r.Rank() + tasksPerNode*(partner+1)) % size
				to := (r.Rank() - tasksPerNode*(partner+1) + size) % size
				reqs = append(reqs, r.Irecv(from, tag))
				reqs = append(reqs, r.Isend(to, tag, in.cfg.MessageBytes))
			}
			partner++
			if in.cfg.SleepCycles > 0 {
				r.ComputeCyclesThen(in.cfg.SleepCycles, nextPartner)
				return
			}
		}
		r.WaitAllThen(roundDone, reqs...)
	}
	roundDone = func() {
		in.rounds++
		startRound()
	}
	startRound()
}
