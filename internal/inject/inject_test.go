package inject

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

func newMachine(t testing.TB, seed int64, nodes int) *cluster.Machine {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = nodes
	return cluster.MustNew(k, cfg)
}

func TestConfigValidateAndLabel(t *testing.T) {
	c := NewConfig(7, 10, 2.5e6)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MessageBytes != DefaultMessageBytes || c.RanksPerSocket != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.Label() != "P7-M10-B2.5e+06" {
		t.Fatalf("label = %q", c.Label())
	}
	bad := []Config{
		{Partners: 0, Messages: 1, SleepCycles: 1, MessageBytes: 1, RanksPerSocket: 1},
		{Partners: 1, Messages: 0, SleepCycles: 1, MessageBytes: 1, RanksPerSocket: 1},
		{Partners: 1, Messages: 1, SleepCycles: -1, MessageBytes: 1, RanksPerSocket: 1},
		{Partners: 1, Messages: 1, SleepCycles: 1, MessageBytes: 0, RanksPerSocket: 1},
		{Partners: 1, Messages: 1, SleepCycles: 1, MessageBytes: 1, RanksPerSocket: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGridMatchesPaper(t *testing.T) {
	grid := Grid()
	if len(grid) != 40 {
		t.Fatalf("grid size = %d, want 40", len(grid))
	}
	partners := map[int]bool{}
	sleeps := map[float64]bool{}
	messages := map[int]bool{}
	labels := map[string]bool{}
	for _, c := range grid {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid grid config %+v: %v", c, err)
		}
		partners[c.Partners] = true
		sleeps[c.SleepCycles] = true
		messages[c.Messages] = true
		if labels[c.Label()] {
			t.Fatalf("duplicate configuration %s", c.Label())
		}
		labels[c.Label()] = true
		if c.MessageBytes != 40*1024 {
			t.Fatalf("message size = %d, want 40KB", c.MessageBytes)
		}
	}
	for _, p := range []int{1, 4, 7, 14, 17} {
		if !partners[p] {
			t.Fatalf("partner count %d missing", p)
		}
	}
	for _, b := range []float64{2.5e4, 2.5e5, 2.5e6, 2.5e7} {
		if !sleeps[b] {
			t.Fatalf("sleep %v missing", b)
		}
	}
	if !messages[1] || !messages[10] {
		t.Fatal("message counts 1 and 10 must both appear")
	}
}

func TestReducedGridValid(t *testing.T) {
	rg := ReducedGrid()
	if len(rg) == 0 {
		t.Fatal("reduced grid empty")
	}
	for _, c := range rg {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(rg) >= len(Grid()) {
		t.Fatal("reduced grid should be smaller than the full grid")
	}
}

func TestLaunchRejectsBadConfig(t *testing.T) {
	m := newMachine(t, 1, 4)
	if _, err := Launch(m, mpisim.DefaultConfig(), Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestInjectorGeneratesTraffic(t *testing.T) {
	m := newMachine(t, 2, 4)
	in, err := Launch(m, mpisim.DefaultConfig(), NewConfig(1, 1, 2.5e5))
	if err != nil {
		t.Fatal(err)
	}
	if in.Job().Size() != 8 {
		t.Fatalf("injector ranks = %d, want 8", in.Job().Size())
	}
	m.Kernel().RunUntil(sim.Time(20 * sim.Millisecond))
	m.Kernel().Shutdown()
	if in.Rounds() == 0 {
		t.Fatal("no rounds completed")
	}
	bytes := m.Network().Stats().BytesByClass[JobName]
	if bytes == 0 {
		t.Fatal("no injector traffic crossed the switch")
	}
	if in.Config().Partners != 1 {
		t.Fatalf("config not preserved: %+v", in.Config())
	}
}

func TestHeavierConfigInjectsMoreTraffic(t *testing.T) {
	bytesFor := func(cfg Config) int64 {
		m := newMachine(t, 3, 4)
		_, err := Launch(m, mpisim.DefaultConfig(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Kernel().RunUntil(sim.Time(20 * sim.Millisecond))
		m.Kernel().Shutdown()
		return m.Network().Stats().BytesByClass[JobName]
	}
	light := bytesFor(NewConfig(1, 1, 2.5e7))
	heavy := bytesFor(NewConfig(7, 10, 2.5e4))
	if heavy < 4*light {
		t.Fatalf("heavy config (%d B) should inject much more than light config (%d B)", heavy, light)
	}
}

func TestSleepParameterThrottlesLoad(t *testing.T) {
	utilFor := func(sleep float64) float64 {
		m := newMachine(t, 4, 4)
		_, err := Launch(m, mpisim.DefaultConfig(), NewConfig(4, 1, sleep))
		if err != nil {
			t.Fatal(err)
		}
		window := 20 * sim.Millisecond
		m.Kernel().RunUntil(sim.Time(window))
		m.Kernel().Shutdown()
		return m.Network().MeanLinkUtilization(window)
	}
	busy := utilFor(2.5e4)
	idle := utilFor(2.5e7)
	if busy <= idle {
		t.Fatalf("shorter sleeps must load the switch more: busy=%.3f idle=%.3f", busy, idle)
	}
}

func TestPartnerCountClampedOnSmallMachines(t *testing.T) {
	// 17 partners cannot exist with 2 nodes (ring of 2 distinct nodes); the
	// injector must still run without deadlocking or panicking.
	m := newMachine(t, 5, 2)
	in, err := Launch(m, mpisim.DefaultConfig(), NewConfig(17, 1, 2.5e5))
	if err != nil {
		t.Fatal(err)
	}
	m.Kernel().RunUntil(sim.Time(10 * sim.Millisecond))
	m.Kernel().Shutdown()
	if in.Rounds() == 0 {
		t.Fatal("clamped injector made no progress")
	}
}
