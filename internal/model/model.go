// Package model implements the paper's four slowdown predictors (Section IV).
//
// Every predictor answers the same question: given the compression profile of
// a target application A (how A slows down under each CompressionB
// configuration) and the impact signature of a co-runner B (what ImpactB
// observed while B ran alone), how much will A slow down when it shares the
// switch with B?
//
//   - AverageLT matches B to the CompressionB configuration with the closest
//     mean probe latency.
//   - AverageStDevLT matches on the largest overlap of the [µ−σ, µ+σ]
//     intervals.
//   - PDFLT matches on the largest overlap integral of the full latency
//     distributions.
//   - Queue converts B's probe latency into an M/G/1 switch-queue
//     utilization and evaluates A's utilization→degradation curve there.
package model

import (
	"errors"
	"fmt"
	"math"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/stats"
)

// Predictor predicts the percentage slowdown of a target application when it
// shares the switch with a measured co-runner.
type Predictor interface {
	// Name identifies the predictor in tables and figures.
	Name() string
	// Predict returns the predicted degradation (percent) of the application
	// described by target when co-running with the component whose impact
	// signature is coRunner.
	Predict(target core.Profile, coRunner core.Signature) (float64, error)
}

// All returns the four predictors in the paper's order.
func All() []Predictor {
	return []Predictor{AverageLT{}, AverageStDevLT{}, PDFLT{}, Queue{}}
}

// Extended returns the paper's four predictors plus the phase-aware queue
// model, an extension of this library that relaxes the paper's
// constant-utilization assumption.
func Extended() []Predictor {
	return append(All(), QueuePhase{})
}

// ByName returns the named predictor.
func ByName(name string) (Predictor, error) {
	for _, p := range Extended() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("model: unknown predictor %q", name)
}

// errEmptyProfile is returned when a profile carries no compression points.
var errEmptyProfile = errors.New("model: profile has no compression points")

// AverageLT is the average-latency look-up table model: the co-runner is
// matched to the CompressionB configuration whose mean probe latency is
// closest.
type AverageLT struct{}

// Name implements Predictor.
func (AverageLT) Name() string { return "AverageLT" }

// Predict implements Predictor.
func (AverageLT) Predict(target core.Profile, coRunner core.Signature) (float64, error) {
	if len(target.Points) == 0 {
		return 0, errEmptyProfile
	}
	best := -1
	bestDist := math.Inf(1)
	for i, pt := range target.Points {
		d := math.Abs(pt.ImpactMean - coRunner.Mean)
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	return target.Points[best].DegradationPct, nil
}

// AverageStDevLT is the average-and-standard-deviation look-up table model:
// the co-runner is matched to the configuration whose [µ−σ, µ+σ] interval
// overlaps the co-runner's interval the most; ties and empty overlaps fall
// back to the closest mean.
type AverageStDevLT struct{}

// Name implements Predictor.
func (AverageStDevLT) Name() string { return "AverageStDevLT" }

// Predict implements Predictor.
func (AverageStDevLT) Predict(target core.Profile, coRunner core.Signature) (float64, error) {
	if len(target.Points) == 0 {
		return 0, errEmptyProfile
	}
	coIv := coRunner.MeanStdInterval()
	best := -1
	bestOverlap := 0.0
	for i, pt := range target.Points {
		iv := stats.MeanStdInterval(pt.ImpactMean, pt.ImpactStd)
		ov := coIv.Overlap(iv)
		if ov > bestOverlap {
			bestOverlap = ov
			best = i
		}
	}
	if best < 0 {
		// No interval overlaps at all: degrade gracefully to the AverageLT
		// choice, as the paper's description implies the closest configuration
		// is still the best available proxy.
		return AverageLT{}.Predict(target, coRunner)
	}
	return target.Points[best].DegradationPct, nil
}

// PDFLT is the probability-density look-up table model: the co-runner is
// matched to the configuration maximizing the overlap integral
// ∫ f_B(x) f_Ci(x) dx of the latency distributions.
type PDFLT struct{}

// Name implements Predictor.
func (PDFLT) Name() string { return "PDFLT" }

// Predict implements Predictor.
func (PDFLT) Predict(target core.Profile, coRunner core.Signature) (float64, error) {
	if len(target.Points) == 0 {
		return 0, errEmptyProfile
	}
	if coRunner.Hist == nil {
		return 0, errors.New("model: co-runner signature has no histogram")
	}
	best := -1
	bestOverlap := 0.0
	for i, pt := range target.Points {
		if pt.ImpactHist == nil {
			continue
		}
		ov, err := stats.OverlapProduct(coRunner.Hist, pt.ImpactHist)
		if err != nil {
			return 0, err
		}
		if ov > bestOverlap {
			bestOverlap = ov
			best = i
		}
	}
	if best < 0 {
		// Distributions are entirely disjoint (or histograms missing); fall
		// back to the mean-based match.
		return AverageLT{}.Predict(target, coRunner)
	}
	return target.Points[best].DegradationPct, nil
}

// Queue is the queueing-theory model: the co-runner's probe latency is
// converted into an M/G/1 switch-queue utilization (done upstream when the
// signature was measured) and the target's utilization→degradation curve is
// evaluated at that utilization.
type Queue struct{}

// Name implements Predictor.
func (Queue) Name() string { return "Queue" }

// Predict implements Predictor.
func (Queue) Predict(target core.Profile, coRunner core.Signature) (float64, error) {
	if len(target.Points) == 0 {
		return 0, errEmptyProfile
	}
	return target.DegradationAt(coRunner.UtilizationPct)
}

// QueuePhase is a phase-aware extension of the queue model.  The paper
// attributes its only large error (predicting FFTW's slowdown next to AMG) to
// the assumption that a co-runner utilizes the switch uniformly over time,
// while AMG alternates between network-heavy and network-idle phases.
// QueuePhase evaluates the target's utilization→degradation curve in every
// sub-window of the co-runner's measurement and averages the results, so
// windows in which the co-runner leaves the switch idle correctly contribute
// little predicted slowdown.  With no phase data it reduces to Queue.
type QueuePhase struct{}

// Name implements Predictor.
func (QueuePhase) Name() string { return "QueuePhase" }

// Predict implements Predictor.
func (QueuePhase) Predict(target core.Profile, coRunner core.Signature) (float64, error) {
	if len(target.Points) == 0 {
		return 0, errEmptyProfile
	}
	if len(coRunner.Phases) == 0 {
		return Queue{}.Predict(target, coRunner)
	}
	totalSamples := 0
	weighted := 0.0
	for _, ph := range coRunner.Phases {
		deg, err := target.DegradationAt(ph.UtilizationPct)
		if err != nil {
			return 0, err
		}
		weighted += deg * float64(ph.Samples)
		totalSamples += ph.Samples
	}
	if totalSamples == 0 {
		return Queue{}.Predict(target, coRunner)
	}
	return weighted / float64(totalSamples), nil
}
