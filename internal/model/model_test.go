package model

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/stats"
)

// syntheticPoint builds a profile point whose impact signature is a narrow
// distribution around meanMicros.
func syntheticPoint(meanMicros, stdMicros, utilPct, degradation float64) core.ProfilePoint {
	h := stats.MustHistogram(0, 20, 40)
	for i := -2; i <= 2; i++ {
		h.Add(meanMicros + float64(i)*stdMicros/2)
	}
	return core.ProfilePoint{
		Injector:       inject.NewConfig(1, 1, 2.5e6),
		UtilizationPct: utilPct,
		ImpactMean:     meanMicros * 1e-6,
		ImpactStd:      stdMicros * 1e-6,
		ImpactHist:     h,
		DegradationPct: degradation,
	}
}

// syntheticSignature builds a co-runner signature around meanMicros.
func syntheticSignature(name string, meanMicros, stdMicros, utilPct float64) core.Signature {
	h := stats.MustHistogram(0, 20, 40)
	for i := -2; i <= 2; i++ {
		h.Add(meanMicros + float64(i)*stdMicros/2)
	}
	return core.Signature{
		Component:      name,
		Mean:           meanMicros * 1e-6,
		StdDev:         stdMicros * 1e-6,
		Hist:           h,
		UtilizationPct: utilPct,
	}
}

// testProfile has three well separated compression points: light (30%),
// medium (60%), heavy (90%).
func testProfile() core.Profile {
	return core.Profile{
		App:      "Target",
		Baseline: core.Runtime{App: "Target", Iterations: 10, TimePerIteration: 1000},
		Points: []core.ProfilePoint{
			syntheticPoint(1.5, 0.3, 30, 5),
			syntheticPoint(4.0, 0.8, 60, 40),
			syntheticPoint(8.0, 1.5, 90, 150),
		},
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("expected 4 predictors, got %d", len(all))
	}
	want := []string{"AverageLT", "AverageStDevLT", "PDFLT", "Queue"}
	for i, p := range all {
		if p.Name() != want[i] {
			t.Fatalf("predictor %d = %s, want %s", i, p.Name(), want[i])
		}
		got, err := ByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Fatalf("ByName(%s) failed: %v", p.Name(), err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown predictor")
	}
}

func TestEmptyProfileErrors(t *testing.T) {
	sig := syntheticSignature("B", 4, 1, 50)
	for _, p := range All() {
		if _, err := p.Predict(core.Profile{App: "empty"}, sig); err == nil {
			t.Errorf("%s: expected error for empty profile", p.Name())
		}
	}
}

func TestAverageLTPicksClosestMean(t *testing.T) {
	prof := testProfile()
	cases := []struct {
		meanMicros float64
		want       float64
	}{
		{1.4, 5},    // closest to the light configuration
		{3.8, 40},   // closest to the medium configuration
		{9.0, 150},  // closest to the heavy configuration
		{0.1, 5},    // below everything: still the lightest
		{20.0, 150}, // above everything: still the heaviest
	}
	for _, c := range cases {
		sig := syntheticSignature("B", c.meanMicros, 0.2, 0)
		got, err := AverageLT{}.Predict(prof, sig)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("mean %.1fµs: predicted %v, want %v", c.meanMicros, got, c.want)
		}
	}
}

func TestAverageStDevLTUsesIntervalOverlap(t *testing.T) {
	prof := testProfile()
	// A wide co-runner distribution centred between light and medium whose
	// interval overlaps the medium configuration more than the light one.
	sig := syntheticSignature("B", 3.0, 1.5, 0)
	got, err := AverageStDevLT{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("predicted %v, want 40 (medium configuration)", got)
	}
	// With no overlap at all it falls back to the closest mean.
	far := syntheticSignature("B", 19, 0.01, 0)
	got, err = AverageStDevLT{}.Predict(prof, far)
	if err != nil {
		t.Fatal(err)
	}
	if got != 150 {
		t.Fatalf("fallback predicted %v, want 150", got)
	}
}

func TestPDFLTUsesDistributionOverlap(t *testing.T) {
	prof := testProfile()
	sig := syntheticSignature("B", 4.1, 0.8, 0)
	got, err := PDFLT{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("predicted %v, want 40", got)
	}
	// Signature without a histogram is an error.
	noHist := core.Signature{Component: "B", Mean: 4e-6, StdDev: 1e-6}
	if _, err := (PDFLT{}).Predict(prof, noHist); err == nil {
		t.Fatal("expected error for missing histogram")
	}
	// Completely disjoint distribution falls back to closest mean.
	disjoint := syntheticSignature("B", 19.5, 0.05, 0)
	got, err = PDFLT{}.Predict(prof, disjoint)
	if err != nil {
		t.Fatal(err)
	}
	if got != 150 {
		t.Fatalf("fallback predicted %v, want 150", got)
	}
}

func TestPDFLTSkipsPointsWithoutHistograms(t *testing.T) {
	prof := testProfile()
	prof.Points[1].ImpactHist = nil
	sig := syntheticSignature("B", 1.5, 0.3, 0)
	got, err := PDFLT{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("predicted %v, want 5", got)
	}
}

func TestQueueInterpolates(t *testing.T) {
	prof := testProfile()
	cases := []struct {
		util float64
		want float64
	}{
		{30, 5},
		{60, 40},
		{90, 150},
		{45, 22.5}, // midway between 5 and 40
		{75, 95},   // midway between 40 and 150
		{10, 5},    // below the profile range: clamp
		{100, 150}, // above the profile range: clamp
	}
	for _, c := range cases {
		sig := syntheticSignature("B", 0, 0, c.util)
		got, err := Queue{}.Predict(prof, sig)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("util %.0f%%: predicted %v, want %v", c.util, got, c.want)
		}
	}
}

func TestQueueExactOnSelfConsistentData(t *testing.T) {
	// When the co-runner behaves exactly like one of the CompressionB
	// configurations, the queue model reproduces that configuration's
	// measured degradation exactly — the self-consistency at the heart of the
	// performance-relativity principle.
	prof := testProfile()
	for _, pt := range prof.Points {
		sig := syntheticSignature("B", pt.ImpactMean*1e6, pt.ImpactStd*1e6, pt.UtilizationPct)
		got, err := Queue{}.Predict(prof, sig)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-pt.DegradationPct) > 1e-9 {
			t.Fatalf("util %.0f%%: predicted %v, want %v", pt.UtilizationPct, got, pt.DegradationPct)
		}
	}
}

// Property: every look-up table prediction returns a degradation present in
// the profile, and the queue model stays within the profile's degradation
// range.
func TestPredictionsBoundedProperty(t *testing.T) {
	prof := testProfile()
	inRange := func(v float64) bool { return v >= 5-1e-9 && v <= 150+1e-9 }
	isPoint := func(v float64) bool { return v == 5 || v == 40 || v == 150 }
	prop := func(meanTenthsMicro uint16, stdTenthsMicro uint8, util uint8) bool {
		sig := syntheticSignature("B",
			float64(meanTenthsMicro%200)/10,
			float64(stdTenthsMicro%40)/10,
			float64(util%101))
		for _, p := range All() {
			v, err := p.Predict(prof, sig)
			if err != nil {
				return false
			}
			if p.Name() == "Queue" {
				if !inRange(v) {
					return false
				}
			} else if !isPoint(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
