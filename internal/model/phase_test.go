package model

import (
	"math"
	"testing"

	"github.com/hpcperf/switchprobe/internal/core"
)

func TestExtendedIncludesQueuePhase(t *testing.T) {
	ext := Extended()
	if len(ext) != 5 {
		t.Fatalf("extended predictors = %d, want 5", len(ext))
	}
	if ext[len(ext)-1].Name() != "QueuePhase" {
		t.Fatalf("last extended predictor = %s", ext[len(ext)-1].Name())
	}
	p, err := ByName("QueuePhase")
	if err != nil || p.Name() != "QueuePhase" {
		t.Fatalf("ByName(QueuePhase) failed: %v", err)
	}
	// The paper-faithful set stays at four.
	if len(All()) != 4 {
		t.Fatalf("All() = %d predictors, want 4", len(All()))
	}
}

func TestQueuePhaseFallsBackWithoutPhases(t *testing.T) {
	prof := testProfile()
	sig := syntheticSignature("B", 4, 0.5, 60)
	q, err := Queue{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := QueuePhase{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	if q != qp {
		t.Fatalf("QueuePhase without phases (%v) should equal Queue (%v)", qp, q)
	}
}

func TestQueuePhaseAveragesOverPhases(t *testing.T) {
	prof := testProfile() // 30% -> 5, 60% -> 40, 90% -> 150
	sig := syntheticSignature("B", 4, 0.5, 60)
	// Half of the run the co-runner is nearly idle (30% -> 5%), half it is
	// heavy (90% -> 150%); the phase-aware prediction is the sample-weighted
	// mean, far below the constant-utilization prediction at 60%+.
	sig.Phases = []core.PhaseUtilization{
		{Samples: 100, UtilizationPct: 30},
		{Samples: 100, UtilizationPct: 90},
	}
	got, err := QueuePhase{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	want := (5.0 + 150.0) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("phase-aware prediction = %v, want %v", got, want)
	}
}

func TestQueuePhaseWeightsBySampleCount(t *testing.T) {
	prof := testProfile()
	sig := syntheticSignature("B", 4, 0.5, 60)
	sig.Phases = []core.PhaseUtilization{
		{Samples: 300, UtilizationPct: 30}, // 5% degradation, weight 3
		{Samples: 100, UtilizationPct: 90}, // 150% degradation, weight 1
	}
	got, err := QueuePhase{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	want := (3*5.0 + 150.0) / 4
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("weighted prediction = %v, want %v", got, want)
	}
}

func TestQueuePhaseZeroSamplePhasesFallBack(t *testing.T) {
	prof := testProfile()
	sig := syntheticSignature("B", 4, 0.5, 60)
	sig.Phases = []core.PhaseUtilization{{Samples: 0, UtilizationPct: 90}}
	got, err := QueuePhase{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := Queue{}.Predict(prof, sig)
	if got != q {
		t.Fatalf("zero-sample phases should fall back to Queue: got %v want %v", got, q)
	}
}

func TestQueuePhaseEmptyProfile(t *testing.T) {
	sig := syntheticSignature("B", 4, 0.5, 60)
	if _, err := (QueuePhase{}).Predict(core.Profile{App: "empty"}, sig); err == nil {
		t.Fatal("expected error for empty profile")
	}
}

func TestQueuePhaseAddressesBurstyCoRunner(t *testing.T) {
	// The motivating case: a co-runner whose average utilization looks high
	// (because its bursts dominate the mean latency) but which is idle half
	// the time.  The constant-utilization queue model over-predicts; the
	// phase-aware model predicts less.
	prof := testProfile()
	sig := syntheticSignature("AMG-like", 6, 2, 75)
	sig.Phases = []core.PhaseUtilization{
		{Samples: 50, UtilizationPct: 10},
		{Samples: 50, UtilizationPct: 85},
	}
	constant, err := Queue{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	phased, err := QueuePhase{}.Predict(prof, sig)
	if err != nil {
		t.Fatal(err)
	}
	if phased >= constant {
		t.Fatalf("phase-aware prediction (%v) should be below the constant-utilization one (%v)", phased, constant)
	}
}
