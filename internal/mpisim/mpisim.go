// Package mpisim is a message-passing runtime (an MPI work-alike) running on
// the simulated cluster.  It provides the primitives the paper's benchmarks
// and applications are written against: non-blocking point-to-point sends and
// receives with eager and rendezvous protocols, waits, and the common
// collectives (barrier, broadcast, reduce, allreduce, allgather, alltoall).
//
// Each rank executes either as a cooperative simulation process (a goroutine
// parked and resumed through the kernel, the legacy runtime behind
// World.Launch) or — for bodies written as continuation-passing Programs
// (World.LaunchProgram) — inline on the kernel goroutine as ordinary kernel
// events, with zero goroutines and zero channel handoffs.  The two runtimes
// schedule a kernel event at exactly the same code points, so they produce
// byte-identical simulation schedules; the continuation runtime is the
// default because it removes the two-channel park/resume handshake that
// otherwise dominates campaign wall-clock.  Inter-node messages travel
// through the netsim switch (and therefore contend with every other job on
// the machine), while intra-node messages use a shared-memory path that
// bypasses the switch.
package mpisim

import (
	"fmt"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// AnySource matches a receive against any sender rank.
const AnySource = -1

// AnyTag matches a receive against any message tag.
const AnyTag = -2

// RankRuntime selects how rank bodies launched as Programs execute.  Both
// runtimes produce byte-identical simulation schedules (they post the same
// kernel events at the same code points), so the knob is pure wall-clock and
// — like netsim's Workers — deliberately excluded from run fingerprints.
type RankRuntime string

const (
	// RuntimeContinuation (the default) runs Program ranks inline on the
	// kernel goroutine as ordinary kernel events: zero goroutines, zero
	// channel handoffs.
	RuntimeContinuation RankRuntime = "continuation"
	// RuntimeGoroutine runs Program ranks as cooperative simulation
	// processes, the legacy World.Launch execution model.
	RuntimeGoroutine RankRuntime = "goroutine"
)

// ParseRankRuntime parses a -rank-runtime CLI value.  The empty string means
// the default (continuation).
func ParseRankRuntime(s string) (RankRuntime, error) {
	switch RankRuntime(s) {
	case "", RuntimeContinuation:
		return RuntimeContinuation, nil
	case RuntimeGoroutine:
		return RuntimeGoroutine, nil
	}
	return "", fmt.Errorf("mpisim: unknown rank runtime %q (valid: %q, %q)", s, RuntimeContinuation, RuntimeGoroutine)
}

// Config tunes the runtime's transfer protocols.
type Config struct {
	// EagerThreshold is the largest message size (bytes) sent eagerly;
	// larger messages use a rendezvous handshake.
	EagerThreshold int
	// ControlBytes is the wire size of RTS/CTS control messages.
	ControlBytes int
	// Runtime selects the execution model for ranks launched with
	// LaunchProgram ("" means RuntimeContinuation).  Byte-identical output
	// either way; excluded from run fingerprints.
	Runtime RankRuntime
}

// DefaultConfig returns the production defaults (16 KiB eager threshold,
// 64-byte control messages).
func DefaultConfig() Config {
	return Config{EagerThreshold: 16 * 1024, ControlBytes: 64}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.EagerThreshold < 0 {
		return fmt.Errorf("mpisim: negative eager threshold %d", c.EagerThreshold)
	}
	if c.ControlBytes <= 0 {
		return fmt.Errorf("mpisim: non-positive control message size %d", c.ControlBytes)
	}
	if _, err := ParseRankRuntime(string(c.Runtime)); err != nil {
		return err
	}
	return nil
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Size   int
}

// Request is the handle of a non-blocking operation.  Requests are pooled
// per rank: Wait and WaitAll recycle every request passed to them when they
// return, so a request must not be touched after it has been waited on (read
// the Status that Wait returns instead), and the same request must not be
// passed to a wait twice.
type Request struct {
	done    bool
	status  Status
	waiter  *Rank
	counter *waitCounter
	// src/tag are the matching pattern of a posted receive, embedded here so
	// posting a receive costs one allocation, not two.
	src, tag int
}

// waitCounter batches the completions of a whole set of requests into a
// single wake: Wait and WaitAll charge every still-pending request to the
// rank's counter, and only the completion that drops it to zero wakes the
// rank.  A collective step waiting on 2·window exchanges therefore wakes
// the kernel once, not once per request.  Each rank owns one reusable
// counter (a rank can only wait on one batch at a time), so waiting
// allocates nothing.
type waitCounter struct {
	remaining int
	rank      *Rank
}

// Done reports whether the operation completed.
func (r *Request) Done() bool { return r.done }

// Status returns the receive status; meaningful only after completion of a
// receive request.
func (r *Request) Status() Status { return r.status }

func (r *Request) complete(st Status) {
	if r.done {
		return
	}
	r.done = true
	r.status = st
	if r.waiter != nil {
		r.waiter.wakeWait()
	}
	if c := r.counter; c != nil {
		r.counter = nil
		c.remaining--
		if c.remaining == 0 && c.rank != nil {
			c.rank.wakeWait()
		}
	}
}

// message kinds exchanged between ranks.
type msgKind int

const (
	kindEager msgKind = iota
	kindRTS
	kindCTS
)

// envelope carries the metadata of a point-to-point message.
type envelope struct {
	src, dst int // ranks
	tag      int
	size     int // application payload size
	kind     msgKind
	seq      int64 // sender-side id pairing RTS/CTS/data
}

// rendezvousState links the two requests of an in-flight rendezvous
// transfer.  Pooled per world.
type rendezvousState struct {
	env     envelope
	sendReq *Request
	recvReq *Request
}

// World is one message-passing job: a set of ranks placed on the machine.
type World struct {
	m    *cluster.Machine
	job  *cluster.Job
	cfg  Config
	name string

	nodeOf []int
	ranks  []*Rank

	seq        int64
	rendezvous map[int64]*rendezvousState

	// Free lists and pre-bound callbacks for the message hot path: every
	// network or intra-node completion is scheduled through one of these with
	// a pooled envelope (or rendezvous state) as argument, so the runtime's
	// steady-state messaging allocates neither closures nor envelopes.
	envFree      []*envelope
	rvFree       []*rendezvousState
	arriveNetFn  func(sim.Time, any)
	arriveKernFn func(any)
	rvDoneNetFn  func(sim.Time, any)
	rvDoneKernFn func(any)

	launched    bool
	finished    int
	completedAt sim.Time

	// Statistics.
	messagesSent int64
	bytesSent    int64
	collectives  int64
}

// NewWorld creates a message-passing world for job on machine m.
func NewWorld(m *cluster.Machine, job *cluster.Job, cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if job == nil || job.Size() == 0 {
		return nil, fmt.Errorf("mpisim: job is empty")
	}
	w := &World{
		m:          m,
		job:        job,
		cfg:        cfg,
		name:       job.Name,
		nodeOf:     job.NodeOf(),
		rendezvous: make(map[int64]*rendezvousState),
	}
	for i := 0; i < job.Size(); i++ {
		w.ranks = append(w.ranks, &Rank{w: w, rank: i})
	}
	w.arriveNetFn = func(_ sim.Time, a any) { w.arriveEnv(a.(*envelope)) }
	w.arriveKernFn = func(a any) { w.arriveEnv(a.(*envelope)) }
	w.rvDoneNetFn = func(_ sim.Time, a any) { w.rendezvousDone(a.(*rendezvousState)) }
	w.rvDoneKernFn = func(a any) { w.rendezvousDone(a.(*rendezvousState)) }
	return w, nil
}

// getEnv serves a pooled envelope holding env's contents.
func (w *World) getEnv(env envelope) *envelope {
	if l := len(w.envFree); l > 0 {
		e := w.envFree[l-1]
		w.envFree = w.envFree[:l-1]
		*e = env
		return e
	}
	e := new(envelope)
	*e = env
	return e
}

// arriveEnv delivers a pooled envelope and recycles it.
func (w *World) arriveEnv(e *envelope) {
	env := *e
	w.envFree = append(w.envFree, e)
	w.arrive(env)
}

// getRendezvous serves a pooled rendezvous state.
func (w *World) getRendezvous(env envelope, sendReq *Request) *rendezvousState {
	var st *rendezvousState
	if l := len(w.rvFree); l > 0 {
		st = w.rvFree[l-1]
		w.rvFree = w.rvFree[:l-1]
	} else {
		st = new(rendezvousState)
	}
	st.env = env
	st.sendReq = sendReq
	st.recvReq = nil
	return st
}

// MustNewWorld is NewWorld that panics on error.
func MustNewWorld(m *cluster.Machine, job *cluster.Job, cfg Config) *World {
	w, err := NewWorld(m, job, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Name returns the job name (used as the traffic class on the network).
func (w *World) Name() string { return w.name }

// Job returns the placement the world was built from.
func (w *World) Job() *cluster.Job { return w.job }

// Launch spawns one simulation process per rank, each executing body.  It may
// be called only once.
func (w *World) Launch(body func(r *Rank)) {
	if w.launched {
		panic("mpisim: World.Launch called twice")
	}
	w.launched = true
	for _, r := range w.ranks {
		r := r
		w.m.Kernel().Spawn(fmt.Sprintf("%s/rank%d", w.name, r.rank), func(p *sim.Proc) {
			r.proc = p
			body(r)
			w.finished++
			if w.finished == len(w.ranks) {
				w.completedAt = p.Now()
			}
		})
	}
}

// Cont is a continuation: the rest of a rank program.
type Cont func()

// Program is a rank body in continuation-passing style.  It must perform all
// simulated-time operations through the *Then primitives (ComputeThen,
// WaitThen, WaitAllThen, the *Then collectives, …), passing each the
// continuation to run once the operation completes, and invoke done when the
// rank is finished.  A Program written this way runs unchanged on either
// rank runtime: on the continuation runtime the primitives suspend the
// program by parking its continuation, on the goroutine runtime they execute
// their blocking counterparts and feed the continuation through the same
// trampoline.  A Program may keep per-rank state in closure variables; it
// must not call the blocking primitives (Compute, Wait, the plain
// collectives) directly, as those require a simulation process.
type Program func(r *Rank, done Cont)

// LaunchProgram launches one copy of the program per rank, on the runtime
// selected by Config.Runtime.  Like Launch it may be called only once.
//
// Both runtimes post exactly one pooled kernel event per rank at the current
// instant to start the bodies, and thereafter schedule events at exactly the
// same code points, so the simulated schedule — every timestamp, sequence
// number and RNG draw — is byte-identical across runtimes.
func (w *World) LaunchProgram(p Program) {
	if w.runtime() == RuntimeGoroutine {
		w.Launch(func(r *Rank) { r.runProgram(p) })
		return
	}
	if w.launched {
		panic("mpisim: World.Launch called twice")
	}
	w.launched = true
	k := w.m.Kernel()
	for _, r := range w.ranks {
		r := r
		r.cps = true
		r.stepFn = r.step
		r.resumeK = func() { p(r, r.finish) }
		// One start event per rank, the exact analogue of Spawn's initial
		// dispatch event on the goroutine runtime.
		k.PostAt(k.Now(), r.stepFn)
	}
}

// runtime resolves the world's configured rank runtime.
func (w *World) runtime() RankRuntime {
	if w.cfg.Runtime == RuntimeGoroutine {
		return RuntimeGoroutine
	}
	return RuntimeContinuation
}

// runProgram drives a Program to completion on a goroutine-backed rank.
// Every primitive executes its blocking form and parks its continuation in
// r.next; this trampoline then runs it, so the program observes the exact
// semantics of a legacy Launch body while keeping the stack flat even for
// unbounded chains of fast-path resumes.
func (r *Rank) runProgram(p Program) {
	finished := false
	p(r, func() { finished = true })
	for !finished {
		k := r.next
		if k == nil {
			panic("mpisim: rank program stalled without a pending continuation")
		}
		r.next = nil
		k()
	}
}

// RunInline drives a continuation-passing body to completion on a
// goroutine-backed rank and blocks until it invokes done.  It lets blocking
// entry points (workload Iterate methods) delegate to their *Then
// implementations without duplicating the logic.
func (r *Rank) RunInline(body func(done Cont)) {
	if r.cps {
		panic("mpisim: RunInline requires a goroutine-backed rank")
	}
	finished := false
	body(func() { finished = true })
	for !finished {
		k := r.next
		if k == nil {
			panic("mpisim: continuation chain stalled without a pending continuation")
		}
		r.next = nil
		k()
	}
}

// step resumes a suspended continuation rank.  It runs as a pooled kernel
// event at exactly the positions the goroutine runtime would dispatch the
// rank's process: the launch event, the expiry of a ComputeThen timer, or
// the completion wake posted by wakeWait.
func (r *Rank) step() {
	k := r.resumeK
	r.resumeK = nil
	// Recycle the requests of the wait we were suspended on — the same point
	// in rank order at which the blocking Wait/WaitAll recycle theirs.
	if len(r.waitReqs) > 0 {
		for i, req := range r.waitReqs {
			r.recycleRequest(req)
			r.waitReqs[i] = nil
		}
		r.waitReqs = r.waitReqs[:0]
	}
	r.run(k)
}

// run drives the trampoline from k until the rank suspends again (a
// primitive stored resumeK and arranged a wake) or its program finishes.
func (r *Rank) run(k Cont) {
	for k != nil {
		k()
		k = r.next
		r.next = nil
	}
}

// wakeWait resumes the rank after a wait completed.  Goroutine ranks wake
// their process (which posts one kernel event if it is parked); continuation
// ranks post their step event directly.  Either way exactly one pooled
// kernel event is posted at the current instant, keeping the two runtimes
// event-for-event identical.  Completions only fire from kernel or lane
// event context, while the rank is suspended, so posting unconditionally is
// safe for a continuation rank.
func (r *Rank) wakeWait() {
	if r.cps {
		k := r.w.m.Kernel()
		k.PostAt(k.Now(), r.stepFn)
		return
	}
	r.proc.Wake()
}

// finish is the done continuation of a continuation-runtime Program: the
// counterpart of the completion bookkeeping in Launch's body wrapper.
func (r *Rank) finish() {
	w := r.w
	w.finished++
	if w.finished == len(w.ranks) {
		w.completedAt = w.m.Kernel().Now()
	}
}

// Done reports whether every rank's body returned.
func (w *World) Done() bool { return w.launched && w.finished == len(w.ranks) }

// CompletionTime returns the virtual time at which the last rank finished.
func (w *World) CompletionTime() (sim.Time, bool) {
	if !w.Done() {
		return 0, false
	}
	return w.completedAt, true
}

// Stats summarizes the world's communication activity.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	Collectives  int64
}

// Stats returns a snapshot of the world's counters.
func (w *World) Stats() Stats {
	return Stats{MessagesSent: w.messagesSent, BytesSent: w.bytesSent, Collectives: w.collectives}
}

// Rank is the per-process handle used by application code.
type Rank struct {
	w    *World
	rank int
	proc *sim.Proc

	unexpected []envelope
	// posted holds receives posted before their message arrived.  The
	// matching pattern is duplicated inline so the arrival scan walks a
	// contiguous slice instead of dereferencing every Request.
	posted []postedRecv

	// wc is the rank's reusable completion-batch counter (see waitCounter).
	wc waitCounter
	// reqFree is the rank's request free list; Wait/WaitAll feed it.
	reqFree []*Request

	collSeq int64

	// Continuation-runtime state (see LaunchProgram).  cps marks a rank with
	// no simulation process: its body runs inline on the kernel goroutine,
	// suspended by storing the rest of the program in resumeK and resumed by
	// a pooled kernel event running stepFn.  next is the trampoline slot: a
	// primitive that completes without suspending parks its continuation here
	// and the driver loop (run / runProgram) invokes it with a flat stack.
	// waitReqs holds the requests of the wait the rank is suspended on, so
	// step can recycle them exactly where the blocking runtime would.
	cps      bool
	stepFn   func()
	next     Cont
	resumeK  Cont
	waitReqs []*Request
}

// newRequest serves a request, preferring the rank's free list.
func (r *Rank) newRequest(src, tag int) *Request {
	if l := len(r.reqFree); l > 0 {
		req := r.reqFree[l-1]
		r.reqFree = r.reqFree[:l-1]
		*req = Request{src: src, tag: tag}
		return req
	}
	return &Request{src: src, tag: tag}
}

// recycleRequest returns a finished request to the rank's free list.
func (r *Rank) recycleRequest(req *Request) { r.reqFree = append(r.reqFree, req) }

// Rank returns the rank index within the world.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Node returns the node the rank is placed on.
func (r *Rank) Node() int { return r.w.nodeOf[r.rank] }

// World returns the world the rank belongs to.
func (r *Rank) World() *World { return r.w }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.w.m.Kernel().Now() }

// Proc returns the underlying simulation process, or nil for a rank running
// on the continuation runtime (which has no process).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Compute occupies the rank's core for d of virtual time.
func (r *Rank) Compute(d sim.Duration) { r.proc.Sleep(d) }

// ComputeCycles occupies the rank's core for the given number of CPU cycles.
func (r *Rank) ComputeCycles(cycles float64) {
	r.proc.Sleep(r.w.m.CyclesToDuration(cycles))
}

// Sleep idles the rank for d of virtual time (identical to Compute in the
// model; the distinct name mirrors usleep calls in the paper's benchmarks).
func (r *Rank) Sleep(d sim.Duration) { r.proc.Sleep(d) }

// checkRank validates a peer rank index.
func (r *Rank) checkRank(peer int) {
	if peer < 0 || peer >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpisim: rank %d out of range [0,%d)", peer, len(r.w.ranks)))
	}
}

// Isend starts a non-blocking send of size bytes to rank dst with the given
// tag and returns its request.
func (r *Rank) Isend(dst, tag, size int) *Request {
	r.checkRank(dst)
	if size <= 0 {
		panic(fmt.Sprintf("mpisim: non-positive message size %d", size))
	}
	w := r.w
	w.messagesSent++
	w.bytesSent += int64(size)
	w.seq++
	env := envelope{src: r.rank, dst: dst, tag: tag, size: size, seq: w.seq}
	req := r.newRequest(0, 0)

	srcNode, dstNode := w.nodeOf[r.rank], w.nodeOf[dst]
	if srcNode == dstNode {
		// Shared-memory path: the sender buffers the message immediately and
		// the payload appears at the receiver after the copy latency.
		env.kind = kindEager
		w.m.Kernel().Call(w.intraNodeDelay(size), w.arriveKernFn, w.getEnv(env))
		req.complete(Status{Source: r.rank, Tag: tag, Size: size})
		return req
	}

	flow := netsim.Flow{Class: w.name, ID: r.rank}
	if size <= w.cfg.EagerThreshold {
		env.kind = kindEager
		if err := w.m.Network().SendMessageCall(srcNode, dstNode, size, flow, w.arriveNetFn, w.getEnv(env)); err != nil {
			panic(fmt.Sprintf("mpisim: eager send failed: %v", err))
		}
		// Eager sends complete locally as soon as the payload is buffered.
		req.complete(Status{Source: r.rank, Tag: tag, Size: size})
		return req
	}

	// Rendezvous: request-to-send first, payload only after clear-to-send.
	env.kind = kindRTS
	w.rendezvous[env.seq] = w.getRendezvous(env, req)
	if err := w.m.Network().SendMessageCall(srcNode, dstNode, w.cfg.ControlBytes, flow, w.arriveNetFn, w.getEnv(env)); err != nil {
		panic(fmt.Sprintf("mpisim: RTS send failed: %v", err))
	}
	return req
}

// Irecv posts a non-blocking receive matching messages from src (or
// AnySource) with the given tag (or AnyTag) and returns its request.
func (r *Rank) Irecv(src, tag int) *Request {
	if src != AnySource {
		r.checkRank(src)
	}
	req := r.newRequest(src, tag)
	// Try to match an already-arrived message first.
	for i, env := range r.unexpected {
		if matches(src, tag, env) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.acceptMatched(env, req)
			return req
		}
	}
	r.posted = append(r.posted, postedRecv{src: src, tag: tag, req: req})
	return req
}

// postedRecv is one pending posted receive: its matching pattern inline plus
// the request it completes.
type postedRecv struct {
	src, tag int
	req      *Request
}

// matches reports whether a posted (src, tag) pair matches an envelope.
func matches(src, tag int, env envelope) bool {
	if src != AnySource && src != env.src {
		return false
	}
	if tag != AnyTag && tag != env.tag {
		return false
	}
	return true
}

// acceptMatched processes a matched envelope for the given receive request.
func (r *Rank) acceptMatched(env envelope, req *Request) {
	w := r.w
	switch env.kind {
	case kindEager:
		req.complete(Status{Source: env.src, Tag: env.tag, Size: env.size})
	case kindRTS:
		// Answer with clear-to-send; the payload is transferred when the CTS
		// reaches the sender.
		st := w.rendezvous[env.seq]
		if st == nil {
			st = w.getRendezvous(env, nil)
			w.rendezvous[env.seq] = st
		}
		st.recvReq = req
		cts := envelope{src: env.dst, dst: env.src, tag: env.tag, size: env.size, kind: kindCTS, seq: env.seq}
		srcNode, dstNode := w.nodeOf[cts.src], w.nodeOf[cts.dst]
		flow := netsim.Flow{Class: w.name, ID: cts.src}
		if srcNode == dstNode {
			w.m.Kernel().Call(w.intraNodeDelay(w.cfg.ControlBytes), w.arriveKernFn, w.getEnv(cts))
			return
		}
		if err := w.m.Network().SendMessageCall(srcNode, dstNode, w.cfg.ControlBytes, flow, w.arriveNetFn, w.getEnv(cts)); err != nil {
			panic(fmt.Sprintf("mpisim: CTS send failed: %v", err))
		}
	default:
		panic("mpisim: unexpected envelope kind in acceptMatched")
	}
}

// arrive delivers an envelope at its destination rank (kernel event context).
func (w *World) arrive(env envelope) {
	switch env.kind {
	case kindEager, kindRTS:
		dst := w.ranks[env.dst]
		for i, pr := range dst.posted {
			if matches(pr.src, pr.tag, env) {
				dst.posted = append(dst.posted[:i], dst.posted[i+1:]...)
				dst.acceptMatched(env, pr.req)
				return
			}
		}
		dst.unexpected = append(dst.unexpected, env)
	case kindCTS:
		// The CTS arrives back at the original sender: stream the payload.
		st := w.rendezvous[env.seq]
		if st == nil {
			panic("mpisim: CTS for unknown rendezvous transfer")
		}
		data := st.env
		srcNode, dstNode := w.nodeOf[data.src], w.nodeOf[data.dst]
		flow := netsim.Flow{Class: w.name, ID: data.src}
		if srcNode == dstNode {
			w.m.Kernel().Call(w.intraNodeDelay(data.size), w.rvDoneKernFn, st)
			return
		}
		if err := w.m.Network().SendMessageCall(srcNode, dstNode, data.size, flow, w.rvDoneNetFn, st); err != nil {
			panic(fmt.Sprintf("mpisim: rendezvous data send failed: %v", err))
		}
	}
}

// rendezvousDone finishes a rendezvous transfer once its payload has been
// delivered: both sides' requests complete and the state is recycled.
func (w *World) rendezvousDone(st *rendezvousState) {
	data := st.env
	delete(w.rendezvous, data.seq)
	sendReq, recvReq := st.sendReq, st.recvReq
	st.sendReq, st.recvReq = nil, nil
	w.rvFree = append(w.rvFree, st)
	status := Status{Source: data.src, Tag: data.tag, Size: data.size}
	if sendReq != nil {
		sendReq.complete(status)
	}
	if recvReq != nil {
		recvReq.complete(status)
	}
}

// intraNodeDelay models a shared-memory transfer of size bytes.
func (w *World) intraNodeDelay(size int) sim.Duration {
	cfg := w.m.Config()
	return cfg.IntraNodeLatency + sim.Duration(float64(size)/cfg.IntraNodeBandwidth*float64(sim.Second))
}

// Wait blocks until the request completes and returns its status.  The
// request is recycled and must not be used afterwards.  A wait on an
// already-complete request never parks (counted in
// sim.Stats.ProcFastResumes).
func (r *Rank) Wait(req *Request) Status {
	if !req.done {
		req.waiter = r
		for !req.done {
			r.proc.Block()
		}
		req.waiter = nil
	} else {
		r.w.m.Kernel().NoteFastResume()
	}
	st := req.status
	r.recycleRequest(req)
	return st
}

// WaitAll blocks until every request completes, waking the process exactly
// once when the last outstanding request finishes.  The requests are
// recycled and must not be used afterwards.  A wait with zero pending
// requests never parks (counted in sim.Stats.ProcFastResumes).
func (r *Rank) WaitAll(reqs ...*Request) {
	c := &r.wc
	c.remaining = 0
	c.rank = r
	for _, req := range reqs {
		if !req.done {
			c.remaining++
			req.counter = c
		}
	}
	if c.remaining == 0 {
		r.w.m.Kernel().NoteFastResume()
	}
	for c.remaining > 0 {
		r.proc.Block()
	}
	c.rank = nil
	for _, req := range reqs {
		r.recycleRequest(req)
	}
}

// Send is a blocking send (Isend + Wait).
func (r *Rank) Send(dst, tag, size int) { r.Wait(r.Isend(dst, tag, size)) }

// Recv is a blocking receive (Irecv + Wait).
func (r *Rank) Recv(src, tag int) Status { return r.Wait(r.Irecv(src, tag)) }

// SendRecv exchanges messages with two peers: it sends size bytes to dst and
// receives from src, overlapping both transfers.
func (r *Rank) SendRecv(dst, sendTag, size, src, recvTag int) Status {
	sreq := r.Isend(dst, sendTag, size)
	rreq := r.Irecv(src, recvTag)
	st := r.Wait(rreq)
	r.Wait(sreq)
	return st
}

// --- Collectives -----------------------------------------------------------

// Tag space reserved for collective operations; application tags should stay
// below collTagBase.
const (
	collTagBase   = 1 << 24
	collTagStride = 1 << 12
)

// collTag derives the tag for step of the current collective invocation.
func (r *Rank) collTag(step int) int {
	return collTagBase + int(r.collSeq)*collTagStride + step
}

// beginCollective advances the collective sequence number (identical on every
// rank because collectives are called in the same order by all ranks).
func (r *Rank) beginCollective() {
	r.collSeq++
	r.w.collectives++
}

// Barrier synchronizes all ranks using the dissemination algorithm.
func (r *Rank) Barrier() {
	r.beginCollective()
	n := r.Size()
	if n == 1 {
		return
	}
	const token = 8
	step := 0
	for dist := 1; dist < n; dist *= 2 {
		dst := (r.rank + dist) % n
		src := (r.rank - dist + n) % n
		sreq := r.Isend(dst, r.collTag(step), token)
		rreq := r.Irecv(src, r.collTag(step))
		r.WaitAll(sreq, rreq)
		step++
	}
}

// Bcast broadcasts size bytes from root to every rank along a binomial tree.
func (r *Rank) Bcast(root, size int) {
	r.beginCollective()
	r.bcastNoSeq(root, size)
}

func (r *Rank) bcastNoSeq(root, size int) {
	n := r.Size()
	if n == 1 || size <= 0 {
		return
	}
	rel := (r.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			r.Recv(src, r.collTag(mask))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			r.Send(dst, r.collTag(mask), size)
		}
		mask >>= 1
	}
}

// Reduce combines size bytes from every rank onto root along a binomial tree.
func (r *Rank) Reduce(root, size int) {
	r.beginCollective()
	r.reduceNoSeq(root, size)
}

func (r *Rank) reduceNoSeq(root, size int) {
	n := r.Size()
	if n == 1 || size <= 0 {
		return
	}
	rel := (r.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			src := rel | mask
			if src < n {
				r.Recv((src+root)%n, r.collTag(mask))
			}
		} else {
			dst := ((rel & ^mask) + root) % n
			r.Send(dst, r.collTag(mask), size)
			break
		}
		mask <<= 1
	}
}

// Allreduce combines size bytes across all ranks and distributes the result
// (implemented as a reduce to rank 0 followed by a broadcast).
func (r *Rank) Allreduce(size int) {
	r.beginCollective()
	r.reduceNoSeq(0, size)
	r.collSeq++
	r.bcastNoSeq(0, size)
}

// Allgather gathers sizePerRank bytes from every rank on every rank using the
// ring algorithm (n-1 steps).
func (r *Rank) Allgather(sizePerRank int) {
	r.beginCollective()
	n := r.Size()
	if n == 1 || sizePerRank <= 0 {
		return
	}
	right := (r.rank + 1) % n
	left := (r.rank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sreq := r.Isend(right, r.collTag(step), sizePerRank)
		rreq := r.Irecv(left, r.collTag(step))
		r.WaitAll(sreq, rreq)
	}
}

// Alltoall exchanges sizePerRank bytes between every pair of ranks using the
// windowed linear-shift pairwise algorithm with the default window of two
// outstanding exchanges, the behaviour of common MPI implementations for all
// but the shortest messages.  The limited window makes the collective
// sensitive to switch latency, which is the behaviour the paper observes for
// the FFT-based applications.
func (r *Rank) Alltoall(sizePerRank int) { r.AlltoallWindowed(sizePerRank, 2) }

// AlltoallWindowed is Alltoall with an explicit bound on the number of
// outstanding pairwise exchanges: window 1 is the fully step-synchronous
// pairwise algorithm (most latency sensitive), window n-1 posts every
// exchange at once (purely bandwidth limited).
func (r *Rank) AlltoallWindowed(sizePerRank, window int) {
	r.beginCollective()
	n := r.Size()
	if n == 1 || sizePerRank <= 0 {
		return
	}
	if window < 1 {
		window = 1
	}
	var inFlight []*Request
	for step := 1; step < n; step++ {
		dst := (r.rank + step) % n
		src := (r.rank - step + n) % n
		inFlight = append(inFlight, r.Irecv(src, r.collTag(step)), r.Isend(dst, r.collTag(step), sizePerRank))
		if len(inFlight) >= 2*window {
			r.WaitAll(inFlight...)
			inFlight = inFlight[:0]
		}
	}
	if len(inFlight) > 0 {
		r.WaitAll(inFlight...)
	}
}
