package mpisim

import (
	"testing"
	"testing/quick"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// testWorld builds a machine with the given node count and a job with
// ranksPerSocket ranks per socket across all nodes.
func testWorld(t testing.TB, seed int64, nodes, ranksPerSocket int) (*cluster.Machine, *World) {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = nodes
	m := cluster.MustNew(k, cfg)
	job, err := m.AllocateSpread("test", ranksPerSocket, nodes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(m, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{EagerThreshold: -1, ControlBytes: 64}).Validate(); err == nil {
		t.Fatal("expected error for negative eager threshold")
	}
	if err := (Config{EagerThreshold: 0, ControlBytes: 0}).Validate(); err == nil {
		t.Fatal("expected error for zero control bytes")
	}
}

func TestNewWorldErrors(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 2
	m := cluster.MustNew(k, cfg)
	if _, err := NewWorld(m, nil, DefaultConfig()); err == nil {
		t.Fatal("expected error for nil job")
	}
	job, _ := m.AllocateSpread("x", 1, 2)
	if _, err := NewWorld(m, job, Config{EagerThreshold: -1, ControlBytes: 1}); err == nil {
		t.Fatal("expected error for bad config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewWorld should panic")
		}
	}()
	MustNewWorld(m, nil, DefaultConfig())
}

func TestPingPongInterNode(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1) // 2 nodes, 2 ranks/node = 4 ranks
	var rtt sim.Duration
	w.Launch(func(r *Rank) {
		const tag = 1
		switch r.Rank() {
		case 0:
			// Rank 0 is on node 0, rank 2 on node 1 (node-major placement).
			start := r.Now()
			r.Send(2, tag, 1024)
			r.Recv(2, tag)
			rtt = r.Now().Sub(start)
		case 2:
			r.Recv(0, tag)
			r.Send(0, tag, 1024)
		}
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("world did not finish")
	}
	if rtt <= 0 {
		t.Fatal("rtt not measured")
	}
	oneWay := rtt / 2
	// The Cab-like idle one-way latency for 1 KB is ~1-2 µs.
	if oneWay < 800*sim.Nanosecond || oneWay > 4*sim.Microsecond {
		t.Fatalf("one-way latency %v outside expected idle range", oneWay)
	}
}

func TestIntraNodeMessageBypassesSwitch(t *testing.T) {
	m, w := testWorld(t, 1, 2, 2) // ranks 0..3 on node 0
	w.Launch(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 7, 4096)
		case 1:
			st := r.Recv(0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Size != 4096 {
				t.Errorf("bad status %+v", st)
			}
		}
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("world did not finish")
	}
	if m.Network().Stats().PacketsDelivered != 0 {
		t.Fatal("intra-node message crossed the switch")
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	const size = 40 * 1024 // CompressionB's message size: above eager threshold
	var recvAt, sendDoneAt sim.Time
	w.Launch(func(r *Rank) {
		switch r.Rank() {
		case 0:
			req := r.Isend(2, 3, size)
			r.Wait(req)
			sendDoneAt = r.Now()
		case 2:
			st := r.Recv(0, 3)
			recvAt = r.Now()
			if st.Size != size {
				t.Errorf("recv size = %d", st.Size)
			}
		}
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("world did not finish")
	}
	if recvAt == 0 || sendDoneAt == 0 {
		t.Fatal("timestamps not recorded")
	}
	// With rendezvous the sender completes no earlier than the data delivery.
	if sendDoneAt < recvAt {
		t.Fatalf("rendezvous send completed (%v) before data delivery (%v)", sendDoneAt, recvAt)
	}
	// The switch must have carried control plus payload bytes.
	st := m.Network().Stats()
	if st.BytesDelivered < int64(size) {
		t.Fatalf("network carried %d bytes, want >= %d", st.BytesDelivered, size)
	}
}

func TestEagerSendCompletesImmediately(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	w.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(2, 1, 512)
			if !req.Done() {
				t.Error("eager Isend should complete locally at once")
			}
		}
		if r.Rank() == 2 {
			r.Recv(0, 1)
		}
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("world did not finish")
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// The send arrives before the receive is posted; the message must be
	// buffered and matched later.
	m, w := testWorld(t, 1, 2, 1)
	var st Status
	w.Launch(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 9, 2048)
		case 2:
			r.Compute(200 * sim.Microsecond) // ensure the message is already there
			st = r.Recv(0, 9)
		}
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("world did not finish")
	}
	if st.Source != 0 || st.Size != 2048 {
		t.Fatalf("status = %+v", st)
	}
}

func TestAnySourceAndAnyTag(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	got := 0
	w.Launch(func(r *Rank) {
		switch r.Rank() {
		case 1, 2, 3:
			r.Send(0, 40+r.Rank(), 256)
		case 0:
			for i := 0; i < 3; i++ {
				st := r.Recv(AnySource, AnyTag)
				got += st.Source
			}
		}
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("world did not finish")
	}
	if got != 1+2+3 {
		t.Fatalf("sum of sources = %d, want 6", got)
	}
}

func TestTagMatchingSelectsRightMessage(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	var first, second Status
	w.Launch(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 1, 100)
			r.Send(2, 2, 200)
		case 2:
			r.Compute(300 * sim.Microsecond)
			// Receive tag 2 first even though tag 1 arrived earlier.
			first = r.Recv(0, 2)
			second = r.Recv(0, 1)
		}
	})
	m.Kernel().Run()
	if first.Size != 200 || second.Size != 100 {
		t.Fatalf("tag matching wrong: first=%+v second=%+v", first, second)
	}
}

func TestSendRecvExchange(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	ok := 0
	w.Launch(func(r *Rank) {
		if r.Rank() == 0 || r.Rank() == 2 {
			peer := 2 - r.Rank()
			st := r.SendRecv(peer, 5, 1024, peer, 5)
			if st.Size == 1024 {
				ok++
			}
		}
	})
	m.Kernel().Run()
	if ok != 2 {
		t.Fatalf("both sides should complete the exchange, ok=%d", ok)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m, w := testWorld(t, 2, 3, 2) // 12 ranks
	var minAfter sim.Time = 1 << 62
	var maxBefore sim.Time
	w.Launch(func(r *Rank) {
		// Stagger arrival into the barrier.
		r.Compute(sim.Duration(r.Rank()) * 50 * sim.Microsecond)
		before := r.Now()
		if before > maxBefore {
			maxBefore = before
		}
		r.Barrier()
		after := r.Now()
		if after < minAfter {
			minAfter = after
		}
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("world did not finish")
	}
	if minAfter < maxBefore {
		t.Fatalf("a rank left the barrier (%v) before the slowest entered (%v)", minAfter, maxBefore)
	}
}

func TestBcastReachesAllRanks(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		m, w := testWorld(t, 3, nodes, 2)
		count := 0
		w.Launch(func(r *Rank) {
			r.Bcast(1, 8192)
			count++
		})
		m.Kernel().Run()
		if !w.Done() {
			t.Fatalf("nodes=%d: bcast deadlocked", nodes)
		}
		if count != w.Size() {
			t.Fatalf("nodes=%d: count=%d want %d", nodes, count, w.Size())
		}
	}
}

func TestReduceAndAllreduceComplete(t *testing.T) {
	m, w := testWorld(t, 4, 3, 2)
	w.Launch(func(r *Rank) {
		r.Reduce(0, 4096)
		r.Allreduce(64)
		r.Allreduce(1024)
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("reduce/allreduce deadlocked")
	}
	if w.Stats().Collectives == 0 {
		t.Fatal("collectives not counted")
	}
}

func TestAllgatherAndAlltoallComplete(t *testing.T) {
	m, w := testWorld(t, 5, 3, 1) // 6 ranks
	w.Launch(func(r *Rank) {
		r.Allgather(2048)
		r.Alltoall(1024)
	})
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("allgather/alltoall deadlocked")
	}
}

func TestAlltoallWindowedVariants(t *testing.T) {
	// Every window size must complete and move the same volume; smaller
	// windows serialize more and therefore cannot be faster than posting
	// everything at once.
	type result struct {
		bytes int64
		at    sim.Time
	}
	runWith := func(window int) result {
		m, w := testWorld(t, 8, 3, 2) // 12 ranks over 3 nodes
		const per = 2048
		w.Launch(func(r *Rank) { r.AlltoallWindowed(per, window) })
		m.Kernel().Run()
		if !w.Done() {
			t.Fatalf("window %d: alltoall did not finish", window)
		}
		at, _ := w.CompletionTime()
		return result{bytes: w.Stats().BytesSent, at: at}
	}
	sync1 := runWith(1)
	sync2 := runWith(2)
	all := runWith(1000)
	if sync1.bytes != sync2.bytes || sync2.bytes != all.bytes {
		t.Fatalf("windowed variants moved different volumes: %d/%d/%d", sync1.bytes, sync2.bytes, all.bytes)
	}
	if sync1.at < all.at {
		t.Fatalf("fully synchronous alltoall (%v) finished before the fully concurrent one (%v)", sync1.at, all.at)
	}
	// Zero/negative window is clamped to 1.
	m, w := testWorld(t, 9, 2, 1)
	w.Launch(func(r *Rank) { r.AlltoallWindowed(512, 0) })
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("clamped window did not finish")
	}
}

func TestAlltoallMovesExpectedVolume(t *testing.T) {
	m, w := testWorld(t, 6, 2, 2) // 8 ranks over 2 nodes
	const per = 4096
	w.Launch(func(r *Rank) { r.Alltoall(per) })
	m.Kernel().Run()
	if !w.Done() {
		t.Fatal("alltoall did not finish")
	}
	n := int64(w.Size())
	wantTotal := n * (n - 1) * per
	if got := w.Stats().BytesSent; got != wantTotal {
		t.Fatalf("bytes sent = %d, want %d", got, wantTotal)
	}
	// Only the inter-node portion crosses the switch: ranks 0-3 on node 0,
	// 4-7 on node 1, so 2*4*4 ordered pairs cross.
	crossPairs := int64(2 * 4 * 4)
	netBytes := m.Network().Stats().BytesDelivered
	if netBytes < crossPairs*per {
		t.Fatalf("network carried %d bytes, want >= %d", netBytes, crossPairs*per)
	}
}

func TestSingleRankCollectivesNoop(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 2
	m := cluster.MustNew(k, cfg)
	job, err := m.AllocateSpread("solo", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Trim to a single rank.
	job.Placements = job.Placements[:1]
	w := MustNewWorld(m, job, DefaultConfig())
	w.Launch(func(r *Rank) {
		r.Barrier()
		r.Bcast(0, 100)
		r.Reduce(0, 100)
		r.Allreduce(100)
		r.Allgather(100)
		r.Alltoall(100)
	})
	k.Run()
	if !w.Done() {
		t.Fatal("single-rank collectives deadlocked")
	}
}

func TestLaunchTwicePanics(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	w.Launch(func(r *Rank) {})
	m.Kernel().Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Launch")
		}
	}()
	w.Launch(func(r *Rank) {})
}

func TestInvalidRankPanics(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	w.Launch(func(r *Rank) {
		if r.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range destination")
			}
			// Re-panic with the kernel's kill value is not needed; just
			// return normally so the world can finish.
		}()
		r.Isend(99, 0, 10)
	})
	m.Kernel().Run()
}

func TestCompletionTime(t *testing.T) {
	m, w := testWorld(t, 1, 2, 1)
	if _, ok := w.CompletionTime(); ok {
		t.Fatal("completion time available before launch")
	}
	w.Launch(func(r *Rank) {
		r.Compute(sim.Duration(r.Rank()+1) * sim.Millisecond)
	})
	m.Kernel().Run()
	at, ok := w.CompletionTime()
	if !ok {
		t.Fatal("completion time missing")
	}
	if at != sim.Time(4*sim.Millisecond) {
		t.Fatalf("completion at %v, want 4ms", at)
	}
}

func TestTwoWorldsShareTheSwitch(t *testing.T) {
	// Two jobs placed on disjoint cores of the same nodes communicate
	// concurrently; both must finish and both contribute traffic.
	k := sim.NewKernel(9)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 4
	m := cluster.MustNew(k, cfg)
	jobA, err := m.AllocateSpread("A", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := m.AllocateSpread("B", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	wa := MustNewWorld(m, jobA, DefaultConfig())
	wb := MustNewWorld(m, jobB, DefaultConfig())
	body := func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Alltoall(2048)
			r.Compute(10 * sim.Microsecond)
		}
	}
	wa.Launch(body)
	wb.Launch(body)
	k.Run()
	if !wa.Done() || !wb.Done() {
		t.Fatal("co-running worlds did not finish")
	}
	st := m.Network().Stats()
	if st.BytesByClass["A"] == 0 || st.BytesByClass["B"] == 0 {
		t.Fatalf("both classes should appear in switch traffic: %v", st.BytesByClass)
	}
}

func TestDeterministicCompletion(t *testing.T) {
	run := func() sim.Time {
		m, w := testWorld(t, 77, 3, 2)
		w.Launch(func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Alltoall(1500)
				r.Allreduce(64)
			}
		})
		m.Kernel().Run()
		at, _ := w.CompletionTime()
		return at
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic completion: %v vs %v", a, b)
	}
}

// Property: for any mix of eager and rendezvous message sizes sent from rank
// 0 to rank (size/2), every receive completes with the matching size.
func TestPointToPointSizesProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		sizes := make([]int, len(raw))
		for i, r := range raw {
			sizes[i] = int(r)%60000 + 1 // spans eager and rendezvous
		}
		m, w := testWorld(t, 21, 2, 1)
		okAll := true
		w.Launch(func(r *Rank) {
			switch r.Rank() {
			case 0:
				for i, s := range sizes {
					r.Send(2, 100+i, s)
				}
			case 2:
				for i, s := range sizes {
					st := r.Recv(0, 100+i)
					if st.Size != s {
						okAll = false
					}
				}
			}
		})
		m.Kernel().Run()
		return okAll && w.Done()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlltoall16Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		cfg := cluster.CabConfig()
		cfg.Net.Nodes = 4
		m := cluster.MustNew(k, cfg)
		job, err := m.AllocateSpread("bench", 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		w := MustNewWorld(m, job, DefaultConfig())
		w.Launch(func(r *Rank) { r.Alltoall(4096) })
		k.Run()
		if !w.Done() {
			b.Fatal("alltoall did not finish")
		}
	}
}
