package mpisim

import "github.com/hpcperf/switchprobe/internal/sim"

// This file holds the continuation-passing (*Then) forms of the rank
// primitives and collectives.  Each mirrors its blocking counterpart
// operation for operation — same sends, same receives, same tags, same wait
// batching — so a Program produces the byte-identical simulation schedule a
// legacy Launch body would.  Only the three leaf primitives (ComputeThen,
// WaitThen, WaitAllThen) dispatch on the runtime: on a goroutine rank they
// execute the blocking form and park the continuation in the trampoline
// slot; on a continuation rank they suspend by storing resumeK and arranging
// a wake event.  Everything above them (SendThen, the collectives) is a
// single implementation shared by both runtimes.

// Continue parks k as the rank's next trampoline step, running it after the
// caller returns with a flat stack.  Structural no-op branches of a Program
// (an empty exchange, a skipped phase) use it instead of invoking k directly,
// which would grow the stack by one frame per consecutive no-op.
func (r *Rank) Continue(k Cont) { r.next = k }

// ComputeThen occupies the rank's core for d of virtual time, then continues
// with k.  A zero-length compute with nothing else ordered at the current
// instant resumes inline (see sim.Kernel.InstantIdle); both runtimes apply
// the same guard at the same position, so they stay schedule-identical.
func (r *Rank) ComputeThen(d sim.Duration, k Cont) {
	if !r.cps {
		r.Compute(d)
		r.next = k
		return
	}
	if d < 0 {
		d = 0
	}
	kern := r.w.m.Kernel()
	if d == 0 && kern.InstantIdle() {
		kern.NoteFastResume()
		r.next = k
		return
	}
	// The exact analogue of Proc.Sleep: one pooled kernel event at now+d
	// resumes the rank.
	kern.PostAt(kern.Now().Add(d), r.stepFn)
	r.resumeK = k
}

// SleepThen idles the rank for d of virtual time, then continues with k
// (identical to ComputeThen in the model, mirroring Sleep vs Compute).
func (r *Rank) SleepThen(d sim.Duration, k Cont) { r.ComputeThen(d, k) }

// ComputeCyclesThen occupies the rank's core for the given number of CPU
// cycles, then continues with k.
func (r *Rank) ComputeCyclesThen(cycles float64, k Cont) {
	r.ComputeThen(r.w.m.CyclesToDuration(cycles), k)
}

// WaitThen waits for req to complete, then continues with k.  Like Wait it
// recycles the request; the status is discarded (use blocking Wait from a
// goroutine body when the status matters).  A wait on an already-complete
// request continues inline without parking.
func (r *Rank) WaitThen(req *Request, k Cont) {
	if !r.cps {
		r.Wait(req)
		r.next = k
		return
	}
	if req.done {
		r.w.m.Kernel().NoteFastResume()
		r.recycleRequest(req)
		r.next = k
		return
	}
	req.waiter = r
	r.waitReqs = append(r.waitReqs[:0], req)
	r.resumeK = k
}

// WaitAllThen waits for every request to complete — waking the rank at most
// once, like WaitAll — then continues with k.  The requests are recycled
// before k runs.  A wait with zero pending requests continues inline without
// parking.
func (r *Rank) WaitAllThen(k Cont, reqs ...*Request) {
	if !r.cps {
		r.WaitAll(reqs...)
		r.next = k
		return
	}
	c := &r.wc
	c.remaining = 0
	c.rank = r
	for _, req := range reqs {
		if !req.done {
			c.remaining++
			req.counter = c
		}
	}
	if c.remaining == 0 {
		c.rank = nil
		r.w.m.Kernel().NoteFastResume()
		for _, req := range reqs {
			r.recycleRequest(req)
		}
		r.next = k
		return
	}
	// waitReqs copies the slice: callers may reuse their backing array (the
	// windowed alltoall does) before the wake fires.
	r.waitReqs = append(r.waitReqs[:0], reqs...)
	r.resumeK = k
}

// SendThen is a blocking send (Isend + wait), then k.
func (r *Rank) SendThen(dst, tag, size int, k Cont) { r.WaitThen(r.Isend(dst, tag, size), k) }

// RecvThen is a blocking receive (Irecv + wait), then k; the receive status
// is discarded.
func (r *Rank) RecvThen(src, tag int, k Cont) { r.WaitThen(r.Irecv(src, tag), k) }

// SendRecvThen exchanges messages with two peers — sends size bytes to dst
// and receives from src, overlapping both transfers — then continues with k.
func (r *Rank) SendRecvThen(dst, sendTag, size, src, recvTag int, k Cont) {
	sreq := r.Isend(dst, sendTag, size)
	rreq := r.Irecv(src, recvTag)
	// Same wait order as SendRecv: receive first, then the send.
	r.WaitThen(rreq, func() { r.WaitThen(sreq, k) })
}

// --- Continuation-passing collectives --------------------------------------

// BarrierThen synchronizes all ranks using the dissemination algorithm, then
// continues with k.
func (r *Rank) BarrierThen(k Cont) {
	r.beginCollective()
	n := r.Size()
	if n == 1 {
		r.next = k
		return
	}
	const token = 8
	step := 0
	dist := 1
	var loop Cont
	loop = func() {
		if dist >= n {
			r.next = k
			return
		}
		dst := (r.rank + dist) % n
		src := (r.rank - dist + n) % n
		sreq := r.Isend(dst, r.collTag(step), token)
		rreq := r.Irecv(src, r.collTag(step))
		step++
		dist *= 2
		r.WaitAllThen(loop, sreq, rreq)
	}
	r.next = loop
}

// BcastThen broadcasts size bytes from root to every rank along a binomial
// tree, then continues with k.
func (r *Rank) BcastThen(root, size int, k Cont) {
	r.beginCollective()
	r.bcastNoSeqThen(root, size, k)
}

func (r *Rank) bcastNoSeqThen(root, size int, k Cont) {
	n := r.Size()
	if n == 1 || size <= 0 {
		r.next = k
		return
	}
	rel := (r.rank - root + n) % n
	mask := 1
	// send walks the remaining masks downward, sending to each subtree child;
	// it is re-entered after every completed send.
	var send Cont
	send = func() {
		for mask > 0 {
			m := mask
			mask >>= 1
			if rel+m < n {
				dst := (rel + m + root) % n
				r.SendThen(dst, r.collTag(m), size, send)
				return
			}
		}
		r.next = k
	}
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			tag := r.collTag(mask)
			r.RecvThen(src, tag, func() {
				mask >>= 1
				send()
			})
			return
		}
		mask <<= 1
	}
	mask >>= 1
	send()
}

// ReduceThen combines size bytes from every rank onto root along a binomial
// tree, then continues with k.
func (r *Rank) ReduceThen(root, size int, k Cont) {
	r.beginCollective()
	r.reduceNoSeqThen(root, size, k)
}

func (r *Rank) reduceNoSeqThen(root, size int, k Cont) {
	n := r.Size()
	if n == 1 || size <= 0 {
		r.next = k
		return
	}
	rel := (r.rank - root + n) % n
	mask := 1
	var loop Cont
	loop = func() {
		for mask < n {
			m := mask
			if rel&m == 0 {
				src := rel | m
				mask <<= 1
				if src < n {
					r.RecvThen((src+root)%n, r.collTag(m), loop)
					return
				}
				continue
			}
			dst := ((rel &^ m) + root) % n
			r.SendThen(dst, r.collTag(m), size, k)
			return
		}
		r.next = k
	}
	loop()
}

// AllreduceThen combines size bytes across all ranks and distributes the
// result (a reduce to rank 0 followed by a broadcast), then continues with k.
func (r *Rank) AllreduceThen(size int, k Cont) {
	r.beginCollective()
	r.reduceNoSeqThen(0, size, func() {
		r.collSeq++
		r.bcastNoSeqThen(0, size, k)
	})
}

// AllgatherThen gathers sizePerRank bytes from every rank on every rank
// using the ring algorithm (n-1 steps), then continues with k.
func (r *Rank) AllgatherThen(sizePerRank int, k Cont) {
	r.beginCollective()
	n := r.Size()
	if n == 1 || sizePerRank <= 0 {
		r.next = k
		return
	}
	right := (r.rank + 1) % n
	left := (r.rank - 1 + n) % n
	step := 0
	var loop Cont
	loop = func() {
		if step >= n-1 {
			r.next = k
			return
		}
		sreq := r.Isend(right, r.collTag(step), sizePerRank)
		rreq := r.Irecv(left, r.collTag(step))
		step++
		r.WaitAllThen(loop, sreq, rreq)
	}
	loop()
}

// AlltoallThen exchanges sizePerRank bytes between every pair of ranks using
// the windowed pairwise algorithm with the default window of two outstanding
// exchanges (see Alltoall), then continues with k.
func (r *Rank) AlltoallThen(sizePerRank int, k Cont) { r.AlltoallWindowedThen(sizePerRank, 2, k) }

// AlltoallWindowedThen is AlltoallThen with an explicit bound on the number
// of outstanding pairwise exchanges (see AlltoallWindowed).
func (r *Rank) AlltoallWindowedThen(sizePerRank, window int, k Cont) {
	r.beginCollective()
	n := r.Size()
	if n == 1 || sizePerRank <= 0 {
		r.next = k
		return
	}
	if window < 1 {
		window = 1
	}
	var inFlight []*Request
	step := 1
	var loop Cont
	loop = func() {
		inFlight = inFlight[:0]
		for step < n {
			dst := (r.rank + step) % n
			src := (r.rank - step + n) % n
			inFlight = append(inFlight, r.Irecv(src, r.collTag(step)), r.Isend(dst, r.collTag(step), sizePerRank))
			step++
			if len(inFlight) >= 2*window {
				r.WaitAllThen(loop, inFlight...)
				return
			}
		}
		if len(inFlight) > 0 {
			r.WaitAllThen(k, inFlight...)
			return
		}
		r.next = k
	}
	loop()
}
