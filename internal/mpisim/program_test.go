package mpisim

import (
	"reflect"
	"testing"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// exerciseProgram is a Program touching every continuation-passing primitive
// and collective: compute (including the zero-length fast path), eager and
// rendezvous point-to-point transfers, intra-node transfers, send/recv
// exchange, waits on already-done requests, zero-pending batch waits and the
// full collective set.
func exerciseProgram(r *Rank, done Cont) {
	n := r.Size()
	far := (r.Rank() + n/2) % n // cross-node peer (node-major placement)
	near := r.Rank() ^ 1        // same-node peer
	r.ComputeThen(5*sim.Microsecond, func() {
		r.BarrierThen(func() {
			// Rendezvous-sized exchange with the cross-node peer.
			sreq := r.Isend(far, 7, 64*1024)
			rreq := r.Irecv(far, 7)
			r.WaitAllThen(func() {
				// Intra-node eager send: completes at Isend, so the wait
				// takes the already-done fast path.
				r.SendThen(near, 8, 512, func() {
					r.RecvThen(near, 8, func() {
						r.SendRecvThen(far, 9, 1024, far, 9, func() {
							r.AlltoallThen(512, func() {
								r.AllreduceThen(256, func() {
									r.AllgatherThen(128, func() {
										r.BcastThen(0, 2048, func() {
											r.ReduceThen(0, 2048, func() {
												// Zero-length compute and an
												// empty batch wait: both
												// non-parking fast paths.
												r.ComputeThen(0, func() {
													r.WaitAllThen(done)
												})
											})
										})
									})
								})
							})
						})
					})
				})
			}, sreq, rreq)
		})
	})
}

// exerciseBlocking is the blocking transcription of exerciseProgram, used to
// pin the continuation primitives against the legacy Launch path.
func exerciseBlocking(r *Rank) {
	n := r.Size()
	far := (r.Rank() + n/2) % n
	near := r.Rank() ^ 1
	r.Compute(5 * sim.Microsecond)
	r.Barrier()
	sreq := r.Isend(far, 7, 64*1024)
	rreq := r.Irecv(far, 7)
	r.WaitAll(sreq, rreq)
	r.Send(near, 8, 512)
	r.Recv(near, 8)
	r.SendRecv(far, 9, 1024, far, 9)
	r.Alltoall(512)
	r.Allreduce(256)
	r.Allgather(128)
	r.Bcast(0, 2048)
	r.Reduce(0, 2048)
	r.Compute(0)
	r.WaitAll()
}

type campaignResult struct {
	completedAt sim.Time
	world       Stats
	kernel      sim.Stats
}

// runExerciseCampaign runs the exercise workload on a fresh machine under
// the given launch mode: "continuation" and "goroutine" use LaunchProgram
// with the corresponding Config.Runtime, "legacy" uses World.Launch with the
// blocking transcription.
func runExerciseCampaign(t *testing.T, mode string) campaignResult {
	t.Helper()
	k := sim.NewKernel(42)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 4
	m := cluster.MustNew(k, cfg)
	job, err := m.AllocateSpread("prog", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := DefaultConfig()
	if mode == "goroutine" {
		mcfg.Runtime = RuntimeGoroutine
	}
	w := MustNewWorld(m, job, mcfg)
	if mode == "legacy" {
		w.Launch(exerciseBlocking)
	} else {
		w.LaunchProgram(exerciseProgram)
	}
	k.Run()
	if !w.Done() {
		t.Fatalf("%s: world did not complete", mode)
	}
	at, _ := w.CompletionTime()
	return campaignResult{completedAt: at, world: w.Stats(), kernel: k.Stats()}
}

// TestProgramRuntimesByteIdentical pins the tentpole invariant: the same
// Program produces the identical simulation schedule on the continuation and
// goroutine runtimes — same completion time, same world counters, and
// identical kernel counters (events scheduled/fired/pooled/elided and fast
// resumes) except for ProcSwitches, which only the goroutine runtime incurs.
func TestProgramRuntimesByteIdentical(t *testing.T) {
	cont := runExerciseCampaign(t, "continuation")
	goro := runExerciseCampaign(t, "goroutine")
	legacy := runExerciseCampaign(t, "legacy")

	if cont.completedAt != goro.completedAt || cont.completedAt != legacy.completedAt {
		t.Fatalf("completion times diverge: continuation=%v goroutine=%v legacy=%v",
			cont.completedAt, goro.completedAt, legacy.completedAt)
	}
	if cont.world != goro.world || cont.world != legacy.world {
		t.Fatalf("world stats diverge: continuation=%+v goroutine=%+v legacy=%+v",
			cont.world, goro.world, legacy.world)
	}
	if cont.kernel.ProcSwitches != 0 {
		t.Fatalf("continuation runtime made %d proc switches, want 0", cont.kernel.ProcSwitches)
	}
	if goro.kernel.ProcSwitches == 0 {
		t.Fatal("goroutine runtime made no proc switches; test is not exercising parking")
	}
	if cont.kernel.ProcFastResumes == 0 {
		t.Fatal("exercise took no non-parking fast paths; test is not exercising them")
	}
	normalize := func(s sim.Stats) sim.Stats { s.ProcSwitches = 0; return s }
	if a, b := normalize(cont.kernel), normalize(goro.kernel); !reflect.DeepEqual(a, b) {
		t.Fatalf("kernel stats diverge (modulo ProcSwitches):\ncontinuation: %+v\ngoroutine:    %+v", a, b)
	}
	if a, b := normalize(cont.kernel), normalize(legacy.kernel); !reflect.DeepEqual(a, b) {
		t.Fatalf("kernel stats diverge vs legacy Launch (modulo ProcSwitches):\ncontinuation: %+v\nlegacy:       %+v", a, b)
	}
}

// TestParseRankRuntime covers CLI validation values.
func TestParseRankRuntime(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RankRuntime
		ok   bool
	}{
		{"", RuntimeContinuation, true},
		{"continuation", RuntimeContinuation, true},
		{"goroutine", RuntimeGoroutine, true},
		{"threads", "", false},
	} {
		got, err := ParseRankRuntime(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseRankRuntime(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	bad := DefaultConfig()
	bad.Runtime = "threads"
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted unknown runtime")
	}
}

// TestProgramFastResumeCounting pins that each non-parking fast path counts
// exactly once in sim.Stats.ProcFastResumes, on both runtimes.
func TestProgramFastResumeCounting(t *testing.T) {
	for _, mode := range []string{"continuation", "goroutine"} {
		k := sim.NewKernel(7)
		cfg := cluster.CabConfig()
		cfg.Net.Nodes = 2
		m := cluster.MustNew(k, cfg)
		job, err := m.AllocateSpread("fast", 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		mcfg := DefaultConfig()
		if mode == "goroutine" {
			mcfg.Runtime = RuntimeGoroutine
		}
		w := MustNewWorld(m, job, mcfg)
		w.LaunchProgram(func(r *Rank, done Cont) {
			if r.Rank() != 0 {
				done()
				return
			}
			near := 1 // same node (node-major placement)
			// Step past t=0 first, so the other ranks' start events are gone
			// and the zero-length compute below sees an idle instant.
			r.ComputeThen(10*sim.Microsecond, func() {
				// Intra-node eager send completes at Isend: wait is a fast
				// resume.
				req := r.Isend(near, 1, 64)
				r.WaitThen(req, func() {
					// Empty batch wait: a fast resume.
					r.WaitAllThen(func() {
						// Zero-length compute with an idle instant: a fast
						// resume.
						r.ComputeThen(0, done)
					})
				})
			})
		})
		k.Run()
		if !w.Done() {
			t.Fatalf("%s: world did not complete", mode)
		}
		// Rank 1 never posts the matching receive; the eager payload sits in
		// its unexpected queue, which is fine for this test.
		if got := k.Stats().ProcFastResumes; got != 3 {
			t.Errorf("%s: ProcFastResumes = %d, want 3", mode, got)
		}
	}
}

// TestShutdownMixedRuntimes covers the kill handshake over a mixed
// population: parked goroutine ranks (a legacy Launch world) and suspended
// continuation ranks (a LaunchProgram world) on one kernel, with worker
// parallelism enabled in the network — Shutdown must unwind both cleanly.
func TestShutdownMixedRuntimes(t *testing.T) {
	k := sim.NewKernel(11)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 4
	cfg.Net.Workers = 2
	m := cluster.MustNew(k, cfg)

	jobA, err := m.AllocateSpread("cps", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	wA := MustNewWorld(m, jobA, DefaultConfig())
	wA.LaunchProgram(func(r *Rank, _ Cont) {
		peer := (r.Rank() + 2) % r.Size()
		var loop Cont
		loop = func() {
			r.ComputeThen(3*sim.Microsecond, func() {
				r.SendRecvThen(peer, 5, 4096, peer, 5, loop)
			})
		}
		loop()
	})

	gcfg := DefaultConfig()
	gcfg.Runtime = RuntimeGoroutine
	jobB, err := m.AllocateSpread("goro", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	wB := MustNewWorld(m, jobB, gcfg)
	wB.LaunchProgram(func(r *Rank, _ Cont) {
		peer := (r.Rank() + 1) % r.Size()
		var loop Cont
		loop = func() {
			r.ComputeThen(2*sim.Microsecond, func() {
				r.SendThen(peer, 6, 1024, func() {
					r.RecvThen((r.Rank()-1+r.Size())%r.Size(), 6, loop)
				})
			})
		}
		loop()
	})

	// A rank parked forever on a receive that never arrives: Shutdown must
	// kill it without deadlocking.
	jobC, err := m.AllocateSpread("stuck", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wC := MustNewWorld(m, jobC, gcfg)
	wC.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 99)
		}
	})

	k.RunUntil(sim.Time(2 * sim.Millisecond))
	k.Shutdown()

	if wA.Done() || wB.Done() {
		t.Fatal("endless worlds should not report Done")
	}
	if wA.Stats().MessagesSent == 0 || wB.Stats().MessagesSent == 0 {
		t.Fatal("both worlds should have made progress before shutdown")
	}
}
