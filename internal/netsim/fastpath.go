// Cut-through fast path: per-hop packet events run on a deferred lane
// instead of the kernel heap.
//
// The per-hop machinery in netsim.go needs 2–3 scheduled events per packet
// per hop (uplink done, per-port arrive + done, deliver).  Pushing each one
// through the kernel — event struct, heap insert, heap pop, dispatch — is
// the dominant cost of a cold simulation run.  The fast path removes almost
// all of that traffic from the kernel: pipeline events are queued on a
// netsim-private lane (a small, cache-hot heap of plain values) that the
// kernel drains inline through the sim.AuxQueue hook, so an N-packet train
// crossing an uncontended stretch costs the kernel O(1) scheduled events
// (its completion delivery) instead of O(N·hops).
//
// Equivalence, not approximation.  The lane is not a model shortcut — it
// executes the identical handlers, in the identical global order, drawing
// the per-hop fabric delays from the same RNG stream at the same points.
// Three invariants make the schedule byte-identical to the slow path's:
//
//  1. Real sequence numbers.  Every lane entry is stamped with a sequence
//     number from the kernel's own counter (Kernel.AllocSeq) at the moment
//     the slow path would have scheduled it.  Lane entries and kernel events
//     therefore stay totally ordered by (time, seq), with exactly the
//     tie-breaks the slow path would have produced.
//  2. Ordered draining.  Lane entries execute exactly when the global order
//     reaches them: the kernel drains the lane through the AuxQueue hook
//     before dispatching any event ordered after the lane's head (and before
//     going idle or stopping at a RunUntil deadline), and every externally
//     callable netsim entry point — message injection, statistics reads,
//     observer registration — additionally drains entries ordered before the
//     current event's own (time, seq) position.  No external code can ever
//     observe lane-managed state mid-flight.
//  3. A true clock.  The drain advances the kernel clock to each entry's
//     timestamp before executing it (Kernel.LaneDispatch), so deliveries —
//     which run user callbacks: probe onDeliver, message completions,
//     observers — see exactly the virtual clock they would have seen as
//     kernel events, and anything they schedule or inject lands at exactly
//     the right position in the order.
package netsim

import (
	"github.com/hpcperf/switchprobe/internal/sim"
)

// laneEvent kinds name the pipeline stage a deferred event re-enters; the
// drain loop dispatches on the kind, so entries carry no function pointer.
// The first four belong to the strict pipeline; the laneRelaxed* kinds are
// the only deferred work the relaxed mode (relaxed.go) schedules: the shared
// parked-NIC advance, user-visible deliveries, per-message completions, and
// port waiter wakes.
const (
	laneUplinkDone uint8 = iota
	laneArrive
	lanePortDone
	laneDeliver
	laneRelaxedAdvance
	laneRelaxedDeliver
	laneRelaxedComplete
	laneRelaxedPortWake
	laneRelaxedBatch
)

// The lane packs an entry's (time, seq) key into one uint64 — timestamp in
// the high bits, sequence number in the low laneSeqBits — so heap ordering is
// a single integer compare.  The packing holds while the virtual clock stays
// under 2^36 ns (≈ 68 virtual seconds, far beyond any measurement window)
// and per-kernel sequence numbers stay under 2^28; an event outside either
// range simply becomes a real kernel event (post falls back), which the
// drain-order machinery handles like any other kernel event.
const (
	laneSeqBits = 28
	laneMaxAt   = sim.Time(1)<<(64-laneSeqBits) - 1
	laneMaxSeq  = uint64(1)<<laneSeqBits - 1
)

// laneKey packs (at, seq) into the lane's single-compare ordering key,
// clamping out-of-range components.  Clamping keeps comparisons exact:
// lane entries always carry strictly in-range timestamps and sequence
// numbers (push falls back to a kernel event otherwise), so an entry orders
// below a clamped limit exactly when it orders below the true (at, seq).
func laneKey(at sim.Time, seq uint64) uint64 {
	if at > laneMaxAt {
		return ^uint64(0)
	}
	if seq > laneMaxSeq {
		seq = laneMaxSeq
	}
	return uint64(at)<<laneSeqBits | seq
}

// laneEvent is one deferred pipeline event: a 24-byte value with a
// single-word ordering key, so heap sifts are one compare and a small move.
// aux carries the NIC index for relaxed-mode kick entries (which have no
// packet); it packs into the padding after kind, keeping the 24-byte size.
type laneEvent struct {
	key  uint64
	p    *packet
	kind uint8
	aux  int32
}

// lane is the deferred event queue: a 4-ary min-heap of pipeline events
// keyed by (time, seq), mirroring the kernel's ordering.  It lives on the
// Network and reuses its backing array, so steady-state traffic allocates
// nothing.
type lane struct {
	events []laneEvent
	// active marks a drain in progress, so re-entrant guard calls (a message
	// completion sending a new message mid-drain) are no-ops: the drain loop
	// itself already executes entries in global order.
	active bool
}

// empty reports whether the lane holds no entries.
func (l *lane) empty() bool { return len(l.events) == 0 }

// minKey returns the key of the earliest entry; the lane must be non-empty.
func (l *lane) minKey() uint64 { return l.events[0].key }

const laneArity = 4

func (l *lane) push(e laneEvent) {
	h := append(l.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / laneArity
		if h[i].key >= h[parent].key {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	l.events = h
}

func (l *lane) pop() laneEvent {
	h := l.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = laneEvent{}
	h = h[:n]
	i := 0
	for {
		first := laneArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + laneArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].key < h[best].key {
				best = c
			}
		}
		if h[best].key >= h[i].key {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	l.events = h
	return top
}

// SetFastPath enables or disables the cut-through fast path.  It is on by
// default (or off for the whole process when SWITCHPROBE_NO_CUTTHROUGH is
// set).  Simulated schedules are byte-identical either way — the switch
// exists for regression tests and debugging.  It must be called before the
// network carries traffic: toggling mid-flight would strand or reorder
// deferred events.
func (n *Network) SetFastPath(enabled bool) {
	if !n.lane.empty() {
		panic("netsim: SetFastPath called with packets in flight")
	}
	if enabled == n.fastOn {
		return
	}
	if enabled {
		if err := n.k.SetAux(n); err != nil {
			panic("netsim: " + err.Error())
		}
	} else {
		_ = n.k.SetAux(nil)
	}
	n.fastOn = enabled
}

// FastPathEnabled reports whether the cut-through fast path is active.
func (n *Network) FastPathEnabled() bool { return n.fastOn }

// post schedules a pipeline event.  With the fast path on it goes to the
// deferred lane, stamped with a real kernel sequence number; otherwise — or
// for the rare event outside the packed-key range — it is a plain kernel
// event, which the drain-order machinery handles like any other.  All
// per-hop handlers and deliveries schedule through here (with matching kind
// and callback), so the same code drives both paths.
func (n *Network) post(d sim.Duration, kind uint8, fn func(any), p *packet) {
	if !n.fastOn {
		n.k.Call(d, fn, p)
		return
	}
	at := n.k.Now().Add(d)
	if at >= laneMaxAt || n.k.NextSeq() >= laneMaxSeq {
		n.k.CallAt(at, fn, p)
		return
	}
	n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: kind, p: p})
}

// postDeliver schedules a packet's final delivery.  Deliveries run user
// code — probe callbacks, message completions, observers — but they too
// stay on the lane: the drain advances the kernel clock to each entry's
// timestamp, so callbacks observe exactly the clock and state they would
// have seen under a kernel event.
func (n *Network) postDeliver(d sim.Duration, p *packet) {
	n.post(d, laneDeliver, n.deliverFn, p)
}

// exec runs one drained lane entry through its pipeline stage.
func (n *Network) exec(ev *laneEvent) {
	switch ev.kind {
	case laneUplinkDone:
		n.uplinkDone(ev.p)
	case laneArrive:
		n.arrive(ev.p)
	case lanePortDone:
		n.portDone(ev.p)
	case laneRelaxedAdvance:
		n.advance(ev.aux)
	case laneRelaxedPortWake:
		n.relaxedPortWake(n.ports[ev.aux])
	case laneRelaxedBatch:
		n.drainBatch()
	case laneRelaxedDeliver:
		n.relaxedDeliver(ev.p, sim.Time(ev.key>>laneSeqBits))
	case laneRelaxedComplete:
		n.relaxedComplete(ev.p, sim.Time(ev.key>>laneSeqBits))
	default:
		n.deliverAt(ev.p, sim.Time(ev.key>>laneSeqBits))
	}
}

// DrainBefore implements sim.AuxQueue: it executes every lane entry strictly
// ordered before the (at, seq) position and not past the deadline, in
// (time, seq) order, and reports whether any entry ran.  Handlers executed
// here schedule follow-up work relative to the entry's own timestamp (see
// clock), so batching never skews the simulated schedule.  Because executing
// an entry can schedule a real kernel event (a barrier delivery) ordered
// before the lane's next entry, the limit is re-clamped against the kernel's
// next event key after every entry; the kernel then dispatches that event
// before handing the lane its next turn.
func (n *Network) DrainBefore(at sim.Time, seq uint64, deadline sim.Time) bool {
	l := &n.lane
	if l.empty() {
		return false
	}
	// Fold the deadline into the packed limit: entries past the deadline
	// must not run even if they are ordered before the next kernel event.
	limit := laneKey(at, seq)
	if deadline < at {
		limit = laneKey(deadline+1, 0)
	}
	if kat, kseq, ok := n.k.NextEventKey(); ok {
		if k := laneKey(kat, kseq); k < limit {
			limit = k
		}
	}
	if l.minKey() >= limit {
		return false
	}
	l.active = true
	var drained int64
	gen := n.k.PostGen()
	for {
		ev := l.pop()
		n.k.LaneDispatch(sim.Time(ev.key>>laneSeqBits), ev.key&laneMaxSeq)
		drained++
		n.exec(&ev)
		if l.empty() {
			break
		}
		// Executing the entry may have scheduled a real kernel event ordered
		// before the lane's next one; tighten the limit if so.
		if g := n.k.PostGen(); g != gen {
			gen = g
			if kat, kseq, ok := n.k.NextEventKey(); ok {
				if k := laneKey(kat, kseq); k < limit {
					limit = k
				}
			}
		}
		if l.minKey() >= limit {
			break
		}
	}
	l.active = false
	n.cutThroughEvents += drained
	n.k.NoteElided(uint64(drained))
	return true
}

// PeekKey implements sim.AuxPeeker: it reports the (time, seq) key of the
// lane's earliest deferred entry, so the kernel's InstantIdle guard can see
// whether the lane holds work at the current instant before letting a
// zero-length park be skipped.
func (n *Network) PeekKey() (sim.Time, uint64, bool) {
	if n.lane.empty() {
		return 0, 0, false
	}
	key := n.lane.minKey()
	return sim.Time(key >> laneSeqBits), key & laneMaxSeq, true
}

// drainGuard drains lane entries ordered before the currently dispatching
// kernel event.  The kernel already drains the lane before every dispatch
// and the drain loop handles re-entrant calls, so this is a cheap no-op
// safety net for entry points reached outside the dispatch path (code
// running before Run, or between drive loops).
func (n *Network) drainGuard() {
	if !n.fastOn || n.lane.active || n.lane.empty() {
		return
	}
	n.DrainBefore(n.k.Now(), n.k.CurrentSeq(), maxSimTime)
}

// maxSimTime is the far-future sentinel for unbounded drains.
const maxSimTime = sim.Time(1<<63 - 1)
