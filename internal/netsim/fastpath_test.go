package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// traceRecorder captures the full delivery stream of a run for byte-level
// comparison between the fast and slow paths.
type traceRecorder struct {
	lines []string
}

func (tr *traceRecorder) attach(n *Network) {
	n.Observe(func(d Delivery) {
		tr.lines = append(tr.lines,
			fmt.Sprintf("%d->%d size=%d flow=%s/%d sent=%d arrived=%d",
				d.Src, d.Dst, d.Size, d.Flow.Class, d.Flow.ID, int64(d.Sent), int64(d.Arrived)))
	})
}

// runBoth executes the same scenario with the cut-through fast path on and
// off and returns both delivery traces plus both final stats snapshots.
func runBoth(t *testing.T, cfg Config, scenario func(k *sim.Kernel, n *Network)) (fast, slow []string, fastStats, slowStats Stats) {
	t.Helper()
	run := func(enabled bool) ([]string, Stats) {
		k := sim.NewKernel(424242)
		n := MustNew(k, cfg)
		n.SetFastPath(enabled)
		var tr traceRecorder
		tr.attach(n)
		scenario(k, n)
		k.Run()
		return tr.lines, n.Stats()
	}
	fast, fastStats = run(true)
	slow, slowStats = run(false)
	return fast, slow, fastStats, slowStats
}

// requireIdentical asserts two delivery traces are byte-identical, line by
// line and in the same order.
func requireIdentical(t *testing.T, fast, slow []string) {
	t.Helper()
	if len(fast) != len(slow) {
		t.Fatalf("delivery counts differ: fast=%d slow=%d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("delivery %d differs:\nfast: %s\nslow: %s", i, fast[i], slow[i])
		}
	}
}

// requireSameStats asserts the model-visible statistics (everything except
// the cut-through counter itself) match.
func requireSameStats(t *testing.T, fast, slow Stats) {
	t.Helper()
	if fast.PacketsDelivered != slow.PacketsDelivered || fast.BytesDelivered != slow.BytesDelivered {
		t.Fatalf("delivery stats differ: fast=%+v slow=%+v", fast, slow)
	}
	if fast.StallEvents != slow.StallEvents {
		t.Fatalf("stall events differ: fast=%d slow=%d", fast.StallEvents, slow.StallEvents)
	}
	for class, b := range slow.BytesByClass {
		if fast.BytesByClass[class] != b {
			t.Fatalf("bytes for class %q differ: fast=%d slow=%d", class, fast.BytesByClass[class], b)
		}
	}
	for i := range slow.UplinkBusy {
		if fast.UplinkBusy[i] != slow.UplinkBusy[i] {
			t.Fatalf("uplink %d busy differs: fast=%v slow=%v", i, fast.UplinkBusy[i], slow.UplinkBusy[i])
		}
	}
	for i := range slow.DownlinkBusy {
		if fast.DownlinkBusy[i] != slow.DownlinkBusy[i] {
			t.Fatalf("downlink %d busy differs: fast=%v slow=%v", i, fast.DownlinkBusy[i], slow.DownlinkBusy[i])
		}
	}
	for i := range slow.TrunkBusy {
		if fast.TrunkBusy[i] != slow.TrunkBusy[i] {
			t.Fatalf("trunk %s busy differs: fast=%v slow=%v", slow.TrunkLabels[i], fast.TrunkBusy[i], slow.TrunkBusy[i])
		}
	}
}

// contentionStormConfigs are the fabrics every equivalence test runs on: the
// paper's single switch, an oversubscribed fat-tree, and the no-back-pressure
// (EgressBufferBytes=0) ablation of each.
func contentionStormConfigs() map[string]Config {
	star := CabConfig()
	star.Nodes = 6
	star0 := star
	star0.EgressBufferBytes = 0
	ft := CabConfig()
	ft.Nodes = 6
	ft.Topology = FatTree{Leaves: 2, UplinksPerLeaf: 1}
	ft0 := ft
	ft0.EgressBufferBytes = 0
	return map[string]Config{"star": star, "star-nobackpressure": star0, "fattree": ft, "fattree-nobackpressure": ft0}
}

// TestFastPathContentionStorm floods every fabric with overlapping bulk
// messages and probes — injected both up front and from timed events and
// completion callbacks mid-run, so the lane is interrupted by real kernel
// events in every phase — and requires byte-identical delivery streams and
// statistics with the fast path on and off.
func TestFastPathContentionStorm(t *testing.T) {
	for name, cfg := range contentionStormConfigs() {
		t.Run(name, func(t *testing.T) {
			scenario := func(k *sim.Kernel, n *Network) {
				nodes := n.Nodes()
				// Wave 1: synchronized bulk blast at t=0 (maximum contention).
				for src := 0; src < nodes; src++ {
					dst := (src + 3) % nodes
					if dst == src {
						continue
					}
					src := src
					if err := n.SendMessage(src, dst, 200_000+src*7777, Flow{Class: "bulk", ID: src}, func(at sim.Time) {
						// Completion chains a follow-up message mid-run.
						next := (src + 1) % nodes
						if next != src {
							_ = n.SendMessage(src, next, 30_000, Flow{Class: "chain", ID: src}, nil)
						}
					}); err != nil {
						t.Fatal(err)
					}
				}
				// Wave 2: staggered probes and small messages from timed events,
				// landing mid-flight of the bulk trains.
				for i := 0; i < 40; i++ {
					i := i
					k.At(sim.Time(int64(i)*3_117), func() {
						src := i % nodes
						dst := (i*5 + 1) % nodes
						if dst == src {
							dst = (dst + 1) % nodes
						}
						if i%3 == 0 {
							_ = n.SendProbe(src, dst, 1024, Flow{Class: "probe", ID: i}, nil)
						} else {
							_ = n.SendMessage(src, dst, 1000+i*997, Flow{Class: "mix", ID: i}, nil)
						}
					})
				}
			}
			fast, slow, fs, ss := runBoth(t, cfg, scenario)
			requireIdentical(t, fast, slow)
			requireSameStats(t, fs, ss)
			if len(fast) == 0 {
				t.Fatal("scenario delivered nothing")
			}
			if fs.CutThroughEvents == 0 {
				t.Fatal("fast path never engaged")
			}
			if ss.CutThroughEvents != 0 {
				t.Fatal("slow path reported cut-through events")
			}
		})
	}
}

// TestFastPathFuzzedSchedules drives randomized traffic schedules (sizes,
// endpoints, injection times, probe/bulk mix) through both paths on every
// fabric and requires byte-identical delivery streams.
func TestFastPathFuzzedSchedules(t *testing.T) {
	configs := contentionStormConfigs()
	for trial := 0; trial < 6; trial++ {
		for name, cfg := range configs {
			t.Run(fmt.Sprintf("%s/trial%d", name, trial), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(1000*trial) + int64(len(name))))
				type injection struct {
					at        sim.Time
					src, dst  int
					size      int
					probe     bool
					withChain bool
				}
				var plan []injection
				nodes := cfg.Nodes
				for i := 0; i < 120; i++ {
					src := rng.Intn(nodes)
					dst := rng.Intn(nodes)
					if dst == src {
						dst = (dst + 1) % nodes
					}
					inj := injection{
						at:    sim.Time(rng.Int63n(int64(80 * sim.Microsecond))),
						src:   src,
						dst:   dst,
						probe: rng.Intn(4) == 0,
					}
					if inj.probe {
						inj.size = 1 + rng.Intn(cfg.MTU)
					} else {
						inj.size = 1 + rng.Intn(120_000)
						inj.withChain = rng.Intn(5) == 0
					}
					plan = append(plan, inj)
				}
				scenario := func(k *sim.Kernel, n *Network) {
					for i, inj := range plan {
						i, inj := i, inj
						k.At(inj.at, func() {
							if inj.probe {
								_ = n.SendProbe(inj.src, inj.dst, inj.size, Flow{Class: "p", ID: i}, nil)
								return
							}
							var done func(sim.Time)
							if inj.withChain {
								done = func(sim.Time) {
									next := (inj.dst + 1) % n.Nodes()
									if next != inj.dst {
										_ = n.SendMessage(inj.dst, next, 5000+i, Flow{Class: "c", ID: i}, nil)
									}
								}
							}
							_ = n.SendMessage(inj.src, inj.dst, inj.size, Flow{Class: "b", ID: i}, done)
						})
					}
				}
				fast, slow, fs, ss := runBoth(t, cfg, scenario)
				requireIdentical(t, fast, slow)
				requireSameStats(t, fs, ss)
			})
		}
	}
}

// TestFastPathWindowTruncation checks RunUntil + Shutdown (the measurement
// harness' drive pattern): a window that truncates messages mid-flight must
// leave identical delivered-packet counts and statistics on both paths.
func TestFastPathWindowTruncation(t *testing.T) {
	for name, cfg := range contentionStormConfigs() {
		t.Run(name, func(t *testing.T) {
			run := func(enabled bool) ([]string, Stats) {
				k := sim.NewKernel(7)
				n := MustNew(k, cfg)
				n.SetFastPath(enabled)
				var tr traceRecorder
				tr.attach(n)
				for src := 0; src < cfg.Nodes; src++ {
					dst := (src + 2) % cfg.Nodes
					if dst == src {
						continue
					}
					if err := n.SendMessage(src, dst, 4<<20, Flow{Class: "big", ID: src}, nil); err != nil {
						t.Fatal(err)
					}
				}
				// Stop long before the transfers can finish.
				k.RunUntil(sim.Time(200 * sim.Microsecond))
				st := n.Stats()
				k.Shutdown()
				return tr.lines, st
			}
			fast, fs := run(true)
			slow, ss := run(false)
			requireIdentical(t, fast, slow)
			requireSameStats(t, fs, ss)
			if fs.PacketsDelivered == 0 {
				t.Fatal("window delivered nothing")
			}
		})
	}
}

// TestFastPathMultiWindowResume drives the kernel in several RunUntil
// segments (as RunFor-style consumers do) and checks the lane resumes
// correctly across window boundaries.
func TestFastPathMultiWindowResume(t *testing.T) {
	cfg := CabConfig()
	cfg.Nodes = 4
	run := func(enabled bool) ([]string, Stats) {
		k := sim.NewKernel(99)
		n := MustNew(k, cfg)
		n.SetFastPath(enabled)
		var tr traceRecorder
		tr.attach(n)
		_ = n.SendMessage(0, 1, 300_000, Flow{Class: "a"}, nil)
		k.RunUntil(sim.Time(5 * sim.Microsecond))
		_ = n.SendMessage(2, 1, 100_000, Flow{Class: "b"}, nil)
		k.RunUntil(sim.Time(30 * sim.Microsecond))
		_ = n.SendProbe(3, 1, 512, Flow{Class: "p"}, nil)
		k.Run()
		return tr.lines, n.Stats()
	}
	fast, fs := run(true)
	slow, ss := run(false)
	requireIdentical(t, fast, slow)
	requireSameStats(t, fs, ss)
}

// TestFastPathCompletionClock asserts completion callbacks and probe
// deliveries observe the true kernel clock on the fast path: the delivery's
// Arrived stamp, the completion argument and Kernel.Now must agree.
func TestFastPathCompletionClock(t *testing.T) {
	cfg := CabConfig()
	cfg.Nodes = 4
	k := sim.NewKernel(5)
	n := MustNew(k, cfg)
	checked := 0
	if err := n.SendMessage(0, 1, 50_000, Flow{Class: "m"}, func(at sim.Time) {
		if k.Now() != at {
			t.Errorf("completion clock skew: Now=%d arg=%d", int64(k.Now()), int64(at))
		}
		checked++
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.SendProbe(2, 3, 1024, Flow{Class: "p"}, func(d Delivery) {
		if k.Now() != d.Arrived {
			t.Errorf("probe clock skew: Now=%d arrived=%d", int64(k.Now()), int64(d.Arrived))
		}
		checked++
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if checked != 2 {
		t.Fatalf("callbacks ran %d times, want 2", checked)
	}
	if n.Stats().CutThroughEvents == 0 {
		t.Fatal("fast path never engaged")
	}
}

// TestFastPathObserverTimestamps asserts mid-train observer callbacks see
// the true kernel clock too (the lane advances it entry by entry).
func TestFastPathObserverTimestamps(t *testing.T) {
	cfg := CabConfig()
	cfg.Nodes = 3
	k := sim.NewKernel(21)
	n := MustNew(k, cfg)
	deliveries := 0
	n.Observe(func(d Delivery) {
		deliveries++
		if k.Now() != d.Arrived {
			t.Errorf("observer clock skew at delivery %d: Now=%d arrived=%d", deliveries, int64(k.Now()), int64(d.Arrived))
		}
	})
	if err := n.SendMessage(0, 1, 100_000, Flow{Class: "m"}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if deliveries < 10 {
		t.Fatalf("expected a multi-packet train, saw %d deliveries", deliveries)
	}
}

// TestFastPathDisabledEnv checks the process-wide environment kill switch.
func TestFastPathDisabledEnv(t *testing.T) {
	t.Setenv("SWITCHPROBE_NO_CUTTHROUGH", "1")
	k := sim.NewKernel(1)
	n := MustNew(k, CabConfig())
	if n.FastPathEnabled() {
		t.Fatal("fast path enabled despite SWITCHPROBE_NO_CUTTHROUGH")
	}
	if err := n.SendProbe(0, 1, 1024, Flow{}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if n.Stats().CutThroughEvents != 0 {
		t.Fatal("events elided with fast path disabled")
	}
}

// TestFastPathSecondNetworkFallsBack: only one lane may attach to a kernel;
// a second network on the same kernel must quietly run the slow path.
func TestFastPathSecondNetworkFallsBack(t *testing.T) {
	k := sim.NewKernel(3)
	n1 := MustNew(k, CabConfig())
	n2 := MustNew(k, CabConfig())
	if !n1.FastPathEnabled() {
		t.Fatal("first network should own the lane")
	}
	if n2.FastPathEnabled() {
		t.Fatal("second network must fall back to the slow path")
	}
}

// TestPacketPoolInvariants sends heavy traffic and then audits the free
// lists: no packet or message state may appear twice (a double put would
// corrupt later traffic), and every pooled object must have its references
// cleared so drained queues do not pin buffers against reuse.
func TestPacketPoolInvariants(t *testing.T) {
	cfg := CabConfig()
	cfg.Nodes = 5
	k := sim.NewKernel(11)
	n := MustNew(k, cfg)
	for i := 0; i < 25; i++ {
		src := i % 5
		dst := (i*3 + 1) % 5
		if dst == src {
			dst = (dst + 1) % 5
		}
		if err := n.SendMessage(src, dst, 10_000+i*321, Flow{Class: "pool", ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()

	seenPkt := make(map[*packet]bool, len(n.pktFree))
	for _, p := range n.pktFree {
		if seenPkt[p] {
			t.Fatal("packet double-put: same *packet twice on the free list")
		}
		seenPkt[p] = true
		if p.onDeliver != nil || p.msg != nil || p.route != nil {
			t.Fatalf("pooled packet retains references: %+v", p)
		}
	}
	seenMS := make(map[*messageState]bool, len(n.msgFree))
	for _, ms := range n.msgFree {
		if seenMS[ms] {
			t.Fatal("message-state double-put: same *messageState twice on the free list")
		}
		seenMS[ms] = true
		if ms.onComplete != nil || ms.fnArg != nil || ms.arg != nil {
			t.Fatalf("pooled message state retains references: %+v", ms)
		}
	}
	if len(n.pktFree) == 0 || len(n.msgFree) == 0 {
		t.Fatal("expected pooled objects after a full run")
	}
}

// TestPktQueueReleasesPoppedSlots pins the queue's memory hygiene: popped
// slots must be nil'd so a drained queue does not pin recycled packets, and
// the backing array must rewind once empty.
func TestPktQueueReleasesPoppedSlots(t *testing.T) {
	var q pktQueue
	a, b := &packet{}, &packet{}
	q.push(a)
	q.push(b)
	if got := q.pop(); got != a {
		t.Fatal("pop order broken")
	}
	if q.buf[0] != nil {
		t.Fatal("popped slot not cleared: drained queues would pin pooled packets")
	}
	if got := q.pop(); got != b {
		t.Fatal("pop order broken")
	}
	if !q.empty() || q.head != 0 || len(q.buf) != 0 {
		t.Fatalf("queue did not rewind after draining: head=%d len=%d", q.head, len(q.buf))
	}
	for i := range q.buf[:cap(q.buf)] {
		if q.buf[:cap(q.buf)][i] != nil {
			t.Fatalf("slot %d still references a packet after rewind", i)
		}
	}
}

// TestFastPathGoldenTraceMatchesSlowPath reruns the pinned golden-trace
// scenario of topology_test.go on both paths; the constants there were
// captured from the pre-topology-engine code, so this transitively pins the
// fast path to the original model.
func TestFastPathGoldenTraceMatchesSlowPath(t *testing.T) {
	cfg := CabConfig()
	cfg.Nodes = 6
	scenario := func(k *sim.Kernel, n *Network) {
		for i := 0; i < 40; i++ {
			src := i % 6
			dst := (i*3 + 1) % 6
			if dst == src {
				dst = (dst + 1) % 6
			}
			if err := n.SendMessage(src, dst, 1000+i*777, Flow{Class: "g", ID: i}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	fast, slow, fs, ss := runBoth(t, cfg, scenario)
	requireIdentical(t, fast, slow)
	requireSameStats(t, fs, ss)
	if fs.StallEvents == 0 {
		t.Fatal("golden scenario should stall under contention")
	}
}
