// Fault injection: deterministic trunk failures, degraded uplinks, failover
// rerouting and NIC-level retransmit.
//
// A FaultPlan is a schedule of trunk transitions — TrunkDown, TrunkUp and
// Degrade(factor) at virtual offsets — plus an optional MTBF/MTTR renewal
// generator drawn from a dedicated kernel substream ("faults"), so generated
// failures are reproducible per root seed and independent of traffic.  The
// plan is part of Config and of Config.Fingerprint (canonically encoded), so
// faulted and clean runs never share cached artifacts.
//
// Transitions execute as kernel events, never inside a drain or walk:
//
//   - TrunkDown marks the trunk's port down, drops its queued packets (strict
//     mode; relaxed walks never queue at ports) and stamps downAt so relaxed
//     walks committed past the transition instant lose their packets too.
//   - TrunkUp clears the mark and restores downAt to the next scheduled
//     failure of that trunk (or "never").
//   - Degrade scales the trunk's serialization time by the factor in both
//     engines; factor 1 restores full speed.
//
// After every transition batch the runtime recomputes affected routes through
// the topology's FailoverRouter, rewrites the route of every packet still
// queued at a NIC, and resumes stalled senders.  Pairs with no surviving
// route keep a dead route whose first trunk is down, so their traffic stalls
// at the NIC — the paper-faithful "leaf partitioned" behaviour — until a
// repair restores a path.
//
// A packet lost on a failed trunk is retransmitted from its source NIC after
// a detection timeout with capped exponential backoff (RetryTimeout,
// RetryBackoffCap), re-entering the normal injection funnel with the current
// (post-failover) route.
//
// Relaxed-engine interaction.  Fault transitions bound the lookahead horizon:
// no drain commits at or past the next scheduled transition, so arbitration
// and walks never batch across a topology change.  Walks check each trunk
// hop's downAt against the packet's arrival instant, which catches both
// already-down trunks and failures scheduled inside the committed window.
// Worker-executed drains never traverse trunks (cross-leaf traffic forces
// sequential windows — see workers.go), so loss and retransmit only ever
// happen on the coordinator and parallel runs stay byte-identical.  Train
// fusion is disabled while a plan is active: fused segments cache per-hop
// port state that a transition could invalidate mid-train.
package netsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/telemetry"
)

// FaultKind names one trunk transition type.
type FaultKind uint8

const (
	// FaultTrunkDown takes the trunk out of service: queued and in-flight
	// packets are lost (and retransmitted), and routes fail over.
	FaultTrunkDown FaultKind = iota
	// FaultTrunkUp returns the trunk to service and restores baseline routes.
	FaultTrunkUp
	// FaultDegrade multiplies the trunk's serialization time by Factor
	// (Factor 1 restores full speed).
	FaultDegrade
)

// String implements fmt.Stringer with the tokens ParseFaultPlan accepts.
func (k FaultKind) String() string {
	switch k {
	case FaultTrunkDown:
		return "down"
	case FaultTrunkUp:
		return "up"
	case FaultDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("faultkind(%d)", uint8(k))
	}
}

// FaultEvent is one scheduled trunk transition.
type FaultEvent struct {
	// At is the virtual-time offset of the transition from simulation start.
	At sim.Duration
	// Trunk is the label of the trunk port ("leaf0.up1"), as reported by
	// Layout.Trunks / Stats.TrunkLabels.
	Trunk string
	// Kind selects the transition.
	Kind FaultKind
	// Factor is the serialization multiplier for FaultDegrade (≥ 1); ignored
	// otherwise.
	Factor float64
}

// FaultPlan schedules trunk faults for one simulation run.  The zero value
// (and a nil plan) injects nothing.
type FaultPlan struct {
	// Events are explicit transitions, applied at their offsets in (At, Trunk)
	// order.
	Events []FaultEvent
	// MTBF, when positive, enables the renewal generator: trunk failures
	// arrive with exponentially distributed gaps of this mean, each striking
	// a uniformly drawn trunk and repairing after an exponential MTTR.  Both
	// must be set together.
	MTBF sim.Duration
	// MTTR is the mean repair time of generated failures.
	MTTR sim.Duration
	// RetryTimeout is the retransmit detection timeout (the base of the
	// exponential backoff); 0 means 50µs.
	RetryTimeout sim.Duration
	// RetryBackoffCap caps the exponential backoff; 0 means 1ms.
	RetryBackoffCap sim.Duration
}

// Active reports whether the plan injects any faults.
func (fp *FaultPlan) Active() bool {
	return fp != nil && (len(fp.Events) > 0 || fp.MTBF > 0)
}

func (fp *FaultPlan) retryTimeout() sim.Duration {
	if fp != nil && fp.RetryTimeout > 0 {
		return fp.RetryTimeout
	}
	return 50 * sim.Microsecond
}

func (fp *FaultPlan) retryCap() sim.Duration {
	if fp != nil && fp.RetryBackoffCap > 0 {
		return fp.RetryBackoffCap
	}
	return sim.Millisecond
}

// sortedEvents returns the plan's events in canonical (At, Trunk, Kind,
// Factor) order, the order they are applied in and fingerprinted in.
func (fp *FaultPlan) sortedEvents() []FaultEvent {
	evs := append([]FaultEvent(nil), fp.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Trunk != b.Trunk {
			return a.Trunk < b.Trunk
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Factor < b.Factor
	})
	return evs
}

// Fingerprint canonically encodes every plan field that influences simulated
// behaviour; it joins Config.Fingerprint when the plan is active.
func (fp *FaultPlan) Fingerprint() string {
	var b strings.Builder
	for i, e := range fp.sortedEvents() {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s:%s@%d", e.Kind, e.Trunk, int64(e.At))
		if e.Kind == FaultDegrade {
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(e.Factor, 'g', -1, 64))
		}
	}
	fmt.Fprintf(&b, "|mtbf=%d|mttr=%d|rto=%d|rcap=%d",
		int64(fp.MTBF), int64(fp.MTTR), int64(fp.retryTimeout()), int64(fp.retryCap()))
	return b.String()
}

// Validate checks the plan against a built layout: every referenced trunk
// must exist, degrade factors must be ≥ 1, the MTBF/MTTR pair must be set
// together, and the fabric must have trunks at all (a single switch has no
// alternate route to fail over to, so plans are rejected there).
func (fp *FaultPlan) Validate(lay Layout) error {
	if !fp.Active() {
		return nil
	}
	if len(lay.Trunks) == 0 {
		return fmt.Errorf("netsim: fault plan needs a topology with trunks (star has none)")
	}
	if (fp.MTBF > 0) != (fp.MTTR > 0) {
		return fmt.Errorf("netsim: fault plan MTBF and MTTR must be set together (mtbf=%v mttr=%v)", fp.MTBF, fp.MTTR)
	}
	if fp.MTBF < 0 || fp.MTTR < 0 {
		return fmt.Errorf("netsim: negative MTBF/MTTR (mtbf=%v mttr=%v)", fp.MTBF, fp.MTTR)
	}
	labels := make(map[string]bool, len(lay.Trunks))
	for _, t := range lay.Trunks {
		labels[t.Label] = true
	}
	for _, e := range fp.Events {
		if e.At < 0 {
			return fmt.Errorf("netsim: fault event %s:%s at negative offset %v", e.Kind, e.Trunk, e.At)
		}
		if !labels[e.Trunk] {
			return fmt.Errorf("netsim: fault event references unknown trunk %q", e.Trunk)
		}
		switch e.Kind {
		case FaultTrunkDown, FaultTrunkUp:
		case FaultDegrade:
			if e.Factor < 1 {
				return fmt.Errorf("netsim: degrade factor %v for trunk %q must be >= 1", e.Factor, e.Trunk)
			}
		default:
			return fmt.Errorf("netsim: unknown fault kind %d for trunk %q", e.Kind, e.Trunk)
		}
	}
	return nil
}

// ParseFaultPlan parses the CLI encoding of explicit fault events: a
// comma-separated list of kind:trunk@offset[:factor] items, e.g.
//
//	down:leaf0.up1@5ms,up:leaf0.up1@12ms,degrade:leaf1.up0@2ms:2.5
//
// Offsets use Go duration syntax.  An empty string yields a nil plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fp := &FaultPlan{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.SplitN(item, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("netsim: fault event %q: want kind:trunk@offset[:factor]", item)
		}
		var kind FaultKind
		switch parts[0] {
		case "down":
			kind = FaultTrunkDown
		case "up":
			kind = FaultTrunkUp
		case "degrade":
			kind = FaultDegrade
		default:
			return nil, fmt.Errorf("netsim: fault event %q: unknown kind %q (valid: down, up, degrade)", item, parts[0])
		}
		trunkAt := strings.SplitN(parts[1], "@", 2)
		if len(trunkAt) != 2 || trunkAt[0] == "" {
			return nil, fmt.Errorf("netsim: fault event %q: want kind:trunk@offset[:factor]", item)
		}
		d, err := time.ParseDuration(trunkAt[1])
		if err != nil {
			return nil, fmt.Errorf("netsim: fault event %q: bad offset: %v", item, err)
		}
		ev := FaultEvent{At: sim.Duration(d.Nanoseconds()), Trunk: trunkAt[0], Kind: kind}
		if kind == FaultDegrade {
			if len(parts) != 3 {
				return nil, fmt.Errorf("netsim: fault event %q: degrade needs a factor (degrade:trunk@offset:factor)", item)
			}
			f, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("netsim: fault event %q: bad factor: %v", item, err)
			}
			ev.Factor = f
		} else if len(parts) == 3 {
			return nil, fmt.Errorf("netsim: fault event %q: only degrade takes a factor", item)
		}
		fp.Events = append(fp.Events, ev)
	}
	return fp, nil
}

// faultTransition is one pending transition in the runtime's time-sorted
// queue.  generated marks renewal-generator failures, which chain their own
// repair and successor draw when they fire.
type faultTransition struct {
	at        sim.Time
	trunk     *SwitchPort
	kind      FaultKind
	factor    float64
	generated bool
}

// setupFaults arms the fault runtime at network construction: explicit plan
// events become pending transitions, and the renewal generator pre-draws its
// first failure so downAt stamps are known before any traffic walks.
func (n *Network) setupFaults(fp *FaultPlan) {
	n.faultsOn = true
	n.retryTimeout = fp.retryTimeout()
	n.retryCap = fp.retryCap()
	n.nextFaultAt = maxSimTime
	n.faultFn = func(any) { n.faultStep() }
	n.retryFn = func(a any) { n.retryPacket(a.(*packet)) }
	byLabel := make(map[string]*SwitchPort, len(n.trunks))
	for _, pt := range n.trunks {
		byLabel[pt.label] = pt
	}
	for _, e := range fp.sortedEvents() {
		n.insertFault(faultTransition{
			at:     sim.Time(e.At),
			trunk:  byLabel[e.Trunk],
			kind:   e.Kind,
			factor: e.Factor,
		})
	}
	if fp.MTBF > 0 {
		n.mtbf, n.mttr = fp.MTBF, fp.MTTR
		n.faultRng = n.k.NewSubstream("faults")
		n.insertGeneratedFailure(0)
	}
}

// insertGeneratedFailure draws the next renewal failure — exponential gap
// from `from`, uniform trunk — and queues it.  Drawing one failure ahead
// keeps every trunk's downAt stamp current for relaxed walks.
func (n *Network) insertGeneratedFailure(from sim.Time) {
	gap := sim.Duration(n.faultRng.ExpFloat64() * float64(n.mtbf))
	trunk := n.trunks[n.faultRng.Int63n(int64(len(n.trunks)))]
	n.insertFault(faultTransition{at: from.Add(gap), trunk: trunk, kind: FaultTrunkDown, generated: true})
}

// insertFault queues one pending transition (kept time-sorted), schedules its
// kernel event, and refreshes the affected trunk's downAt stamp and the
// relaxed engine's horizon bound.
func (n *Network) insertFault(tr faultTransition) {
	i := sort.Search(len(n.faultPend), func(i int) bool { return n.faultPend[i].at > tr.at })
	n.faultPend = append(n.faultPend, faultTransition{})
	copy(n.faultPend[i+1:], n.faultPend[i:])
	n.faultPend[i] = tr
	if tr.kind == FaultTrunkDown && !tr.trunk.down && tr.at < tr.trunk.downAt {
		tr.trunk.downAt = tr.at
	}
	if tr.at < n.nextFaultAt {
		n.nextFaultAt = tr.at
	}
	n.k.CallAt(tr.at, n.faultFn, nil)
}

// faultStep is the kernel event applying every transition due at the current
// instant, then recomputing routes and resuming stalled senders.  It fires
// before any same-instant drain or lane entry armed after the transition was
// inserted (its sequence number is older), so drains never observe a stale
// topology at or past a transition instant.
func (n *Network) faultStep() {
	now := n.k.Now()
	changed := false
	for len(n.faultPend) > 0 && n.faultPend[0].at <= now {
		tr := n.faultPend[0]
		copy(n.faultPend, n.faultPend[1:])
		n.faultPend = n.faultPend[:len(n.faultPend)-1]
		n.applyFault(tr, now)
		changed = true
	}
	n.nextFaultAt = maxSimTime
	if len(n.faultPend) > 0 {
		n.nextFaultAt = n.faultPend[0].at
	}
	if changed {
		n.recomputeRoutes()
		n.sweepQueuedRoutes()
		n.resumeAfterFault(now)
	}
}

// applyFault applies one transition to its trunk port.
func (n *Network) applyFault(tr faultTransition, now sim.Time) {
	pt := tr.trunk
	switch tr.kind {
	case FaultTrunkDown:
		if tr.generated {
			// Renewal chain: schedule this failure's repair and pre-draw the
			// next failure.  Draw order is fixed (repair gap, then the next
			// failure's gap and trunk), so the substream consumption — and with
			// it the whole fault timeline — is independent of traffic.
			repair := now.Add(sim.Duration(n.faultRng.ExpFloat64() * float64(n.mttr)))
			n.insertFault(faultTransition{at: repair, trunk: pt, kind: FaultTrunkUp, generated: true})
			n.insertGeneratedFailure(now)
		}
		if pt.down {
			return // already down (generator struck a failed trunk): no-op
		}
		pt.down = true
		pt.downAt = now
		n.trunksFailed++
		if telemetry.TraceEnabled() {
			n.traceFault(pt, FaultTrunkDown, 0, now)
		}
		// Strict mode queues packets at ports; every queued packet holds a
		// buffer reserve taken at admission.  Drop them all — the link is
		// gone — and retransmit from their source NICs.  (Relaxed walks never
		// queue at ports, so this loop is empty there.)
		for !pt.queue.empty() {
			p := pt.queue.pop()
			pt.buffered -= p.size
			n.losePacket(p, now)
		}
	case FaultTrunkUp:
		if telemetry.TraceEnabled() {
			// Emitted before downAt is rearmed: it still holds the failure
			// instant, which closes the outage span.
			n.traceFault(pt, FaultTrunkUp, 0, now)
		}
		pt.down = false
		pt.downAt = maxSimTime
		for _, tr2 := range n.faultPend {
			if tr2.trunk == pt && tr2.kind == FaultTrunkDown {
				pt.downAt = tr2.at
				break // pending queue is time-sorted: first hit is earliest
			}
		}
	case FaultDegrade:
		if tr.factor >= 1 {
			pt.slow = tr.factor
			if telemetry.TraceEnabled() {
				n.traceFault(pt, FaultDegrade, tr.factor, now)
			}
		}
	}
}

// recomputeRoutes re-resolves every cross-trunk node pair through the
// topology's FailoverRouter against the current trunk health, counting the
// pairs whose route actually changed.  Pairs with no surviving path keep
// their current (dead) route: its first trunk is down, so their traffic
// stalls at the NIC until a repair — the paper-faithful partition stall.
// Topologies without a FailoverRouter keep static routes (same stall).
func (n *Network) recomputeRoutes() {
	router, ok := n.topo.(FailoverRouter)
	if !ok {
		return
	}
	downFn := func(trunk int) bool { return n.trunks[trunk].down }
	nodes := n.cfg.Nodes
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			cur := n.routes[src*nodes+dst]
			if src == dst || len(cur) <= 1 {
				continue // no trunk on this pair's path
			}
			hops, alive := router.RouteAvoiding(nodes, src, dst, downFn)
			if !alive {
				continue
			}
			route := make([]*SwitchPort, 0, len(hops)+1)
			for _, h := range hops {
				route = append(route, n.trunks[h])
			}
			route = append(route, n.egress[dst])
			same := len(route) == len(cur)
			for i := 0; same && i < len(route); i++ {
				same = route[i] == cur[i]
			}
			if !same {
				n.routes[src*nodes+dst] = route
				n.routesRecomputed++
			}
		}
	}
}

// sweepQueuedRoutes rebinds every packet still queued at a NIC to the current
// route of its pair, so queued traffic fails over (or back) with the route
// table.  In-flight packets keep their old route and take the per-hop down
// checks instead.  Failover never changes whether a pair is cross-leaf, so
// NIC crossQueued counts stay valid.
func (n *Network) sweepQueuedRoutes() {
	nodes := n.cfg.Nodes
	for _, nc := range n.nics {
		for _, fq := range nc.queues {
			for i := fq.q.head; i < len(fq.q.buf); i++ {
				p := fq.q.buf[i]
				p.route = n.routes[p.src*nodes+p.dst]
			}
		}
	}
}

// resumeAfterFault retries every sender a transition may have unblocked (or
// newly blocked senders whose wait had no wake scheduled): strict-mode trunk
// waiters, relaxed-mode trunk waiter FIFOs, stalled NICs, and the parked
// list — whose drains must re-run under the new horizon bound.
func (n *Network) resumeAfterFault(now sim.Time) {
	if !n.relaxed {
		for _, pt := range n.trunks {
			n.wakeWaiters(pt)
		}
		return
	}
	for _, pt := range n.trunks {
		if len(pt.relWaiters) == 0 {
			continue
		}
		waiters := append([]*nic(nil), pt.relWaiters...)
		for i := range pt.relWaiters {
			pt.relWaiters[i] = nil
		}
		pt.relWaiters = pt.relWaiters[:0]
		for _, nc := range waiters {
			nc.dropWaitingOn(pt)
		}
		for _, nc := range waiters {
			if !nc.parked {
				n.wakingPort = pt
				n.drainNic(nc, nil)
				n.wakingPort = nil
			}
		}
	}
	for _, nc := range n.nics {
		if nc.stalled && !nc.parked {
			n.drainNic(nc, nil)
		}
	}
	if len(n.parked) > 0 {
		n.ensureAdvance(now)
	}
}

// losePacket records the loss of a packet on a failed trunk and schedules its
// retransmission from the source NIC: detection timeout with capped
// exponential backoff from the loss instant, then re-injection on the current
// route.  Loss always happens on the coordinator (worker drains never
// traverse trunks), so scheduling the kernel event here is safe.
func (n *Network) losePacket(p *packet, at sim.Time) {
	if p.retries < 62 {
		p.retries++
	}
	backoff := n.retryTimeout << (p.retries - 1)
	if backoff > n.retryCap || backoff <= 0 {
		backoff = n.retryCap
	}
	n.packetsRetransmitted++
	n.retryBackoffNs += int64(backoff)
	retryAt := at.Add(backoff)
	if now := n.k.Now(); retryAt < now {
		retryAt = now
	}
	n.k.CallAt(retryAt, n.retryFn, p)
}

// retryPacket re-injects a lost packet at its source NIC on the pair's
// current route.
func (n *Network) retryPacket(p *packet) {
	p.hop = 0
	p.route = n.routes[p.src*n.cfg.Nodes+p.dst]
	n.inject(p)
}

// loseWalked is the relaxed-walk loss path: the walk committed the packet's
// arrival at a trunk hop at or past the trunk's downAt stamp.  The packet
// still holds its reserve on that hop (the walk reserves hop h+1 before
// releasing hop h); push the matching release at the loss instant so the
// port's credit ledger stays balanced, then retransmit.
func (n *Network) loseWalked(p *packet, pt *SwitchPort, at sim.Time) {
	if pt.capacity != 0 {
		pt.led.push(at, p.size)
	}
	n.losePacket(p, at)
}
