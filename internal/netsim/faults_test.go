package netsim

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// faultTestConfig is a 2-leaf, 2-uplink oversubscribed fat-tree: 8 nodes,
// 4 per leaf, so cross-leaf traffic contends on two trunks per direction and
// one trunk failure still leaves an alternate path.
func faultTestConfig() Config {
	cfg := CabConfig()
	cfg.Nodes = 8
	cfg.Topology = FatTree{Leaves: 2, UplinksPerLeaf: 2}
	return cfg
}

func TestParseFaultPlan(t *testing.T) {
	fp, err := ParseFaultPlan("down:leaf0.up1@5ms, up:leaf0.up1@12ms ,degrade:leaf1.up0@2ms:2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(fp.Events))
	}
	want := []FaultEvent{
		{At: 5 * sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkDown},
		{At: 12 * sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkUp},
		{At: 2 * sim.Millisecond, Trunk: "leaf1.up0", Kind: FaultDegrade, Factor: 2.5},
	}
	for i, e := range want {
		if fp.Events[i] != e {
			t.Errorf("event %d = %+v, want %+v", i, fp.Events[i], e)
		}
	}
	if fp, err := ParseFaultPlan(""); err != nil || fp != nil {
		t.Fatalf("empty plan = %v, %v; want nil, nil", fp, err)
	}
	for _, bad := range []string{
		"explode:leaf0.up1@5ms",   // unknown kind
		"down:leaf0.up1",          // missing offset
		"down:@5ms",               // missing trunk
		"down:leaf0.up1@zzz",      // bad duration
		"degrade:leaf0.up1@5ms",   // degrade without factor
		"degrade:leaf0.up1@5ms:x", // bad factor
		"down:leaf0.up1@5ms:2",    // factor on non-degrade
		"down",                    // not even kind:trunk
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q): expected error", bad)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cfg := faultTestConfig()
	cfg.Faults = &FaultPlan{Events: []FaultEvent{{At: sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkDown}}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Topology = nil }, // star has no trunks
		func(c *Config) {
			c.Faults = &FaultPlan{Events: []FaultEvent{{At: sim.Millisecond, Trunk: "nope", Kind: FaultTrunkDown}}}
		},
		func(c *Config) { c.Faults = &FaultPlan{MTBF: sim.Second} }, // MTBF without MTTR
		func(c *Config) {
			c.Faults = &FaultPlan{Events: []FaultEvent{{At: sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultDegrade, Factor: 0.5}}}
		},
		func(c *Config) {
			c.Faults = &FaultPlan{Events: []FaultEvent{{At: -sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkDown}}}
		},
	}
	for i, mutate := range bad {
		c := faultTestConfig()
		c.Faults = cfg.Faults
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// New must reject what Validate rejects.
	c := faultTestConfig()
	c.Faults = &FaultPlan{Events: []FaultEvent{{At: sim.Millisecond, Trunk: "nope", Kind: FaultTrunkDown}}}
	if _, err := New(sim.NewKernel(1), c); err == nil {
		t.Fatal("New accepted a plan referencing an unknown trunk")
	}
}

func TestFaultPlanFingerprint(t *testing.T) {
	clean := faultTestConfig()
	faulted := faultTestConfig()
	faulted.Faults = &FaultPlan{Events: []FaultEvent{{At: sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkDown}}}
	if strings.Contains(clean.Fingerprint(), "faults=") {
		t.Fatal("fault-free fingerprint mentions faults")
	}
	if clean.Fingerprint() == faulted.Fingerprint() {
		t.Fatal("active plan did not change the fingerprint")
	}
	// Canonical: event order in the slice must not matter.
	a := &FaultPlan{Events: []FaultEvent{
		{At: 2 * sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkUp},
		{At: sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkDown},
	}}
	b := &FaultPlan{Events: []FaultEvent{a.Events[1], a.Events[0]}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprint depends on event slice order:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	// An inactive plan (nil or empty) must leave the fingerprint unchanged.
	empty := faultTestConfig()
	empty.Faults = &FaultPlan{}
	if empty.Fingerprint() != clean.Fingerprint() {
		t.Fatal("empty plan changed the fingerprint")
	}
}

func TestFatTreeRouteAvoiding(t *testing.T) {
	topo := FatTree{Leaves: 2, UplinksPerLeaf: 2}
	nodes := 8
	lay, err := topo.Build(nodes)
	if err != nil {
		t.Fatal(err)
	}
	none := func(int) bool { return false }
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			route, ok := topo.RouteAvoiding(nodes, src, dst, none)
			if !ok {
				t.Fatalf("%d->%d: partitioned on a healthy fabric", src, dst)
			}
			want := lay.Routes[src*nodes+dst]
			if len(route) != len(want) {
				t.Fatalf("%d->%d: route %v, want %v", src, dst, route, want)
			}
			for i := range route {
				if route[i] != want[i] {
					t.Fatalf("%d->%d: healthy route %v differs from baseline %v", src, dst, route, want)
				}
			}
		}
	}
	// Trunk indices: per leaf, uplinks first then downlinks.
	up := func(leaf, u int) int { return leaf*4 + u }
	// Node 0 (leaf 0) -> node 4 (leaf 1) defaults to uplink column 4%2 = 0.
	failed := map[int]bool{up(0, 0): true}
	route, ok := topo.RouteAvoiding(nodes, 0, 4, func(i int) bool { return failed[i] })
	if !ok {
		t.Fatal("0->4: no route with one uplink down")
	}
	if route[0] != up(0, 1) {
		t.Fatalf("0->4: failed over to trunk %d, want %d", route[0], up(0, 1))
	}
	// Both of leaf 0's uplinks down: leaf 0 is partitioned from leaf 1.
	failed[up(0, 1)] = true
	if _, ok := topo.RouteAvoiding(nodes, 0, 4, func(i int) bool { return failed[i] }); ok {
		t.Fatal("0->4: expected partition with every uplink down")
	}
	// Same-leaf pairs never need trunks.
	if route, ok := topo.RouteAvoiding(nodes, 0, 1, func(i int) bool { return failed[i] }); !ok || route != nil {
		t.Fatalf("0->1: same-leaf route = %v, %v; want nil, true", route, ok)
	}
}

// runFaultTraffic drives a fixed cross-leaf workload through a faulted
// fabric and returns the completion-time digest plus the network stats.
// Every message must complete; msgs counts them.
func runFaultTraffic(t *testing.T, cfg Config, seed int64, window sim.Duration) (string, Stats) {
	t.Helper()
	k := sim.NewKernel(seed)
	n := MustNew(k, cfg)
	var b strings.Builder
	done := 0
	msgs := 0
	// Cross-leaf senders from each leaf-0 node to its counterpart on leaf 1,
	// injecting a fresh message every 100µs for the whole window.  A heavy
	// burst just before the 2ms mark keeps the trunks saturated across the
	// failover tests' failure instant, so packets are genuinely in flight
	// when a trunk drops.
	perLeaf := cfg.Nodes / 2
	send := func(at sim.Duration, src, dst, size int) {
		msgs++
		id := msgs
		k.CallAt(sim.Time(at), func(any) {
			if err := n.SendMessage(src, dst, size, Flow{Class: "bulk", ID: src}, func(at sim.Time) {
				done++
				fmt.Fprintf(&b, "%d@%d\n", id, int64(at))
			}); err != nil {
				t.Error(err)
			}
		}, nil)
	}
	for i := 0; i < perLeaf; i++ {
		src, dst := i, perLeaf+i
		for at := sim.Duration(0); at < window; at += 100 * sim.Microsecond {
			send(at, src, dst, 32*1024)
		}
		if burst := 1950 * sim.Microsecond; burst < window {
			for j := 0; j < 8; j++ {
				send(burst, src, dst, 32*1024)
			}
		}
	}
	// Probes ride along so the latency-sensitive path crosses faults too.
	probes := 0
	for at := sim.Duration(0); at < window; at += 250 * sim.Microsecond {
		probes++
		k.CallAt(sim.Time(at), func(any) {
			if err := n.SendProbe(1, perLeaf+2, 512, Flow{Class: "impact", ID: 1}, func(d Delivery) {
				fmt.Fprintf(&b, "probe@%d\n", int64(d.Arrived))
			}); err != nil {
				t.Error(err)
			}
		}, nil)
	}
	if cfg.Faults != nil && cfg.Faults.MTBF > 0 {
		// The MTBF generator perpetually schedules the next failure, so the
		// event queue never drains; bound the run the way core.runWindow does,
		// with slack for retransmit backoff after the last injection.
		k.RunUntil(sim.Time(8 * window))
	} else {
		k.Run()
	}
	if done != msgs {
		t.Fatalf("%d of %d messages completed", done, msgs)
	}
	return b.String(), n.Stats()
}

func TestFaultFailoverDeliversEverything(t *testing.T) {
	plan := &FaultPlan{Events: []FaultEvent{
		{At: 2 * sim.Millisecond, Trunk: "leaf0.up0", Kind: FaultTrunkDown},
		{At: 7 * sim.Millisecond, Trunk: "leaf0.up0", Kind: FaultTrunkUp},
	}}
	for _, strict := range []bool{false, true} {
		name := "relaxed"
		if strict {
			name = "strict"
		}
		t.Run(name, func(t *testing.T) {
			cfg := faultTestConfig()
			cfg.StrictOrder = strict
			cfg.Faults = plan
			digest, st := runFaultTraffic(t, cfg, 1, 10*sim.Millisecond)
			if st.TrunksFailed != 1 {
				t.Errorf("TrunksFailed = %d, want 1", st.TrunksFailed)
			}
			if st.RoutesRecomputed == 0 {
				t.Error("RoutesRecomputed = 0, want failover reroutes")
			}
			if st.PacketsRetransmitted == 0 {
				t.Error("PacketsRetransmitted = 0, want in-flight losses")
			}
			if st.RetryBackoffNs <= 0 {
				t.Error("RetryBackoffNs = 0, want accumulated backoff")
			}
			// Determinism: same seed, same schedule.
			digest2, _ := runFaultTraffic(t, cfg, 1, 10*sim.Millisecond)
			if digest != digest2 {
				t.Error("two identical faulted runs diverged")
			}
			if !strict {
				// ...and across worker counts.
				wcfg := cfg
				wcfg.Workers = 4
				digestW, _ := runFaultTraffic(t, wcfg, 1, 10*sim.Millisecond)
				if digest != digestW {
					t.Error("faulted run diverged across Workers values")
				}
			}
		})
	}
}

func TestFaultPartitionStallsUntilRepair(t *testing.T) {
	for _, strict := range []bool{false, true} {
		name := "relaxed"
		if strict {
			name = "strict"
		}
		t.Run(name, func(t *testing.T) {
			cfg := faultTestConfig()
			cfg.StrictOrder = strict
			cfg.Faults = &FaultPlan{Events: []FaultEvent{
				{At: sim.Millisecond, Trunk: "leaf0.up0", Kind: FaultTrunkDown},
				{At: sim.Millisecond, Trunk: "leaf0.up1", Kind: FaultTrunkDown},
				{At: 5 * sim.Millisecond, Trunk: "leaf0.up0", Kind: FaultTrunkUp},
			}}
			k := sim.NewKernel(1)
			n := MustNew(k, cfg)
			var completed sim.Time
			k.CallAt(sim.Time(2*sim.Millisecond), func(any) {
				// Injected while leaf 0 is fully partitioned from the spine.
				if err := n.SendMessage(0, 4, 8192, Flow{Class: "bulk", ID: 0}, func(at sim.Time) {
					completed = at
				}); err != nil {
					t.Error(err)
				}
			}, nil)
			k.Run()
			if completed == 0 {
				t.Fatal("message never completed after repair")
			}
			if completed < sim.Time(5*sim.Millisecond) {
				t.Fatalf("message completed at %d, before the repair at 5ms", int64(completed))
			}
		})
	}
}

func TestDegradeBoundedSlowdown(t *testing.T) {
	for _, strict := range []bool{false, true} {
		name := "relaxed"
		if strict {
			name = "strict"
		}
		t.Run(name, func(t *testing.T) {
			mean := func(cfg Config) float64 {
				k := sim.NewKernel(7)
				n := MustNew(k, cfg)
				var sum float64
				var cnt int
				for i := 0; i < 200; i++ {
					at := sim.Time(sim.Duration(i) * 20 * sim.Microsecond)
					k.CallAt(at, func(any) {
						_ = n.SendProbe(0, 4, 1024, Flow{Class: "impact", ID: 0}, func(d Delivery) {
							sum += float64(d.Latency())
							cnt++
						})
					}, nil)
				}
				k.Run()
				return sum / float64(cnt)
			}
			clean := faultTestConfig()
			clean.StrictOrder = strict
			deg := faultTestConfig()
			deg.StrictOrder = strict
			deg.Faults = &FaultPlan{Events: []FaultEvent{
				{At: 0, Trunk: "leaf0.up0", Kind: FaultDegrade, Factor: 3},
				{At: 0, Trunk: "leaf0.up1", Kind: FaultDegrade, Factor: 3},
			}}
			base, slow := mean(clean), mean(deg)
			if slow <= base {
				t.Fatalf("degraded mean %.0fns not slower than clean %.0fns", slow, base)
			}
			// Bounded: a 3x serialization degrade on an idle path cannot blow
			// the whole latency up by more than 3x.
			if slow > 3*base {
				t.Fatalf("degraded mean %.0fns more than 3x clean %.0fns", slow, base)
			}
		})
	}
}

func TestMTBFGeneratorDeterminism(t *testing.T) {
	cfg := faultTestConfig()
	cfg.Faults = &FaultPlan{MTBF: sim.Millisecond, MTTR: 500 * sim.Microsecond}
	digest, st := runFaultTraffic(t, cfg, 3, 10*sim.Millisecond)
	if st.TrunksFailed == 0 {
		t.Error("TrunksFailed = 0: generator with 1ms MTBF over 10ms injected nothing")
	}
	digest2, st2 := runFaultTraffic(t, cfg, 3, 10*sim.Millisecond)
	if digest != digest2 || st.TrunksFailed != st2.TrunksFailed {
		t.Error("generated fault runs diverged for one seed")
	}
	other, _ := runFaultTraffic(t, cfg, 4, 10*sim.Millisecond)
	if digest == other {
		t.Error("different seeds produced identical fault timelines")
	}
}

// TestFaultLossReleasesNextHopReserve pins the credit-conservation invariant
// under fault-induced loss.  tryStartPort reserves buffer credit on the next
// hop the moment serialization starts; when the trunk goes down mid-flight
// the packet is dropped in portDone, which must release that reserve and wake
// the next hop's waiters, or the credit leaks for the rest of the run and
// eventually wedges the port.  A single-uplink fat-tree with an outage window
// forces every cross-leaf packet through the loss-and-retransmit path; once
// traffic quiesces, every port's buffered count must be exactly zero in both
// engines.
func TestFaultLossReleasesNextHopReserve(t *testing.T) {
	for _, strict := range []bool{true, false} {
		name := "relaxed"
		if strict {
			name = "strict"
		}
		t.Run(name, func(t *testing.T) {
			cfg := CabConfig()
			cfg.Nodes = 4
			cfg.StrictOrder = strict
			cfg.TailProb = 0
			cfg.FabricJitter = 0
			cfg.Topology = FatTree{Leaves: 2, UplinksPerLeaf: 1}
			cfg.Faults = &FaultPlan{Events: []FaultEvent{
				{At: 2 * sim.Microsecond, Trunk: "leaf0.up0", Kind: FaultTrunkDown},
				{At: 200 * sim.Microsecond, Trunk: "leaf0.up0", Kind: FaultTrunkUp},
			}}
			k := sim.NewKernel(1)
			n := MustNew(k, cfg)
			delivered := 0
			for i := 0; i < 4; i++ {
				if err := n.SendMessage(0, 2, 16*1024, Flow{Class: "bulk", ID: i}, func(sim.Time) { delivered++ }); err != nil {
					t.Fatal(err)
				}
			}
			k.RunUntil(sim.Time(50 * sim.Millisecond))
			if delivered != 4 {
				t.Fatalf("delivered %d of 4 messages across the outage, want all 4", delivered)
			}
			st := n.Stats()
			if st.PacketsRetransmitted == 0 {
				t.Fatal("outage injected no retransmits: the loss path was never exercised")
			}
			for _, pt := range n.ports {
				// The relaxed engine returns credit lazily through the port
				// ledger; fold everything matured by quiesce before asserting
				// conservation.  Strict ports have empty ledgers, so this is
				// a no-op there.
				pt.buffered -= pt.led.apply(k.Now())
				if pt.buffered != 0 {
					t.Errorf("port %s: buffered=%d bytes after quiesce, want 0", pt.Label(), pt.buffered)
				}
			}
		})
	}
}

func TestFaultFreeScheduleUnchanged(t *testing.T) {
	// A nil plan and an empty plan must not perturb schedules: the fault
	// checks are all gated on faultsOn.
	cfg := faultTestConfig()
	base, _ := runFaultTraffic(t, cfg, 5, 3*sim.Millisecond)
	withEmpty := cfg
	withEmpty.Faults = &FaultPlan{}
	got, st := runFaultTraffic(t, withEmpty, 5, 3*sim.Millisecond)
	if got != base {
		t.Fatal("empty fault plan changed the simulated schedule")
	}
	if st.TrunksFailed != 0 || st.PacketsRetransmitted != 0 || st.RoutesRecomputed != 0 {
		t.Fatal("fault counters nonzero on a fault-free run")
	}
}
