// Package netsim simulates a single network switch connecting a set of
// compute nodes, at packet granularity, on top of the discrete-event kernel.
//
// The model reproduces the pieces of a real InfiniBand-class switch (the
// QLogic 12300 used on LLNL's Cab cluster) that matter for the paper's
// active-measurement methodology:
//
//   - Each node has one uplink to the switch shared by every process on the
//     node.  The NIC arbitrates between per-flow queues in round-robin order,
//     so a small probe packet is never stuck behind an entire bulk message
//     from another process.
//   - The switch forwards packets through a routing stage with a small,
//     stochastic per-packet overhead (including a rare heavy tail, which the
//     paper observes even on an idle switch).
//   - Each destination node has an egress port with a finite buffer drained
//     at link rate.  When a buffer is full, upstream NICs stall — the
//     credit-based flow control that keeps latencies bounded and slows
//     senders down when the switch saturates.
//
// Probe latency therefore grows smoothly with offered load, which is exactly
// the signal the ImpactB benchmark measures.
package netsim

import (
	"fmt"
	"math/rand"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// Config describes the switch and its links.
type Config struct {
	// Nodes is the number of compute nodes attached to the switch.
	Nodes int
	// LinkBandwidth is the bandwidth of each node's uplink and downlink in
	// bytes per second.
	LinkBandwidth float64
	// MTU is the maximum packet payload in bytes; larger messages are
	// segmented.
	MTU int
	// WireDelay is the propagation delay of one link traversal (node→switch
	// or switch→node).
	WireDelay sim.Duration
	// FabricDelay is the mean per-packet routing/forwarding overhead inside
	// the switch.
	FabricDelay sim.Duration
	// FabricJitter is the half-width of the uniform jitter added to
	// FabricDelay.
	FabricJitter sim.Duration
	// TailProb is the probability that a packet experiences an additional
	// exponentially-distributed delay of mean TailDelay inside the switch
	// (buffer conflicts, arbitration misses).  This produces the small
	// high-latency tail visible on an idle switch.
	TailProb float64
	// TailDelay is the mean of the heavy-tail delay component.
	TailDelay sim.Duration
	// EgressBufferBytes is the per-output-port buffer size.  Zero means
	// unlimited buffering (no back-pressure), which is physically unrealistic
	// but useful as an ablation.
	EgressBufferBytes int
}

// CabConfig returns a configuration modelled after one bottom-level switch of
// LLNL's Cab cluster: 18 nodes, ~5 GB/s links, ~1.25 µs idle one-way packet
// latency.
func CabConfig() Config {
	return Config{
		Nodes:             18,
		LinkBandwidth:     5e9,
		MTU:               4096,
		WireDelay:         250 * sim.Nanosecond,
		FabricDelay:       200 * sim.Nanosecond,
		FabricJitter:      120 * sim.Nanosecond,
		TailProb:          0.02,
		TailDelay:         2 * sim.Microsecond,
		EgressBufferBytes: 16 * 1024,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("netsim: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("netsim: non-positive link bandwidth %v", c.LinkBandwidth)
	}
	if c.MTU <= 0 {
		return fmt.Errorf("netsim: non-positive MTU %d", c.MTU)
	}
	if c.TailProb < 0 || c.TailProb > 1 {
		return fmt.Errorf("netsim: tail probability %v outside [0,1]", c.TailProb)
	}
	if c.EgressBufferBytes < 0 {
		return fmt.Errorf("netsim: negative egress buffer %d", c.EgressBufferBytes)
	}
	if c.EgressBufferBytes > 0 && c.EgressBufferBytes < c.MTU {
		return fmt.Errorf("netsim: egress buffer %dB smaller than MTU %dB", c.EgressBufferBytes, c.MTU)
	}
	return nil
}

// Flow identifies a traffic source for NIC arbitration and accounting: every
// (class, id) pair gets its own queue at its node's NIC.
type Flow struct {
	// Class labels the software component generating the traffic, e.g.
	// "impact", "compress" or an application name.
	Class string
	// ID distinguishes flows of the same class, typically the sender rank.
	ID int
}

// Delivery describes a packet that reached its destination; observers receive
// one per packet.
type Delivery struct {
	Src, Dst int
	Size     int
	Flow     Flow
	Sent     sim.Time
	Arrived  sim.Time
}

// Latency returns the packet's one-way latency.
func (d Delivery) Latency() sim.Duration { return d.Arrived.Sub(d.Sent) }

// packet is the unit of transfer inside the simulator.  Packets are drawn
// from a per-network free list and recycled after delivery, so steady-state
// traffic allocates nothing.
type packet struct {
	src, dst  int
	size      int
	flow      Flow
	sent      sim.Time
	onDeliver func(Delivery)
	msg       *messageState
}

// messageState tracks the remaining packets of a segmented message.  Pooled
// like packets.  Completion is reported either through onComplete (a closure)
// or through the allocation-free (fnArg, arg) pair; at most one is set.
type messageState struct {
	remaining  int
	onComplete func(sim.Time)
	fnArg      func(sim.Time, any)
	arg        any
}

// pktQueue is a FIFO of packets that reuses its backing array: popping
// advances a head index instead of reslicing, and the buffer rewinds once
// drained, so a steady flow of packets touches the allocator only while the
// queue's high-water mark grows.
type pktQueue struct {
	buf  []*packet
	head int
}

func (q *pktQueue) push(p *packet) { q.buf = append(q.buf, p) }

func (q *pktQueue) empty() bool { return q.head == len(q.buf) }

func (q *pktQueue) front() *packet { return q.buf[q.head] }

func (q *pktQueue) pop() *packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// flowQueue is one per-flow FIFO at a node's NIC.
type flowQueue struct {
	flow Flow
	q    pktQueue
}

// nic models a node's network interface: per-flow queues drained round-robin
// onto the uplink.
type nic struct {
	node    int
	queues  []*flowQueue
	byFlow  map[Flow]*flowQueue
	next    int // round-robin cursor into queues
	busy    bool
	busyNS  sim.Duration
	stalled bool
}

// egressPort models one switch output port and its downlink.
type egressPort struct {
	node     int
	queue    pktQueue
	buffered int
	busy     bool
	busyNS   sim.Duration
	// waiters are NICs stalled on this port, retried in stall order so no
	// node starves when the port is saturated.
	waiters []*nic
	waiting map[*nic]bool
}

// Network is the simulated single-switch network.
type Network struct {
	k      *sim.Kernel
	cfg    Config
	rng    *rand.Rand
	nics   []*nic
	egress []*egressPort

	observers []func(Delivery)

	// Free lists and scratch space for the per-packet pipeline.
	pktFree []*packet
	msgFree []*messageState
	blocked []*egressPort // scratch for tryStartUplink's blocked-port scan

	// Pipeline-stage callbacks bound once at construction; every per-packet
	// event is scheduled through sim.Kernel.Call with one of these, so no
	// closures are allocated on the hot path.
	uplinkDoneFn    func(any)
	enqueueEgressFn func(any)
	egressDoneFn    func(any)
	deliverFn       func(any)

	// Statistics.
	packetsDelivered int64
	bytesDelivered   int64
	bytesByClass     map[string]int64
	stallEvents      int64
}

// New creates a network attached to kernel k.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		k:            k,
		cfg:          cfg,
		rng:          k.NewRand("netsim"),
		bytesByClass: make(map[string]int64),
	}
	queueCap := 16
	if cfg.EgressBufferBytes > 0 {
		if c := cfg.EgressBufferBytes/cfg.MTU + 1; c > queueCap {
			queueCap = c
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.nics = append(n.nics, &nic{node: i, byFlow: make(map[Flow]*flowQueue)})
		n.egress = append(n.egress, &egressPort{
			node:    i,
			queue:   pktQueue{buf: make([]*packet, 0, queueCap)},
			waiting: make(map[*nic]bool),
		})
	}
	n.uplinkDoneFn = func(a any) { n.uplinkDone(a.(*packet)) }
	n.enqueueEgressFn = func(a any) { n.enqueueEgress(a.(*packet)) }
	n.egressDoneFn = func(a any) { n.egressDone(a.(*packet)) }
	n.deliverFn = func(a any) { n.deliver(a.(*packet)) }
	return n, nil
}

// getPacket serves a packet struct, preferring the free list.
func (n *Network) getPacket() *packet {
	if l := len(n.pktFree); l > 0 {
		p := n.pktFree[l-1]
		n.pktFree = n.pktFree[:l-1]
		return p
	}
	return &packet{}
}

// putPacket recycles a delivered packet.
func (n *Network) putPacket(p *packet) {
	p.onDeliver = nil
	p.msg = nil
	n.pktFree = append(n.pktFree, p)
}

// getMessageState serves a message tracker, preferring the free list.
func (n *Network) getMessageState() *messageState {
	if l := len(n.msgFree); l > 0 {
		ms := n.msgFree[l-1]
		n.msgFree = n.msgFree[:l-1]
		return ms
	}
	return &messageState{}
}

// putMessageState recycles a finished message tracker.
func (n *Network) putMessageState(ms *messageState) {
	ms.onComplete = nil
	ms.fnArg = nil
	ms.arg = nil
	n.msgFree = append(n.msgFree, ms)
}

// MustNew is New that panics on configuration errors.
func MustNew(k *sim.Kernel, cfg Config) *Network {
	n, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of attached nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Observe registers fn to be called for every delivered packet.
func (n *Network) Observe(fn func(Delivery)) { n.observers = append(n.observers, fn) }

// serialization returns the time to push size bytes over one link.
func (n *Network) serialization(size int) sim.Duration {
	return sim.Duration(float64(size) / n.cfg.LinkBandwidth * float64(sim.Second))
}

// SendMessage injects a message of size bytes from node src to node dst on
// behalf of flow.  The message is segmented into MTU-sized packets.  When the
// last byte is delivered, onComplete is invoked with the delivery time.
// Sending to the own node is not handled here (the MPI layer short-circuits
// intra-node traffic); src and dst must differ.
func (n *Network) SendMessage(src, dst, size int, flow Flow, onComplete func(sim.Time)) error {
	ms := n.getMessageState()
	ms.onComplete = onComplete
	return n.sendSegmented(src, dst, size, flow, ms)
}

// SendMessageCall is SendMessage with an allocation-free completion: when the
// last byte is delivered, fn(deliveryTime, arg) is invoked.  Callers that
// bind fn once and thread their per-message state through arg avoid the
// per-message closure of SendMessage.
func (n *Network) SendMessageCall(src, dst, size int, flow Flow, fn func(sim.Time, any), arg any) error {
	ms := n.getMessageState()
	ms.fnArg = fn
	ms.arg = arg
	return n.sendSegmented(src, dst, size, flow, ms)
}

// sendSegmented splits the message into MTU-sized packets on the source
// NIC's flow queue.
func (n *Network) sendSegmented(src, dst, size int, flow Flow, ms *messageState) error {
	if err := n.checkEndpoints(src, dst); err != nil {
		n.putMessageState(ms)
		return err
	}
	if size <= 0 {
		n.putMessageState(ms)
		return fmt.Errorf("netsim: non-positive message size %d", size)
	}
	npkts := (size + n.cfg.MTU - 1) / n.cfg.MTU
	ms.remaining = npkts
	nc, fq := n.flowQueueFor(src, flow)
	now := n.k.Now()
	remaining := size
	for i := 0; i < npkts; i++ {
		psize := n.cfg.MTU
		if psize > remaining {
			psize = remaining
		}
		remaining -= psize
		p := n.getPacket()
		p.src, p.dst, p.size, p.flow, p.sent, p.msg = src, dst, psize, flow, now, ms
		fq.q.push(p)
	}
	n.tryStartUplink(nc)
	return nil
}

// SendProbe injects a single probe packet of size bytes and reports its
// delivery (including one-way latency) to onDeliver.  Probe packets must fit
// in one MTU.
func (n *Network) SendProbe(src, dst, size int, flow Flow, onDeliver func(Delivery)) error {
	if err := n.checkEndpoints(src, dst); err != nil {
		return err
	}
	if size <= 0 || size > n.cfg.MTU {
		return fmt.Errorf("netsim: probe size %d outside (0, MTU=%d]", size, n.cfg.MTU)
	}
	p := n.getPacket()
	p.src, p.dst, p.size, p.flow, p.sent, p.onDeliver = src, dst, size, flow, n.k.Now(), onDeliver
	n.inject(p)
	return nil
}

func (n *Network) checkEndpoints(src, dst int) error {
	if src < 0 || src >= n.cfg.Nodes || dst < 0 || dst >= n.cfg.Nodes {
		return fmt.Errorf("netsim: endpoint out of range src=%d dst=%d nodes=%d", src, dst, n.cfg.Nodes)
	}
	if src == dst {
		return fmt.Errorf("netsim: src and dst are the same node %d", src)
	}
	return nil
}

// flowQueueFor resolves (creating on first use) the per-flow FIFO of flow at
// node src.  Resolving once per message rather than once per packet keeps the
// map lookup off the per-packet path.
func (n *Network) flowQueueFor(src int, flow Flow) (*nic, *flowQueue) {
	nc := n.nics[src]
	fq := nc.byFlow[flow]
	if fq == nil {
		fq = &flowQueue{flow: flow}
		nc.byFlow[flow] = fq
		nc.queues = append(nc.queues, fq)
	}
	return nc, fq
}

// inject places a packet on its source NIC's per-flow queue.
func (n *Network) inject(p *packet) {
	nc, fq := n.flowQueueFor(p.src, p.flow)
	fq.q.push(p)
	n.tryStartUplink(nc)
}

// tryStartUplink starts transmitting the next admissible packet from the
// NIC's flow queues, in round-robin order.  If every candidate packet heads
// to a full egress buffer the NIC stalls until space frees up.
func (n *Network) tryStartUplink(nc *nic) {
	if nc.busy {
		return
	}
	total := len(nc.queues)
	if total == 0 {
		return
	}
	blocked := n.blocked[:0]
	var chosen *packet
	for i := 0; i < total; i++ {
		idx := nc.next + i
		if idx >= total {
			idx -= total
		}
		fq := nc.queues[idx]
		if fq.q.empty() {
			continue
		}
		p := fq.q.front()
		eg := n.egress[p.dst]
		if n.cfg.EgressBufferBytes > 0 && eg.buffered+p.size > n.cfg.EgressBufferBytes {
			blocked = append(blocked, eg)
			continue
		}
		chosen = fq.q.pop()
		nc.next = idx + 1
		if nc.next == total {
			nc.next = 0
		}
		break
	}
	if chosen == nil {
		if len(blocked) > 0 {
			// Head-of-line stall: register for wake-up on every blocking port
			// (eg.waiting dedupes repeats of the same port).
			nc.stalled = true
			n.stallEvents++
			for _, eg := range blocked {
				if !eg.waiting[nc] {
					eg.waiting[nc] = true
					eg.waiters = append(eg.waiters, nc)
				}
			}
		}
		n.blocked = blocked[:0]
		return
	}
	n.blocked = blocked[:0]
	nc.stalled = false
	eg := n.egress[chosen.dst]
	eg.buffered += chosen.size // credit reserved while the packet is in flight
	ser := n.serialization(chosen.size)
	nc.busy = true
	nc.busyNS += ser
	n.k.Call(ser, n.uplinkDoneFn, chosen)
}

// uplinkDone frees the uplink after a packet's serialization, launches the
// packet across the wire and through the switch's routing stage, and keeps
// the NIC draining.  Wire traversal and fabric routing are one fused event:
// the stochastic fabric delay is drawn here, which preserves the delay
// distribution while saving a heap operation per packet.
func (n *Network) uplinkDone(p *packet) {
	nc := n.nics[p.src]
	nc.busy = false
	d := n.cfg.FabricDelay
	if n.cfg.FabricJitter > 0 {
		d += sim.Duration(n.rng.Int63n(int64(2*n.cfg.FabricJitter)+1)) - n.cfg.FabricJitter
	}
	if n.cfg.TailProb > 0 && n.rng.Float64() < n.cfg.TailProb {
		d += sim.Duration(n.rng.ExpFloat64() * float64(n.cfg.TailDelay))
	}
	if d < 0 {
		d = 0
	}
	n.k.Call(n.cfg.WireDelay+d, n.enqueueEgressFn, p)
	n.tryStartUplink(nc)
}

// enqueueEgress places the packet on its destination port's queue.
func (n *Network) enqueueEgress(p *packet) {
	eg := n.egress[p.dst]
	eg.queue.push(p)
	n.tryStartEgress(eg)
}

// tryStartEgress drains the egress queue onto the downlink.
func (n *Network) tryStartEgress(eg *egressPort) {
	if eg.busy || eg.queue.empty() {
		return
	}
	p := eg.queue.pop()
	eg.busy = true
	ser := n.serialization(p.size)
	eg.busyNS += ser
	n.k.Call(ser, n.egressDoneFn, p)
}

// egressDone frees the downlink after a packet's serialization, releases the
// packet's buffer credit, retries stalled NICs and keeps the port draining.
func (n *Network) egressDone(p *packet) {
	eg := n.egress[p.dst]
	eg.busy = false
	eg.buffered -= p.size
	n.wakeWaiters(eg)
	n.k.Call(n.cfg.WireDelay, n.deliverFn, p)
	n.tryStartEgress(eg)
}

// wakeWaiters retries NICs stalled on this egress port, in the order they
// stalled (first stalled, first retried), so saturated ports serve every
// upstream node fairly.
func (n *Network) wakeWaiters(eg *egressPort) {
	if len(eg.waiters) == 0 {
		return
	}
	waiters := eg.waiters
	eg.waiters = nil
	for _, nc := range waiters {
		delete(eg.waiting, nc)
	}
	for _, nc := range waiters {
		n.tryStartUplink(nc)
	}
}

// deliver hands the packet to its destination and recycles it.
func (n *Network) deliver(p *packet) {
	n.packetsDelivered++
	n.bytesDelivered += int64(p.size)
	n.bytesByClass[p.flow.Class] += int64(p.size)
	d := Delivery{Src: p.src, Dst: p.dst, Size: p.size, Flow: p.flow, Sent: p.sent, Arrived: n.k.Now()}
	for _, obs := range n.observers {
		obs(d)
	}
	if p.onDeliver != nil {
		p.onDeliver(d)
	}
	if ms := p.msg; ms != nil {
		ms.remaining--
		if ms.remaining == 0 {
			done, fnArg, arg := ms.onComplete, ms.fnArg, ms.arg
			n.putMessageState(ms)
			if done != nil {
				done(n.k.Now())
			} else if fnArg != nil {
				fnArg(n.k.Now(), arg)
			}
		}
	}
	n.putPacket(p)
}

// Stats summarizes the traffic the network has carried so far.
type Stats struct {
	PacketsDelivered int64
	BytesDelivered   int64
	BytesByClass     map[string]int64
	StallEvents      int64
	// UplinkBusy and DownlinkBusy are the cumulative transmission times per
	// node link.
	UplinkBusy   []sim.Duration
	DownlinkBusy []sim.Duration
}

// Stats returns a snapshot of the network's counters.
func (n *Network) Stats() Stats {
	s := Stats{
		PacketsDelivered: n.packetsDelivered,
		BytesDelivered:   n.bytesDelivered,
		BytesByClass:     make(map[string]int64, len(n.bytesByClass)),
		StallEvents:      n.stallEvents,
	}
	for k, v := range n.bytesByClass {
		s.BytesByClass[k] = v
	}
	for _, nc := range n.nics {
		s.UplinkBusy = append(s.UplinkBusy, nc.busyNS)
	}
	for _, eg := range n.egress {
		s.DownlinkBusy = append(s.DownlinkBusy, eg.busyNS)
	}
	return s
}

// MeanLinkUtilization returns the mean downlink utilization (busy fraction)
// over the elapsed virtual time window; it is a ground-truth load measure
// used in tests and ablations (the methodology itself never reads it — it
// only sees probe latencies, like on real hardware).
func (n *Network) MeanLinkUtilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	var sum float64
	for _, eg := range n.egress {
		sum += float64(eg.busyNS) / float64(elapsed)
	}
	return sum / float64(len(n.egress))
}

// IdleLatencyEstimate returns the expected one-way latency of a size-byte
// packet on an otherwise idle network, excluding the stochastic tail.  It is
// used by tests and by the documentation, not by the measurement code.
func (n *Network) IdleLatencyEstimate(size int) sim.Duration {
	return n.serialization(size)*2 + 2*n.cfg.WireDelay + n.cfg.FabricDelay
}
