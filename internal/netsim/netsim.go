// Package netsim simulates a single network switch connecting a set of
// compute nodes, at packet granularity, on top of the discrete-event kernel.
//
// The model reproduces the pieces of a real InfiniBand-class switch (the
// QLogic 12300 used on LLNL's Cab cluster) that matter for the paper's
// active-measurement methodology:
//
//   - Each node has one uplink to the switch shared by every process on the
//     node.  The NIC arbitrates between per-flow queues in round-robin order,
//     so a small probe packet is never stuck behind an entire bulk message
//     from another process.
//   - The switch forwards packets through a routing stage with a small,
//     stochastic per-packet overhead (including a rare heavy tail, which the
//     paper observes even on an idle switch).
//   - Each destination node has an egress port with a finite buffer drained
//     at link rate.  When a buffer is full, upstream NICs stall — the
//     credit-based flow control that keeps latencies bounded and slows
//     senders down when the switch saturates.
//
// Probe latency therefore grows smoothly with offered load, which is exactly
// the signal the ImpactB benchmark measures.
package netsim

import (
	"fmt"
	"math/rand"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// Config describes the switch and its links.
type Config struct {
	// Nodes is the number of compute nodes attached to the switch.
	Nodes int
	// LinkBandwidth is the bandwidth of each node's uplink and downlink in
	// bytes per second.
	LinkBandwidth float64
	// MTU is the maximum packet payload in bytes; larger messages are
	// segmented.
	MTU int
	// WireDelay is the propagation delay of one link traversal (node→switch
	// or switch→node).
	WireDelay sim.Duration
	// FabricDelay is the mean per-packet routing/forwarding overhead inside
	// the switch.
	FabricDelay sim.Duration
	// FabricJitter is the half-width of the uniform jitter added to
	// FabricDelay.
	FabricJitter sim.Duration
	// TailProb is the probability that a packet experiences an additional
	// exponentially-distributed delay of mean TailDelay inside the switch
	// (buffer conflicts, arbitration misses).  This produces the small
	// high-latency tail visible on an idle switch.
	TailProb float64
	// TailDelay is the mean of the heavy-tail delay component.
	TailDelay sim.Duration
	// EgressBufferBytes is the per-output-port buffer size.  Zero means
	// unlimited buffering (no back-pressure), which is physically unrealistic
	// but useful as an ablation.
	EgressBufferBytes int
}

// CabConfig returns a configuration modelled after one bottom-level switch of
// LLNL's Cab cluster: 18 nodes, ~5 GB/s links, ~1.25 µs idle one-way packet
// latency.
func CabConfig() Config {
	return Config{
		Nodes:             18,
		LinkBandwidth:     5e9,
		MTU:               4096,
		WireDelay:         250 * sim.Nanosecond,
		FabricDelay:       200 * sim.Nanosecond,
		FabricJitter:      120 * sim.Nanosecond,
		TailProb:          0.02,
		TailDelay:         2 * sim.Microsecond,
		EgressBufferBytes: 16 * 1024,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("netsim: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("netsim: non-positive link bandwidth %v", c.LinkBandwidth)
	}
	if c.MTU <= 0 {
		return fmt.Errorf("netsim: non-positive MTU %d", c.MTU)
	}
	if c.TailProb < 0 || c.TailProb > 1 {
		return fmt.Errorf("netsim: tail probability %v outside [0,1]", c.TailProb)
	}
	if c.EgressBufferBytes < 0 {
		return fmt.Errorf("netsim: negative egress buffer %d", c.EgressBufferBytes)
	}
	if c.EgressBufferBytes > 0 && c.EgressBufferBytes < c.MTU {
		return fmt.Errorf("netsim: egress buffer %dB smaller than MTU %dB", c.EgressBufferBytes, c.MTU)
	}
	return nil
}

// Flow identifies a traffic source for NIC arbitration and accounting: every
// (class, id) pair gets its own queue at its node's NIC.
type Flow struct {
	// Class labels the software component generating the traffic, e.g.
	// "impact", "compress" or an application name.
	Class string
	// ID distinguishes flows of the same class, typically the sender rank.
	ID int
}

// Delivery describes a packet that reached its destination; observers receive
// one per packet.
type Delivery struct {
	Src, Dst int
	Size     int
	Flow     Flow
	Sent     sim.Time
	Arrived  sim.Time
}

// Latency returns the packet's one-way latency.
func (d Delivery) Latency() sim.Duration { return d.Arrived.Sub(d.Sent) }

// packet is the unit of transfer inside the simulator.
type packet struct {
	src, dst  int
	size      int
	flow      Flow
	sent      sim.Time
	onDeliver func(Delivery)
	msg       *messageState
}

// messageState tracks the remaining packets of a segmented message.
type messageState struct {
	remaining  int
	onComplete func(sim.Time)
}

// flowQueue is one per-flow FIFO at a node's NIC.
type flowQueue struct {
	flow    Flow
	packets []*packet
}

// nic models a node's network interface: per-flow queues drained round-robin
// onto the uplink.
type nic struct {
	node    int
	queues  []*flowQueue
	byFlow  map[Flow]*flowQueue
	next    int // round-robin cursor into queues
	busy    bool
	busyNS  sim.Duration
	stalled bool
}

// egressPort models one switch output port and its downlink.
type egressPort struct {
	node     int
	queue    []*packet
	buffered int
	busy     bool
	busyNS   sim.Duration
	// waiters are NICs stalled on this port, retried in stall order so no
	// node starves when the port is saturated.
	waiters []*nic
	waiting map[*nic]bool
}

// Network is the simulated single-switch network.
type Network struct {
	k      *sim.Kernel
	cfg    Config
	rng    *rand.Rand
	nics   []*nic
	egress []*egressPort

	observers []func(Delivery)

	// Statistics.
	packetsDelivered int64
	bytesDelivered   int64
	bytesByClass     map[string]int64
	stallEvents      int64
}

// New creates a network attached to kernel k.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		k:            k,
		cfg:          cfg,
		rng:          k.NewRand("netsim"),
		bytesByClass: make(map[string]int64),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.nics = append(n.nics, &nic{node: i, byFlow: make(map[Flow]*flowQueue)})
		n.egress = append(n.egress, &egressPort{node: i, waiting: make(map[*nic]bool)})
	}
	return n, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(k *sim.Kernel, cfg Config) *Network {
	n, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of attached nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Observe registers fn to be called for every delivered packet.
func (n *Network) Observe(fn func(Delivery)) { n.observers = append(n.observers, fn) }

// serialization returns the time to push size bytes over one link.
func (n *Network) serialization(size int) sim.Duration {
	return sim.Duration(float64(size) / n.cfg.LinkBandwidth * float64(sim.Second))
}

// SendMessage injects a message of size bytes from node src to node dst on
// behalf of flow.  The message is segmented into MTU-sized packets.  When the
// last byte is delivered, onComplete is invoked with the delivery time.
// Sending to the own node is not handled here (the MPI layer short-circuits
// intra-node traffic); src and dst must differ.
func (n *Network) SendMessage(src, dst, size int, flow Flow, onComplete func(sim.Time)) error {
	if err := n.checkEndpoints(src, dst); err != nil {
		return err
	}
	if size <= 0 {
		return fmt.Errorf("netsim: non-positive message size %d", size)
	}
	npkts := (size + n.cfg.MTU - 1) / n.cfg.MTU
	ms := &messageState{remaining: npkts, onComplete: onComplete}
	remaining := size
	for i := 0; i < npkts; i++ {
		psize := n.cfg.MTU
		if psize > remaining {
			psize = remaining
		}
		remaining -= psize
		n.inject(&packet{src: src, dst: dst, size: psize, flow: flow, sent: n.k.Now(), msg: ms})
	}
	return nil
}

// SendProbe injects a single probe packet of size bytes and reports its
// delivery (including one-way latency) to onDeliver.  Probe packets must fit
// in one MTU.
func (n *Network) SendProbe(src, dst, size int, flow Flow, onDeliver func(Delivery)) error {
	if err := n.checkEndpoints(src, dst); err != nil {
		return err
	}
	if size <= 0 || size > n.cfg.MTU {
		return fmt.Errorf("netsim: probe size %d outside (0, MTU=%d]", size, n.cfg.MTU)
	}
	n.inject(&packet{src: src, dst: dst, size: size, flow: flow, sent: n.k.Now(), onDeliver: onDeliver})
	return nil
}

func (n *Network) checkEndpoints(src, dst int) error {
	if src < 0 || src >= n.cfg.Nodes || dst < 0 || dst >= n.cfg.Nodes {
		return fmt.Errorf("netsim: endpoint out of range src=%d dst=%d nodes=%d", src, dst, n.cfg.Nodes)
	}
	if src == dst {
		return fmt.Errorf("netsim: src and dst are the same node %d", src)
	}
	return nil
}

// inject places a packet on its source NIC's per-flow queue.
func (n *Network) inject(p *packet) {
	nc := n.nics[p.src]
	fq := nc.byFlow[p.flow]
	if fq == nil {
		fq = &flowQueue{flow: p.flow}
		nc.byFlow[p.flow] = fq
		nc.queues = append(nc.queues, fq)
	}
	fq.packets = append(fq.packets, p)
	n.tryStartUplink(nc)
}

// tryStartUplink starts transmitting the next admissible packet from the
// NIC's flow queues, in round-robin order.  If every candidate packet heads
// to a full egress buffer the NIC stalls until space frees up.
func (n *Network) tryStartUplink(nc *nic) {
	if nc.busy {
		return
	}
	total := len(nc.queues)
	if total == 0 {
		return
	}
	blockedOn := make(map[*egressPort]bool)
	var chosen *packet
	var chosenQueue *flowQueue
	for i := 0; i < total; i++ {
		idx := (nc.next + i) % total
		fq := nc.queues[idx]
		if len(fq.packets) == 0 {
			continue
		}
		p := fq.packets[0]
		eg := n.egress[p.dst]
		if n.cfg.EgressBufferBytes > 0 && eg.buffered+p.size > n.cfg.EgressBufferBytes {
			blockedOn[eg] = true
			continue
		}
		chosen = p
		chosenQueue = fq
		nc.next = (idx + 1) % total
		break
	}
	if chosen == nil {
		if len(blockedOn) > 0 {
			// Head-of-line stall: register for wake-up on every blocking port.
			nc.stalled = true
			n.stallEvents++
			for eg := range blockedOn {
				if !eg.waiting[nc] {
					eg.waiting[nc] = true
					eg.waiters = append(eg.waiters, nc)
				}
			}
		}
		return
	}
	nc.stalled = false
	chosenQueue.packets = chosenQueue.packets[1:]
	eg := n.egress[chosen.dst]
	eg.buffered += chosen.size // credit reserved while the packet is in flight
	ser := n.serialization(chosen.size)
	nc.busy = true
	nc.busyNS += ser
	n.k.After(ser, func() {
		nc.busy = false
		n.k.After(n.cfg.WireDelay, func() { n.enterFabric(chosen) })
		n.tryStartUplink(nc)
	})
}

// enterFabric models the switch's internal routing stage.
func (n *Network) enterFabric(p *packet) {
	d := n.cfg.FabricDelay
	if n.cfg.FabricJitter > 0 {
		d += sim.Duration(n.rng.Int63n(int64(2*n.cfg.FabricJitter)+1)) - n.cfg.FabricJitter
	}
	if n.cfg.TailProb > 0 && n.rng.Float64() < n.cfg.TailProb {
		d += sim.Duration(n.rng.ExpFloat64() * float64(n.cfg.TailDelay))
	}
	if d < 0 {
		d = 0
	}
	n.k.After(d, func() { n.enqueueEgress(p) })
}

// enqueueEgress places the packet on its destination port's queue.
func (n *Network) enqueueEgress(p *packet) {
	eg := n.egress[p.dst]
	eg.queue = append(eg.queue, p)
	n.tryStartEgress(eg)
}

// tryStartEgress drains the egress queue onto the downlink.
func (n *Network) tryStartEgress(eg *egressPort) {
	if eg.busy || len(eg.queue) == 0 {
		return
	}
	p := eg.queue[0]
	eg.queue = eg.queue[1:]
	eg.busy = true
	ser := n.serialization(p.size)
	eg.busyNS += ser
	n.k.After(ser, func() {
		eg.busy = false
		eg.buffered -= p.size
		n.wakeWaiters(eg)
		n.k.After(n.cfg.WireDelay, func() { n.deliver(p) })
		n.tryStartEgress(eg)
	})
}

// wakeWaiters retries NICs stalled on this egress port, in the order they
// stalled (first stalled, first retried), so saturated ports serve every
// upstream node fairly.
func (n *Network) wakeWaiters(eg *egressPort) {
	if len(eg.waiters) == 0 {
		return
	}
	waiters := eg.waiters
	eg.waiters = nil
	for _, nc := range waiters {
		delete(eg.waiting, nc)
	}
	for _, nc := range waiters {
		n.tryStartUplink(nc)
	}
}

// deliver hands the packet to its destination.
func (n *Network) deliver(p *packet) {
	n.packetsDelivered++
	n.bytesDelivered += int64(p.size)
	n.bytesByClass[p.flow.Class] += int64(p.size)
	d := Delivery{Src: p.src, Dst: p.dst, Size: p.size, Flow: p.flow, Sent: p.sent, Arrived: n.k.Now()}
	for _, obs := range n.observers {
		obs(d)
	}
	if p.onDeliver != nil {
		p.onDeliver(d)
	}
	if p.msg != nil {
		p.msg.remaining--
		if p.msg.remaining == 0 && p.msg.onComplete != nil {
			p.msg.onComplete(n.k.Now())
		}
	}
}

// Stats summarizes the traffic the network has carried so far.
type Stats struct {
	PacketsDelivered int64
	BytesDelivered   int64
	BytesByClass     map[string]int64
	StallEvents      int64
	// UplinkBusy and DownlinkBusy are the cumulative transmission times per
	// node link.
	UplinkBusy   []sim.Duration
	DownlinkBusy []sim.Duration
}

// Stats returns a snapshot of the network's counters.
func (n *Network) Stats() Stats {
	s := Stats{
		PacketsDelivered: n.packetsDelivered,
		BytesDelivered:   n.bytesDelivered,
		BytesByClass:     make(map[string]int64, len(n.bytesByClass)),
		StallEvents:      n.stallEvents,
	}
	for k, v := range n.bytesByClass {
		s.BytesByClass[k] = v
	}
	for _, nc := range n.nics {
		s.UplinkBusy = append(s.UplinkBusy, nc.busyNS)
	}
	for _, eg := range n.egress {
		s.DownlinkBusy = append(s.DownlinkBusy, eg.busyNS)
	}
	return s
}

// MeanLinkUtilization returns the mean downlink utilization (busy fraction)
// over the elapsed virtual time window; it is a ground-truth load measure
// used in tests and ablations (the methodology itself never reads it — it
// only sees probe latencies, like on real hardware).
func (n *Network) MeanLinkUtilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	var sum float64
	for _, eg := range n.egress {
		sum += float64(eg.busyNS) / float64(elapsed)
	}
	return sum / float64(len(n.egress))
}

// IdleLatencyEstimate returns the expected one-way latency of a size-byte
// packet on an otherwise idle network, excluding the stochastic tail.  It is
// used by tests and by the documentation, not by the measurement code.
func (n *Network) IdleLatencyEstimate(size int) sim.Duration {
	return n.serialization(size)*2 + 2*n.cfg.WireDelay + n.cfg.FabricDelay
}
