// Package netsim simulates the network connecting a set of compute nodes, at
// packet granularity, on top of the discrete-event kernel.
//
// The model reproduces the pieces of a real InfiniBand-class fabric (the
// QLogic QDR hardware of LLNL's Cab cluster) that matter for the paper's
// active-measurement methodology:
//
//   - Each node has one uplink into the fabric shared by every process on the
//     node.  The NIC arbitrates between per-flow queues in round-robin order,
//     so a small probe packet is never stuck behind an entire bulk message
//     from another process.
//   - Every switch traversal adds a routing overhead with a small, stochastic
//     per-packet component (including a rare heavy tail, which the paper
//     observes even on an idle switch).
//   - Every switch output port — a node's egress port or an inter-switch
//     trunk — has a finite buffer drained at link rate.  When a buffer is
//     full, upstream transmitters stall: the credit-based flow control that
//     keeps latencies bounded and slows senders down when the fabric
//     saturates.
//
// Which ports a packet crosses is decided by a pluggable Topology (see
// topology.go): the paper's single switch (Star) or a two-stage fat-tree
// with tunable oversubscription (FatTree).  The per-hop machinery — Link
// serialization, SwitchPort queueing and credits — is shared by every
// topology, so probe latency grows smoothly with offered load on any fabric,
// which is exactly the signal the ImpactB benchmark measures.
package netsim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/telemetry"
)

// ModelVersion identifies the behavioural generation of the network model:
// its per-hop queueing mechanics, arbitration order and random-delay
// derivation.  Any change that can alter packet schedules must bump this
// constant so persisted simulation artifacts keyed on it are invalidated.
//
// Version 3 adds the schedule-relaxed execution mode (relaxed.go) and makes
// it the default: per-flow RNG substreams and fused analytic route walks
// replace the strict global event interleaving.  Strict ordering — which
// still reproduces version-2 packet schedules byte-for-byte — remains
// selectable via Config.StrictOrder and participates in the fingerprint, so
// artifacts from the two modes never collide.
//
// Version 4 adds fault injection (faults.go): trunk down/up/degrade
// transitions, failover rerouting and NIC-level retransmit.  Fault-free runs
// produce the same schedules as version 3, but the version bump invalidates
// all persisted artifacts uniformly so the fingerprint grammar change
// (Config.Faults) can never collide with a version-3 key.
//
// Version 5 fixes a credit leak on fault-induced loss: a packet dropped
// mid-serialization (portDone on a downed trunk) now releases the next hop's
// buffer reserve and wakes its waiters, where version 4 leaked the reserve
// for the rest of the run.  Fault-free schedules are unchanged — the loss
// branch is gated on an active plan — but faulted runs can now unblock
// stalled senders earlier, so their packet schedules shift and every faulted
// version-4 artifact must be invalidated.
const ModelVersion = 5

// Config describes the fabric and its links.
type Config struct {
	// Nodes is the number of compute nodes attached to the fabric.
	Nodes int
	// LinkBandwidth is the bandwidth of every link (node uplinks/downlinks
	// and inter-switch trunks) in bytes per second.
	LinkBandwidth float64
	// MTU is the maximum packet payload in bytes; larger messages are
	// segmented.
	MTU int
	// WireDelay is the propagation delay of one link traversal.
	WireDelay sim.Duration
	// FabricDelay is the mean per-packet routing/forwarding overhead of one
	// switch traversal.
	FabricDelay sim.Duration
	// FabricJitter is the half-width of the uniform jitter added to
	// FabricDelay.
	FabricJitter sim.Duration
	// TailProb is the probability that a switch traversal adds an
	// exponentially-distributed delay of mean TailDelay (buffer conflicts,
	// arbitration misses).  This produces the small high-latency tail visible
	// on an idle switch.
	TailProb float64
	// TailDelay is the mean of the heavy-tail delay component.
	TailDelay sim.Duration
	// EgressBufferBytes is the per-output-port buffer size (egress ports and
	// trunks alike).  Zero means unlimited buffering (no back-pressure),
	// which is physically unrealistic but useful as an ablation.
	EgressBufferBytes int
	// Topology selects the fabric layout connecting the nodes; nil means the
	// paper's single switch (Star).
	Topology Topology
	// StrictOrder selects the golden-oracle execution mode: one global
	// (time, seq) event interleaving with all fabric delays drawn from a
	// single shared RNG stream, byte-identical to ModelVersion 2 schedules.
	// The zero value selects the relaxed mode (relaxed.go): per-flow RNG
	// substreams and fused route walks, deterministic per root seed but only
	// statistically equivalent to strict runs.  The mode changes simulated
	// schedules, so it participates in Fingerprint.
	StrictOrder bool
	// Workers caps the worker goroutines the relaxed mode may use to execute
	// independent leaf-domain batches concurrently; 0 or 1 means fully
	// sequential.  Parallel execution is restricted to batches whose merge
	// order is forced, so simulated schedules are byte-identical for every
	// Workers value — which is why Workers is deliberately EXCLUDED from
	// Fingerprint: it is an execution knob, not a model parameter.
	Workers int
	// Faults schedules trunk failures, repairs and degradations for the run
	// (faults.go); nil injects nothing.  An active plan changes simulated
	// schedules, so it participates in Fingerprint (canonically encoded).
	Faults *FaultPlan
	// NoTrainFuse disables the relaxed engine's train fusion (relaxed.go):
	// NIC drains fall back to the per-packet pick/walk loop, which is the
	// oracle the fused path must reproduce byte-for-byte.  Fusion is a pure
	// wall-clock knob — fused and unfused runs emit identical schedules for
	// every seed and every Workers value — so like Workers it is deliberately
	// EXCLUDED from Fingerprint and does not bump ModelVersion: cached
	// artifacts stay valid either way.  The NoTrainFuseEnv environment
	// variable forces it on process-wide.
	NoTrainFuse bool
}

// NoTrainFuseEnv is the environment kill switch for relaxed-mode train
// fusion: any non-empty value makes every Network behave as if
// Config.NoTrainFuse were set (per-packet oracle drains).
const NoTrainFuseEnv = "SWITCHPROBE_NO_TRAIN_FUSE"

// CabConfig returns a configuration modelled after one bottom-level switch of
// LLNL's Cab cluster: 18 nodes, ~5 GB/s links, ~1.25 µs idle one-way packet
// latency.
func CabConfig() Config {
	return Config{
		Nodes:             18,
		LinkBandwidth:     5e9,
		MTU:               4096,
		WireDelay:         250 * sim.Nanosecond,
		FabricDelay:       200 * sim.Nanosecond,
		FabricJitter:      120 * sim.Nanosecond,
		TailProb:          0.02,
		TailDelay:         2 * sim.Microsecond,
		EgressBufferBytes: 16 * 1024,
	}
}

// Fingerprint returns a canonical, deterministic encoding of every field
// that influences simulated packet behaviour, including the topology.  It is
// the network layer's contribution to content-addressed run hashing: two
// configs with equal fingerprints produce identical packet schedules for the
// same kernel seed.  New Config fields MUST be added here.
func (c Config) Fingerprint() string {
	order := "relaxed"
	if c.StrictOrder {
		order = "strict"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d;bw=%s;mtu=%d;wire=%d;fabric=%d;jitter=%d;tailp=%s;taild=%d;ebuf=%d;topo=%s;order=%s",
		c.Nodes,
		strconv.FormatFloat(c.LinkBandwidth, 'g', -1, 64),
		c.MTU,
		int64(c.WireDelay),
		int64(c.FabricDelay),
		int64(c.FabricJitter),
		strconv.FormatFloat(c.TailProb, 'g', -1, 64),
		int64(c.TailDelay),
		c.EgressBufferBytes,
		TopologyFingerprint(c.topology()),
		order)
	if c.Faults.Active() {
		// Only active plans join the fingerprint, so fault-free configs keep
		// their exact version-3 encoding (modulo the ModelVersion bump).
		fmt.Fprintf(&b, ";faults=%s", c.Faults.Fingerprint())
	}
	// Config.Workers and Config.NoTrainFuse are intentionally absent:
	// parallel relaxed execution and train fusion are both byte-identical to
	// the sequential per-packet engine, so they must not fork the artifact
	// space.
	return b.String()
}

// TopologyFingerprinter lets a custom Topology implementation provide its own
// canonical parameter encoding for content-addressed run hashing.
type TopologyFingerprinter interface {
	Fingerprint() string
}

// TopologyFingerprint canonically encodes a topology's identity and
// parameters.  The built-in topologies encode their struct fields; custom
// implementations may implement TopologyFingerprinter, otherwise the Go
// value syntax of the topology value is used (adequate for flat parameter
// structs, ambiguous for pointer-rich ones — implement the interface then).
func TopologyFingerprint(t Topology) string {
	switch topo := t.(type) {
	case nil:
		return "star"
	case TopologyFingerprinter:
		return topo.Fingerprint()
	case Star:
		return "star"
	case FatTree:
		return fmt.Sprintf("fattree(leaves=%d,uplinks=%d)", topo.Leaves, topo.UplinksPerLeaf)
	default:
		return fmt.Sprintf("%s:%#v", t.Name(), t)
	}
}

// topology resolves the configured topology, defaulting to the single
// switch.
func (c Config) topology() Topology {
	if c.Topology == nil {
		return Star{}
	}
	return c.Topology
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.validateScalars(); err != nil {
		return err
	}
	lay, err := c.topology().Build(c.Nodes)
	if err != nil {
		return err
	}
	return c.Faults.Validate(lay)
}

// validateScalars checks everything but the topology layout, so Network
// construction can validate without building the O(nodes²) route table
// twice.
func (c Config) validateScalars() error {
	if c.Nodes < 2 {
		return fmt.Errorf("netsim: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("netsim: non-positive link bandwidth %v", c.LinkBandwidth)
	}
	if c.MTU <= 0 {
		return fmt.Errorf("netsim: non-positive MTU %d", c.MTU)
	}
	if c.TailProb < 0 || c.TailProb > 1 {
		return fmt.Errorf("netsim: tail probability %v outside [0,1]", c.TailProb)
	}
	if c.EgressBufferBytes < 0 {
		return fmt.Errorf("netsim: negative egress buffer %d", c.EgressBufferBytes)
	}
	if c.EgressBufferBytes > 0 && c.EgressBufferBytes < c.MTU {
		return fmt.Errorf("netsim: egress buffer %dB smaller than MTU %dB", c.EgressBufferBytes, c.MTU)
	}
	return nil
}

// Flow identifies a traffic source for NIC arbitration and accounting: every
// (class, id) pair gets its own queue at its node's NIC.
type Flow struct {
	// Class labels the software component generating the traffic, e.g.
	// "impact", "compress" or an application name.
	Class string
	// ID distinguishes flows of the same class, typically the sender rank.
	ID int
}

// Delivery describes a packet that reached its destination; observers receive
// one per packet.
type Delivery struct {
	Src, Dst int
	Size     int
	Flow     Flow
	Sent     sim.Time
	Arrived  sim.Time
}

// Latency returns the packet's one-way latency.
func (d Delivery) Latency() sim.Duration { return d.Arrived.Sub(d.Sent) }

// Link models one transmission medium: serialization at Bandwidth followed
// by a fixed propagation delay.
type Link struct {
	Bandwidth float64
	Delay     sim.Duration
}

// Serialization returns the time to push size bytes onto the link.
func (l Link) Serialization(size int) sim.Duration {
	return sim.Duration(float64(size) / l.Bandwidth * float64(sim.Second))
}

// packet is the unit of transfer inside the simulator.  Packets are drawn
// from a per-network free list and recycled after delivery, so steady-state
// traffic allocates nothing.
type packet struct {
	src, dst  int
	size      int
	flow      Flow
	sent      sim.Time
	onDeliver func(Delivery)
	msg       *messageState
	// route is the shared, read-only port sequence the packet traverses
	// (ending at dst's egress port); hop indexes the port it is at or headed
	// to.
	route []*SwitchPort
	hop   int
	// retries counts losses on failed trunks (faults.go); it scales the
	// retransmit backoff exponentially and saturates instead of overflowing.
	retries uint8
}

// nextHop returns the port the packet visits after the current one, nil at
// the final egress port.
func (p *packet) nextHop() *SwitchPort {
	if p.hop+1 < len(p.route) {
		return p.route[p.hop+1]
	}
	return nil
}

// messageState tracks the remaining packets of a segmented message.  Pooled
// like packets.  Completion is reported either through onComplete (a closure)
// or through the allocation-free (fnArg, arg) pair; at most one is set.
type messageState struct {
	remaining  int
	onComplete func(sim.Time)
	fnArg      func(sim.Time, any)
	arg        any
	// completeAt is the max arrival time committed so far by relaxed-mode
	// walks of this message's packets; the completion fires there.
	completeAt sim.Time
}

// pktQueue is a FIFO of packets that reuses its backing array: popping
// advances a head index instead of reslicing, and the buffer rewinds once
// drained, so a steady flow of packets touches the allocator only while the
// queue's high-water mark grows.
type pktQueue struct {
	buf  []*packet
	head int
}

func (q *pktQueue) push(p *packet) { q.buf = append(q.buf, p) }

func (q *pktQueue) empty() bool { return q.head == len(q.buf) }

func (q *pktQueue) front() *packet { return q.buf[q.head] }

func (q *pktQueue) pop() *packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// sender is an upstream transmitter — a NIC or a switch port — that can
// stall on a full downstream buffer and is retried when credits return.
type sender interface {
	resume(n *Network)
}

// flowQueue is one per-flow FIFO at a node's NIC.
type flowQueue struct {
	flow Flow
	q    pktQueue
	// idx is the queue's position in nic.queues and its bit in nic.active;
	// fixed for the queue's lifetime (queues are only ever appended).
	idx int
	// rng is the flow's private delay substream (relaxed mode), seeded
	// deterministically from (root seed, source node, class, id) when the
	// queue is created; unseeded in strict mode, which draws from the
	// shared stream.  It is a sim.Substream rather than math/rand: walks
	// draw one fabric delay per packet-hop, and the splitmix64 step is
	// several times cheaper per draw.
	rng sim.Substream
	// exprPending marks a head that was express-eligible (expressHeads) but
	// denied buffer admission: it keeps its express pick — at the port
	// wake's instant, not the drain cursor's — when credits return.
	exprPending bool
	// exprSeen is the last instant this flow received an express grant.
	// Strict round-robin arbitration owes a newly-active flow ONE slot, not
	// one per packet: without this stamp a window of sends injected to a
	// parked NIC would be expressed packet-by-packet (each pop makes the
	// next packet the fresh head), degrading the batched cursor to per-
	// packet processing.  Initialized to a pre-simulation sentinel so an
	// inject at t=0 is still eligible.
	exprSeen sim.Time
	// bytes accumulates the flow's delivered payload in relaxed mode, where
	// walks bypass the per-packet class map; Stats folds it back in.
	bytes int64
}

// nic models a node's network interface: per-flow queues drained round-robin
// onto the uplink.
type nic struct {
	node    int
	link    Link
	queues  []*flowQueue
	byFlow  map[Flow]*flowQueue
	lastFq  *flowQueue // most recent byFlow hit; senders repeat flows, so this skips the map hash
	next    int        // round-robin cursor into queues
	busy    bool
	busyNS  sim.Duration
	stalled bool
	// Relaxed-mode drain state: freeAt is how far ahead of the kernel clock
	// the uplink has committed serializations; parked marks the NIC as
	// suspended on the network's advance list (drain reached the commit
	// horizon), deduping repeated parks; waitingOn lists the ports whose
	// relWaiters FIFOs the NIC is queued in (at most a handful, so slice
	// scans beat the strict path's per-port map here).
	freeAt sim.Time
	// exprFreeAt paces express picks (expressHeads) among themselves at link
	// rate, so a burst of fresh flow heads departs serialized rather than in
	// parallel.
	exprFreeAt sim.Time
	parked     bool
	dirty      bool // queued on the network's same-instant batch-drain list
	waitingOn  []*SwitchPort
	// active is the bitmap of non-empty flow queues (bit fq.idx set iff
	// fq.q holds packets), maintained at every queue push/pop.  Arbitration
	// scans walk its set bits instead of the full queue list, so pick cost
	// scales with the number of flows that actually hold traffic — and the
	// word-ordered scan visits exactly the indices the full scan would, so
	// round-robin order (and with it waiter registration order) is
	// unchanged.
	active []uint64
	// crossQueued counts queued packets whose walk would leave the NIC's
	// leaf domain (maintained at enqueue/pick time, relaxed mode only).  A
	// parked NIC with crossQueued == 0 is confined to its own leaf's ports,
	// which is what lets advance windows partition by leaf and run on
	// worker goroutines (workers.go).
	crossQueued int
	// trainHS is drainTrain's per-segment hop-state scratch.  It lives on
	// the nic rather than the fused walk's stack so the array is not
	// re-zeroed on every train (segment loads overwrite every field); a NIC
	// is drained by exactly one goroutine at a time — the coordinator or
	// its leaf's worker — so the scratch is never shared.
	trainHS [maxTrainHops]trainHop
}

// markActive records that queue idx holds packets.
func (nc *nic) markActive(idx int) { nc.active[idx>>6] |= 1 << (uint(idx) & 63) }

// clearActive records that queue idx ran empty.
func (nc *nic) clearActive(idx int) { nc.active[idx>>6] &^= 1 << (uint(idx) & 63) }

// nextActive returns the index of the first non-empty flow queue in
// [from, limit), or -1 when the range holds none.  Scanning a wrapped
// round-robin window is two calls: [cursor, len) then [0, cursor).
func (nc *nic) nextActive(from, limit int) int {
	if from >= limit {
		return -1
	}
	w := from >> 6
	word := nc.active[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			if idx >= limit {
				return -1
			}
			return idx
		}
		w++
		if w<<6 >= limit {
			return -1
		}
		word = nc.active[w]
	}
}

// isWaitingOn reports whether the NIC is already queued in pt's relaxed
// waiter FIFO.
func (nc *nic) isWaitingOn(pt *SwitchPort) bool {
	for _, w := range nc.waitingOn {
		if w == pt {
			return true
		}
	}
	return false
}

// dropWaitingOn removes pt from the NIC's registration list.
func (nc *nic) dropWaitingOn(pt *SwitchPort) {
	for i, w := range nc.waitingOn {
		if w == pt {
			last := len(nc.waitingOn) - 1
			nc.waitingOn[i] = nc.waitingOn[last]
			nc.waitingOn[last] = nil
			nc.waitingOn = nc.waitingOn[:last]
			return
		}
	}
}

// resume implements sender.  Relaxed mode drains directly: a resumed waiter
// must attempt its pick at the wake instant, even if its uplink cursor is
// committed ahead of the clock, or it would forfeit its FIFO turn.
func (nc *nic) resume(n *Network) {
	if n.relaxed {
		n.drainNic(nc, nil)
		return
	}
	n.tryStartUplink(nc)
}

// SwitchPort is one output port of a switch: a finite input buffer governed
// by credits, a FIFO of packets awaiting transmission, and the link the port
// drains onto.  Egress ports deliver to a node; trunk ports forward to the
// next switch stage.
type SwitchPort struct {
	label    string
	node     int // destination node for egress ports, -1 for trunks
	link     Link
	capacity int // input buffer bytes; 0 = unlimited

	queue    pktQueue
	buffered int
	busy     bool
	busyNS   sim.Duration

	// waiters are transmitters stalled on this port's buffer, retried in
	// stall order so no sender starves when the port is saturated.
	waiters []sender
	waiting map[sender]bool

	// Relaxed-mode walk state: freeAt is when the port's link frees after
	// the last committed serialization; led schedules the future credit
	// releases matching the reserves counted in buffered; relWaiters is the
	// stall-order FIFO of NICs blocked on this buffer (only NICs transmit in
	// relaxed mode — walks never stall mid-route); idx is the port's
	// position in Network.ports (for lane wake entries); wakePending dedupes
	// the deferred waiter wake.
	freeAt sim.Time
	// relArrival is the latest honest (pre-FIFO-wait) arrival instant of any
	// packet committed here; freeAt − relArrival is the backlog that had
	// genuinely arrived by then, which is what probe shadow service charges
	// instead of the commit-order freeAt (see walkPacket).
	relArrival  sim.Time
	led         relLedger
	relWaiters  []*nic
	idx         int32
	wakePending bool

	// Fault state (faults.go, trunk ports only): down marks the trunk out of
	// service; downAt is the instant of the current or next scheduled failure
	// (maxSimTime when none), which relaxed walks compare committed arrivals
	// against; slow > 1 scales the port's serialization time (degraded link).
	down   bool
	downAt sim.Time
	slow   float64
}

// Label names the port ("down3" for node 3's egress, "leaf0.up1" for a
// trunk).
func (pt *SwitchPort) Label() string { return pt.label }

// BusyTime returns the port's cumulative transmission time.
func (pt *SwitchPort) BusyTime() sim.Duration { return pt.busyNS }

// hasRoom reports whether the port's input buffer can accept size more
// bytes.
func (pt *SwitchPort) hasRoom(size int) bool {
	return pt.capacity == 0 || pt.buffered+size <= pt.capacity
}

// resume implements sender.
func (pt *SwitchPort) resume(n *Network) { n.tryStartPort(pt) }

// Network is the simulated fabric: NICs, switch ports and the routes between
// them, laid out by the configured topology.
type Network struct {
	k      *sim.Kernel
	cfg    Config
	topo   Topology
	layout Layout
	rng    *rand.Rand
	// tracePid is this network's lane group in a structured trace, allocated
	// on first sampled emission (0 = none yet); atomic because relaxed-mode
	// leaf workers emit delivery events concurrently (see trace.go).
	tracePid atomic.Int64
	nics     []*nic
	egress   []*SwitchPort // per-node egress ports
	trunks   []*SwitchPort // inter-switch ports (empty for Star)
	ports    []*SwitchPort // every port, indexed by SwitchPort.idx
	// routes[src*Nodes+dst] is the shared port sequence between the pair,
	// ending at dst's egress port; resolved once at construction so the
	// per-packet path costs one slice-header copy.
	routes [][]*SwitchPort

	observers []func(Delivery)

	// Free lists and scratch space for the per-packet pipeline.
	pktFree []*packet
	msgFree []*messageState
	blocked []*SwitchPort // scratch for tryStartUplink's blocked-port scan

	// fastOn enables the cut-through fast path (see fastpath.go); lane is
	// its deferred event queue.
	fastOn bool
	lane   lane

	// serSize/serVal memoize the last two distinct packet serialization
	// times (every link shares one bandwidth).  Traffic is dominated by
	// full-MTU segments plus one probe size, so the per-packet floating
	// point divides almost always hit the cache.
	serSize [2]int
	serVal  [2]sim.Duration

	// Pipeline-stage callbacks bound once at construction; every per-packet
	// event is scheduled through sim.Kernel.Call with one of these, so no
	// closures are allocated on the hot path.
	uplinkDoneFn func(any)
	arriveFn     func(any)
	portDoneFn   func(any)
	deliverFn    func(any)

	// relaxed selects the schedule-relaxed execution mode (relaxed.go);
	// fuse enables its train-fused drains (Config.NoTrainFuse and the
	// NoTrainFuseEnv kill switch clear it); lookahead bounds how far ahead
	// of the kernel clock a NIC drain may commit; the callbacks are its
	// kernel-event fallbacks for when the lane is unavailable.
	relaxed         bool
	fuse            bool
	lookahead       sim.Duration
	serResidual     sim.Duration
	workers         int
	relaxDeliverFn  func(any)
	relaxCompleteFn func(any)
	portWakeFn      func(any)
	advanceFn       func(any)

	// Parked NICs awaiting the shared deferred advance entry (relaxed mode):
	// advanceAt/advGen identify the pending entry (stale generations no-op),
	// advancing suppresses re-arming while advance() itself resumes drains,
	// and parkedScratch is the spare backing array the resume loop swaps in.
	parked        []*nic
	parkedScratch []*nic
	advancing     bool
	advPending    bool
	advanceAt     sim.Time
	advGen        int32
	// NICs with freshly enqueued traffic awaiting the same-instant batch
	// drain: injection marks the NIC dirty instead of draining inline, so a
	// rank posting a whole window of sends in one event pays one drain scan,
	// not one per message.  batchPending dedupes the lane entry; batchFn is
	// the kernel-event fallback.
	dirtyNics    []*nic
	batchPending bool
	batchFn      func(any)
	// Leaf-domain worker scratch (workers.go): per-slot side-effect sinks,
	// the slot lists grouped by leaf, and the leaves used this window.
	sinks     []relSink
	leafSlots [][]int
	leafUsed  []int
	leafSeen  []bool
	// wakingPort is the port whose waiter FIFO is mid-wake: the resumed NIC
	// may attempt admission there even though other waiters are queued (it
	// is the FIFO head taking its granted turn).
	wakingPort *SwitchPort

	// Fault-injection runtime (faults.go): faultsOn gates every hot-path
	// check; faultPend is the time-sorted transition queue; nextFaultAt
	// bounds the relaxed engine's lookahead horizon; faultRng feeds the
	// MTBF/MTTR renewal generator.
	faultsOn     bool
	faultPend    []faultTransition
	faultRng     sim.Substream
	mtbf, mttr   sim.Duration
	nextFaultAt  sim.Time
	faultFn      func(any)
	retryFn      func(any)
	retryTimeout sim.Duration
	retryCap     sim.Duration

	// Statistics.
	packetsDelivered int64
	bytesDelivered   int64
	bytesByClass     map[string]int64
	stallEvents      int64
	cutThroughEvents int64
	parallelWindows  int64
	trains           trainStats
	// Fault telemetry (faults.go).
	trunksFailed         int64
	packetsRetransmitted int64
	routesRecomputed     int64
	retryBackoffNs       int64
}

// New creates a network attached to kernel k.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if err := cfg.validateScalars(); err != nil {
		return nil, err
	}
	topo := cfg.topology()
	layout, err := topo.Build(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if err := layout.validate(cfg.Nodes); err != nil {
		return nil, err
	}
	if err := cfg.Faults.Validate(layout); err != nil {
		return nil, err
	}
	n := &Network{
		k:            k,
		cfg:          cfg,
		topo:         topo,
		layout:       layout,
		rng:          k.NewRand("netsim"),
		bytesByClass: make(map[string]int64),
		fastOn:       os.Getenv("SWITCHPROBE_NO_CUTTHROUGH") == "",
	}
	link := Link{Bandwidth: cfg.LinkBandwidth, Delay: cfg.WireDelay}
	queueCap := 16
	if cfg.EgressBufferBytes > 0 {
		if c := cfg.EgressBufferBytes/cfg.MTU + 1; c > queueCap {
			queueCap = c
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.nics = append(n.nics, &nic{
			node: i, link: link, byFlow: make(map[Flow]*flowQueue),
			// Pre-size the stall bookkeeping: a NIC rarely waits on more
			// than a couple of ports at once, and growing these on the
			// drain path was a measurable share of relaxed-mode allocs.
			waitingOn: make([]*SwitchPort, 0, 4),
			active:    make([]uint64, 1),
		})
		n.egress = append(n.egress, n.newPort(fmt.Sprintf("down%d", i), i, link, queueCap))
	}
	for _, spec := range layout.Trunks {
		n.trunks = append(n.trunks, n.newPort(spec.Label, -1, link, queueCap))
	}
	n.routes = make([][]*SwitchPort, cfg.Nodes*cfg.Nodes)
	maxHops := 1
	for src := 0; src < cfg.Nodes; src++ {
		for dst := 0; dst < cfg.Nodes; dst++ {
			if src == dst {
				continue
			}
			hops := layout.Routes[src*cfg.Nodes+dst]
			route := make([]*SwitchPort, 0, len(hops)+1)
			for _, h := range hops {
				route = append(route, n.trunks[h])
			}
			n.routes[src*cfg.Nodes+dst] = append(route, n.egress[dst])
			if len(route) > maxHops {
				maxHops = len(route)
			}
		}
	}
	// Relaxed-mode lookahead: a multiple of one full traversal of the
	// deepest route (per hop: wire propagation, mean fabric overhead, one
	// MTU serialization) plus the final wire.  A drain never commits further
	// ahead of the clock than this, so traffic injected by events the drain
	// could not yet see contends for arbitration at most one lookahead
	// window late.  The window multiplier trades scheduling overhead (one
	// advance entry and one batch of drains per window) against arbitration
	// staleness; the statistical-equivalence gates bound the drift the
	// chosen value may introduce.
	serMTU := Link{Bandwidth: cfg.LinkBandwidth}.Serialization(cfg.MTU)
	n.lookahead = relaxedLookaheadWindows * (sim.Duration(maxHops)*(cfg.WireDelay+cfg.FabricDelay+serMTU) + cfg.WireDelay)
	// Probe-express residual: a probe enqueued while its NIC's drain cursor
	// is committed ahead is walked at now + serResidual instead of waiting
	// for the cursor (relaxed.go, expressProbes).  Half an MTU serialization
	// is the expected residual service time of the packet a busy strict-mode
	// uplink would be transmitting at the probe's arrival — the head-of-line
	// wait round-robin arbitration actually imposes on a probe.
	n.serResidual = serMTU / 2
	n.uplinkDoneFn = func(a any) { n.uplinkDone(a.(*packet)) }
	n.arriveFn = func(a any) { n.arrive(a.(*packet)) }
	n.portDoneFn = func(a any) { n.portDone(a.(*packet)) }
	n.deliverFn = func(a any) { n.deliver(a.(*packet)) }
	n.relaxed = !cfg.StrictOrder
	// Train fusion is disabled under an active fault plan: fused segments
	// cache per-hop port state that a trunk transition could invalidate
	// mid-train, and the conservative kill keeps the loss/reroute paths on
	// the one audited walk.
	n.fuse = n.relaxed && !cfg.NoTrainFuse && os.Getenv(NoTrainFuseEnv) == "" && !cfg.Faults.Active()
	n.workers = cfg.Workers
	n.relaxDeliverFn = func(a any) { n.relaxedDeliver(a.(*packet), n.k.Now()) }
	n.relaxCompleteFn = func(a any) { n.relaxedComplete(a.(*packet), n.k.Now()) }
	n.portWakeFn = func(a any) { n.relaxedPortWake(a.(*SwitchPort)) }
	n.advanceFn = func(a any) { n.advance(a.(int32)) }
	n.batchFn = func(any) { n.drainBatch() }
	if n.fastOn && k.SetAux(n) != nil {
		// Another network already runs its lane on this kernel; this one
		// falls back to plain kernel events (schedules are identical).
		n.fastOn = false
	}
	if cfg.Faults.Active() {
		n.setupFaults(cfg.Faults)
	}
	return n, nil
}

// newPort builds one switch output port and registers it in the port index.
func (n *Network) newPort(label string, node int, link Link, queueCap int) *SwitchPort {
	pt := &SwitchPort{
		label:    label,
		node:     node,
		link:     link,
		capacity: n.cfg.EgressBufferBytes,
		queue:    pktQueue{buf: make([]*packet, 0, queueCap)},
		waiting:  make(map[sender]bool),
		idx:      int32(len(n.ports)),
		downAt:   maxSimTime,
		// Pre-size the relaxed-mode credit ledger and waiter FIFO so the
		// steady-state drain path appends without touching the allocator.
		led:        relLedger{q: make([]release, 0, 32)},
		relWaiters: make([]*nic, 0, 4),
	}
	n.ports = append(n.ports, pt)
	return pt
}

// getPacket serves a packet struct, preferring the free list.
func (n *Network) getPacket() *packet {
	if l := len(n.pktFree); l > 0 {
		p := n.pktFree[l-1]
		n.pktFree = n.pktFree[:l-1]
		return p
	}
	return &packet{}
}

// putPacket recycles a delivered packet.
func (n *Network) putPacket(p *packet) {
	p.onDeliver = nil
	p.msg = nil
	p.route = nil
	p.retries = 0
	n.pktFree = append(n.pktFree, p)
}

// getMessageState serves a message tracker, preferring the free list.
func (n *Network) getMessageState() *messageState {
	if l := len(n.msgFree); l > 0 {
		ms := n.msgFree[l-1]
		n.msgFree = n.msgFree[:l-1]
		return ms
	}
	return &messageState{}
}

// putMessageState recycles a finished message tracker.
func (n *Network) putMessageState(ms *messageState) {
	ms.onComplete = nil
	ms.fnArg = nil
	ms.arg = nil
	ms.completeAt = 0
	n.msgFree = append(n.msgFree, ms)
}

// MustNew is New that panics on configuration errors.
func MustNew(k *sim.Kernel, cfg Config) *Network {
	n, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of attached nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Topology returns the fabric layout the network was built with.
func (n *Network) Topology() Topology { return n.topo }

// Leaves returns the number of bottom-level switches.
func (n *Network) Leaves() int { return n.layout.Leaves }

// LeafOf returns the leaf switch the node's uplink attaches to.
func (n *Network) LeafOf(node int) int { return n.layout.LeafOf[node] }

// PathHops returns the number of switch output ports a packet from src to
// dst crosses (1 on a single switch, 3 across a fat-tree's spine).
func (n *Network) PathHops(src, dst int) int { return len(n.routes[src*n.cfg.Nodes+dst]) }

// Observe registers fn to be called for every delivered packet, at the
// packet's arrival instant (the cut-through fast path advances the kernel
// clock through deferred deliveries, so observers always see the true
// virtual clock).
func (n *Network) Observe(fn func(Delivery)) {
	n.drainGuard()
	n.observers = append(n.observers, fn)
}

// serialization returns the time to push size bytes over one link (all
// links share one bandwidth), memoizing the last two distinct sizes.
func (n *Network) serialization(size int) sim.Duration {
	if n.serSize[0] == size {
		return n.serVal[0]
	}
	if n.serSize[1] == size {
		n.serSize[0], n.serSize[1] = size, n.serSize[0]
		n.serVal[0], n.serVal[1] = n.serVal[1], n.serVal[0]
		return n.serVal[0]
	}
	v := Link{Bandwidth: n.cfg.LinkBandwidth}.Serialization(size)
	n.serSize[1], n.serVal[1] = n.serSize[0], n.serVal[0]
	n.serSize[0], n.serVal[0] = size, v
	return v
}

// SendMessage injects a message of size bytes from node src to node dst on
// behalf of flow.  The message is segmented into MTU-sized packets.  When the
// last byte is delivered, onComplete is invoked with the delivery time.
// Sending to the own node is not handled here (the MPI layer short-circuits
// intra-node traffic); src and dst must differ.
func (n *Network) SendMessage(src, dst, size int, flow Flow, onComplete func(sim.Time)) error {
	ms := n.getMessageState()
	ms.onComplete = onComplete
	return n.sendSegmented(src, dst, size, flow, ms)
}

// SendMessageCall is SendMessage with an allocation-free completion: when the
// last byte is delivered, fn(deliveryTime, arg) is invoked.  Callers that
// bind fn once and thread their per-message state through arg avoid the
// per-message closure of SendMessage.
func (n *Network) SendMessageCall(src, dst, size int, flow Flow, fn func(sim.Time, any), arg any) error {
	ms := n.getMessageState()
	ms.fnArg = fn
	ms.arg = arg
	return n.sendSegmented(src, dst, size, flow, ms)
}

// sendSegmented splits the message into MTU-sized packets on the source
// NIC's flow queue.
func (n *Network) sendSegmented(src, dst, size int, flow Flow, ms *messageState) error {
	if err := n.checkEndpoints(src, dst); err != nil {
		n.putMessageState(ms)
		return err
	}
	if size <= 0 {
		n.putMessageState(ms)
		return fmt.Errorf("netsim: non-positive message size %d", size)
	}
	n.drainGuard()
	npkts := (size + n.cfg.MTU - 1) / n.cfg.MTU
	ms.remaining = npkts
	nc, fq := n.flowQueueFor(src, flow)
	route := n.routes[src*n.cfg.Nodes+dst]
	now := n.k.Now()
	remaining := size
	for i := 0; i < npkts; i++ {
		psize := n.cfg.MTU
		if psize > remaining {
			psize = remaining
		}
		remaining -= psize
		p := n.getPacket()
		p.src, p.dst, p.size, p.flow, p.sent, p.msg = src, dst, psize, flow, now, ms
		p.route, p.hop = route, 0
		fq.q.push(p)
		if n.relaxed && n.crossLeaf(p) {
			nc.crossQueued++
		}
	}
	nc.markActive(fq.idx)
	n.pump(nc)
	return nil
}

// SendProbe injects a single probe packet of size bytes and reports its
// delivery (including one-way latency) to onDeliver.  Probe packets must fit
// in one MTU.
func (n *Network) SendProbe(src, dst, size int, flow Flow, onDeliver func(Delivery)) error {
	if err := n.checkEndpoints(src, dst); err != nil {
		return err
	}
	if size <= 0 || size > n.cfg.MTU {
		return fmt.Errorf("netsim: probe size %d outside (0, MTU=%d]", size, n.cfg.MTU)
	}
	n.drainGuard()
	p := n.getPacket()
	p.src, p.dst, p.size, p.flow, p.sent, p.onDeliver = src, dst, size, flow, n.k.Now(), onDeliver
	p.route, p.hop = n.routes[src*n.cfg.Nodes+dst], 0
	n.inject(p)
	return nil
}

func (n *Network) checkEndpoints(src, dst int) error {
	if src < 0 || src >= n.cfg.Nodes || dst < 0 || dst >= n.cfg.Nodes {
		return fmt.Errorf("netsim: endpoint out of range src=%d dst=%d nodes=%d", src, dst, n.cfg.Nodes)
	}
	if src == dst {
		return fmt.Errorf("netsim: src and dst are the same node %d", src)
	}
	return nil
}

// flowQueueFor resolves (creating on first use) the per-flow FIFO of flow at
// node src.  Resolving once per message rather than once per packet keeps the
// map lookup off the per-packet path.
func (n *Network) flowQueueFor(src int, flow Flow) (*nic, *flowQueue) {
	nc := n.nics[src]
	if fq := nc.lastFq; fq != nil && fq.flow == flow {
		return nc, fq
	}
	fq := nc.byFlow[flow]
	if fq == nil {
		fq = &flowQueue{flow: flow, exprSeen: -1, idx: len(nc.queues)}
		if n.relaxed {
			// Seed the flow's private delay substream now rather than at its
			// first walk: the fused train path reads fq.rng directly, and an
			// eager seed keeps the whole derivation allocation-free (the name
			// is assembled in a stack buffer, never materialized as a string).
			var nb [64]byte
			b := append(nb[:0], "flow/"...)
			b = strconv.AppendInt(b, int64(src), 10)
			b = append(b, '/')
			b = append(b, flow.Class...)
			b = append(b, '/')
			b = strconv.AppendInt(b, int64(flow.ID), 10)
			fq.rng = n.k.NewSubstreamBytes(b)
		}
		nc.byFlow[flow] = fq
		nc.queues = append(nc.queues, fq)
		if len(nc.queues) > len(nc.active)*64 {
			nc.active = append(nc.active, 0)
		}
	}
	nc.lastFq = fq
	return nc, fq
}

// inject places a packet on its source NIC's per-flow queue.
func (n *Network) inject(p *packet) {
	nc, fq := n.flowQueueFor(p.src, p.flow)
	fq.q.push(p)
	if n.relaxed && n.crossLeaf(p) {
		nc.crossQueued++
	}
	nc.markActive(fq.idx)
	n.pump(nc)
}

// tryStartUplink starts transmitting the next admissible packet from the
// NIC's flow queues, in round-robin order.  Admission is governed by the
// first port on the packet's route (the destination's egress port on a
// single switch, a leaf uplink across the spine): if every candidate packet
// heads to a full buffer the NIC stalls until space frees up.
func (n *Network) tryStartUplink(nc *nic) {
	if nc.busy {
		return
	}
	total := len(nc.queues)
	if total == 0 {
		return
	}
	blocked := n.blocked[:0]
	var chosen *packet
	for i := 0; i < total; i++ {
		idx := nc.next + i
		if idx >= total {
			idx -= total
		}
		fq := nc.queues[idx]
		if fq.q.empty() {
			continue
		}
		p := fq.q.front()
		first := p.route[0]
		if (n.faultsOn && first.down) || !first.hasRoom(p.size) {
			// A down first trunk blocks like a full one: the NIC registers on
			// it and is retried when the repair's wakeWaiters fires.
			blocked = append(blocked, first)
			continue
		}
		chosen = fq.q.pop()
		if fq.q.empty() {
			nc.clearActive(idx)
		}
		nc.next = idx + 1
		if nc.next == total {
			nc.next = 0
		}
		break
	}
	if chosen == nil {
		if len(blocked) > 0 {
			// Head-of-line stall: register for wake-up on every blocking port
			// (the waiting map dedupes repeats of the same port).
			nc.stalled = true
			n.stallEvents++
			for _, pt := range blocked {
				if !pt.waiting[nc] {
					pt.waiting[nc] = true
					pt.waiters = append(pt.waiters, nc)
				}
			}
		}
		n.blocked = blocked[:0]
		return
	}
	n.blocked = blocked[:0]
	nc.stalled = false
	chosen.route[0].buffered += chosen.size // credit reserved while in flight
	ser := n.serialization(chosen.size)
	nc.busy = true
	nc.busyNS += ser
	n.post(ser, laneUplinkDone, n.uplinkDoneFn, chosen)
}

// fabricDelay draws the stochastic overhead of one switch traversal from the
// shared math/rand stream (strict mode): mean FabricDelay, uniform jitter,
// and the rare exponential heavy tail.  The draw sequence is byte-pinned to
// the version-2 schedules, so this must keep using math/rand even though
// fabricDelayFrom mirrors the same distribution on cheaper substreams.
func (n *Network) fabricDelay() sim.Duration {
	rng := n.rng
	d := n.cfg.FabricDelay
	if n.cfg.FabricJitter > 0 {
		d += sim.Duration(rng.Int63n(int64(2*n.cfg.FabricJitter)+1)) - n.cfg.FabricJitter
	}
	if n.cfg.TailProb > 0 && rng.Float64() < n.cfg.TailProb {
		d += sim.Duration(rng.ExpFloat64() * float64(n.cfg.TailDelay))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// fabricDelayFrom is fabricDelay drawing from an explicit per-flow substream
// (relaxed mode): the same distribution — mean, uniform jitter, exponential
// tail — on a generator that costs a few instructions per draw, since walks
// consume one variate per packet-hop.
func (n *Network) fabricDelayFrom(rng *sim.Substream) sim.Duration {
	d := n.cfg.FabricDelay
	if n.cfg.FabricJitter > 0 {
		d += sim.Duration(rng.Int63n(int64(2*n.cfg.FabricJitter)+1)) - n.cfg.FabricJitter
	}
	if n.cfg.TailProb > 0 && rng.Float64() < n.cfg.TailProb {
		d += sim.Duration(rng.ExpFloat64() * float64(n.cfg.TailDelay))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// uplinkDone frees the uplink after a packet's serialization, launches the
// packet across the wire and through the first switch's routing stage, and
// keeps the NIC draining.  Wire traversal and fabric routing are one fused
// event: the stochastic fabric delay is drawn here, which preserves the
// delay distribution while saving a heap operation per packet.
func (n *Network) uplinkDone(p *packet) {
	nc := n.nics[p.src]
	nc.busy = false
	n.post(nc.link.Delay+n.fabricDelay(), laneArrive, n.arriveFn, p)
	n.tryStartUplink(nc)
}

// arrive places the packet on the queue of the port it has reached.  A
// packet arriving at a trunk that failed while it was in flight is lost and
// retransmitted (its buffer reserve, taken at admission, is released).
func (n *Network) arrive(p *packet) {
	pt := p.route[p.hop]
	if n.faultsOn && pt.down {
		pt.buffered -= p.size
		n.losePacket(p, n.k.Now())
		return
	}
	pt.queue.push(p)
	n.tryStartPort(pt)
}

// tryStartPort drains the port's FIFO onto its link.  A port whose front
// packet heads to a full downstream buffer stalls whole (head-of-line, as in
// a real FIFO output queue) until credits return; the final egress port has
// no downstream buffer and never stalls.  A front packet headed to a DOWN
// trunk — its route went stale while it queued here — is dropped and
// retransmitted instead of stalling the FIFO behind a link that may never
// return.
func (n *Network) tryStartPort(pt *SwitchPort) {
	if pt.busy {
		return
	}
	freed := false
	for !pt.queue.empty() {
		p := pt.queue.front()
		next := p.nextHop()
		if n.faultsOn && next != nil && next.down {
			pt.queue.pop()
			pt.buffered -= p.size
			freed = true
			n.losePacket(p, n.k.Now())
			continue
		}
		if next != nil {
			if !next.hasRoom(p.size) {
				n.stallEvents++
				if !next.waiting[pt] {
					next.waiting[pt] = true
					next.waiters = append(next.waiters, pt)
				}
				break
			}
			next.buffered += p.size // credit reserved while in flight
		}
		pt.queue.pop()
		pt.busy = true
		ser := n.serialization(p.size)
		if n.faultsOn && pt.slow > 1 {
			ser = sim.Duration(float64(ser) * pt.slow) // degraded link
		}
		pt.busyNS += ser
		n.post(ser, lanePortDone, n.portDoneFn, p)
		break
	}
	if freed {
		n.wakeWaiters(pt)
	}
}

// portDone frees the port after a packet's serialization, releases the
// packet's buffer credit, retries stalled upstream transmitters, forwards
// the packet (to the next switch stage, or to its destination if this was
// the egress port) and keeps the port draining.
func (n *Network) portDone(p *packet) {
	pt := p.route[p.hop]
	pt.busy = false
	pt.buffered -= p.size
	n.wakeWaiters(pt)
	if n.faultsOn && pt.down {
		// The trunk failed while this packet was mid-serialization: the
		// transmission was cut and the packet is lost.  Release the next
		// hop's credit too — tryStartPort reserved it when serialization
		// began, and the packet will never arrive to claim it; without the
		// release the reserve leaks until the run ends, shrinking the next
		// hop's buffer for every later packet.
		if next := p.nextHop(); next != nil {
			next.buffered -= p.size
			n.wakeWaiters(next)
		}
		n.losePacket(p, n.k.Now())
		return
	}
	p.hop++
	if p.hop < len(p.route) {
		n.post(pt.link.Delay+n.fabricDelay(), laneArrive, n.arriveFn, p)
	} else {
		n.postDeliver(pt.link.Delay, p)
	}
	n.tryStartPort(pt)
}

// wakeWaiters retries transmitters stalled on this port, in the order they
// stalled (first stalled, first retried), so saturated ports serve every
// upstream NIC and trunk fairly.
func (n *Network) wakeWaiters(pt *SwitchPort) {
	if len(pt.waiters) == 0 {
		return
	}
	waiters := pt.waiters
	pt.waiters = nil
	for _, s := range waiters {
		delete(pt.waiting, s)
	}
	for _, s := range waiters {
		s.resume(n)
	}
}

// deliver hands the packet to its destination and recycles it (kernel event
// context: the arrival instant is the kernel clock; the kernel has already
// drained every deferred lane entry ordered before this event).
func (n *Network) deliver(p *packet) { n.deliverAt(p, n.k.Now()) }

// deliverAt is the delivery bookkeeping at an explicit arrival instant; at
// always equals the kernel clock (the fast path advances the clock to the
// entry's timestamp before executing it), so completion callbacks, probe
// callbacks and observers all run at the packet's true arrival time.
func (n *Network) deliverAt(p *packet, at sim.Time) {
	n.packetsDelivered++
	n.bytesDelivered += int64(p.size)
	n.bytesByClass[p.flow.Class] += int64(p.size)
	if telemetry.TraceEnabled() && telemetry.TraceSampleHit() {
		n.traceDelivery(p, at)
	}
	d := Delivery{Src: p.src, Dst: p.dst, Size: p.size, Flow: p.flow, Sent: p.sent, Arrived: at}
	for _, obs := range n.observers {
		obs(d)
	}
	if p.onDeliver != nil {
		p.onDeliver(d)
	}
	if ms := p.msg; ms != nil {
		ms.remaining--
		if ms.remaining == 0 {
			n.finishMessage(ms, at)
		}
	}
	n.putPacket(p)
}

// finishMessage recycles a completed message tracker and fires its
// completion callback at time at.
func (n *Network) finishMessage(ms *messageState, at sim.Time) {
	done, fnArg, arg := ms.onComplete, ms.fnArg, ms.arg
	n.putMessageState(ms)
	if done != nil {
		done(at)
	} else if fnArg != nil {
		fnArg(at, arg)
	}
}

// Stats summarizes the traffic the network has carried so far.
type Stats struct {
	PacketsDelivered int64
	BytesDelivered   int64
	BytesByClass     map[string]int64
	StallEvents      int64
	// CutThroughEvents is the number of would-be kernel events the
	// cut-through fast path computed analytically instead of scheduling.
	// It changes with contention and fast-path availability but never with
	// the simulated schedule itself.
	CutThroughEvents int64
	// ParallelWindows is the number of advance windows executed on worker
	// goroutines (Config.Workers > 1 and the window partitioned by leaf).
	// Execution telemetry only: it never affects the simulated schedule.
	ParallelWindows int64
	// TrainsWalked and TrainPackets count the fused same-flow packet trains
	// the relaxed engine advanced in one pass and the packets they carried.
	// Execution telemetry only (like ParallelWindows): fusion is byte-
	// identical to the per-packet walk, so these never affect the schedule.
	TrainsWalked int64
	TrainPackets int64
	// TrainAborts counts fusion attempts cut short, keyed by cause: "wake"
	// (a wake-exempt competitor's admission came due mid-train), "probe"
	// (head packet carries a delivery observer), "route" (route longer than
	// the fused walk's fixed-size hop state), "cap" (per-segment packet cap
	// reached).
	TrainAborts map[string]int64
	// LedgerClamps counts relLedger.push calls that had to clamp a release
	// "marginally late" — a probe's shadow service finishing before the last
	// committed release.  A drifting value flags credit-timing skew.
	LedgerClamps int64
	// Fault-injection telemetry (faults.go): trunk failures applied, packets
	// lost on failed trunks and retransmitted, node pairs whose route failed
	// over (or back), and the summed retransmit backoff.  All zero on a
	// fault-free run.
	TrunksFailed         int64
	PacketsRetransmitted int64
	RoutesRecomputed     int64
	RetryBackoffNs       int64
	// UplinkBusy and DownlinkBusy are the cumulative transmission times per
	// node link.
	UplinkBusy   []sim.Duration
	DownlinkBusy []sim.Duration
	// TrunkLabels and TrunkBusy are the inter-switch ports and their
	// cumulative transmission times (empty on a single switch).
	TrunkLabels []string
	TrunkBusy   []sim.Duration
}

// Stats returns a snapshot of the network's counters.
func (n *Network) Stats() Stats {
	n.drainGuard()
	s := Stats{
		PacketsDelivered: n.packetsDelivered,
		BytesDelivered:   n.bytesDelivered,
		BytesByClass:     make(map[string]int64, len(n.bytesByClass)),
		StallEvents:      n.stallEvents,
		CutThroughEvents: n.cutThroughEvents,
		ParallelWindows:  n.parallelWindows,
		TrainsWalked:     n.trains.trains,
		TrainPackets:     n.trains.packets,
		TrainAborts: map[string]int64{
			"wake":  n.trains.abortWake,
			"probe": n.trains.abortProbe,
			"route": n.trains.abortRoute,
			"cap":   n.trains.abortCap,
		},
		TrunksFailed:         n.trunksFailed,
		PacketsRetransmitted: n.packetsRetransmitted,
		RoutesRecomputed:     n.routesRecomputed,
		RetryBackoffNs:       n.retryBackoffNs,
	}
	for _, pt := range n.ports {
		s.LedgerClamps += pt.led.clamps
	}
	for k, v := range n.bytesByClass {
		s.BytesByClass[k] = v
	}
	for _, nc := range n.nics {
		// Relaxed-mode walks account per-flow instead of through the class
		// map; fold those counters in here.
		for _, fq := range nc.queues {
			if fq.bytes != 0 {
				s.BytesByClass[fq.flow.Class] += fq.bytes
			}
		}
	}
	for _, nc := range n.nics {
		s.UplinkBusy = append(s.UplinkBusy, nc.busyNS)
	}
	for _, pt := range n.egress {
		s.DownlinkBusy = append(s.DownlinkBusy, pt.busyNS)
	}
	for _, pt := range n.trunks {
		s.TrunkLabels = append(s.TrunkLabels, pt.label)
		s.TrunkBusy = append(s.TrunkBusy, pt.busyNS)
	}
	return s
}

// MeanLinkUtilization returns the mean downlink utilization (busy fraction)
// over the elapsed virtual time window; it is a ground-truth load measure
// used in tests and ablations (the methodology itself never reads it — it
// only sees probe latencies, like on real hardware).
func (n *Network) MeanLinkUtilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	n.drainGuard()
	var sum float64
	for _, pt := range n.egress {
		sum += float64(pt.busyNS) / float64(elapsed)
	}
	return sum / float64(len(n.egress))
}

// IdleLatencyEstimate returns the expected one-way latency of a size-byte
// packet crossing a single switch on an otherwise idle network, excluding
// the stochastic tail.  It is used by tests and by the documentation, not by
// the measurement code.
func (n *Network) IdleLatencyEstimate(size int) sim.Duration {
	return n.serialization(size)*2 + 2*n.cfg.WireDelay + n.cfg.FabricDelay
}

// PathIdleLatencyEstimate is IdleLatencyEstimate for a concrete node pair
// under the configured topology: each port on the route adds one
// serialization, one wire traversal and one fabric traversal.
func (n *Network) PathIdleLatencyEstimate(src, dst, size int) sim.Duration {
	h := sim.Duration(n.PathHops(src, dst))
	return n.serialization(size)*(h+1) + n.cfg.WireDelay*(h+1) + n.cfg.FabricDelay*h
}
