package netsim

import (
	"testing"
	"testing/quick"

	"github.com/hpcperf/switchprobe/internal/sim"
)

func testConfig() Config {
	cfg := CabConfig()
	cfg.Nodes = 4
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := CabConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.LinkBandwidth = 0 },
		func(c *Config) { c.MTU = 0 },
		func(c *Config) { c.TailProb = 1.5 },
		func(c *Config) { c.TailProb = -0.1 },
		func(c *Config) { c.EgressBufferBytes = -1 },
		func(c *Config) { c.EgressBufferBytes = 100 },
	}
	for i, mutate := range bad {
		c := CabConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(k, Config{}); err == nil {
		t.Fatal("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic")
		}
	}()
	MustNew(k, Config{})
}

func TestCabConfigShape(t *testing.T) {
	c := CabConfig()
	if c.Nodes != 18 {
		t.Fatalf("nodes = %d, want 18", c.Nodes)
	}
	if c.LinkBandwidth != 5e9 {
		t.Fatalf("bandwidth = %v, want 5e9", c.LinkBandwidth)
	}
}

func TestIdleProbeLatency(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	cfg.TailProb = 0 // deterministic path for this test
	cfg.FabricJitter = 0
	n := MustNew(k, cfg)
	var got sim.Duration
	err := n.SendProbe(0, 1, 1024, Flow{Class: "impact", ID: 0}, func(d Delivery) {
		got = d.Latency()
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	want := n.IdleLatencyEstimate(1024)
	if got != want {
		t.Fatalf("idle probe latency = %v, want %v", got, want)
	}
	// Sanity: the Cab-like idle latency should be around 1-1.5 µs.
	if got < 800*sim.Nanosecond || got > 2*sim.Microsecond {
		t.Fatalf("idle latency %v outside the expected Cab-like range", got)
	}
}

func TestProbeErrors(t *testing.T) {
	k := sim.NewKernel(1)
	n := MustNew(k, testConfig())
	cases := []struct {
		src, dst, size int
	}{
		{0, 0, 100},     // same node
		{-1, 1, 100},    // src out of range
		{0, 99, 100},    // dst out of range
		{0, 1, 0},       // zero size
		{0, 1, 1 << 20}, // larger than MTU
	}
	for i, c := range cases {
		if err := n.SendProbe(c.src, c.dst, c.size, Flow{}, nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMessageErrors(t *testing.T) {
	k := sim.NewKernel(1)
	n := MustNew(k, testConfig())
	if err := n.SendMessage(0, 0, 100, Flow{}, nil); err == nil {
		t.Fatal("expected same-node error")
	}
	if err := n.SendMessage(0, 1, 0, Flow{}, nil); err == nil {
		t.Fatal("expected size error")
	}
	if err := n.SendMessage(5, 1, 10, Flow{}, nil); err == nil {
		t.Fatal("expected range error")
	}
}

func TestMessageSegmentationAndCompletion(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	n := MustNew(k, cfg)
	size := cfg.MTU*3 + 100 // 4 packets
	completions := 0
	var completedAt sim.Time
	if err := n.SendMessage(0, 2, size, Flow{Class: "app", ID: 7}, func(at sim.Time) {
		completions++
		completedAt = at
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if completions != 1 {
		t.Fatalf("completions = %d, want 1", completions)
	}
	if completedAt == 0 {
		t.Fatal("completion time not set")
	}
	s := n.Stats()
	if s.PacketsDelivered != 4 {
		t.Fatalf("packets = %d, want 4", s.PacketsDelivered)
	}
	if s.BytesDelivered != int64(size) {
		t.Fatalf("bytes = %d, want %d", s.BytesDelivered, size)
	}
	if s.BytesByClass["app"] != int64(size) {
		t.Fatalf("bytes by class = %v", s.BytesByClass)
	}
}

func TestObserverSeesEveryPacket(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	n := MustNew(k, cfg)
	seen := 0
	n.Observe(func(d Delivery) {
		seen++
		if d.Latency() <= 0 {
			t.Errorf("non-positive latency %v", d.Latency())
		}
	})
	if err := n.SendMessage(1, 3, cfg.MTU*5, Flow{Class: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if seen != 5 {
		t.Fatalf("observer saw %d packets, want 5", seen)
	}
}

func TestSingleFlowThroughputNearLinkRate(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	n := MustNew(k, cfg)
	const totalBytes = 10 << 20 // 10 MB
	done := sim.Time(0)
	if err := n.SendMessage(0, 1, totalBytes, Flow{Class: "bulk"}, func(at sim.Time) { done = at }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	elapsed := done.Seconds()
	gbps := float64(totalBytes) / elapsed
	// Should achieve at least 80% of link bandwidth and never exceed it by
	// more than rounding.
	if gbps < 0.8*cfg.LinkBandwidth {
		t.Fatalf("throughput %.2e B/s too low (link %.2e)", gbps, cfg.LinkBandwidth)
	}
	if gbps > 1.05*cfg.LinkBandwidth {
		t.Fatalf("throughput %.2e B/s exceeds link bandwidth %.2e", gbps, cfg.LinkBandwidth)
	}
}

func TestRoundRobinProtectsProbeFromBulkFlow(t *testing.T) {
	// A probe sharing the NIC with a large in-flight bulk message must not
	// wait for the entire message: the NIC arbitrates per flow.
	k := sim.NewKernel(1)
	cfg := testConfig()
	cfg.TailProb = 0
	n := MustNew(k, cfg)
	bulkBytes := 2 << 20 // 2 MB to a different destination
	if err := n.SendMessage(0, 2, bulkBytes, Flow{Class: "bulk", ID: 1}, nil); err != nil {
		t.Fatal(err)
	}
	var probeLatency sim.Duration
	k.After(10*sim.Microsecond, func() {
		if err := n.SendProbe(0, 1, 1024, Flow{Class: "impact", ID: 0}, func(d Delivery) {
			probeLatency = d.Latency()
		}); err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	bulkDrain := n.serialization(bulkBytes)
	if probeLatency == 0 {
		t.Fatal("probe never delivered")
	}
	if probeLatency > bulkDrain/10 {
		t.Fatalf("probe latency %v suggests FIFO behind the whole bulk message (drain %v)", probeLatency, bulkDrain)
	}
	if probeLatency < n.IdleLatencyEstimate(1024) {
		t.Fatalf("probe latency %v below idle estimate", probeLatency)
	}
}

func TestBackpressureBoundsLatencyAndThrottlesSenders(t *testing.T) {
	// Several nodes blast traffic at node 0; with finite egress buffers the
	// probe latency through the hot port stays bounded near the buffer drain
	// time, while with unlimited buffers it grows far beyond it.
	run := func(buffer int) sim.Duration {
		k := sim.NewKernel(7)
		cfg := testConfig()
		cfg.EgressBufferBytes = buffer
		cfg.TailProb = 0
		n := MustNew(k, cfg)
		for src := 1; src < cfg.Nodes; src++ {
			if err := n.SendMessage(src, 0, 4<<20, Flow{Class: "blast", ID: src}, nil); err != nil {
				t.Fatal(err)
			}
		}
		var lat sim.Duration
		k.After(500*sim.Microsecond, func() {
			if err := n.SendProbe(1, 0, 1024, Flow{Class: "impact"}, func(d Delivery) { lat = d.Latency() }); err != nil {
				t.Fatal(err)
			}
		})
		k.Run()
		if lat == 0 {
			t.Fatal("probe never delivered")
		}
		return lat
	}
	bounded := run(32 * 1024)
	unbounded := run(0)
	bufferDrain := sim.Duration(float64(32*1024) / testConfig().LinkBandwidth * float64(sim.Second))
	if bounded > 6*bufferDrain {
		t.Fatalf("back-pressured probe latency %v far exceeds buffer drain %v", bounded, bufferDrain)
	}
	if unbounded < 4*bounded {
		t.Fatalf("unlimited-buffer latency %v not much larger than bounded %v", unbounded, bounded)
	}
}

func TestStallEventsCountedUnderCongestion(t *testing.T) {
	k := sim.NewKernel(3)
	cfg := testConfig()
	n := MustNew(k, cfg)
	for src := 1; src < cfg.Nodes; src++ {
		if err := n.SendMessage(src, 0, 1<<20, Flow{Class: "blast", ID: src}, nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if n.Stats().StallEvents == 0 {
		t.Fatal("expected stall events when a single egress port is oversubscribed")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	// Mean probe latency must increase monotonically-ish with background load;
	// this is the physical basis of the whole methodology.
	meanProbe := func(bgMessages int) float64 {
		k := sim.NewKernel(11)
		cfg := testConfig()
		n := MustNew(k, cfg)
		// Background: each node sends bgMessages of 40 KB to the next node
		// every 200 µs.
		for node := 0; node < cfg.Nodes; node++ {
			node := node
			k.Spawn("bg", func(p *sim.Proc) {
				for {
					for m := 0; m < bgMessages; m++ {
						dst := (node + 1 + m%(cfg.Nodes-1)) % cfg.Nodes
						if dst == node {
							dst = (dst + 1) % cfg.Nodes
						}
						_ = n.SendMessage(node, dst, 40*1024, Flow{Class: "bg", ID: node}, nil)
					}
					p.Sleep(200 * sim.Microsecond)
				}
			})
		}
		var sum float64
		var count int
		k.Spawn("probe", func(p *sim.Proc) {
			for {
				p.Sleep(50 * sim.Microsecond)
				_ = n.SendProbe(0, 2, 1024, Flow{Class: "impact"}, func(d Delivery) {
					sum += d.Latency().Micros()
					count++
				})
			}
		})
		k.RunUntil(sim.Time(20 * sim.Millisecond))
		k.Shutdown()
		if count == 0 {
			t.Fatal("no probes delivered")
		}
		return sum / float64(count)
	}
	idle := meanProbe(0)
	light := meanProbe(1)
	heavy := meanProbe(8)
	if !(idle < light && light < heavy) {
		t.Fatalf("latency not increasing with load: idle=%.2f light=%.2f heavy=%.2f µs", idle, light, heavy)
	}
	if idle < 1.0 || idle > 2.0 {
		t.Fatalf("idle mean latency %.2f µs outside the expected ~1.25 µs band", idle)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int64, sim.Time) {
		k := sim.NewKernel(99)
		cfg := testConfig()
		n := MustNew(k, cfg)
		var last sim.Time
		n.Observe(func(d Delivery) { last = d.Arrived })
		for i := 0; i < 10; i++ {
			src := i % cfg.Nodes
			dst := (i + 1) % cfg.Nodes
			if err := n.SendMessage(src, dst, 10000+i*1000, Flow{Class: "x", ID: i}, nil); err != nil {
				t.Fatal(err)
			}
		}
		k.Run()
		return n.Stats().PacketsDelivered, last
	}
	p1, t1 := run()
	p2, t2 := run()
	if p1 != p2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", p1, t1, p2, t2)
	}
}

func TestMeanLinkUtilization(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	n := MustNew(k, cfg)
	if err := n.SendMessage(0, 1, 5<<20, Flow{Class: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	end := k.Run()
	u := n.MeanLinkUtilization(sim.Duration(end))
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	if n.MeanLinkUtilization(0) != 0 {
		t.Fatal("zero elapsed should give zero utilization")
	}
}

// Property: every byte sent is eventually delivered exactly once
// (conservation), for arbitrary message patterns.
func TestConservationProperty(t *testing.T) {
	prop := func(spec []uint16) bool {
		k := sim.NewKernel(5)
		cfg := testConfig()
		n := MustNew(k, cfg)
		var sent int64
		completions := 0
		want := 0
		for i, s := range spec {
			if i >= 25 {
				break
			}
			src := int(s) % cfg.Nodes
			dst := (src + 1 + int(s>>3)%(cfg.Nodes-1)) % cfg.Nodes
			if dst == src {
				continue
			}
			size := int(s%200)*97 + 1
			sent += int64(size)
			want++
			if err := n.SendMessage(src, dst, size, Flow{Class: "p", ID: i}, func(sim.Time) { completions++ }); err != nil {
				return false
			}
		}
		k.Run()
		st := n.Stats()
		return st.BytesDelivered == sent && completions == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPacketDelivery(b *testing.B) {
	k := sim.NewKernel(1)
	cfg := CabConfig()
	n := MustNew(k, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % cfg.Nodes
		dst := (i + 1) % cfg.Nodes
		if err := n.SendProbe(src, dst, 1024, Flow{Class: "bench"}, nil); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}

// benchBulkTraffic drives a closed-loop message load through the bare
// network kernel — no mpisim ranks, no measurement harness — so the relaxed
// and strict pipelines can be compared on pure simulator throughput (the
// end-to-end campaign benchmarks dilute the kernel with rank scheduling).
// Every node keeps one message stream in flight, injecting the next message
// from the previous one's completion, the steady-state shape campaign
// traffic has between bursts.
func benchBulkTraffic(b *testing.B, strict bool) {
	const perNode = 250
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		cfg := CabConfig()
		cfg.StrictOrder = strict
		n := MustNew(k, cfg)
		delivered := 0
		var send func(src, m int)
		send = func(src, m int) {
			if m >= perNode {
				return
			}
			dst := (src + 1 + m) % cfg.Nodes
			if dst == src {
				dst = (dst + 1) % cfg.Nodes
			}
			size := 2048 + (m%7)*1024
			if err := n.SendMessage(src, dst, size, Flow{Class: "bulk", ID: m % 8},
				func(sim.Time) { delivered++; send(src, m+1) }); err != nil {
				b.Fatal(err)
			}
		}
		for src := 0; src < cfg.Nodes; src++ {
			send(src, 0)
		}
		k.Run()
		if want := cfg.Nodes * perNode; delivered != want {
			b.Fatalf("delivered %d of %d messages", delivered, want)
		}
	}
}

func BenchmarkBulkTrafficRelaxed(b *testing.B) { benchBulkTraffic(b, false) }
func BenchmarkBulkTrafficStrict(b *testing.B)  { benchBulkTraffic(b, true) }

// benchFaultTraffic is the faulted-vs-clean A/B pair for the fault-injection
// machinery: the same closed-loop cross-leaf load over a redundant fat-tree,
// with and without a plan that fails one leaf-0 uplink mid-run (repaired
// later) and halves the other.  The clean run prices the cost of merely
// carrying the fault hooks on the hot path; the faulted run prices failover
// recomputation, NIC retransmits, and lookahead clamping, and exports the
// fault counters as benchmark metrics so CI can assert the machinery
// actually engaged.
func benchFaultTraffic(b *testing.B, faulted bool) {
	const perNode = 250
	b.ReportAllocs()
	var st Stats
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		cfg := CabConfig()
		cfg.Topology = FatTree{Leaves: 2, UplinksPerLeaf: 2}
		if faulted {
			cfg.Faults = &FaultPlan{Events: []FaultEvent{
				{At: 300 * sim.Microsecond, Trunk: "leaf0.up0", Kind: FaultTrunkDown},
				{At: 900 * sim.Microsecond, Trunk: "leaf0.up0", Kind: FaultTrunkUp},
				{At: 600 * sim.Microsecond, Trunk: "leaf0.up1", Kind: FaultDegrade, Factor: 2},
			}}
		}
		n := MustNew(k, cfg)
		delivered := 0
		var send func(src, m int)
		send = func(src, m int) {
			if m >= perNode {
				return
			}
			// Always cross-leaf: the paired node on the other leaf, so every
			// message rides the uplinks the plan fails.
			dst := (src + cfg.Nodes/2) % cfg.Nodes
			size := 2048 + (m%7)*1024
			if err := n.SendMessage(src, dst, size, Flow{Class: "bulk", ID: m % 8},
				func(sim.Time) { delivered++; send(src, m+1) }); err != nil {
				b.Fatal(err)
			}
		}
		for src := 0; src < cfg.Nodes; src++ {
			send(src, 0)
		}
		k.Run()
		if want := cfg.Nodes * perNode; delivered != want {
			b.Fatalf("delivered %d of %d messages", delivered, want)
		}
		st = n.Stats()
		if faulted && st.TrunksFailed == 0 {
			b.Fatal("faulted benchmark applied no trunk failures")
		}
	}
	b.ReportMetric(float64(st.TrunksFailed), "trunks_failed/op")
	b.ReportMetric(float64(st.PacketsRetransmitted), "retransmits/op")
	b.ReportMetric(float64(st.RoutesRecomputed), "reroutes/op")
}

func BenchmarkFaultTrafficFaulted(b *testing.B) { benchFaultTraffic(b, true) }
func BenchmarkFaultTrafficClean(b *testing.B)   { benchFaultTraffic(b, false) }
