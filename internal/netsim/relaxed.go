// Schedule-relaxed execution: fused route walks on per-flow random
// substreams.
//
// The strict pipeline (netsim.go) replays one global (time, seq) interleaving
// of every per-hop event, drawing all stochastic fabric delays from a single
// shared RNG stream.  That pins a total order across flows that the paper's
// methodology never needs — it only needs statistically faithful latency and
// slowdown distributions — and it is why the cut-through fast path's 82–85%
// event elision bought only ~5% wall-clock: the events got cheaper, but every
// one of them still had to happen, in order.
//
// Relaxed mode (the default since ModelVersion 3) removes the order pin:
//
//   - Per-flow RNG substreams.  Each flow queue draws its fabric delays from
//     a private stream seeded deterministically from (root seed, source node,
//     flow class, flow id) via sim.Kernel.NewSubstream.  One flow's draws no
//     longer serialize against every other flow's, so the simulator is free
//     to advance flows out of global order while each flow's delay sequence
//     — and therefore the run as a whole for a fixed root seed — stays
//     bit-reproducible.
//
//   - Fused route walks.  When a NIC picks a packet, walkPacket advances it
//     through its entire route analytically in one pass — serialization,
//     wire, fabric draw, port-FIFO wait, credit admission per hop — instead
//     of scheduling 4–8 lane events per packet.  Port state is kept as
//     scalars a walk can push forward: freeAt (when the port's link frees)
//     and a credit ledger of scheduled future buffer releases, so head-of-
//     line blocking and back-pressure stalls shift a walk's hop times exactly
//     like the strict event cascade would.
//
//   - Conservative lookahead.  A NIC batch-commits consecutive picks ahead
//     of the kernel clock, but never at or beyond the next instant the rest
//     of the simulation can act (the kernel's next event or the lane's next
//     entry): a completion or probe injection scheduled before that horizon
//     could add a competing flow, and round-robin arbitration must see it.
//     Blocked or out-of-horizon NICs park behind a kick entry on the
//     existing deferred lane, which already interleaves with kernel events
//     in (time, seq) order.
//
// Only three kinds of deferred work survive per message: NIC kicks, probe /
// observer deliveries (which must run user callbacks at their true virtual
// time), and one completion entry per message.  Bulk traffic — the dominant
// packet population — crosses the fabric with zero scheduled events.
//
// Relaxed runs are deterministic for a fixed root seed but NOT byte-identical
// to strict runs; the strict mode remains selectable (Config.StrictOrder /
// SWITCHPROBE_STRICT_ORDER) as the golden oracle, and the equivalence tests
// assert the two agree distributionally.
package netsim

import (
	"fmt"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// relaxedLookaheadWindows scales the relaxed-mode commit horizon in units of
// one deepest-route traversal.  Larger values amortize the advance/wake
// machinery over more packets per batch but let a drain commit further ahead
// of traffic it cannot yet see; one traversal is the largest window that
// keeps arbitration staleness below what contention-sensitive orderings
// (concurrent traffic overtaking serialized traffic) can tolerate — at 2 the
// scheduling overhead barely drops while measured distributions start to
// drift, and at 4 orderings invert outright.
const relaxedLookaheadWindows = 1

// release is one scheduled future buffer-credit return on a port's ledger.
// cum is the cumulative bytes of every release ever pushed, so a range of
// releases is a subtraction of two entries rather than a sum.
type release struct {
	at  sim.Time
	cum int64
}

// relLedger tracks the scheduled credit releases of one port in relaxed
// mode.  Reserves are folded into SwitchPort.buffered immediately (as in
// strict mode); their matching releases land here, timestamped, so admission
// queries at future instants can count only the credits still held then.
// Release times are non-decreasing per port (walks push the port's freeAt
// forward), so the queue stays sorted by construction.
type relLedger struct {
	q    []release
	head int
	// total is the cumulative bytes ever pushed; applied is the prefix
	// already folded back into the port's buffered count.
	total   int64
	applied int64
}

// push schedules size bytes of credit to return at time at.  Probe shadow
// service (walkPacket) can finish before the port's last committed release;
// clamping keeps the queue sorted at the cost of returning those few bytes
// marginally late.
func (l *relLedger) push(at sim.Time, size int) {
	if len(l.q) > 0 && at < l.q[len(l.q)-1].at {
		at = l.q[len(l.q)-1].at
	}
	l.total += int64(size)
	l.q = append(l.q, release{at: at, cum: l.total})
}

// apply destructively consumes every release due at or before now and
// returns the byte count to subtract from the port's buffered total.
// Only past releases are consumed — admission queries always look strictly
// ahead of the clock and use the sorted tail non-destructively.
func (l *relLedger) apply(now sim.Time) int {
	if l.head == len(l.q) || l.q[l.head].at > now {
		return 0
	}
	last := int64(0)
	for l.head < len(l.q) && l.q[l.head].at <= now {
		last = l.q[l.head].cum
		l.head++
	}
	delta := last - l.applied
	l.applied = last
	if l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
	}
	return int(delta)
}

// relAdmit returns the earliest instant ≥ t at which the port's input buffer
// can accept size more bytes, mirroring strict mode's reserve-at-service-
// start credit semantics.  Every reserve currently counted in buffered has a
// matching release on the ledger (walks reserve and release atomically), so
// the search always terminates.
func (n *Network) relAdmit(pt *SwitchPort, size int, t sim.Time) sim.Time {
	if pt.capacity == 0 {
		return t
	}
	led := &pt.led
	if led.head < len(led.q) && led.q[led.head].at <= n.k.Now() {
		// Matured releases exist; fold them in before judging capacity.
		pt.buffered -= led.apply(n.k.Now())
	}
	if pt.buffered+size <= pt.capacity {
		return t
	}
	// Admission needs `need` cumulative release-bytes beyond the applied
	// prefix; binary-search the first release reaching it.
	need := int64(pt.buffered+size-pt.capacity) + led.applied
	lo, hi := led.head, len(led.q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if led.q[mid].cum < need {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(led.q) {
		panic("netsim: relaxed admission found no scheduled release (unbalanced credit reserve)")
	}
	if at := led.q[lo].at; at > t {
		return at
	}
	return t
}

// pump starts draining the NIC in the active scheduling mode; it is the
// single injection funnel shared by messages and probes.
//
// Strict mode drains inline (its event sequence is byte-pinned).  Relaxed
// mode defers: the NIC is marked dirty and drained by a single batch entry
// ordered directly after the current event at the same virtual instant, so a
// rank posting a whole window of sends in one event pays one drain scan for
// the lot instead of one per message.  The deferral shifts no timestamps —
// packets still start no earlier than their enqueue instant, and the drain
// runs before virtual time advances past it.
func (n *Network) pump(nc *nic) {
	if !n.relaxed {
		n.tryStartUplink(nc)
		return
	}
	if nc.dirty {
		// A batch entry is already bound to drain this NIC; the new packets
		// are on its queues and will be seen then.
		return
	}
	if nc.parked {
		// The advance owns the cursor's resume — up to a full lookahead away,
		// too late for the arbitration slot a fresh head is owed now.
		n.expressHeads(nc, n.k.Now(), nil)
		return
	}
	nc.dirty = true
	n.dirtyNics = append(n.dirtyNics, nc)
	n.ensureBatchDrain()
}

// ensureBatchDrain arms the same-instant batch-drain entry if none is
// pending: a lane entry keyed (now, next seq) so it executes as soon as the
// current event's dispatch completes, or a kernel event when the lane is
// unavailable.
func (n *Network) ensureBatchDrain() {
	if n.batchPending {
		return
	}
	n.batchPending = true
	at := n.k.Now()
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: laneRelaxedBatch})
		return
	}
	n.k.CallAt(at, n.batchFn, nil)
}

// drainBatch drains every NIC marked dirty since the entry was armed.  A NIC
// already drained by a port wake in the meantime cleared its own flag and is
// skipped; a parked NIC stays parked (the advance owns its resume).
func (n *Network) drainBatch() {
	n.batchPending = false
	for i, nc := range n.dirtyNics {
		n.dirtyNics[i] = nil
		if nc.dirty {
			nc.dirty = false
			if !nc.parked {
				n.drainNic(nc, nil)
			}
		}
	}
	n.dirtyNics = n.dirtyNics[:0]
}

// drainNic is the relaxed-order NIC scheduler: it repeatedly picks the next
// admissible packet in round-robin flow order and walks it through its whole
// route, advancing a local uplink cursor t ahead of the kernel clock up to
// the conservative horizon (one lookahead past the clock).  It parks on the
// network's advance list when the uplink is blocked on downstream credits or
// when committing further would outrun the horizon.
//
// sink is nil on the sequential paths (wakes, batch drains, sequential
// advances); a worker-executed drain passes its per-NIC relSink, which
// reroutes every globally-ordered side effect — posts, wake arms, parks,
// pool returns, statistics — into the buffer the coordinator later replays
// (see workers.go).
func (n *Network) drainNic(nc *nic, sink *relSink) {
	// A drain reaching the NIC through any path (batch entry, port wake,
	// parked-NIC advance) satisfies a pending batch mark: clear it so the
	// batch skips the NIC instead of rescanning it.
	nc.dirty = false
	total := len(nc.queues)
	if total == 0 {
		return
	}
	now := n.k.Now()
	horizon := now.Add(n.lookahead)
	t := nc.freeAt
	if t < now {
		t = now
	}
	n.expressHeads(nc, now, sink)
	for {
		if t >= horizon {
			// Committing further would outrun the lookahead: traffic injected
			// by events this drain cannot yet see (kernel events, deferred
			// completions) must get its arbitration turn at most one fabric
			// traversal late.  Park until the clock catches up.
			nc.freeAt = t
			if sink != nil {
				// The coordinator re-parks in slot order; ensureAdvance is
				// suppressed during advance() either way.
				nc.parked = true
				sink.parked = true
				return
			}
			n.park(nc)
			return
		}
		var chosen *packet
		var cfq *flowQueue
		var chosenFirst *SwitchPort
		var denied *SwitchPort // port that already refused admission this pass
		anyBlocked := false
		for i := 0; i < total; i++ {
			idx := nc.next + i
			if idx >= total {
				idx -= total
			}
			fq := nc.queues[idx]
			if fq.q.empty() {
				continue
			}
			p := fq.q.front()
			first := p.route[0]
			// A port with waiters grants credits exclusively through its
			// FIFO rotation: a NIC arriving outside a wake joins the queue
			// rather than racing the head for matured or future credits.
			// The NIC the wake itself resumed is exempt (wakingPort): it IS
			// the FIFO head taking its turn, and without the exemption every
			// resumed waiter would see the others still queued and re-block
			// without ever consulting the ledger.  The denied cache skips
			// repeat admission checks against a port that already refused
			// this pass.
			if first == denied || (len(first.relWaiters) > 0 && first != n.wakingPort) || n.relAdmit(first, p.size, t) > t {
				anyBlocked = true
				if first != denied {
					denied = first
				}
				if !nc.isWaitingOn(first) {
					nc.waitingOn = append(nc.waitingOn, first)
					first.relWaiters = append(first.relWaiters, nc)
					n.ensureRelWake(first, sink)
				}
				continue
			}
			chosen, cfq, chosenFirst = fq.q.pop(), fq, first
			fq.exprPending = false
			nc.next = idx + 1
			if nc.next == total {
				nc.next = 0
			}
			break
		}
		if chosen == nil {
			if anyBlocked {
				// Head-of-line stall: every queued flow heads to a full
				// buffer.  The NIC is now queued on each blocking port's
				// relaxed waiter FIFO — the same stall-order rotation strict
				// mode uses — so contending NICs share returning credits
				// fairly instead of racing.
				nc.stalled = true
				if sink != nil {
					sink.stalls++
				} else {
					n.stallEvents++
				}
			}
			nc.freeAt = t
			return
		}
		nc.stalled = false
		if n.crossLeaf(chosen) {
			nc.crossQueued--
		}
		var ser sim.Duration
		if sink != nil {
			ser = sink.serialization(n.cfg.LinkBandwidth, chosen.size)
		} else {
			ser = n.serialization(chosen.size)
		}
		if chosenFirst.capacity != 0 {
			chosenFirst.buffered += chosen.size // credit reserved while in flight
		}
		nc.busyNS += ser
		n.walkPacket(chosen, cfq, t, ser, sink)
		t = t.Add(ser)
		nc.freeAt = t
	}
}

// expressHeads walks, at strict-equivalent pick times, the head packet of
// every flow queue whose head was enqueued at this very instant.
//
// A drain cursor committed ahead of the clock has already scheduled up to a
// full lookahead of serialization that strict round-robin arbitration would
// have ordered AFTER a packet arriving now: strict gives a newly-enqueued
// flow its rotation slot within about one in-flight packet, while riding the
// cursor would displace it by a uniform-ish [0, lookahead).  That gap is
// invisible to bulk throughput but lands squarely on the latency-sensitive
// population — ImpactB probes and MPI control messages — whose distributions
// are the experiments' observables.  Express picks therefore start at now
// (plus the expected residual service serResidual when the uplink is mid-
// packet), pace among themselves at link rate through exprFreeAt, and push
// the committed cursor by their serialization so link time stays conserved.
// Later packets of the same burst ride the normal cursor: only the queue
// head is the arrival whose arbitration slot strict mode would grant now,
// and each flow gets at most one grant per instant (flowQueue.exprSeen) so
// a send window injected packet-by-packet stays on the batched cursor.
//
// SendProbe packets (onDeliver != nil) skip buffer admission — the occupancy
// count at this instant includes reserves taken by future-cursor picks that
// would arrive after the probe — and take their port waits from walkPacket's
// arrival-ordered shadow instead.  Other heads honor admission; a denied
// head registers on the port's waiter FIFO exactly like a cursor pick and
// falls back to the cursor path.
func (n *Network) expressHeads(nc *nic, now sim.Time, sink *relSink) {
	tp := now
	if nc.freeAt > now {
		tp = tp.Add(n.serResidual)
	}
	if nc.exprFreeAt > tp {
		tp = nc.exprFreeAt
	}
	for _, fq := range nc.queues {
		if fq.q.empty() {
			continue
		}
		p := fq.q.front()
		if (p.sent != now || fq.exprSeen == now) && !fq.exprPending {
			continue
		}
		first := p.route[0]
		if p.onDeliver == nil {
			if (len(first.relWaiters) > 0 && first != n.wakingPort) || n.relAdmit(first, p.size, tp) > tp {
				fq.exprPending = true
				if !nc.isWaitingOn(first) {
					nc.waitingOn = append(nc.waitingOn, first)
					first.relWaiters = append(first.relWaiters, nc)
					n.ensureRelWake(first, sink)
				}
				continue
			}
		}
		fq.exprPending = false
		fq.exprSeen = now
		fq.q.pop()
		if n.crossLeaf(p) {
			nc.crossQueued--
		}
		var ser sim.Duration
		if sink != nil {
			ser = sink.serialization(n.cfg.LinkBandwidth, p.size)
		} else {
			ser = n.serialization(p.size)
		}
		if first.capacity != 0 {
			first.buffered += p.size // credit reserved while in flight
		}
		nc.busyNS += ser
		n.walkPacket(p, fq, tp, ser, sink)
		end := tp.Add(ser)
		if nc.freeAt > now {
			nc.freeAt = nc.freeAt.Add(ser) // express pick consumed link time
		} else {
			nc.freeAt = end
		}
		nc.exprFreeAt = end
		tp = end
	}
}

// walkPacket advances one picked packet through its entire route
// analytically: per hop, wire propagation plus a fabric delay drawn from the
// flow's private substream, then port-FIFO availability, then downstream
// credit admission, then link serialization.  The walk commits each port's
// freeAt / busy time / credit ledger as it goes, so later walks through the
// same ports queue behind this packet exactly as the strict event cascade
// would make them.
//
// A worker-executed walk (sink != nil) touches only leaf-local port state;
// its posts, pool returns and statistics land in the sink for ordered replay.
func (n *Network) walkPacket(p *packet, fq *flowQueue, pick sim.Time, ser sim.Duration, sink *relSink) {
	if !fq.rngInit {
		fq.rng = n.k.NewSubstream(fmt.Sprintf("flow/%d/%s/%d", p.src, p.flow.Class, p.flow.ID))
		fq.rngInit = true
	}
	rng := &fq.rng
	route := p.route
	size := p.size
	t := pick.Add(ser) // leaves the NIC
	probe := p.onDeliver != nil
	for h := 0; h < len(route); h++ {
		pt := route[h]
		b := t.Add(pt.link.Delay + n.fabricDelayFrom(rng))
		arrived := b
		// Arrival-ordered shadow service.  The port's committed freeAt leads
		// honest arrival time by however far sender drain cursors have
		// batched ahead, so a straight FIFO wait behind it would charge this
		// packet for service that strict mode orders after it.  When commits
		// arrive in order (relArrival ≤ arrived) the shadow IS the FIFO wait,
		// freeAt − arrived; when this packet honestly arrived before work
		// already committed here, it waits only for the backlog that preceded
		// it (freeAt − relArrival) and its service is spliced into the
		// committed timeline without reordering what is already promised.
		base := pt.relArrival
		if arrived > base {
			base = arrived
		}
		if w := pt.freeAt - base; w > 0 {
			b = b.Add(sim.Duration(w))
		}
		if arrived > pt.relArrival {
			pt.relArrival = arrived
		}
		if h+1 < len(route) {
			if next := route[h+1]; next.capacity != 0 {
				if !probe {
					b = n.relAdmit(next, size, b)
				}
				next.buffered += size // credit reserved while in flight
			}
		}
		e := b.Add(ser)
		if pt.freeAt > e {
			pt.freeAt = pt.freeAt.Add(ser) // splice into the committed backlog
		} else {
			pt.freeAt = e
		}
		pt.busyNS += ser
		if pt.capacity != 0 {
			pt.led.push(e, size) // this hop's credit returns when service ends
		}
		t = e
	}
	arrive := t.Add(route[len(route)-1].link.Delay)
	fq.bytes += int64(size)
	if sink != nil {
		sink.packets++
		sink.bytes += int64(size)
	} else {
		n.packetsDelivered++
		n.bytesDelivered += int64(size)
	}
	if p.onDeliver != nil || len(n.observers) > 0 {
		// User callbacks must run at the packet's true virtual time; defer
		// through the lane, which advances the clock to the entry.
		if sink != nil {
			sink.ops = append(sink.ops, relOp{kind: laneRelaxedDeliver, at: arrive, p: p})
		} else {
			n.postRelaxed(arrive, laneRelaxedDeliver, p, 0)
		}
		return
	}
	if ms := p.msg; ms != nil {
		if arrive > ms.completeAt {
			ms.completeAt = arrive
		}
		ms.remaining--
		if ms.remaining == 0 {
			// One deferred completion per message, at the max arrival.
			if sink != nil {
				sink.ops = append(sink.ops, relOp{kind: laneRelaxedComplete, at: ms.completeAt, p: p})
			} else {
				n.postRelaxed(ms.completeAt, laneRelaxedComplete, p, 0)
			}
			return
		}
	}
	if sink != nil {
		sink.recycled = append(sink.recycled, p)
		return
	}
	n.putPacket(p)
}

// ensureRelWake schedules a deferred waiter wake for the port at its next
// scheduled credit release, if one is not already pending.  The wake resumes
// the port's waiter FIFO in stall order, reproducing strict mode's fair
// rotation among NICs contending for a saturated buffer.  A worker-executed
// drain (sink != nil) marks the port pending — the port is leaf-local — but
// buffers the arm itself, whose lane sequence number encodes global order.
func (n *Network) ensureRelWake(pt *SwitchPort, sink *relSink) {
	if pt.wakePending || len(pt.relWaiters) == 0 {
		return
	}
	led := &pt.led
	if led.head == len(led.q) {
		// Unreachable while waiters exist: the first registrant was denied
		// admission, so reserved credits remain, and every reserve has a
		// scheduled release on the ledger.
		return
	}
	at := led.q[led.head].at
	if now := n.k.Now(); at < now {
		at = now
	}
	pt.wakePending = true
	if sink != nil {
		sink.ops = append(sink.ops, relOp{kind: laneRelaxedPortWake, at: at, pt: pt})
		return
	}
	n.armPortWake(pt, at)
}

// armPortWake schedules the already-marked-pending wake entry for pt at at.
func (n *Network) armPortWake(pt *SwitchPort, at sim.Time) {
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: laneRelaxedPortWake, aux: pt.idx})
		return
	}
	n.k.CallAt(at, n.portWakeFn, pt)
}

// relaxedPortWake fires a port's deferred waiter wake.  Waiters resume in
// stall order, but only while the buffer has free room at the wake instant:
// waking the whole herd on every credit release costs O(NICs) queue rescans
// per packet on a saturated port (strict mode sidesteps that with its
// busy-uplink early-out, which relaxed drains do not have).  NICs beyond the
// free room keep their FIFO turn for the next release's wake, and a resumed
// NIC that stays blocked re-registers at the tail, so contenders rotate
// through the free room without starvation.
func (n *Network) relaxedPortWake(pt *SwitchPort) {
	// wakePending stays set while the wake runs so the drains below cannot
	// arm a duplicate entry; the wake re-arms itself once on exit.
	rounds := len(pt.relWaiters)
	for i := 0; i < rounds && len(pt.relWaiters) > 0; i++ {
		if pt.capacity != 0 {
			pt.buffered -= pt.led.apply(n.k.Now())
			if pt.buffered >= pt.capacity {
				break
			}
		}
		nc := pt.relWaiters[0]
		last := len(pt.relWaiters) - 1
		copy(pt.relWaiters, pt.relWaiters[1:])
		pt.relWaiters[last] = nil
		pt.relWaiters = pt.relWaiters[:last]
		nc.dropWaitingOn(pt)
		n.wakingPort = pt
		n.drainNic(nc, nil)
		n.wakingPort = nil
	}
	pt.wakePending = false
	n.ensureRelWake(pt, nil)
}

// park suspends a NIC whose drain reached the commit horizon and arms the
// network's shared advance entry.  One deferred entry resumes every parked
// NIC per lookahead window, so the per-window scheduling overhead is
// amortized across the whole fabric instead of paid per NIC.
func (n *Network) park(nc *nic) {
	if !nc.parked {
		nc.parked = true
		n.parked = append(n.parked, nc)
	}
	n.ensureAdvance(nc.freeAt)
}

// ensureAdvance guarantees a deferred advance no later than at.  A pending
// later entry is superseded by bumping the generation (the stale entry
// becomes a no-op when drained); advance() itself re-arms once on exit, so
// parks it triggers skip the per-call check.
func (n *Network) ensureAdvance(at sim.Time) {
	if n.advancing {
		return
	}
	if now := n.k.Now(); at < now {
		at = now
	}
	if n.advPending && n.advanceAt <= at {
		return
	}
	n.advGen++
	n.advanceAt = at
	n.advPending = true
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: laneRelaxedAdvance, aux: n.advGen})
		return
	}
	n.k.CallAt(at, n.advanceFn, n.advGen)
}

// advance resumes every parked NIC whose committed cursor falls inside the
// new lookahead window, then re-arms one deferred entry at the earliest
// still-parked cursor.  gen identifies the lane entry that fired; a stale
// generation (superseded by an earlier re-arm) is a no-op.
func (n *Network) advance(gen int32) {
	if gen != n.advGen {
		return
	}
	n.advPending = false
	n.advancing = true
	horizon := n.k.Now().Add(n.lookahead)
	list := n.parked
	n.parked = n.parkedScratch[:0]
	if n.workers <= 1 || !n.advanceParallel(list, horizon) {
		for _, nc := range list {
			if nc.freeAt < horizon {
				nc.parked = false
				n.drainNic(nc, nil) // may re-park onto the fresh list
			} else {
				n.parked = append(n.parked, nc)
			}
		}
	}
	n.parkedScratch = list[:0]
	n.advancing = false
	if len(n.parked) > 0 {
		min := n.parked[0].freeAt
		for _, nc := range n.parked[1:] {
			if nc.freeAt < min {
				min = nc.freeAt
			}
		}
		n.ensureAdvance(min)
	}
}

// postRelaxed schedules a deferred relaxed-mode entry (delivery or message
// completion) at an absolute instant, falling back to a kernel event when
// the fast path is off or the packed key range is exceeded.
func (n *Network) postRelaxed(at sim.Time, kind uint8, p *packet, aux int32) {
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: kind, p: p, aux: aux})
		return
	}
	if kind == laneRelaxedDeliver {
		n.k.CallAt(at, n.relaxDeliverFn, p)
	} else {
		n.k.CallAt(at, n.relaxCompleteFn, p)
	}
}

// relaxedDeliver runs a walked packet's delivery callbacks at its arrival
// instant.  Counters were already committed at walk time; this entry exists
// only to run user code (observers, probe onDeliver) at the true clock.
func (n *Network) relaxedDeliver(p *packet, at sim.Time) {
	d := Delivery{Src: p.src, Dst: p.dst, Size: p.size, Flow: p.flow, Sent: p.sent, Arrived: at}
	for _, obs := range n.observers {
		obs(d)
	}
	if p.onDeliver != nil {
		p.onDeliver(d)
	}
	if ms := p.msg; ms != nil {
		ms.remaining--
		if ms.remaining == 0 {
			// Entries execute in time order, so this is the last arrival —
			// unless earlier packets of the message completed at walk time
			// (observer registered mid-message) with a later bound.
			if ms.completeAt > at {
				at = ms.completeAt
			}
			p.msg = nil
			n.putPacket(p)
			n.finishMessage(ms, at)
			return
		}
	}
	n.putPacket(p)
}

// relaxedComplete fires a message's completion at its max arrival time,
// carried by the message's final packet (recycled here).
func (n *Network) relaxedComplete(p *packet, at sim.Time) {
	ms := p.msg
	p.msg = nil
	n.putPacket(p)
	n.finishMessage(ms, at)
}
