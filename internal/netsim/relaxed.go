// Schedule-relaxed execution: fused route walks on per-flow random
// substreams.
//
// The strict pipeline (netsim.go) replays one global (time, seq) interleaving
// of every per-hop event, drawing all stochastic fabric delays from a single
// shared RNG stream.  That pins a total order across flows that the paper's
// methodology never needs — it only needs statistically faithful latency and
// slowdown distributions — and it is why the cut-through fast path's 82–85%
// event elision bought only ~5% wall-clock: the events got cheaper, but every
// one of them still had to happen, in order.
//
// Relaxed mode (the default since ModelVersion 3) removes the order pin:
//
//   - Per-flow RNG substreams.  Each flow queue draws its fabric delays from
//     a private stream seeded deterministically from (root seed, source node,
//     flow class, flow id) via sim.Kernel.NewSubstream.  One flow's draws no
//     longer serialize against every other flow's, so the simulator is free
//     to advance flows out of global order while each flow's delay sequence
//     — and therefore the run as a whole for a fixed root seed — stays
//     bit-reproducible.
//
//   - Fused route walks.  When a NIC picks a packet, walkPacket advances it
//     through its entire route analytically in one pass — serialization,
//     wire, fabric draw, port-FIFO wait, credit admission per hop — instead
//     of scheduling 4–8 lane events per packet.  Port state is kept as
//     scalars a walk can push forward: freeAt (when the port's link frees)
//     and a credit ledger of scheduled future buffer releases, so head-of-
//     line blocking and back-pressure stalls shift a walk's hop times exactly
//     like the strict event cascade would.
//
//   - Train-fused drains.  When one arbitration pass proves that every
//     competing queue is blocked or empty — so consecutive picks must go to
//     the same flow — drainTrain walks whole packet trains of that flow
//     without re-running the scan, holding the route's port scalars in
//     per-NIC scratch the walk owns (see drainTrain).  Fusion is
//     byte-identical to the per-packet walk and excluded from fingerprints,
//     like Workers; Config.NoTrainFuse / SWITCHPROBE_NO_TRAIN_FUSE keeps the
//     unfused path selectable as the oracle.
//
//   - Conservative lookahead.  A NIC batch-commits consecutive picks ahead
//     of the kernel clock, but never at or beyond the next instant the rest
//     of the simulation can act (the kernel's next event or the lane's next
//     entry): a completion or probe injection scheduled before that horizon
//     could add a competing flow, and round-robin arbitration must see it.
//     Blocked or out-of-horizon NICs park behind a kick entry on the
//     existing deferred lane, which already interleaves with kernel events
//     in (time, seq) order.
//
// Only three kinds of deferred work survive per message: NIC kicks, probe /
// observer deliveries (which must run user callbacks at their true virtual
// time), and one completion entry per message.  Bulk traffic — the dominant
// packet population — crosses the fabric with zero scheduled events.
//
// Relaxed runs are deterministic for a fixed root seed but NOT byte-identical
// to strict runs; the strict mode remains selectable (Config.StrictOrder /
// SWITCHPROBE_STRICT_ORDER) as the golden oracle, and the equivalence tests
// assert the two agree distributionally.
package netsim

import (
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/telemetry"
)

// relaxedLookaheadWindows scales the relaxed-mode commit horizon in units of
// one deepest-route traversal.  Larger values amortize the advance/wake
// machinery over more packets per batch but let a drain commit further ahead
// of traffic it cannot yet see; one traversal is the largest window that
// keeps arbitration staleness below what contention-sensitive orderings
// (concurrent traffic overtaking serialized traffic) can tolerate — at 2 the
// scheduling overhead barely drops while measured distributions start to
// drift, and at 4 orderings invert outright.
const relaxedLookaheadWindows = 1

// release is one scheduled future buffer-credit return on a port's ledger.
// cum is the cumulative bytes of every release ever pushed, so a range of
// releases is a subtraction of two entries rather than a sum.
type release struct {
	at  sim.Time
	cum int64
}

// relLedger tracks the scheduled credit releases of one port in relaxed
// mode.  Reserves are folded into SwitchPort.buffered immediately (as in
// strict mode); their matching releases land here, timestamped, so admission
// queries at future instants can count only the credits still held then.
// Release times are non-decreasing per port (walks push the port's freeAt
// forward), so the queue stays sorted by construction.
type relLedger struct {
	q    []release
	head int
	// total is the cumulative bytes ever pushed; applied is the prefix
	// already folded back into the port's buffered count.
	total   int64
	applied int64
	// clamps counts pushes whose release had to be postponed to keep the
	// queue sorted (see push).  Telemetry only — surfaced via Stats so
	// credit-timing drift is measurable instead of silent.
	clamps int64
}

// push schedules size bytes of credit to return at time at.  Probe shadow
// service (walkPacket) can finish before the port's last committed release;
// clamping keeps the queue sorted at the cost of returning those few bytes
// marginally late.
func (l *relLedger) push(at sim.Time, size int) {
	if len(l.q) > 0 && at < l.q[len(l.q)-1].at {
		at = l.q[len(l.q)-1].at
		l.clamps++
	}
	l.total += int64(size)
	l.q = append(l.q, release{at: at, cum: l.total})
}

// apply destructively consumes every release due at or before now and
// returns the byte count to subtract from the port's buffered total.
// Only past releases are consumed — admission queries always look strictly
// ahead of the clock and use the sorted tail non-destructively.
func (l *relLedger) apply(now sim.Time) int {
	if l.head == len(l.q) || l.q[l.head].at > now {
		return 0
	}
	last := int64(0)
	for l.head < len(l.q) && l.q[l.head].at <= now {
		last = l.q[l.head].cum
		l.head++
	}
	delta := last - l.applied
	l.applied = last
	if l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
	}
	return int(delta)
}

// trainStats counts the relaxed engine's train-fusion activity: trains
// walked, packets they carried, and fusion attempts abandoned by cause.
// Execution telemetry only — fusion is byte-identical to the per-packet
// walk, so none of these ever influence the simulated schedule.
type trainStats struct {
	trains  int64 // fused trains that walked at least one packet
	packets int64 // packets walked inside fused trains
	// Abort causes, counted per cut-short fusion attempt:
	abortWake  int64 // a wake-exempt competitor's admission came due mid-train
	abortProbe int64 // head packet carries an onDeliver observer
	abortRoute int64 // route longer than the fused walk's hop-state array
	abortCap   int64 // per-segment packet cap reached
}

// add folds o into t (worker-sink merge).
func (t *trainStats) add(o *trainStats) {
	t.trains += o.trains
	t.packets += o.packets
	t.abortWake += o.abortWake
	t.abortProbe += o.abortProbe
	t.abortRoute += o.abortRoute
	t.abortCap += o.abortCap
}

// endTrain settles one finished train's counters.
func (t *trainStats) endTrain(walked int64) {
	if walked > 0 {
		t.trains++
		t.packets += walked
	}
}

// trainWriteback commits a fused segment's hop locals back to the route's
// ports.
func trainWriteback(route []*SwitchPort, hs *[maxTrainHops]trainHop) {
	for h := range route {
		pt := route[h]
		pt.freeAt = hs[h].freeAt
		pt.relArrival = hs[h].relArrival
		pt.busyNS += hs[h].busy
		pt.buffered = hs[h].buffered
	}
}

// relAdmit returns the earliest instant ≥ t at which the port's input buffer
// can accept size more bytes, mirroring strict mode's reserve-at-service-
// start credit semantics.  Every reserve currently counted in buffered has a
// matching release on the ledger (walks reserve and release atomically), so
// the search always terminates.
func (n *Network) relAdmit(pt *SwitchPort, size int, t sim.Time) sim.Time {
	if pt.capacity == 0 {
		return t
	}
	led := &pt.led
	if led.head < len(led.q) && led.q[led.head].at <= n.k.Now() {
		// Matured releases exist; fold them in before judging capacity.
		pt.buffered -= led.apply(n.k.Now())
	}
	if pt.buffered+size <= pt.capacity {
		return t
	}
	// Admission needs `need` cumulative release-bytes beyond the applied
	// prefix; binary-search the first release reaching it.
	need := int64(pt.buffered+size-pt.capacity) + led.applied
	lo, hi := led.head, len(led.q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if led.q[mid].cum < need {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(led.q) {
		panic("netsim: relaxed admission found no scheduled release (unbalanced credit reserve)")
	}
	if at := led.q[lo].at; at > t {
		return at
	}
	return t
}

// pump starts draining the NIC in the active scheduling mode; it is the
// single injection funnel shared by messages and probes.
//
// Strict mode drains inline (its event sequence is byte-pinned).  Relaxed
// mode defers: the NIC is marked dirty and drained by a single batch entry
// ordered directly after the current event at the same virtual instant, so a
// rank posting a whole window of sends in one event pays one drain scan for
// the lot instead of one per message.  The deferral shifts no timestamps —
// packets still start no earlier than their enqueue instant, and the drain
// runs before virtual time advances past it.
func (n *Network) pump(nc *nic) {
	if !n.relaxed {
		n.tryStartUplink(nc)
		return
	}
	if nc.dirty {
		// A batch entry is already bound to drain this NIC; the new packets
		// are on its queues and will be seen then.
		return
	}
	if nc.parked {
		// The advance owns the cursor's resume — up to a full lookahead away,
		// too late for the arbitration slot a fresh head is owed now.
		n.expressHeads(nc, n.k.Now(), nil)
		return
	}
	nc.dirty = true
	n.dirtyNics = append(n.dirtyNics, nc)
	n.ensureBatchDrain()
}

// ensureBatchDrain arms the same-instant batch-drain entry if none is
// pending: a lane entry keyed (now, next seq) so it executes as soon as the
// current event's dispatch completes, or a kernel event when the lane is
// unavailable.
func (n *Network) ensureBatchDrain() {
	if n.batchPending {
		return
	}
	n.batchPending = true
	at := n.k.Now()
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: laneRelaxedBatch})
		return
	}
	n.k.CallAt(at, n.batchFn, nil)
}

// drainBatch drains every NIC marked dirty since the entry was armed.  A NIC
// already drained by a port wake in the meantime cleared its own flag and is
// skipped; a parked NIC stays parked (the advance owns its resume).
func (n *Network) drainBatch() {
	n.batchPending = false
	for i, nc := range n.dirtyNics {
		n.dirtyNics[i] = nil
		if nc.dirty {
			nc.dirty = false
			if !nc.parked {
				n.drainNic(nc, nil)
			}
		}
	}
	n.dirtyNics = n.dirtyNics[:0]
}

// drainNic is the relaxed-order NIC scheduler: it repeatedly picks the next
// admissible packet in round-robin flow order and walks it through its whole
// route, advancing a local uplink cursor t ahead of the kernel clock up to
// the conservative horizon (one lookahead past the clock).  It parks on the
// network's advance list when the uplink is blocked on downstream credits or
// when committing further would outrun the horizon.
//
// sink is nil on the sequential paths (wakes, batch drains, sequential
// advances); a worker-executed drain passes its per-NIC relSink, which
// reroutes every globally-ordered side effect — posts, wake arms, parks,
// pool returns, statistics — into the buffer the coordinator later replays
// (see workers.go).
func (n *Network) drainNic(nc *nic, sink *relSink) {
	// A drain reaching the NIC through any path (batch entry, port wake,
	// parked-NIC advance) satisfies a pending batch mark: clear it so the
	// batch skips the NIC instead of rescanning it.
	nc.dirty = false
	total := len(nc.queues)
	if total == 0 {
		return
	}
	now := n.k.Now()
	horizon := now.Add(n.lookahead)
	if n.faultsOn && n.nextFaultAt < horizon {
		// Fault transitions bound the lookahead: no pick is committed at or
		// past the next scheduled trunk transition, so arbitration never
		// batches across a topology change (walks committed before the bound
		// still cover in-window failures via the per-hop downAt check).
		horizon = n.nextFaultAt
	}
	t := nc.freeAt
	if t < now {
		t = now
	}
	n.expressHeads(nc, now, sink)
	for {
		if t >= horizon {
			// Committing further would outrun the lookahead: traffic injected
			// by events this drain cannot yet see (kernel events, deferred
			// completions) must get its arbitration turn at most one fabric
			// traversal late.  Park until the clock catches up.
			nc.freeAt = t
			if sink != nil {
				// The coordinator re-parks in slot order; ensureAdvance is
				// suppressed during advance() either way.
				nc.parked = true
				sink.parked = true
				return
			}
			n.park(nc)
			return
		}
		var chosen *packet
		var cfq *flowQueue
		var chosenFirst *SwitchPort
		var denied *SwitchPort // port that already refused admission this pass
		var wakeQ *flowQueue   // first wakingPort-bound blocked queue in scan order
		anyBlocked := false
		scanStart := nc.next
		// Round-robin over the non-empty queues only: two bitmap segments,
		// nc.next..total-1 then 0..nc.next-1, visiting exactly the indices
		// the dense scan would have visited in the same order (empty queues
		// contribute no side effects there).
	scan:
		for seg := 0; seg < 2; seg++ {
			from, limit := nc.next, total
			if seg == 1 {
				from, limit = 0, nc.next
			}
			for idx := nc.nextActive(from, limit); idx >= 0; idx = nc.nextActive(idx+1, limit) {
				fq := nc.queues[idx]
				p := fq.q.front()
				first := p.route[0]
				// A port with waiters grants credits exclusively through its
				// FIFO rotation: a NIC arriving outside a wake joins the queue
				// rather than racing the head for matured or future credits.
				// The NIC the wake itself resumed is exempt (wakingPort): it IS
				// the FIFO head taking its turn, and without the exemption every
				// resumed waiter would see the others still queued and re-block
				// without ever consulting the ledger.  The denied cache skips
				// repeat admission checks against a port that already refused
				// this pass.
				if (n.faultsOn && first.down) || first == denied || (len(first.relWaiters) > 0 && first != n.wakingPort) || n.relAdmit(first, p.size, t) > t {
					anyBlocked = true
					if wakeQ == nil && first == n.wakingPort {
						// Remembered for train fusion: the one competitor whose
						// blocked status can change mid-drain (see below).  The
						// scan visits blocked queues in exactly the order the
						// arming condition cares about, so tracking the first
						// here replaces a second ring scan at arming time.
						wakeQ = fq
					}
					if first != denied {
						denied = first
					}
					if !nc.isWaitingOn(first) {
						nc.waitingOn = append(nc.waitingOn, first)
						first.relWaiters = append(first.relWaiters, nc)
						n.ensureRelWake(first, sink)
					}
					continue
				}
				chosen, cfq, chosenFirst = fq.q.pop(), fq, first
				if fq.q.empty() {
					nc.clearActive(idx)
				}
				fq.exprPending = false
				nc.next = idx + 1
				if nc.next == total {
					nc.next = 0
				}
				break scan
			}
		}
		if chosen == nil {
			if anyBlocked {
				// Head-of-line stall: every queued flow heads to a full
				// buffer.  The NIC is now queued on each blocking port's
				// relaxed waiter FIFO — the same stall-order rotation strict
				// mode uses — so contending NICs share returning credits
				// fairly instead of racing.
				nc.stalled = true
				if sink != nil {
					sink.stalls++
				} else {
					n.stallEvents++
				}
			}
			nc.freeAt = t
			return
		}
		nc.stalled = false
		// Train fusion: a pass that wrapped the full ring before picking
		// (nc.next returned to where the scan started — always true for a
		// lone non-empty queue) proves the competition static: every other
		// non-empty queue was visited first and found blocked, registering
		// on its denied port's waiter FIFO, so later passes short-circuit on
		// relWaiters without consulting the ledger — which makes further
		// passes pure re-derivations of `denied`/`anyBlocked` with no side
		// effects.  drainTrain walks this pick and the next ones without
		// re-scanning.  Probe picks and overlong routes take the per-packet
		// walk below; the next pick can re-arm.
		//
		// A drain running under a port wake has one dynamic element: queues
		// heading to wakingPort bypass the FIFO short-circuit and re-consult
		// the ledger each pass, so their blocked status can change as t
		// grows.  Only the FIRST such queue in scan order matters — once it
		// is judged blocked it lands in the denied cache and every later
		// wakingPort queue short-circuits on it, and the moment it unblocks
		// the scan picks it (it precedes cfq, which sits last in scan
		// order).  The train re-checks exactly that queue's admission (the
		// wakeQ the scan above remembered) before every pick and hands back
		// to the scan when it comes due.
		//
		// Arming also requires something to amortize against: at least one
		// more packet queued behind the pick, and enough horizon room that
		// the pick after this one passes the train's own horizon check
		// (t+ser < horizon is exactly that check's predicate — when it
		// fails, the train would walk only the arming pick and park, pure
		// setup overhead for zero fused picks).
		var ser sim.Duration
		if sink != nil {
			ser = sink.serialization(n.cfg.LinkBandwidth, chosen.size)
		} else {
			ser = n.serialization(chosen.size)
		}
		if n.fuse && nc.next == scanStart && chosen.onDeliver == nil && len(chosen.route) <= maxTrainHops && !cfq.q.empty() && t.Add(ser) < horizon {
			var done bool
			t, done = n.drainTrain(nc, cfq, chosen, denied, anyBlocked, wakeQ, t, horizon, sink)
			if done {
				return
			}
			continue
		}
		if n.crossLeaf(chosen) {
			nc.crossQueued--
		}
		if chosenFirst.capacity != 0 {
			chosenFirst.buffered += chosen.size // credit reserved while in flight
		}
		nc.busyNS += ser
		n.walkPacket(chosen, cfq, t, ser, sink)
		t = t.Add(ser)
		nc.freeAt = t
	}
}

// Fused-train sizing.  maxTrainHops bounds the per-hop port state the fused
// walk keeps in the NIC's scratch array (the built-in topologies route over at most 3
// ports; 8 leaves slack for custom layouts — longer routes fall back to the
// per-packet walk).  maxTrainPicks bounds how many packets one
// segment commits between bookkeeping breaks.
const (
	maxTrainHops  = 8
	maxTrainPicks = 64
)

// trainHop is one route port's state held in the NIC's scratch array across a fused
// segment: the scalars walkPacket reads and writes per hop, loaded once at
// segment start and written back once at segment end, plus the admission
// query's forward pointer into the port's sorted ledger.
type trainHop struct {
	freeAt     sim.Time
	relArrival sim.Time
	busy       sim.Duration // busyNS accumulated this segment
	buffered   int
	lo         int // first ledger entry a future admission search can need
}

// relFold folds a port's matured credit releases into a hop's local buffered
// count — relAdmit's fold step against train-local state.  The fold is
// idempotent during one drain (the clock is fixed and every in-train push
// lands strictly in the future), so folding here or on the port directly
// commutes with the segment writeback.
func (n *Network) relFold(pt *SwitchPort, hs *trainHop) {
	led := &pt.led
	if led.head < len(led.q) && led.q[led.head].at <= n.k.Now() {
		hs.buffered -= led.apply(n.k.Now())
		if hs.lo < led.head {
			hs.lo = led.head
		}
		if hs.lo > len(led.q) { // apply drained the queue and reset it
			hs.lo = len(led.q)
		}
	}
}

// relAdmitFrom is relAdmit against a hop's local state: identical fold,
// identical capacity arithmetic, but the search resumes from the hop's
// forward pointer instead of binary-searching from scratch.  Within a train
// the required cumulative release (`need`) is non-decreasing — each admitted
// packet reserves more bytes, and folding matured releases moves bytes from
// `buffered` to `applied` without changing their sum — and the ledger only
// grows at the tail, so the first satisfying entry never moves backwards.
func (n *Network) relAdmitFrom(pt *SwitchPort, hs *trainHop, size int, t sim.Time) sim.Time {
	led := &pt.led
	n.relFold(pt, hs)
	if hs.buffered+size <= pt.capacity {
		return t
	}
	need := int64(hs.buffered+size-pt.capacity) + led.applied
	i := hs.lo
	if i < led.head {
		i = led.head
	}
	for i < len(led.q) && led.q[i].cum < need {
		i++
	}
	if i == len(led.q) {
		panic("netsim: relaxed admission found no scheduled release (unbalanced credit reserve)")
	}
	hs.lo = i
	if at := led.q[i].at; at > t {
		return at
	}
	return t
}

// relAdmitAt is relAdmit's search step against an externally-held buffered
// count, read-only and by bisection.  The wake-competitor recheck uses it
// because its query sizes interleave non-monotonically with the train's own
// admissions, so it cannot share the hop's forward pointer.
func (n *Network) relAdmitAt(pt *SwitchPort, buffered, size int, t sim.Time) sim.Time {
	led := &pt.led
	if buffered+size <= pt.capacity {
		return t
	}
	need := int64(buffered+size-pt.capacity) + led.applied
	lo, hi := led.head, len(led.q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if led.q[mid].cum < need {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(led.q) {
		panic("netsim: relaxed admission found no scheduled release (unbalanced credit reserve)")
	}
	if at := led.q[lo].at; at > t {
		return at
	}
	return t
}

// drainTrain walks consecutive picks of one flow as a fused train, without
// re-running drainNic's arbitration scan between them.  The caller has
// proven the competition static (see the trigger comment in drainNic):
// every other non-empty queue stays blocked via the denied/relWaiters
// short-circuits, so each further unfused pass would pick fq's head again
// with the same `denied` and `anyBlocked`.  The train replays exactly those
// picks — same admission checks, same draw order on the flow's substream,
// same ledger pushes, same posts — with the per-hop port scalars held in
// the NIC's scratch hop array and committed once per same-destination segment.
//
// p0 is the arming pick itself: already popped and admitted by the scan (so
// its horizon, wake and admission checks are settled), but not yet walked —
// the train walks it first so the whole arbitration window fuses, not just
// its tail.
//
// Under a port wake, qw is the one competitor queue whose blocked status can
// change mid-drain (see the trigger comment); its admission is re-checked at
// every pick, exactly as the unfused scan would, and fusion stops the moment
// it comes due.
//
// The returned time is the advanced uplink cursor.  done=true means the
// drain is finished (parked, stalled, or queue empty — all terminal states
// drainNic itself would have entered); done=false means fusion stopped for
// a packet the fused walk cannot handle (probe head, overlong route, segment
// cap) or for a wake competitor coming due, and the caller's per-packet loop
// should continue.
func (n *Network) drainTrain(nc *nic, fq *flowQueue, p0 *packet, denied *SwitchPort, anyBlocked bool, qw *flowQueue, t sim.Time, horizon sim.Time, sink *relSink) (sim.Time, bool) {
	ts := &n.trains
	if sink != nil {
		ts = &sink.trains
	}
	rng := &fq.rng          // per-flow substream; fused walks draw in walkPacket's exact order
	hs := &nc.trainHS       // per-NIC scratch: segment loads overwrite every field
	var route []*SwitchPort // current segment's shared route (nil before first)
	segDst := -1
	segBlocked, segCross := false, false
	wakeIdx := -1 // wakingPort's position in the segment route, -1 if absent
	picks, walked := 0, int64(0)

	// Every exit below writes the current segment back (trainWriteback)
	// before anything that reads port state (wake arms, parking), then
	// settles counters (endTrain).  Both are free functions rather than
	// closures so the loop's hot locals stay in registers instead of a
	// shared capture frame.

	fq.exprPending = false // per-pick store in drainNic; idempotent here
	p := p0
	for {
		if p == nil {
			// Checks the arming pick already settled in the scan.
			if t >= horizon {
				// The unfused pass would park before its next scan.
				trainWriteback(route, hs)
				ts.endTrain(walked)
				nc.freeAt = t
				if sink != nil {
					nc.parked = true
					sink.parked = true
				} else {
					n.park(nc)
				}
				return t, true
			}
			if qw != nil {
				// Wake-drain recheck, replicating the unfused scan's visit
				// of the first wakingPort-bound competitor: it is exempt
				// from the FIFO short-circuit, so the scan consults the
				// ledger for it each pass and picks it the instant its
				// admission comes due.  When the waking port sits on this
				// train's own route the fold and the buffered count live in
				// the hop locals; otherwise the port's direct state is
				// current and plain relAdmit is the exact check.
				pw := qw.q.front()
				var adm sim.Time
				if wakeIdx >= 0 {
					n.relFold(n.wakingPort, &hs[wakeIdx])
					adm = n.relAdmitAt(n.wakingPort, hs[wakeIdx].buffered, pw.size, t)
				} else {
					adm = n.relAdmit(n.wakingPort, pw.size, t)
				}
				if adm <= t {
					trainWriteback(route, hs)
					ts.endTrain(walked)
					ts.abortWake++
					nc.freeAt = t
					return t, false
				}
			}
			if fq.q.empty() {
				// The unfused pass would find every queue blocked or empty:
				// head-of-line stall if any competitor is blocked, plain
				// return otherwise.  (Re-visiting registered competitors has
				// no side effects — their registrations already exist.)
				trainWriteback(route, hs)
				ts.endTrain(walked)
				if anyBlocked {
					nc.stalled = true
					if sink != nil {
						sink.stalls++
					} else {
						n.stallEvents++
					}
				}
				nc.freeAt = t
				return t, true
			}
			p = fq.q.front()
			if p.onDeliver != nil {
				// Probe heads skip buffer admission and post per-packet;
				// hand back to the per-packet loop, which can re-fuse after.
				trainWriteback(route, hs)
				ts.endTrain(walked)
				ts.abortProbe++
				nc.freeAt = t
				return t, false
			}
		}
		if route == nil || p.dst != segDst {
			// New same-destination segment: commit the previous segment's
			// ports, load the new route's scalars, and re-derive the checks
			// that are static per first-port (the hypothetical unfused pass
			// would evaluate them fresh for the new head).
			if len(p.route) > maxTrainHops {
				trainWriteback(route, hs)
				ts.endTrain(walked)
				ts.abortRoute++
				nc.freeAt = t
				return t, false
			}
			trainWriteback(route, hs)
			route = p.route
			segDst = p.dst
			for h := range route {
				pt := route[h]
				hs[h] = trainHop{freeAt: pt.freeAt, relArrival: pt.relArrival, buffered: pt.buffered, lo: pt.led.head}
			}
			first := route[0]
			segBlocked = first == denied || (len(first.relWaiters) > 0 && first != n.wakingPort)
			segCross = n.crossLeaf(p)
			wakeIdx = -1
			if qw != nil {
				for h := range route {
					if route[h] == n.wakingPort {
						wakeIdx = h
						break
					}
				}
			}
			picks = 0
		}
		if picks == maxTrainPicks {
			trainWriteback(route, hs)
			ts.endTrain(walked)
			ts.abortCap++
			nc.freeAt = t
			return t, false
		}
		if p != p0 {
			// The arming pick p0 was admitted and popped by the scan; later
			// picks run the checks here.
			if segBlocked || (route[0].capacity != 0 && n.relAdmitFrom(route[0], &hs[0], p.size, t) > t) {
				// Denied exactly as the unfused scan would deny it
				// (including the denied-cache and waiter-FIFO
				// short-circuits): register, stall.
				trainWriteback(route, hs)
				ts.endTrain(walked)
				first := route[0]
				if !nc.isWaitingOn(first) {
					nc.waitingOn = append(nc.waitingOn, first)
					first.relWaiters = append(first.relWaiters, nc)
					n.ensureRelWake(first, sink)
				}
				nc.stalled = true
				if sink != nil {
					sink.stalls++
				} else {
					n.stallEvents++
				}
				nc.freeAt = t
				return t, true
			}
			// Pick.  nc.next is already fq.idx+1 from the arming pick, and
			// nc.stalled is already false.
			fq.q.pop()
			if fq.q.empty() {
				nc.clearActive(fq.idx)
			}
		}
		if segCross {
			nc.crossQueued--
		}
		size := p.size
		var ser sim.Duration
		if sink != nil {
			ser = sink.serialization(n.cfg.LinkBandwidth, size)
		} else {
			ser = n.serialization(size)
		}
		if route[0].capacity != 0 {
			hs[0].buffered += size // credit reserved while in flight
		}
		nc.busyNS += ser
		// Fused walk: walkPacket's per-hop pipeline on the segment's locals.
		tp := t.Add(ser) // leaves the NIC
		for h := 0; h < len(route); h++ {
			pt := route[h]
			b := tp.Add(pt.link.Delay + n.fabricDelayFrom(rng))
			arrived := b
			// Arrival-ordered shadow service (see walkPacket).
			base := hs[h].relArrival
			if arrived > base {
				base = arrived
			}
			if w := hs[h].freeAt - base; w > 0 {
				b = b.Add(sim.Duration(w))
			}
			if arrived > hs[h].relArrival {
				hs[h].relArrival = arrived
			}
			if h+1 < len(route) {
				if next := route[h+1]; next.capacity != 0 {
					b = n.relAdmitFrom(next, &hs[h+1], size, b)
					hs[h+1].buffered += size // credit reserved while in flight
				}
			}
			e := b.Add(ser)
			if hs[h].freeAt > e {
				hs[h].freeAt = hs[h].freeAt.Add(ser) // splice into the backlog
			} else {
				hs[h].freeAt = e
			}
			hs[h].busy += ser
			if pt.capacity != 0 {
				pt.led.push(e, size) // per-packet entries: future searches bisect them
			}
			tp = e
		}
		arrive := tp.Add(route[len(route)-1].link.Delay)
		n.finishWalk(p, fq, arrive, sink)
		t = t.Add(ser)
		nc.freeAt = t
		picks++
		walked++
		if p == p0 {
			p0 = nil // recycled by finishWalk; drop the sentinel before reuse
		}
		p = nil
	}
}

// expressHeads walks, at strict-equivalent pick times, the head packet of
// every flow queue whose head was enqueued at this very instant.
//
// A drain cursor committed ahead of the clock has already scheduled up to a
// full lookahead of serialization that strict round-robin arbitration would
// have ordered AFTER a packet arriving now: strict gives a newly-enqueued
// flow its rotation slot within about one in-flight packet, while riding the
// cursor would displace it by a uniform-ish [0, lookahead).  That gap is
// invisible to bulk throughput but lands squarely on the latency-sensitive
// population — ImpactB probes and MPI control messages — whose distributions
// are the experiments' observables.  Express picks therefore start at now
// (plus the expected residual service serResidual when the uplink is mid-
// packet), pace among themselves at link rate through exprFreeAt, and push
// the committed cursor by their serialization so link time stays conserved.
// Later packets of the same burst ride the normal cursor: only the queue
// head is the arrival whose arbitration slot strict mode would grant now,
// and each flow gets at most one grant per instant (flowQueue.exprSeen) so
// a send window injected packet-by-packet stays on the batched cursor.
//
// SendProbe packets (onDeliver != nil) skip buffer admission — the occupancy
// count at this instant includes reserves taken by future-cursor picks that
// would arrive after the probe — and take their port waits from walkPacket's
// arrival-ordered shadow instead.  Other heads honor admission; a denied
// head registers on the port's waiter FIFO exactly like a cursor pick and
// falls back to the cursor path.
func (n *Network) expressHeads(nc *nic, now sim.Time, sink *relSink) {
	tp := now
	if nc.freeAt > now {
		tp = tp.Add(n.serResidual)
	}
	if nc.exprFreeAt > tp {
		tp = nc.exprFreeAt
	}
	for idx := nc.nextActive(0, len(nc.queues)); idx >= 0; idx = nc.nextActive(idx+1, len(nc.queues)) {
		fq := nc.queues[idx]
		p := fq.q.front()
		if (p.sent != now || fq.exprSeen == now) && !fq.exprPending {
			continue
		}
		first := p.route[0]
		if p.onDeliver == nil {
			if (n.faultsOn && first.down) || (len(first.relWaiters) > 0 && first != n.wakingPort) || n.relAdmit(first, p.size, tp) > tp {
				fq.exprPending = true
				if !nc.isWaitingOn(first) {
					nc.waitingOn = append(nc.waitingOn, first)
					first.relWaiters = append(first.relWaiters, nc)
					n.ensureRelWake(first, sink)
				}
				continue
			}
		}
		fq.exprPending = false
		fq.exprSeen = now
		fq.q.pop()
		if fq.q.empty() {
			nc.clearActive(idx)
		}
		if n.crossLeaf(p) {
			nc.crossQueued--
		}
		var ser sim.Duration
		if sink != nil {
			ser = sink.serialization(n.cfg.LinkBandwidth, p.size)
		} else {
			ser = n.serialization(p.size)
		}
		if first.capacity != 0 {
			first.buffered += p.size // credit reserved while in flight
		}
		nc.busyNS += ser
		n.walkPacket(p, fq, tp, ser, sink)
		end := tp.Add(ser)
		if nc.freeAt > now {
			nc.freeAt = nc.freeAt.Add(ser) // express pick consumed link time
		} else {
			nc.freeAt = end
		}
		nc.exprFreeAt = end
		tp = end
	}
}

// walkPacket advances one picked packet through its entire route
// analytically: per hop, wire propagation plus a fabric delay drawn from the
// flow's private substream, then port-FIFO availability, then downstream
// credit admission, then link serialization.  The walk commits each port's
// freeAt / busy time / credit ledger as it goes, so later walks through the
// same ports queue behind this packet exactly as the strict event cascade
// would make them.
//
// A worker-executed walk (sink != nil) touches only leaf-local port state;
// its posts, pool returns and statistics land in the sink for ordered replay.
func (n *Network) walkPacket(p *packet, fq *flowQueue, pick sim.Time, ser sim.Duration, sink *relSink) {
	rng := &fq.rng // seeded at flowQueue creation (flowQueueFor)
	route := p.route
	size := p.size
	t := pick.Add(ser) // leaves the NIC
	probe := p.onDeliver != nil
	for h := 0; h < len(route); h++ {
		pt := route[h]
		b := t.Add(pt.link.Delay + n.fabricDelayFrom(rng))
		arrived := b
		if n.faultsOn && pt.node < 0 && arrived >= pt.downAt {
			// The trunk is (or will be) down at the packet's arrival — the
			// downAt stamp covers both current failures and ones scheduled
			// inside the committed window (the generator pre-draws, so the
			// stamp is always current).  The packet holds one reserve on this
			// hop (taken by the pick for hop 0, by the previous iteration
			// otherwise); loseWalked releases it and retransmits.  Worker
			// drains never reach here: trunk hops imply cross-leaf routes,
			// which force sequential windows.
			n.loseWalked(p, pt, arrived)
			return
		}
		hser := ser
		if n.faultsOn && pt.slow > 1 {
			hser = sim.Duration(float64(ser) * pt.slow) // degraded link
		}
		// Arrival-ordered shadow service.  The port's committed freeAt leads
		// honest arrival time by however far sender drain cursors have
		// batched ahead, so a straight FIFO wait behind it would charge this
		// packet for service that strict mode orders after it.  When commits
		// arrive in order (relArrival ≤ arrived) the shadow IS the FIFO wait,
		// freeAt − arrived; when this packet honestly arrived before work
		// already committed here, it waits only for the backlog that preceded
		// it (freeAt − relArrival) and its service is spliced into the
		// committed timeline without reordering what is already promised.
		base := pt.relArrival
		if arrived > base {
			base = arrived
		}
		if w := pt.freeAt - base; w > 0 {
			b = b.Add(sim.Duration(w))
		}
		if arrived > pt.relArrival {
			pt.relArrival = arrived
		}
		if h+1 < len(route) {
			if next := route[h+1]; next.capacity != 0 {
				if !probe {
					b = n.relAdmit(next, size, b)
				}
				next.buffered += size // credit reserved while in flight
			}
		}
		e := b.Add(hser)
		if pt.freeAt > e {
			pt.freeAt = pt.freeAt.Add(hser) // splice into the committed backlog
		} else {
			pt.freeAt = e
		}
		pt.busyNS += hser
		if pt.capacity != 0 {
			pt.led.push(e, size) // this hop's credit returns when service ends
		}
		t = e
	}
	arrive := t.Add(route[len(route)-1].link.Delay)
	n.finishWalk(p, fq, arrive, sink)
}

// finishWalk commits the bookkeeping tail of a completed route walk —
// delivery counters, observer/probe posts, message completion, packet
// recycling — shared verbatim by the per-packet walk and the train-fused
// walk so the two paths cannot drift.
func (n *Network) finishWalk(p *packet, fq *flowQueue, arrive sim.Time, sink *relSink) {
	size := p.size
	fq.bytes += int64(size)
	if telemetry.TraceEnabled() && telemetry.TraceSampleHit() {
		n.traceDelivery(p, arrive)
	}
	if sink != nil {
		sink.packets++
		sink.bytes += int64(size)
	} else {
		n.packetsDelivered++
		n.bytesDelivered += int64(size)
	}
	if p.onDeliver != nil || len(n.observers) > 0 {
		// User callbacks must run at the packet's true virtual time; defer
		// through the lane, which advances the clock to the entry.
		if sink != nil {
			sink.ops = append(sink.ops, relOp{kind: laneRelaxedDeliver, at: arrive, p: p})
		} else {
			n.postRelaxed(arrive, laneRelaxedDeliver, p, 0)
		}
		return
	}
	if ms := p.msg; ms != nil {
		if arrive > ms.completeAt {
			ms.completeAt = arrive
		}
		ms.remaining--
		if ms.remaining == 0 {
			// One deferred completion per message, at the max arrival.
			if sink != nil {
				sink.ops = append(sink.ops, relOp{kind: laneRelaxedComplete, at: ms.completeAt, p: p})
			} else {
				n.postRelaxed(ms.completeAt, laneRelaxedComplete, p, 0)
			}
			return
		}
	}
	if sink != nil {
		sink.recycled = append(sink.recycled, p)
		return
	}
	n.putPacket(p)
}

// ensureRelWake schedules a deferred waiter wake for the port at its next
// scheduled credit release, if one is not already pending.  The wake resumes
// the port's waiter FIFO in stall order, reproducing strict mode's fair
// rotation among NICs contending for a saturated buffer.  A worker-executed
// drain (sink != nil) marks the port pending — the port is leaf-local — but
// buffers the arm itself, whose lane sequence number encodes global order.
func (n *Network) ensureRelWake(pt *SwitchPort, sink *relSink) {
	if pt.wakePending || len(pt.relWaiters) == 0 {
		return
	}
	led := &pt.led
	if led.head == len(led.q) {
		// Unreachable while waiters exist: the first registrant was denied
		// admission, so reserved credits remain, and every reserve has a
		// scheduled release on the ledger.
		return
	}
	at := led.q[led.head].at
	if now := n.k.Now(); at < now {
		at = now
	}
	pt.wakePending = true
	if sink != nil {
		sink.ops = append(sink.ops, relOp{kind: laneRelaxedPortWake, at: at, pt: pt})
		return
	}
	n.armPortWake(pt, at)
}

// armPortWake schedules the already-marked-pending wake entry for pt at at.
func (n *Network) armPortWake(pt *SwitchPort, at sim.Time) {
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: laneRelaxedPortWake, aux: pt.idx})
		return
	}
	n.k.CallAt(at, n.portWakeFn, pt)
}

// relaxedPortWake fires a port's deferred waiter wake.  Waiters resume in
// stall order, but only while the buffer has free room at the wake instant:
// waking the whole herd on every credit release costs O(NICs) queue rescans
// per packet on a saturated port (strict mode sidesteps that with its
// busy-uplink early-out, which relaxed drains do not have).  NICs beyond the
// free room keep their FIFO turn for the next release's wake, and a resumed
// NIC that stays blocked re-registers at the tail, so contenders rotate
// through the free room without starvation.
func (n *Network) relaxedPortWake(pt *SwitchPort) {
	// wakePending stays set while the wake runs so the drains below cannot
	// arm a duplicate entry; the wake re-arms itself once on exit.
	rounds := len(pt.relWaiters)
	for i := 0; i < rounds && len(pt.relWaiters) > 0; i++ {
		if pt.capacity != 0 {
			pt.buffered -= pt.led.apply(n.k.Now())
			if pt.buffered >= pt.capacity {
				break
			}
		}
		nc := pt.relWaiters[0]
		last := len(pt.relWaiters) - 1
		copy(pt.relWaiters, pt.relWaiters[1:])
		pt.relWaiters[last] = nil
		pt.relWaiters = pt.relWaiters[:last]
		nc.dropWaitingOn(pt)
		n.wakingPort = pt
		n.drainNic(nc, nil)
		n.wakingPort = nil
	}
	pt.wakePending = false
	n.ensureRelWake(pt, nil)
}

// park suspends a NIC whose drain reached the commit horizon and arms the
// network's shared advance entry.  One deferred entry resumes every parked
// NIC per lookahead window, so the per-window scheduling overhead is
// amortized across the whole fabric instead of paid per NIC.
func (n *Network) park(nc *nic) {
	if !nc.parked {
		nc.parked = true
		n.parked = append(n.parked, nc)
	}
	n.ensureAdvance(nc.freeAt)
}

// ensureAdvance guarantees a deferred advance no later than at.  A pending
// later entry is superseded by bumping the generation (the stale entry
// becomes a no-op when drained); advance() itself re-arms once on exit, so
// parks it triggers skip the per-call check.
func (n *Network) ensureAdvance(at sim.Time) {
	if n.advancing {
		return
	}
	if now := n.k.Now(); at < now {
		at = now
	}
	if n.advPending && n.advanceAt <= at {
		return
	}
	n.advGen++
	n.advanceAt = at
	n.advPending = true
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: laneRelaxedAdvance, aux: n.advGen})
		return
	}
	n.k.CallAt(at, n.advanceFn, n.advGen)
}

// advance resumes every parked NIC whose committed cursor falls inside the
// new lookahead window, then re-arms one deferred entry at the earliest
// still-parked cursor.  gen identifies the lane entry that fired; a stale
// generation (superseded by an earlier re-arm) is a no-op.
func (n *Network) advance(gen int32) {
	if gen != n.advGen {
		return
	}
	n.advPending = false
	n.advancing = true
	horizon := n.k.Now().Add(n.lookahead)
	if n.faultsOn && n.nextFaultAt < horizon {
		horizon = n.nextFaultAt // drains must not commit across a transition
	}
	list := n.parked
	n.parked = n.parkedScratch[:0]
	if n.workers <= 1 || !n.advanceParallel(list, horizon) {
		for _, nc := range list {
			if nc.freeAt < horizon {
				nc.parked = false
				n.drainNic(nc, nil) // may re-park onto the fresh list
			} else {
				n.parked = append(n.parked, nc)
			}
		}
	}
	n.parkedScratch = list[:0]
	n.advancing = false
	if len(n.parked) > 0 {
		min := n.parked[0].freeAt
		for _, nc := range n.parked[1:] {
			if nc.freeAt < min {
				min = nc.freeAt
			}
		}
		n.ensureAdvance(min)
	}
}

// postRelaxed schedules a deferred relaxed-mode entry (delivery or message
// completion) at an absolute instant, falling back to a kernel event when
// the fast path is off or the packed key range is exceeded.
func (n *Network) postRelaxed(at sim.Time, kind uint8, p *packet, aux int32) {
	if n.fastOn && at < laneMaxAt && n.k.NextSeq() < laneMaxSeq {
		n.lane.push(laneEvent{key: laneKey(at, n.k.AllocSeq()), kind: kind, p: p, aux: aux})
		return
	}
	if kind == laneRelaxedDeliver {
		n.k.CallAt(at, n.relaxDeliverFn, p)
	} else {
		n.k.CallAt(at, n.relaxCompleteFn, p)
	}
}

// relaxedDeliver runs a walked packet's delivery callbacks at its arrival
// instant.  Counters were already committed at walk time; this entry exists
// only to run user code (observers, probe onDeliver) at the true clock.
func (n *Network) relaxedDeliver(p *packet, at sim.Time) {
	d := Delivery{Src: p.src, Dst: p.dst, Size: p.size, Flow: p.flow, Sent: p.sent, Arrived: at}
	for _, obs := range n.observers {
		obs(d)
	}
	if p.onDeliver != nil {
		p.onDeliver(d)
	}
	if ms := p.msg; ms != nil {
		ms.remaining--
		if ms.remaining == 0 {
			// Entries execute in time order, so this is the last arrival —
			// unless earlier packets of the message completed at walk time
			// (observer registered mid-message) with a later bound.
			if ms.completeAt > at {
				at = ms.completeAt
			}
			p.msg = nil
			n.putPacket(p)
			n.finishMessage(ms, at)
			return
		}
	}
	n.putPacket(p)
}

// relaxedComplete fires a message's completion at its max arrival time,
// carried by the message's final packet (recycled here).
func (n *Network) relaxedComplete(p *packet, at sim.Time) {
	ms := p.msg
	p.msg = nil
	n.putPacket(p)
	n.finishMessage(ms, at)
}
