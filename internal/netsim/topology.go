package netsim

import (
	"fmt"
	"strings"
)

// Topology describes how compute nodes are wired to switches.  A topology is
// a pure routing description: it assigns every node to a bottom-level (leaf)
// switch and resolves every node→node pair to the sequence of inter-switch
// trunk ports the packet crosses between the source NIC and the destination
// egress port.  The per-hop queueing mechanics (serialization, credits,
// back-pressure) are topology-independent and live in Network.
type Topology interface {
	// Name identifies the topology in labels and reports ("star", "fattree").
	Name() string
	// Build lays the topology out for a concrete node count.  It is called
	// once per Network; the returned layout is read-only afterwards.
	Build(nodes int) (Layout, error)
}

// Layout is a topology laid out for a concrete node count.
type Layout struct {
	// Leaves is the number of bottom-level switches.
	Leaves int
	// LeafOf maps each node to the leaf switch its uplink attaches to.
	LeafOf []int
	// Trunks describes the inter-switch ports (empty for a single switch).
	Trunks []TrunkSpec
	// Routes[src*nodes+dst] lists the trunk ports (indices into Trunks) a
	// packet crosses between src's NIC and dst's egress port, in traversal
	// order.  An empty route means the pair shares a leaf and the packet goes
	// straight to the egress port.
	Routes [][]int
}

// TrunkSpec describes one inter-switch port.
type TrunkSpec struct {
	// Label names the port in statistics, e.g. "leaf0.up1".
	Label string
}

// validate checks the layout's shape, so a misbehaving custom Topology
// surfaces as a descriptive error instead of an index panic deep inside
// network construction.
func (lay Layout) validate(nodes int) error {
	if lay.Leaves < 1 {
		return fmt.Errorf("netsim: layout has %d leaves", lay.Leaves)
	}
	if len(lay.LeafOf) != nodes {
		return fmt.Errorf("netsim: layout maps %d nodes to leaves, want %d", len(lay.LeafOf), nodes)
	}
	for node, leaf := range lay.LeafOf {
		if leaf < 0 || leaf >= lay.Leaves {
			return fmt.Errorf("netsim: node %d on leaf %d outside [0, %d)", node, leaf, lay.Leaves)
		}
	}
	if len(lay.Routes) != nodes*nodes {
		return fmt.Errorf("netsim: layout has %d routes, want %d", len(lay.Routes), nodes*nodes)
	}
	for pair, route := range lay.Routes {
		for _, h := range route {
			if h < 0 || h >= len(lay.Trunks) {
				return fmt.Errorf("netsim: route %d->%d crosses trunk %d outside [0, %d)",
					pair/nodes, pair%nodes, h, len(lay.Trunks))
			}
		}
	}
	return nil
}

// Star is the single-switch topology of the paper's testbed: every node has
// one uplink to the same switch, so every packet crosses exactly one fabric
// and queues only at the destination's egress port.
type Star struct{}

// Name implements Topology.
func (Star) Name() string { return "star" }

// Build implements Topology.
func (Star) Build(nodes int) (Layout, error) {
	if nodes < 2 {
		return Layout{}, fmt.Errorf("netsim: star topology needs at least 2 nodes, have %d", nodes)
	}
	return Layout{
		Leaves: 1,
		LeafOf: make([]int, nodes),
		Routes: make([][]int, nodes*nodes),
	}, nil
}

// FatTree is a two-stage fabric: nodes attach to Leaves bottom-level
// switches, and each leaf has UplinksPerLeaf trunk links to a spine stage.
// Traffic between nodes on the same leaf never leaves the leaf; traffic
// between leaves crosses one leaf→spine uplink and one spine→leaf downlink,
// both chosen by static destination-based routing (as InfiniBand's linear
// forwarding tables do).  With fewer uplinks than nodes per leaf the fabric
// is oversubscribed and inter-leaf traffic contends on the trunks — the
// regime the paper's full multi-switch cluster operates in.
type FatTree struct {
	// Leaves is the number of bottom-level switches; nodes are assigned to
	// leaves contiguously (ceil(nodes/Leaves) per leaf).
	Leaves int
	// UplinksPerLeaf is the number of trunk links from each leaf to the
	// spine stage.  Zero means one uplink per attached node, i.e. a
	// non-oversubscribed (1:1) fabric.
	UplinksPerLeaf int
}

// Name implements Topology.
func (t FatTree) Name() string { return "fattree" }

// NodesPerLeaf returns the number of nodes attached to each (full) leaf.
func (t FatTree) NodesPerLeaf(nodes int) int {
	if t.Leaves < 1 {
		return nodes
	}
	return (nodes + t.Leaves - 1) / t.Leaves
}

// uplinks resolves the configured uplink count for a concrete node count.
func (t FatTree) uplinks(nodes int) int {
	if t.UplinksPerLeaf > 0 {
		return t.UplinksPerLeaf
	}
	return t.NodesPerLeaf(nodes)
}

// Oversubscription returns the leaf oversubscription ratio (nodes per leaf
// divided by uplinks per leaf); 1 means the fabric is non-blocking.
func (t FatTree) Oversubscription(nodes int) float64 {
	return float64(t.NodesPerLeaf(nodes)) / float64(t.uplinks(nodes))
}

// Build implements Topology.
func (t FatTree) Build(nodes int) (Layout, error) {
	if nodes < 2 {
		return Layout{}, fmt.Errorf("netsim: fat-tree needs at least 2 nodes, have %d", nodes)
	}
	if t.Leaves < 1 {
		return Layout{}, fmt.Errorf("netsim: fat-tree needs at least 1 leaf, have %d", t.Leaves)
	}
	if t.Leaves > nodes {
		return Layout{}, fmt.Errorf("netsim: fat-tree with %d leaves but only %d nodes", t.Leaves, nodes)
	}
	if t.UplinksPerLeaf < 0 {
		return Layout{}, fmt.Errorf("netsim: negative uplinks per leaf %d", t.UplinksPerLeaf)
	}
	perLeaf := t.NodesPerLeaf(nodes)
	uplinks := t.uplinks(nodes)
	lay := Layout{
		Leaves: t.Leaves,
		LeafOf: make([]int, nodes),
		Routes: make([][]int, nodes*nodes),
	}
	for i := 0; i < nodes; i++ {
		lay.LeafOf[i] = i / perLeaf
	}
	// Per leaf: uplinks (leaf→spine) first, then downlinks (spine→leaf).
	up := func(leaf, u int) int { return leaf*2*uplinks + u }
	down := func(leaf, u int) int { return leaf*2*uplinks + uplinks + u }
	for leaf := 0; leaf < t.Leaves; leaf++ {
		for u := 0; u < uplinks; u++ {
			lay.Trunks = append(lay.Trunks, TrunkSpec{Label: fmt.Sprintf("leaf%d.up%d", leaf, u)})
		}
		for u := 0; u < uplinks; u++ {
			lay.Trunks = append(lay.Trunks, TrunkSpec{Label: fmt.Sprintf("leaf%d.down%d", leaf, u)})
		}
	}
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst || lay.LeafOf[src] == lay.LeafOf[dst] {
				continue
			}
			u := dst % uplinks // destination-routed trunk selection
			lay.Routes[src*nodes+dst] = []int{up(lay.LeafOf[src], u), down(lay.LeafOf[dst], u)}
		}
	}
	return lay, nil
}

// FailoverRouter is implemented by topologies that can compute an alternate
// route between a node pair while avoiding failed trunks.  The fault-injection
// runtime (faults.go) consults it on every trunk transition: a topology that
// does not implement it keeps its static routes and failed trunks simply stall
// their traffic (paper-faithful partition behaviour).
type FailoverRouter interface {
	// RouteAvoiding returns the trunk-index route from src to dst that avoids
	// every trunk for which down reports true, or ok=false when no such route
	// exists (the pair is partitioned).  With no trunks down it must return
	// the same route Build resolved, so repaired fabrics converge back to
	// their baseline routing.
	RouteAvoiding(nodes, src, dst int, down func(trunk int) bool) (route []int, ok bool)
}

// RouteAvoiding implements FailoverRouter: the destination-routed uplink
// choice u = dst % uplinks is probed first (the healthy mapping), then the
// remaining uplink columns in rotation, taking the first column whose
// leaf→spine and spine→leaf trunks are both alive.
func (t FatTree) RouteAvoiding(nodes, src, dst int, down func(trunk int) bool) ([]int, bool) {
	perLeaf := t.NodesPerLeaf(nodes)
	ls, ld := src/perLeaf, dst/perLeaf
	if src == dst || ls == ld {
		return nil, true
	}
	uplinks := t.uplinks(nodes)
	up := func(leaf, u int) int { return leaf*2*uplinks + u }
	dn := func(leaf, u int) int { return leaf*2*uplinks + uplinks + u }
	for k := 0; k < uplinks; k++ {
		u := (dst + k) % uplinks
		if !down(up(ls, u)) && !down(dn(ld, u)) {
			return []int{up(ls, u), dn(ld, u)}, true
		}
	}
	return nil, false
}

// ParseTopology builds a topology from textual CLI parameters.  kind is
// "star" or "fattree"; leaves and uplinks apply only to the fat-tree (zero
// leaves defaults to 2, zero uplinks means a non-oversubscribed fabric).
func ParseTopology(kind string, leaves, uplinks int) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "", "star":
		return Star{}, nil
	case "fattree", "fat-tree":
		if leaves == 0 {
			leaves = 2
		}
		return FatTree{Leaves: leaves, UplinksPerLeaf: uplinks}, nil
	default:
		return nil, fmt.Errorf("netsim: unknown topology %q (valid: star, fattree)", kind)
	}
}
