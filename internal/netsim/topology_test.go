package netsim

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/sim"
)

func TestStarBuild(t *testing.T) {
	lay, err := Star{}.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Leaves != 1 || len(lay.Trunks) != 0 {
		t.Fatalf("star layout = %+v, want 1 leaf and no trunks", lay)
	}
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if len(lay.Routes[src*4+dst]) != 0 {
				t.Fatalf("star route %d->%d not direct", src, dst)
			}
		}
	}
	if _, err := (Star{}).Build(1); err == nil {
		t.Fatal("expected error for 1 node")
	}
}

func TestFatTreeBuild(t *testing.T) {
	ft := FatTree{Leaves: 2, UplinksPerLeaf: 2}
	lay, err := ft.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Leaves != 2 {
		t.Fatalf("leaves = %d, want 2", lay.Leaves)
	}
	// 2 leaves x (2 up + 2 down).
	if len(lay.Trunks) != 8 {
		t.Fatalf("trunks = %d, want 8", len(lay.Trunks))
	}
	wantLeaf := []int{0, 0, 0, 1, 1, 1}
	for i, want := range wantLeaf {
		if lay.LeafOf[i] != want {
			t.Fatalf("leafOf[%d] = %d, want %d", i, lay.LeafOf[i], want)
		}
	}
	// Same-leaf pairs route directly; cross-leaf pairs cross one uplink and
	// one downlink, both chosen by destination.
	if len(lay.Routes[0*6+2]) != 0 {
		t.Fatal("same-leaf route should be direct")
	}
	r := lay.Routes[0*6+4] // node 0 (leaf 0) -> node 4 (leaf 1), trunk 4%2=0
	if len(r) != 2 {
		t.Fatalf("cross-leaf route has %d hops, want 2", len(r))
	}
	if lay.Trunks[r[0]].Label != "leaf0.up0" || lay.Trunks[r[1]].Label != "leaf1.down0" {
		t.Fatalf("route labels = %s, %s", lay.Trunks[r[0]].Label, lay.Trunks[r[1]].Label)
	}
	// All traffic to one destination shares its trunks (destination routing),
	// regardless of source.
	r2 := lay.Routes[2*6+4]
	if r2[0] != r[0] || r2[1] != r[1] {
		t.Fatalf("destination routing violated: %v vs %v", r2, r)
	}

	if ft.Oversubscription(6) != 1.5 {
		t.Fatalf("oversubscription = %v, want 1.5", ft.Oversubscription(6))
	}
	if (FatTree{Leaves: 2}).Oversubscription(6) != 1 {
		t.Fatal("zero uplinks should mean a non-blocking 1:1 fabric")
	}

	bad := []FatTree{{Leaves: 0}, {Leaves: 7, UplinksPerLeaf: 1}, {Leaves: 2, UplinksPerLeaf: -1}}
	for i, b := range bad {
		if _, err := b.Build(6); err == nil {
			t.Errorf("case %d: expected build error for %+v", i, b)
		}
	}
}

func TestParseTopology(t *testing.T) {
	topo, err := ParseTopology("star", 0, 0)
	if err != nil || topo.Name() != "star" {
		t.Fatalf("star parse: %v %v", topo, err)
	}
	topo, err = ParseTopology("fattree", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := topo.(FatTree)
	if !ok || ft.Leaves != 2 || ft.UplinksPerLeaf != 2 {
		t.Fatalf("fattree parse = %+v", topo)
	}
	if _, err := ParseTopology("torus", 0, 0); err == nil {
		t.Fatal("expected error for unknown topology")
	}
}

// fatTreeConfig returns a 6-node, two-leaf fat-tree test configuration.
func fatTreeConfig(uplinks int) Config {
	cfg := CabConfig()
	cfg.Nodes = 6
	cfg.Topology = FatTree{Leaves: 2, UplinksPerLeaf: uplinks}
	return cfg
}

// TestStarGoldenTrace pins the exact packet schedule of the default (star)
// topology: the refactor to the pluggable topology engine, and any change
// after it, must not move a single event of the original single-switch
// model.  The constants were captured from the pre-topology-engine code.
func TestStarGoldenTrace(t *testing.T) {
	k := sim.NewKernel(42)
	cfg := CabConfig()
	cfg.Nodes = 6
	cfg.StrictOrder = true // golden oracle: the pinned version-2 schedule
	n := MustNew(k, cfg)
	var last sim.Time
	var count int
	var sum int64
	n.Observe(func(d Delivery) { last = d.Arrived; count++; sum += int64(d.Latency()) })
	for i := 0; i < 40; i++ {
		src := i % 6
		dst := (i*3 + 1) % 6
		if dst == src {
			dst = (dst + 1) % 6
		}
		if err := n.SendMessage(src, dst, 1000+i*777, Flow{Class: "g", ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if int64(last) != 67112 || count != 178 || sum != 6063964 || n.Stats().StallEvents != 439 {
		t.Fatalf("star schedule drifted: last=%d count=%d sum=%d stalls=%d, want 67112/178/6063964/439",
			int64(last), count, sum, n.Stats().StallEvents)
	}
}

// TestFatTreeOneLeafMatchesStar runs the same traffic on the star and on a
// degenerate one-leaf fat-tree: with no cross-leaf pairs the routes are
// identical, so the schedules must match event for event.
func TestFatTreeOneLeafMatchesStar(t *testing.T) {
	run := func(topo Topology) (int64, sim.Time) {
		k := sim.NewKernel(9)
		cfg := CabConfig()
		cfg.Nodes = 5
		cfg.Topology = topo
		n := MustNew(k, cfg)
		var last sim.Time
		n.Observe(func(d Delivery) { last = d.Arrived })
		for i := 0; i < 20; i++ {
			src := i % 5
			dst := (src + 1 + i%3) % 5
			if dst == src {
				continue
			}
			if err := n.SendMessage(src, dst, 5000+i*311, Flow{Class: "x", ID: i}, nil); err != nil {
				t.Fatal(err)
			}
		}
		k.Run()
		return n.Stats().PacketsDelivered, last
	}
	p1, t1 := run(nil)
	p2, t2 := run(FatTree{Leaves: 1})
	if p1 != p2 || t1 != t2 {
		t.Fatalf("one-leaf fat-tree diverged from star: (%d,%d) vs (%d,%d)", p1, t1, p2, t2)
	}
}

func TestFatTreeCrossLeafLatency(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := fatTreeConfig(2)
	cfg.TailProb = 0
	cfg.FabricJitter = 0
	n := MustNew(k, cfg)
	if n.Leaves() != 2 || n.LeafOf(0) != 0 || n.LeafOf(5) != 1 {
		t.Fatalf("leaf layout wrong: leaves=%d", n.Leaves())
	}
	if n.PathHops(0, 1) != 1 || n.PathHops(0, 4) != 3 {
		t.Fatalf("path hops = %d intra, %d cross; want 1, 3", n.PathHops(0, 1), n.PathHops(0, 4))
	}
	var same, cross sim.Duration
	if err := n.SendProbe(0, 1, 1024, Flow{Class: "p"}, func(d Delivery) { same = d.Latency() }); err != nil {
		t.Fatal(err)
	}
	if err := n.SendProbe(2, 4, 1024, Flow{Class: "p"}, func(d Delivery) { cross = d.Latency() }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if same != n.PathIdleLatencyEstimate(0, 1, 1024) {
		t.Fatalf("same-leaf latency %v, want %v", same, n.PathIdleLatencyEstimate(0, 1, 1024))
	}
	if cross != n.PathIdleLatencyEstimate(2, 4, 1024) {
		t.Fatalf("cross-leaf latency %v, want %v", cross, n.PathIdleLatencyEstimate(2, 4, 1024))
	}
	if cross <= same {
		t.Fatalf("cross-leaf latency %v not above same-leaf %v", cross, same)
	}
}

// TestUplinkBackpressure saturates a single leaf→spine uplink from every
// node of leaf 0 and verifies the credit flow control propagates all the way
// back to the sending NICs without deadlocking, both with finite buffers and
// with the EgressBufferBytes=0 (unlimited, no back-pressure) ablation.
func TestUplinkBackpressure(t *testing.T) {
	run := func(buffer int) (Stats, bool) {
		k := sim.NewKernel(17)
		cfg := fatTreeConfig(1) // one shared uplink: 3:1 oversubscription
		cfg.EgressBufferBytes = buffer
		n := MustNew(k, cfg)
		const msg = 2 << 20
		completions := 0
		// Every leaf-0 node blasts a different leaf-1 node so all three
		// flows contend on leaf0.up0 but drain to distinct egress ports.
		for src := 0; src < 3; src++ {
			dst := 3 + src
			if err := n.SendMessage(src, dst, msg, Flow{Class: "blast", ID: src}, func(sim.Time) { completions++ }); err != nil {
				t.Fatal(err)
			}
		}
		k.Run() // would hang (or leave events pending) on a deadlock
		return n.Stats(), completions == 3
	}

	st, done := run(32 * 1024)
	if !done {
		t.Fatal("finite-buffer run did not deliver every message")
	}
	if st.StallEvents == 0 {
		t.Fatal("expected NIC stalls behind the saturated uplink")
	}
	if st.BytesDelivered != 3*(2<<20) {
		t.Fatalf("delivered %d bytes, want %d", st.BytesDelivered, 3*(2<<20))
	}
	// The shared uplink must be the bottleneck: its busy time is the sum of
	// all three transfers' serialization.
	var upBusy sim.Duration
	for i, label := range st.TrunkLabels {
		if label == "leaf0.up0" {
			upBusy = st.TrunkBusy[i]
		}
	}
	if upBusy == 0 {
		t.Fatal("leaf0.up0 never transmitted")
	}
	for _, d := range st.DownlinkBusy[3:] {
		if d >= upBusy {
			t.Fatalf("egress busy %v not below shared uplink busy %v", d, upBusy)
		}
	}

	st0, done0 := run(0)
	if !done0 {
		t.Fatal("zero-buffer (unlimited) run did not deliver every message")
	}
	if st0.StallEvents != 0 {
		t.Fatalf("unlimited buffering stalled %d times, want 0", st0.StallEvents)
	}
	if st0.BytesDelivered != st.BytesDelivered {
		t.Fatalf("ablation delivered %d bytes, want %d", st0.BytesDelivered, st.BytesDelivered)
	}
}

// TestFatTreeDeterminism runs identical fat-tree traffic twice and expects
// identical schedules.
func TestFatTreeDeterminism(t *testing.T) {
	run := func() (int64, sim.Time, int64) {
		k := sim.NewKernel(77)
		n := MustNew(k, fatTreeConfig(1))
		var last sim.Time
		n.Observe(func(d Delivery) { last = d.Arrived })
		for i := 0; i < 30; i++ {
			src := i % 6
			dst := (i*5 + 2) % 6
			if dst == src {
				dst = (dst + 1) % 6
			}
			if err := n.SendMessage(src, dst, 3000+i*997, Flow{Class: "d", ID: i}, nil); err != nil {
				t.Fatal(err)
			}
		}
		k.Run()
		st := n.Stats()
		return st.PacketsDelivered, last, st.StallEvents
	}
	p1, t1, s1 := run()
	p2, t2, s2 := run()
	if p1 != p2 || t1 != t2 || s1 != s2 {
		t.Fatalf("non-deterministic fat-tree: (%d,%d,%d) vs (%d,%d,%d)", p1, t1, s1, p2, t2, s2)
	}
}
