package netsim

import (
	"fmt"

	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/telemetry"
)

// Structured-trace emission for the network layer.  Every hook is guarded by
// telemetry.TraceEnabled() at the call site, so a disabled tracer costs one
// atomic load; high-rate delivery events additionally pass through the
// deterministic sampling modulo (telemetry.TraceSampleHit).  Nothing here
// touches simulation state or random streams — tracing a run cannot change
// its schedule, only record it.

// tracePidFor lazily allocates the network's trace process id and names its
// lanes: one trace process per Network, one thread per destination leaf.
// The allocation races benignly between leaf workers: one CAS wins and names
// the lanes, losers read the winner's pid.
func (n *Network) tracePidFor() int64 {
	if pid := n.tracePid.Load(); pid != 0 {
		return pid
	}
	pid := telemetry.NextTracePid()
	if !n.tracePid.CompareAndSwap(0, pid) {
		return n.tracePid.Load()
	}
	telemetry.EmitProcessName(pid, fmt.Sprintf("net %s/%d nodes", TopologyFingerprint(n.topo), n.cfg.Nodes))
	for leaf := 0; leaf < n.Leaves(); leaf++ {
		telemetry.EmitThreadName(pid, int64(leaf), fmt.Sprintf("leaf %d", leaf))
	}
	return pid
}

// traceDelivery records one sampled packet delivery on the destination
// leaf's lane at its virtual arrival time.
func (n *Network) traceDelivery(p *packet, at sim.Time) {
	telemetry.EmitInstant("net.deliver", fmt.Sprintf("%d→%d", p.src, p.dst),
		n.tracePidFor(), int64(n.LeafOf(p.dst)), int64(at), map[string]any{
			"bytes": p.size,
			"class": p.flow.Class,
		})
}

// traceFault records fault-plan transitions: an instant per transition, plus
// — on repair — a complete span covering the whole outage window, so a
// Perfetto timeline shows each trunk's down time as a solid bar.  Trunk lanes
// use the port index offset past the leaf lanes so they never collide with
// delivery lanes.
func (n *Network) traceFault(pt *SwitchPort, kind FaultKind, factor float64, now sim.Time) {
	pid := n.tracePidFor()
	tid := int64(n.Leaves()) + int64(pt.idx)
	switch kind {
	case FaultTrunkDown:
		telemetry.EmitThreadName(pid, tid, "trunk "+pt.label)
		telemetry.EmitInstant("fault", "down "+pt.label, pid, tid, int64(now), nil)
	case FaultTrunkUp:
		telemetry.EmitInstant("fault", "up "+pt.label, pid, tid, int64(now), nil)
		if pt.downAt < now {
			telemetry.EmitSpan("fault.window", "outage "+pt.label, pid, tid,
				int64(pt.downAt), int64(now-pt.downAt), nil)
		}
	case FaultDegrade:
		telemetry.EmitInstant("fault", fmt.Sprintf("degrade %s x%.2g", pt.label, factor), pid, tid, int64(now), nil)
	}
}
