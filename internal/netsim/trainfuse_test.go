package netsim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// trainFuseVariant selects one topology/buffer/observer combination for the
// fused-vs-unfused identity fuzz.  The buffer ablation matters because
// EgressBufferBytes=0 disables credit admission entirely (a different fused
// code path), and tiny buffers force mid-train stall splits; the observer
// toggle switches finishWalk between per-packet delivery posts and one
// deferred completion per message.
type trainFuseVariant struct {
	name     string
	topology Topology
	nodes    int
	ebuf     int
	observe  bool
}

var trainFuseVariants = []trainFuseVariant{
	{name: "star-tiny-buf", topology: Star{}, nodes: 10, ebuf: 8 * 1024, observe: true},
	{name: "star-no-buf", topology: Star{}, nodes: 10, ebuf: 0, observe: false},
	{name: "fattree-tiny-buf", topology: FatTree{Leaves: 4, UplinksPerLeaf: 2}, nodes: 16, ebuf: 8 * 1024, observe: false},
	{name: "fattree-default-buf", topology: FatTree{Leaves: 4, UplinksPerLeaf: 2}, nodes: 16, ebuf: 16 * 1024, observe: true},
}

// trainFuseRun drives a randomized contention workload (deterministic in
// wseed) and returns every observable the relaxed engine produces: the
// delivery trace, message completion instants, probe latencies, the final
// virtual clock, and the network statistics.
func trainFuseRun(t *testing.T, v trainFuseVariant, wseed int64, workers int, noFuse bool) (string, Stats) {
	t.Helper()
	k := sim.NewKernel(1000 + wseed)
	cfg := CabConfig()
	cfg.Nodes = v.nodes
	cfg.Topology = v.topology
	cfg.EgressBufferBytes = v.ebuf
	cfg.Workers = workers
	cfg.NoTrainFuse = noFuse
	n := MustNew(k, cfg)
	var trace strings.Builder
	if v.observe {
		n.Observe(func(d Delivery) {
			fmt.Fprintf(&trace, "dlv %d>%d sz=%d sent=%d arr=%d\n",
				d.Src, d.Dst, d.Size, int64(d.Sent), int64(d.Arrived))
		})
	}
	// The workload generator's stream is independent of the engine's; it only
	// has to be identical across the fused and unfused runs.
	wr := rand.New(rand.NewSource(wseed))
	sendStorm := func(round int) func(any) {
		return func(any) {
			// A hot destination per round concentrates flows onto one egress
			// port so trains split mid-flight on exhausted credits, while the
			// remaining messages keep multiple queues non-empty (exercising
			// the blocked-competitor fusion precondition).
			hot := wr.Intn(v.nodes)
			for i := 0; i < 24; i++ {
				src := wr.Intn(v.nodes)
				dst := hot
				if wr.Intn(3) == 0 {
					dst = wr.Intn(v.nodes)
				}
				if dst == src {
					dst = (src + 1) % v.nodes
				}
				size := 1 + wr.Intn(192*1024)
				flow := Flow{Class: "bulk", ID: round*100 + i%7}
				id := fmt.Sprintf("msg r%d i%d %d>%d sz=%d", round, i, src, dst, size)
				if err := n.SendMessage(src, dst, size, flow, func(at sim.Time) {
					fmt.Fprintf(&trace, "%s done=%d\n", id, int64(at))
				}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 4; i++ {
				src := wr.Intn(v.nodes)
				dst := (src + 1 + wr.Intn(v.nodes-1)) % v.nodes
				if dst == src {
					dst = (src + 1) % v.nodes
				}
				id := fmt.Sprintf("probe r%d i%d %d>%d", round, i, src, dst)
				if err := n.SendProbe(src, dst, 64, Flow{Class: "probe", ID: 900 + i}, func(d Delivery) {
					fmt.Fprintf(&trace, "%s lat=%d\n", id, int64(d.Arrived-d.Sent))
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	sendStorm(0)(nil)
	for round := 1; round < 4; round++ {
		k.CallAt(sim.Time(round)*sim.Time(400*sim.Microsecond), sendStorm(round), nil)
	}
	k.Run()
	fmt.Fprintf(&trace, "end=%d\n", int64(k.Now()))
	return trace.String(), n.Stats()
}

// TestTrainFuseByteIdentical is the identity gate for the train-fusion knob:
// for fuzzed contention workloads over both topologies, with and without
// credit buffers, across Workers values, the fused engine must reproduce the
// unfused engine's output byte-for-byte — every delivery, completion and
// probe timestamp, the final clock, and every schedule-derived counter.
// That identity is what keeps NoTrainFuse out of Config.Fingerprint and the
// cached artifact space unforked.
func TestTrainFuseByteIdentical(t *testing.T) {
	for _, v := range trainFuseVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for wseed := int64(1); wseed <= 5; wseed++ {
				refTrace, refStats := trainFuseRun(t, v, wseed, 0, true)
				if refStats.TrainsWalked != 0 {
					t.Fatalf("seed %d: unfused run reports %d trains walked", wseed, refStats.TrainsWalked)
				}
				for _, workers := range []int{0, 1, 2} {
					fTrace, fStats := trainFuseRun(t, v, wseed, workers, false)
					if fTrace != refTrace {
						t.Fatalf("seed %d workers=%d: fused trace diverges from unfused:\nunfused:\n%s\nfused:\n%s",
							wseed, workers, head(refTrace, 25), head(fTrace, 25))
					}
					if fStats.TrainsWalked == 0 {
						t.Fatalf("seed %d workers=%d: fused run walked no trains; the workload no longer arms fusion", wseed, workers)
					}
					// Fusion and worker telemetry are execution-only and
					// legitimately differ; everything else must match
					// byte-for-byte.
					fStats.TrainsWalked, fStats.TrainPackets = 0, 0
					fStats.TrainAborts = refStats.TrainAborts
					fStats.ParallelWindows = refStats.ParallelWindows
					if fmt.Sprintf("%+v", fStats) != fmt.Sprintf("%+v", refStats) {
						t.Fatalf("seed %d workers=%d: stats diverge:\nunfused: %+v\nfused:   %+v",
							wseed, workers, refStats, fStats)
					}
				}
			}
		})
	}
}

// TestTrainFuseKillSwitchEnv pins the environment kill switch: with
// SWITCHPROBE_NO_TRAIN_FUSE set, a default-config relaxed network must take
// the unfused path even when Config.NoTrainFuse is false.
func TestTrainFuseKillSwitchEnv(t *testing.T) {
	t.Setenv(NoTrainFuseEnv, "1")
	_, stats := trainFuseRun(t, trainFuseVariants[0], 3, 0, false)
	if stats.TrainsWalked != 0 {
		t.Fatalf("env kill switch ignored: %d trains walked", stats.TrainsWalked)
	}
}

// benchTrainDrain drives the fused walk's ideal workload — one bulk flow
// draining a long queue with no competitors — so the fused/unfused pair
// isolates the per-packet arbitration and port-scalar cost that train fusion
// amortizes, without the campaign benchmarks' mpisim and lane noise.
func benchTrainDrain(b *testing.B, noFuse bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(77)
		cfg := CabConfig()
		cfg.NoTrainFuse = noFuse
		n := MustNew(k, cfg)
		for m := 0; m < 4; m++ {
			if err := n.SendMessage(m, (m+5)%cfg.Nodes, 4<<20, Flow{Class: "bulk", ID: m}, nil); err != nil {
				b.Fatal(err)
			}
		}
		k.Run()
	}
}

func BenchmarkTrainDrainFused(b *testing.B)   { benchTrainDrain(b, false) }
func BenchmarkTrainDrainUnfused(b *testing.B) { benchTrainDrain(b, true) }

// TestTrainFuseCountersSurface pins the telemetry plumbing: a single-flow
// bulk transfer is the ideal fusion workload, so the fused run must report
// trains with a healthy packets-per-train ratio, and the fusion knob must
// stay out of the config fingerprint.
func TestTrainFuseCountersSurface(t *testing.T) {
	run := func(noFuse bool) Stats {
		k := sim.NewKernel(77)
		cfg := CabConfig()
		cfg.NoTrainFuse = noFuse
		n := MustNew(k, cfg)
		if err := n.SendMessage(0, 5, 4<<20, Flow{Class: "bulk", ID: 1}, nil); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return n.Stats()
	}
	fused := run(false)
	if fused.TrainsWalked == 0 {
		t.Fatal("single-flow bulk transfer walked no trains")
	}
	// The lookahead horizon bounds an uncontended train to ~2 MTU picks per
	// advance window, so the average sits just under 2; the load-bearing
	// claims are that trains carry more than one packet on average and that
	// nearly all of the transfer's 1024 packets (4 MiB / 4 KiB MTU) ride
	// fused trains rather than the per-packet fallback.
	if ppt := float64(fused.TrainPackets) / float64(fused.TrainsWalked); ppt < 1.5 {
		t.Fatalf("packets per train = %.2f, want ≥ 1.5 (trains: %d, packets: %d)",
			ppt, fused.TrainsWalked, fused.TrainPackets)
	}
	if fused.TrainPackets < 1000 {
		t.Fatalf("fused coverage too low: %d of 1024 packets rode trains", fused.TrainPackets)
	}
	unfused := run(true)
	if unfused.TrainsWalked != 0 || unfused.TrainPackets != 0 {
		t.Fatalf("unfused run reports train activity: %+v", unfused)
	}
	a, b := CabConfig(), CabConfig()
	b.NoTrainFuse = true
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("NoTrainFuse leaked into Config.Fingerprint; cached artifacts would fork")
	}
}
