// Leaf-domain parallel execution for the relaxed mode (Config.Workers).
//
// An advance window resumes a batch of parked NICs whose drains are
// independent whenever their committed port state lives in disjoint leaf
// domains: a NIC whose every queued packet routes directly to an egress port
// on its own leaf can only read and write that leaf's ports.  Such a window
// partitions by leaf, and the partitions can execute on worker goroutines.
//
// Parallel execution must stay byte-identical to sequential execution — the
// simulated schedule is a model output, not an execution detail — so worker
// drains never touch globally-ordered state directly.  Each drain writes
// into a per-NIC relSink: deferred posts and port-wake arms (whose lane
// sequence numbers encode the global order), recycled packets (pool order),
// re-parks (advance-list order) and statistics.  After the workers join, the
// coordinator replays every sink in the sequential drain order — the parked-
// list order — so sequence allocation, pool contents and parked order come
// out exactly as a Workers=0 run produces them.  That identity is what lets
// Config.Workers stay out of Config.Fingerprint.
//
// A window is parallelized only when every runnable NIC is leaf-local (a
// cross-leaf walk would mutate two leaves' trunks plus a foreign egress
// port, racing that leaf's own drains) and at least two leaf domains hold
// runnable NICs.  Any other window falls back to the sequential loop in
// advance().  The partition test is O(runnable NICs): each NIC maintains a
// count of queued cross-leaf packets at enqueue/pick time.
package netsim

import (
	"sync"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// relOp is one globally-ordered side effect recorded by a worker-executed
// drain: a deferred post (delivery or completion, kind laneRelaxedDeliver /
// laneRelaxedComplete) or a port-wake arm (kind laneRelaxedPortWake, pt set).
type relOp struct {
	kind uint8
	at   sim.Time
	p    *packet
	pt   *SwitchPort
}

// relSink buffers one NIC drain's globally-ordered side effects.  A nil
// *relSink selects the direct (sequential) path throughout the drain code.
type relSink struct {
	active   bool // this slot's NIC was drained this window
	parked   bool // the drain re-parked its NIC
	ops      []relOp
	recycled []*packet
	packets  int64
	bytes    int64
	stalls   int64
	trains   trainStats
	// Worker-local copy of Network.serialization's two-entry memo: the memo
	// is pure (serialization time is a function of size alone), so a stale
	// worker copy can never produce a different value, only a recompute.
	serSize [2]int
	serVal  [2]sim.Duration
}

// serialization mirrors Network.serialization on the sink's private memo.
func (s *relSink) serialization(bw float64, size int) sim.Duration {
	if s.serSize[0] == size {
		return s.serVal[0]
	}
	if s.serSize[1] == size {
		s.serSize[0], s.serSize[1] = size, s.serSize[0]
		s.serVal[0], s.serVal[1] = s.serVal[1], s.serVal[0]
		return s.serVal[0]
	}
	v := Link{Bandwidth: bw}.Serialization(size)
	s.serSize[1], s.serVal[1] = s.serSize[0], s.serVal[0]
	s.serSize[0], s.serVal[0] = size, v
	return v
}

// reset clears the sink for reuse, dropping packet references so the pool
// stays the only owner.  The serialization memo survives: it is pure.
func (s *relSink) reset() {
	s.active, s.parked = false, false
	for i := range s.ops {
		s.ops[i] = relOp{}
	}
	s.ops = s.ops[:0]
	for i := range s.recycled {
		s.recycled[i] = nil
	}
	s.recycled = s.recycled[:0]
	s.packets, s.bytes, s.stalls = 0, 0, 0
	s.trains = trainStats{}
}

// crossLeaf reports whether walking p would touch ports outside its source
// NIC's leaf domain: every multi-hop route crosses the spine, and a direct
// egress route leaves the domain when the endpoints sit on different leaves
// (impossible in the built-in topologies, which route same-leaf pairs
// directly, but a custom Layout may do otherwise).
func (n *Network) crossLeaf(p *packet) bool {
	return len(p.route) != 1 || n.layout.LeafOf[p.dst] != n.layout.LeafOf[p.src]
}

// advanceParallel tries to run one advance window's drains on worker
// goroutines, one task stream per leaf domain.  It returns false — having
// taken no action — when the window does not partition: some runnable NIC
// holds cross-leaf traffic, or fewer than two leaf domains are runnable.
// On success the window's drains, posts, re-parks and statistics are
// complete and byte-identical to what the sequential loop would have done.
func (n *Network) advanceParallel(list []*nic, horizon sim.Time) bool {
	leaves := n.layout.Leaves
	if leaves < 2 {
		return false
	}
	// Pass 1: the window partitions only if every runnable NIC is leaf-local.
	if n.leafSeen == nil {
		n.leafSeen = make([]bool, leaves)
	}
	distinct := 0
	for _, nc := range list {
		if nc.freeAt >= horizon {
			continue
		}
		if nc.crossQueued > 0 {
			for _, leaf := range n.leafUsed {
				n.leafSeen[leaf] = false
			}
			n.leafUsed = n.leafUsed[:0]
			return false
		}
		if leaf := n.layout.LeafOf[nc.node]; !n.leafSeen[leaf] {
			n.leafSeen[leaf] = true
			n.leafUsed = append(n.leafUsed, leaf)
			distinct++
		}
	}
	used := n.leafUsed
	if distinct < 2 {
		for _, leaf := range used {
			n.leafSeen[leaf] = false
		}
		n.leafUsed = used[:0]
		return false
	}
	// Pass 2: bind each runnable NIC to a slot (its sequential drain rank)
	// and group the slots by leaf.
	if cap(n.sinks) < len(list) {
		n.sinks = make([]relSink, len(list))
	}
	sinks := n.sinks[:len(list)]
	if n.leafSlots == nil {
		n.leafSlots = make([][]int, leaves)
	}
	for i, nc := range list {
		if nc.freeAt >= horizon {
			continue
		}
		leaf := n.layout.LeafOf[nc.node]
		n.leafSlots[leaf] = append(n.leafSlots[leaf], i)
		sinks[i].active = true
	}
	// Drain: each goroutine owns whole leaf domains (round-robin over the
	// runnable leaves), so same-leaf drains stay sequential in slot order —
	// they genuinely depend on each other's port commits — while distinct
	// leaves proceed concurrently.
	nw := n.workers
	if nw > distinct {
		nw = distinct
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := w; g < len(used); g += nw {
				for _, si := range n.leafSlots[used[g]] {
					nc := list[si]
					nc.parked = false
					n.drainNic(nc, &sinks[si])
				}
			}
		}(w)
	}
	wg.Wait()
	// Merge: replay every sink in slot order — the exact order the
	// sequential loop would have interleaved these effects — so lane
	// sequence numbers, the packet pool and the parked list are
	// byte-identical to a Workers=0 run.
	for i, nc := range list {
		s := &sinks[i]
		if !s.active {
			n.parked = append(n.parked, nc)
			continue
		}
		for j := range s.ops {
			op := &s.ops[j]
			if op.kind == laneRelaxedPortWake {
				n.armPortWake(op.pt, op.at)
			} else {
				n.postRelaxed(op.at, op.kind, op.p, 0)
			}
		}
		for _, p := range s.recycled {
			n.putPacket(p)
		}
		if s.parked {
			n.parked = append(n.parked, nc)
		}
		n.packetsDelivered += s.packets
		n.bytesDelivered += s.bytes
		n.stallEvents += s.stalls
		n.trains.add(&s.trains)
		s.reset()
	}
	for _, leaf := range used {
		n.leafSlots[leaf] = n.leafSlots[leaf][:0]
		n.leafSeen[leaf] = false
	}
	n.leafUsed = used[:0]
	n.parallelWindows++
	return true
}
