package netsim

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/sim"
)

// workersRun drives a fat-tree workload that alternates leaf-local storms
// (partitionable by leaf, so Workers > 1 executes them on goroutines) with a
// cross-leaf phase (forcing the sequential fallback mid-run), and returns
// the full delivery trace plus the final statistics.
func workersRun(t *testing.T, workers int) (string, Stats) {
	t.Helper()
	k := sim.NewKernel(123)
	cfg := CabConfig()
	cfg.Nodes = 16
	cfg.Topology = FatTree{Leaves: 4, UplinksPerLeaf: 2}
	cfg.Workers = workers
	n := MustNew(k, cfg)
	var trace strings.Builder
	n.Observe(func(d Delivery) {
		fmt.Fprintf(&trace, "%d>%d sz=%d sent=%d arr=%d\n",
			d.Src, d.Dst, d.Size, int64(d.Sent), int64(d.Arrived))
	})
	localStorm := func(round int) {
		for leaf := 0; leaf < 4; leaf++ {
			for a := 0; a < 4; a++ {
				for b := 0; b < 4; b++ {
					if a == b {
						continue
					}
					src, dst := leaf*4+a, leaf*4+b
					size := 48*1024 + src*131 + round*977
					flow := Flow{Class: "local", ID: round*1000 + src*16 + dst}
					if err := n.SendMessage(src, dst, size, flow, nil); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	localStorm(0)
	k.CallAt(2*sim.Time(sim.Millisecond), func(any) {
		// Cross-leaf phase: every NIC now holds spine-bound traffic, so
		// every advance window in flight falls back to the sequential loop.
		for src := 0; src < 16; src++ {
			dst := (src + 5) % 16
			flow := Flow{Class: "cross", ID: 2000 + src}
			if err := n.SendMessage(src, dst, 96*1024, flow, nil); err != nil {
				t.Fatal(err)
			}
		}
	}, nil)
	k.CallAt(5*sim.Time(sim.Millisecond), func(any) { localStorm(1) }, nil)
	k.Run()
	return trace.String(), n.Stats()
}

// TestWorkersByteIdentical is the seed-stability gate for the parallel
// execution knob: the simulated schedule — every delivery's timing and
// order, and every counter — must be byte-identical for any Workers value,
// which is the invariant that keeps Workers out of Config.Fingerprint.
func TestWorkersByteIdentical(t *testing.T) {
	seqTrace, seqStats := workersRun(t, 0)
	if seqStats.ParallelWindows != 0 {
		t.Fatalf("sequential run reports %d parallel windows", seqStats.ParallelWindows)
	}
	for _, workers := range []int{2, 4} {
		parTrace, parStats := workersRun(t, workers)
		if parStats.ParallelWindows == 0 {
			t.Fatalf("workers=%d never took the parallel path; the test workload no longer partitions by leaf", workers)
		}
		if parTrace != seqTrace {
			t.Fatalf("workers=%d delivery trace diverges from sequential run:\nseq:\n%s\npar:\n%s",
				workers, head(seqTrace, 20), head(parTrace, 20))
		}
		parStats.ParallelWindows = 0 // execution telemetry, allowed to differ
		if fmt.Sprintf("%+v", parStats) != fmt.Sprintf("%+v", seqStats) {
			t.Fatalf("workers=%d stats diverge:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
		}
	}
}

// TestWorkersStarNeverParallel pins the degenerate case: a single-leaf
// topology has nothing to partition, so Workers is inert there.
func TestWorkersStarNeverParallel(t *testing.T) {
	k := sim.NewKernel(9)
	cfg := CabConfig()
	cfg.Nodes = 6
	cfg.Workers = 8
	n := MustNew(k, cfg)
	for i := 0; i < 6; i++ {
		if err := n.SendMessage(i, (i+1)%6, 64*1024, Flow{Class: "s", ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if w := n.Stats().ParallelWindows; w != 0 {
		t.Fatalf("star topology took %d parallel windows", w)
	}
}

// head returns the first n lines of s, for readable failure output.
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
