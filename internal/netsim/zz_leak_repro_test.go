package netsim

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/sim"
)

func faultRun(t *testing.T, strict bool) (int, Stats) {
	cfg := CabConfig()
	cfg.Nodes = 4
	cfg.StrictOrder = strict
	cfg.TailProb = 0
	cfg.FabricJitter = 0
	cfg.Topology = FatTree{Leaves: 2, UplinksPerLeaf: 1}
	cfg.Faults = &FaultPlan{Events: []FaultEvent{
		{At: 2 * sim.Microsecond, Trunk: "leaf0.up0", Kind: FaultTrunkDown},
		{At: 200 * sim.Microsecond, Trunk: "leaf0.up0", Kind: FaultTrunkUp},
	}}
	k := sim.NewKernel(1)
	n := MustNew(k, cfg)
	delivered := 0
	for i := 0; i < 4; i++ {
		if err := n.SendMessage(0, 2, 16*1024, Flow{Class: "bulk", ID: i}, func(sim.Time) { delivered++ }); err != nil {
			t.Fatal(err)
		}
	}
	k.RunUntil(sim.Time(50 * sim.Millisecond))
	for _, pt := range n.ports {
		if pt.buffered != 0 {
			t.Errorf("strict=%v port %s: buffered=%d after quiesce, want 0", strict, pt.Label(), pt.buffered)
		}
	}
	return delivered, n.Stats()
}

func TestPortDoneLossReleasesNextHopReserve(t *testing.T) {
	ds, ss := faultRun(t, true)
	dr, sr := faultRun(t, false)
	t.Logf("strict: delivered=%d retx=%d  relaxed: delivered=%d retx=%d", ds, ss.PacketsRetransmitted, dr, sr.PacketsRetransmitted)
}
