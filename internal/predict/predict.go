// Package predict evaluates the paper's slowdown predictors against measured
// co-run slowdowns: it assembles per-pair predictions (Fig. 8), aggregates
// per-model error statistics (Fig. 9) and reports the summary metrics the
// paper quotes (average error, fraction of predictions within 10%).
package predict

import (
	"fmt"
	"sort"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/stats"
)

// Pairing identifies an ordered application pair: Target's slowdown when it
// shares the switch with CoRunner.
type Pairing struct {
	Target   string
	CoRunner string
}

// String renders the pairing as "Target+CoRunner".
func (p Pairing) String() string { return p.Target + "+" + p.CoRunner }

// PairPrediction is the measured and predicted slowdown of one pairing.
type PairPrediction struct {
	Pairing
	// MeasuredPct is the observed degradation of Target while co-running
	// with CoRunner.
	MeasuredPct float64
	// PredictedPct maps predictor name to its predicted degradation.
	PredictedPct map[string]float64
}

// Error returns |measured − predicted| for the named predictor.
func (pp PairPrediction) Error(predictor string) float64 {
	d := pp.MeasuredPct - pp.PredictedPct[predictor]
	if d < 0 {
		d = -d
	}
	return d
}

// Evaluate predicts, with every given model, the slowdown of the application
// described by target when co-running with the component whose signature is
// coRunner, and pairs the predictions with the measured value.
func Evaluate(models []model.Predictor, target core.Profile, coRunner core.Signature,
	measuredPct float64) (PairPrediction, error) {
	pp := PairPrediction{
		Pairing:      Pairing{Target: target.App, CoRunner: coRunner.Component},
		MeasuredPct:  measuredPct,
		PredictedPct: make(map[string]float64, len(models)),
	}
	for _, m := range models {
		pred, err := m.Predict(target, coRunner)
		if err != nil {
			return PairPrediction{}, fmt.Errorf("predict: %s on %s: %w", m.Name(), pp.Pairing, err)
		}
		pp.PredictedPct[m.Name()] = pred
	}
	return pp, nil
}

// Study is a full pairwise evaluation: every ordered pair of applications,
// predicted by every model.
type Study struct {
	// Apps lists the applications in presentation order.
	Apps []string
	// Models lists the predictor names in presentation order.
	Models []string
	// Pairs holds one prediction record per ordered pair, grouped by target
	// application in Apps order (the layout of the paper's Fig. 8 x-axis).
	Pairs []PairPrediction
}

// NewStudy evaluates all ordered pairs of apps.  profiles and signatures are
// keyed by application name; measured maps each ordered pairing to its
// ground-truth degradation percentage.
func NewStudy(models []model.Predictor, apps []string, profiles map[string]core.Profile,
	signatures map[string]core.Signature, measured map[Pairing]float64) (Study, error) {
	if len(models) == 0 {
		return Study{}, fmt.Errorf("predict: no models given")
	}
	st := Study{Apps: append([]string(nil), apps...)}
	for _, m := range models {
		st.Models = append(st.Models, m.Name())
	}
	for _, target := range apps {
		prof, ok := profiles[target]
		if !ok {
			return Study{}, fmt.Errorf("predict: missing profile for %s", target)
		}
		for _, co := range apps {
			sig, ok := signatures[co]
			if !ok {
				return Study{}, fmt.Errorf("predict: missing signature for %s", co)
			}
			pair := Pairing{Target: target, CoRunner: co}
			meas, ok := measured[pair]
			if !ok {
				return Study{}, fmt.Errorf("predict: missing measured slowdown for %s", pair)
			}
			pp, err := Evaluate(models, prof, sig, meas)
			if err != nil {
				return Study{}, err
			}
			// Evaluate labels the co-runner with the signature's component
			// name; keep the canonical pairing naming.
			pp.Pairing = pair
			st.Pairs = append(st.Pairs, pp)
		}
	}
	return st, nil
}

// ErrorsByModel returns, per predictor, the absolute errors of every pairing
// in the study (the data behind Fig. 8).
func (s Study) ErrorsByModel() map[string][]float64 {
	out := make(map[string][]float64, len(s.Models))
	for _, m := range s.Models {
		errs := make([]float64, 0, len(s.Pairs))
		for _, pp := range s.Pairs {
			errs = append(errs, pp.Error(m))
		}
		out[m] = errs
	}
	return out
}

// SummaryByModel returns the quartile summary of each predictor's errors (the
// data behind Fig. 9).
func (s Study) SummaryByModel() map[string]stats.BoxPlot {
	out := make(map[string]stats.BoxPlot, len(s.Models))
	for m, errs := range s.ErrorsByModel() {
		out[m] = stats.BoxSummary(errs)
	}
	return out
}

// MeanAbsErrorByModel returns each predictor's mean absolute error over all
// pairings.
func (s Study) MeanAbsErrorByModel() map[string]float64 {
	out := make(map[string]float64, len(s.Models))
	for m, errs := range s.ErrorsByModel() {
		out[m] = stats.Mean(errs)
	}
	return out
}

// FractionWithin returns, per predictor, the fraction of pairings whose
// absolute error is at most tol percentage points (the paper highlights the
// queue model having >75% of predictions within 10 points).
func (s Study) FractionWithin(tol float64) map[string]float64 {
	out := make(map[string]float64, len(s.Models))
	for m, errs := range s.ErrorsByModel() {
		if len(errs) == 0 {
			out[m] = 0
			continue
		}
		n := 0
		for _, e := range errs {
			if e <= tol {
				n++
			}
		}
		out[m] = float64(n) / float64(len(errs))
	}
	return out
}

// BestModel returns the predictor with the lowest mean absolute error.
func (s Study) BestModel() string {
	type entry struct {
		name string
		mae  float64
	}
	var entries []entry
	for m, mae := range s.MeanAbsErrorByModel() {
		entries = append(entries, entry{m, mae})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mae != entries[j].mae {
			return entries[i].mae < entries[j].mae
		}
		return entries[i].name < entries[j].name
	})
	if len(entries) == 0 {
		return ""
	}
	return entries[0].name
}

// Pair returns the prediction record of one ordered pairing.
func (s Study) Pair(target, coRunner string) (PairPrediction, bool) {
	for _, pp := range s.Pairs {
		if pp.Target == target && pp.CoRunner == coRunner {
			return pp, true
		}
	}
	return PairPrediction{}, false
}

// MeasuredMatrix returns the Table I matrix of measured slowdowns in Apps
// order: rows are targets, columns are co-runners.
func (s Study) MeasuredMatrix() [][]float64 {
	idx := make(map[string]int, len(s.Apps))
	for i, a := range s.Apps {
		idx[a] = i
	}
	out := make([][]float64, len(s.Apps))
	for i := range out {
		out[i] = make([]float64, len(s.Apps))
	}
	for _, pp := range s.Pairs {
		out[idx[pp.Target]][idx[pp.CoRunner]] = pp.MeasuredPct
	}
	return out
}
