package predict

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/model"
	"github.com/hpcperf/switchprobe/internal/stats"
)

// fixture builds a small synthetic study over two applications: "Comm" (very
// network sensitive) and "Cpu" (insensitive).
func fixture(t *testing.T) (apps []string, profiles map[string]core.Profile,
	signatures map[string]core.Signature, measured map[Pairing]float64) {
	t.Helper()
	mkHist := func(mean float64) *stats.Histogram {
		h := stats.MustHistogram(0, 20, 40)
		for i := -2; i <= 2; i++ {
			h.Add(mean + float64(i)*0.2)
		}
		return h
	}
	mkPoint := func(mean, util, deg float64) core.ProfilePoint {
		return core.ProfilePoint{
			Injector:       inject.NewConfig(1, 1, 2.5e6),
			UtilizationPct: util,
			ImpactMean:     mean * 1e-6,
			ImpactStd:      0.4e-6,
			ImpactHist:     mkHist(mean),
			DegradationPct: deg,
		}
	}
	profiles = map[string]core.Profile{
		"Comm": {
			App:      "Comm",
			Baseline: core.Runtime{App: "Comm", TimePerIteration: 1000, Iterations: 10},
			Points:   []core.ProfilePoint{mkPoint(1.5, 30, 10), mkPoint(4, 60, 60), mkPoint(8, 90, 200)},
		},
		"Cpu": {
			App:      "Cpu",
			Baseline: core.Runtime{App: "Cpu", TimePerIteration: 2000, Iterations: 10},
			Points:   []core.ProfilePoint{mkPoint(1.5, 30, 1), mkPoint(4, 60, 2), mkPoint(8, 90, 4)},
		},
	}
	signatures = map[string]core.Signature{
		// Comm loads the switch like the medium injector configuration.
		"Comm": {Component: "Comm", Mean: 4e-6, StdDev: 0.4e-6, Hist: mkHist(4), UtilizationPct: 60},
		// Cpu barely loads the switch.
		"Cpu": {Component: "Cpu", Mean: 1.6e-6, StdDev: 0.3e-6, Hist: mkHist(1.6), UtilizationPct: 32},
	}
	measured = map[Pairing]float64{
		{Target: "Comm", CoRunner: "Comm"}: 65,
		{Target: "Comm", CoRunner: "Cpu"}:  12,
		{Target: "Cpu", CoRunner: "Comm"}:  2,
		{Target: "Cpu", CoRunner: "Cpu"}:   1,
	}
	return []string{"Comm", "Cpu"}, profiles, signatures, measured
}

func TestPairingString(t *testing.T) {
	p := Pairing{Target: "A", CoRunner: "B"}
	if p.String() != "A+B" {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestEvaluateSinglePair(t *testing.T) {
	_, profiles, signatures, _ := fixture(t)
	pp, err := Evaluate(model.All(), profiles["Comm"], signatures["Cpu"], 12)
	if err != nil {
		t.Fatal(err)
	}
	if pp.MeasuredPct != 12 {
		t.Fatalf("measured = %v", pp.MeasuredPct)
	}
	if len(pp.PredictedPct) != 4 {
		t.Fatalf("predictions = %v", pp.PredictedPct)
	}
	// The co-runner looks like the light injector configuration, so the
	// look-up models should predict ~10 and the queue model should
	// interpolate near 10-15.
	if pp.PredictedPct["AverageLT"] != 10 {
		t.Fatalf("AverageLT = %v", pp.PredictedPct["AverageLT"])
	}
	if e := pp.Error("AverageLT"); math.Abs(e-2) > 1e-9 {
		t.Fatalf("error = %v, want 2", e)
	}
}

func TestNewStudyAndAggregates(t *testing.T) {
	apps, profiles, signatures, measured := fixture(t)
	st, err := NewStudy(model.All(), apps, profiles, signatures, measured)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pairs) != 4 {
		t.Fatalf("pairs = %d, want 4", len(st.Pairs))
	}
	if len(st.Models) != 4 {
		t.Fatalf("models = %v", st.Models)
	}
	errs := st.ErrorsByModel()
	for m, es := range errs {
		if len(es) != 4 {
			t.Fatalf("model %s has %d errors", m, len(es))
		}
		for _, e := range es {
			if e < 0 {
				t.Fatalf("negative error for %s", m)
			}
		}
	}
	summary := st.SummaryByModel()
	for m, box := range summary {
		if box.N != 4 || box.Min > box.Median || box.Median > box.Max {
			t.Fatalf("bad box summary for %s: %+v", m, box)
		}
	}
	maes := st.MeanAbsErrorByModel()
	best := st.BestModel()
	for m, mae := range maes {
		if maes[best] > mae {
			t.Fatalf("BestModel %s is not best (%v > %v for %s)", best, maes[best], mae, m)
		}
	}
	fw := st.FractionWithin(1000)
	for m, f := range fw {
		if f != 1 {
			t.Fatalf("FractionWithin(1000) for %s = %v, want 1", m, f)
		}
	}
	fw = st.FractionWithin(0)
	for _, f := range fw {
		if f < 0 || f > 1 {
			t.Fatalf("fraction outside [0,1]: %v", f)
		}
	}
}

func TestStudyQueueModelAccurateOnSyntheticData(t *testing.T) {
	// With signatures that match profile points well, the queue model should
	// be within a few points of the measured values of the fixture.
	apps, profiles, signatures, measured := fixture(t)
	st, err := NewStudy(model.All(), apps, profiles, signatures, measured)
	if err != nil {
		t.Fatal(err)
	}
	maes := st.MeanAbsErrorByModel()
	if maes["Queue"] > 10 {
		t.Fatalf("queue model MAE = %v on synthetic data", maes["Queue"])
	}
}

func TestStudyPairLookupAndMatrix(t *testing.T) {
	apps, profiles, signatures, measured := fixture(t)
	st, err := NewStudy(model.All(), apps, profiles, signatures, measured)
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := st.Pair("Cpu", "Comm")
	if !ok || pp.MeasuredPct != 2 {
		t.Fatalf("Pair lookup failed: %+v %v", pp, ok)
	}
	if _, ok := st.Pair("Cpu", "Nope"); ok {
		t.Fatal("lookup of unknown pair succeeded")
	}
	matrix := st.MeasuredMatrix()
	if matrix[0][0] != 65 || matrix[0][1] != 12 || matrix[1][0] != 2 || matrix[1][1] != 1 {
		t.Fatalf("matrix = %v", matrix)
	}
}

func TestNewStudyErrors(t *testing.T) {
	apps, profiles, signatures, measured := fixture(t)
	if _, err := NewStudy(nil, apps, profiles, signatures, measured); err == nil {
		t.Fatal("expected error for no models")
	}
	if _, err := NewStudy(model.All(), apps, map[string]core.Profile{}, signatures, measured); err == nil ||
		!strings.Contains(err.Error(), "missing profile") {
		t.Fatalf("expected missing-profile error, got %v", err)
	}
	if _, err := NewStudy(model.All(), apps, profiles, map[string]core.Signature{}, measured); err == nil ||
		!strings.Contains(err.Error(), "missing signature") {
		t.Fatalf("expected missing-signature error, got %v", err)
	}
	if _, err := NewStudy(model.All(), apps, profiles, signatures, map[Pairing]float64{}); err == nil ||
		!strings.Contains(err.Error(), "missing measured") {
		t.Fatalf("expected missing-measured error, got %v", err)
	}
}

func TestErrorHelper(t *testing.T) {
	pp := PairPrediction{
		Pairing:      Pairing{Target: "A", CoRunner: "B"},
		MeasuredPct:  10,
		PredictedPct: map[string]float64{"M": 25},
	}
	if pp.Error("M") != 15 {
		t.Fatalf("Error = %v", pp.Error("M"))
	}
	if pp.Error("unknown") != 10 {
		t.Fatalf("Error for unknown model should compare against 0, got %v", pp.Error("unknown"))
	}
}
