// Package probe implements ImpactB, the paper's light-weight active probe
// (Fig. 2): pairs of processes on neighbouring nodes exchange 1 KB ping-pong
// messages through the switch, separated by long pauses so the probe itself
// does not perturb the measured application.  The observed one-way latencies
// (half the round-trip time) sample the switch capability left available by
// whatever else is running.
package probe

import (
	"fmt"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/stats"
)

// JobName is the job/flow class name under which ImpactB traffic appears.
const JobName = "impact"

// Config parameterizes the probe.
type Config struct {
	// MessageBytes is the ping-pong message size; 1 KB in the paper so each
	// message is a single switch packet.
	MessageBytes int
	// Pause separates consecutive ping-pong exchanges.  The paper uses
	// 100 ms over minutes-long runs; simulated measurement windows are tens
	// of milliseconds, so the default pause is proportionally shorter while
	// keeping the probe load far below 1% of link capacity.
	Pause sim.Duration
	// RanksPerSocket is the number of probe processes per socket (1 in the
	// paper, i.e. 2 per node).
	RanksPerSocket int
	// Tag is the message tag used by probe traffic.
	Tag int
}

// DefaultConfig returns the paper-faithful probe configuration adapted to
// simulated time windows.
func DefaultConfig() Config {
	return Config{
		MessageBytes:   1024,
		Pause:          200 * sim.Microsecond,
		RanksPerSocket: 1,
		Tag:            1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MessageBytes <= 0 {
		return fmt.Errorf("probe: non-positive message size %d", c.MessageBytes)
	}
	if c.Pause < 0 {
		return fmt.Errorf("probe: negative pause %v", c.Pause)
	}
	if c.RanksPerSocket <= 0 {
		return fmt.Errorf("probe: non-positive ranks per socket %d", c.RanksPerSocket)
	}
	return nil
}

// Collector accumulates probe latency samples (seconds).
type Collector struct {
	latencies []float64
	times     []sim.Time
}

// add records one one-way latency observed at time at.
func (c *Collector) add(at sim.Time, latency sim.Duration) {
	c.latencies = append(c.latencies, latency.Seconds())
	c.times = append(c.times, at)
}

// Count returns the number of samples collected.
func (c *Collector) Count() int { return len(c.latencies) }

// Times returns the virtual time at which each sample was taken, aligned with
// Latencies.
func (c *Collector) Times() []sim.Time {
	return append([]sim.Time(nil), c.times...)
}

// Latencies returns the collected one-way latencies in seconds.
func (c *Collector) Latencies() []float64 {
	return append([]float64(nil), c.latencies...)
}

// LatenciesMicros returns the collected one-way latencies in microseconds,
// the unit used in the paper's figures.
func (c *Collector) LatenciesMicros() []float64 {
	out := make([]float64, len(c.latencies))
	for i, l := range c.latencies {
		out[i] = l * 1e6
	}
	return out
}

// Summary returns descriptive statistics of the latencies (seconds).
func (c *Collector) Summary() stats.Summary { return stats.Summarize(c.latencies) }

// Histogram bins the latencies (in microseconds) over [loMicros, hiMicros).
func (c *Collector) Histogram(loMicros, hiMicros float64, bins int) (*stats.Histogram, error) {
	h, err := stats.NewHistogram(loMicros, hiMicros, bins)
	if err != nil {
		return nil, err
	}
	h.AddAll(c.LatenciesMicros())
	return h, nil
}

// Probe is a running ImpactB instance.
type Probe struct {
	cfg       Config
	job       *cluster.Job
	world     *mpisim.World
	collector *Collector
}

// Job returns the core allocation of the probe.
func (p *Probe) Job() *cluster.Job { return p.job }

// Collector returns the probe's sample collector.
func (p *Probe) Collector() *Collector { return p.collector }

// World returns the probe's message-passing world.
func (p *Probe) World() *mpisim.World { return p.world }

// Launch allocates ImpactB's cores (RanksPerSocket per socket on every node),
// builds its world and starts the ping-pong loops.  The loops run until the
// kernel's measurement window ends (the caller stops them via
// Kernel.Shutdown).
func Launch(m *cluster.Machine, mpiCfg mpisim.Config, cfg Config) (*Probe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := m.Config().Nodes()
	job, err := m.AllocateSpread(JobName, cfg.RanksPerSocket, nodes)
	if err != nil {
		return nil, fmt.Errorf("probe: allocating cores: %w", err)
	}
	world, err := mpisim.NewWorld(m, job, mpiCfg)
	if err != nil {
		m.Release(job)
		return nil, err
	}
	p := &Probe{cfg: cfg, job: job, world: world, collector: &Collector{}}
	tasksPerNode := cfg.RanksPerSocket * m.Config().SocketsPerNode
	world.LaunchProgram(func(r *mpisim.Rank, _ mpisim.Cont) {
		p.run(r, tasksPerNode, nodes)
	})
	return p, nil
}

// run is the per-rank ImpactB loop, a direct transcription of the paper's
// pseudo-code: even nodes initiate a ping-pong with the same core on the next
// node, odd nodes answer, and each exchange is followed by a pause.  The
// loops are continuation-passing Programs — they run on either rank runtime
// and never terminate (the caller stops them via Kernel.Shutdown), so the
// program's done continuation is never invoked.
func (p *Probe) run(r *mpisim.Rank, tasksPerNode, nodes int) {
	size := r.Size()
	myNode := r.Rank() / tasksPerNode
	isInitiator := myNode%2 == 0 && myNode != nodes-1
	isResponder := myNode%2 == 1
	switch {
	case isInitiator:
		partner := (r.Rank() + tasksPerNode) % size
		var start sim.Time
		var loop, measured mpisim.Cont
		loop = func() {
			start = r.Now()
			sreq := r.Isend(partner, p.cfg.Tag, p.cfg.MessageBytes)
			rreq := r.Irecv(partner, p.cfg.Tag)
			r.WaitAllThen(measured, sreq, rreq)
		}
		measured = func() {
			rtt := r.Now().Sub(start)
			p.collector.add(r.Now(), rtt/2)
			r.SleepThen(p.cfg.Pause, loop)
		}
		loop()
	case isResponder:
		// The responder answers each ping only after it arrives, so the
		// initiator's elapsed time covers two serialized one-way traversals
		// and elapsed/2 is the one-way packet latency.
		partner := (r.Rank() - tasksPerNode + size) % size
		var loop mpisim.Cont
		loop = func() {
			r.RecvThen(partner, p.cfg.Tag, func() {
				r.SendThen(partner, p.cfg.Tag, p.cfg.MessageBytes, loop)
			})
		}
		loop()
	default:
		// Unpaired node (odd node count): stay idle.
		var loop mpisim.Cont
		loop = func() { r.SleepThen(time100ms, loop) }
		loop()
	}
}

// time100ms is the idle-loop granularity of unpaired probe ranks.
const time100ms = 100 * sim.Millisecond
