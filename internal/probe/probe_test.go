package probe

import (
	"testing"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

func newMachine(t testing.TB, seed int64, nodes int) *cluster.Machine {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = nodes
	return cluster.MustNew(k, cfg)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MessageBytes: 0, Pause: 1, RanksPerSocket: 1},
		{MessageBytes: 1024, Pause: -1, RanksPerSocket: 1},
		{MessageBytes: 1024, Pause: 1, RanksPerSocket: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLaunchRejectsBadConfig(t *testing.T) {
	m := newMachine(t, 1, 4)
	if _, err := Launch(m, mpisim.DefaultConfig(), Config{}); err == nil {
		t.Fatal("expected error for invalid config")
	}
}

func TestIdleSwitchLatencies(t *testing.T) {
	m := newMachine(t, 1, 4)
	p, err := Launch(m, mpisim.DefaultConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Job().Size() != 8 {
		t.Fatalf("probe ranks = %d, want 8 (2 per node)", p.Job().Size())
	}
	m.Kernel().RunUntil(sim.Time(20 * sim.Millisecond))
	m.Kernel().Shutdown()
	c := p.Collector()
	if c.Count() < 50 {
		t.Fatalf("too few samples: %d", c.Count())
	}
	s := c.Summary()
	meanMicros := s.Mean * 1e6
	// The idle-switch one-way latency should be in the ~1-2 µs band the
	// paper reports for Cab.
	if meanMicros < 0.9 || meanMicros > 2.2 {
		t.Fatalf("idle mean latency %.3f µs outside expected band", meanMicros)
	}
	if s.Min <= 0 {
		t.Fatalf("non-positive min latency %v", s.Min)
	}
}

func TestLatenciesRiseUnderBackgroundTraffic(t *testing.T) {
	meanFor := func(withTraffic bool) float64 {
		m := newMachine(t, 3, 4)
		p, err := Launch(m, mpisim.DefaultConfig(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if withTraffic {
			// Background blasters on separate flows, all-to-all pattern.
			net := m.Network()
			for n := 0; n < 4; n++ {
				n := n
				m.Kernel().Spawn("bg", func(pr *sim.Proc) {
					for {
						for d := 0; d < 4; d++ {
							if d != n {
								_ = net.SendMessage(n, d, 64*1024, netsim.Flow{Class: "bg", ID: n}, nil)
							}
						}
						pr.Sleep(150 * sim.Microsecond)
					}
				})
			}
		}
		m.Kernel().RunUntil(sim.Time(20 * sim.Millisecond))
		m.Kernel().Shutdown()
		if p.Collector().Count() == 0 {
			t.Fatal("no probe samples")
		}
		return p.Collector().Summary().Mean
	}
	idle := meanFor(false)
	loaded := meanFor(true)
	if loaded <= idle*1.2 {
		t.Fatalf("probe mean did not rise under load: idle=%.3gs loaded=%.3gs", idle, loaded)
	}
}

func TestCollectorAccessors(t *testing.T) {
	c := &Collector{}
	c.add(10, 2*sim.Microsecond)
	c.add(20, 4*sim.Microsecond)
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	lats := c.Latencies()
	if len(lats) != 2 || lats[0] != 2e-6 {
		t.Fatalf("latencies = %v", lats)
	}
	micros := c.LatenciesMicros()
	if micros[1] != 4 {
		t.Fatalf("micros = %v", micros)
	}
	h, err := c.Histogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 {
		t.Fatalf("hist total = %d", h.Total())
	}
	if _, err := c.Histogram(10, 0, 5); err == nil {
		t.Fatal("expected histogram range error")
	}
	// Mutating the returned slice must not affect the collector.
	lats[0] = 99
	if c.Latencies()[0] == 99 {
		t.Fatal("Latencies returned internal slice")
	}
}

func TestOddNodeCountLeavesUnpairedNodeIdle(t *testing.T) {
	m := newMachine(t, 5, 5) // node 4 is even-indexed but last: unpaired
	p, err := Launch(m, mpisim.DefaultConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Kernel().RunUntil(sim.Time(10 * sim.Millisecond))
	m.Kernel().Shutdown()
	if p.Collector().Count() == 0 {
		t.Fatal("no samples with odd node count")
	}
}

func TestProbeLoadIsNegligible(t *testing.T) {
	m := newMachine(t, 7, 4)
	_, err := Launch(m, mpisim.DefaultConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	window := 20 * sim.Millisecond
	m.Kernel().RunUntil(sim.Time(window))
	m.Kernel().Shutdown()
	util := m.Network().MeanLinkUtilization(window)
	if util > 0.01 {
		t.Fatalf("probe alone uses %.2f%% of the links; it must stay below 1%%", util*100)
	}
}
