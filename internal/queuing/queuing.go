// Package queuing implements the M/G/1 queueing-theory model of a network
// switch used by the paper's queue-model predictor (Section IV-B).
//
// The switch routing logic is modelled as a single-server queue with general
// service times.  Its hardware parameters — the mean service rate µ and the
// service-time variance Var(S) — are calibrated once from probe packets sent
// through an idle switch.  While an application runs, the ImpactB benchmark
// measures W, the mean total time probe packets spend in the switch.  The
// Pollaczek–Khinchine formula relates W to the packet arrival rate λ; this
// package inverts the formula to recover λ and therefore the switch queue
// utilization ρ = λ/µ, the scalar metric the predictor uses.
package queuing

import (
	"errors"
	"fmt"
	"math"
)

// ServiceModel describes the switch hardware as calibrated from an idle
// switch: the service rate µ (packets per time unit) and the variance of
// individual packet service times.  Times may be expressed in any unit as
// long as all quantities use the same one; this package uses seconds.
type ServiceModel struct {
	// Mu is the mean service rate µ in packets/second.
	Mu float64
	// VarS is the variance of the packet service time S in seconds².
	VarS float64
}

// MeanService returns the mean service time µ⁻¹ in seconds.
func (m ServiceModel) MeanService() float64 { return 1 / m.Mu }

// Validate reports whether the model's parameters are usable.
func (m ServiceModel) Validate() error {
	if !(m.Mu > 0) || math.IsInf(m.Mu, 0) || math.IsNaN(m.Mu) {
		return fmt.Errorf("queuing: invalid service rate µ=%v", m.Mu)
	}
	if m.VarS < 0 || math.IsInf(m.VarS, 0) || math.IsNaN(m.VarS) {
		return fmt.Errorf("queuing: invalid service variance Var(S)=%v", m.VarS)
	}
	return nil
}

// CalibrateFromIdle builds a ServiceModel from latency samples (seconds)
// gathered by sending isolated probe packets through an idle switch.  The
// mean idle latency estimates the mean service time µ⁻¹ and the sample
// variance estimates Var(S).  This mirrors the paper's calibration: "µ is a
// hardware parameter that is measured by sending multiple individual packets
// into an idle switch".
func CalibrateFromIdle(idleLatencies []float64) (ServiceModel, error) {
	if len(idleLatencies) < 2 {
		return ServiceModel{}, errors.New("queuing: need at least two idle-switch samples")
	}
	mean := 0.0
	for _, x := range idleLatencies {
		if x <= 0 {
			return ServiceModel{}, fmt.Errorf("queuing: non-positive idle latency %v", x)
		}
		mean += x
	}
	mean /= float64(len(idleLatencies))
	varSum := 0.0
	for _, x := range idleLatencies {
		varSum += (x - mean) * (x - mean)
	}
	v := varSum / float64(len(idleLatencies))
	return ServiceModel{Mu: 1 / mean, VarS: v}, nil
}

// MG1 is an M/G/1 queue with a calibrated service model and an arrival
// rate λ.
type MG1 struct {
	Service ServiceModel
	// Lambda is the mean packet arrival rate λ in packets/second.
	Lambda float64
}

// Utilization returns ρ = λ/µ.
func (q MG1) Utilization() float64 { return q.Lambda / q.Service.Mu }

// MeanSojourn returns W, the mean total time a packet spends in the queue
// (waiting plus service), from the Pollaczek–Khinchine formula:
//
//	W = µ⁻¹ + λ (Var(S) + µ⁻²) / (2 (1 − ρ))
//
// For ρ >= 1 the queue is unstable and W diverges; +Inf is returned.
func (q MG1) MeanSojourn() float64 {
	rho := q.Utilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	mu := q.Service.Mu
	return 1/mu + q.Lambda*(q.Service.VarS+1/(mu*mu))/(2*(1-rho))
}

// MeanWait returns the mean time spent waiting before service begins.
func (q MG1) MeanWait() float64 {
	w := q.MeanSojourn()
	if math.IsInf(w, 1) {
		return w
	}
	return w - q.Service.MeanService()
}

// MeanQueueLength returns L, the mean number of packets in the system, by
// Little's law (L = λ·W).
func (q MG1) MeanQueueLength() float64 {
	w := q.MeanSojourn()
	if math.IsInf(w, 1) {
		return math.Inf(1)
	}
	return q.Lambda * w
}

// InferArrivalRate inverts the Pollaczek–Khinchine formula: given the
// calibrated service model and the observed mean sojourn time W of probe
// packets, it returns the arrival rate λ that would produce that W.
//
// Derivation (equivalent to the paper's Eq. (3), which suffers from OCR
// typos in the published text): with A = Var(S) + µ⁻² and D = W − µ⁻¹,
//
//	D = λ A / (2 (1 − λ/µ))   ⇒   λ = 2D / (A + 2D/µ)
//
// W below the idle service time µ⁻¹ (possible with measurement noise) is
// clamped to λ = 0.
func InferArrivalRate(svc ServiceModel, w float64) (float64, error) {
	if err := svc.Validate(); err != nil {
		return 0, err
	}
	if !(w > 0) || math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("queuing: invalid mean sojourn time W=%v", w)
	}
	d := w - svc.MeanService()
	if d <= 0 {
		return 0, nil
	}
	a := svc.VarS + 1/(svc.Mu*svc.Mu)
	lambda := 2 * d / (a + 2*d/svc.Mu)
	if lambda < 0 {
		lambda = 0
	}
	if lambda > svc.Mu {
		lambda = svc.Mu
	}
	return lambda, nil
}

// InferUtilization returns ρ = λ/µ where λ is recovered from the observed
// mean probe sojourn time W.  The result lies in [0, 1); it approaches 1 as
// W grows without bound.
func InferUtilization(svc ServiceModel, w float64) (float64, error) {
	lambda, err := InferArrivalRate(svc, w)
	if err != nil {
		return 0, err
	}
	rho := lambda / svc.Mu
	if rho < 0 {
		rho = 0
	}
	if rho > 1 {
		rho = 1
	}
	return rho, nil
}

// UtilizationPercent is InferUtilization scaled to a percentage, the unit the
// paper reports in Figures 6 and 7.
func UtilizationPercent(svc ServiceModel, w float64) (float64, error) {
	rho, err := InferUtilization(svc, w)
	if err != nil {
		return 0, err
	}
	return 100 * rho, nil
}

// SojournForUtilization is the forward mapping used in tests and ablations:
// given a target utilization ρ it returns the mean sojourn time W the P–K
// formula predicts.
func SojournForUtilization(svc ServiceModel, rho float64) (float64, error) {
	if err := svc.Validate(); err != nil {
		return 0, err
	}
	if rho < 0 || rho >= 1 {
		return 0, fmt.Errorf("queuing: utilization %v outside [0, 1)", rho)
	}
	q := MG1{Service: svc, Lambda: rho * svc.Mu}
	return q.MeanSojourn(), nil
}
