package queuing

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// A Cab-like service model: ~1.25 µs mean service, moderate variance.
func cabService() ServiceModel {
	mean := 1.25e-6
	return ServiceModel{Mu: 1 / mean, VarS: (0.4e-6) * (0.4e-6)}
}

func TestServiceModelValidate(t *testing.T) {
	if err := cabService().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ServiceModel{
		{Mu: 0, VarS: 0},
		{Mu: -1, VarS: 0},
		{Mu: math.NaN(), VarS: 0},
		{Mu: math.Inf(1), VarS: 0},
		{Mu: 1, VarS: -1},
		{Mu: 1, VarS: math.NaN()},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, m)
		}
	}
}

func TestMeanService(t *testing.T) {
	m := ServiceModel{Mu: 4, VarS: 0}
	if m.MeanService() != 0.25 {
		t.Fatalf("MeanService = %v", m.MeanService())
	}
}

func TestCalibrateFromIdle(t *testing.T) {
	samples := []float64{1.0e-6, 1.2e-6, 1.4e-6, 1.4e-6}
	m, err := CalibrateFromIdle(samples)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 1.25e-6
	if !almostEqual(m.MeanService(), wantMean, 1e-12) {
		t.Fatalf("mean service = %v, want %v", m.MeanService(), wantMean)
	}
	if m.VarS <= 0 {
		t.Fatalf("VarS = %v, want > 0", m.VarS)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateFromIdleErrors(t *testing.T) {
	if _, err := CalibrateFromIdle([]float64{1e-6}); err == nil {
		t.Fatal("expected error for single sample")
	}
	if _, err := CalibrateFromIdle([]float64{1e-6, -1e-6}); err == nil {
		t.Fatal("expected error for negative latency")
	}
	if _, err := CalibrateFromIdle(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestMG1ZeroLoad(t *testing.T) {
	q := MG1{Service: cabService(), Lambda: 0}
	if q.Utilization() != 0 {
		t.Fatalf("utilization = %v", q.Utilization())
	}
	if !almostEqual(q.MeanSojourn(), q.Service.MeanService(), 1e-15) {
		t.Fatalf("sojourn at zero load = %v, want %v", q.MeanSojourn(), q.Service.MeanService())
	}
	if q.MeanWait() != 0 {
		t.Fatalf("wait at zero load = %v", q.MeanWait())
	}
	if q.MeanQueueLength() != 0 {
		t.Fatalf("queue length at zero load = %v", q.MeanQueueLength())
	}
}

func TestMG1MonotoneInLoad(t *testing.T) {
	svc := cabService()
	prev := 0.0
	for i, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		q := MG1{Service: svc, Lambda: rho * svc.Mu}
		w := q.MeanSojourn()
		if w <= prev {
			t.Fatalf("sojourn not increasing at step %d: %v <= %v", i, w, prev)
		}
		prev = w
	}
}

func TestMG1Unstable(t *testing.T) {
	svc := cabService()
	q := MG1{Service: svc, Lambda: svc.Mu}
	if !math.IsInf(q.MeanSojourn(), 1) {
		t.Fatal("sojourn at rho=1 should be +Inf")
	}
	if !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.MeanQueueLength(), 1) {
		t.Fatal("wait/length at rho=1 should be +Inf")
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// With exponential service times Var(S) = 1/µ², P-K reduces to the M/M/1
	// formula W = 1/(µ-λ).
	mu := 1e6
	svc := ServiceModel{Mu: mu, VarS: 1 / (mu * mu)}
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		lambda := rho * mu
		q := MG1{Service: svc, Lambda: lambda}
		want := 1 / (mu - lambda)
		if !almostEqual(q.MeanSojourn(), want, want*1e-9) {
			t.Fatalf("rho=%v: W=%v want %v", rho, q.MeanSojourn(), want)
		}
	}
}

func TestInferArrivalRateRoundTrip(t *testing.T) {
	svc := cabService()
	for _, rho := range []float64{0.05, 0.26, 0.5, 0.75, 0.92} {
		w, err := SojournForUtilization(svc, rho)
		if err != nil {
			t.Fatal(err)
		}
		lambda, err := InferArrivalRate(svc, w)
		if err != nil {
			t.Fatal(err)
		}
		wantLambda := rho * svc.Mu
		if !almostEqual(lambda, wantLambda, wantLambda*1e-9+1e-9) {
			t.Fatalf("rho=%v: inferred lambda %v, want %v", rho, lambda, wantLambda)
		}
		got, err := InferUtilization(svc, w)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, rho, 1e-9) {
			t.Fatalf("round trip utilization %v, want %v", got, rho)
		}
	}
}

func TestInferUtilizationClampsBelowIdle(t *testing.T) {
	svc := cabService()
	// Observed latency below the idle service time: utilization clamps to 0.
	rho, err := InferUtilization(svc, svc.MeanService()*0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Fatalf("rho = %v, want 0", rho)
	}
}

func TestInferUtilizationApproachesOne(t *testing.T) {
	svc := cabService()
	rho, err := InferUtilization(svc, svc.MeanService()*1000)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.95 || rho > 1 {
		t.Fatalf("rho for huge W = %v, want close to 1", rho)
	}
}

func TestInferUtilizationMonotone(t *testing.T) {
	svc := cabService()
	prev := -1.0
	for w := svc.MeanService(); w < svc.MeanService()*50; w *= 1.5 {
		rho, err := InferUtilization(svc, w)
		if err != nil {
			t.Fatal(err)
		}
		if rho < prev {
			t.Fatalf("utilization not monotone in W at W=%v", w)
		}
		prev = rho
	}
}

func TestInferErrors(t *testing.T) {
	svc := cabService()
	if _, err := InferArrivalRate(ServiceModel{}, 1e-6); err == nil {
		t.Fatal("expected error for invalid service model")
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := InferArrivalRate(svc, w); err == nil {
			t.Fatalf("expected error for W=%v", w)
		}
	}
	if _, err := SojournForUtilization(svc, 1.0); err == nil {
		t.Fatal("expected error for rho=1")
	}
	if _, err := SojournForUtilization(svc, -0.1); err == nil {
		t.Fatal("expected error for negative rho")
	}
	if _, err := SojournForUtilization(ServiceModel{}, 0.5); err == nil {
		t.Fatal("expected error for invalid model")
	}
	if _, err := UtilizationPercent(svc, -1); err == nil {
		t.Fatal("expected error propagated by UtilizationPercent")
	}
}

func TestUtilizationPercent(t *testing.T) {
	svc := cabService()
	w, err := SojournForUtilization(svc, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	pct, err := UtilizationPercent(svc, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pct, 42, 1e-6) {
		t.Fatalf("percent = %v, want 42", pct)
	}
}

func TestLittleLaw(t *testing.T) {
	svc := cabService()
	q := MG1{Service: svc, Lambda: 0.6 * svc.Mu}
	l := q.MeanQueueLength()
	if !almostEqual(l, q.Lambda*q.MeanSojourn(), 1e-12) {
		t.Fatalf("Little's law violated: L=%v lambda*W=%v", l, q.Lambda*q.MeanSojourn())
	}
}

// Property: inversion is the exact inverse of the forward P-K formula for any
// valid service model and utilization.
func TestInversionRoundTripProperty(t *testing.T) {
	prop := func(muScaled, varScaled, rhoScaled uint16) bool {
		mu := 1e5 + float64(muScaled)*10 // 1e5 .. ~7.5e5 packets/s
		meanS := 1 / mu
		varS := float64(varScaled) / 65535 * (meanS * meanS) * 4 // 0..4 (mean)^2
		rho := float64(rhoScaled) / 65536 * 0.98                 // 0 .. 0.98
		svc := ServiceModel{Mu: mu, VarS: varS}
		w, err := SojournForUtilization(svc, rho)
		if err != nil {
			return false
		}
		got, err := InferUtilization(svc, w)
		if err != nil {
			return false
		}
		return almostEqual(got, rho, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: inferred utilization is always within [0, 1] and monotone in W.
func TestInferredUtilizationBoundsProperty(t *testing.T) {
	svc := cabService()
	prop := func(w1Scaled, w2Scaled uint16) bool {
		base := svc.MeanService()
		w1 := base * (0.5 + float64(w1Scaled)/1000)
		w2 := base * (0.5 + float64(w2Scaled)/1000)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		r1, err1 := InferUtilization(svc, w1)
		r2, err2 := InferUtilization(svc, w2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1 >= 0 && r2 <= 1 && r1 <= r2+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInferUtilization(b *testing.B) {
	svc := cabService()
	w := svc.MeanService() * 3
	for i := 0; i < b.N; i++ {
		if _, err := InferUtilization(svc, w); err != nil {
			b.Fatal(err)
		}
	}
}
