package report

import (
	"fmt"
	"math"
	"strings"

	"github.com/hpcperf/switchprobe/internal/stats"
)

// BarChart renders a horizontal ASCII bar chart: one row per label, bars
// scaled so the largest value spans width characters.  It is used by the CLI
// to give a quick visual impression of per-application sensitivities and
// per-model errors next to the exact tables.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	if len(labels) == 0 || len(labels) != len(values) {
		return ""
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		bar := 0
		if maxVal > 0 && v > 0 {
			bar = int(math.Round(v / maxVal * float64(width)))
			if bar == 0 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "%-*s  %s %.1f\n", maxLabel, labels[i], strings.Repeat("#", bar), v)
	}
	return b.String()
}

// BoxChart renders one-line box-and-whisker summaries (min, Q1, median, Q3,
// max) on a shared scale, one row per label.
//
//	AverageLT  |--[=|====]------------------|  med=1.6
func BoxChart(title string, labels []string, boxes []stats.BoxPlot, width int) string {
	if len(labels) == 0 || len(labels) != len(boxes) {
		return ""
	}
	if width < 20 {
		width = 20
	}
	maxVal := 0.0
	maxLabel := 0
	for i, bx := range boxes {
		if bx.Max > maxVal {
			maxVal = bx.Max
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	pos := func(v float64) int {
		p := int(math.Round(v / maxVal * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s (scale 0 .. %.1f)\n", title, maxVal)
	}
	for i, bx := range boxes {
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		lo, q1, med, q3, hi := pos(bx.Min), pos(bx.Q1), pos(bx.Median), pos(bx.Q3), pos(bx.Max)
		for j := lo; j <= hi && j < width; j++ {
			row[j] = '-'
		}
		for j := q1; j <= q3 && j < width; j++ {
			row[j] = '='
		}
		row[lo] = '|'
		row[hi] = '|'
		row[med] = 'M'
		fmt.Fprintf(&b, "%-*s  [%s]  med=%.1f\n", maxLabel, labels[i], string(row), bx.Median)
	}
	return b.String()
}
