package report

import (
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/stats"
)

func TestBarChart(t *testing.T) {
	out := BarChart("sensitivity", []string{"FFTW", "MCB"}, []float64{200, 10}, 20)
	if !strings.Contains(out, "sensitivity") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	fftw, mcb := lines[1], lines[2]
	if strings.Count(fftw, "#") <= strings.Count(mcb, "#") {
		t.Fatalf("larger value should have a longer bar:\n%s", out)
	}
	if !strings.Contains(fftw, "200.0") || !strings.Contains(mcb, "10.0") {
		t.Fatalf("values not printed:\n%s", out)
	}
	// Non-zero small values still get a visible bar of at least one mark.
	small := BarChart("", []string{"a", "b"}, []float64{1000, 1}, 30)
	if !strings.Contains(strings.Split(strings.TrimSpace(small), "\n")[1], "#") {
		t.Fatalf("small value lost its bar:\n%s", small)
	}
}

func TestBarChartDegenerateInputs(t *testing.T) {
	if BarChart("t", nil, nil, 20) != "" {
		t.Fatal("empty input should render nothing")
	}
	if BarChart("t", []string{"a"}, []float64{1, 2}, 20) != "" {
		t.Fatal("mismatched input should render nothing")
	}
	// All-zero values must not divide by zero.
	out := BarChart("t", []string{"a"}, []float64{0}, 20)
	if !strings.Contains(out, "0.0") {
		t.Fatalf("zero value chart wrong:\n%s", out)
	}
	// Tiny width is clamped.
	if BarChart("t", []string{"a"}, []float64{5}, 1) == "" {
		t.Fatal("clamped width should still render")
	}
}

func TestBoxChart(t *testing.T) {
	boxes := []stats.BoxPlot{
		{Min: 0, Q1: 1, Median: 2, Q3: 5, Max: 50, N: 36},
		{Min: 0, Q1: 0.5, Median: 1, Q3: 3, Max: 20, N: 36},
	}
	out := BoxChart("errors", []string{"AverageLT", "Queue"}, boxes, 40)
	if !strings.Contains(out, "errors") || !strings.Contains(out, "Queue") {
		t.Fatalf("box chart missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "M") || !strings.Contains(l, "=") {
			t.Fatalf("row missing median/box markers: %q", l)
		}
	}
	if !strings.Contains(lines[0], "50.0") {
		t.Fatalf("scale annotation missing: %q", lines[0])
	}
}

func TestBoxChartDegenerateInputs(t *testing.T) {
	if BoxChart("t", nil, nil, 40) != "" {
		t.Fatal("empty input should render nothing")
	}
	if BoxChart("t", []string{"a"}, nil, 40) != "" {
		t.Fatal("mismatched input should render nothing")
	}
	out := BoxChart("t", []string{"a"}, []stats.BoxPlot{{}}, 5)
	if out == "" {
		t.Fatal("degenerate box should still render")
	}
}
