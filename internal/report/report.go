// Package report renders experiment results as aligned text tables and CSV,
// the formats used by the command-line tools and the benchmark harness to
// regenerate the paper's tables and figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// Table is a rectangular result with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render returns the table as aligned, human-readable text.
func (t Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes the table (headers plus rows) as CSV.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Fig3Table renders the probe latency distributions (percent of packets per
// latency bin, one column per workload).
func Fig3Table(r experiments.Fig3Result) Table {
	t := Table{
		Title:   "Figure 3: distribution of ImpactB packet latencies (% of packets per bin)",
		Headers: append([]string{"latency_us"}, r.Columns...),
	}
	for i, center := range r.BinCentersMicros {
		row := []string{f2(center)}
		for _, col := range r.Columns {
			row = append(row, f1(r.FrequencyPct[col][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"mean_us"}
	for _, col := range r.Columns {
		mean = append(mean, f2(r.MeanMicros[col]))
	}
	t.Rows = append(t.Rows, mean)
	return t
}

// Fig6Table renders the switch utilization of every CompressionB
// configuration.
func Fig6Table(r experiments.Fig6Result) Table {
	t := Table{
		Title:   "Figure 6: switch queue utilization of CompressionB configurations",
		Headers: []string{"messages", "sleep_cycles", "partners", "utilization_pct", "mean_latency_us"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Config.Messages),
			fmt.Sprintf("%.1e", p.Config.SleepCycles),
			fmt.Sprintf("%d", p.Config.Partners),
			f1(p.UtilizationPct),
			f2(p.MeanLatencyMicros),
		})
	}
	return t
}

// Fig7Table renders the degradation-vs-utilization curves (one row per
// application and configuration) plus the per-application linear fits.
func Fig7Table(r experiments.Fig7Result) Table {
	t := Table{
		Title:   "Figure 7: % performance degradation vs % switch utilization",
		Headers: []string{"app", "config", "utilization_pct", "degradation_pct"},
	}
	for _, app := range r.Apps {
		for _, p := range r.Curves[app] {
			t.Rows = append(t.Rows, []string{
				app, p.Config.Label(), f1(p.UtilizationPct), f1(p.DegradationPct),
			})
		}
		if fit, ok := r.Fits[app]; ok {
			t.Rows = append(t.Rows, []string{
				app, "linear-fit",
				fmt.Sprintf("slope=%.2f", fit.Slope),
				fmt.Sprintf("intercept=%.1f r2=%.2f", fit.Intercept, fit.R2),
			})
		}
	}
	return t
}

// Table1Table renders the measured co-run slowdown matrix.
func Table1Table(r experiments.Table1Result) Table {
	t := Table{
		Title:   "Table I: measured % slowdown of each application (rows) co-running with each application (columns)",
		Headers: append([]string{"app"}, r.Apps...),
	}
	for i, app := range r.Apps {
		row := []string{app}
		for j := range r.Apps {
			row = append(row, f1(r.SlowdownPct[i][j]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8Table renders measured vs predicted slowdowns and the absolute error of
// every model for every ordered pair.
func Fig8Table(r experiments.Fig8Result) Table {
	st := r.Study
	headers := []string{"target", "co_runner", "measured_pct"}
	for _, m := range st.Models {
		headers = append(headers, m+"_pred", m+"_err")
	}
	t := Table{
		Title:   "Figure 8: measured vs predicted % slowdowns for all application pairs",
		Headers: headers,
	}
	for _, pp := range st.Pairs {
		row := []string{pp.Target, pp.CoRunner, f1(pp.MeasuredPct)}
		for _, m := range st.Models {
			row = append(row, f1(pp.PredictedPct[m]), f1(pp.Error(m)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig9Table renders the per-model error summary (quartiles, mean absolute
// error and the fraction of predictions within 10 points).
func Fig9Table(r experiments.Fig9Result) Table {
	t := Table{
		Title:   "Figure 9: prediction error summary per model (|measured - predicted| in percentage points)",
		Headers: []string{"model", "min", "q1", "median", "q3", "max", "mean_abs_err", "within_10pts"},
	}
	for _, m := range r.Models {
		box := r.Boxes[m]
		t.Rows = append(t.Rows, []string{
			m, f1(box.Min), f1(box.Q1), f1(box.Median), f1(box.Q3), f1(box.Max),
			f1(r.MeanAbsErr[m]),
			fmt.Sprintf("%.0f%%", 100*r.FractionWithin10[m]),
		})
	}
	t.Rows = append(t.Rows, []string{"best", r.BestModel, "", "", "", "", "", ""})
	return t
}

// XSwitchTable renders the cross-switch campaign: measured and predicted
// co-run degradation per oversubscription ratio and placement policy.
func XSwitchTable(r experiments.XSwitchResult) Table {
	headers := []string{"uplinks", "oversub", "placement", "baseline_ms", "measured_pct"}
	for _, m := range r.Models {
		headers = append(headers, m+"_pred", m+"_err")
	}
	t := Table{
		Title: fmt.Sprintf("Cross-switch campaign: %s co-running with %s on a %d-leaf fat-tree",
			r.Target, r.CoRunner, r.Leaves),
		Headers: headers,
	}
	for _, p := range r.Points {
		row := []string{
			fmt.Sprintf("%d", p.Uplinks),
			f2(p.Oversubscription),
			string(p.Placement),
			fmt.Sprintf("%.3f", p.BaselineIterMs),
			f1(p.MeasuredPct),
		}
		for _, m := range r.Models {
			row = append(row, f1(p.PredictedPct[m]), f1(p.AbsErrPct[m]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SchedTable renders the scheduler campaign: one row per fabric scenario and
// placement policy with the schedule's headline metrics.
func SchedTable(r experiments.SchedResult) Table {
	t := Table{
		Title: fmt.Sprintf("Scheduler campaign: %d streams x %d jobs over {%s} placed by each policy",
			r.Spec.Streams, r.Spec.Jobs, strings.Join(r.Spec.Apps, ", ")),
		Headers: []string{
			"scenario", "oversub", "policy", "jobs", "makespan_ms", "mean_stretch",
			"p95_stretch", "mean_wait_ms", "colocations", "deferrals", "mean_util_pct",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scenario,
			f2(row.Oversubscription),
			row.Policy,
			fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%.3f", row.MakespanSec*1e3),
			fmt.Sprintf("%.3f", row.MeanStretch),
			fmt.Sprintf("%.3f", row.P95Stretch),
			fmt.Sprintf("%.3f", row.MeanWaitSec*1e3),
			fmt.Sprintf("%d", row.Colocations),
			fmt.Sprintf("%d", row.Deferrals),
			f1(row.MeanUtilizationPct),
		})
	}
	return t
}

// FaultTable renders the resilience campaign: per scenario x fault case x
// policy, the packet-level slowdown and fault counters next to the policy's
// job-level stretch and requeue counts.
func FaultTable(r experiments.FaultsResult) Table {
	t := Table{
		Title: fmt.Sprintf("Resilience campaign: {%s} on %d streams x %d jobs per policy",
			strings.Join(r.Cases, ", "), r.Spec.Sched.Streams, r.Spec.Sched.Jobs),
		Headers: []string{
			"scenario", "oversub", "case", "policy", "slowdown_pct", "trunks_failed",
			"retransmits", "reroutes", "jobs", "mean_stretch", "p95_stretch",
			"requeues", "deferrals",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scenario,
			f2(row.Oversubscription),
			row.Case,
			row.Policy,
			f1(row.SlowdownPct),
			fmt.Sprintf("%d", row.TrunksFailed),
			fmt.Sprintf("%d", row.Retransmits),
			fmt.Sprintf("%d", row.Reroutes),
			fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%.3f", row.MeanStretch),
			fmt.Sprintf("%.3f", row.P95Stretch),
			fmt.Sprintf("%d", row.Requeues),
			fmt.Sprintf("%d", row.Deferrals),
		})
	}
	return t
}

// Summary renders a one-paragraph comparison against the paper's headline
// claims, used by the CLI after fig9.
func Summary(r experiments.Fig9Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Best model: %s (mean abs error %.1f points; %.0f%% of predictions within 10 points).\n",
		r.BestModel, r.MeanAbsErr[r.BestModel], 100*r.FractionWithin10[r.BestModel])
	fmt.Fprintf(&b, "Paper reference: the queue model achieves <10%% average error with >75%% of predictions within 10 points,\n")
	fmt.Fprintf(&b, "and outperforms the three look-up-table models (AverageStDevLT ≥ PDFLT > AverageLT).\n")
	return b.String()
}

// AppNames returns the canonical application order used by every table.
func AppNames() []string { return workload.Names() }
