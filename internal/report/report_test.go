package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/experiments"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/predict"
	"github.com/hpcperf/switchprobe/internal/stats"
)

func TestTableRenderAndCSV(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Headers: []string{"a", "bee", "c"},
		Rows: [][]string{
			{"1", "2", "3"},
			{"10", "200", "3000"},
		},
	}
	out := tbl.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bee") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "a,bee,c\n") || !strings.Contains(csv, "10,200,3000") {
		t.Fatalf("csv output wrong:\n%s", csv)
	}
}

func syntheticFig3() experiments.Fig3Result {
	cols := append([]string{experiments.IdleLabel}, AppNames()...)
	res := experiments.Fig3Result{
		BinCentersMicros: []float64{1, 3, 5},
		Columns:          cols,
		FrequencyPct:     map[string][]float64{},
		MeanMicros:       map[string]float64{},
	}
	for i, c := range cols {
		res.FrequencyPct[c] = []float64{70 - float64(i), 20, 10 + float64(i)}
		res.MeanMicros[c] = 1.2 + 0.3*float64(i)
	}
	return res
}

func TestFig3Table(t *testing.T) {
	tbl := Fig3Table(syntheticFig3())
	out := tbl.Render()
	if !strings.Contains(out, "FFTW") || !strings.Contains(out, "No App") {
		t.Fatalf("fig3 table missing columns:\n%s", out)
	}
	if len(tbl.Rows) != 4 { // 3 bins + mean row
		t.Fatalf("fig3 rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[3][0] != "mean_us" {
		t.Fatalf("last row should be the mean row, got %v", tbl.Rows[3])
	}
}

func TestFig6Table(t *testing.T) {
	res := experiments.Fig6Result{Points: []experiments.Fig6Point{
		{Config: inject.NewConfig(1, 1, 2.5e7), UtilizationPct: 26.3, MeanLatencyMicros: 1.5},
		{Config: inject.NewConfig(17, 10, 2.5e4), UtilizationPct: 91.8, MeanLatencyMicros: 8.2},
	}}
	tbl := Fig6Table(res)
	out := tbl.Render()
	if !strings.Contains(out, "91.8") || !strings.Contains(out, "2.5e+04") {
		t.Fatalf("fig6 table wrong:\n%s", out)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig6 rows = %d", len(tbl.Rows))
	}
}

func TestFig7Table(t *testing.T) {
	res := experiments.Fig7Result{
		Apps: []string{"FFTW"},
		Curves: map[string][]experiments.Fig7Point{
			"FFTW": {
				{Config: inject.NewConfig(1, 1, 2.5e7), UtilizationPct: 30, DegradationPct: 50},
				{Config: inject.NewConfig(17, 10, 2.5e4), UtilizationPct: 90, DegradationPct: 250},
			},
		},
		Fits: map[string]stats.LinearFit{"FFTW": {Slope: 3.3, Intercept: -50, R2: 0.99}},
	}
	tbl := Fig7Table(res)
	out := tbl.Render()
	if !strings.Contains(out, "linear-fit") || !strings.Contains(out, "slope=3.30") {
		t.Fatalf("fig7 table missing fit:\n%s", out)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("fig7 rows = %d", len(tbl.Rows))
	}
}

func TestTable1Table(t *testing.T) {
	res := experiments.Table1Result{
		Apps:        []string{"FFTW", "MCB"},
		SlowdownPct: [][]float64{{45, 3}, {3, 4}},
	}
	tbl := Table1Table(res)
	out := tbl.Render()
	if !strings.Contains(out, "45.0") {
		t.Fatalf("table1 missing data:\n%s", out)
	}
	if len(tbl.Rows) != 2 || len(tbl.Headers) != 3 {
		t.Fatalf("table1 shape wrong: %dx%d", len(tbl.Rows), len(tbl.Headers))
	}
}

func syntheticStudy(t *testing.T) predict.Study {
	t.Helper()
	return predict.Study{
		Apps:   []string{"A", "B"},
		Models: []string{"AverageLT", "Queue"},
		Pairs: []predict.PairPrediction{
			{Pairing: predict.Pairing{Target: "A", CoRunner: "B"}, MeasuredPct: 10,
				PredictedPct: map[string]float64{"AverageLT": 30, "Queue": 12}},
			{Pairing: predict.Pairing{Target: "B", CoRunner: "A"}, MeasuredPct: 5,
				PredictedPct: map[string]float64{"AverageLT": 6, "Queue": 4}},
		},
	}
}

func TestFig8Table(t *testing.T) {
	tbl := Fig8Table(experiments.Fig8Result{Study: syntheticStudy(t)})
	out := tbl.Render()
	if !strings.Contains(out, "AverageLT_pred") || !strings.Contains(out, "Queue_err") {
		t.Fatalf("fig8 headers wrong:\n%s", out)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig8 rows = %d", len(tbl.Rows))
	}
}

func TestFig9TableAndSummary(t *testing.T) {
	st := syntheticStudy(t)
	res := experiments.Fig9Result{
		Models:           st.Models,
		Boxes:            st.SummaryByModel(),
		MeanAbsErr:       st.MeanAbsErrorByModel(),
		FractionWithin10: st.FractionWithin(10),
		BestModel:        st.BestModel(),
	}
	tbl := Fig9Table(res)
	out := tbl.Render()
	if !strings.Contains(out, "within_10pts") || !strings.Contains(out, "Queue") {
		t.Fatalf("fig9 table wrong:\n%s", out)
	}
	if res.BestModel != "Queue" {
		t.Fatalf("best model = %s, want Queue", res.BestModel)
	}
	sum := Summary(res)
	if !strings.Contains(sum, "Queue") || !strings.Contains(sum, "Paper reference") {
		t.Fatalf("summary wrong:\n%s", sum)
	}
}

func TestFig3CSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3Table(syntheticFig3()).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 3 bins + mean
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "latency_us,No App,") {
		t.Fatalf("csv header = %s", lines[0])
	}
}

func TestAppNames(t *testing.T) {
	names := AppNames()
	if len(names) != 6 || names[0] != "FFTW" {
		t.Fatalf("app names = %v", names)
	}
	pp := core.Profile{App: names[0]}
	if pp.App != "FFTW" {
		t.Fatal("unexpected app ordering")
	}
}

func TestSchedTable(t *testing.T) {
	r := experiments.SchedResult{
		Spec:      experiments.SchedSpec{Jobs: 4, Streams: 2, Apps: []string{"FFTW", "MCB"}},
		Scenarios: []string{"star"},
		Policies:  []string{"pack", "predictor"},
		Rows: []experiments.SchedPolicyRow{
			{
				Scenario: "star", Oversubscription: 1, Policy: "pack",
				Jobs: 8, MakespanSec: 0.25, MeanStretch: 1.25, P95Stretch: 2.5,
				MeanWaitSec: 0.01, Colocations: 3, Deferrals: 0, MeanUtilizationPct: 70,
			},
			{
				Scenario: "star", Oversubscription: 1, Policy: "predictor",
				Jobs: 8, MakespanSec: 0.2, MeanStretch: 1.125, P95Stretch: 2,
				MeanWaitSec: 0.005, Colocations: 2, Deferrals: 1, MeanUtilizationPct: 65,
			},
		},
	}
	tbl := SchedTable(r)
	text := tbl.Render()
	if !strings.Contains(text, "2 streams x 4 jobs") || !strings.Contains(text, "FFTW, MCB") {
		t.Fatalf("title wrong:\n%s", text)
	}
	if len(tbl.Rows) != 2 || len(tbl.Rows[0]) != len(tbl.Headers) {
		t.Fatalf("table shape %dx%d vs %d headers", len(tbl.Rows), len(tbl.Rows[0]), len(tbl.Headers))
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "star,1.00,pack,8,250.000,1.250,2.500,10.000,3,0,70.0") {
		t.Fatalf("csv row = %s", lines[1])
	}
}
