package sched

import (
	"math"
	"reflect"
	"testing"

	"github.com/hpcperf/switchprobe/internal/core"
)

// healthTimeline builds a Health function from per-leaf (time, health)
// breakpoints: the health of a leaf at t is the last breakpoint at or before
// t (HealthOK before the first).
func healthTimeline(perLeaf map[int][]struct {
	At float64
	H  LeafHealth
}) func(leaf int, now float64) LeafHealth {
	return func(leaf int, now float64) LeafHealth {
		h := HealthOK
		for _, bp := range perLeaf[leaf] {
			if bp.At <= now {
				h = bp.H
			}
		}
		return h
	}
}

func TestHealthConstantOKMatchesNilHealth(t *testing.T) {
	spec := ArrivalSpec{
		Jobs: 12, Seed: 3, Mix: []string{"A"},
		MeanInterarrival: 0.2, MinIterations: 5, MaxIterations: 15,
	}
	jobs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Machine: testMachine(4, 2),
		Jobs:    jobs,
		Policy:  FirstFit{},
		Oracle:  flatOracle(0.1, 100, "A"),
	}
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withHealth := base
	withHealth.Health = func(int, float64) LeafHealth { return HealthOK }
	got, err := Run(withHealth)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("an always-OK health feed changed the schedule")
	}
}

func TestHealthDegradedRateSlowsJob(t *testing.T) {
	cfg := Config{
		Machine: testMachine(4, 2),
		Jobs:    []JobSpec{{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0}},
		Policy:  FirstFit{},
		Oracle:  flatOracle(0.1, 0, "A"),
		Health: func(leaf int, _ float64) LeafHealth {
			if leaf == 0 {
				return HealthDegraded
			}
			return HealthOK
		},
		DegradedRate: 0.5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// FirstFit lands on the degraded leaf 0; half rate doubles the 1.0s solo.
	if res.Jobs[0].Leaf != 0 {
		t.Fatalf("job on leaf %d, want 0", res.Jobs[0].Leaf)
	}
	if math.Abs(res.MakespanSec-2.0) > 1e-9 {
		t.Fatalf("makespan %v, want 2.0 (half rate on degraded leaf)", res.MakespanSec)
	}
}

// TestHealthDeadLeafRequeues pins the eviction contract: a job stranded on a
// leaf that dies mid-run is requeued with full demand restored, its slots are
// released exactly once, and it restarts on a surviving leaf.
func TestHealthDeadLeafRequeues(t *testing.T) {
	cfg := Config{
		Machine: testMachine(4, 2),
		Jobs:    []JobSpec{{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0}},
		Policy:  FirstFit{},
		Oracle:  flatOracle(0.1, 0, "A"),
		Health: healthTimeline(map[int][]struct {
			At float64
			H  LeafHealth
		}{
			0: {{At: 0.4, H: HealthDead}},
		}),
		HealthEvents: []float64{0.4},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeues != 1 {
		t.Fatalf("Requeues = %d, want 1", res.Requeues)
	}
	j := res.Jobs[0]
	if j.Leaf != 1 {
		t.Fatalf("job finished on leaf %d, want the surviving leaf 1", j.Leaf)
	}
	// Demand restored: 0.4s of progress is lost, the 1.0s solo restarts at
	// the eviction instant.
	if math.Abs(j.End-1.4) > 1e-9 {
		t.Fatalf("job ended at %v, want 1.4 (restart at 0.4 + 1.0 solo)", j.End)
	}
}

// TestHealthRequeueAccountingNoDoubleBook drains a full leaf mid-campaign and
// then revives it: every evicted job re-places without the allocator ever
// seeing a double-booked node, and the revived leaf is reusable.  The
// cluster allocation machinery errors on any node allocated twice or released
// twice, so an error-free run is the accounting contract.
func TestHealthRequeueAccountingNoDoubleBook(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		{ID: 1, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		// Arrives while leaf 0 is dead and leaf 1 holds the evicted pair.
		{ID: 2, Workload: "A", Slots: 1, Iterations: 5, Arrival: 0.6},
	}
	cfg := Config{
		Machine: testMachine(8, 2), // 4 nodes per leaf, 2 slots of 2 nodes
		Jobs:    jobs,
		Policy:  FirstFit{},
		Oracle:  flatOracle(0.1, 0, "A"),
		Health: healthTimeline(map[int][]struct {
			At float64
			H  LeafHealth
		}{
			0: {{At: 0.5, H: HealthDead}, {At: 2.0, H: HealthOK}},
		}),
		HealthEvents: []float64{0.5, 2.0},
		NodesPerSlot: 2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("%d outcomes, want 3", len(res.Jobs))
	}
	// FirstFit packs both initial jobs onto leaf 0 (2 slots); both evict.
	if res.Requeues != 2 {
		t.Fatalf("Requeues = %d, want 2", res.Requeues)
	}
	for _, j := range res.Jobs[:2] {
		if j.Leaf != 1 {
			t.Fatalf("evicted job %d finished on leaf %d, want 1", j.ID, j.Leaf)
		}
		if j.End < 1.5-1e-9 {
			t.Fatalf("evicted job %d ended at %v, before a full restart could finish", j.ID, j.End)
		}
	}
	// Job 2 arrived while leaf 1 was full and leaf 0 dead: it must wait for
	// capacity (a completion on leaf 1 or leaf 0's revival), never stack
	// onto booked slots.
	if res.Jobs[2].Start < 1.5-1e-9 && res.Jobs[2].Leaf == 1 {
		t.Fatalf("job 2 started at %v on full leaf 1", res.Jobs[2].Start)
	}
}

// TestHealthRevivalUnsticksQueue pins the deadlock exception: with every
// leaf dead and nothing running, the scheduler must wait for a future health
// event instead of declaring the queue stuck.
func TestHealthRevivalUnsticksQueue(t *testing.T) {
	cfg := Config{
		Machine: testMachine(4, 2),
		Jobs:    []JobSpec{{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0}},
		Policy:  FirstFit{},
		Oracle:  flatOracle(0.1, 0, "A"),
		Health: healthTimeline(map[int][]struct {
			At float64
			H  LeafHealth
		}{
			0: {{At: 0, H: HealthDead}, {At: 1.0, H: HealthOK}},
			1: {{At: 0, H: HealthDead}, {At: 1.0, H: HealthOK}},
		}),
		HealthEvents: []float64{1.0},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].Start-1.0) > 1e-9 {
		t.Fatalf("job started at %v, want 1.0 (first revival)", res.Jobs[0].Start)
	}
}

func TestPredictorGuidedPenalizesDegradedLeaf(t *testing.T) {
	pred := fakePredictor{table: map[string]float64{}}
	oracle := flatOracle(0.1, 50, "Target", "Light")
	oracle.Sigs = map[string]core.Signature{
		"Target": {Component: "Target"}, "Light": {Component: "Light"},
	}
	oracle.Profiles = map[string]core.Profile{
		"Target": {App: "Target"}, "Light": {App: "Light"},
	}
	p := NewPredictorGuided(pred, oracle)
	cands := []Candidate{
		{Leaf: 0, FreeSlots: 2, UsedSlots: 1, Residents: []string{"Light"}, Health: HealthDegraded},
		{Leaf: 1, FreeSlots: 2, UsedSlots: 0, Health: HealthOK},
	}
	choice, _, err := p.Choose(JobSpec{Workload: "Target", Slots: 1}, cands)
	if err != nil {
		t.Fatal(err)
	}
	// The zero-prediction table makes both placements contention-free; the
	// usual consolidation tie-break would pick the loaded leaf 0, but the
	// degraded penalty must push it past the margin.
	if choice != 1 {
		t.Fatalf("chose candidate %d, want the healthy leaf (1)", choice)
	}
	// Without the health signal the loaded leaf wins, pinning that the flip
	// above really is the penalty.
	cands[0].Health = HealthOK
	choice, _, err = p.Choose(JobSpec{Workload: "Target", Slots: 1}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if choice != 0 {
		t.Fatalf("healthy consolidation chose %d, want the loaded leaf (0)", choice)
	}
}

func TestPredictorGuidedUnknownHealthFallsBackToPack(t *testing.T) {
	pred := fakePredictor{table: map[string]float64{
		PairKey("Target", "Heavy"): 500, // would normally repel the target
	}}
	oracle := flatOracle(0.1, 50, "Target", "Heavy")
	oracle.Sigs = map[string]core.Signature{
		"Target": {Component: "Target"}, "Heavy": {Component: "Heavy"},
	}
	oracle.Profiles = map[string]core.Profile{
		"Target": {App: "Target"}, "Heavy": {App: "Heavy"},
	}
	p := NewPredictorGuided(pred, oracle)
	cands := []Candidate{
		{Leaf: 0, FreeSlots: 2, UsedSlots: 1, Residents: []string{"Heavy"}, Health: HealthUnknown},
		{Leaf: 1, FreeSlots: 2, UsedSlots: 0, Health: HealthUnknown},
	}
	choice, _, err := p.Choose(JobSpec{Workload: "Target", Slots: 1}, cands)
	if err != nil {
		t.Fatal(err)
	}
	// With no health information the policy must not trust predictions over
	// an unknown fabric: it consolidates like Pack (most-loaded leaf).
	if choice != 0 {
		t.Fatalf("chose candidate %d, want Pack's most-loaded leaf (0)", choice)
	}
}
