package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/engine"
	"github.com/hpcperf/switchprobe/internal/inject"
	"github.com/hpcperf/switchprobe/internal/netsim"
	"github.com/hpcperf/switchprobe/internal/workload"
)

// Oracle resolves everything the scheduler model needs to know about
// workloads: calibrated solo durations, measured pairwise co-run slowdowns
// for the two contention-domain classes, and the signatures/profiles the
// predictor-guided policy scores with.  Implementations must be
// deterministic: the same query always returns the same value within a run.
type Oracle interface {
	// SoloIterationSec is the workload's solo per-iteration time (seconds)
	// alone in its slot — the calibrated service-demand unit.
	SoloIterationSec(app string) (float64, error)
	// SharedSlowdownPct is the percentage slowdown target suffers while
	// co-resident with corunner in the same contention domain (leaf).
	SharedSlowdownPct(target, corunner string) (float64, error)
	// DisjointSlowdownPct is the slowdown across disjoint domains
	// (different leaves).
	DisjointSlowdownPct(target, corunner string) (float64, error)
	// UtilizationPct is the workload's solo switch utilization, used for the
	// campaign's utilization timeline.
	UtilizationPct(app string) (float64, error)
	// Signature is the workload's impact signature (co-runner view).
	Signature(app string) (core.Signature, error)
	// Profile is the workload's compression profile (target view).
	Profile(app string) (core.Profile, error)
	// Contended reports whether co-resident jobs share a fabric bottleneck.
	// The paper's predictors model contention on a shared switch queue;
	// slot-exclusive jobs on a non-blocking fabric have dedicated ports and
	// no such queue, so predictions only engage when this is true
	// (oversubscribed trunks between the contention domains).
	Contended() bool
}

// EngineOracle serves every query from engine-backed core RunSpecs, so all
// coefficients are content-addressed artifacts: a warm campaign resolves
// them without executing a single simulation.
//
// The mapping from scheduler state to measured specs:
//
//   - solo duration       → baseline, SlotA, pack placement;
//   - shared domain       → placed pair under spread placement (both jobs
//     interleaved across every leaf, contending on the leaf switches and
//     the spine trunks — the contended co-residency the paper measures);
//   - disjoint domains    → placed pair under pack placement (jobs on
//     disjoint leaves; near zero unless the jobs themselves span leaves);
//   - signature / profile → SlotB impact and SlotA profile under spread
//     placement, mirroring the xswitch campaign's predictor inputs.
//
// Each placed pair is measured once per unordered workload pair: the
// first-named job takes SlotA, the second SlotB, and each direction's
// degradation is judged against the matching slot baseline.
//
// Resolved coefficients are memoized: the scheduler's event loop asks for
// the same O(apps²) values on every rate refresh, and the memo answers them
// with a map lookup instead of re-hashing RunSpecs through the engine.
// All methods are safe for concurrent use (the campaign prefetch fans out
// across workers).
type EngineOracle struct {
	eng  *engine.Engine
	opts core.Options
	grid []inject.Config

	mu       sync.Mutex
	iterSec  map[string]float64
	pairPct  map[string]float64
	sigs     map[string]core.Signature
	profiles map[string]core.Profile

	lookups atomic.Int64
	misses  atomic.Int64
}

// NewEngineOracle builds an oracle over the engine for the scenario options
// (whose topology and seed select the fabric every coefficient is measured
// on).  grid is the injector grid predictor profiles are built over.
func NewEngineOracle(eng *engine.Engine, opts core.Options, grid []inject.Config) *EngineOracle {
	return &EngineOracle{
		eng:      eng,
		opts:     opts,
		grid:     grid,
		iterSec:  make(map[string]float64),
		pairPct:  make(map[string]float64),
		sigs:     make(map[string]core.Signature),
		profiles: make(map[string]core.Profile),
	}
}

// Stats returns how many coefficient queries the oracle served and how many
// had to resolve through the engine (every other query was answered by the
// memo).
func (eo *EngineOracle) Stats() (lookups, misses int64) {
	return eo.lookups.Load(), eo.misses.Load()
}

// memoized serves one coefficient through the memo: a hit is a map lookup,
// a miss resolves through the engine outside the lock (concurrent identical
// misses are deduplicated by the engine's singleflight) and is stored for
// every later query.
func memoized[V any](eo *EngineOracle, memo map[string]V, key string, resolve func() (V, error)) (V, error) {
	eo.lookups.Add(1)
	eo.mu.Lock()
	if v, ok := memo[key]; ok {
		eo.mu.Unlock()
		return v, nil
	}
	eo.mu.Unlock()
	eo.misses.Add(1)
	v, err := resolve()
	if err != nil {
		return v, err
	}
	eo.mu.Lock()
	memo[key] = v
	eo.mu.Unlock()
	return v, nil
}

// placed returns the options with the given placement policy.
func (eo *EngineOracle) placed(p cluster.PlacementPolicy) core.Options {
	o := eo.opts
	o.Placement = p
	return o
}

func (eo *EngineOracle) app(name string) (workload.App, error) {
	return workload.ByName(name, eo.opts.Scale)
}

// SoloIterationSec implements Oracle.
func (eo *EngineOracle) SoloIterationSec(app string) (float64, error) {
	return memoized(eo, eo.iterSec, app, func() (float64, error) {
		a, err := eo.app(app)
		if err != nil {
			return 0, err
		}
		rt, err := eo.eng.Baseline(eo.placed(cluster.PlacePack), a, core.SlotA)
		if err != nil {
			return 0, err
		}
		return rt.TimePerIteration.Seconds(), nil
	})
}

// SharedSlowdownPct implements Oracle.
func (eo *EngineOracle) SharedSlowdownPct(target, corunner string) (float64, error) {
	return eo.pairSlowdown(target, corunner, cluster.PlaceSpread)
}

// DisjointSlowdownPct implements Oracle.
func (eo *EngineOracle) DisjointSlowdownPct(target, corunner string) (float64, error) {
	return eo.pairSlowdown(target, corunner, cluster.PlacePack)
}

// pairSlowdown resolves the target's degradation next to corunner under the
// given placement from one unordered placed-pair measurement plus the
// target's slot baseline.
func (eo *EngineOracle) pairSlowdown(target, corunner string, policy cluster.PlacementPolicy) (float64, error) {
	key := string(policy) + "|" + target + "|" + corunner
	return memoized(eo, eo.pairPct, key, func() (float64, error) {
		return eo.resolvePairSlowdown(target, corunner, policy)
	})
}

// resolvePairSlowdown is the uncached spec resolution behind pairSlowdown.
func (eo *EngineOracle) resolvePairSlowdown(target, corunner string, policy cluster.PlacementPolicy) (float64, error) {
	first, second := target, corunner
	if second < first {
		first, second = second, first
	}
	a, err := eo.app(first)
	if err != nil {
		return 0, err
	}
	b, err := eo.app(second)
	if err != nil {
		return 0, err
	}
	o := eo.placed(policy)
	ra, rb, err := eo.eng.Pair(o, a, b, true)
	if err != nil {
		return 0, err
	}
	observed, slot := ra, core.SlotA
	if target != first {
		observed, slot = rb, core.SlotB
	}
	targetApp, err := eo.app(target)
	if err != nil {
		return 0, err
	}
	base, err := eo.eng.Baseline(o, targetApp, slot)
	if err != nil {
		return 0, err
	}
	return core.DegradationPercent(base, observed), nil
}

// Contended implements Oracle: a fat-tree with oversubscribed trunks is the
// only fabric where slot-exclusive jobs share a bottleneck.
func (eo *EngineOracle) Contended() bool {
	ft, ok := eo.opts.Machine.Net.Topology.(netsim.FatTree)
	return ok && ft.Oversubscription(eo.opts.Machine.Nodes()) > 1
}

// UtilizationPct implements Oracle.
func (eo *EngineOracle) UtilizationPct(app string) (float64, error) {
	sig, err := eo.Signature(app)
	if err != nil {
		return 0, err
	}
	return sig.UtilizationPct, nil
}

// Signature implements Oracle.
func (eo *EngineOracle) Signature(app string) (core.Signature, error) {
	return memoized(eo, eo.sigs, app, func() (core.Signature, error) {
		a, err := eo.app(app)
		if err != nil {
			return core.Signature{}, err
		}
		return eo.eng.AppImpact(eo.placed(cluster.PlaceSpread), a, core.SlotB)
	})
}

// Profile implements Oracle.
func (eo *EngineOracle) Profile(app string) (core.Profile, error) {
	return memoized(eo, eo.profiles, app, func() (core.Profile, error) {
		a, err := eo.app(app)
		if err != nil {
			return core.Profile{}, err
		}
		return eo.eng.BuildProfile(eo.placed(cluster.PlaceSpread), a, eo.grid, core.SlotA)
	})
}

// StaticOracle is a fixed-coefficient oracle for tests and what-if
// exploration: every query is a map lookup.
type StaticOracle struct {
	// IterSec maps workload → solo per-iteration seconds.
	IterSec map[string]float64
	// Shared and Disjoint map "target|corunner" → slowdown percent (see
	// PairKey).  Missing disjoint entries default to zero.
	Shared, Disjoint map[string]float64
	// Util maps workload → solo switch utilization percent.
	Util map[string]float64
	// Sigs and Profiles back the predictor-guided policy; optional for
	// blind policies.
	Sigs     map[string]core.Signature
	Profiles map[string]core.Profile
	// ContendedFabric marks the fabric as having a shared bottleneck
	// between contention domains (see Oracle.Contended).
	ContendedFabric bool
}

// PairKey is the Shared/Disjoint map key for a target/co-runner pair.
func PairKey(target, corunner string) string { return target + "|" + corunner }

// SoloIterationSec implements Oracle.
func (s *StaticOracle) SoloIterationSec(app string) (float64, error) {
	v, ok := s.IterSec[app]
	if !ok {
		return 0, fmt.Errorf("sched: no solo iteration time for %q", app)
	}
	return v, nil
}

// SharedSlowdownPct implements Oracle.
func (s *StaticOracle) SharedSlowdownPct(target, corunner string) (float64, error) {
	v, ok := s.Shared[PairKey(target, corunner)]
	if !ok {
		return 0, fmt.Errorf("sched: no shared slowdown for %q next to %q", target, corunner)
	}
	return v, nil
}

// DisjointSlowdownPct implements Oracle.
func (s *StaticOracle) DisjointSlowdownPct(target, corunner string) (float64, error) {
	return s.Disjoint[PairKey(target, corunner)], nil
}

// UtilizationPct implements Oracle.
func (s *StaticOracle) UtilizationPct(app string) (float64, error) { return s.Util[app], nil }

// Contended implements Oracle.
func (s *StaticOracle) Contended() bool { return s.ContendedFabric }

// Signature implements Oracle.
func (s *StaticOracle) Signature(app string) (core.Signature, error) {
	sig, ok := s.Sigs[app]
	if !ok {
		return core.Signature{}, fmt.Errorf("sched: no signature for %q", app)
	}
	return sig, nil
}

// Profile implements Oracle.
func (s *StaticOracle) Profile(app string) (core.Profile, error) {
	p, ok := s.Profiles[app]
	if !ok {
		return core.Profile{}, fmt.Errorf("sched: no profile for %q", app)
	}
	return p, nil
}
