package sched

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"github.com/hpcperf/switchprobe/internal/model"
)

// LeafHealth classifies a leaf's fabric health as seen by the scheduler.
// The zero value is HealthOK so that schedulers without a health feed
// (Config.Health == nil) behave exactly as before health awareness existed.
type LeafHealth int

const (
	// HealthOK: the leaf's uplinks are fully operational.
	HealthOK LeafHealth = iota
	// HealthUnknown: the health feed cannot classify the leaf.  Policies
	// should degrade gracefully (PredictorGuided falls back to pure
	// consolidation when every candidate is unknown).
	HealthUnknown
	// HealthDegraded: the leaf is reachable but its uplinks run slow; jobs
	// placed there progress at Config.DegradedRate of their healthy rate.
	HealthDegraded
	// HealthDead: the leaf is partitioned from the fabric.  The scheduler
	// never offers dead leaves as candidates and requeues their resident
	// jobs with full demand restored.
	HealthDead
)

// String implements fmt.Stringer.
func (h LeafHealth) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthUnknown:
		return "unknown"
	case HealthDegraded:
		return "degraded"
	case HealthDead:
		return "dead"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// Candidate is one leaf that can host an arriving job.
type Candidate struct {
	// Leaf is the leaf switch index.
	Leaf int
	// FreeSlots and UsedSlots describe the leaf's occupancy.
	FreeSlots, UsedSlots int
	// Residents are the workloads already running on the leaf — the jobs an
	// arriving job would share a contention domain with.
	Residents []string
	// Health is the leaf's health at offer time.  Dead leaves are filtered
	// out before policies ever see them; degraded and unknown leaves are
	// offered and left to the policy's judgment.
	Health LeafHealth
}

// Policy decides which candidate leaf an arriving job is placed on.
// Candidates are always presented in ascending leaf order and are never
// empty; the returned index selects one of them, and the score is recorded
// in the placement-decision log (0 for score-free policies).
//
// A policy may return Defer instead of an index to leave the job at the
// head of the queue: the scheduler re-offers it after the next completion
// or arrival.  Deferring trades queueing delay against a placement the
// policy predicts to be worse than waiting; it is only meaningful while
// other jobs are running — deferring an idle cluster would deadlock, so
// the scheduler then overrides the deferral and places the job on the
// first candidate leaf.
type Policy interface {
	Name() string
	Choose(job JobSpec, cands []Candidate) (choice int, score float64, err error)
}

// Defer is the Choose return value that postpones the placement.
const Defer = -1

// Policy names, in canonical campaign order.
const (
	PolicyFirstFit  = "firstfit"
	PolicyPack      = "pack"
	PolicySpread    = "spread"
	PolicyRandom    = "random"
	PolicyPredictor = "predictor"
)

// PolicyNames returns every policy name in canonical order.
func PolicyNames() []string {
	return []string{PolicyFirstFit, PolicyPack, PolicySpread, PolicyRandom, PolicyPredictor}
}

// NewPolicy builds the named policy.  Random derives its private stream from
// seed; predictor scores candidates with pred over the oracle's signatures
// and profiles.  Both arguments are ignored by the blind policies.
func NewPolicy(name string, seed int64, pred model.Predictor, oracle Oracle) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case PolicyFirstFit:
		return FirstFit{}, nil
	case PolicyPack:
		return Pack{}, nil
	case PolicySpread:
		return Spread{}, nil
	case PolicyRandom:
		return NewRandom(seed), nil
	case PolicyPredictor:
		if pred == nil {
			return nil, fmt.Errorf("sched: predictor policy needs a model.Predictor")
		}
		if oracle == nil {
			return nil, fmt.Errorf("sched: predictor policy needs an oracle")
		}
		return NewPredictorGuided(pred, oracle), nil
	default:
		sorted := PolicyNames()
		sort.Strings(sorted)
		return nil, fmt.Errorf("sched: unknown policy %q (valid: %s)", name, strings.Join(sorted, ", "))
	}
}

// FirstFit places every job on the lowest-indexed leaf with capacity.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return PolicyFirstFit }

// Choose implements Policy.
func (FirstFit) Choose(JobSpec, []Candidate) (int, float64, error) { return 0, 0, nil }

// Pack consolidates: it places every job on the most-loaded leaf that still
// has capacity (ties go to the lowest index), keeping the cluster's
// footprint small at the price of co-locating jobs even when empty leaves
// exist.
type Pack struct{}

// Name implements Policy.
func (Pack) Name() string { return PolicyPack }

// Choose implements Policy.
func (Pack) Choose(_ JobSpec, cands []Candidate) (int, float64, error) {
	best := 0
	for i, c := range cands {
		if c.UsedSlots > cands[best].UsedSlots {
			best = i
		}
	}
	return best, 0, nil
}

// Spread balances: it places every job on the least-loaded leaf (ties go to
// the lowest index), avoiding co-location as long as free leaves exist but
// pairing blindly once they run out.
type Spread struct{}

// Name implements Policy.
func (Spread) Name() string { return PolicySpread }

// Choose implements Policy.
func (Spread) Choose(_ JobSpec, cands []Candidate) (int, float64, error) {
	best := 0
	for i, c := range cands {
		if c.UsedSlots < cands[best].UsedSlots {
			best = i
		}
	}
	return best, 0, nil
}

// Random places every job on a uniformly random feasible leaf, drawn from a
// private deterministic stream.
type Random struct {
	rng *rand.Rand
}

// NewRandom builds the random policy with its own seed-derived stream.
func NewRandom(seed int64) *Random {
	h := fnv.New64a()
	fmt.Fprintf(h, "sched/random/%d", seed)
	return &Random{rng: rand.New(rand.NewSource(int64(h.Sum64())))}
}

// Name implements Policy.
func (*Random) Name() string { return PolicyRandom }

// Choose implements Policy.
func (r *Random) Choose(_ JobSpec, cands []Candidate) (int, float64, error) {
	return r.rng.Intn(len(cands)), 0, nil
}

// PredictorGuided is the paper's loop closed: before committing a placement
// it scores every candidate leaf by the predicted aggregate slowdown the
// placement would create — the arriving job's predicted degradation next to
// each resident's impact signature, plus each resident's predicted
// degradation next to the arriving job's signature — and places the job on
// the cheapest leaf.
//
// Among candidates predicted equally harmless (within ScoreMarginPct of the
// minimum) it prefers the most-loaded leaf.  This consolidation rule is what
// makes the prediction actionable over time: a compute-heavy job absorbs a
// network-heavy resident's spare slot instead of hiding next to another
// quiet job, so the slots left open for future network-heavy arrivals are
// the compatible ones.  A purely greedy minimum would scatter the quiet jobs
// and leave only catastrophic pairings feasible later.
//
// On fabrics without a shared bottleneck between contention domains
// (Oracle.Contended is false — the single switch, or a non-blocking
// fat-tree) the shared-queue premise behind the paper's predictors does not
// hold for slot-exclusive jobs, so the policy predicts co-residency as free
// and reduces to pure consolidation.
type PredictorGuided struct {
	pred   model.Predictor
	oracle Oracle
	// ScoreMarginPct is the aggregate predicted-slowdown band (percentage
	// points) within which candidates count as equivalent and load breaks
	// the tie.
	ScoreMarginPct float64
	// DeferThresholdPct is the minimum candidate score above which the
	// policy defers the placement instead of committing it: if every
	// feasible leaf predicts a heavily contended pairing, waiting for a
	// completion is cheaper than running at a fraction of solo speed.
	// Zero disables deferral.
	DeferThresholdPct float64
	// DegradedPenaltyPct is added to a candidate's score when its leaf is
	// degraded, so healthy leaves win unless they predict contention worse
	// than the degraded fabric itself.  Zero disables the penalty.
	DegradedPenaltyPct float64
}

// DefaultScoreMarginPct is the default equivalence band for candidate
// scores: well below any contentious pairing (tens to hundreds of points)
// and above prediction noise on quiet pairs.
const DefaultScoreMarginPct = 10.0

// DefaultDeferThresholdPct is the default deferral threshold: contended
// pairings on an oversubscribed fabric predict aggregate slowdowns of
// 100–350 points, quiet ones 0–10, so 50 cleanly separates "ride along"
// from "wait for a better slot".
const DefaultDeferThresholdPct = 50.0

// DefaultDegradedPenaltyPct is the default degraded-leaf penalty.  A
// half-speed leaf costs a resident job 100 points of slowdown, so 75 makes a
// degraded leaf lose to any healthy candidate short of a catastrophic
// pairing while still beating the worst contended ones.
const DefaultDegradedPenaltyPct = 75.0

// NewPredictorGuided builds the predictor-in-the-loop policy.
func NewPredictorGuided(pred model.Predictor, oracle Oracle) *PredictorGuided {
	return &PredictorGuided{
		pred:               pred,
		oracle:             oracle,
		ScoreMarginPct:     DefaultScoreMarginPct,
		DeferThresholdPct:  DefaultDeferThresholdPct,
		DegradedPenaltyPct: DefaultDegradedPenaltyPct,
	}
}

// Name implements Policy.
func (*PredictorGuided) Name() string { return PolicyPredictor }

// Predictor returns the model the policy scores with.
func (p *PredictorGuided) Predictor() model.Predictor { return p.pred }

// Choose implements Policy.
func (p *PredictorGuided) Choose(job JobSpec, cands []Candidate) (int, float64, error) {
	allUnknown := true
	for _, c := range cands {
		if c.Health != HealthUnknown {
			allUnknown = false
			break
		}
	}
	if allUnknown {
		// The health feed says nothing about any candidate: the degraded
		// penalty cannot discriminate, so degrade gracefully to pure
		// consolidation rather than trusting predictions about a fabric in
		// an unknown state.
		return Pack{}.Choose(job, cands)
	}
	if !p.oracle.Contended() {
		// No shared bottleneck between slot-exclusive jobs: the predictors'
		// shared-queue premise does not apply, co-residency is predicted
		// free, and the policy falls back to consolidation — preferring
		// non-degraded leaves when any exist.
		best := -1
		for i, c := range cands {
			if c.Health == HealthDegraded {
				continue
			}
			if best < 0 || c.UsedSlots > cands[best].UsedSlots {
				best = i
			}
		}
		if best >= 0 {
			return best, 0, nil
		}
		return Pack{}.Choose(job, cands)
	}
	scores := make([]float64, len(cands))
	min := 0.0
	for i, c := range cands {
		score, err := p.scoreCandidate(job, c)
		if err != nil {
			return 0, 0, err
		}
		if c.Health == HealthDegraded {
			score += p.DegradedPenaltyPct
		}
		scores[i] = score
		if i == 0 || score < min {
			min = score
		}
	}
	if p.DeferThresholdPct > 0 && min > p.DeferThresholdPct {
		return Defer, min, nil
	}
	best := -1
	for i, c := range cands {
		if scores[i] > min+p.ScoreMarginPct {
			continue
		}
		if best < 0 || c.UsedSlots > cands[best].UsedSlots {
			best = i
		}
	}
	return best, scores[best], nil
}

// scoreCandidate predicts the total slowdown (in percentage points summed
// over affected jobs) that placing job on the candidate leaf would add.
func (p *PredictorGuided) scoreCandidate(job JobSpec, c Candidate) (float64, error) {
	if len(c.Residents) == 0 {
		return 0, nil
	}
	jobProfile, err := p.oracle.Profile(job.Workload)
	if err != nil {
		return 0, err
	}
	jobSig, err := p.oracle.Signature(job.Workload)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, resident := range c.Residents {
		resSig, err := p.oracle.Signature(resident)
		if err != nil {
			return 0, err
		}
		inflicted, err := p.pred.Predict(jobProfile, resSig)
		if err != nil {
			return 0, fmt.Errorf("sched: predicting %s next to %s: %w", job.Workload, resident, err)
		}
		resProfile, err := p.oracle.Profile(resident)
		if err != nil {
			return 0, err
		}
		suffered, err := p.pred.Predict(resProfile, jobSig)
		if err != nil {
			return 0, fmt.Errorf("sched: predicting %s next to %s: %w", resident, job.Workload, err)
		}
		if inflicted > 0 {
			total += inflicted
		}
		if suffered > 0 {
			total += suffered
		}
	}
	return total, nil
}
