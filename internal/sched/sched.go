// Package sched closes the paper's loop: it turns the offline predictors
// (internal/model) and the placed co-run measurement library (internal/core)
// into a decision engine for an event-driven cluster scheduler simulator.
//
// The model operates at the job level, one step above the packet-level
// kernel.  The machine's leaf switches are contention domains with a fixed
// number of job slots each; jobs (a workload name, a slot count, a service
// demand in solo iterations) arrive as a stream, wait FCFS when no leaf has
// capacity, and run to completion at a rate set by who shares their domain:
//
//   - two jobs on the same leaf are charged the spread-placed co-run
//     degradation measured for their workload pair on the scenario's fabric
//     (the paper's methodology, via core.MeasureAppPairPlaced specs);
//   - jobs on different leaves are charged the pack-placed (disjoint-leaf)
//     measurement, which is near zero on every fabric the xswitch campaign
//     covers;
//   - a job's solo duration comes from its calibrated slot baseline.
//
// Multi-way co-residency is resolved additively over the pairwise
// coefficients — an approximation, but one built entirely from measured,
// content-addressed artifacts: every coefficient an Oracle serves is a cached
// core.RunSpec, so a warm campaign schedules thousands of jobs without
// executing a single packet-level simulation.
//
// Placement decisions are pluggable policies (FirstFit, Pack, Spread,
// Random, and the predictor-in-the-loop PredictorGuided); the simulator
// emits per-policy makespan, job stretch, a switch-utilization timeline and
// a placement-decision log so policies can be compared end to end.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/sim"
	"github.com/hpcperf/switchprobe/internal/stats"
)

// JobSpec is one job of the arrival stream.
type JobSpec struct {
	// ID orders the stream; ties in virtual time are broken by it.
	ID int
	// Workload is the application name (one of workload.Names).
	Workload string
	// Slots is the leaf-slot capacity the job occupies (1 ≤ Slots ≤ the
	// cluster's slots per leaf; jobs never span leaves).
	Slots int
	// Iterations is the job's service demand in solo iterations.
	Iterations int
	// Arrival is the job's submission time in virtual seconds.
	Arrival float64
}

// Name returns the job's unique allocation label.
func (j JobSpec) Name() string { return fmt.Sprintf("j%02d-%s", j.ID, j.Workload) }

// ArrivalSpec deterministically generates a job stream from a seed.
type ArrivalSpec struct {
	// Jobs is the stream length.
	Jobs int
	// Seed drives every random draw of the generator.
	Seed int64
	// Mix is the set of workload names jobs are drawn from.
	Mix []string
	// MeanInterarrival is the mean of the exponential inter-arrival gap in
	// virtual seconds.
	MeanInterarrival float64
	// MinIterations and MaxIterations bound the uniform service-demand draw.
	MinIterations, MaxIterations int
	// TwoSlotFraction is the probability that a job needs two leaf slots
	// instead of one.
	TwoSlotFraction float64
}

// Generate produces the arrival stream.  The same spec always produces the
// same stream: all randomness flows from a private source seeded by Seed.
// Workloads are assigned by cycling the mix (every len(Mix) consecutive jobs
// contain each workload exactly once), so the stream's composition is
// balanced by construction and only gaps, demands and widths are random.
func (a ArrivalSpec) Generate() ([]JobSpec, error) {
	if a.Jobs <= 0 {
		return nil, fmt.Errorf("sched: non-positive job count %d", a.Jobs)
	}
	if len(a.Mix) == 0 {
		return nil, fmt.Errorf("sched: empty workload mix")
	}
	if a.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("sched: non-positive mean inter-arrival %v", a.MeanInterarrival)
	}
	if a.MinIterations < 1 || a.MaxIterations < a.MinIterations {
		return nil, fmt.Errorf("sched: invalid iteration range [%d, %d]", a.MinIterations, a.MaxIterations)
	}
	if a.TwoSlotFraction < 0 || a.TwoSlotFraction > 1 {
		return nil, fmt.Errorf("sched: two-slot fraction %v outside [0, 1]", a.TwoSlotFraction)
	}
	rng := rand.New(rand.NewSource(a.Seed))
	jobs := make([]JobSpec, a.Jobs)
	at := 0.0
	for i := range jobs {
		j := JobSpec{
			ID:         i,
			Workload:   a.Mix[i%len(a.Mix)],
			Slots:      1,
			Iterations: a.MinIterations + rng.Intn(a.MaxIterations-a.MinIterations+1),
			Arrival:    at,
		}
		if rng.Float64() < a.TwoSlotFraction {
			j.Slots = 2
		}
		jobs[i] = j
		at += rng.ExpFloat64() * a.MeanInterarrival
	}
	return jobs, nil
}

// Config describes one scheduler simulation run.
type Config struct {
	// Machine is the simulated machine (its topology defines the leaves the
	// scheduler places jobs across).
	Machine cluster.Config
	// Seed seeds the bookkeeping kernel (only the random node-order stream
	// depends on it).
	Seed int64
	// NodesPerSlot is the number of whole nodes one job slot occupies; every
	// leaf provides len(leafNodes)/NodesPerSlot slots.  Zero derives it from
	// the largest leaf so each leaf holds two slots — but campaigns that
	// compare topologies should pin it explicitly, keeping total slot
	// capacity identical across fabrics.
	NodesPerSlot int
	// Jobs is the arrival stream, ordered by arrival time.
	Jobs []JobSpec
	// Policy decides where each job goes.
	Policy Policy
	// Oracle resolves solo durations, co-run slowdowns and signatures.
	Oracle Oracle
	// Health reports a leaf's fabric health at a virtual time.  nil means
	// every leaf is healthy forever — exactly the behaviour before health
	// awareness existed.  The function must be pure over (leaf, time): the
	// scheduler re-queries it on every event.
	Health func(leaf int, now float64) LeafHealth
	// HealthEvents lists the virtual times (seconds, ascending not required)
	// at which Health may change its answer.  At each event the scheduler
	// requeues jobs stranded on dead leaves, refreshes progress rates and
	// re-offers the queue.  Health transitions between listed events are
	// not observed.
	HealthEvents []float64
	// DegradedRate is the progress-rate multiplier applied to jobs running
	// on degraded leaves (0 < rate ≤ 1); zero defaults to 0.5.
	DegradedRate float64
}

// JobOutcome records one completed job.
type JobOutcome struct {
	ID        int
	Workload  string
	Slots     int
	Leaf      int
	Arrival   float64
	Start     float64
	End       float64
	SoloSec   float64
	WaitSec   float64
	Stretch   float64
	Colocated bool // placed onto a leaf that already had residents
}

// TimelinePoint samples cluster state after a placement or completion.
type TimelinePoint struct {
	// Time is the event's virtual time in seconds.
	Time float64
	// Running is the number of resident jobs.
	Running int
	// BusySlots is the number of occupied leaf slots.
	BusySlots int
	// UtilizationPct is the aggregated solo switch utilization of every
	// resident job's signature, capped at 100.
	UtilizationPct float64
}

// Decision records one placement with the policy's reasoning.
type Decision struct {
	Time      float64
	JobID     int
	Workload  string
	Slots     int
	Leaf      int
	Score     float64
	Queued    int      // jobs still waiting after this placement
	Feasible  int      // number of candidate leaves offered
	Residents []string // workloads already on the chosen leaf
}

// Result is one policy's full schedule and its summary metrics.
type Result struct {
	Policy      string
	Jobs        []JobOutcome
	Decisions   []Decision
	Timeline    []TimelinePoint
	MakespanSec float64
	MeanStretch float64
	P95Stretch  float64
	MaxStretch  float64
	MeanWaitSec float64
	// MeanUtilizationPct is the time-weighted mean of the utilization
	// timeline over the makespan.
	MeanUtilizationPct float64
	// Colocations counts placements onto leaves that already had residents
	// (each one opens a shared contention domain).
	Colocations int
	// Deferrals counts the times the policy postponed the head of the queue
	// because every feasible placement predicted heavy contention.
	Deferrals int
	// Requeues counts jobs evicted from dead leaves and returned to the
	// queue with their full service demand restored (partial progress on a
	// partitioned leaf is lost, as on a real machine).
	Requeues int
	// TotalSlots is the cluster's job-slot capacity.
	TotalSlots int
}

// running is the mutable state of one resident job.
type running struct {
	spec      JobSpec
	alloc     *cluster.Job
	leaf      int
	start     float64
	solo      float64
	remaining float64
	rate      float64
	colocated bool
}

// clusterState tracks leaf/slot occupancy on a real cluster.Machine, so slot
// accounting and core allocation stay consistent.
type clusterState struct {
	m            *cluster.Machine
	leafNodes    [][]int
	nodesPerSlot int
	slotsPerLeaf []int
	resident     map[int][]*running // leaf -> jobs
}

func newClusterState(cfg Config) (*clusterState, error) {
	m, err := cluster.New(sim.NewKernel(cfg.Seed), cfg.Machine)
	if err != nil {
		return nil, err
	}
	leaves := m.Leaves()
	cs := &clusterState{
		m:         m,
		leafNodes: make([][]int, leaves),
		resident:  make(map[int][]*running, leaves),
	}
	for n := 0; n < cfg.Machine.Nodes(); n++ {
		leaf := m.LeafOf(n)
		cs.leafNodes[leaf] = append(cs.leafNodes[leaf], n)
	}
	cs.nodesPerSlot = cfg.NodesPerSlot
	if cs.nodesPerSlot <= 0 {
		largest := 0
		for _, nodes := range cs.leafNodes {
			if len(nodes) > largest {
				largest = len(nodes)
			}
		}
		cs.nodesPerSlot = largest / 2
		if cs.nodesPerSlot < 1 {
			cs.nodesPerSlot = 1
		}
	}
	cs.slotsPerLeaf = make([]int, leaves)
	for l, nodes := range cs.leafNodes {
		cs.slotsPerLeaf[l] = len(nodes) / cs.nodesPerSlot
	}
	return cs, nil
}

// freeNodes returns the leaf's fully idle nodes in ascending order.
func (cs *clusterState) freeNodes(leaf int) []int {
	full := cs.m.Config().CoresPerNode()
	var out []int
	for _, n := range cs.leafNodes[leaf] {
		if cs.m.FreeCores(n) == full {
			out = append(out, n)
		}
	}
	return out
}

// freeSlots returns the number of job slots still available on the leaf.
// Because every job holds exactly Slots×nodesPerSlot whole nodes, the
// node-derived count always equals capacity minus resident slots.
func (cs *clusterState) freeSlots(leaf int) int {
	return len(cs.freeNodes(leaf)) / cs.nodesPerSlot
}

func slotsUsed(rs []*running) int {
	total := 0
	for _, r := range rs {
		total += r.spec.Slots
	}
	return total
}

// candidates lists the leaves that can host the job, in ascending leaf
// order.
func (cs *clusterState) candidates(job JobSpec) []Candidate {
	var cands []Candidate
	for leaf := range cs.leafNodes {
		free := cs.freeSlots(leaf)
		if free < job.Slots {
			continue
		}
		c := Candidate{Leaf: leaf, FreeSlots: free, UsedSlots: slotsUsed(cs.resident[leaf])}
		for _, r := range cs.resident[leaf] {
			c.Residents = append(c.Residents, r.spec.Workload)
		}
		cands = append(cands, c)
	}
	return cands
}

// place allocates the job's nodes on the chosen leaf through the cluster
// allocation machinery and registers it as resident.
func (cs *clusterState) place(r *running) error {
	free := cs.freeNodes(r.leaf)
	need := r.spec.Slots * cs.nodesPerSlot
	if len(free) < need {
		return fmt.Errorf("sched: leaf %d has %d free nodes, job %s needs %d", r.leaf, len(free), r.spec.Name(), need)
	}
	alloc, err := cs.m.AllocateOnNodes(r.spec.Name(), cs.m.Config().CoresPerSocket, free[:need])
	if err != nil {
		return err
	}
	r.alloc = alloc
	cs.resident[r.leaf] = append(cs.resident[r.leaf], r)
	return nil
}

// release frees the job's cores and residency.
func (cs *clusterState) release(r *running) {
	cs.m.Release(r.alloc)
	rs := cs.resident[r.leaf]
	for i, other := range rs {
		if other == r {
			cs.resident[r.leaf] = append(rs[:i], rs[i+1:]...)
			break
		}
	}
}

// busySlots returns the total occupied slot count.
func (cs *clusterState) busySlots() int {
	total := 0
	for _, rs := range cs.resident {
		total += slotsUsed(rs)
	}
	return total
}

// totalSlots returns the cluster's slot capacity.
func (cs *clusterState) totalSlots() int {
	total := 0
	for _, s := range cs.slotsPerLeaf {
		total += s
	}
	return total
}

// Run executes the scheduler simulation and returns the schedule.  The run
// is fully deterministic: arrivals are processed in stream order, completion
// ties break by job ID, and every slowdown coefficient is a pure Oracle
// lookup.
func Run(cfg Config) (Result, error) {
	if cfg.Policy == nil {
		return Result{}, fmt.Errorf("sched: no policy")
	}
	if cfg.Oracle == nil {
		return Result{}, fmt.Errorf("sched: no oracle")
	}
	if len(cfg.Jobs) == 0 {
		return Result{}, fmt.Errorf("sched: empty job stream")
	}
	cs, err := newClusterState(cfg)
	if err != nil {
		return Result{}, err
	}
	maxSlots := 0
	for _, s := range cs.slotsPerLeaf {
		if s > maxSlots {
			maxSlots = s
		}
	}
	pending := append([]JobSpec(nil), cfg.Jobs...)
	sort.SliceStable(pending, func(i, j int) bool {
		if pending[i].Arrival != pending[j].Arrival {
			return pending[i].Arrival < pending[j].Arrival
		}
		return pending[i].ID < pending[j].ID
	})
	for _, j := range pending {
		if j.Slots < 1 || j.Slots > maxSlots {
			return Result{}, fmt.Errorf("sched: job %s needs %d slots, leaves hold at most %d", j.Name(), j.Slots, maxSlots)
		}
		if j.Iterations < 1 {
			return Result{}, fmt.Errorf("sched: job %s has no iterations", j.Name())
		}
	}

	res := Result{Policy: cfg.Policy.Name(), TotalSlots: cs.totalSlots()}
	var (
		queue   []JobSpec
		active  []*running
		now     float64
		firstAt = pending[0].Arrival
		lastEnd = firstAt
	)

	degradedRate := cfg.DegradedRate
	if degradedRate <= 0 || degradedRate > 1 {
		degradedRate = 0.5
	}
	healthAt := func(leaf int, t float64) LeafHealth {
		if cfg.Health == nil {
			return HealthOK
		}
		return cfg.Health(leaf, t)
	}
	healthEvents := append([]float64(nil), cfg.HealthEvents...)
	sort.Float64s(healthEvents)
	nextHealthIdx := 0

	advance := func(t float64) {
		dt := t - now
		if dt > 0 {
			for _, r := range active {
				r.remaining -= r.rate * dt
			}
		}
		now = t
	}

	// rateOf recomputes one job's progress rate from its co-residents and
	// the health of the leaf it runs on.
	rateOf := func(r *running) (float64, error) {
		charge := 1.0
		for _, other := range active {
			if other == r {
				continue
			}
			var pct float64
			var err error
			if other.leaf == r.leaf {
				pct, err = cfg.Oracle.SharedSlowdownPct(r.spec.Workload, other.spec.Workload)
			} else {
				pct, err = cfg.Oracle.DisjointSlowdownPct(r.spec.Workload, other.spec.Workload)
			}
			if err != nil {
				return 0, err
			}
			if pct > 0 {
				charge += pct / 100
			}
		}
		rate := 1 / charge
		if healthAt(r.leaf, now) == HealthDegraded {
			rate *= degradedRate
		}
		return rate, nil
	}

	// requeueDead evicts jobs resident on dead leaves: their slots are
	// released exactly once and the specs return to the head of the queue
	// (oldest arrival first) with full demand — progress on a partitioned
	// leaf is lost.
	requeueDead := func() {
		var back []JobSpec
		for i := 0; i < len(active); {
			r := active[i]
			if healthAt(r.leaf, now) != HealthDead {
				i++
				continue
			}
			cs.release(r)
			active = append(active[:i], active[i+1:]...)
			back = append(back, r.spec)
			res.Requeues++
		}
		if len(back) > 0 {
			sort.SliceStable(back, func(i, j int) bool {
				if back[i].Arrival != back[j].Arrival {
					return back[i].Arrival < back[j].Arrival
				}
				return back[i].ID < back[j].ID
			})
			queue = append(back, queue...)
		}
	}

	refresh := func() error {
		for _, r := range active {
			rate, err := rateOf(r)
			if err != nil {
				return err
			}
			r.rate = rate
		}
		util := 0.0
		for _, r := range active {
			u, err := cfg.Oracle.UtilizationPct(r.spec.Workload)
			if err != nil {
				return err
			}
			util += u
		}
		if util > 100 {
			util = 100
		}
		res.Timeline = append(res.Timeline, TimelinePoint{
			Time:           now,
			Running:        len(active),
			BusySlots:      cs.busySlots(),
			UtilizationPct: util,
		})
		return nil
	}

	// placeQueue starts waiting jobs in FCFS order (no backfilling: the head
	// of the queue blocks everyone behind it, the same discipline for every
	// policy so schedules stay comparable).
	placeQueue := func() error {
		placed := false
		for len(queue) > 0 {
			job := queue[0]
			cands := cs.candidates(job)
			if cfg.Health != nil {
				alive := cands[:0]
				for _, c := range cands {
					c.Health = healthAt(c.Leaf, now)
					if c.Health == HealthDead {
						continue
					}
					alive = append(alive, c)
				}
				cands = alive
			}
			if len(cands) == 0 {
				break
			}
			choice, score, err := cfg.Policy.Choose(job, cands)
			if err != nil {
				return fmt.Errorf("sched: policy %s placing %s: %w", cfg.Policy.Name(), job.Name(), err)
			}
			if choice == Defer {
				if len(active) == 0 {
					// Nothing is running, so no completion can improve the
					// candidates; deferring would deadlock.  Place on the
					// first candidate (the score was for the deferral, not
					// a leaf, so don't record it).
					choice, score = 0, 0
				} else {
					res.Deferrals++
					break
				}
			}
			if choice < 0 || choice >= len(cands) {
				return fmt.Errorf("sched: policy %s chose candidate %d of %d for %s", cfg.Policy.Name(), choice, len(cands), job.Name())
			}
			cand := cands[choice]
			iter, err := cfg.Oracle.SoloIterationSec(job.Workload)
			if err != nil {
				return err
			}
			solo := iter * float64(job.Iterations)
			if solo <= 0 {
				return fmt.Errorf("sched: non-positive solo duration for %s", job.Workload)
			}
			r := &running{
				spec:      job,
				leaf:      cand.Leaf,
				start:     now,
				solo:      solo,
				remaining: solo,
				colocated: len(cand.Residents) > 0,
			}
			if err := cs.place(r); err != nil {
				return err
			}
			queue = queue[1:]
			active = append(active, r)
			if r.colocated {
				res.Colocations++
			}
			res.Decisions = append(res.Decisions, Decision{
				Time:      now,
				JobID:     job.ID,
				Workload:  job.Workload,
				Slots:     job.Slots,
				Leaf:      cand.Leaf,
				Score:     score,
				Queued:    len(queue),
				Feasible:  len(cands),
				Residents: cand.Residents,
			})
			placed = true
		}
		if placed {
			return refresh()
		}
		return nil
	}

	for len(pending) > 0 || len(queue) > 0 || len(active) > 0 {
		nextArrival := math.Inf(1)
		if len(pending) > 0 {
			nextArrival = pending[0].Arrival
		}
		nextDone := math.Inf(1)
		var done *running
		for _, r := range active {
			t := now + r.remaining/r.rate
			if t < nextDone || (t == nextDone && done != nil && r.spec.ID < done.spec.ID) {
				nextDone = t
				done = r
			}
		}
		nextHealth := math.Inf(1)
		for nextHealthIdx < len(healthEvents) && healthEvents[nextHealthIdx] < now {
			nextHealthIdx++ // already in the past, nothing to observe
		}
		if nextHealthIdx < len(healthEvents) {
			nextHealth = healthEvents[nextHealthIdx]
		}
		if len(active) == 0 && len(pending) == 0 && math.IsInf(nextHealth, 1) {
			return Result{}, fmt.Errorf("sched: %d jobs stuck in the queue (head %s needs %d slots)",
				len(queue), queue[0].Name(), queue[0].Slots)
		}
		if nextHealth < nextDone && nextHealth < nextArrival {
			// Health transition: evict dead-leaf residents, refresh rates
			// (degrade multipliers may have changed), then re-offer the
			// queue — a revived leaf is a new candidate.
			advance(nextHealth)
			nextHealthIdx++
			requeueDead()
			if err := refresh(); err != nil {
				return Result{}, err
			}
		} else if nextDone <= nextArrival {
			advance(nextDone)
			cs.release(done)
			for i, r := range active {
				if r == done {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
			stretch := (now - done.spec.Arrival) / done.solo
			res.Jobs = append(res.Jobs, JobOutcome{
				ID:        done.spec.ID,
				Workload:  done.spec.Workload,
				Slots:     done.spec.Slots,
				Leaf:      done.leaf,
				Arrival:   done.spec.Arrival,
				Start:     done.start,
				End:       now,
				SoloSec:   done.solo,
				WaitSec:   done.start - done.spec.Arrival,
				Stretch:   stretch,
				Colocated: done.colocated,
			})
			if now > lastEnd {
				lastEnd = now
			}
			if err := refresh(); err != nil {
				return Result{}, err
			}
		} else {
			advance(nextArrival)
			queue = append(queue, pending[0])
			pending = pending[1:]
		}
		if err := placeQueue(); err != nil {
			return Result{}, err
		}
	}

	sort.Slice(res.Jobs, func(i, j int) bool { return res.Jobs[i].ID < res.Jobs[j].ID })
	res.MakespanSec = lastEnd - firstAt
	summarize(&res)
	return res, nil
}

// summarize fills the aggregate metrics from the per-job outcomes and the
// timeline.
func summarize(res *Result) {
	if len(res.Jobs) == 0 {
		return
	}
	stretches := make([]float64, len(res.Jobs))
	waits := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		stretches[i] = j.Stretch
		waits[i] = j.WaitSec
	}
	res.MeanStretch, res.P95Stretch, res.MaxStretch = StretchStats(stretches)
	res.MeanWaitSec = stats.Mean(waits)

	if res.MakespanSec > 0 && len(res.Timeline) > 0 {
		weighted := 0.0
		for i, p := range res.Timeline {
			end := res.Timeline[len(res.Timeline)-1].Time
			if i+1 < len(res.Timeline) {
				end = res.Timeline[i+1].Time
			}
			weighted += p.UtilizationPct * (end - p.Time)
		}
		res.MeanUtilizationPct = weighted / res.MakespanSec
	}
}

// StretchStats summarizes a stretch sample as (mean, p95, max), the
// convention shared by per-run results and the campaign's pooled rows (the
// p95 uses the stats package's interpolated quantile).
func StretchStats(stretches []float64) (mean, p95, max float64) {
	return stats.Mean(stretches),
		stats.Quantile(stretches, 0.95),
		stats.Quantile(stretches, 1)
}
