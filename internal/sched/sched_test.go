package sched

import (
	"math"
	"reflect"
	"testing"

	"github.com/hpcperf/switchprobe/internal/cluster"
	"github.com/hpcperf/switchprobe/internal/core"
	"github.com/hpcperf/switchprobe/internal/netsim"
)

// testMachine returns a machine with the given node count split across
// leaves (2 nodes per leaf slot pair by default).
func testMachine(nodes, leaves int) cluster.Config {
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = nodes
	if leaves > 1 {
		cfg.Net.Topology = netsim.FatTree{Leaves: leaves, UplinksPerLeaf: 1}
	}
	return cfg
}

// flatOracle returns a static oracle where every workload iterates in
// iterSec and every shared pair slows down by sharedPct (disjoint pairs are
// free).
func flatOracle(iterSec, sharedPct float64, apps ...string) *StaticOracle {
	o := &StaticOracle{
		IterSec:         map[string]float64{},
		Shared:          map[string]float64{},
		Util:            map[string]float64{},
		ContendedFabric: true,
	}
	for _, a := range apps {
		o.IterSec[a] = iterSec
		o.Util[a] = 10
		for _, b := range apps {
			o.Shared[PairKey(a, b)] = sharedPct
		}
	}
	return o
}

func TestArrivalSpecDeterministic(t *testing.T) {
	spec := ArrivalSpec{
		Jobs: 20, Seed: 7, Mix: []string{"FFTW", "MCB"},
		MeanInterarrival: 0.1, MinIterations: 10, MaxIterations: 30,
		TwoSlotFraction: 0.25,
	}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different streams")
	}
	spec.Seed = 8
	c, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical streams")
	}
	twoSlot := false
	for i, j := range a {
		if j.ID != i {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if i > 0 && j.Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals not monotone at job %d", i)
		}
		if j.Iterations < 10 || j.Iterations > 30 {
			t.Fatalf("job %d iterations %d outside range", i, j.Iterations)
		}
		if j.Slots == 2 {
			twoSlot = true
		}
	}
	if !twoSlot {
		t.Fatal("no two-slot jobs in a 20-job stream with fraction 0.25")
	}
}

func TestArrivalSpecRejectsBadInput(t *testing.T) {
	good := ArrivalSpec{Jobs: 1, Mix: []string{"FFTW"}, MeanInterarrival: 1, MinIterations: 1, MaxIterations: 1}
	for _, mutate := range []func(*ArrivalSpec){
		func(s *ArrivalSpec) { s.Jobs = 0 },
		func(s *ArrivalSpec) { s.Mix = nil },
		func(s *ArrivalSpec) { s.MeanInterarrival = 0 },
		func(s *ArrivalSpec) { s.MinIterations = 0 },
		func(s *ArrivalSpec) { s.MaxIterations = 0 },
		func(s *ArrivalSpec) { s.TwoSlotFraction = 1.5 },
	} {
		s := good
		mutate(&s)
		if _, err := s.Generate(); err == nil {
			t.Fatalf("expected error for %+v", s)
		}
	}
}

func TestRunSingleJobNoContention(t *testing.T) {
	res, err := Run(Config{
		Machine: testMachine(4, 2),
		Jobs:    []JobSpec{{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0}},
		Policy:  FirstFit{},
		Oracle:  flatOracle(0.1, 50, "A"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("got %d outcomes", len(res.Jobs))
	}
	j := res.Jobs[0]
	if math.Abs(j.Stretch-1) > 1e-12 || math.Abs(res.MakespanSec-1.0) > 1e-12 {
		t.Fatalf("solo job stretch %v makespan %v, want 1 and 1.0s", j.Stretch, res.MakespanSec)
	}
	if j.Colocated || res.Colocations != 0 {
		t.Fatal("solo job marked colocated")
	}
}

// TestRunSharedChargeSlowsBothJobs pins the charging arithmetic: two
// identical jobs packed onto one leaf at 100% mutual slowdown run at half
// speed and finish together at twice the solo duration.
func TestRunSharedChargeSlowsBothJobs(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		{ID: 1, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
	}
	packed, err := Run(Config{
		Machine: testMachine(4, 2), Jobs: jobs, Policy: Pack{},
		Oracle: flatOracle(0.1, 100, "A"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range packed.Jobs {
		if math.Abs(j.End-2.0) > 1e-9 || math.Abs(j.Stretch-2.0) > 1e-9 {
			t.Fatalf("packed job %d end %v stretch %v, want 2.0 and 2.0", j.ID, j.End, j.Stretch)
		}
	}
	if packed.Colocations != 1 {
		t.Fatalf("packed colocations = %d, want 1", packed.Colocations)
	}

	spread, err := Run(Config{
		Machine: testMachine(4, 2), Jobs: jobs, Policy: Spread{},
		Oracle: flatOracle(0.1, 100, "A"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range spread.Jobs {
		if math.Abs(j.Stretch-1.0) > 1e-9 {
			t.Fatalf("spread job %d stretch %v, want 1.0 (disjoint leaves are free)", j.ID, j.Stretch)
		}
	}
	if spread.Colocations != 0 {
		t.Fatalf("spread colocations = %d, want 0", spread.Colocations)
	}
}

// TestRunQueueingFCFS fills a one-leaf (star) machine and checks the third
// job waits for a completion, keeping FCFS order.
func TestRunQueueingFCFS(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		{ID: 1, Workload: "A", Slots: 1, Iterations: 20, Arrival: 0},
		{ID: 2, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
	}
	res, err := Run(Config{
		Machine: testMachine(4, 1), Jobs: jobs, Policy: FirstFit{},
		Oracle: flatOracle(0.1, 0, "A"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Slots: 4 nodes / 2 slots => 2 concurrent jobs. Job 0 ends at 1.0,
	// job 2 starts then, job 1 ends at 2.0, job 2 at 2.0.
	byID := map[int]JobOutcome{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	if byID[2].Start != byID[0].End {
		t.Fatalf("job 2 started at %v, want at job 0's end %v", byID[2].Start, byID[0].End)
	}
	if w := byID[2].WaitSec; math.Abs(w-1.0) > 1e-9 {
		t.Fatalf("job 2 waited %v, want 1.0", w)
	}
	if res.MeanWaitSec == 0 || res.P95Stretch < res.MeanStretch {
		t.Fatalf("summary inconsistent: meanWait %v p95 %v mean %v", res.MeanWaitSec, res.P95Stretch, res.MeanStretch)
	}
}

// TestRunTwoSlotJobNeedsWholeLeaf checks a two-slot job blocks (FCFS, no
// backfill) until a whole leaf is free.
func TestRunTwoSlotJobNeedsWholeLeaf(t *testing.T) {
	jobs := []JobSpec{
		{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		{ID: 1, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		{ID: 2, Workload: "A", Slots: 2, Iterations: 10, Arrival: 0.01},
		{ID: 3, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0.02},
	}
	res, err := Run(Config{
		Machine: testMachine(4, 2), Jobs: jobs, Policy: Spread{},
		Oracle: flatOracle(0.1, 0, "A"),
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobOutcome{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	// Spread puts jobs 0 and 1 on different leaves; the 2-slot job 2 must
	// wait for a full leaf, and job 3 must not jump the queue.
	if byID[2].Start <= 0.01 {
		t.Fatalf("two-slot job started at %v despite no free leaf", byID[2].Start)
	}
	if byID[3].Start < byID[2].Start {
		t.Fatalf("job 3 (start %v) backfilled ahead of blocked job 2 (start %v)", byID[3].Start, byID[2].Start)
	}
}

func TestRunRejectsOversizedJob(t *testing.T) {
	_, err := Run(Config{
		Machine: testMachine(4, 2),
		Jobs:    []JobSpec{{ID: 0, Workload: "A", Slots: 3, Iterations: 1, Arrival: 0}},
		Policy:  FirstFit{},
		Oracle:  flatOracle(0.1, 0, "A"),
	})
	if err == nil {
		t.Fatal("expected error for a job larger than any leaf")
	}
}

// TestRunUnevenLeaves places jobs on a 5-node, 2-leaf machine where the
// second leaf has fewer nodes and therefore fewer slots.
func TestRunUnevenLeaves(t *testing.T) {
	cfg := cluster.CabConfig()
	cfg.Net.Nodes = 5
	cfg.Net.Topology = netsim.FatTree{Leaves: 2, UplinksPerLeaf: 1}
	jobs := []JobSpec{
		{ID: 0, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		{ID: 1, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
		{ID: 2, Workload: "A", Slots: 1, Iterations: 10, Arrival: 0},
	}
	res, err := Run(Config{
		Machine: cfg, Jobs: jobs, Policy: Spread{},
		Oracle: flatOracle(0.1, 0, "A"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf 0 holds nodes {0,1,2} (2 slots of 1 node... nodesPerSlot =
	// ceil? 3/2=1 node per slot), leaf 1 holds {3,4} (2 slots).  All three
	// jobs run immediately.
	if res.TotalSlots < 3 {
		t.Fatalf("total slots %d, want at least 3", res.TotalSlots)
	}
	for _, j := range res.Jobs {
		if j.WaitSec != 0 {
			t.Fatalf("job %d waited %v on a cluster with free slots", j.ID, j.WaitSec)
		}
	}
}

// fakePredictor predicts from a fixed (target app, co-runner component)
// table, so policy behaviour is pinned without measurements.
type fakePredictor struct {
	table map[string]float64
}

func (fakePredictor) Name() string { return "fake" }

func (f fakePredictor) Predict(target core.Profile, coRunner core.Signature) (float64, error) {
	return f.table[PairKey(target.App, coRunner.Component)], nil
}

// predictorFixture builds a predictor-guided config on a 3-leaf cluster
// (2 nodes per leaf, two one-node slots each) with the given job stream.
func predictorFixture(pred fakePredictor, jobs []JobSpec) Config {
	apps := []string{"Heavy", "Light", "Target", "Blocker"}
	oracle := flatOracle(0.1, 50, apps...)
	oracle.Sigs = map[string]core.Signature{}
	oracle.Profiles = map[string]core.Profile{}
	for _, a := range apps {
		oracle.Sigs[a] = core.Signature{Component: a}
		oracle.Profiles[a] = core.Profile{App: a}
	}
	return Config{
		Machine: testMachine(6, 3),
		Jobs:    jobs,
		Policy:  NewPredictorGuided(pred, oracle),
		Oracle:  oracle,
	}
}

// TestPredictorGuidedPicksCompatibleLeaf: the arriving target avoids
// occupied leaves while an empty one exists, and when forced to co-locate it
// joins the resident its predictor scores cheapest.
func TestPredictorGuidedPicksCompatibleLeaf(t *testing.T) {
	pred := fakePredictor{table: map[string]float64{
		PairKey("Target", "Heavy"): 80,
		PairKey("Heavy", "Target"): 40,
		PairKey("Target", "Light"): 5,
		PairKey("Light", "Target"): 5,
		PairKey("Light", "Heavy"):  30,
		PairKey("Heavy", "Light"):  30,
	}}
	res, err := Run(predictorFixture(pred, []JobSpec{
		{ID: 0, Workload: "Heavy", Slots: 1, Iterations: 100, Arrival: 0},
		{ID: 1, Workload: "Light", Slots: 1, Iterations: 100, Arrival: 0.001},
		{ID: 2, Workload: "Target", Slots: 1, Iterations: 10, Arrival: 0.01},
	}))
	if err != nil {
		t.Fatal(err)
	}
	leafOf := map[string]int{}
	for _, j := range res.Jobs {
		leafOf[j.Workload] = j.Leaf
	}
	// Light's leaf scores within the consolidation margin of the empty
	// leaf, so the target absorbs Light's spare slot and leaves the empty
	// leaf for less compatible arrivals; Heavy's leaf (score 120) is out.
	if leafOf["Target"] == leafOf["Heavy"] {
		t.Fatalf("target joined Heavy's leaf %d", leafOf["Target"])
	}
	if leafOf["Target"] != leafOf["Light"] {
		t.Fatalf("target placed on leaf %d, want to consolidate onto Light's leaf %d",
			leafOf["Target"], leafOf["Light"])
	}

	// Fill the empty leaf with a two-slot blocker: the target must now
	// co-locate and must pick Light (score 10) over Heavy (score 120).
	res, err = Run(predictorFixture(pred, []JobSpec{
		{ID: 0, Workload: "Heavy", Slots: 1, Iterations: 100, Arrival: 0},
		{ID: 1, Workload: "Light", Slots: 1, Iterations: 100, Arrival: 0.001},
		{ID: 2, Workload: "Blocker", Slots: 2, Iterations: 100, Arrival: 0.002},
		{ID: 3, Workload: "Target", Slots: 1, Iterations: 10, Arrival: 0.01},
	}))
	if err != nil {
		t.Fatal(err)
	}
	leafOf = map[string]int{}
	for _, j := range res.Jobs {
		leafOf[j.Workload] = j.Leaf
	}
	if leafOf["Target"] != leafOf["Light"] {
		t.Fatalf("target placed on leaf %d, want Light's leaf %d (Heavy on %d)",
			leafOf["Target"], leafOf["Light"], leafOf["Heavy"])
	}
	var targetDecision Decision
	for _, d := range res.Decisions {
		if d.Workload == "Target" {
			targetDecision = d
		}
	}
	if targetDecision.Score != 10 || targetDecision.Feasible != 2 {
		t.Fatalf("decision log %+v, want score 10 over 2 feasible leaves", targetDecision)
	}
}

// TestPredictorGuidedDefersCatastrophicPlacement: when every feasible leaf
// predicts a heavily contended pairing, the policy waits for a completion
// instead of committing, and the job starts exactly when a resident leaves.
func TestPredictorGuidedDefersCatastrophicPlacement(t *testing.T) {
	pred := fakePredictor{table: map[string]float64{
		PairKey("Target", "Heavy"): 80,
		PairKey("Heavy", "Target"): 40,
		PairKey("Heavy", "Heavy"):  100,
	}}
	cfg := predictorFixture(pred, []JobSpec{
		{ID: 0, Workload: "Heavy", Slots: 1, Iterations: 100, Arrival: 0}, // 10s solo
		{ID: 1, Workload: "Heavy", Slots: 1, Iterations: 200, Arrival: 0.001},
		{ID: 2, Workload: "Heavy", Slots: 1, Iterations: 300, Arrival: 0.002},
		{ID: 3, Workload: "Target", Slots: 1, Iterations: 10, Arrival: 0.01},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobOutcome{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	if res.Deferrals == 0 {
		t.Fatal("expected deferrals with only catastrophic placements available")
	}
	if got, want := byID[3].Start, byID[0].End; got != want {
		t.Fatalf("target started at %v, want at the first Heavy's completion %v", got, want)
	}
	if byID[3].Colocated {
		t.Fatal("target should start on the freed leaf, not co-located")
	}
}

func TestPolicyChoices(t *testing.T) {
	cands := []Candidate{
		{Leaf: 0, FreeSlots: 1, UsedSlots: 1, Residents: []string{"A"}},
		{Leaf: 1, FreeSlots: 2, UsedSlots: 0},
		{Leaf: 2, FreeSlots: 1, UsedSlots: 1, Residents: []string{"B"}},
	}
	job := JobSpec{ID: 9, Workload: "C", Slots: 1, Iterations: 1}
	if i, _, _ := (FirstFit{}).Choose(job, cands); i != 0 {
		t.Fatalf("firstfit chose %d, want 0", i)
	}
	if i, _, _ := (Pack{}).Choose(job, cands); i != 0 {
		t.Fatalf("pack chose %d, want 0 (most loaded, lowest index)", i)
	}
	if i, _, _ := (Spread{}).Choose(job, cands); i != 1 {
		t.Fatalf("spread chose %d, want 1 (least loaded)", i)
	}
	r1, r2 := NewRandom(3), NewRandom(3)
	for i := 0; i < 10; i++ {
		a, _, _ := r1.Choose(job, cands)
		b, _, _ := r2.Choose(job, cands)
		if a != b {
			t.Fatal("random policy not deterministic per seed")
		}
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		pred, oracle := fakePredictor{}, flatOracle(1, 0, "A")
		p, err := NewPolicy(name, 1, pred, oracle)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("greedy", 1, nil, nil); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if _, err := NewPolicy(PolicyPredictor, 1, nil, nil); err == nil {
		t.Fatal("expected error for predictor policy without a predictor")
	}
}
