package sim

import (
	"fmt"
	"math/rand"
)

// procKilled is the panic value used to unwind a process during Shutdown.
type procKilled struct{}

// Proc is a cooperative simulated process.  Its body runs on its own
// goroutine, but the kernel guarantees that at most one process executes at a
// time, so process code may freely touch shared simulation state.
type Proc struct {
	k    *Kernel
	id   int
	name string
	// resume carries the single run token from the kernel to the process.
	// Capacity 1 so the kernel (and Shutdown) never block on the send side.
	resume chan struct{}
	// dispatchFn is the one closure bound at Spawn; Sleep and Wake reschedule
	// it through the pooled event path, so parking and waking a process
	// allocates nothing.
	dispatchFn func()
	done       bool
	killed     bool
	parked     bool // parked via Block and eligible for Wake
	pending    bool // a Wake arrived while the proc was not parked
	rng        *rand.Rand
}

// Spawn creates a process named name executing body.  The body starts running
// at the current virtual time (after already-scheduled events for this
// instant).
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	if k.shutdown {
		panic("sim: Spawn after Shutdown")
	}
	p := &Proc{
		k:      k,
		id:     k.procSeq,
		name:   name,
		resume: make(chan struct{}, 1),
	}
	p.dispatchFn = func() { k.dispatch(p) }
	k.procSeq++
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					// Re-panic on the kernel goroutine would be nicer but we
					// cannot cross goroutines; make the failure loud instead.
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}
			p.done = true
			k.live--
			k.yielded <- struct{}{}
		}()
		if p.killed {
			panic(procKilled{})
		}
		body(p)
	}()
	k.PostAt(k.now, p.dispatchFn)
	return p
}

// dispatch hands control to p until it parks or finishes.
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := k.current
	k.current = p
	k.stats.ProcSwitches++
	p.resume <- struct{}{}
	<-k.yielded
	k.current = prev
}

// pause parks the calling process and returns control to the kernel.  It
// returns when the kernel dispatches the process again.  A process that has
// already been marked killed unwinds immediately instead of parking, so a
// kill can never strand a process that re-enters pause while unwinding (e.g.
// from a deferred Sleep or Block).
func (p *Proc) pause() {
	if p.killed {
		panic(procKilled{})
	}
	k := p.k
	k.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process' unique id within its kernel.
func (p *Proc) ID() int { return p.id }

// Rand returns a deterministic random stream private to this process.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = p.k.NewRand(fmt.Sprintf("proc/%d/%s", p.id, p.name))
	}
	return p.rng
}

// Sleep suspends the process for d of virtual time.  A zero-length sleep
// with nothing else ordered at the current instant (Kernel.InstantIdle)
// returns immediately instead of parking: the dispatch event it would have
// posted would fire as the very next action anyway, so skipping it leaves
// the schedule unchanged and saves the park/dispatch round-trip.
func (p *Proc) Sleep(d Duration) {
	k := p.k
	if d <= 0 {
		if k.InstantIdle() {
			k.NoteFastResume()
			return
		}
		d = 0
	}
	k.PostAt(k.now.Add(d), p.dispatchFn)
	p.pause()
}

// Block parks the process until another component calls Kernel.Wake (or
// Proc.Wake) for it.  If a wake was delivered while the process was running,
// Block consumes it and returns immediately.  Typical usage is a condition
// loop:
//
//	for !req.complete {
//		p.Block()
//	}
func (p *Proc) Block() {
	if p.pending {
		p.pending = false
		return
	}
	p.parked = true
	p.pause()
}

// Wake marks p runnable again.  If p is parked in Block it is scheduled to
// resume at the current virtual time; otherwise the wake is remembered and
// the next Block returns immediately.  Waking a finished process is a no-op.
func (k *Kernel) Wake(p *Proc) {
	if p == nil || p.done {
		return
	}
	if p.parked {
		p.parked = false
		k.PostAt(k.now, p.dispatchFn)
		return
	}
	p.pending = true
}

// Wake is a convenience wrapper for Kernel.Wake.
func (p *Proc) Wake() { p.k.Wake(p) }

// WaitUntil blocks the process until pred() reports true.  The predicate is
// re-evaluated every time the process is woken.
func (p *Proc) WaitUntil(pred func() bool) {
	for !pred() {
		p.Block()
	}
}

// WaitGroup counts outstanding activities and lets a single process wait for
// them to finish, mirroring sync.WaitGroup in virtual time.
type WaitGroup struct {
	count  int
	waiter *Proc
}

// Add increments the outstanding-activity count by n.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the count and wakes the waiter when it reaches zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.count == 0 && w.waiter != nil {
		p := w.waiter
		w.waiter = nil
		p.Wake()
	}
}

// Wait blocks p until the counter reaches zero.  Only one process may wait on
// a WaitGroup at a time.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	if w.waiter != nil {
		panic("sim: concurrent Wait on WaitGroup")
	}
	w.waiter = p
	p.WaitUntil(func() bool { return w.count == 0 })
	if w.waiter == p {
		w.waiter = nil
	}
}

// Signal is a broadcast condition: processes Wait on it and a later Broadcast
// wakes all current waiters.
type Signal struct {
	waiters []*Proc
}

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.Block()
}

// Broadcast wakes every process currently waiting on the signal.
func (s *Signal) Broadcast() {
	waiters := s.waiters
	s.waiters = nil
	for _, p := range waiters {
		p.Wake()
	}
}

// Waiting reports how many processes are parked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }
