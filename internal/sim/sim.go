// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing scheduled events in
// timestamp order.  On top of plain callback events it offers cooperative
// processes (Proc): lightweight coroutines implemented on goroutines where at
// most one process runs at any instant, so simulation code needs no locking
// and is fully deterministic for a fixed seed.
//
// The kernel is the substrate for the simulated cluster network, the MPI-like
// runtime and the application workloads used to reproduce the active
// measurement methodology of Casas & Bronevetsky (IPDPS 2014).
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// Time is a point in virtual time, expressed in nanoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units (all in virtual nanoseconds).
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1_000
	Millisecond Duration = 1_000_000
	Second      Duration = 1_000_000_000
)

// Seconds returns the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Add returns the time offset by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between u and t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating point number of seconds since the
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// DurationOfSeconds converts a float number of seconds to a Duration.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// DurationOfMicros converts a float number of microseconds to a Duration.
func DurationOfMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Event is a scheduled callback.  It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing.  Cancelling an event that already
// fired is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// eventHeap orders events by (time, sequence) so that events scheduled for
// the same instant fire in scheduling order, keeping runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine.  It is not safe for
// concurrent use; all interaction must happen from the goroutine driving
// Run/RunUntil or from code executed by the kernel itself (events and
// processes).
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	seed    int64
	procSeq int
	procs   []*Proc
	current *Proc
	// yielded is signalled by the running process when it parks or ends,
	// returning control to the kernel loop.
	yielded  chan struct{}
	live     int
	shutdown bool
}

// NewKernel creates a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		seed:    seed,
		yielded: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the base seed of the kernel's random streams.
func (k *Kernel) Seed() int64 { return k.seed }

// NewRand returns a deterministic random stream identified by name.  Streams
// with distinct names are independent; the same (seed, name) pair always
// yields the same sequence.
func (k *Kernel) NewRand(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", k.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Pending reports the number of scheduled, non-cancelled events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// LiveProcs reports the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.live }

// At schedules fn to run at virtual time t.  Scheduling in the past is
// clamped to the current time.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Run executes events until the event queue is empty.  It returns the final
// virtual time.
func (k *Kernel) Run() Time {
	for k.step(-1) {
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to exactly the deadline.  It returns the final virtual time.
func (k *Kernel) RunUntil(deadline Time) Time {
	for k.step(deadline) {
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// RunFor runs the simulation for d of virtual time from the current instant.
func (k *Kernel) RunFor(d Duration) Time { return k.RunUntil(k.now.Add(d)) }

// step executes the next event if there is one and (when deadline >= 0) it
// does not lie beyond the deadline.  It reports whether an event ran.
func (k *Kernel) step(deadline Time) bool {
	for len(k.events) > 0 {
		next := k.events[0]
		if next.cancelled {
			heap.Pop(&k.events)
			continue
		}
		if deadline >= 0 && next.at > deadline {
			return false
		}
		heap.Pop(&k.events)
		k.now = next.at
		next.fn()
		return true
	}
	return false
}

// Shutdown terminates all live processes by unwinding their goroutines.  It
// must be called from outside the kernel (not from an event or process) and
// leaves the kernel unusable for further spawns.  It is used to release
// resources when an experiment window ends before its processes finish.
func (k *Kernel) Shutdown() {
	k.shutdown = true
	// Cancel all pending events so no further work is scheduled.
	for _, e := range k.events {
		e.cancelled = true
	}
	k.events = k.events[:0]
	// Unwind every parked process.
	procs := make([]*Proc, len(k.procs))
	copy(procs, k.procs)
	// Kill in reverse spawn order so dependent procs unwind before the
	// infrastructure they use.
	sort.SliceStable(procs, func(i, j int) bool { return procs[i].id > procs[j].id })
	for _, p := range procs {
		if p.done {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-k.yielded
	}
	k.procs = nil
}

// procKilled is the panic value used to unwind a process during Shutdown.
type procKilled struct{}

// Proc is a cooperative simulated process.  Its body runs on its own
// goroutine, but the kernel guarantees that at most one process executes at a
// time, so process code may freely touch shared simulation state.
type Proc struct {
	k       *Kernel
	id      int
	name    string
	resume  chan struct{}
	done    bool
	killed  bool
	parked  bool // parked via Block and eligible for Wake
	pending bool // a Wake arrived while the proc was not parked
	rng     *rand.Rand
}

// Spawn creates a process named name executing body.  The body starts running
// at the current virtual time (after already-scheduled events for this
// instant).
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	if k.shutdown {
		panic("sim: Spawn after Shutdown")
	}
	p := &Proc{
		k:      k,
		id:     k.procSeq,
		name:   name,
		resume: make(chan struct{}),
	}
	k.procSeq++
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					// Re-panic on the kernel goroutine would be nicer but we
					// cannot cross goroutines; make the failure loud instead.
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}
			p.done = true
			k.live--
			k.yielded <- struct{}{}
		}()
		if p.killed {
			panic(procKilled{})
		}
		body(p)
	}()
	k.At(k.now, func() { k.dispatch(p) })
	return p
}

// dispatch hands control to p until it parks or finishes.
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := k.current
	k.current = p
	p.resume <- struct{}{}
	<-k.yielded
	k.current = prev
}

// pause parks the calling process and returns control to the kernel.  It
// returns when the kernel dispatches the process again.
func (p *Proc) pause() {
	k := p.k
	k.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process' unique id within its kernel.
func (p *Proc) ID() int { return p.id }

// Rand returns a deterministic random stream private to this process.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = p.k.NewRand(fmt.Sprintf("proc/%d/%s", p.id, p.name))
	}
	return p.rng
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.At(k.now.Add(d), func() { k.dispatch(p) })
	p.pause()
}

// Block parks the process until another component calls Kernel.Wake (or
// Proc.Wake) for it.  If a wake was delivered while the process was running,
// Block consumes it and returns immediately.  Typical usage is a condition
// loop:
//
//	for !req.complete {
//		p.Block()
//	}
func (p *Proc) Block() {
	if p.pending {
		p.pending = false
		return
	}
	p.parked = true
	p.pause()
}

// Wake marks p runnable again.  If p is parked in Block it is scheduled to
// resume at the current virtual time; otherwise the wake is remembered and
// the next Block returns immediately.  Waking a finished process is a no-op.
func (k *Kernel) Wake(p *Proc) {
	if p == nil || p.done {
		return
	}
	if p.parked {
		p.parked = false
		k.At(k.now, func() { k.dispatch(p) })
		return
	}
	p.pending = true
}

// Wake is a convenience wrapper for Kernel.Wake.
func (p *Proc) Wake() { p.k.Wake(p) }

// WaitUntil blocks the process until pred() reports true.  The predicate is
// re-evaluated every time the process is woken.
func (p *Proc) WaitUntil(pred func() bool) {
	for !pred() {
		p.Block()
	}
}

// WaitGroup counts outstanding activities and lets a single process wait for
// them to finish, mirroring sync.WaitGroup in virtual time.
type WaitGroup struct {
	count  int
	waiter *Proc
}

// Add increments the outstanding-activity count by n.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the count and wakes the waiter when it reaches zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.count == 0 && w.waiter != nil {
		p := w.waiter
		w.waiter = nil
		p.Wake()
	}
}

// Wait blocks p until the counter reaches zero.  Only one process may wait on
// a WaitGroup at a time.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	if w.waiter != nil {
		panic("sim: concurrent Wait on WaitGroup")
	}
	w.waiter = p
	p.WaitUntil(func() bool { return w.count == 0 })
	if w.waiter == p {
		w.waiter = nil
	}
}

// Signal is a broadcast condition: processes Wait on it and a later Broadcast
// wakes all current waiters.
type Signal struct {
	waiters []*Proc
}

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.Block()
}

// Broadcast wakes every process currently waiting on the signal.
func (s *Signal) Broadcast() {
	waiters := s.waiters
	s.waiters = nil
	for _, p := range waiters {
		p.Wake()
	}
}

// Waiting reports how many processes are parked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }
