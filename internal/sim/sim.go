// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing scheduled events in
// timestamp order.  On top of plain callback events it offers cooperative
// processes (Proc): lightweight coroutines implemented on goroutines where at
// most one process runs at any instant, so simulation code needs no locking
// and is fully deterministic for a fixed seed.
//
// Two scheduling APIs exist.  At/After return a cancellable *Event handle and
// allocate a fresh event per call.  Post/PostAt/Call/CallAt are fire-and-forget:
// they return no handle, draw their event structs from an internal free list
// and recycle them after firing, so steady-state scheduling allocates nothing.
// Call/CallAt additionally carry a caller-supplied argument to the callback,
// letting hot paths reuse one pre-bound callback instead of allocating a
// closure per event.  Events scheduled for the current instant bypass the
// timer heap entirely through a FIFO ring.
//
// The kernel is the substrate for the simulated cluster network, the MPI-like
// runtime and the application workloads used to reproduce the active
// measurement methodology of Casas & Bronevetsky (IPDPS 2014).
package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"github.com/hpcperf/switchprobe/internal/telemetry"
)

// KernelVersion identifies the behavioural generation of the kernel: its
// event ordering, random-stream derivation and scheduling fast paths.  Any
// change that can alter the event schedule (and therefore every measurement
// derived from it) must bump this constant so persisted simulation artifacts
// keyed on it are invalidated.
//
// Version 3 introduces the schedule-relaxed execution mode: the network
// layer's deferred lane may commit pipeline work ahead of the clock (per-flow
// random substreams, analytically fused route walks) instead of replaying the
// strict global (time, seq) interleaving.  The strict golden-oracle mode
// still reproduces version-2 schedules byte-for-byte, but artifacts are keyed
// on the mode, so the version bump invalidates every pre-relaxation cache.
const KernelVersion = 3

// Time is a point in virtual time, expressed in nanoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units (all in virtual nanoseconds).
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1_000
	Millisecond Duration = 1_000_000
	Second      Duration = 1_000_000_000
)

// Seconds returns the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Add returns the time offset by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between u and t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating point number of seconds since the
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// DurationOfSeconds converts a float number of seconds to a Duration.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// DurationOfMicros converts a float number of microseconds to a Duration.
func DurationOfMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Event is a scheduled callback.  Handles returned by At/After can be
// cancelled before they fire.  Events created through Post/PostAt/Call/CallAt
// are pooled and never escape the kernel.
type Event struct {
	at  Time
	seq uint64
	fn  func()
	// afn/arg are the argument-carrying callback form used by Call/CallAt;
	// exactly one of fn and afn is set.
	afn       func(any)
	arg       any
	cancelled bool
	// pooled events are recycled onto the kernel free list once popped; only
	// handle-less events may be pooled, so a recycled struct can never be
	// reached through a stale *Event.
	pooled bool
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing.  Cancelling an event that already
// fired is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Stats counts what the kernel has done since creation.  All counters are
// monotonic.
type Stats struct {
	// EventsScheduled is the total number of events accepted via any
	// scheduling API.
	EventsScheduled uint64
	// EventsFired is the number of events whose callback ran.
	EventsFired uint64
	// EventsCancelled is the number of events discarded without firing
	// (explicit Cancel or Shutdown).
	EventsCancelled uint64
	// PoolReuses is the number of event structs served from the free list
	// instead of the heap allocator (allocations avoided).
	PoolReuses uint64
	// FastPathEvents is the number of events that bypassed the timer heap
	// through the same-instant FIFO ring.
	FastPathEvents uint64
	// EventsElided is the number of would-be events a client simulated
	// analytically instead of scheduling (reported via NoteElided); the
	// network layer's cut-through fast path is the main contributor.  The
	// schedule is byte-identical with or without elision — only the kernel's
	// bookkeeping cost changes.
	EventsElided uint64
	// ProcSwitches is the number of kernel-to-process control transfers.
	ProcSwitches uint64
	// ProcFastResumes is the number of non-parking process fast paths taken
	// instead of a park/dispatch cycle: waits on already-complete operations,
	// waits with zero pending requests, and zero-length sleeps resumed inline
	// under the InstantIdle guard.
	ProcFastResumes uint64
}

// eventRing is a growable FIFO of events scheduled for the current instant;
// it replaces O(log n) heap traffic with O(1) pushes and pops for the very
// common "schedule at now" case (wakes, same-time cascades).
type eventRing struct {
	buf  []*Event
	head int
	n    int
}

func (r *eventRing) push(e *Event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = e
	r.n++
}

func (r *eventRing) grow() {
	newBuf := make([]*Event, max(16, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		newBuf[i] = r.buf[j]
	}
	r.buf = newBuf
	r.head = 0
}

func (r *eventRing) peek() *Event { return r.buf[r.head] }

func (r *eventRing) pop() *Event {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}

// Kernel is a discrete-event simulation engine.  It is not safe for
// concurrent use; all interaction must happen from the goroutine driving
// Run/RunUntil or from code executed by the kernel itself (events and
// processes).
type Kernel struct {
	now     Time
	events  []heapEntry // 4-ary min-heap ordered by packed (at, seq) keys
	nowq    eventRing
	pool    []*Event
	seq     uint64
	curSeq  uint64
	postGen uint64
	seed    int64
	stats   Stats

	// aux is the attached deferred event lane, if any (see AuxQueue).
	aux AuxQueue

	// tracePid is this kernel's lane id in a structured trace, allocated on
	// the first sampled emission (0 = none yet).  Purely observational: it
	// exists only while a trace is being recorded.
	tracePid int64

	procSeq int
	procs   []*Proc
	current *Proc
	// yielded is signalled by the running process when it parks or ends,
	// returning control to the kernel loop.  Capacity 1 keeps the handoff a
	// single token store instead of a blocking rendezvous on both sides.
	yielded  chan struct{}
	live     int
	shutdown bool
}

// NewKernel creates a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		seed:    seed,
		yielded: make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the base seed of the kernel's random streams.
func (k *Kernel) Seed() int64 { return k.seed }

// Stats returns a snapshot of the kernel's activity counters.
func (k *Kernel) Stats() Stats { return k.stats }

// NoteElided records n events that a client executed through its own deferred
// lane instead of scheduling them as kernel events.  It only feeds the
// EventsElided statistic; it has no effect on execution.
func (k *Kernel) NoteElided(n uint64) { k.stats.EventsElided += n }

// NoteFastResume records one taken non-parking process fast path: a wait on
// an already-complete operation, a wait with zero pending requests, or a
// zero-length sleep resumed inline under the InstantIdle guard.  It only
// feeds the ProcFastResumes statistic; it has no effect on execution.
func (k *Kernel) NoteFastResume() { k.stats.ProcFastResumes++ }

// AuxPeeker is optionally implemented by an AuxQueue that can report the
// (time, seq) key of its earliest deferred entry.  InstantIdle consults it;
// a lane that does not implement the method is conservatively treated as
// possibly holding same-instant work.
type AuxPeeker interface {
	// PeekKey returns the key of the earliest deferred entry and whether one
	// exists.
	PeekKey() (Time, uint64, bool)
}

// InstantIdle reports whether nothing further is ordered at the current
// instant: the same-instant ring is empty, the earliest heap event (if any)
// lies strictly in the future, and the attached deferred lane (if any) holds
// no entry at or before now.  When it holds, an event posted now would fire
// as the very next action with no intervening work, so a client may instead
// run its continuation inline: the only change to the schedule is that every
// later sequence number shifts down by one — uniformly, which preserves all
// relative (time, seq) orderings — and the park/dispatch round-trip is saved.
// Cancelled heap events and non-peekable lanes make the answer conservatively
// false.
func (k *Kernel) InstantIdle() bool {
	if k.nowq.n > 0 {
		return false
	}
	if len(k.events) > 0 && k.events[0].e.at <= k.now {
		return false
	}
	if k.aux != nil {
		p, ok := k.aux.(AuxPeeker)
		if !ok {
			return false
		}
		if at, _, have := p.PeekKey(); have && at <= k.now {
			return false
		}
	}
	return true
}

// AllocSeq hands out the next event sequence number without scheduling
// anything.  A client that runs its own deferred event lane (netsim's
// cut-through path) stamps each lane entry with a real sequence number at the
// moment it would have scheduled the event, so lane entries and kernel events
// remain totally ordered by (time, seq) exactly as if every entry had been a
// kernel event.  The allocation counts as a scheduled event in Stats.
func (k *Kernel) AllocSeq() uint64 {
	s := k.seq
	k.seq++
	k.stats.EventsScheduled++
	return s
}

// NextSeq returns the sequence number the next scheduled event (or AllocSeq
// call) will receive, without consuming it.  A deferred lane peeks it to
// decide whether an entry still fits its packed-key range before allocating.
func (k *Kernel) NextSeq() uint64 { return k.seq }

// CurrentSeq returns the sequence number of the event being dispatched (0
// before the first dispatch).  Together with Now it identifies the current
// position in the global (time, seq) event order; a deferred lane drains
// every entry ordered before this position before the caller may touch lane
// state.
func (k *Kernel) CurrentSeq() uint64 { return k.curSeq }

// LaneDispatch is called by the attached deferred lane as it executes each
// entry: it advances the kernel clock to the entry's timestamp and records
// its sequence number as the current dispatch position.  Lane drains run in
// global (time, seq) order between kernel dispatches, so the clock stays
// monotonic and every callback run from the lane — completions, observers —
// sees exactly the clock it would have seen as a kernel event.
func (k *Kernel) LaneDispatch(at Time, seq uint64) {
	if at > k.now {
		k.now = at
	}
	k.curSeq = seq
}

// NextEventKey returns the (time, seq) key of the earliest scheduled event
// and whether one exists.  Cancelled events are included (their key is a
// conservative lower bound: the kernel will discard them and look again).
// A deferred lane re-reads this every drained entry, because executing an
// entry can schedule a real event that must run before the lane's next one.
func (k *Kernel) NextEventKey() (Time, uint64, bool) {
	var e *Event
	if k.nowq.n > 0 {
		e = k.nowq.peek()
	}
	if len(k.events) > 0 && (e == nil || eventLess(k.events[0].e, e)) {
		e = k.events[0].e
	}
	if e == nil {
		return 0, 0, false
	}
	return e.at, e.seq, true
}

// AuxQueue is a deferred event lane maintained by a client (netsim's
// cut-through fast path).  The kernel gives the lane its turn in the global
// (time, seq) event order: before dispatching an event — and before going
// idle or stopping at a RunUntil deadline — it asks the lane to execute every
// entry strictly ordered before the given position and not past the deadline.
// Lane entries carry sequence numbers from AllocSeq, so "ordered before" is
// the exact order the entries would have had as kernel events.
type AuxQueue interface {
	// DrainBefore executes deferred entries e with (e.at, e.seq) < (at, seq)
	// and e.at <= deadline, in (at, seq) order, and reports whether any entry
	// ran.  Draining may schedule new kernel events.
	DrainBefore(at Time, seq uint64, deadline Time) bool
}

// SetAux attaches a deferred event lane to the kernel (nil detaches).  At
// most one lane may be attached at a time; attaching over an existing lane
// reports an error so two networks on one kernel fail loudly instead of
// silently reordering each other.
func (k *Kernel) SetAux(aux AuxQueue) error {
	if aux != nil && k.aux != nil && k.aux != aux {
		return fmt.Errorf("sim: kernel already has a deferred event lane attached")
	}
	k.aux = aux
	return nil
}

// NewRand returns a deterministic random stream identified by name.  Streams
// with distinct names are independent; the same (seed, name) pair always
// yields the same sequence.
func (k *Kernel) NewRand(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", k.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Pending reports the number of scheduled, non-cancelled events.
func (k *Kernel) Pending() int {
	n := 0
	for _, he := range k.events {
		if !he.e.cancelled {
			n++
		}
	}
	for i := 0; i < k.nowq.n; i++ {
		j := k.nowq.head + i
		if j >= len(k.nowq.buf) {
			j -= len(k.nowq.buf)
		}
		if !k.nowq.buf[j].cancelled {
			n++
		}
	}
	return n
}

// LiveProcs reports the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.live }

// --- event heap -------------------------------------------------------------
//
// A manual 4-ary min-heap: container/heap's interface calls were a top
// profile entry in packet-heavy simulations, and the wider node halves the
// sift-down depth (the pop-heavy direction) while keeping all four children
// of a node on one cache line pair.

const heapArity = 4

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapEntry carries an event's packed (at, seq) ordering key beside its
// pointer, so heap sifts compare contiguous uint64s instead of dereferencing
// two Events per comparison.  Keys use the same 36/28-bit time/seq packing as
// the network layer's deferred lane; the rare out-of-range event gets the
// sentinel key and falls back to a full field comparison, preserving the
// exact (at, seq) order in all cases.
type heapEntry struct {
	key uint64
	e   *Event
}

const (
	keySeqBits = 28
	keyMaxAt   = Time(1)<<(64-keySeqBits) - 1
	keyMaxSeq  = uint64(1)<<keySeqBits - 1
)

// eventKey packs (at, seq) into a single-compare ordering key, or the
// sentinel when either component is out of packing range.
func eventKey(at Time, seq uint64) uint64 {
	if at > keyMaxAt || seq > keyMaxSeq {
		return ^uint64(0)
	}
	return uint64(at)<<keySeqBits | seq
}

// entryLess orders heap entries by packed key; keys are unique while in
// packing range (seq is unique per kernel), so the field fallback only
// breaks ties between sentinel-keyed entries.
func entryLess(a, b *heapEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return eventLess(a.e, b.e)
}

func (k *Kernel) heapPush(e *Event) {
	h := append(k.events, heapEntry{key: eventKey(e.at, e.seq), e: e})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !entryLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.events = h
}

func (k *Kernel) heapPop() *Event {
	h := k.events
	top := h[0].e
	n := len(h) - 1
	h[0] = h[n]
	h[n] = heapEntry{}
	h = h[:n]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(&h[c], &h[best]) {
				best = c
			}
		}
		if !entryLess(&h[best], &h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	k.events = h
	return top
}

// --- scheduling -------------------------------------------------------------

// newEvent serves an event struct, preferring the free list.
func (k *Kernel) newEvent() *Event {
	if n := len(k.pool); n > 0 {
		e := k.pool[n-1]
		k.pool = k.pool[:n-1]
		k.stats.PoolReuses++
		return e
	}
	return &Event{}
}

// recycle returns a pooled event to the free list.  Handle-bearing events
// (At/After) are never recycled: a stale *Event held by the caller must stay
// inert rather than alias a future event.
func (k *Kernel) recycle(e *Event) {
	if !e.pooled {
		return
	}
	e.fn = nil
	e.afn = nil
	e.arg = nil
	e.cancelled = false
	e.pooled = false
	k.pool = append(k.pool, e)
}

// enqueue stamps and queues a prepared event.  Events for the current instant
// take the FIFO ring; later events take the heap.
func (k *Kernel) enqueue(e *Event, t Time) {
	if t < k.now {
		t = k.now
	}
	e.at = t
	e.seq = k.seq
	k.seq++
	k.postGen++
	k.stats.EventsScheduled++
	if t == k.now {
		k.nowq.push(e)
		k.stats.FastPathEvents++
		return
	}
	k.heapPush(e)
}

// PostGen returns a counter that changes whenever a real event is scheduled.
// A deferred lane snapshots it to detect, without re-reading the queue heads,
// whether executing an entry scheduled a kernel event that may now be ordered
// before the lane's next entry.
func (k *Kernel) PostGen() uint64 { return k.postGen }

// At schedules fn to run at virtual time t and returns a cancellable handle.
// Scheduling in the past is clamped to the current time.
func (k *Kernel) At(t Time, fn func()) *Event {
	e := &Event{fn: fn}
	k.enqueue(e, t)
	return e
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// PostAt schedules fn to run at virtual time t with no cancellation handle.
// The backing event comes from the kernel's free list, so steady-state use
// does not allocate.
func (k *Kernel) PostAt(t Time, fn func()) {
	e := k.newEvent()
	e.fn = fn
	e.pooled = true
	k.enqueue(e, t)
}

// Post schedules fn to run d after the current virtual time with no
// cancellation handle (the pooled counterpart of After).
func (k *Kernel) Post(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.PostAt(k.now.Add(d), fn)
}

// CallAt schedules fn(arg) at virtual time t with no cancellation handle.
// Combined with a pre-bound fn it makes repeated scheduling completely
// allocation-free: the event is pooled and no closure is created.
func (k *Kernel) CallAt(t Time, fn func(any), arg any) {
	e := k.newEvent()
	e.afn = fn
	e.arg = arg
	e.pooled = true
	k.enqueue(e, t)
}

// Call schedules fn(arg) to run d after the current virtual time (the pooled,
// argument-carrying counterpart of After).
func (k *Kernel) Call(d Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	k.CallAt(k.now.Add(d), fn, arg)
}

// --- execution --------------------------------------------------------------

// Run executes events until the event queue is empty.  It returns the final
// virtual time.
func (k *Kernel) Run() Time {
	for k.step(-1) {
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to exactly the deadline.  It returns the final virtual time.
func (k *Kernel) RunUntil(deadline Time) Time {
	for k.step(deadline) {
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// RunFor runs the simulation for d of virtual time from the current instant.
func (k *Kernel) RunFor(d Duration) Time { return k.RunUntil(k.now.Add(d)) }

// step executes the next event if there is one and (when deadline >= 0) it
// does not lie beyond the deadline.  It reports whether an event ran.
//
// The ring only ever holds events stamped at the current instant, and the
// clock advances solely by firing heap events, which cannot happen while ring
// events remain; comparing the two front events by (at, seq) therefore
// reproduces the exact global ordering of a single queue.
//
// An attached deferred lane (AuxQueue) gets its turn first: before an event
// is dispatched, every lane entry ordered before it executes, and before the
// kernel goes idle or stops at the deadline, every remaining in-deadline lane
// entry executes.  Lane drains can schedule new kernel events, so the loop
// re-examines the queues after each drain that made progress.
func (k *Kernel) step(deadline Time) bool {
	for {
		var e *Event
		fromRing := false
		if k.nowq.n > 0 {
			e = k.nowq.peek()
			fromRing = true
			if len(k.events) > 0 && eventLess(k.events[0].e, e) {
				e = k.events[0].e
				fromRing = false
			}
		} else if len(k.events) > 0 {
			e = k.events[0].e
		} else {
			if k.aux != nil && k.aux.DrainBefore(maxTime, ^uint64(0), capDeadline(deadline)) {
				continue
			}
			return false
		}
		if e.cancelled {
			if fromRing {
				k.nowq.pop()
			} else {
				k.heapPop()
			}
			k.stats.EventsCancelled++
			k.recycle(e)
			continue
		}
		if deadline >= 0 && e.at > deadline {
			if k.aux != nil && k.aux.DrainBefore(maxTime, ^uint64(0), deadline) {
				continue
			}
			return false
		}
		if k.aux != nil && k.aux.DrainBefore(e.at, e.seq, capDeadline(deadline)) {
			// The drain may have scheduled events ordered before e.
			continue
		}
		if fromRing {
			k.nowq.pop()
		} else {
			k.heapPop()
		}
		k.now = e.at
		k.curSeq = e.seq
		k.stats.EventsFired++
		if telemetry.TraceEnabled() && telemetry.TraceSampleHit() {
			// Sampled kernel lane: one instant per kept event at its virtual
			// firing time.  The guard is a single atomic load when no trace is
			// active, and sampling is a deterministic counter modulo — the
			// event schedule cannot depend on it.
			if k.tracePid == 0 {
				k.tracePid = telemetry.NextTracePid()
				telemetry.EmitProcessName(k.tracePid, "sim kernel")
			}
			telemetry.EmitInstant("kernel", "fire", k.tracePid, 0, int64(e.at), nil)
		}
		fn, afn, arg := e.fn, e.afn, e.arg
		k.recycle(e) // safe: callback copied out, struct may be reused by fn itself
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		return true
	}
}

// maxTime is the far-future sentinel used for unbounded lane drains.
const maxTime = Time(math.MaxInt64)

// capDeadline translates step's "no deadline" sentinel (-1) into the lane's
// far-future bound.
func capDeadline(deadline Time) Time {
	if deadline < 0 {
		return maxTime
	}
	return deadline
}

// Shutdown terminates all live processes by unwinding their goroutines.  It
// must be called from outside the kernel (not from an event or process) and
// leaves the kernel unusable for further spawns.  It is used to release
// resources when an experiment window ends before its processes finish.
// Calling Shutdown more than once is a no-op.
func (k *Kernel) Shutdown() {
	k.shutdown = true
	// Cancel all pending events so no further work is scheduled, returning
	// pooled ones to the free list.
	for _, he := range k.events {
		k.stats.EventsCancelled++
		he.e.cancelled = true
		k.recycle(he.e)
	}
	k.events = k.events[:0]
	for k.nowq.n > 0 {
		e := k.nowq.pop()
		k.stats.EventsCancelled++
		e.cancelled = true
		k.recycle(e)
	}
	// Unwind every parked process.
	procs := make([]*Proc, len(k.procs))
	copy(procs, k.procs)
	// Kill in reverse spawn order so dependent procs unwind before the
	// infrastructure they use.
	sort.SliceStable(procs, func(i, j int) bool { return procs[i].id > procs[j].id })
	for _, p := range procs {
		if p.done {
			continue
		}
		p.killed = true
		// Non-blocking kill handshake: a parked process consumes the resume
		// token and unwinds.  A process that is mid-handoff (it yielded but
		// has not re-parked, or already holds an unconsumed token) observes
		// the killed flag on its own the next time it passes through pause;
		// blocking on the send here would deadlock Shutdown against it.
		select {
		case p.resume <- struct{}{}:
		default:
		}
		<-k.yielded
	}
	k.procs = nil
}
