package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{1500 * Microsecond, "1.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	if got := t0.Add(500); got != Time(1500) {
		t.Fatalf("Add: got %d want 1500", got)
	}
	if got := Time(1500).Sub(t0); got != Duration(500) {
		t.Fatalf("Sub: got %d want 500", got)
	}
	if s := Time(2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds: got %v want 2", s)
	}
}

func TestDurationConversions(t *testing.T) {
	if d := DurationOfSeconds(0.5); d != 500*Millisecond {
		t.Fatalf("DurationOfSeconds(0.5) = %v", d)
	}
	if d := DurationOfMicros(2.5); d != 2500 {
		t.Fatalf("DurationOfMicros(2.5) = %v", d)
	}
	if got := (1500 * Microsecond).Micros(); got != 1500 {
		t.Fatalf("Micros: got %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds: got %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %d, want 30", k.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.At(10, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", k.Pending())
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.At(100, func() {
		k.At(50, func() { at = k.Now() }) // in the past, should clamp to now
	})
	k.Run()
	if at != 100 {
		t.Fatalf("past event ran at %d, want 100", at)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.After(-5, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("After(-5) never ran")
	}
	if k.Now() != 0 {
		t.Fatalf("now = %d, want 0", k.Now())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.At(10, func() { count++ })
	k.At(200, func() { count++ })
	k.RunUntil(100)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if k.Now() != 100 {
		t.Fatalf("now = %d, want 100", k.Now())
	}
	k.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRunFor(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(500)
	if k.Now() != 500 {
		t.Fatalf("now = %d, want 500", k.Now())
	}
	k.RunFor(500)
	if k.Now() != 1000 {
		t.Fatalf("now = %d, want 1000", k.Now())
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel(1)
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(25 * Microsecond)
		wake = p.Now()
	})
	k.Run()
	if wake != Time(25*Microsecond) {
		t.Fatalf("woke at %d, want %d", wake, 25*Microsecond)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", k.LiveProcs())
	}
}

func TestProcSequencing(t *testing.T) {
	// Two procs sleeping interleaved must observe a consistent global order.
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
		p.Sleep(20)
		order = append(order, "b40")
	})
	k.Run()
	want := []string{"a10", "b20", "a30", "b40"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockWake(t *testing.T) {
	k := NewKernel(1)
	var resumed Time
	p := k.Spawn("waiter", func(p *Proc) {
		p.Block()
		resumed = p.Now()
	})
	k.At(100, func() { k.Wake(p) })
	k.Run()
	if resumed != 100 {
		t.Fatalf("resumed at %d, want 100", resumed)
	}
}

func TestWakeBeforeBlockIsNotLost(t *testing.T) {
	k := NewKernel(1)
	done := false
	var p *Proc
	p = k.Spawn("w", func(p *Proc) {
		// The wake below is delivered while this proc is running (same
		// timestamp, scheduled earlier), i.e. before Block is reached once the
		// proc sleeps.  It must not be lost.
		p.Sleep(10)
		p.Block()
		done = true
	})
	k.At(5, func() { k.Wake(p) })
	k.Run()
	if !done {
		t.Fatal("wake delivered before Block was lost")
	}
}

func TestWakeFinishedProcIsNoop(t *testing.T) {
	k := NewKernel(1)
	p := k.Spawn("short", func(p *Proc) {})
	k.Run()
	k.Wake(p) // must not panic or deadlock
	k.Run()
}

func TestWaitUntil(t *testing.T) {
	k := NewKernel(1)
	ready := false
	var seen Time
	p := k.Spawn("w", func(p *Proc) {
		p.WaitUntil(func() bool { return ready })
		seen = p.Now()
	})
	// Spurious wake at t=10 (predicate still false), real one at t=50.
	k.At(10, func() { k.Wake(p) })
	k.At(50, func() { ready = true; k.Wake(p) })
	k.Run()
	if seen != 50 {
		t.Fatalf("predicate satisfied at %d, want 50", seen)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	var wg WaitGroup
	var doneAt Time
	wg.Add(3)
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		k.At(Time(i*10), func() { wg.Done() })
	}
	k.Run()
	if doneAt != 30 {
		t.Fatalf("WaitGroup released at %d, want 30", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	k := NewKernel(1)
	var wg WaitGroup
	ran := false
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative WaitGroup counter")
		}
	}()
	var wg WaitGroup
	wg.Done()
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel(1)
	var sig Signal
	released := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			released++
		})
	}
	k.At(10, func() {
		if sig.Waiting() != 4 {
			t.Errorf("waiting = %d, want 4", sig.Waiting())
		}
		sig.Broadcast()
	})
	k.Run()
	if released != 4 {
		t.Fatalf("released = %d, want 4", released)
	}
	if sig.Waiting() != 0 {
		t.Fatalf("waiting after broadcast = %d", sig.Waiting())
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel(1)
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childAt = c.Now()
		})
		p.Sleep(100)
	})
	k.Run()
	if childAt != 15 {
		t.Fatalf("child finished at %d, want 15", childAt)
	}
}

func TestShutdownUnwindsProcs(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 8; i++ {
		k.Spawn("looper", func(p *Proc) {
			for {
				p.Sleep(10)
			}
		})
	}
	k.RunUntil(1000)
	if k.LiveProcs() != 8 {
		t.Fatalf("live = %d, want 8", k.LiveProcs())
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live after shutdown = %d, want 0", k.LiveProcs())
	}
}

func TestShutdownBeforeFirstDispatch(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Spawn("never", func(p *Proc) { ran = true })
	// Do not run the kernel at all: the proc has not had its first dispatch.
	k.Shutdown()
	if ran {
		t.Fatal("process body ran despite shutdown before dispatch")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live = %d, want 0", k.LiveProcs())
	}
}

func TestSpawnAfterShutdownPanics(t *testing.T) {
	k := NewKernel(1)
	k.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Spawn("x", func(p *Proc) {})
}

func TestDeterministicRandStreams(t *testing.T) {
	a1 := NewKernel(42).NewRand("net")
	a2 := NewKernel(42).NewRand("net")
	b := NewKernel(42).NewRand("other")
	same, diff := true, false
	for i := 0; i < 32; i++ {
		x, y, z := a1.Int63(), a2.Int63(), b.Int63()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Fatal("same (seed, name) produced different streams")
	}
	if !diff {
		t.Fatal("different names produced identical streams")
	}
}

func TestProcRandDeterministic(t *testing.T) {
	draw := func() []int64 {
		k := NewKernel(7)
		var vals []int64
		k.Spawn("p", func(p *Proc) {
			for i := 0; i < 8; i++ {
				vals = append(vals, p.Rand().Int63())
			}
		})
		k.Run()
		return vals
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("proc random stream not deterministic across identical runs")
		}
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel(1)
	e1 := k.At(10, func() {})
	k.At(20, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	e1.Cancel()
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

// Property: for any set of event offsets, events fire in nondecreasing time
// order and the final clock equals the maximum offset.
func TestEventOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		k := NewKernel(3)
		var fired []Time
		var max Time
		for _, o := range offsets {
			at := Time(o)
			if at > max {
				max = at
			}
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return k.Now() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sleeping a sequence of durations accumulates exactly.
func TestSleepAccumulationProperty(t *testing.T) {
	prop := func(steps []uint16) bool {
		k := NewKernel(5)
		var total Time
		var end Time
		k.Spawn("p", func(p *Proc) {
			for _, s := range steps {
				p.Sleep(Duration(s))
				total += Time(s)
			}
			end = p.Now()
		})
		k.Run()
		return end == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventScheduling(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.At(Time(i), func() {})
		k.step(-1)
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("switcher", func(p *Proc) {
		for {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.step(-1)
	}
	b.StopTimer()
	k.Shutdown()
}

// --- hot-path and shutdown regression tests ---------------------------------

func TestEventPoolDoesNotResurrectCancelledEvents(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	e := k.At(10, func() { fired++ })
	e.Cancel()
	k.Post(20, func() { fired += 10 })
	k.Run()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 (cancelled handle event must not fire)", fired)
	}
	// A late Cancel on the spent handle must stay a no-op even though the
	// kernel recycles event structs: handle-bearing events are never pooled.
	e.Cancel()
	k.Post(5, func() { fired += 100 })
	k.Run()
	if fired != 110 {
		t.Fatalf("fired = %d, want 110 (late Cancel corrupted a pooled event)", fired)
	}
}

func TestPooledEventsFireExactlyOnceAcrossReuse(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			k.Post(Duration(i), func() { count++ })
		}
		k.Run()
	}
	if count != 250 {
		t.Fatalf("count = %d, want 250", count)
	}
	if k.Stats().PoolReuses == 0 {
		t.Fatal("expected pooled event reuse across rounds")
	}
}

func TestSameTimeSchedulingPreservesFIFO(t *testing.T) {
	// Events created for the current instant take the FIFO ring; events for
	// the same timestamp created earlier sit in the heap.  The global
	// (time, seq) order must hold across both structures.
	k := NewKernel(1)
	var order []int
	k.At(5, func() { order = append(order, 1) })
	k.At(5, func() {
		order = append(order, 2)
		k.At(5, func() { order = append(order, 4) })
		k.PostAt(5, func() { order = append(order, 5) })
		k.Call(0, func(a any) { order = append(order, a.(int)) }, 6)
	})
	k.At(5, func() { order = append(order, 3) })
	k.Run()
	want := []int{1, 2, 3, 4, 5, 6}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Stats().FastPathEvents < 3 {
		t.Fatalf("fast-path events = %d, want >= 3", k.Stats().FastPathEvents)
	}
}

func TestStatsCounters(t *testing.T) {
	k := NewKernel(1)
	e := k.At(10, func() {})
	e.Cancel()
	k.Post(5, func() {})
	k.Spawn("p", func(p *Proc) { p.Sleep(1) })
	k.Run()
	st := k.Stats()
	if st.EventsScheduled < 4 {
		t.Fatalf("scheduled = %d, want >= 4", st.EventsScheduled)
	}
	if st.EventsFired < 3 {
		t.Fatalf("fired = %d, want >= 3", st.EventsFired)
	}
	if st.EventsCancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", st.EventsCancelled)
	}
	if st.ProcSwitches < 2 {
		t.Fatalf("proc switches = %d, want >= 2", st.ProcSwitches)
	}
}

// TestShutdownWithDeferredPause is the regression test for the kill
// handshake: a process whose unwind path re-enters the scheduler (a deferred
// Sleep here, i.e. it is mid-schedule rather than parked when the kill
// arrives) must not deadlock Shutdown or leak the process.
func TestShutdownWithDeferredPause(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("deferred-sleep", func(p *Proc) {
		defer p.Sleep(10) // runs while the proc is being killed
		for {
			p.Sleep(10)
		}
	})
	k.Spawn("deferred-block", func(p *Proc) {
		defer p.Block()
		for {
			p.Sleep(10)
		}
	})
	k.RunUntil(100)
	done := make(chan struct{})
	go func() {
		k.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown deadlocked on a process that re-entered the scheduler while unwinding")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs after shutdown = %d, want 0", k.LiveProcs())
	}
}

func TestShutdownMixedProcStates(t *testing.T) {
	k := NewKernel(1)
	var blocked *Proc
	blocked = k.Spawn("blocked", func(p *Proc) { p.Block() })
	k.Spawn("finished", func(p *Proc) {})
	k.Spawn("sleeping", func(p *Proc) {
		for {
			p.Sleep(7)
		}
	})
	k.RunUntil(50)
	k.Spawn("never-dispatched", func(p *Proc) { t.Error("never-dispatched proc ran") })
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs after shutdown = %d, want 0", k.LiveProcs())
	}
	k.Wake(blocked) // waking a dead proc stays a no-op
}

func BenchmarkPooledEventScheduling(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PostAt(Time(i), fn)
		k.step(-1)
	}
}

func BenchmarkSameTimeWakeup(b *testing.B) {
	// The Wake→dispatch path of a parked process: pooled event + FIFO ring.
	k := NewKernel(1)
	k.Spawn("blocker", func(p *Proc) {
		for {
			p.Block()
		}
	})
	k.step(-1) // first dispatch, parks the proc
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.procs[0].Wake()
		k.step(-1)
	}
	b.StopTimer()
	k.Shutdown()
}

// fakeLane is a minimal AuxQueue: deferred entries carrying real sequence
// numbers, executed through the kernel's drain hook.
type fakeLane struct {
	k       *Kernel
	entries []struct {
		at  Time
		seq uint64
		fn  func(at Time)
	}
	drained int
}

func (f *fakeLane) add(at Time, fn func(Time)) {
	f.entries = append(f.entries, struct {
		at  Time
		seq uint64
		fn  func(at Time)
	}{at, f.k.AllocSeq(), fn})
}

func (f *fakeLane) DrainBefore(at Time, seq uint64, deadline Time) bool {
	ran := false
	for {
		// Executing an entry may schedule a real kernel event ordered before
		// the remaining entries; tighten the limit like a real lane must.
		if kat, kseq, ok := f.k.NextEventKey(); ok && (kat < at || (kat == at && kseq < seq)) {
			at, seq = kat, kseq
		}
		best := -1
		for i, e := range f.entries {
			if e.at > deadline || !(e.at < at || (e.at == at && e.seq < seq)) {
				continue
			}
			if best < 0 || e.at < f.entries[best].at || (e.at == f.entries[best].at && e.seq < f.entries[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return ran
		}
		e := f.entries[best]
		f.entries = append(f.entries[:best], f.entries[best+1:]...)
		f.k.LaneDispatch(e.at, e.seq)
		f.k.NoteElided(1)
		f.drained++
		ran = true
		if e.fn != nil {
			e.fn(e.at)
		}
	}
}

func TestAuxQueueDrainOrdering(t *testing.T) {
	k := NewKernel(1)
	lane := &fakeLane{k: k}
	if err := k.SetAux(lane); err != nil {
		t.Fatal(err)
	}
	var order []string
	k.At(10, func() { order = append(order, "evt10") })
	k.At(30, func() { order = append(order, "evt30") })
	// Lane entries interleaved between kernel events; one at 20 schedules a
	// real event at 25, which must run before the lane entry at 27.
	lane.add(5, func(at Time) {
		order = append(order, "lane5")
		if k.Now() != 5 {
			t.Errorf("lane entry at 5 saw clock %d", int64(k.Now()))
		}
	})
	lane.add(20, func(at Time) {
		order = append(order, "lane20")
		k.At(25, func() { order = append(order, "evt25") })
	})
	lane.add(27, func(at Time) { order = append(order, "lane27") })
	k.Run()
	want := "lane5,evt10,lane20,evt25,lane27,evt30"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("drain order = %s, want %s", got, want)
	}
	if st := k.Stats(); st.EventsElided != 3 {
		t.Fatalf("EventsElided = %d, want 3", st.EventsElided)
	}
	if k.Now() != 30 {
		t.Fatalf("final clock %d, want 30", int64(k.Now()))
	}
}

func TestAuxQueueSameInstantTieBreak(t *testing.T) {
	k := NewKernel(1)
	lane := &fakeLane{k: k}
	if err := k.SetAux(lane); err != nil {
		t.Fatal(err)
	}
	var order []string
	// Allocation order fixes the tie-break at t=10: kernel event first (its
	// seq is allocated first), then the lane entry.
	k.At(10, func() { order = append(order, "evt") })
	lane.add(10, func(Time) { order = append(order, "lane") })
	k.Run()
	if len(order) != 2 || order[0] != "evt" || order[1] != "lane" {
		t.Fatalf("tie-break order = %v, want [evt lane]", order)
	}

	k2 := NewKernel(1)
	lane2 := &fakeLane{k: k2}
	if err := k2.SetAux(lane2); err != nil {
		t.Fatal(err)
	}
	order = nil
	lane2.add(10, func(Time) { order = append(order, "lane") })
	k2.At(10, func() { order = append(order, "evt") })
	k2.Run()
	if len(order) != 2 || order[0] != "lane" || order[1] != "evt" {
		t.Fatalf("tie-break order = %v, want [lane evt]", order)
	}
}

func TestAuxQueueRunUntilDeadline(t *testing.T) {
	k := NewKernel(1)
	lane := &fakeLane{k: k}
	if err := k.SetAux(lane); err != nil {
		t.Fatal(err)
	}
	var ran []int64
	lane.add(10, func(at Time) { ran = append(ran, int64(at)) })
	lane.add(50, func(at Time) { ran = append(ran, int64(at)) })
	lane.add(90, func(at Time) { ran = append(ran, int64(at)) })
	k.RunUntil(50)
	if len(ran) != 2 || ran[0] != 10 || ran[1] != 50 {
		t.Fatalf("in-deadline lane entries = %v, want [10 50]", ran)
	}
	if k.Now() != 50 {
		t.Fatalf("clock after RunUntil = %d, want 50", int64(k.Now()))
	}
	// A later drive picks up the remaining entry.
	k.RunUntil(100)
	if len(ran) != 3 || ran[2] != 90 {
		t.Fatalf("second window entries = %v, want trailing 90", ran)
	}
}

func TestSetAuxExclusive(t *testing.T) {
	k := NewKernel(1)
	a, b := &fakeLane{k: k}, &fakeLane{k: k}
	if err := k.SetAux(a); err != nil {
		t.Fatal(err)
	}
	if err := k.SetAux(b); err == nil {
		t.Fatal("second SetAux should fail while the first lane is attached")
	}
	if err := k.SetAux(nil); err != nil {
		t.Fatal(err)
	}
	if err := k.SetAux(b); err != nil {
		t.Fatalf("SetAux after detach: %v", err)
	}
}

func TestAllocSeqInterleavesWithEvents(t *testing.T) {
	k := NewKernel(1)
	s1 := k.AllocSeq()
	k.Post(5, func() {})
	s2 := k.AllocSeq()
	if !(s1 < s2) {
		t.Fatalf("AllocSeq not monotone: %d then %d", s1, s2)
	}
	at, seq, ok := k.NextEventKey()
	if !ok || at != 5 || !(seq > s1 && seq < s2) {
		t.Fatalf("NextEventKey = (%d, %d, %v), want event at 5 between %d and %d", int64(at), seq, ok, s1, s2)
	}
	if st := k.Stats(); st.EventsScheduled != 3 {
		t.Fatalf("EventsScheduled = %d, want 3 (two allocations + one post)", st.EventsScheduled)
	}
}

func TestPostGenChangesOnSchedule(t *testing.T) {
	k := NewKernel(1)
	g0 := k.PostGen()
	_ = k.AllocSeq() // lane-side allocation: no real event, gen unchanged
	if k.PostGen() != g0 {
		t.Fatal("AllocSeq must not bump PostGen")
	}
	k.Post(1, func() {})
	if k.PostGen() == g0 {
		t.Fatal("scheduling a real event must bump PostGen")
	}
}

func TestCurrentSeqTracksDispatch(t *testing.T) {
	k := NewKernel(1)
	var inside uint64
	k.At(3, func() { inside = k.CurrentSeq() })
	k.Run()
	if inside != 0 {
		// The first scheduled event has seq 0; CurrentSeq must report it.
		t.Fatalf("CurrentSeq inside first event = %d, want 0", inside)
	}
}
