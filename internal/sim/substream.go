package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
)

// Substream is a minimal deterministic random stream built on splitmix64.
// It exists for simulation hot paths that draw millions of variates: a draw
// is one 64-bit mix (a few arithmetic instructions, no heap state, no
// rejection loop), several times cheaper than math/rand, while staying fully
// reproducible for a fixed (kernel seed, name) pair.
//
// Substreams derive their state the same way Kernel.NewRand derives its
// seed — an FNV-64a hash of "seed/name" — so distinct names give independent
// streams.  The variate sequences differ from math/rand's for the same name;
// a client pinned to a byte-exact historical schedule (the network layer's
// strict oracle mode) must keep using NewRand.
type Substream struct {
	state uint64
}

// NewSubstream returns the deterministic substream identified by name.
func (k *Kernel) NewSubstream(name string) Substream {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", k.seed, name)
	return Substream{state: h.Sum64()}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (s *Substream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform variate in [0, n) for n > 0, using the unbiased*
// multiply-shift range reduction (*bias < 2^-64+lg n, far below anything a
// simulation statistic can resolve, and rejection-free so draw cost is
// constant).
func (s *Substream) Int63n(n int64) int64 {
	hi, _ := bits.Mul64(s.Uint64(), uint64(n))
	return int64(hi)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Substream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential variate with mean 1 via inversion.
func (s *Substream) ExpFloat64() float64 {
	return -math.Log(1 - s.Float64())
}
