package sim

import (
	"math"
	"math/bits"
	"strconv"
)

// splitmixGamma is the splitmix64 state increment.  The generator's state
// advances by exactly one gamma per draw, which is what makes Fill and
// Rewind possible: k draws ahead (or back) is a single multiply-add on the
// state, not a replay.
const splitmixGamma = 0x9e3779b97f4a7c15

// Substream is a minimal deterministic random stream built on splitmix64.
// It exists for simulation hot paths that draw millions of variates: a draw
// is one 64-bit mix (a few arithmetic instructions, no heap state, no
// rejection loop), several times cheaper than math/rand, while staying fully
// reproducible for a fixed (kernel seed, name) pair.
//
// Substreams derive their state the same way Kernel.NewRand derives its
// seed — an FNV-64a hash of "seed/name" — so distinct names give independent
// streams.  The variate sequences differ from math/rand's for the same name;
// a client pinned to a byte-exact historical schedule (the network layer's
// strict oracle mode) must keep using NewRand.
type Substream struct {
	state uint64
}

// FNV-64a parameters, spelled out so substream derivation can run inline on
// hot paths without a heap-allocated hash.Hash64.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvSeedPrefix hashes the "<seed>/" prefix every substream name is scoped
// under — byte-identical to FNV-64a over the fmt-rendered decimal seed, but
// with the digits staged in a stack buffer instead of a formatted string.
func fnvSeedPrefix(seed int64) uint64 {
	var buf [20]byte
	b := strconv.AppendInt(buf[:0], seed, 10)
	h := fnvOffset64
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return (h ^ '/') * fnvPrime64
}

// NewSubstream returns the deterministic substream identified by name.
func (k *Kernel) NewSubstream(name string) Substream {
	h := fnvSeedPrefix(k.seed)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime64
	}
	return Substream{state: h}
}

// NewSubstreamBytes is NewSubstream for callers that assemble the name in a
// reusable byte buffer: it derives the identical stream NewSubstream would
// for string(name), without materializing the string.  The network layer
// seeds one substream per flow this way; with names built in stack buffers
// the whole derivation is allocation-free.
func (k *Kernel) NewSubstreamBytes(name []byte) Substream {
	h := fnvSeedPrefix(k.seed)
	for _, c := range name {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return Substream{state: h}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (s *Substream) Uint64() uint64 {
	s.state += splitmixGamma
	return mix64(s.state)
}

// mix64 is the splitmix64 output function applied to one state value.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fill overwrites dst with the next len(dst) values of the stream — exactly
// the sequence len(dst) successive Uint64 calls would have produced.  Batch
// consumers (the network layer's train-fused walks) prefetch a block of raw
// draws in one pass, convert them with the U64* helpers below, and Rewind
// whatever they did not consume, so the stream position stays identical to a
// draw-by-draw caller's.
func (s *Substream) Fill(dst []uint64) {
	state := s.state
	for i := range dst {
		state += splitmixGamma
		dst[i] = mix64(state)
	}
	s.state = state
}

// Rewind steps the stream back n draws, un-doing the last n Uint64 (or
// Fill-delivered) values: the state moves by a fixed gamma per draw, so the
// position is a single multiply-subtract.  Rewinding past draws that were
// already consumed by a variate breaks reproducibility; only un-draw
// prefetched values that were never used.
func (s *Substream) Rewind(n int) {
	s.state -= uint64(n) * splitmixGamma
}

// U64Int63n maps one raw 64-bit draw to the uniform variate in [0, n) that
// Int63n derives from it, via the unbiased* multiply-shift range reduction
// (*bias < 2^-64+lg n, far below anything a simulation statistic can
// resolve, and rejection-free so draw cost is constant).
func U64Int63n(u uint64, n int64) int64 {
	hi, _ := bits.Mul64(u, uint64(n))
	return int64(hi)
}

// U64Float64 maps one raw 64-bit draw to the uniform variate in [0, 1) that
// Float64 derives from it.
func U64Float64(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// Int63n returns a uniform variate in [0, n) for n > 0.
func (s *Substream) Int63n(n int64) int64 {
	return U64Int63n(s.Uint64(), n)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Substream) Float64() float64 {
	return U64Float64(s.Uint64())
}

// ExpFloat64 returns an exponential variate with mean 1 via inversion.
func (s *Substream) ExpFloat64() float64 {
	return -math.Log(1 - s.Float64())
}
