package sim

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestSubstreamDerivation pins the inline FNV-64a seeding to the reference
// hash/fnv implementation it replaced, across seed signs and name shapes, and
// pins NewSubstreamBytes to NewSubstream: historical relaxed-mode schedules
// key every flow's variate sequence off this exact derivation, so it may
// never drift.
func TestSubstreamDerivation(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 1000, -1, -987654321, 1<<62 + 3} {
		k := NewKernel(seed)
		for _, name := range []string{"", "fill-test", "flow/17/bulk/3", "flow/0//-5"} {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d/%s", seed, name)
			want := h.Sum64()
			if got := k.NewSubstream(name).state; got != want {
				t.Fatalf("seed %d name %q: inline hash %#x, hash/fnv reference %#x", seed, name, got, want)
			}
			if got := k.NewSubstreamBytes([]byte(name)).state; got != want {
				t.Fatalf("seed %d name %q: NewSubstreamBytes %#x, NewSubstream %#x", seed, name, got, want)
			}
		}
	}
}

// TestSubstreamFillMatchesSequentialDraws pins the k-draw API's contract:
// Fill(dst) must deliver exactly the values len(dst) successive Uint64 calls
// produce, for any k, and the stream must continue identically afterwards.
// The relaxed network engine's train-fused walks rely on this to batch
// fabric-delay draws without perturbing the per-flow draw sequence.
func TestSubstreamFillMatchesSequentialDraws(t *testing.T) {
	k := NewKernel(42)
	for _, draws := range []int{1, 2, 7, 64, 257} {
		seq := k.NewSubstream("fill-test")
		bat := k.NewSubstream("fill-test")
		want := make([]uint64, draws)
		for i := range want {
			want[i] = seq.Uint64()
		}
		got := make([]uint64, draws)
		bat.Fill(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: Fill[%d] = %#x, sequential draw = %#x", draws, i, got[i], want[i])
			}
		}
		// Continuation after the batch must match continuation after the
		// sequential draws.
		for i := 0; i < 5; i++ {
			if g, w := bat.Uint64(), seq.Uint64(); g != w {
				t.Fatalf("k=%d: draw %d after Fill = %#x, after sequential = %#x", draws, i, g, w)
			}
		}
	}
}

// TestSubstreamRewind pins the un-draw contract: rewinding n draws restores
// the stream to the position before them, so a prefetched-but-unused tail of
// a Fill block can be returned without desynchronizing later consumers.
func TestSubstreamRewind(t *testing.T) {
	k := NewKernel(7)
	s := k.NewSubstream("rewind-test")
	ref := s // value copy: an untouched stream at the same position
	buf := make([]uint64, 16)
	s.Fill(buf)
	s.Rewind(len(buf) - 4) // consume 4, return 12
	for i := 0; i < 4; i++ {
		if w := ref.Uint64(); buf[i] != w {
			t.Fatalf("prefetched draw %d = %#x, want %#x", i, buf[i], w)
		}
	}
	for i := 0; i < 20; i++ {
		if g, w := s.Uint64(), ref.Uint64(); g != w {
			t.Fatalf("draw %d after Rewind = %#x, want %#x", i, g, w)
		}
	}
}

// TestSubstreamConversionHelpers pins the U64* helpers to the method
// arithmetic they factor out: a buffered consumer converting raw draws must
// produce bit-identical variates to the draw-by-draw methods.
func TestSubstreamConversionHelpers(t *testing.T) {
	k := NewKernel(11)
	a := k.NewSubstream("conv-test")
	b := k.NewSubstream("conv-test")
	for i := 0; i < 1000; i++ {
		if g, w := U64Int63n(b.Uint64(), 241), a.Int63n(241); g != w {
			t.Fatalf("Int63n draw %d: helper %d, method %d", i, g, w)
		}
		if g, w := U64Float64(b.Uint64()), a.Float64(); g != w {
			t.Fatalf("Float64 draw %d: helper %v, method %v", i, g, w)
		}
	}
}
