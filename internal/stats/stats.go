// Package stats provides the statistical primitives used by the active
// measurement methodology: online descriptive statistics, fixed-bin latency
// histograms (empirical PDFs), interval and PDF overlap measures used by the
// look-up-table models, quantiles and box-plot summaries, and least-squares
// linear fits used to summarize degradation curves.
package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Accumulator collects running mean and variance using Welford's algorithm,
// plus min and max.  The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every value of xs into the accumulator.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of samples seen.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// SampleVariance returns the unbiased sample variance.
func (a *Accumulator) SampleVariance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Var    float64
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	var a Accumulator
	a.AddAll(xs)
	return Summary{
		N:      a.N(),
		Mean:   a.Mean(),
		StdDev: a.StdDev(),
		Var:    a.Variance(),
		Min:    a.Min(),
		Max:    a.Max(),
	}
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return Summarize(xs).StdDev }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks.  It returns 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxPlot summarizes a sample by its quartiles, as used for the per-model
// error summary of Fig. 9.
type BoxPlot struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	N      int
}

// BoxSummary computes the box-plot summary of xs.
func BoxSummary(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	return BoxPlot{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		N:      len(xs),
	}
}

// String renders the box summary compactly.
func (b BoxPlot) String() string {
	return fmt.Sprintf("min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
}

// Interval is a closed interval [Lo, Hi] on the real line.
type Interval struct {
	Lo, Hi float64
}

// MeanStdInterval builds the interval [mean-std, mean+std] used by the
// AverageStDevLT model.
func MeanStdInterval(mean, std float64) Interval {
	return Interval{Lo: mean - std, Hi: mean + std}
}

// Length returns the interval's length (0 for degenerate intervals).
func (iv Interval) Length() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Overlap returns the length of the intersection of two intervals.
func (iv Interval) Overlap(other Interval) float64 {
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Histogram is a fixed-bin histogram over [Lo, Hi).  Samples outside the
// range are clamped into the first/last bin so no probe measurement is lost;
// this mirrors how the paper reports "packets taking significantly longer"
// inside the last visible bucket.
type Histogram struct {
	Lo, Hi float64
	counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int, bins)}, nil
}

// MustHistogram is NewHistogram that panics on invalid parameters; intended
// for statically-known configurations.
func MustHistogram(lo, hi float64, bins int) *Histogram {
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		panic(err)
	}
	return h
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.counts)) }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Add folds a sample into the histogram.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / h.BinWidth())
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// AddAll folds every sample of xs into the histogram.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// Count returns the raw count of bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Counts returns a copy of the raw bin counts.
func (h *Histogram) Counts() []int {
	return append([]int(nil), h.counts...)
}

// histogramJSON is the wire form of a Histogram; the sample total is
// derivable from the counts and therefore not stored.
type histogramJSON struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int   `json:"counts"`
}

// MarshalJSON encodes the histogram, including its unexported bin counts, so
// measurement artifacts containing histograms can be persisted.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Lo: h.Lo, Hi: h.Hi, Counts: h.Counts()})
}

// UnmarshalJSON restores a histogram persisted by MarshalJSON, validating
// the range and bin shape so corrupt artifacts surface as errors instead of
// panics in later bin arithmetic.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Counts) == 0 {
		return errors.New("stats: histogram JSON has no bins")
	}
	if !(w.Hi > w.Lo) {
		return fmt.Errorf("stats: histogram JSON has invalid range [%v, %v)", w.Lo, w.Hi)
	}
	total := 0
	for _, c := range w.Counts {
		if c < 0 {
			return fmt.Errorf("stats: histogram JSON has negative bin count %d", c)
		}
		total += c
	}
	h.Lo, h.Hi = w.Lo, w.Hi
	h.counts = w.Counts
	h.total = total
	return nil
}

// Frequencies returns the fraction of samples per bin (sums to 1 for a
// non-empty histogram).
func (h *Histogram) Frequencies() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Densities returns the empirical probability density per bin (frequency
// divided by bin width), i.e. a piecewise-constant PDF.
func (h *Histogram) Densities() []float64 {
	out := h.Frequencies()
	w := h.BinWidth()
	for i := range out {
		out[i] /= w
	}
	return out
}

// Clone returns a deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{Lo: h.Lo, Hi: h.Hi, counts: append([]int(nil), h.counts...), total: h.total}
	return c
}

// OverlapProduct computes the integral of the product of the two empirical
// PDFs, the similarity measure used by the PDFLT model:
//
//	∫ f_B(x) f_Ci(x) dx ≈ Σ_bins d_B[i] d_Ci[i] Δx
//
// Both histograms must share the same binning.
func OverlapProduct(a, b *Histogram) (float64, error) {
	if a.Lo != b.Lo || a.Hi != b.Hi || a.Bins() != b.Bins() {
		return 0, errors.New("stats: histograms have different binning")
	}
	da, db := a.Densities(), b.Densities()
	w := a.BinWidth()
	sum := 0.0
	for i := range da {
		sum += da[i] * db[i] * w
	}
	return sum, nil
}

// LinearFit holds the result of an ordinary least-squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64
	N         int
}

// FitLinear performs an ordinary least-squares fit of ys against xs.  It
// returns an error when fewer than two points are supplied or all x values
// coincide.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, errors.New("stats: need at least two points to fit a line")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate fit, all x values equal")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2, N: n}, nil
}

// Eval evaluates the fitted line at x.
func (f LinearFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// MeanAbsError returns the mean of |a[i]-b[i]|.
func MeanAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(a) == 0 {
		return 0, nil
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// FractionWithin returns the fraction of |a[i]-b[i]| values that are <= tol.
func FractionWithin(a, b []float64, tol float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(a) == 0 {
		return 0, nil
	}
	n := 0
	for i := range a {
		if math.Abs(a[i]-b[i]) <= tol {
			n++
		}
	}
	return float64(n) / float64(len(a)), nil
}

// Interpolator performs piecewise-linear interpolation over a set of (x, y)
// points, extrapolating flat beyond the extremes.  It is used to turn the
// discrete utilization→degradation measurements of the Compression
// experiments into the continuous mapping p_A(u) required by the queue-model
// predictor.
type Interpolator struct {
	xs []float64
	ys []float64
}

// NewInterpolator builds an interpolator from the given points.  Points are
// sorted by x; duplicate x values are averaged.
func NewInterpolator(xs, ys []float64) (*Interpolator, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) == 0 {
		return nil, errors.New("stats: interpolator needs at least one point")
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	var ux, uy []float64
	i := 0
	for i < len(pts) {
		j := i
		sum := 0.0
		for j < len(pts) && pts[j].x == pts[i].x {
			sum += pts[j].y
			j++
		}
		ux = append(ux, pts[i].x)
		uy = append(uy, sum/float64(j-i))
		i = j
	}
	return &Interpolator{xs: ux, ys: uy}, nil
}

// Eval evaluates the interpolant at x.
func (ip *Interpolator) Eval(x float64) float64 {
	xs, ys := ip.xs, ip.ys
	if x <= xs[0] {
		return ys[0]
	}
	n := len(xs)
	if x >= xs[n-1] {
		return ys[n-1]
	}
	i := sort.SearchFloat64s(xs, x)
	if xs[i] == x {
		return ys[i]
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	frac := (x - x0) / (x1 - x0)
	return y0 + frac*(y1-y0)
}

// Domain returns the smallest and largest x of the interpolation points.
func (ip *Interpolator) Domain() (lo, hi float64) { return ip.xs[0], ip.xs[len(ip.xs)-1] }
