package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if !almostEqual(a.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v", a.Variance())
	}
	if !almostEqual(a.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if !almostEqual(a.SampleVariance(), 4*8.0/7.0, 1e-12) {
		t.Fatalf("SampleVariance = %v", a.SampleVariance())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", a.Mean(), a.Variance())
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Fatal("single sample min/max wrong")
	}
}

func TestSummarizeMatchesAccumulator(t *testing.T) {
	xs := []float64{1.5, 2.5, 3.5, 10, -2}
	s := Summarize(xs)
	var a Accumulator
	a.AddAll(xs)
	if s.N != a.N() || s.Mean != a.Mean() || s.StdDev != a.StdDev() || s.Min != a.Min() || s.Max != a.Max() {
		t.Fatalf("Summarize mismatch: %+v", s)
	}
}

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean wrong")
	}
	if !almostEqual(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Fatal("StdDev wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) != 0")
	}
	// Interpolated case.
	if got := Quantile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("interpolated quantile = %v", got)
	}
	// Input must not be modified.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMedianAndBoxSummary(t *testing.T) {
	xs := []float64{7, 1, 3, 9, 5}
	if Median(xs) != 5 {
		t.Fatalf("Median = %v", Median(xs))
	}
	b := BoxSummary(xs)
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.N != 5 {
		t.Fatalf("BoxSummary = %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Fatalf("quartiles = %v/%v", b.Q1, b.Q3)
	}
	if BoxSummary(nil).N != 0 {
		t.Fatal("empty box summary should have N=0")
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{0, 10}
	cases := []struct {
		b    Interval
		want float64
	}{
		{Interval{2, 5}, 3},
		{Interval{-5, 3}, 3},
		{Interval{8, 20}, 2},
		{Interval{10, 20}, 0},
		{Interval{-10, -1}, 0},
		{Interval{0, 10}, 10},
	}
	for _, c := range cases {
		if got := a.Overlap(c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Overlap(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlap(a); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Overlap not symmetric for %v", c.b)
		}
	}
	if (Interval{5, 5}).Length() != 0 {
		t.Fatal("degenerate interval length != 0")
	}
	iv := MeanStdInterval(10, 2)
	if iv.Lo != 8 || iv.Hi != 12 {
		t.Fatalf("MeanStdInterval = %+v", iv)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := MustHistogram(0, 10, 10)
	if h.Bins() != 10 || h.BinWidth() != 1 {
		t.Fatalf("bins=%d width=%v", h.Bins(), h.BinWidth())
	}
	h.AddAll([]float64{0.5, 1.5, 1.7, 9.9, -3, 42})
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	// -3 clamps into bin 0, 42 clamps into bin 9.
	if h.Count(0) != 2 {
		t.Fatalf("bin 0 count = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 2 {
		t.Fatalf("bin 1 count = %d, want 2", h.Count(1))
	}
	if h.Count(9) != 2 {
		t.Fatalf("bin 9 count = %d, want 2", h.Count(9))
	}
	freqs := h.Frequencies()
	sum := 0.0
	for _, f := range freqs {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("frequencies sum to %v", sum)
	}
	if got := h.BinCenter(0); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestHistogramDensitiesIntegrateToOne(t *testing.T) {
	h := MustHistogram(1, 11, 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(1 + rng.Float64()*10)
	}
	d := h.Densities()
	integral := 0.0
	for _, v := range d {
		integral += v * h.BinWidth()
	}
	if !almostEqual(integral, 1, 1e-9) {
		t.Fatalf("density integral = %v", integral)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("expected error for 0 bins")
	}
	if _, err := NewHistogram(5, 5, 4); err == nil {
		t.Fatal("expected error for empty range")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustHistogram should panic on invalid input")
		}
	}()
	MustHistogram(1, 0, 3)
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := MustHistogram(0, 20, 8)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) * 0.3)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, &back) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", h, &back)
	}
	for _, corrupt := range []string{
		`{"lo":0,"hi":20,"counts":[]}`,
		`{"lo":20,"hi":0,"counts":[1]}`,
		`{"lo":0,"hi":20,"counts":[-1]}`,
		`not json`,
	} {
		if err := json.Unmarshal([]byte(corrupt), &back); err == nil {
			t.Fatalf("corrupt histogram %q accepted", corrupt)
		}
	}
}

func TestHistogramCloneIndependence(t *testing.T) {
	h := MustHistogram(0, 10, 5)
	h.Add(1)
	c := h.Clone()
	c.Add(2)
	if h.Total() != 1 || c.Total() != 2 {
		t.Fatalf("clone not independent: %d/%d", h.Total(), c.Total())
	}
}

func TestOverlapProduct(t *testing.T) {
	a := MustHistogram(0, 10, 10)
	b := MustHistogram(0, 10, 10)
	// Identical concentrated distributions: overlap = density^2 * width summed
	// over the single occupied bin = (1/1)^2*1 = 1.
	a.Add(2.5)
	b.Add(2.5)
	got, err := OverlapProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("overlap of identical delta = %v", got)
	}
	// Disjoint distributions overlap 0.
	c := MustHistogram(0, 10, 10)
	c.Add(7.5)
	got, err = OverlapProduct(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("overlap of disjoint = %v", got)
	}
	// Mismatched binning is an error.
	d := MustHistogram(0, 20, 10)
	if _, err := OverlapProduct(a, d); err == nil {
		t.Fatal("expected binning error")
	}
}

func TestOverlapProductPrefersCloserDistribution(t *testing.T) {
	// The PDFLT model relies on the product integral being larger for more
	// similar distributions.
	rng := rand.New(rand.NewSource(2))
	mk := func(mean float64) *Histogram {
		h := MustHistogram(0, 20, 40)
		for i := 0; i < 5000; i++ {
			h.Add(mean + rng.NormFloat64())
		}
		return h
	}
	target := mk(5)
	near := mk(5.5)
	far := mk(12)
	on, _ := OverlapProduct(target, near)
	of, _ := OverlapProduct(target, far)
	if on <= of {
		t.Fatalf("overlap(near)=%v should exceed overlap(far)=%v", on, of)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 3, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", f.R2)
	}
	if !almostEqual(f.Eval(10), 23, 1e-12) {
		t.Fatalf("Eval(10) = %v", f.Eval(10))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for constant x")
	}
}

func TestMeanAbsErrorAndFractionWithin(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 2, 5, 0}
	mae, err := MeanAbsError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mae, (1+0+2+4)/4.0, 1e-12) {
		t.Fatalf("MAE = %v", mae)
	}
	fw, err := FractionWithin(a, b, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fw, 0.5, 1e-12) {
		t.Fatalf("FractionWithin = %v", fw)
	}
	if _, err := MeanAbsError(a, b[:2]); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := FractionWithin(a, b[:2], 1); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if v, _ := MeanAbsError(nil, nil); v != 0 {
		t.Fatal("empty MAE != 0")
	}
}

func TestInterpolator(t *testing.T) {
	ip, err := NewInterpolator([]float64{10, 0, 20}, []float64{100, 0, 400})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-5, 0},   // flat extrapolation low
		{0, 0},    // exact point
		{5, 50},   // interpolated
		{10, 100}, // exact point
		{15, 250}, // interpolated
		{25, 400}, // flat extrapolation high
	}
	for _, c := range cases {
		if got := ip.Eval(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	lo, hi := ip.Domain()
	if lo != 0 || hi != 20 {
		t.Fatalf("domain = [%v, %v]", lo, hi)
	}
}

func TestInterpolatorDuplicateXAveraged(t *testing.T) {
	ip, err := NewInterpolator([]float64{1, 1, 2}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := ip.Eval(1); !almostEqual(got, 15, 1e-12) {
		t.Fatalf("duplicate x not averaged: %v", got)
	}
}

func TestInterpolatorErrors(t *testing.T) {
	if _, err := NewInterpolator(nil, nil); err == nil {
		t.Fatal("expected error for empty points")
	}
	if _, err := NewInterpolator([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

// Property: Welford accumulator agrees with the naive two-pass formulas.
func TestAccumulatorMatchesNaiveProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 8.0
		}
		var a Accumulator
		a.AddAll(xs)
		mean := Mean(xs)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		naiveVar := varSum / float64(len(xs))
		return almostEqual(a.Mean(), mean, 1e-6) && almostEqual(a.Variance(), naiveVar, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []int16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		s := Summarize(xs)
		return v1 <= v2+1e-9 && v1 >= s.Min-1e-9 && v2 <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram frequencies always sum to 1 (non-empty) and counts
// equal the number of samples.
func TestHistogramConservationProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		h := MustHistogram(-100, 100, 17)
		for _, r := range raw {
			h.Add(float64(r))
		}
		if h.Total() != len(raw) {
			return false
		}
		if len(raw) == 0 {
			return true
		}
		sum := 0.0
		for _, f := range h.Frequencies() {
			sum += f
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interval overlap is symmetric and bounded by each length.
func TestIntervalOverlapProperty(t *testing.T) {
	prop := func(a1, a2, b1, b2 int16) bool {
		ia := Interval{math.Min(float64(a1), float64(a2)), math.Max(float64(a1), float64(a2))}
		ib := Interval{math.Min(float64(b1), float64(b2)), math.Max(float64(b1), float64(b2))}
		o1, o2 := ia.Overlap(ib), ib.Overlap(ia)
		return o1 == o2 && o1 <= ia.Length()+1e-9 && o1 <= ib.Length()+1e-9 && o1 >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the interpolator passes through every (deduplicated) input point
// and stays within [minY, maxY].
func TestInterpolatorBoundedProperty(t *testing.T) {
	prop := func(raw []uint8, probe uint8) bool {
		if len(raw) < 1 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(i)
			ys[i] = float64(r)
		}
		ip, err := NewInterpolator(xs, ys)
		if err != nil {
			return false
		}
		s := Summarize(ys)
		v := ip.Eval(float64(probe) / 4.0)
		return v >= s.Min-1e-9 && v <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Add(float64(i % 1000))
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := MustHistogram(0, 1000, 64)
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 1000))
	}
}
