package stats

import (
	"fmt"
	"math"
	"sort"
)

// Two-sample distribution comparison for the statistical-equivalence gates.
//
// The schedule-relaxed simulator (netsim relaxed mode) is deterministic per
// seed but not byte-identical to the strict golden oracle; the contract it
// must honor is distributional — latency and slowdown samples drawn from the
// two modes come from the same population.  The Kolmogorov–Smirnov statistic
// is the natural gate: it is nonparametric, sensitive to both location and
// shape, and has a closed-form critical value, so a test can state "reject
// equality at level α" without tabulated constants.

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) - F_b(x)|, the maximum gap between the samples'
// empirical CDFs.  Both samples must be non-empty; inputs are not modified.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic on empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Advance past ties as a block so the CDF gap is evaluated between
		// distinct support points, never mid-step.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		gap := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if gap > d {
			d = gap
		}
	}
	return d
}

// KSCritical returns the asymptotic critical value for the two-sample KS
// statistic at significance level alpha: c(α)·sqrt((n+m)/(n·m)) with
// c(α) = sqrt(-ln(α/2)/2).  D above this value rejects the hypothesis that
// the samples share a distribution at level α.
func KSCritical(n, m int, alpha float64) float64 {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("stats: KSCritical with sample sizes %d, %d", n, m))
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: KSCritical with alpha %g outside (0, 1)", alpha))
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}

// KSReport is the outcome of a two-sample equivalence check.
type KSReport struct {
	D        float64 // observed KS statistic
	Critical float64 // rejection threshold at the requested level
	Alpha    float64
	Na, Nb   int
}

// Equivalent reports whether the samples passed (D below the critical
// value — equality was NOT rejected at level alpha).
func (r KSReport) Equivalent() bool { return r.D <= r.Critical }

func (r KSReport) String() string {
	verdict := "equivalent"
	if !r.Equivalent() {
		verdict = "DIVERGENT"
	}
	return fmt.Sprintf("KS D=%.4f critical=%.4f (alpha=%g, n=%d/%d): %s",
		r.D, r.Critical, r.Alpha, r.Na, r.Nb, verdict)
}

// KSCompare runs the two-sample KS test at level alpha and returns the full
// report.  A small alpha makes the gate LENIENT (harder to reject); the
// equivalence tests use alpha = 0.001 so only gross distributional drift —
// not seed-to-seed noise — trips them.
func KSCompare(a, b []float64, alpha float64) KSReport {
	return KSReport{
		D:        KSStatistic(a, b),
		Critical: KSCritical(len(a), len(b), alpha),
		Alpha:    alpha,
		Na:       len(a),
		Nb:       len(b),
	}
}

// QuantileBand checks scalar summaries instead of full samples: it reports
// whether every requested quantile of a and b agrees within tol, where tol
// is a fraction of b's interquartile range (falling back to |median| when
// the IQR is 0).  It is the right gate for small sample sets — experiment
// summary tables — where a KS test has no power.
func QuantileBand(a, b []float64, quantiles []float64, tol float64) error {
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("stats: QuantileBand on empty sample (n=%d, m=%d)", len(a), len(b))
	}
	scale := Quantile(b, 0.75) - Quantile(b, 0.25)
	if scale == 0 {
		scale = math.Abs(Median(b))
	}
	if scale == 0 {
		scale = 1
	}
	for _, q := range quantiles {
		qa, qb := Quantile(a, q), Quantile(b, q)
		if diff := math.Abs(qa - qb); diff > tol*scale {
			return fmt.Errorf("stats: q%.2f differs by %.4g (a=%.4g b=%.4g, band=%.4g)",
				q, diff, qa, qb, tol*scale)
		}
	}
	return nil
}
