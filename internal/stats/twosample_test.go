package stats

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the tests need no seeding policy.
type lcg struct{ s uint64 }

func (r *lcg) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / (1 << 53)
}

func (r *lcg) normal() float64 {
	// Box–Muller; one value per call is plenty here.
	u1, u2 := r.next(), r.next()
	if u1 < 1e-15 {
		u1 = 1e-15
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func TestKSStatisticIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(a, a); d != 0 {
		t.Fatalf("KS of a sample against itself = %g, want 0", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %g, want 1", d)
	}
}

func TestKSStatisticHandlesTies(t *testing.T) {
	a := []float64{1, 1, 1, 2}
	b := []float64{1, 1, 2, 2}
	// After the tied block at 1: F_a = 3/4, F_b = 2/4 → D = 1/4.
	if d := KSStatistic(a, b); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("KS with ties = %g, want 0.25", d)
	}
}

func TestKSCompareSameDistributionPasses(t *testing.T) {
	r := &lcg{s: 7}
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = r.normal()
	}
	for i := range b {
		b[i] = r.normal()
	}
	rep := KSCompare(a, b, 0.001)
	if !rep.Equivalent() {
		t.Fatalf("same-distribution samples rejected: %s", rep)
	}
}

func TestKSCompareShiftedDistributionFails(t *testing.T) {
	r := &lcg{s: 7}
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = r.normal()
	}
	for i := range b {
		b[i] = r.normal() + 1 // one-sigma location shift
	}
	rep := KSCompare(a, b, 0.001)
	if rep.Equivalent() {
		t.Fatalf("one-sigma shift not detected: %s", rep)
	}
}

func TestKSCriticalShrinksWithSampleSize(t *testing.T) {
	small := KSCritical(50, 50, 0.01)
	large := KSCritical(5000, 5000, 0.01)
	if large >= small {
		t.Fatalf("critical value did not shrink: n=50 → %g, n=5000 → %g", small, large)
	}
}

func TestQuantileBand(t *testing.T) {
	r := &lcg{s: 3}
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = 10 + r.normal()
	}
	for i := range b {
		b[i] = 10 + r.normal()
	}
	if err := QuantileBand(a, b, []float64{0.25, 0.5, 0.75}, 0.5); err != nil {
		t.Fatalf("same-distribution quantiles rejected: %v", err)
	}
	for i := range a {
		a[i] += 5
	}
	if err := QuantileBand(a, b, []float64{0.5}, 0.5); err == nil {
		t.Fatal("five-IQR median shift not detected")
	}
}
