package telemetry

import (
	"sync/atomic"
	"time"
)

// Progress tracks a campaign's live state for the /progress endpoint: the
// current phase (experiment name), how many campaign tasks have completed
// out of how many were planned, and wall-clock throughput derived from the
// registry's kernel counters.  All fields are atomics — updating progress
// from a campaign worker is wait-free and never observable in simulation
// output.
type Progress struct {
	phase   atomic.Value // string
	planned atomic.Int64
	done    atomic.Int64
	startNS atomic.Int64 // wall-clock campaign start (UnixNano); 0 = not started
}

// defaultProgress is the process-wide tracker the CLIs expose.
var defaultProgress = &Progress{}

// DefaultProgress returns the process-wide progress tracker.
func DefaultProgress() *Progress { return defaultProgress }

// Start stamps the campaign's wall-clock start and clears task counts.
func (p *Progress) Start() {
	p.startNS.Store(time.Now().UnixNano())
	p.planned.Store(0)
	p.done.Store(0)
	p.phase.Store("")
}

// SetPhase names the campaign phase (the experiment currently running).
func (p *Progress) SetPhase(name string) { p.phase.Store(name) }

// AddPlanned registers n more campaign tasks (runs fanned out by the
// parallel runner).
func (p *Progress) AddPlanned(n int64) { p.planned.Add(n) }

// MarkDone records one completed campaign task.
func (p *Progress) MarkDone() { p.done.Add(1) }

// Snapshot is the JSON shape of /progress.
type ProgressSnapshot struct {
	Phase          string  `json:"phase"`
	TasksDone      int64   `json:"tasks_done"`
	TasksPlanned   int64   `json:"tasks_planned"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// EventsFired/EventsElided mirror the registry's kernel counters at
	// snapshot time; EventsPerSecond is their wall-clock rate since Start.
	EventsFired     int64   `json:"events_fired"`
	EventsElided    int64   `json:"events_elided"`
	EventsPerSecond float64 `json:"events_per_second"`
}

// Snapshot freezes the progress against the registry's kernel counters.
func (p *Progress) Snapshot(r *Registry) ProgressSnapshot {
	s := ProgressSnapshot{
		TasksDone:    p.done.Load(),
		TasksPlanned: p.planned.Load(),
		EventsFired:  r.CounterValue("swprobe_kernel_events_fired_total"),
		EventsElided: r.CounterValue("swprobe_kernel_events_elided_total"),
	}
	if ph, ok := p.phase.Load().(string); ok {
		s.Phase = ph
	}
	if start := p.startNS.Load(); start > 0 {
		s.ElapsedSeconds = time.Since(time.Unix(0, start)).Seconds()
		if s.ElapsedSeconds > 0 {
			s.EventsPerSecond = float64(s.EventsFired+s.EventsElided) / s.ElapsedSeconds
		}
	}
	return s
}
