package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): per family a # HELP and # TYPE comment, then one
// line per series.  Histograms expand into _bucket{le=...}, _sum and _count
// series with cumulative bucket counts.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Type); err != nil {
			return err
		}
		for _, s := range fam.Samples {
			if fam.Type == TypeHistogram {
				if err := writeHistogram(w, fam.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam.Name, formatLabels(s.Labels, "", ""), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s Sample) error {
	h := s.Hist
	for i, b := range h.Bounds {
		le := strconv.FormatFloat(b, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(s.Labels, "le", le), h.Counts[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(s.Labels, "le", "+Inf"), h.CountInf); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(s.Labels, "", ""), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.Labels, "", ""), h.CountInf)
	return err
}

// formatLabels renders {a="x",b="y"}, optionally appending one extra pair
// (the histogram "le" bound); an empty set renders as nothing.
func formatLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects: integral
// values without an exponent or decimal point, everything else in Go's
// shortest float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
