package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry and progress tracker over HTTP for live
// inspection of long campaigns:
//
//	/metrics      Prometheus text exposition of the registry
//	/progress     JSON campaign progress (phase, tasks, events/s)
//	/debug/pprof  the standard Go profiling endpoints
//
// Serving is read-only observation: handlers snapshot atomics, never touch
// simulation state, and the listener lives on its own goroutines, so a
// scrape cannot perturb a running campaign.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer binds addr (host:port; :0 picks a free port) and starts serving
// the registry and progress tracker.  The returned server reports its bound
// address via Addr and is shut down with Close.
func NewServer(addr string, reg *Registry, prog *Progress) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(prog.Snapshot(reg))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "swprobe telemetry: /metrics /progress /debug/pprof\n")
	})
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
