// Package telemetry is the simulator's observability substrate: one process
// holds one metrics Registry of named, labeled series (counters, gauges,
// histograms) with cheap atomic updates, plus a structured trace exporter
// and a campaign progress tracker, all servable over HTTP (see server.go).
//
// The package replaces the bespoke per-subsystem stat structs that used to
// be threaded by hand from the kernel up to the CLIs: the aggregation layers
// (core.SimUsage, the engine's cache accounting, the scheduler's per-policy
// deltas) now write registry series, and the human-readable one-shot lines
// the CLIs print are renderings of registry snapshots.  Hot per-run structs
// (sim.Stats, netsim.Stats) stay plain local counters — a simulation run is
// single-threaded and its counters are folded into the registry once, when
// the run is recorded — so observation adds nothing to the event loop.
//
// The non-negotiable contract: telemetry observes, it never participates.
// No registry or trace operation draws from any random stream, none of the
// knobs (listen address, trace file, sampling rate) joins a RunSpec
// fingerprint, and campaign outputs are byte-identical with telemetry on or
// off.  That contract is enforced by tests in this package and by the
// byte-identity-under-observation tests in cmd/swprobe.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the series kinds for exposition.
type MetricType uint8

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE token.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metrictype(%d)", uint8(t))
	}
}

// Label is one name=value pair of a series.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing int64 series.  The zero value is
// usable but unregistered; obtain counters through Registry.Counter so they
// appear in snapshots.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0 for the series to stay
// monotonic; Add does not enforce it because Reset legitimately rewinds).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 series that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add offsets the gauge by d (compare-and-swap loop; gauges are low-rate).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations <= its upper bound, plus an implicit +Inf
// bucket).  Observations are atomic; bounds are immutable after creation.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Int64
	inf    atomic.Int64
	sum    Gauge // observation sum (atomic float64 add)
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~20): a linear scan beats binary search on such
	// short slices and keeps the hot path branch-predictable.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations <= Bounds[i] (cumulative, Prometheus-style).  CountInf is
	// the total including observations above every bound.
	Bounds   []float64
	Counts   []int64 // cumulative per bound
	CountInf int64
	Sum      float64
	Count    int64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)),
		Sum:    h.sum.Value(),
		Count:  h.count.Load(),
	}
	cum := int64(0)
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.CountInf = cum + h.inf.Load()
	return s
}

// Sample is one series' frozen value inside a snapshot.
type Sample struct {
	Labels []Label
	Value  float64            // counter (as float) or gauge value
	Hist   *HistogramSnapshot // set for histograms only
}

// FamilySnapshot is one metric family (a name with its help text, type and
// every labeled series) frozen for exposition.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// family holds every series of one metric name.
type family struct {
	name, help string
	typ        MetricType
	bounds     []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*seriesEntry // key: canonical label encoding
}

type seriesEntry struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds this process's metric families.  All methods are safe for
// concurrent use; series handles returned by Counter/Gauge/Histogram are
// get-or-create and should be cached by hot callers so updates are a single
// atomic add.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order for stable exposition
}

// NewRegistry returns an empty registry.  Most code uses the process-wide
// Default registry; private registries exist so components under test can
// count in isolation.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry the CLIs expose.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// labelKey canonically encodes a label set (pairs sorted by name).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

// pairsToLabels converts variadic "name, value, name, value" arguments into
// a sorted label slice; it panics on an odd count (a programming error at a
// registration site, never data-dependent).
func pairsToLabels(pairs []string) []Label {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label pair count %d", len(pairs)))
	}
	labels := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		labels = append(labels, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	return labels
}

// getFamily returns the family for name, creating it with the given type and
// help on first registration.  Re-registering an existing name with a
// different type panics (two subsystems claiming one name differently is a
// programming error worth failing loudly on).
func (r *Registry) getFamily(name, help string, typ MetricType, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, series: make(map[string]*seriesEntry)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

// Counter returns the counter series name{labels}, creating it on first use.
// labels are "name, value" pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.getFamily(name, help, TypeCounter, nil)
	ls := pairsToLabels(labels)
	key := labelKey(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.series[key]
	if !ok {
		e = &seriesEntry{labels: ls, c: &Counter{}}
		f.series[key] = e
	}
	return e.c
}

// Gauge returns the gauge series name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.getFamily(name, help, TypeGauge, nil)
	ls := pairsToLabels(labels)
	key := labelKey(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.series[key]
	if !ok {
		e = &seriesEntry{labels: ls, g: &Gauge{}}
		f.series[key] = e
	}
	return e.g
}

// Histogram returns the histogram series name{labels} with the family's
// bucket bounds (sorted ascending, +Inf implicit), creating it on first use.
// The bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	f := r.getFamily(name, help, TypeHistogram, sorted)
	ls := pairsToLabels(labels)
	key := labelKey(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.series[key]
	if !ok {
		h := &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds))}
		e = &seriesEntry{labels: ls, h: h}
		f.series[key] = e
	}
	return e.h
}

// Gather freezes every family into a snapshot, families in registration
// order, series in sorted label order.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for _, k := range keys {
			e := f.series[k]
			s := Sample{Labels: e.labels}
			switch {
			case e.c != nil:
				s.Value = float64(e.c.Value())
			case e.g != nil:
				s.Value = e.g.Value()
			case e.h != nil:
				snap := e.h.snapshot()
				s.Hist = &snap
			}
			fs.Samples = append(fs.Samples, s)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// CounterValue returns the current value of the counter series name{labels},
// or 0 when it does not exist.  It is the read side for code that renders
// summaries from the registry instead of keeping parallel counts.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok || f.typ != TypeCounter {
		return 0
	}
	key := labelKey(pairsToLabels(labels))
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.series[key]; ok {
		return e.c.Value()
	}
	return 0
}

// Reset zeroes every series in the registry (families and series stay
// registered).  Campaign CLIs reset at startup so one process invocation
// reports one campaign; long-running servers never call it.
func (r *Registry) Reset() {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		for _, e := range f.series {
			switch {
			case e.c != nil:
				e.c.v.Store(0)
			case e.g != nil:
				e.g.Set(0)
			case e.h != nil:
				for i := range e.h.counts {
					e.h.counts[i].Store(0)
				}
				e.h.inf.Store(0)
				e.h.sum.Set(0)
				e.h.count.Store(0)
			}
		}
		f.mu.Unlock()
	}
}
