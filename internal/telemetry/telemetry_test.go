package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("events_total", "events"); c2 != c {
		t.Fatal("same name+labels must return the same counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "hits", "policy", "pack")
	b := r.Counter("hits_total", "hits", "policy", "spread")
	a.Add(2)
	b.Add(5)
	if a == b {
		t.Fatal("different labels must be different series")
	}
	if got := r.CounterValue("hits_total", "policy", "spread"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	// Label order must not matter for identity.
	c1 := r.Counter("multi_total", "", "a", "1", "b", "2")
	c2 := r.Counter("multi_total", "", "b", "2", "a", "1")
	if c1 != c2 {
		t.Fatal("label order must not change series identity")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_us", "probe latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if want := []int64{2, 3, 4}; fmt.Sprint(s.Counts) != fmt.Sprint(want) {
		t.Fatalf("cumulative counts = %v, want %v", s.Counts, want)
	}
	if s.CountInf != 5 || s.Count != 5 {
		t.Fatalf("count = %d/%d, want 5/5", s.CountInf, s.Count)
	}
	if s.Sum != 0.5+0.7+5+50+5000 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestResetZeroesEverySeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", []float64{1})
	c.Add(7)
	g.Set(3)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("reset left counter=%d gauge=%v", c.Value(), g.Value())
	}
	if s := h.snapshot(); s.Count != 0 || s.Sum != 0 || s.Counts[0] != 0 {
		t.Fatalf("reset left histogram %+v", s)
	}
}

func TestConcurrentUpdatesAreLossless(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("con_total", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				// Get-or-create races against sibling goroutines too.
				r.Counter("con_total", "").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_events_total", "Events fired", "kind", "fired").Add(12)
	r.Gauge("load", "Current load").Set(0.75)
	r.Histogram("lat_us", "Latency", []float64{1, 10}, "leaf", "0").Observe(3)
	var b bytes.Buffer
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP sim_events_total Events fired",
		"# TYPE sim_events_total counter",
		`sim_events_total{kind="fired"} 12`,
		"# TYPE load gauge",
		"load 0.75",
		"# TYPE lat_us histogram",
		`lat_us_bucket{leaf="0",le="1"} 0`,
		`lat_us_bucket{leaf="0",le="10"} 1`,
		`lat_us_bucket{leaf="0",le="+Inf"} 1`,
		`lat_us_sum{leaf="0"} 3`,
		`lat_us_count{leaf="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" with a parseable
	// value — the shape the obs-smoke CI validator checks too.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestTraceExport(t *testing.T) {
	var buf bytes.Buffer
	StartTrace(&buf, 2)
	defer func() { _ = StopTrace() }()
	pid := NextTracePid()
	EmitProcessName(pid, "scenario fattree")
	EmitThreadName(pid, 3, "leaf 3")
	EmitSpan("sched", "j01-FFTW", pid, 3, 1_000, 2_500, map[string]any{"stretch": 1.2})
	EmitInstant("fault", "down leaf0.up0", pid, 0, 2_000, nil)
	kept := 0
	for i := 0; i < 10; i++ {
		if TraceSampleHit() {
			kept++
			EmitInstant("net", "deliver", pid, 1, int64(i)*100, nil)
		}
	}
	if kept != 5 {
		t.Fatalf("sampling 1/2 kept %d of 10", kept)
	}
	if err := StopTrace(); err != nil {
		t.Fatal(err)
	}
	if TraceEnabled() {
		t.Fatal("trace still enabled after StopTrace")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2+2+5 {
		t.Fatalf("trace has %d events, want 9", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[2]
	if span["ph"] != "X" || span["ts"].(float64) != 1.0 || span["dur"].(float64) != 2.5 {
		t.Fatalf("span event malformed: %v", span)
	}
}

func TestTraceDisabledIsCheap(t *testing.T) {
	if TraceEnabled() {
		t.Fatal("trace enabled with no active tracer")
	}
	if TraceSampleHit() {
		t.Fatal("sample hit with no active tracer")
	}
	// Emissions without an active tracer must be silent no-ops.
	EmitInstant("x", "y", 1, 1, 0, nil)
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("swprobe_kernel_events_fired_total", "").Add(42)
	r.Counter("swprobe_kernel_events_elided_total", "").Add(8)
	p := &Progress{}
	p.Start()
	p.SetPhase("table1")
	p.AddPlanned(10)
	p.MarkDone()
	s, err := NewServer("127.0.0.1:0", r, p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "swprobe_kernel_events_fired_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(get("/progress")), &snap); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if snap.Phase != "table1" || snap.TasksPlanned != 10 || snap.TasksDone != 1 {
		t.Fatalf("/progress = %+v", snap)
	}
	if snap.EventsFired != 42 || snap.EventsElided != 8 {
		t.Fatalf("/progress events = %d/%d, want 42/8", snap.EventsFired, snap.EventsElided)
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("/debug/pprof index not served")
	}
}
