package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Structured trace export in the Chrome trace-event JSON format, viewable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.  Timestamps are virtual
// simulation time in microseconds, so a trace lays out per-leaf lanes, job
// lifetimes and fault windows on the simulated clock, not the wall clock.
//
// The tracer is process-global and off by default; the fast path for every
// instrumented site is a single atomic load (Enabled) plus, for sampled
// categories, one atomic add (SampleHit).  Sampling is a deterministic
// modulo on a global event counter — never a random draw, so tracing can
// never perturb a simulation's RNG streams.  Emission order follows wall
// execution order and is not deterministic under -workers parallelism; the
// simulated schedule the events describe still is.

// TraceEvent is one Chrome trace-event JSON record.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the on-disk layout: the standard JSON object form.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// maxTraceEvents bounds the in-memory buffer; events beyond it are counted
// as dropped (surfaced via swprobe_trace_events_dropped_total) rather than
// growing without limit on a long campaign with a too-eager sampling rate.
const maxTraceEvents = 1 << 20

type tracer struct {
	mu      sync.Mutex
	dst     io.Writer
	events  []TraceEvent
	every   int64
	counter atomic.Int64
	emitted *Counter
	dropped *Counter
}

var (
	traceOn     atomic.Bool
	activeTrace atomic.Pointer[tracer]
	tracePids   atomic.Int64
)

// StartTrace arms the global tracer: subsequent Emit* calls buffer events,
// and StopTrace writes them to w as one JSON document.  sampleEvery is the
// sampling modulus for high-rate categories (EmitSampled callers): every
// sampleEvery-th event is kept; values < 1 mean 1 (keep everything).
// Low-rate structural events (placements, fault windows) bypass sampling.
// Starting while a trace is active replaces it without flushing (callers
// pair Start/Stop).
func StartTrace(w io.Writer, sampleEvery int64) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := &tracer{
		dst:     w,
		every:   sampleEvery,
		emitted: Default().Counter("swprobe_trace_events_total", "Trace events buffered by the structured trace exporter"),
		dropped: Default().Counter("swprobe_trace_events_dropped_total", "Trace events dropped by the exporter's buffer cap"),
	}
	activeTrace.Store(t)
	traceOn.Store(true)
}

// StopTrace disarms the tracer and writes the buffered events to the Start
// writer as a Chrome trace JSON document.  A no-op when no trace is active.
func StopTrace() error {
	t := activeTrace.Swap(nil)
	traceOn.Store(false)
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := traceFile{TraceEvents: t.events, DisplayTimeUnit: "ns"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(t.dst)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("telemetry: writing trace: %w", err)
	}
	return nil
}

// TraceEnabled reports whether a trace is being recorded.  It is the guard
// every instrumentation site checks before assembling event arguments, so a
// disabled tracer costs one atomic load.
func TraceEnabled() bool { return traceOn.Load() }

// TraceSampleHit reports whether the next high-rate event should be kept:
// true for every sampleEvery-th call while tracing is enabled.  The counter
// is global across categories, which keeps the check one atomic add.
func TraceSampleHit() bool {
	if !traceOn.Load() {
		return false
	}
	t := activeTrace.Load()
	if t == nil {
		return false
	}
	return t.counter.Add(1)%t.every == 0
}

// NextTracePid allocates a fresh trace process id.  Each simulation run (or
// scheduler scenario) takes one, so its lanes group under one process in the
// viewer.
func NextTracePid() int64 { return tracePids.Add(1) }

// append buffers one event under the cap.
func (t *tracer) append(ev TraceEvent) {
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.mu.Unlock()
		t.dropped.Inc()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
	t.emitted.Inc()
}

func emit(ev TraceEvent) {
	if t := activeTrace.Load(); t != nil {
		t.append(ev)
	}
}

// EmitInstant records an instant event ("i" phase) at virtual time tsNS.
func EmitInstant(cat, name string, pid, tid int64, tsNS int64, args map[string]any) {
	emit(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: float64(tsNS) / 1e3, Pid: pid, Tid: tid, Args: args})
}

// EmitSpan records a complete span ("X" phase) from tsNS for durNS.
func EmitSpan(cat, name string, pid, tid int64, tsNS, durNS int64, args map[string]any) {
	emit(TraceEvent{Name: name, Cat: cat, Ph: "X", TS: float64(tsNS) / 1e3, Dur: float64(durNS) / 1e3, Pid: pid, Tid: tid, Args: args})
}

// EmitProcessName attaches a viewer name to a trace pid (metadata event).
func EmitProcessName(pid int64, name string) {
	emit(TraceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
}

// EmitThreadName attaches a viewer name to a (pid, tid) lane.
func EmitThreadName(pid, tid int64, name string) {
	emit(TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}
