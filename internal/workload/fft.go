package workload

import (
	"github.com/hpcperf/switchprobe/internal/mpisim"
	"github.com/hpcperf/switchprobe/internal/sim"
)

// FFTW models the 2-D FFT of a 2000x2000 complex matrix (the paper's FFTW
// workload): every iteration performs two distributed transposes (alltoall)
// with only the local 1-D FFT computation between them.  It is the most
// communication-bound application in the set.
type FFTW struct {
	// TotalBytes is the distributed matrix size in bytes.
	TotalBytes float64
	// ComputePerPhase is the local FFT time between transposes.
	ComputePerPhase sim.Duration
}

// NewFFTW returns the FFTW model at the given scale.  The paper's problem is
// a 2000x2000 matrix of 16-byte complex values (64 MB).
func NewFFTW(s Scale) *FFTW {
	s = s.valid()
	return &FFTW{
		TotalBytes:      2000 * 2000 * 16 * s.Volume,
		ComputePerPhase: s.compute(80),
	}
}

// Name implements App.
func (f *FFTW) Name() string { return "FFTW" }

// Placement implements App: 4 ranks per socket on every node.
func (f *FFTW) Placement(nodes int) (int, int) { return 4, nodes }

// Iterate implements App (blocking form of IterateThen).
func (f *FFTW) Iterate(r *mpisim.Rank, iter int) { iterate(f, r, iter) }

// IterateThen implements App: transpose, local FFTs, transpose back, local
// FFTs.
func (f *FFTW) IterateThen(r *mpisim.Rank, iter int, k mpisim.Cont) {
	n := r.Size()
	perPair := int(f.TotalBytes / float64(n) / float64(n))
	if perPair < 1 {
		perPair = 1
	}
	r.AlltoallThen(perPair, func() {
		r.ComputeThen(f.ComputePerPhase, func() {
			r.AlltoallThen(perPair, func() {
				r.ComputeThen(f.ComputePerPhase, k)
			})
		})
	})
}

// VPFFT models the elasto-viscoplastic crystal plasticity solver: like FFTW
// it performs distributed FFT transposes of several field components, but
// between the two communication phases it runs an expensive local
// constitutive-model update whose cost varies between iterations.  The
// variation is what produces the slowdown oscillations the paper observes.
type VPFFT struct {
	// TotalBytes is the aggregate size of the transformed fields.
	TotalBytes float64
	// ComputePerPhase is the mean constitutive-update time per phase.
	ComputePerPhase sim.Duration
	// ComputeSpread is the fractional iteration-to-iteration variation of the
	// compute phases (e.g. 0.35 for ±35%).
	ComputeSpread float64
	// ConvergenceBytes is the size of the per-iteration convergence
	// reduction.
	ConvergenceBytes int
}

// NewVPFFT returns the VPFFT model at the given scale.
func NewVPFFT(s Scale) *VPFFT {
	s = s.valid()
	return &VPFFT{
		TotalBytes:       2.0 * 2000 * 2000 * 16 * s.Volume,
		ComputePerPhase:  s.compute(450),
		ComputeSpread:    0.35,
		ConvergenceBytes: 256,
	}
}

// Name implements App.
func (v *VPFFT) Name() string { return "VPFFT" }

// Placement implements App: 4 ranks per socket on every node.
func (v *VPFFT) Placement(nodes int) (int, int) { return 4, nodes }

// Iterate implements App (blocking form of IterateThen).
func (v *VPFFT) Iterate(r *mpisim.Rank, iter int) { iterate(v, r, iter) }

// IterateThen implements App.
func (v *VPFFT) IterateThen(r *mpisim.Rank, iter int, k mpisim.Cont) {
	n := r.Size()
	perPair := int(v.TotalBytes / float64(n) / float64(n))
	if perPair < 1 {
		perPair = 1
	}
	// Iteration-dependent compute factor in [1-spread, 1+spread]; the pattern
	// is deterministic and identical on all ranks so the bulk-synchronous
	// structure is preserved.
	phase := float64((iter*2654435761)%1000) / 1000.0
	factor := 1 + v.ComputeSpread*(2*phase-1)
	compute := sim.Duration(float64(v.ComputePerPhase) * factor)

	r.AlltoallThen(perPair, func() {
		r.ComputeThen(compute, func() {
			r.AlltoallThen(perPair, func() {
				r.ComputeThen(compute, func() {
					r.AllreduceThen(v.ConvergenceBytes, k)
				})
			})
		})
	})
}
